package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fluidfaas/internal/sim"
)

// ReadAzureCSV parses a trace in the Azure Functions 2019 dataset
// format [47]: one row per function, with a hash column followed by
// per-minute invocation counts:
//
//	HashFunction,1,2,3,...,1440
//	f1,0,3,12,...
//	f2,1,0,4,...
//
// Rows are mapped to function indices 0..n-1 in file order (optionally
// remapped via funcOf). Counts are turned into arrivals by spreading
// each minute's invocations uniformly at random within the minute,
// seeded for reproducibility — the same convention the paper uses to
// drive invocation frequencies and intervals from the dataset.
//
// minutes limits how much of the trace is replayed (0 = all columns).
func ReadAzureCSV(r io.Reader, seed int64, minutes int) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: azure csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: azure csv: empty file")
	}
	start := 0
	// Skip the dataset's header row ("HashFunction,1,2,...": the count
	// column labels are numeric, so the hash-column name marks it).
	if strings.HasPrefix(rows[0][0], "Hash") {
		start = 1
	}
	data := rows[start:]
	if len(data) == 0 {
		return nil, fmt.Errorf("trace: azure csv: no function rows")
	}

	t := &Trace{}
	for fi, row := range data {
		if len(row) < 2 {
			return nil, fmt.Errorf("trace: azure csv: row %d has no counts", fi+start)
		}
		counts := row[1:]
		if minutes > 0 && len(counts) > minutes {
			counts = counts[:minutes]
		}
		rng := sim.NewRNG(seed, fmt.Sprintf("azure/%s", row[0]))
		for m, cell := range counts {
			n, err := strconv.Atoi(cell)
			if err != nil {
				return nil, fmt.Errorf("trace: azure csv: row %d minute %d: %w", fi+start, m+1, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("trace: azure csv: row %d minute %d: negative count", fi+start, m+1)
			}
			for k := 0; k < n; k++ {
				t.Requests = append(t.Requests, Request{
					Func:    fi,
					Arrival: float64(m)*60 + rng.Float64()*60,
				})
			}
		}
		if fi+1 > t.NumFuncs {
			t.NumFuncs = fi + 1
		}
		if d := float64(len(counts)) * 60; d > t.Duration {
			t.Duration = d
		}
	}
	sortAndNumber(t)
	return t, nil
}

// sortAndNumber finalises request order and IDs.
func sortAndNumber(t *Trace) {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
	for i := range t.Requests {
		t.Requests[i].ID = i
	}
}

// Scale returns a copy of the trace with arrival density scaled: factor
// 2 doubles the request rate by halving inter-arrival gaps (duration
// shrinks accordingly); factor 0.5 halves it. Used to sweep trace
// intensity without re-deriving the shape.
func (t *Trace) Scale(factor float64) *Trace {
	if factor <= 0 {
		panic("trace: non-positive scale factor")
	}
	out := &Trace{
		Requests: make([]Request, len(t.Requests)),
		Duration: t.Duration / factor,
		NumFuncs: t.NumFuncs,
	}
	for i, r := range t.Requests {
		out.Requests[i] = Request{ID: i, Func: r.Func, Arrival: r.Arrival / factor}
	}
	return out
}

// Window returns the sub-trace with arrivals in [from, to), re-based to
// time zero.
func (t *Trace) Window(from, to float64) *Trace {
	if to <= from {
		panic("trace: empty window")
	}
	out := &Trace{Duration: to - from, NumFuncs: t.NumFuncs}
	for _, r := range t.Requests {
		if r.Arrival >= from && r.Arrival < to {
			out.Requests = append(out.Requests, Request{
				Func: r.Func, Arrival: r.Arrival - from,
			})
		}
	}
	for i := range out.Requests {
		out.Requests[i].ID = i
	}
	return out
}

// Merge combines traces into one (function indices must already be
// disjoint or intentionally shared).
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		out.Requests = append(out.Requests, t.Requests...)
		if t.Duration > out.Duration {
			out.Duration = t.Duration
		}
		if t.NumFuncs > out.NumFuncs {
			out.NumFuncs = t.NumFuncs
		}
	}
	sortAndNumber(out)
	return out
}
