package trace

import (
	"math"
	"strings"
	"testing"
)

const azureSample = `HashFunction,1,2,3
appA,2,0,4
appB,0,1,0
`

func TestReadAzureCSV(t *testing.T) {
	tr, err := ReadAzureCSV(strings.NewReader(azureSample), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 7 {
		t.Fatalf("requests = %d, want 7 (2+4+1)", len(tr.Requests))
	}
	if tr.NumFuncs != 2 {
		t.Errorf("NumFuncs = %d, want 2", tr.NumFuncs)
	}
	if tr.Duration != 180 {
		t.Errorf("Duration = %v, want 180 (3 minutes)", tr.Duration)
	}
	by := tr.CountByFunc()
	if by[0] != 6 || by[1] != 1 {
		t.Errorf("per-func counts = %v", by)
	}
	// Arrivals land within their source minute.
	minuteOf := map[int][]int{0: {0, 0, 2, 2, 2, 2}, 1: {1}}
	got := map[int][]int{}
	for _, r := range tr.Requests {
		got[r.Func] = append(got[r.Func], int(r.Arrival/60))
	}
	for fn, want := range minuteOf {
		g := got[fn]
		if len(g) != len(want) {
			t.Fatalf("func %d arrivals = %v", fn, g)
		}
		// Sort-insensitive multiset compare.
		cnt := map[int]int{}
		for _, m := range want {
			cnt[m]++
		}
		for _, m := range g {
			cnt[m]--
		}
		for m, c := range cnt {
			if c != 0 {
				t.Errorf("func %d minute %d off by %d", fn, m, c)
			}
		}
	}
}

func TestReadAzureCSVDeterministic(t *testing.T) {
	a, _ := ReadAzureCSV(strings.NewReader(azureSample), 7, 0)
	b, _ := ReadAzureCSV(strings.NewReader(azureSample), 7, 0)
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("azure parse not deterministic")
		}
	}
	c, _ := ReadAzureCSV(strings.NewReader(azureSample), 8, 0)
	same := true
	for i := range a.Requests {
		if a.Requests[i].Arrival != c.Requests[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical arrival jitter")
	}
}

func TestReadAzureCSVMinutesLimit(t *testing.T) {
	tr, err := ReadAzureCSV(strings.NewReader(azureSample), 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 { // minutes 1-2 only: 2+0 and 0+1
		t.Errorf("requests = %d, want 3", len(tr.Requests))
	}
	if tr.Duration != 120 {
		t.Errorf("Duration = %v, want 120", tr.Duration)
	}
}

func TestReadAzureCSVNoHeader(t *testing.T) {
	tr, err := ReadAzureCSV(strings.NewReader("fnX,1,1\n"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Errorf("requests = %d, want 2", len(tr.Requests))
	}
}

func TestReadAzureCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"headerOnly": "HashFunction,1,2\n",
		"badCount":   "f,1,x\n",
		"negative":   "f,-3\n",
		"noCounts":   "HashFunction,1\nf\n",
	} {
		if _, err := ReadAzureCSV(strings.NewReader(in), 1, 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestScaleAndWindowAndMerge(t *testing.T) {
	tr := Generate(Spec{Duration: 100, Seed: 1,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 5}}})

	double := tr.Scale(2)
	if double.Duration != 50 {
		t.Errorf("scaled duration = %v, want 50", double.Duration)
	}
	if len(double.Requests) != len(tr.Requests) {
		t.Error("scale changed request count")
	}
	if math.Abs(double.MeanRate()-2*tr.MeanRate()) > 1e-9 {
		t.Errorf("scaled rate = %v, want %v", double.MeanRate(), 2*tr.MeanRate())
	}

	win := tr.Window(20, 60)
	if win.Duration != 40 {
		t.Errorf("window duration = %v, want 40", win.Duration)
	}
	for _, r := range win.Requests {
		if r.Arrival < 0 || r.Arrival >= 40 {
			t.Fatalf("window arrival %v outside [0,40)", r.Arrival)
		}
	}

	other := Generate(Spec{Duration: 100, Seed: 2,
		Streams: []StreamSpec{{Func: 1, MeanRPS: 3}}})
	merged := Merge(tr, other)
	if len(merged.Requests) != len(tr.Requests)+len(other.Requests) {
		t.Error("merge lost requests")
	}
	if merged.NumFuncs != 2 {
		t.Errorf("merged NumFuncs = %d, want 2", merged.NumFuncs)
	}
	last := -1.0
	for _, r := range merged.Requests {
		if r.Arrival < last {
			t.Fatal("merged trace not sorted")
		}
		last = r.Arrival
	}
}

func TestScaleWindowPanics(t *testing.T) {
	tr := Generate(Spec{Duration: 10, Seed: 1,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 1}}})
	for name, f := range map[string]func(){
		"scale":  func() { tr.Scale(0) },
		"window": func() { tr.Window(5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
