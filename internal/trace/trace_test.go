package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func basicSpec() Spec {
	return Spec{
		Duration: 600,
		Seed:     42,
		Streams: []StreamSpec{
			{Func: 0, MeanRPS: 5},
			{Func: 1, MeanRPS: 2, RateSigma: 0.5},
			{Func: 2, MeanRPS: 3, BurstFactor: 4, BurstFraction: 0.1, BurstLen: 20},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(basicSpec())
	b := Generate(basicSpec())
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	spec := basicSpec()
	a := Generate(spec)
	spec.Seed = 43
	b := Generate(spec)
	if len(a.Requests) == len(b.Requests) {
		same := true
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateSortedAndNumbered(t *testing.T) {
	tr := Generate(basicSpec())
	if !sort.SliceIsSorted(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Arrival < tr.Requests[j].Arrival
	}) {
		t.Error("requests not sorted by arrival")
	}
	for i, r := range tr.Requests {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < 0 || r.Arrival > tr.Duration {
			t.Fatalf("arrival %v outside [0, %v]", r.Arrival, tr.Duration)
		}
	}
	if tr.NumFuncs != 3 {
		t.Errorf("NumFuncs = %d, want 3", tr.NumFuncs)
	}
}

func TestMeanRPSHonoured(t *testing.T) {
	// Long trace: sample mean within 10% of spec for all stream shapes.
	spec := Spec{
		Duration: 20000,
		Seed:     7,
		Streams: []StreamSpec{
			{Func: 0, MeanRPS: 4},
			{Func: 1, MeanRPS: 4, RateSigma: 0.6},
			{Func: 2, MeanRPS: 4, BurstFactor: 5, BurstFraction: 0.15, BurstLen: 30},
		},
	}
	tr := Generate(spec)
	byFunc := tr.CountByFunc()
	for f := 0; f < 3; f++ {
		got := float64(byFunc[f]) / spec.Duration
		if math.Abs(got-4) > 0.4 {
			t.Errorf("stream %d mean rate = %.2f, want 4±0.4", f, got)
		}
	}
}

func TestBurstsRaisePeakRate(t *testing.T) {
	flat := Generate(Spec{Duration: 2000, Seed: 1,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 10}}})
	bursty := Generate(Spec{Duration: 2000, Seed: 1,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 10, BurstFactor: 6, BurstFraction: 0.1, BurstLen: 40}}})
	if bursty.PeakRate(10) <= flat.PeakRate(10)*1.5 {
		t.Errorf("bursty peak %.1f not clearly above flat peak %.1f",
			bursty.PeakRate(10), flat.PeakRate(10))
	}
}

func TestRateTimeline(t *testing.T) {
	tr := Generate(Spec{Duration: 100, Seed: 3,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 5}}})
	tl := tr.RateTimeline(10)
	if len(tl) != 10 {
		t.Fatalf("timeline buckets = %d, want 10", len(tl))
	}
	sum := 0.0
	for _, r := range tl {
		sum += r * 10
	}
	if int(sum+0.5) != len(tr.Requests) {
		t.Errorf("timeline total %v != request count %d", sum, len(tr.Requests))
	}
	if got := tr.MeanRate(); math.Abs(got-sum/100) > 1e-9 {
		t.Errorf("MeanRate = %v, want %v", got, sum/100)
	}
}

func TestZeroRateStream(t *testing.T) {
	tr := Generate(Spec{Duration: 100, Seed: 1,
		Streams: []StreamSpec{{Func: 0, MeanRPS: 0}}})
	if len(tr.Requests) != 0 {
		t.Errorf("zero-rate stream produced %d requests", len(tr.Requests))
	}
}

func TestGeneratePanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive duration did not panic")
		}
	}()
	Generate(Spec{Duration: 0})
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(basicSpec())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if back.Requests[i].Func != tr.Requests[i].Func {
			t.Fatalf("row %d func mismatch", i)
		}
		if math.Abs(back.Requests[i].Arrival-tr.Requests[i].Arrival) > 1e-5 {
			t.Fatalf("row %d arrival mismatch", i)
		}
	}
	if back.NumFuncs != tr.NumFuncs {
		t.Errorf("NumFuncs = %d, want %d", back.NumFuncs, tr.NumFuncs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"badArrival": "arrival_s,func\nxyz,0\n",
		"badFunc":    "arrival_s,func\n1.5,zz\n",
		"negArrival": "arrival_s,func\n-2,0\n",
		"shortRow":   "arrival_s,func\n1.5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%s) accepted bad input", name)
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("2.0,1\n1.0,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 || tr.Requests[0].Arrival != 1.0 {
		t.Errorf("headerless parse wrong: %+v", tr.Requests)
	}
}

// Property: generated traces are valid for any sane random spec.
func TestGenerateValidProperty(t *testing.T) {
	f := func(seed int64, rps uint8, sigma uint8) bool {
		tr := Generate(Spec{
			Duration: 200,
			Seed:     seed,
			Streams: []StreamSpec{{
				Func:      0,
				MeanRPS:   float64(rps%20) + 0.5,
				RateSigma: float64(sigma%10) / 10,
			}},
		})
		last := -1.0
		for _, r := range tr.Requests {
			if r.Arrival < last || r.Arrival > 200 {
				return false
			}
			last = r.Arrival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiurnalModulation(t *testing.T) {
	tr := Generate(Spec{Duration: 1000, Seed: 5, Streams: []StreamSpec{{
		Func: 0, MeanRPS: 20, DiurnalAmplitude: 0.9, DiurnalPeriod: 1000,
	}}})
	tl := tr.RateTimeline(100)
	// First half-period (sin > 0) must be busier than the second.
	firstHalf, secondHalf := 0.0, 0.0
	for i, r := range tl {
		if i < len(tl)/2 {
			firstHalf += r
		} else {
			secondHalf += r
		}
	}
	if firstHalf <= secondHalf*1.5 {
		t.Errorf("diurnal swing missing: first half %.1f vs second %.1f", firstHalf, secondHalf)
	}
	// Amplitude 0 leaves the trace unmodulated (deterministic check via
	// identical spec minus amplitude).
	flat := Generate(Spec{Duration: 1000, Seed: 5, Streams: []StreamSpec{{
		Func: 0, MeanRPS: 20,
	}}})
	if len(flat.Requests) == len(tr.Requests) {
		t.Log("note: modulated and flat traces coincidentally equal in size")
	}
}
