package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV serialises the trace as "arrival,func" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_s", "func"}); err != nil {
		return err
	}
	for _, r := range t.Requests {
		rec := []string{
			strconv.FormatFloat(r.Arrival, 'f', 6, 64),
			strconv.Itoa(r.Func),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or a real trace excerpt in
// the same format). Rows are re-sorted by arrival and re-numbered.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	start := 0
	if rows[0][0] == "arrival_s" {
		start = 1
	}
	t := &Trace{}
	for i, row := range rows[start:] {
		if len(row) < 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 2", i+start, len(row))
		}
		arrival, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", i+start, err)
		}
		if arrival < 0 {
			return nil, fmt.Errorf("trace: row %d negative arrival", i+start)
		}
		fn, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d func: %w", i+start, err)
		}
		t.Requests = append(t.Requests, Request{Func: fn, Arrival: arrival})
		if arrival > t.Duration {
			t.Duration = arrival
		}
		if fn+1 > t.NumFuncs {
			t.NumFuncs = fn + 1
		}
	}
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
	for i := range t.Requests {
		t.Requests[i].ID = i
	}
	return t, nil
}
