// Package trace generates and replays invocation traces. The paper uses
// the Azure Functions production traces [47] to set invocation
// frequencies and intervals; this package provides a seeded synthetic
// generator with the same scheduling-relevant statistics — heavy-tailed
// per-function rates, bursts, and slow rate modulation — plus CSV
// import/export so real trace excerpts can be replayed.
package trace

import (
	"fmt"
	"math"
	"sort"

	"fluidfaas/internal/sim"
)

// Request is one function invocation.
type Request struct {
	// ID is unique within the trace, in arrival order.
	ID int
	// Func indexes the serverless function invoked (application).
	Func int
	// Arrival is the invocation time in seconds from trace start.
	Arrival float64
}

// Trace is a time-ordered sequence of requests.
type Trace struct {
	Requests []Request
	Duration float64
	NumFuncs int
}

// StreamSpec describes one function's invocation process.
type StreamSpec struct {
	// Func is the function index requests carry.
	Func int
	// MeanRPS is the long-run mean request rate.
	MeanRPS float64
	// RateSigma is the sigma of the log-normal per-bucket rate
	// modulation (0 = constant rate). Azure functions show strong
	// minute-scale variability; 0.4–0.8 is typical.
	RateSigma float64
	// BurstFactor multiplies the rate during bursts (<=1 = no bursts).
	BurstFactor float64
	// BurstFraction is the fraction of time spent in bursts.
	BurstFraction float64
	// BurstLen is the mean burst length in seconds (default 30).
	BurstLen float64
	// DiurnalAmplitude adds the Azure traces' daily swing: the rate is
	// modulated by 1 + A·sin(2π·t/DiurnalPeriod). 0 disables it.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period in seconds (default 86400,
	// one day; short traces typically use a compressed period).
	DiurnalPeriod float64
}

// Spec describes a whole trace.
type Spec struct {
	Duration float64
	Seed     int64
	// Bucket is the rate-modulation granularity in seconds (default 10).
	Bucket  float64
	Streams []StreamSpec
}

// Generate builds a trace from the spec. Identical specs yield identical
// traces.
func Generate(spec Spec) *Trace {
	if spec.Duration <= 0 {
		panic("trace: non-positive duration")
	}
	bucket := spec.Bucket
	if bucket <= 0 {
		bucket = 10
	}
	var reqs []Request
	maxFunc := 0
	for si, st := range spec.Streams {
		if st.Func > maxFunc {
			maxFunc = st.Func
		}
		rng := sim.NewRNG(spec.Seed, fmt.Sprintf("trace/stream%d", si))
		reqs = append(reqs, genStream(st, spec.Duration, bucket, rng)...)
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := range reqs {
		reqs[i].ID = i
	}
	return &Trace{Requests: reqs, Duration: spec.Duration, NumFuncs: maxFunc + 1}
}

func genStream(st StreamSpec, duration, bucket float64, rng *sim.RNG) []Request {
	if st.MeanRPS <= 0 {
		return nil
	}
	// Burst windows: alternating exponential off/on periods sized so the
	// on-fraction matches BurstFraction.
	var windows [][2]float64
	bursty := st.BurstFactor > 1 && st.BurstFraction > 0 && st.BurstFraction < 1
	if bursty {
		burstLen := st.BurstLen
		if burstLen <= 0 {
			burstLen = 30
		}
		offLen := burstLen * (1 - st.BurstFraction) / st.BurstFraction
		t := rng.Exp(offLen)
		for t < duration {
			l := rng.Exp(burstLen)
			windows = append(windows, [2]float64{t, t + l})
			t += l + rng.Exp(offLen)
		}
	}
	inBurst := func(x float64) bool {
		for _, w := range windows {
			if x >= w[0] && x < w[1] {
				return true
			}
		}
		return false
	}

	// Compensate the modulation means so MeanRPS is honoured overall:
	// E[exp(N(0,s^2))] = exp(s^2/2), and bursts inflate the mean by
	// 1 + f*(k-1).
	mod := 1.0
	if st.RateSigma > 0 {
		mod = 1.0 / math.Exp(st.RateSigma*st.RateSigma/2)
	}
	if bursty {
		mod /= 1 + st.BurstFraction*(st.BurstFactor-1)
	}

	var reqs []Request
	for b := 0.0; b < duration; b += bucket {
		end := b + bucket
		if end > duration {
			end = duration
		}
		rate := st.MeanRPS * mod
		if st.RateSigma > 0 {
			rate *= rng.LogNorm(0, st.RateSigma)
		}
		if bursty && inBurst((b+end)/2) {
			rate *= st.BurstFactor
		}
		if st.DiurnalAmplitude > 0 {
			period := st.DiurnalPeriod
			if period <= 0 {
				period = 86400
			}
			rate *= 1 + st.DiurnalAmplitude*math.Sin(2*math.Pi*(b+end)/2/period)
			if rate < 0 {
				rate = 0
			}
		}
		n := rng.Poisson(rate * (end - b))
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{
				Func:    st.Func,
				Arrival: b + rng.Float64()*(end-b),
			})
		}
	}
	return reqs
}

// MeanRate returns the trace's overall requests per second.
func (t *Trace) MeanRate() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(len(t.Requests)) / t.Duration
}

// RateTimeline returns per-bucket request rates (requests per second)
// for plotting utilisation/ demand curves.
func (t *Trace) RateTimeline(bucket float64) []float64 {
	if bucket <= 0 {
		bucket = 10
	}
	n := int(math.Ceil(t.Duration / bucket))
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for _, r := range t.Requests {
		i := int(r.Arrival / bucket)
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	for i := range out {
		out[i] /= bucket
	}
	return out
}

// PeakRate returns the highest bucketed rate.
func (t *Trace) PeakRate(bucket float64) float64 {
	peak := 0.0
	for _, r := range t.RateTimeline(bucket) {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// CountByFunc returns the request count per function index.
func (t *Trace) CountByFunc() map[int]int {
	out := make(map[int]int)
	for _, r := range t.Requests {
		out[r.Func]++
	}
	return out
}
