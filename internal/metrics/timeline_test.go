package metrics

import (
	"math"
	"testing"
)

// TestTimelineAt: table-driven checks of the binary-search lookup,
// including exact sample times, duplicate timestamps (the last value
// at a duplicated time wins, matching the old linear scan), and
// out-of-range probes.
func TestTimelineAt(t *testing.T) {
	var tl Timeline
	tl.Add(0, 0.1)
	tl.Add(10, 0.2)
	tl.Add(10, 0.3) // duplicate time: later sample supersedes
	tl.Add(20, 0.4)

	cases := []struct {
		t    float64
		want float64
	}{
		{-5, 0},   // before the first sample
		{0, 0.1},  // exactly the first sample
		{5, 0.1},  // between samples: hold the previous value
		{10, 0.3}, // duplicate time: last value at that time
		{10.01, 0.3},
		{19.999, 0.3},
		{20, 0.4},  // exactly the last sample
		{1e9, 0.4}, // far past the end
	}
	for _, c := range cases {
		if got := tl.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}

	var empty Timeline
	if got := empty.At(3); got != 0 {
		t.Errorf("empty.At = %v, want 0", got)
	}
}

// TestTimelineAtMatchesLinearScan: the binary search agrees with the
// reference linear scan on a dense probe sweep.
func TestTimelineAtMatchesLinearScan(t *testing.T) {
	var tl Timeline
	for i := 0; i < 100; i++ {
		tl.Add(float64(i)*0.7, float64(i%13))
	}
	linear := func(q float64) float64 {
		v := 0.0
		for i, tt := range tl.Times {
			if tt > q {
				break
			}
			v = tl.Values[i]
		}
		return v
	}
	for q := -1.0; q < 75; q += 0.13 {
		if got, want := tl.At(q), linear(q); got != want {
			t.Fatalf("At(%v) = %v, linear scan says %v", q, got, want)
		}
	}
}

// TestTimelineMeanEdgeCases: table-driven edge cases of the
// time-weighted mean.
func TestTimelineMeanEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		times  []float64
		values []float64
		want   float64
	}{
		{"empty", nil, nil, 0},
		{"single sample", []float64{5}, []float64{0.9}, 0},
		{"zero span", []float64{5, 5}, []float64{0.3, 0.7}, 0},
		{"two samples", []float64{0, 10}, []float64{0.4, 0.8}, 0.4},
		{"uneven spacing", []float64{0, 1, 10}, []float64{1, 0, 0.5}, 0.1},
	}
	for _, c := range cases {
		var tl Timeline
		for i := range c.times {
			tl.Add(c.times[i], c.values[i])
		}
		if got := tl.Mean(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Mean = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestTimelineFractionBelowEdgeCases: table-driven edge cases,
// including thresholds exactly at a sample value (strictly-below
// semantics) and degenerate spans.
func TestTimelineFractionBelowEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		times     []float64
		values    []float64
		threshold float64
		want      float64
	}{
		{"empty", nil, nil, 0.5, 0},
		{"single sample", []float64{3}, []float64{0.2}, 0.5, 0},
		{"zero span", []float64{3, 3}, []float64{0.2, 0.9}, 0.5, 0},
		// Value exactly at the threshold is NOT strictly below.
		{"threshold at boundary", []float64{0, 10}, []float64{0.5, 1}, 0.5, 0},
		{"just under boundary", []float64{0, 10}, []float64{0.499, 1}, 0.5, 1},
		{"half below", []float64{0, 5, 10}, []float64{0.1, 0.9, 0.9}, 0.5, 0.5},
		{"all below", []float64{0, 4, 10}, []float64{0.1, 0.2, 0.3}, 0.35, 1},
		// The last sample's value never contributes (no interval after it).
		{"last sample ignored", []float64{0, 10}, []float64{1, 0}, 0.5, 0},
	}
	for _, c := range cases {
		var tl Timeline
		for i := range c.times {
			tl.Add(c.times[i], c.values[i])
		}
		if got := tl.FractionBelow(c.threshold); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: FractionBelow(%v) = %v, want %v", c.name, c.threshold, got, c.want)
		}
	}
}

// BenchmarkTimelineAt measures the lookup on a long run's worth of
// samples (1 Hz sampling over ~3 hours). The binary search turned the
// old O(n) scan (~3 µs/op at this size) into ~15 ns/op.
func BenchmarkTimelineAt(b *testing.B) {
	var tl Timeline
	for i := 0; i < 10000; i++ {
		tl.Add(float64(i), float64(i%100)/100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.At(float64((i * 7919) % 10000))
	}
}

// BenchmarkTimelineAtLinear is the replaced O(n) scan, kept as the
// benchmark baseline.
func BenchmarkTimelineAtLinear(b *testing.B) {
	var tl Timeline
	for i := 0; i < 10000; i++ {
		tl.Add(float64(i), float64(i%100)/100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := float64((i * 7919) % 10000)
		v := 0.0
		for j, tt := range tl.Times {
			if tt > q {
				break
			}
			v = tl.Values[j]
		}
		_ = v
	}
}
