package metrics

import "sort"

// Timeline is a sampled time series (e.g. GPU utilisation over time,
// Fig. 3a / Fig. 16).
type Timeline struct {
	Times  []float64
	Values []float64
}

// Add appends a sample. Times must be non-decreasing.
func (tl *Timeline) Add(t, v float64) {
	if n := len(tl.Times); n > 0 && t < tl.Times[n-1] {
		panic("metrics: timeline samples out of order")
	}
	tl.Times = append(tl.Times, t)
	tl.Values = append(tl.Values, v)
}

// Len returns the sample count.
func (tl *Timeline) Len() int { return len(tl.Times) }

// At returns the most recent sample value at or before t (zero before
// the first sample). Binary search: Times is non-decreasing by
// construction, and the O(n) scan this replaces dominated profile time
// for drivers probing long runs (see BenchmarkTimelineAt).
func (tl *Timeline) At(t float64) float64 {
	// First index with Times[i] > t; duplicates at exactly t resolve to
	// the last of them, matching the linear scan's semantics.
	i := sort.Search(len(tl.Times), func(i int) bool { return tl.Times[i] > t })
	if i == 0 {
		return 0
	}
	return tl.Values[i-1]
}

// Max returns the largest sample value (0 if empty).
func (tl *Timeline) Max() float64 {
	max := 0.0
	for _, v := range tl.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the time-weighted mean value between the first and last
// samples (0 if fewer than two samples).
func (tl *Timeline) Mean() float64 {
	if len(tl.Times) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(tl.Times); i++ {
		area += tl.Values[i-1] * (tl.Times[i] - tl.Times[i-1])
	}
	span := tl.Times[len(tl.Times)-1] - tl.Times[0]
	if span <= 0 {
		return 0
	}
	return area / span
}

// FractionBelow returns the fraction of (time-weighted) samples whose
// value is strictly below the threshold — e.g. "MIGs operate at less
// than 35% for 90% of the time" (Fig. 5).
func (tl *Timeline) FractionBelow(threshold float64) float64 {
	if len(tl.Times) < 2 {
		return 0
	}
	below := 0.0
	for i := 1; i < len(tl.Times); i++ {
		if tl.Values[i-1] < threshold {
			below += tl.Times[i] - tl.Times[i-1]
		}
	}
	span := tl.Times[len(tl.Times)-1] - tl.Times[0]
	if span <= 0 {
		return 0
	}
	return below / span
}
