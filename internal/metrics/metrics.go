// Package metrics collects and summarises the quantities the paper's
// evaluation reports: SLO hit rates, throughput, latency CDFs and
// percentiles, the queue/load/exec/transfer latency breakdown (Fig. 14),
// and GPU/MIG time and utilisation timelines.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RequestRecord is the outcome of one request.
type RequestRecord struct {
	// ID is the request's identity (trace ID, or a caller-chosen tag
	// for injected requests — e.g. a workflow chain ID).
	ID      int
	Func    int
	Arrival float64
	// Completion is when the result was produced, or — for dropped
	// requests — when the platform abandoned them.
	Completion float64
	// Latency breakdown (Fig. 14).
	Queue    float64
	Load     float64
	Exec     float64
	Transfer float64
	// SLO is the request's latency budget (0 = none).
	SLO float64
	// Dropped marks requests the platform could not serve. Dropped
	// records carry the drop time in Completion, so Latency() is the
	// time the request spent waiting before being abandoned.
	Dropped bool
	// Rejected marks requests the admission controller fast-failed at
	// arrival (or brownout shedding refused): the client got an
	// immediate rejection instead of a late timeout. Rejected implies
	// Dropped; it is a distinct outcome from a timeout drop.
	Rejected bool
	// Retries counts fault-triggered re-routes this request survived.
	Retries int
	// Failed marks requests abandoned because of hardware faults: the
	// retry budget or the deadline was exhausted after a fault. Failed
	// implies Dropped.
	Failed bool
}

// Latency returns the end-to-end latency.
func (r RequestRecord) Latency() float64 { return r.Completion - r.Arrival }

// SLOHit reports whether the request completed within its SLO.
func (r RequestRecord) SLOHit() bool {
	return !r.Dropped && r.SLO > 0 && r.Latency() <= r.SLO
}

// Collector accumulates request records.
type Collector struct {
	records []RequestRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record adds one request outcome.
func (c *Collector) Record(r RequestRecord) { c.records = append(c.records, r) }

// Reserve pre-sizes the store for n further records, so a run that
// knows its request count up front (trace replay) avoids the append
// doubling-and-copy traffic.
func (c *Collector) Reserve(n int) {
	if need := len(c.records) + n; need > cap(c.records) {
		grown := make([]RequestRecord, len(c.records), need)
		copy(grown, c.records)
		c.records = grown
	}
}

// Len returns the number of recorded requests.
func (c *Collector) Len() int { return len(c.records) }

// Records returns all records (shared slice; do not mutate).
func (c *Collector) Records() []RequestRecord { return c.records }

// Completed returns the number of served (non-dropped) requests.
func (c *Collector) Completed() int {
	n := 0
	for _, r := range c.records {
		if !r.Dropped {
			n++
		}
	}
	return n
}

// RejectedCount returns requests fast-failed by admission control or
// brownout shedding.
func (c *Collector) RejectedCount() int {
	n := 0
	for _, r := range c.records {
		if r.Rejected {
			n++
		}
	}
	return n
}

// TimeoutDropCount returns requests dropped after waiting out a client
// timeout — drops that are neither fast-fail rejections nor hardware-
// fault casualties.
func (c *Collector) TimeoutDropCount() int {
	n := 0
	for _, r := range c.records {
		if r.Dropped && !r.Rejected && !r.Failed {
			n++
		}
	}
	return n
}

// Goodput returns SLO-meeting completions per second over the
// duration — the overload studies' headline metric: work that arrived
// late counts for nothing.
func (c *Collector) Goodput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	hit := 0
	for _, r := range c.records {
		if r.SLOHit() {
			hit++
		}
	}
	return float64(hit) / duration
}

// GoodputByFunc returns per-function SLO-meeting completions per
// second.
func (c *Collector) GoodputByFunc(duration float64) map[int]float64 {
	out := map[int]float64{}
	if duration <= 0 {
		return out
	}
	for _, r := range c.records {
		if r.SLOHit() {
			out[r.Func] += 1 / duration
		}
	}
	return out
}

// FailedCount returns requests abandoned because of hardware faults.
func (c *Collector) FailedCount() int {
	n := 0
	for _, r := range c.records {
		if r.Failed {
			n++
		}
	}
	return n
}

// RetriedCount returns requests that were re-routed at least once after
// a hardware fault (whether they ultimately completed or not).
func (c *Collector) RetriedCount() int {
	n := 0
	for _, r := range c.records {
		if r.Retries > 0 {
			n++
		}
	}
	return n
}

// TotalRetries sums fault-triggered re-routes across all requests.
func (c *Collector) TotalRetries() int {
	n := 0
	for _, r := range c.records {
		n += r.Retries
	}
	return n
}

// Availability is the fraction of requests not lost to hardware
// faults: 1 - FailedCount/Len. An empty collector reports 1 (no
// request was ever failed).
func (c *Collector) Availability() float64 {
	if len(c.records) == 0 {
		return 1
	}
	return 1 - float64(c.FailedCount())/float64(len(c.records))
}

// SLOHitRate returns the fraction of all requests that met their SLO.
// Dropped requests count as misses (they got no timely answer).
func (c *Collector) SLOHitRate() float64 {
	if len(c.records) == 0 {
		return 0
	}
	hit := 0
	for _, r := range c.records {
		if r.SLOHit() {
			hit++
		}
	}
	return float64(hit) / float64(len(c.records))
}

// SLOHitRateByFunc returns per-function SLO hit rates.
func (c *Collector) SLOHitRateByFunc() map[int]float64 {
	hits := map[int]int{}
	total := map[int]int{}
	for _, r := range c.records {
		total[r.Func]++
		if r.SLOHit() {
			hits[r.Func]++
		}
	}
	out := make(map[int]float64, len(total))
	for f, n := range total {
		out[f] = float64(hits[f]) / float64(n)
	}
	return out
}

// Throughput returns completed requests per second over the duration.
func (c *Collector) Throughput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(c.Completed()) / duration
}

// Latencies returns the sorted latencies of completed requests.
func (c *Collector) Latencies() []float64 {
	var out []float64
	for _, r := range c.records {
		if !r.Dropped {
			out = append(out, r.Latency())
		}
	}
	sort.Float64s(out)
	return out
}

// LatenciesByFunc returns sorted per-function latencies.
func (c *Collector) LatenciesByFunc() map[int][]float64 {
	out := map[int][]float64{}
	for _, r := range c.records {
		if !r.Dropped {
			out[r.Func] = append(out[r.Func], r.Latency())
		}
	}
	for f := range out {
		sort.Float64s(out[f])
	}
	return out
}

// Breakdown is the mean per-request latency decomposition (Fig. 14).
type Breakdown struct {
	Queue    float64
	Load     float64
	Exec     float64
	Transfer float64
}

// Total returns the summed components.
func (b Breakdown) Total() float64 { return b.Queue + b.Load + b.Exec + b.Transfer }

// String renders the breakdown in milliseconds.
func (b Breakdown) String() string {
	return fmt.Sprintf("queue=%.0fms load=%.0fms exec=%.0fms transfer=%.0fms",
		b.Queue*1000, b.Load*1000, b.Exec*1000, b.Transfer*1000)
}

// MeanBreakdown returns the average decomposition over completed
// requests.
func (c *Collector) MeanBreakdown() Breakdown {
	var b Breakdown
	n := 0
	for _, r := range c.records {
		if r.Dropped {
			continue
		}
		b.Queue += r.Queue
		b.Load += r.Load
		b.Exec += r.Exec
		b.Transfer += r.Transfer
		n++
	}
	if n == 0 {
		return Breakdown{}
	}
	inv := 1 / float64(n)
	b.Queue *= inv
	b.Load *= inv
	b.Exec *= inv
	b.Transfer *= inv
	return b
}

// Percentile returns the p-th percentile (0..100) of sorted values using
// nearest-rank. Empty input returns NaN.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency  float64
	Fraction float64
}

// CDF returns an empirical CDF of sorted values downsampled to at most
// points entries (always including the max).
func CDF(sorted []float64, points int) []CDFPoint {
	n := len(sorted)
	if n == 0 {
		return nil
	}
	if points <= 0 || points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*n/points - 1
		out = append(out, CDFPoint{
			Latency:  sorted[idx],
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over the
// values: 1 when all shares are equal, 1/n when one value takes
// everything. Empty or all-zero input returns 1 (trivially fair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
