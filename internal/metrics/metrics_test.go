package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func rec(fn int, arrival, latency, slo float64) RequestRecord {
	return RequestRecord{
		Func: fn, Arrival: arrival, Completion: arrival + latency, SLO: slo,
	}
}

func TestSLOHitRate(t *testing.T) {
	c := NewCollector()
	c.Record(rec(0, 0, 1.0, 1.5))                                         // hit
	c.Record(rec(0, 1, 2.0, 1.5))                                         // miss
	c.Record(rec(1, 2, 1.4, 1.5))                                         // hit
	c.Record(RequestRecord{Func: 1, Arrival: 3, SLO: 1.5, Dropped: true}) // miss
	if got := c.SLOHitRate(); got != 0.5 {
		t.Errorf("SLOHitRate = %v, want 0.5", got)
	}
	by := c.SLOHitRateByFunc()
	if by[0] != 0.5 || by[1] != 0.5 {
		t.Errorf("per-func rates = %v", by)
	}
	if c.Completed() != 3 {
		t.Errorf("Completed = %d, want 3", c.Completed())
	}
	if got := c.Throughput(10); got != 0.3 {
		t.Errorf("Throughput = %v, want 0.3", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.SLOHitRate() != 0 || c.Throughput(10) != 0 || c.Len() != 0 {
		t.Error("empty collector not zero-valued")
	}
	if b := c.MeanBreakdown(); b.Total() != 0 {
		t.Error("empty breakdown not zero")
	}
	if lats := c.Latencies(); len(lats) != 0 {
		t.Error("empty latencies not empty")
	}
}

func TestLatenciesSorted(t *testing.T) {
	c := NewCollector()
	for _, l := range []float64{3, 1, 2} {
		c.Record(rec(0, 0, l, 0))
	}
	lats := c.Latencies()
	if lats[0] != 1 || lats[1] != 2 || lats[2] != 3 {
		t.Errorf("latencies = %v", lats)
	}
	by := c.LatenciesByFunc()
	if len(by[0]) != 3 {
		t.Errorf("per-func latencies = %v", by)
	}
}

func TestMeanBreakdown(t *testing.T) {
	c := NewCollector()
	c.Record(RequestRecord{Arrival: 0, Completion: 1, Queue: 0.2, Load: 0.1, Exec: 0.6, Transfer: 0.1})
	c.Record(RequestRecord{Arrival: 0, Completion: 1, Queue: 0.4, Load: 0.3, Exec: 0.2, Transfer: 0.1})
	c.Record(RequestRecord{Dropped: true, Queue: 99})
	b := c.MeanBreakdown()
	if math.Abs(b.Queue-0.3) > 1e-12 || math.Abs(b.Load-0.2) > 1e-12 ||
		math.Abs(b.Exec-0.4) > 1e-12 || math.Abs(b.Transfer-0.1) > 1e-12 {
		t.Errorf("breakdown = %+v", b)
	}
	if math.Abs(b.Total()-1.0) > 1e-12 {
		t.Errorf("Total = %v", b.Total())
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {10, 1}, {50, 5}, {95, 10}, {100, 10}, {90, 9},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("P50 of empty should be NaN")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cdf := CDF(xs, 2)
	if len(cdf) != 2 {
		t.Fatalf("CDF points = %d, want 2", len(cdf))
	}
	if cdf[1].Latency != 4 || cdf[1].Fraction != 1 {
		t.Errorf("last CDF point = %+v, want max/1.0", cdf[1])
	}
	if cdf[0].Latency != 2 || cdf[0].Fraction != 0.5 {
		t.Errorf("first CDF point = %+v", cdf[0])
	}
	if CDF(nil, 5) != nil {
		t.Error("CDF of empty should be nil")
	}
	full := CDF(xs, 0)
	if len(full) != 4 {
		t.Errorf("CDF with points=0 should use all values, got %d", len(full))
	}
}

// Property: CDF fractions are non-decreasing and end at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, pts uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sortFloats(xs)
		cdf := CDF(xs, int(pts%16)+1)
		prev := 0.0
		for _, p := range cdf {
			if p.Fraction < prev {
				return false
			}
			prev = p.Fraction
		}
		return cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty should be NaN")
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Add(0, 0.2)
	tl.Add(10, 0.8)
	tl.Add(20, 0.4)
	if tl.Len() != 3 {
		t.Fatalf("Len = %d", tl.Len())
	}
	if got := tl.At(5); got != 0.2 {
		t.Errorf("At(5) = %v, want 0.2", got)
	}
	if got := tl.At(15); got != 0.8 {
		t.Errorf("At(15) = %v, want 0.8", got)
	}
	if got := tl.At(-1); got != 0 {
		t.Errorf("At(-1) = %v, want 0", got)
	}
	if got := tl.Max(); got != 0.8 {
		t.Errorf("Max = %v", got)
	}
	// Time-weighted mean over [0,20]: (0.2*10 + 0.8*10)/20 = 0.5.
	if got := tl.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Mean = %v, want 0.5", got)
	}
	// Value below 0.5 during [0,10) = half the span.
	if got := tl.FractionBelow(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
}

func TestTimelineOutOfOrderPanics(t *testing.T) {
	var tl Timeline
	tl.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	tl.Add(5, 1)
}

func TestTimelineDegenerate(t *testing.T) {
	var tl Timeline
	if tl.Mean() != 0 || tl.Max() != 0 || tl.FractionBelow(1) != 0 {
		t.Error("empty timeline not zero-valued")
	}
	tl.Add(5, 3)
	if tl.Mean() != 0 {
		t.Error("single-sample mean should be 0")
	}
}

func TestFaultCounters(t *testing.T) {
	c := NewCollector()
	if c.Availability() != 1 {
		t.Error("empty collector availability should be 1")
	}
	c.Record(RequestRecord{ID: 0, Arrival: 1, Completion: 2})
	c.Record(RequestRecord{ID: 1, Arrival: 1, Completion: 3, Retries: 2})
	c.Record(RequestRecord{ID: 2, Arrival: 1, Completion: 4, Retries: 1, Dropped: true, Failed: true})
	c.Record(RequestRecord{ID: 3, Arrival: 1, Completion: 5, Dropped: true})

	if got := c.FailedCount(); got != 1 {
		t.Errorf("FailedCount = %d, want 1 (plain drops are not failures)", got)
	}
	if got := c.RetriedCount(); got != 2 {
		t.Errorf("RetriedCount = %d, want 2", got)
	}
	if got := c.TotalRetries(); got != 3 {
		t.Errorf("TotalRetries = %d, want 3", got)
	}
	if got, want := c.Availability(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
}

func TestDroppedRecordLatencyNonNegative(t *testing.T) {
	// Dropped requests record the drop time as Completion; latency is
	// the time spent waiting before abandonment, never negative.
	r := RequestRecord{Arrival: 5, Completion: 105, Dropped: true}
	if got := r.Latency(); got != 100 {
		t.Errorf("dropped latency = %v, want 100", got)
	}
}

func TestOverloadOutcomeCounters(t *testing.T) {
	c := NewCollector()
	// Served within SLO, served late, fast-fail rejection, timeout
	// drop, fault casualty.
	c.Record(RequestRecord{ID: 0, Func: 0, Arrival: 0, Completion: 1, SLO: 2})
	c.Record(RequestRecord{ID: 1, Func: 0, Arrival: 0, Completion: 5, SLO: 2})
	c.Record(RequestRecord{ID: 2, Func: 1, Arrival: 0, Completion: 0, SLO: 2, Dropped: true, Rejected: true})
	c.Record(RequestRecord{ID: 3, Func: 1, Arrival: 0, Completion: 8, SLO: 2, Dropped: true})
	c.Record(RequestRecord{ID: 4, Func: 1, Arrival: 0, Completion: 3, SLO: 2, Dropped: true, Failed: true})

	if got := c.RejectedCount(); got != 1 {
		t.Errorf("RejectedCount = %d, want 1", got)
	}
	if got := c.TimeoutDropCount(); got != 1 {
		t.Errorf("TimeoutDropCount = %d, want 1 (rejections and fault casualties excluded)", got)
	}
	if got := c.Goodput(10); got != 0.1 {
		t.Errorf("Goodput = %v, want 0.1 (only the SLO hit counts)", got)
	}
	gb := c.GoodputByFunc(10)
	if gb[0] != 0.1 || gb[1] != 0 {
		t.Errorf("GoodputByFunc = %v, want func 0 at 0.1 and func 1 absent/zero", gb)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 1 {
		t.Errorf("JainIndex(nil) = %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero JainIndex = %v, want 1", got)
	}
	if got := JainIndex([]float64{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal-share JainIndex = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("winner-takes-all JainIndex = %v, want 1/n = 0.25", got)
	}
	// 2:1 split over two flows: (3)^2 / (2*5) = 0.9.
	if got := JainIndex([]float64{2, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("2:1 JainIndex = %v, want 0.9", got)
	}
}
