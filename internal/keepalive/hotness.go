package keepalive

// HotnessWindow is the length (seconds) of the sliding window over which
// instance utilisation is assessed for state transitions.
const HotnessWindow = 30.0

// Tracker measures an instance's recent utilisation: the fraction of the
// sliding window its slice spent serving the instance's requests. The
// FFS invoker continuously assesses this to decide promotions to
// exclusive-hot and demotions to time sharing (§5.3).
type Tracker struct {
	window float64
	// busy intervals, pruned to the window; open interval uses end < 0.
	intervals [][2]float64
	lastUse   float64
}

// NewTracker returns a tracker with the default window.
func NewTracker() *Tracker { return &Tracker{window: HotnessWindow} }

// NewTrackerWindow returns a tracker with a custom window length.
func NewTrackerWindow(w float64) *Tracker {
	if w <= 0 {
		panic("keepalive: non-positive hotness window")
	}
	return &Tracker{window: w}
}

// Begin records that the instance started serving at time now. Busy
// intervals may legitimately begin in the past (completion callbacks
// back-date the service start), but lastUse never moves backwards past
// activity a later Touch already recorded.
func (t *Tracker) Begin(now float64) {
	if now > t.lastUse {
		t.lastUse = now
	}
	if n := len(t.intervals); n > 0 && t.intervals[n-1][1] < 0 {
		return // already serving
	}
	t.intervals = append(t.intervals, [2]float64{now, -1})
}

// End records that the instance stopped serving at time now. An End
// with no open interval counts as plain activity (Touch) rather than
// being dropped, and an End before the interval's start clamps to a
// zero-length interval; lastUse is monotonic in both cases.
func (t *Tracker) End(now float64) {
	if now > t.lastUse {
		t.lastUse = now
	}
	if n := len(t.intervals); n > 0 && t.intervals[n-1][1] < 0 {
		end := now
		if end < t.intervals[n-1][0] {
			end = t.intervals[n-1][0]
		}
		t.intervals[n-1][1] = end
	}
}

// Touch records request activity without busy time (e.g. arrival).
func (t *Tracker) Touch(now float64) {
	if now > t.lastUse {
		t.lastUse = now
	}
}

// LastUse returns the time of the most recent activity.
func (t *Tracker) LastUse() float64 { return t.lastUse }

// Utilization returns the busy fraction of the window ending at now.
func (t *Tracker) Utilization(now float64) float64 {
	lo := now - t.window
	if lo < 0 {
		lo = 0
	}
	span := now - lo
	if span <= 0 {
		return 0
	}
	busy := 0.0
	kept := t.intervals[:0]
	for _, iv := range t.intervals {
		start, end := iv[0], iv[1]
		open := end < 0
		if open {
			end = now
		}
		if end <= lo && !open {
			continue // aged out; prune
		}
		kept = append(kept, iv)
		if start < lo {
			start = lo
		}
		if end > now {
			end = now
		}
		if end > start {
			busy += end - start
		}
	}
	t.intervals = kept
	u := busy / span
	if u > 1 {
		u = 1
	}
	return u
}

// IsHot reports whether utilisation at now exceeds the exclusive-hot
// threshold.
func (t *Tracker) IsHot(now float64) bool {
	return t.Utilization(now) > HotUtilization
}

// IdleFor returns how long the instance has been without activity.
func (t *Tracker) IdleFor(now float64) float64 {
	d := now - t.lastUse
	if d < 0 {
		return 0
	}
	return d
}

// Load cost model. Warm reloads copy model state host-to-device over
// PCIe; cold starts additionally pay environment setup and a remote
// fetch (§5.3: retrieving from CPU "reduc[es] loading time compared to
// fetching the model from remote storage").
const (
	// PCIeBandwidthGBps is the effective host-to-device copy bandwidth.
	PCIeBandwidthGBps = 12.0
	// ColdStartBase covers container/runtime initialisation.
	ColdStartBase = 5.0
	// RemoteFetchGBps is the effective remote-storage fetch bandwidth
	// (registry or cached object store over the datacenter network).
	RemoteFetchGBps = 5.0
	// DtoHBandwidthGBps is the effective device-to-host writeback
	// bandwidth for swapping a model out of GPU memory. Writeback
	// contends with ongoing host-to-device traffic, so it is modelled
	// slightly below the HtoD figure.
	DtoHBandwidthGBps = 10.0
)

// WarmLoadTime returns the host-to-device reload time for memGB of model
// state.
func WarmLoadTime(memGB float64) float64 {
	if memGB < 0 {
		memGB = 0
	}
	return memGB / PCIeBandwidthGBps
}

// ColdStartTime returns the full cold-start time for memGB of model
// state: setup, remote fetch, and the device copy.
func ColdStartTime(memGB float64) float64 {
	if memGB < 0 {
		memGB = 0
	}
	return ColdStartBase + memGB/RemoteFetchGBps + memGB/PCIeBandwidthGBps
}

// SwapInTime returns the time to restore a model from the host pool to
// device memory: a pure PCIe host-to-device copy, identical in cost to
// a warm reload (the pool copy is exactly the warm copy, managed).
func SwapInTime(memGB float64) float64 { return WarmLoadTime(memGB) }

// SwapOutTime returns the time to write a model's device state back to
// the host pool over PCIe, paid when a swap demotion must drain GPU
// memory before its slices are reusable.
func SwapOutTime(memGB float64) float64 {
	if memGB < 0 {
		memGB = 0
	}
	return memGB / DtoHBandwidthGBps
}
