// Package keepalive implements FluidFaaS's hotness-aware eviction-based
// time sharing (§5.3): the multi-level keep-alive states of Fig. 8,
// their legal transitions, the utilisation tracking that drives them,
// LRU eviction ordering, and the model (re)load cost model.
package keepalive

import (
	"fmt"
)

// State is an instance keep-alive state (Fig. 8).
type State int

// The four states. Pipeline instances are always ExclusiveHot (§5.3).
const (
	// Cold: the instance does not exist; a request pays a full cold
	// start.
	Cold State = iota
	// Warm: the model data has been evicted to CPU memory; a request
	// pays a host-to-device reload.
	Warm
	// TimeSharing: the instance's MIG slice may be shared with other
	// time-sharing instances; its data may be on the slice or in CPU
	// memory.
	TimeSharing
	// ExclusiveHot: the instance exclusively owns its slice(s) and is
	// exempt from eviction.
	ExclusiveHot
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Cold:
		return "cold"
	case Warm:
		return "warm"
	case TimeSharing:
		return "time-sharing"
	case ExclusiveHot:
		return "exclusive-hot"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Policy thresholds (§5.3).
const (
	// HotUtilization promotes a time-sharing instance to exclusive-hot
	// when its recent utilisation exceeds it ("not actively busy (i.e.,
	// utilization below 30%)").
	HotUtilization = 0.30
	// IdleTimeout terminates a warm instance with no requests for ten
	// minutes (transition 5).
	IdleTimeout = 600.0
)

// legal lists the transitions of Fig. 8 plus the warm-reload return.
var legal = map[State][]State{
	Cold:         {TimeSharing},        // 1: first request creates the instance
	TimeSharing:  {ExclusiveHot, Warm}, // 2: utilisation exceeds threshold; 4: evicted to CPU
	ExclusiveHot: {TimeSharing},        // 3: request volume decreases
	Warm:         {TimeSharing, Cold},  // reload on request; 5: idle timeout
}

// CanTransition reports whether from -> to is a legal Fig. 8 transition.
func CanTransition(from, to State) bool {
	for _, s := range legal[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Machine tracks one instance's keep-alive state and enforces Fig. 8.
type Machine struct {
	state State
	// history counts transitions, for diagnostics.
	transitions int
}

// NewMachine returns a machine in the Cold state.
func NewMachine() *Machine { return &Machine{state: Cold} }

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Transitions returns how many transitions have occurred.
func (m *Machine) Transitions() int { return m.transitions }

// To moves the machine to the target state, or reports an error for an
// illegal transition.
func (m *Machine) To(to State) error {
	if !CanTransition(m.state, to) {
		return fmt.Errorf("keepalive: illegal transition %v -> %v", m.state, to)
	}
	m.state = to
	m.transitions++
	return nil
}
