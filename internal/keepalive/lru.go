package keepalive

import "container/list"

// LRU orders time-sharing residents of a slice by recency of use, so the
// FFS invoker can pick "the least-recently-used (LRU) instance for
// eviction" (§5.3). Keys are instance IDs.
type LRU struct {
	order *list.List // front = most recent
	index map[string]*list.Element
}

// NewLRU returns an empty LRU.
func NewLRU() *LRU {
	return &LRU{order: list.New(), index: make(map[string]*list.Element)}
}

// Len returns the number of tracked instances.
func (l *LRU) Len() int { return l.order.Len() }

// Touch marks id as most recently used, inserting it if new.
func (l *LRU) Touch(id string) {
	if e, ok := l.index[id]; ok {
		l.order.MoveToFront(e)
		return
	}
	l.index[id] = l.order.PushFront(id)
}

// Contains reports whether id is tracked.
func (l *LRU) Contains(id string) bool {
	_, ok := l.index[id]
	return ok
}

// Remove drops id from the LRU (e.g. after eviction or promotion).
func (l *LRU) Remove(id string) {
	if e, ok := l.index[id]; ok {
		l.order.Remove(e)
		delete(l.index, id)
	}
}

// Victim returns the least recently used instance without removing it;
// ok is false when empty.
func (l *LRU) Victim() (string, bool) {
	e := l.order.Back()
	if e == nil {
		return "", false
	}
	return e.Value.(string), true
}

// PopVictim removes and returns the least recently used instance.
func (l *LRU) PopVictim() (string, bool) {
	id, ok := l.Victim()
	if ok {
		l.Remove(id)
	}
	return id, ok
}
