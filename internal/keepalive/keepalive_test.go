package keepalive

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFig8Transitions pins the legal state transitions of paper Fig. 8.
func TestFig8Transitions(t *testing.T) {
	allowed := [][2]State{
		{Cold, TimeSharing},         // 1: creation on first request
		{TimeSharing, ExclusiveHot}, // 2: utilisation above threshold
		{ExclusiveHot, TimeSharing}, // 3: request volume drops
		{TimeSharing, Warm},         // 4: evicted to CPU memory
		{Warm, Cold},                // 5: ten-minute idle timeout
		{Warm, TimeSharing},         // reload on demand
	}
	allowedSet := map[[2]State]bool{}
	for _, tr := range allowed {
		allowedSet[tr] = true
		if !CanTransition(tr[0], tr[1]) {
			t.Errorf("transition %v -> %v should be legal", tr[0], tr[1])
		}
	}
	states := []State{Cold, Warm, TimeSharing, ExclusiveHot}
	for _, from := range states {
		for _, to := range states {
			if !allowedSet[[2]State{from, to}] && CanTransition(from, to) {
				t.Errorf("transition %v -> %v should be illegal", from, to)
			}
		}
	}
}

func TestMachineLifecycle(t *testing.T) {
	m := NewMachine()
	if m.State() != Cold {
		t.Fatalf("initial state = %v, want cold", m.State())
	}
	steps := []State{TimeSharing, ExclusiveHot, TimeSharing, Warm, TimeSharing, Warm, Cold}
	for _, s := range steps {
		if err := m.To(s); err != nil {
			t.Fatalf("transition to %v: %v", s, err)
		}
	}
	if m.Transitions() != len(steps) {
		t.Errorf("transitions = %d, want %d", m.Transitions(), len(steps))
	}
	if err := m.To(ExclusiveHot); err == nil {
		t.Error("cold -> exclusive-hot accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Cold: "cold", Warm: "warm", TimeSharing: "time-sharing",
		ExclusiveHot: "exclusive-hot",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestTrackerUtilization(t *testing.T) {
	tr := NewTrackerWindow(10)
	tr.Begin(0)
	tr.End(3)
	if got := tr.Utilization(10); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("utilization = %v, want 0.3", got)
	}
	// Window slides: by t=20 the [0,3] interval has aged out.
	if got := tr.Utilization(20); got != 0 {
		t.Errorf("utilization after aging = %v, want 0", got)
	}
}

func TestTrackerOpenInterval(t *testing.T) {
	tr := NewTrackerWindow(10)
	tr.Begin(5)
	if got := tr.Utilization(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("open interval utilization = %v, want 0.5", got)
	}
	// Still serving: stays at 100% of the recent window eventually.
	if got := tr.Utilization(100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("long open interval = %v, want 1", got)
	}
}

func TestTrackerPartialOverlap(t *testing.T) {
	tr := NewTrackerWindow(10)
	tr.Begin(0)
	tr.End(8)
	// Window [5,15]: overlap [5,8] = 3 of 10.
	if got := tr.Utilization(15); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("partial overlap = %v, want 0.3", got)
	}
}

func TestTrackerIsHotThreshold(t *testing.T) {
	tr := NewTrackerWindow(10)
	tr.Begin(0)
	tr.End(3.1)
	if !tr.IsHot(10) {
		t.Error("31% utilization should be hot (threshold 30%)")
	}
	tr2 := NewTrackerWindow(10)
	tr2.Begin(0)
	tr2.End(2.9)
	if tr2.IsHot(10) {
		t.Error("29% utilization should not be hot")
	}
}

func TestTrackerEarlyWindow(t *testing.T) {
	tr := NewTrackerWindow(30)
	tr.Begin(0)
	tr.End(2)
	// At t=4, the window clips to [0,4]: 2/4.
	if got := tr.Utilization(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("early-window utilization = %v, want 0.5", got)
	}
}

func TestTrackerIdleAndTouch(t *testing.T) {
	tr := NewTracker()
	tr.Begin(0)
	tr.End(1)
	if got := tr.IdleFor(11); got != 10 {
		t.Errorf("IdleFor = %v, want 10", got)
	}
	tr.Touch(15)
	if got := tr.IdleFor(16); got != 1 {
		t.Errorf("IdleFor after touch = %v, want 1", got)
	}
	if got := tr.LastUse(); got != 15 {
		t.Errorf("LastUse = %v, want 15", got)
	}
	tr.Touch(2) // stale touch must not move time backwards
	if got := tr.LastUse(); got != 15 {
		t.Errorf("LastUse after stale touch = %v", got)
	}
}

func TestTrackerDoubleBeginIgnored(t *testing.T) {
	tr := NewTrackerWindow(10)
	tr.Begin(0)
	tr.Begin(2) // already serving
	tr.End(4)
	if got := tr.Utilization(10); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("utilization = %v, want 0.4", got)
	}
}

// TestTrackerDefensiveSequences: out-of-order Begin/End/Touch calls
// (completion callbacks fire in event order, not wall order) must keep
// lastUse monotonic and never drop or corrupt activity.
func TestTrackerDefensiveSequences(t *testing.T) {
	cases := []struct {
		name    string
		drive   func(tr *Tracker)
		lastUse float64
		util    float64 // at now=10, window 10
	}{
		{
			// An End with no open interval is still evidence the
			// instance was active: it must count as a Touch, not vanish.
			name:    "end without begin touches",
			drive:   func(tr *Tracker) { tr.End(3) },
			lastUse: 3,
			util:    0,
		},
		{
			// A Begin back-dated before activity a later Touch recorded
			// must not rewind lastUse.
			name: "stale begin keeps lastUse",
			drive: func(tr *Tracker) {
				tr.Touch(6)
				tr.Begin(2)
				tr.End(4)
			},
			lastUse: 6,
			util:    0.2,
		},
		{
			// An End before its interval's start clamps to a zero-length
			// interval rather than going negative.
			name: "end before start clamps",
			drive: func(tr *Tracker) {
				tr.Begin(5)
				tr.End(3)
			},
			lastUse: 5,
			util:    0,
		},
		{
			// A stale End after a fresher Touch closes the interval at
			// the End time but leaves lastUse at the Touch.
			name: "stale end keeps lastUse",
			drive: func(tr *Tracker) {
				tr.Begin(1)
				tr.Touch(8)
				tr.End(4)
			},
			lastUse: 8,
			util:    0.3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTrackerWindow(10)
			tc.drive(tr)
			if got := tr.LastUse(); got != tc.lastUse {
				t.Errorf("LastUse = %v, want %v", got, tc.lastUse)
			}
			if got := tr.Utilization(10); math.Abs(got-tc.util) > 1e-12 {
				t.Errorf("Utilization(10) = %v, want %v", got, tc.util)
			}
		})
	}
}

// Property: utilisation is always within [0, 1].
func TestTrackerBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := NewTrackerWindow(5)
		now := 0.0
		for _, r := range raw {
			now += float64(r%7) * 0.5
			if r%2 == 0 {
				tr.Begin(now)
			} else {
				tr.End(now)
			}
			u := tr.Utilization(now)
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewTrackerWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewTrackerWindow(0)
}

func TestLRU(t *testing.T) {
	l := NewLRU()
	if _, ok := l.Victim(); ok {
		t.Error("empty LRU returned a victim")
	}
	l.Touch("a")
	l.Touch("b")
	l.Touch("c")
	if v, _ := l.Victim(); v != "a" {
		t.Errorf("victim = %q, want a", v)
	}
	l.Touch("a") // a becomes most recent
	if v, _ := l.Victim(); v != "b" {
		t.Errorf("victim after touch = %q, want b", v)
	}
	l.Remove("b")
	if v, _ := l.PopVictim(); v != "c" {
		t.Errorf("pop victim = %q, want c", v)
	}
	if l.Len() != 1 || !l.Contains("a") || l.Contains("c") {
		t.Errorf("LRU state wrong: len=%d", l.Len())
	}
	l.Remove("zzz") // no-op
}

func TestLoadTimes(t *testing.T) {
	if got := WarmLoadTime(12); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("WarmLoadTime(12) = %v, want 1", got)
	}
	if got := WarmLoadTime(-5); got != 0 {
		t.Errorf("WarmLoadTime(-5) = %v, want 0", got)
	}
	cold := ColdStartTime(12)
	if cold <= WarmLoadTime(12) {
		t.Error("cold start should cost more than warm reload")
	}
	want := ColdStartBase + 12.0/RemoteFetchGBps + 12.0/PCIeBandwidthGBps
	if math.Abs(cold-want) > 1e-12 {
		t.Errorf("ColdStartTime(12) = %v, want %v", cold, want)
	}
}

func TestSwapTimes(t *testing.T) {
	// A swap-in is the managed warm reload: same PCIe copy, same cost.
	if got := SwapInTime(24); got != WarmLoadTime(24) {
		t.Errorf("SwapInTime(24) = %v, want WarmLoadTime %v", got, WarmLoadTime(24))
	}
	if got := SwapOutTime(20); math.Abs(got-20.0/DtoHBandwidthGBps) > 1e-12 {
		t.Errorf("SwapOutTime(20) = %v", got)
	}
	// Device-to-host is the slower direction, and both swap directions
	// must stay far below a cold start for the tier to pay off.
	if SwapOutTime(20) <= SwapInTime(20) {
		t.Error("swap-out should cost more than swap-in (DtoH < HtoD bandwidth)")
	}
	if SwapInTime(20)+SwapOutTime(20) >= ColdStartTime(20) {
		t.Error("full swap round-trip should undercut a cold start")
	}
	if SwapInTime(-3) != 0 || SwapOutTime(-3) != 0 {
		t.Error("negative sizes should clamp to 0")
	}
}

func TestIdleTimeoutMatchesPaper(t *testing.T) {
	if IdleTimeout != 600 {
		t.Errorf("IdleTimeout = %v, want 600 (ten minutes)", IdleTimeout)
	}
	if HotUtilization != 0.30 {
		t.Errorf("HotUtilization = %v, want 0.30", HotUtilization)
	}
}

// Property: under random transition attempts, the machine only ever
// holds legal states and rejects exactly the non-Fig.8 edges.
func TestMachineRandomWalkProperty(t *testing.T) {
	states := []State{Cold, Warm, TimeSharing, ExclusiveHot}
	f := func(moves []uint8) bool {
		m := NewMachine()
		transitions := 0
		for _, mv := range moves {
			target := states[int(mv)%len(states)]
			from := m.State()
			err := m.To(target)
			if CanTransition(from, target) != (err == nil) {
				return false
			}
			if err == nil {
				transitions++
				if m.State() != target {
					return false
				}
			} else if m.State() != from {
				return false
			}
		}
		return m.Transitions() == transitions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
