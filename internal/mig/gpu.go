package mig

import (
	"fmt"
	"sort"
)

// ReconfigureDelay is the time (seconds) a GPU is unavailable while its
// MIG partition is changed. The paper reports several minutes for
// checkpoint, re-partition and resume (§2.2); we use 5 minutes. The value
// is exported so experiments can study sensitivity, but no scheduler in
// this repo reconfigures on the request path — that is the point of the
// paper.
const ReconfigureDelay = 300.0

// Slice is one MIG instance on a GPU: the unit of allocation, strong
// isolation, and activity accounting.
type Slice struct {
	Type SliceType
	GPU  *GPU
	// Index of the slice within its GPU (stable across frees).
	Index int

	// Owner is an opaque tag identifying the holder (instance ID);
	// empty when free.
	Owner string

	// Activity accounting.
	active      bool
	activeSince float64
	activeTotal float64

	// Occupancy accounting ("occupied" = allocated to an instance,
	// regardless of whether it is processing; paper Fig. 5).
	occupiedSince float64
	occupiedTotal float64

	// unhealthy marks a faulted slice (e.g. an uncorrectable ECC error
	// in its memory partition): it cannot be allocated until repaired.
	unhealthy bool

	// quarantined marks a slice the platform's health scorer pulled
	// from placement: the hardware still runs (unlike unhealthy), but
	// its observed timing diverged from its declared profile far enough
	// that scheduling onto it would burn SLOs. Cleared on probation.
	quarantined bool
}

// bumpGen invalidates cached free-slice views of the owning GPU.
func (s *Slice) bumpGen() {
	if s.GPU != nil {
		s.GPU.gen++
	}
}

// ID returns a stable identifier like "gpu3/2g.20gb#1".
func (s *Slice) ID() string {
	return fmt.Sprintf("gpu%d/%s#%d", s.GPU.ID, s.Type, s.Index)
}

// Free reports whether the slice has no owner.
func (s *Slice) Free() bool { return s.Owner == "" }

// Healthy reports whether the slice itself is fault-free. A usable
// slice additionally needs a healthy GPU (see Usable).
func (s *Slice) Healthy() bool { return !s.unhealthy }

// SetHealthy marks the slice faulted (false) or repaired (true). The
// platform tears down the slice's owner when it fails; health itself
// carries no accounting.
func (s *Slice) SetHealthy(h bool) {
	s.unhealthy = !h
	s.bumpGen()
}

// Quarantined reports whether the health scorer has pulled the slice
// from placement.
func (s *Slice) Quarantined() bool { return s.quarantined }

// SetQuarantined pulls the slice from placement (true) or returns it on
// probation (false). Like health flips, it bumps the free-set
// generation so cached placement views and planner free-slice
// signatures invalidate.
func (s *Slice) SetQuarantined(q bool) {
	s.quarantined = q
	s.bumpGen()
}

// Usable reports whether the slice and its GPU are both healthy, the
// slice is not quarantined, and the GPU is not mid-reconfiguration.
func (s *Slice) Usable(now float64) bool {
	return !s.unhealthy && !s.quarantined && s.GPU.Healthy() && s.GPU.Available(now)
}

// Allocate assigns the slice to owner at time now. Allocating a held
// slice is a model bug and panics.
func (s *Slice) Allocate(owner string, now float64) {
	if s.Owner != "" {
		panic(fmt.Sprintf("mig: slice %s already owned by %s", s.ID(), s.Owner))
	}
	if owner == "" {
		panic("mig: empty owner")
	}
	s.Owner = owner
	s.occupiedSince = now
	s.bumpGen()
}

// Release frees the slice at time now. Releasing a free slice panics.
func (s *Slice) Release(now float64) {
	if s.Owner == "" {
		panic(fmt.Sprintf("mig: release of free slice %s", s.ID()))
	}
	if s.active {
		s.SetActive(false, now)
	}
	s.occupiedTotal += now - s.occupiedSince
	s.Owner = ""
	s.bumpGen()
}

// SetActive marks the slice as processing (or idle) at time now. Activity
// drives MIG time (per-slice busy time) and GPU time (union over the
// GPU's slices).
func (s *Slice) SetActive(active bool, now float64) {
	if s.active == active {
		return
	}
	s.active = active
	if active {
		s.activeSince = now
		s.GPU.sliceActivated(now)
	} else {
		s.activeTotal += now - s.activeSince
		s.GPU.sliceDeactivated(now)
	}
}

// Active reports whether the slice is currently processing.
func (s *Slice) Active() bool { return s.active }

// ActiveTime returns the cumulative processing time up to now ("MIG
// time" for this slice).
func (s *Slice) ActiveTime(now float64) float64 {
	t := s.activeTotal
	if s.active {
		t += now - s.activeSince
	}
	return t
}

// OccupiedTime returns the cumulative time the slice has been allocated.
func (s *Slice) OccupiedTime(now float64) float64 {
	t := s.occupiedTotal
	if s.Owner != "" {
		t += now - s.occupiedSince
	}
	return t
}

// GPU is one physical accelerator partitioned into MIG slices.
type GPU struct {
	ID     int
	Node   int // owning node index
	config Config
	Slices []*Slice

	// Union-of-activity accounting for "GPU time".
	activeSlices int
	unionSince   float64
	unionTotal   float64

	// Reconfiguration: the GPU is unusable until availableAt.
	availableAt float64

	// unhealthy marks a failed GPU (driver wedge, XID error): none of
	// its slices can be allocated until it recovers.
	unhealthy bool

	// gen counts free-set-changing events (slice allocate/release,
	// health flips, reconfiguration), so callers can cache FreeSlices
	// views and revalidate in O(1) instead of re-walking slices.
	gen uint64
}

// Gen returns the GPU's free-set generation: it changes whenever the
// set of free slices may have changed for a state reason. It does NOT
// advance when the GPU becomes available again after a reconfiguration
// (a pure passage-of-time change); Available(now) must be checked
// separately before trusting a cached view.
func (g *GPU) Gen() uint64 { return g.gen }

// NewGPU creates a GPU partitioned per cfg. Invalid configs panic.
func NewGPU(node, id int, cfg Config) *GPU {
	if !cfg.Valid() {
		panic(fmt.Sprintf("mig: invalid config %v for gpu %d", cfg, id))
	}
	g := &GPU{ID: id, Node: node, config: cfg.Canonical()}
	g.buildSlices()
	return g
}

func (g *GPU) buildSlices() {
	g.Slices = g.Slices[:0]
	for i, t := range g.config {
		g.Slices = append(g.Slices, &Slice{Type: t, GPU: g, Index: i})
	}
}

// Config returns the GPU's current partition.
func (g *GPU) Config() Config { return g.config }

// Available reports whether the GPU is usable at time now (i.e. not mid
// reconfiguration).
func (g *GPU) Available(now float64) bool { return now >= g.availableAt }

// Healthy reports whether the GPU is fault-free.
func (g *GPU) Healthy() bool { return !g.unhealthy }

// SetHealthy marks the GPU failed (false) or recovered (true). Slice
// health is tracked separately, so a slice that faulted on its own
// stays down when its GPU recovers.
func (g *GPU) SetHealthy(h bool) {
	g.unhealthy = !h
	g.gen++
}

// Reconfigure changes the partition at time now. All slices must be free.
// The GPU becomes unavailable for ReconfigureDelay seconds — the rigid
// constraint central to the paper.
func (g *GPU) Reconfigure(cfg Config, now float64) error {
	if !cfg.Valid() {
		return fmt.Errorf("mig: invalid config %v", cfg)
	}
	for _, s := range g.Slices {
		if !s.Free() {
			return fmt.Errorf("mig: gpu %d slice %s still owned by %s", g.ID, s.ID(), s.Owner)
		}
	}
	// Preserve accumulated accounting across the repartition.
	g.config = cfg.Canonical()
	g.buildSlices()
	g.availableAt = now + ReconfigureDelay
	g.gen++
	return nil
}

func (g *GPU) sliceActivated(now float64) {
	if g.activeSlices == 0 {
		g.unionSince = now
	}
	g.activeSlices++
}

func (g *GPU) sliceDeactivated(now float64) {
	g.activeSlices--
	if g.activeSlices < 0 {
		panic("mig: negative active slice count")
	}
	if g.activeSlices == 0 {
		g.unionTotal += now - g.unionSince
	}
}

// ActiveTime returns the cumulative time any slice of the GPU was
// processing ("GPU time": the whole GPU counts as active even if only one
// slice is used, §6).
func (g *GPU) ActiveTime(now float64) float64 {
	t := g.unionTotal
	if g.activeSlices > 0 {
		t += now - g.unionSince
	}
	return t
}

// MIGTime returns the summed per-slice active time.
func (g *GPU) MIGTime(now float64) float64 {
	t := 0.0
	for _, s := range g.Slices {
		t += s.ActiveTime(now)
	}
	return t
}

// FreeSlices returns the unallocated healthy slices, largest first.
// Failed hardware never appears in placement views.
func (g *GPU) FreeSlices(now float64) []*Slice {
	if !g.Available(now) || g.unhealthy {
		return nil
	}
	var out []*Slice
	for _, s := range g.Slices {
		if s.Free() && s.Healthy() && !s.quarantined {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type > out[j].Type
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// FreeGPCs returns the total compute of free slices.
func (g *GPU) FreeGPCs(now float64) int {
	n := 0
	for _, s := range g.FreeSlices(now) {
		n += s.Type.GPCs()
	}
	return n
}

// ActiveGPCs returns the compute of slices currently processing.
func (g *GPU) ActiveGPCs() int {
	n := 0
	for _, s := range g.Slices {
		if s.active {
			n += s.Type.GPCs()
		}
	}
	return n
}

// OccupiedGPCs returns the compute of allocated slices.
func (g *GPU) OccupiedGPCs() int {
	n := 0
	for _, s := range g.Slices {
		if !s.Free() {
			n += s.Type.GPCs()
		}
	}
	return n
}
