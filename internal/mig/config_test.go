package mig

import (
	"testing"
	"testing/quick"
)

func TestConfigValidity(t *testing.T) {
	valid := []Config{
		{Slice7g},
		{Slice4g},
		{Slice4g, Slice3g},
		{Slice4g, Slice2g, Slice1g}, // the paper's default partition
		{Slice3g, Slice3g},
		{Slice3g, Slice2g, Slice2g}, // P2
		{Slice2g, Slice2g, Slice2g, Slice1g},
		{Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g},
		{Slice4g, Slice1g, Slice1g, Slice1g},
		{Slice3g, Slice2g, Slice1g, Slice1g},
	}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("config %v should be valid", c)
		}
	}
	invalid := []Config{
		{},                                   // empty
		{Slice7g, Slice1g},                   // 7g occupies the whole GPU
		{Slice4g, Slice4g},                   // max one 4g
		{Slice4g, Slice3g, Slice1g},          // 8 GPCs > 7
		{Slice3g, Slice3g, Slice1g},          // memory slots exhausted
		{Slice2g, Slice2g, Slice2g, Slice2g}, // max three 2g
		{Slice2g, Slice2g, Slice2g, Slice1g, Slice1g},                            // 8 GPCs
		{Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g}, // max seven 1g
	}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("config %v should be invalid", c)
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	c := Config{Slice1g, Slice4g, Slice2g}
	s := c.String()
	if s != "4g.40gb+2g.20gb+1g.10gb" {
		t.Errorf("String = %q", s)
	}
	back, err := ParseConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s {
		t.Errorf("round trip = %q, want %q", back.String(), s)
	}
	if _, err := ParseConfig("4g.40gb+bogus"); err == nil {
		t.Error("ParseConfig accepted bogus profile")
	}
}

func TestConfigTotals(t *testing.T) {
	c := DefaultConfig
	if c.TotalGPCs() != 7 {
		t.Errorf("default partition GPCs = %d, want 7", c.TotalGPCs())
	}
	if c.TotalMemGB() != 70 {
		t.Errorf("default partition mem = %d, want 70", c.TotalMemGB())
	}
}

// TestTable7Partitions pins the partition schemes of paper Table 7.
func TestTable7Partitions(t *testing.T) {
	hybrid := HybridNode()
	if len(hybrid) != 8 {
		t.Fatalf("hybrid node has %d GPUs, want 8", len(hybrid))
	}
	wantHybrid := []string{
		"1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb",
		"2g.20gb+2g.20gb+2g.20gb+1g.10gb",
		"2g.20gb+2g.20gb+2g.20gb+1g.10gb",
		"4g.40gb+3g.40gb",
		"4g.40gb+3g.40gb",
		"4g.40gb+3g.40gb",
		"4g.40gb+3g.40gb",
		"4g.40gb+2g.20gb+1g.10gb",
	}
	for i, cfg := range hybrid {
		if !cfg.Valid() {
			t.Errorf("hybrid gpu %d config %v invalid", i, cfg)
		}
		if cfg.String() != wantHybrid[i] {
			t.Errorf("hybrid gpu %d = %s, want %s", i, cfg, wantHybrid[i])
		}
	}
	if ConfigP1.String() != "4g.40gb+2g.20gb+1g.10gb" {
		t.Errorf("P1 = %s", ConfigP1)
	}
	if ConfigP2.String() != "3g.40gb+2g.20gb+2g.20gb" {
		t.Errorf("P2 = %s", ConfigP2)
	}
	uni := UniformNode(ConfigP2, 8)
	if len(uni) != 8 || uni[3].String() != ConfigP2.String() {
		t.Errorf("UniformNode wrong: %v", uni)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	all := EnumerateConfigs()
	if len(all) == 0 {
		t.Fatal("no configs enumerated")
	}
	seen := make(map[string]bool)
	for _, c := range all {
		if !c.Valid() {
			t.Errorf("enumerated invalid config %v", c)
		}
		if seen[c.String()] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c.String()] = true
	}
	// Every partition scheme the paper uses must be enumerable.
	for _, want := range []Config{DefaultConfig, ConfigP2, ConfigFull1g,
		Config2g3x1g, Config3g4g, ConfigWhole} {
		if !seen[want.Canonical().String()] {
			t.Errorf("paper config %v missing from enumeration", want)
		}
	}
	// A GPU can never be split into two 4g or 7g+anything.
	if seen["4g.40gb+4g.40gb"] || seen["7g.80gb+1g.10gb"] {
		t.Error("enumeration contains physically impossible config")
	}
}

func TestEnumerateConfigsMaximal(t *testing.T) {
	nMax := 0
	for _, c := range EnumerateConfigs() {
		if c.Maximal() {
			nMax++
			// A maximal config uses all 7 GPCs or has no room left.
			if c.TotalGPCs() < 6 {
				t.Errorf("suspicious maximal config %v with %d GPCs", c, c.TotalGPCs())
			}
		}
	}
	if nMax == 0 {
		t.Error("no maximal configs found")
	}
}

// Property: validity is monotone — any subset of a valid config is valid.
func TestConfigSubsetValidityProperty(t *testing.T) {
	all := EnumerateConfigs()
	f := func(pick uint8, drop uint8) bool {
		c := all[int(pick)%len(all)]
		if len(c) <= 1 {
			return true
		}
		i := int(drop) % len(c)
		sub := append(append(Config{}, c[:i]...), c[i+1:]...)
		return len(sub) == 0 || sub.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMustConfigPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustConfig accepted invalid config")
		}
	}()
	MustConfig("4g.40gb", "4g.40gb")
}
