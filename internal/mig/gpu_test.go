package mig

import (
	"testing"
)

func TestGPUAllocateRelease(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	free := g.FreeSlices(0)
	if len(free) != 3 {
		t.Fatalf("free slices = %d, want 3", len(free))
	}
	if free[0].Type != Slice4g || free[1].Type != Slice2g || free[2].Type != Slice1g {
		t.Errorf("free slices not sorted largest first: %v %v %v",
			free[0].Type, free[1].Type, free[2].Type)
	}
	s := free[0]
	s.Allocate("inst-a", 10)
	if s.Free() {
		t.Error("slice still free after Allocate")
	}
	if got := len(g.FreeSlices(10)); got != 2 {
		t.Errorf("free slices after alloc = %d, want 2", got)
	}
	if g.OccupiedGPCs() != 4 {
		t.Errorf("OccupiedGPCs = %d, want 4", g.OccupiedGPCs())
	}
	s.Release(30)
	if !s.Free() {
		t.Error("slice not free after Release")
	}
	if got := s.OccupiedTime(100); got != 20 {
		t.Errorf("OccupiedTime = %v, want 20", got)
	}
}

func TestGPUDoubleAllocatePanics(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	s := g.Slices[0]
	s.Allocate("a", 0)
	defer func() {
		if recover() == nil {
			t.Error("double allocate did not panic")
		}
	}()
	s.Allocate("b", 1)
}

func TestGPUReleaseFreePanics(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	defer func() {
		if recover() == nil {
			t.Error("release of free slice did not panic")
		}
	}()
	g.Slices[0].Release(0)
}

func TestSliceActivityAccounting(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	s := g.Slices[0]
	s.Allocate("a", 0)
	s.SetActive(true, 10)
	s.SetActive(false, 25)
	s.SetActive(true, 30)
	if got := s.ActiveTime(40); got != 25 {
		t.Errorf("ActiveTime = %v, want 25 (15 closed + 10 open)", got)
	}
	s.SetActive(false, 40)
	if got := s.ActiveTime(100); got != 25 {
		t.Errorf("ActiveTime after close = %v, want 25", got)
	}
	// Redundant transitions are no-ops.
	s.SetActive(false, 50)
	if got := s.ActiveTime(100); got != 25 {
		t.Errorf("ActiveTime after redundant SetActive = %v", got)
	}
}

// GPU time is the union of slice activity; MIG time is the sum.
func TestGPUTimeUnionVsMIGTimeSum(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	a, b := g.Slices[0], g.Slices[1]
	a.Allocate("x", 0)
	b.Allocate("y", 0)
	// a active [0,10); b active [5,20). Union = 20, sum = 25.
	a.SetActive(true, 0)
	b.SetActive(true, 5)
	a.SetActive(false, 10)
	b.SetActive(false, 20)
	if got := g.ActiveTime(30); got != 20 {
		t.Errorf("GPU time = %v, want 20 (union)", got)
	}
	if got := g.MIGTime(30); got != 25 {
		t.Errorf("MIG time = %v, want 25 (sum)", got)
	}
	if g.ActiveGPCs() != 0 {
		t.Errorf("ActiveGPCs = %d, want 0", g.ActiveGPCs())
	}
}

func TestReleaseWhileActiveClosesActivity(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	s := g.Slices[0]
	s.Allocate("a", 0)
	s.SetActive(true, 5)
	s.Release(15)
	if got := s.ActiveTime(100); got != 10 {
		t.Errorf("ActiveTime = %v, want 10", got)
	}
	if got := g.ActiveTime(100); got != 10 {
		t.Errorf("GPU time = %v, want 10", got)
	}
}

func TestGPUReconfigure(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	if err := g.Reconfigure(ConfigP2, 100); err != nil {
		t.Fatal(err)
	}
	if g.Available(100) {
		t.Error("GPU available immediately after reconfigure")
	}
	if g.Available(100 + ReconfigureDelay - 1) {
		t.Error("GPU available before delay elapsed")
	}
	if !g.Available(100 + ReconfigureDelay) {
		t.Error("GPU not available after delay")
	}
	if g.Config().String() != ConfigP2.String() {
		t.Errorf("config = %v, want %v", g.Config(), ConfigP2)
	}
	if got := g.FreeSlices(100); got != nil {
		t.Errorf("FreeSlices during reconfig = %v, want nil", got)
	}
	if g.FreeGPCs(100+ReconfigureDelay) != 7 {
		t.Errorf("FreeGPCs after reconfig = %d, want 7", g.FreeGPCs(100+ReconfigureDelay))
	}
}

func TestGPUReconfigureBusyFails(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	g.Slices[0].Allocate("a", 0)
	if err := g.Reconfigure(ConfigP2, 10); err == nil {
		t.Error("reconfigure with owned slice should fail")
	}
	if err := g.Reconfigure(Config{Slice4g, Slice4g}, 10); err == nil {
		t.Error("reconfigure to invalid config should fail")
	}
}

func TestNewGPUInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGPU accepted invalid config")
		}
	}()
	NewGPU(0, 0, Config{Slice7g, Slice7g})
}

func TestSliceIDStable(t *testing.T) {
	g := NewGPU(0, 3, DefaultConfig)
	if got := g.Slices[1].ID(); got != "gpu3/2g.20gb#1" {
		t.Errorf("slice ID = %q", got)
	}
}

func TestFragmentationIndex(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	// All free: largest is the 4g of 7 total -> 1 - 4/7.
	if got, want := FragmentationIndex([]*GPU{g}, 0), 1-4.0/7.0; mathAbs(got-want) > 1e-12 {
		t.Errorf("index = %v, want %v", got, want)
	}
	// Occupy the 4g: free = 2g+1g, largest 2 of 3 -> 1/3.
	g.Slices[0].Allocate("a", 0)
	if got := FragmentationIndex([]*GPU{g}, 0); mathAbs(got-1.0/3.0) > 1e-12 {
		t.Errorf("index = %v, want 1/3", got)
	}
	// Everything allocated: no free compute -> 0.
	g.Slices[1].Allocate("b", 0)
	g.Slices[2].Allocate("c", 0)
	if got := FragmentationIndex([]*GPU{g}, 0); got != 0 {
		t.Errorf("index with nothing free = %v, want 0", got)
	}
}

func TestStrandedGPCs(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	g.Slices[0].Allocate("a", 0) // 4g busy; 2g+1g free
	// A 4g-class function strands all 3 free GPCs.
	if got := StrandedGPCs([]*GPU{g}, 0, 4); got != 3 {
		t.Errorf("stranded = %d, want 3", got)
	}
	// A 2g-class function can be placed: nothing stranded.
	if got := StrandedGPCs([]*GPU{g}, 0, 2); got != 0 {
		t.Errorf("stranded for placeable = %d, want 0", got)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestEnumerationGolden pins the size of the valid-partition space so a
// placement-rule regression is caught immediately.
func TestEnumerationGolden(t *testing.T) {
	all := EnumerateConfigs()
	// Derived from the A100 placement rules in config.go (e.g. a 3g on
	// the right half frees the left half's four 1g slots); update only
	// with a deliberate rule change.
	const want = 37
	if len(all) != want {
		t.Errorf("EnumerateConfigs() = %d configs, want %d", len(all), want)
	}
	nMax := 0
	for _, c := range all {
		if c.Maximal() {
			nMax++
		}
	}
	// The 12 maximal configurations include the paper's P2 (3g+2g+2g)
	// and the default 4g+2g+1g.
	if nMax != 12 {
		t.Errorf("maximal configs = %d, want 12", nMax)
	}
}

// TestSliceQuarantine: a quarantined slice leaves every placement view
// (FreeSlices, Usable) without being marked unhealthy, each flip bumps
// the free-set generation so cached views invalidate, and lifting the
// quarantine restores it.
func TestSliceQuarantine(t *testing.T) {
	g := NewGPU(0, 0, DefaultConfig)
	s := g.Slices[0]
	if s.Quarantined() {
		t.Fatal("fresh slice quarantined")
	}
	gen := g.Gen()
	s.SetQuarantined(true)
	if g.Gen() == gen {
		t.Error("quarantine did not bump the free-set generation")
	}
	if !s.Healthy() {
		t.Error("quarantine must not mark the slice unhealthy")
	}
	if s.Usable(0) {
		t.Error("quarantined slice reports usable")
	}
	for _, f := range g.FreeSlices(0) {
		if f == s {
			t.Fatal("quarantined slice still in FreeSlices")
		}
	}
	if got := len(g.FreeSlices(0)); got != 2 {
		t.Errorf("free slices with one quarantined = %d, want 2", got)
	}
	gen = g.Gen()
	s.SetQuarantined(false)
	if g.Gen() == gen {
		t.Error("probation did not bump the free-set generation")
	}
	if !s.Usable(0) || len(g.FreeSlices(0)) != 3 {
		t.Error("slice did not return to placement after probation")
	}
}
