package mig

import (
	"testing"
)

// TestSliceProfiles pins the exact contents of paper Table 2.
func TestSliceProfiles(t *testing.T) {
	want := []struct {
		typ      SliceType
		name     string
		gpcs     int
		memGB    int
		maxCount int
	}{
		{Slice7g, "7g.80gb", 7, 80, 1},
		{Slice4g, "4g.40gb", 4, 40, 1},
		{Slice3g, "3g.40gb", 3, 40, 2},
		{Slice2g, "2g.20gb", 2, 20, 3},
		{Slice1g, "1g.10gb", 1, 10, 7},
	}
	for _, w := range want {
		if w.typ.String() != w.name {
			t.Errorf("%v.String() = %q, want %q", w.typ, w.typ.String(), w.name)
		}
		if w.typ.GPCs() != w.gpcs {
			t.Errorf("%s GPCs = %d, want %d", w.name, w.typ.GPCs(), w.gpcs)
		}
		if w.typ.MemGB() != w.memGB {
			t.Errorf("%s MemGB = %d, want %d", w.name, w.typ.MemGB(), w.memGB)
		}
		if w.typ.MaxCount() != w.maxCount {
			t.Errorf("%s MaxCount = %d, want %d", w.name, w.typ.MaxCount(), w.maxCount)
		}
	}
}

func TestParseSliceType(t *testing.T) {
	for _, typ := range SliceTypes {
		got, err := ParseSliceType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseSliceType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseSliceType("5g.50gb"); err == nil {
		t.Error("ParseSliceType accepted a bogus profile")
	}
}

func TestSmallestFitting(t *testing.T) {
	cases := []struct {
		memGB float64
		gpcs  int
		want  SliceType
		ok    bool
	}{
		{5, 1, Slice1g, true},
		{10, 1, Slice1g, true},
		{10.5, 1, Slice2g, true},
		{25, 1, Slice3g, true},
		{40, 4, Slice4g, true},
		{41, 1, Slice7g, true},
		{81, 1, 0, false},
		{10, 8, 0, false},
	}
	for _, c := range cases {
		got, ok := SmallestFitting(c.memGB, c.gpcs)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("SmallestFitting(%v, %d) = %v, %v; want %v, %v",
				c.memGB, c.gpcs, got, ok, c.want, c.ok)
		}
	}
}

func TestInvalidSliceTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid SliceType did not panic")
		}
	}()
	_ = SliceType(99).GPCs()
}
