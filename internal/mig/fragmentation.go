package mig

// Fragmentation metrics (§4): free compute that no single free slice
// can deliver. A function needing g GPCs monolithically is blocked
// whenever every free slice is smaller than g, even if the summed free
// compute dwarfs g — the situation of Figs. 1 and 4.

// FragmentationIndex returns 1 − (largest free slice's GPCs ÷ total
// free GPCs) over the given GPUs at time now: 0 means all free compute
// is reachable through one slice; values near 1 mean the free compute
// is shattered into small slices. No free compute returns 0.
func FragmentationIndex(gpus []*GPU, now float64) float64 {
	totalFree := 0
	largest := 0
	for _, g := range gpus {
		for _, s := range g.FreeSlices(now) {
			totalFree += s.Type.GPCs()
			if s.Type.GPCs() > largest {
				largest = s.Type.GPCs()
			}
		}
	}
	if totalFree == 0 {
		return 0
	}
	return 1 - float64(largest)/float64(totalFree)
}

// StrandedGPCs returns the free compute unusable by a monolithic
// function needing needGPCs: the summed GPCs of free slices smaller
// than needGPCs when no single free slice is big enough (0 otherwise —
// the function can be placed, so nothing is stranded for it).
func StrandedGPCs(gpus []*GPU, now float64, needGPCs int) int {
	total := 0
	for _, g := range gpus {
		for _, s := range g.FreeSlices(now) {
			if s.Type.GPCs() >= needGPCs {
				return 0
			}
			total += s.Type.GPCs()
		}
	}
	return total
}
