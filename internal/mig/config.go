package mig

import (
	"fmt"
	"sort"
	"strings"
)

// Config is the set of slice profiles a single GPU is partitioned into.
// Order is not significant; Canonical sorts largest-first.
type Config []SliceType

// placements lists the memory-slot ranges each profile may occupy on an
// A100 (8 memory slots, 7 GPCs). These hardware placement rules are what
// make "arbitrary MIG partitions" impossible (paper §2.2).
var placements = map[SliceType][][2]int{
	Slice1g: {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}},
	Slice2g: {{0, 2}, {2, 4}, {4, 6}},
	Slice3g: {{0, 4}, {4, 8}},
	Slice4g: {{0, 4}},
	Slice7g: {{0, 8}},
}

// Canonical returns a copy of the config sorted largest slice first.
func (c Config) Canonical() Config {
	out := make(Config, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// String renders the config as "4g.40gb+2g.20gb+1g.10gb".
func (c Config) String() string {
	if len(c) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(c))
	for i, t := range c.Canonical() {
		parts[i] = t.String()
	}
	return strings.Join(parts, "+")
}

// ParseConfig parses the String form back into a Config.
func ParseConfig(s string) (Config, error) {
	if s == "" || s == "(empty)" {
		return nil, nil
	}
	var c Config
	for _, part := range strings.Split(s, "+") {
		t, err := ParseSliceType(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		c = append(c, t)
	}
	return c, nil
}

// TotalGPCs returns the summed compute of all slices.
func (c Config) TotalGPCs() int {
	n := 0
	for _, t := range c {
		n += t.GPCs()
	}
	return n
}

// TotalMemGB returns the summed memory of all slices.
func (c Config) TotalMemGB() int {
	n := 0
	for _, t := range c {
		n += t.MemGB()
	}
	return n
}

// Counts returns the number of slices of each profile.
func (c Config) Counts() map[SliceType]int {
	m := make(map[SliceType]int, len(c))
	for _, t := range c {
		m[t]++
	}
	return m
}

// Valid reports whether the slices can physically coexist on one A100:
// there must be a non-overlapping assignment of each slice to one of its
// allowed memory-slot ranges, the per-profile max counts must hold, and
// total compute must not exceed 7 GPCs.
func (c Config) Valid() bool {
	if len(c) == 0 {
		return false
	}
	if c.TotalGPCs() > 7 {
		return false
	}
	for t, n := range c.Counts() {
		if n > t.MaxCount() {
			return false
		}
	}
	// Backtracking placement, largest slices first (fewest options first).
	sorted := c.Canonical()
	var occupied [8]bool
	var place func(i int) bool
	place = func(i int) bool {
		if i == len(sorted) {
			return true
		}
		for _, r := range placements[sorted[i]] {
			ok := true
			for s := r[0]; s < r[1]; s++ {
				if occupied[s] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for s := r[0]; s < r[1]; s++ {
				occupied[s] = true
			}
			if place(i + 1) {
				return true
			}
			for s := r[0]; s < r[1]; s++ {
				occupied[s] = false
			}
		}
		return false
	}
	return place(0)
}

// Maximal reports whether the config is valid and no further slice of any
// profile can be added.
func (c Config) Maximal() bool {
	if !c.Valid() {
		return false
	}
	for _, t := range SliceTypes {
		if Config(append(append(Config{}, c...), t)).Valid() {
			return false
		}
	}
	return true
}

// key returns a canonical comparable representation.
func (c Config) key() string { return c.String() }

// EnumerateConfigs returns every physically valid, non-empty partition of
// one A100, deduplicated as multisets and sorted by descending total GPCs
// then name. The NVIDIA MIG user guide tabulates 18 of these as the
// officially documented configurations (paper §2.2); our enumeration is a
// superset derived from the placement rules, and contains every
// configuration the paper uses.
func EnumerateConfigs() []Config {
	seen := make(map[string]Config)
	// Upper bounds per profile keep the search tiny.
	var rec func(cur Config, next int)
	rec = func(cur Config, next int) {
		if len(cur) > 0 {
			cc := cur.Canonical()
			if cc.Valid() {
				seen[cc.key()] = cc
			} else {
				return // adding more slices cannot restore validity
			}
		}
		for ti := next; ti < len(SliceTypes); ti++ {
			t := SliceTypes[ti]
			if cur.Counts()[t] >= t.MaxCount() {
				continue
			}
			rec(append(cur, t), ti)
		}
	}
	rec(nil, 0)
	out := make([]Config, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		gi, gj := out[i].TotalGPCs(), out[j].TotalGPCs()
		if gi != gj {
			return gi > gj
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// MustConfig builds a Config from profile names and panics if the result
// is not a valid partition; intended for package-level configuration
// tables.
func MustConfig(names ...string) Config {
	var c Config
	for _, n := range names {
		t, err := ParseSliceType(n)
		if err != nil {
			panic(err)
		}
		c = append(c, t)
	}
	if !c.Valid() {
		panic(fmt.Sprintf("mig: invalid config %v", c))
	}
	return c
}

// Partition schemes used in the paper's evaluation.
var (
	// DefaultConfig is the default per-GPU partition (§6): one 4g.40gb,
	// one 2g.20gb and one 1g.10gb.
	DefaultConfig = Config{Slice4g, Slice2g, Slice1g}
	// ConfigP1 is scheme P1 (Table 7): identical to the default, applied
	// to all 8 GPUs of a node.
	ConfigP1 = Config{Slice4g, Slice2g, Slice1g}
	// ConfigP2 is scheme P2 (Table 7): 3g.40gb + 2g.20gb + 2g.20gb.
	ConfigP2 = Config{Slice3g, Slice2g, Slice2g}
	// ConfigFull1g partitions the whole GPU into seven 1g.10gb slices.
	ConfigFull1g = Config{Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g, Slice1g}
	// Config2g3x1g is 2g.20gb ×3 + 1g.10gb (used by the Hybrid scheme).
	Config2g3x1g = Config{Slice2g, Slice2g, Slice2g, Slice1g}
	// Config3g4g is 3g.40gb + 4g.40gb (used by the Hybrid scheme).
	Config3g4g = Config{Slice4g, Slice3g}
	// ConfigWhole is the unpartitioned GPU as a single 7g.80gb slice.
	ConfigWhole = Config{Slice7g}
)

// HybridNode returns the per-GPU partitions of the paper's Hybrid scheme
// (Table 7) for an 8-GPU node: 1×[1g×7], 2×[2g×3+1g], 4×[3g+4g],
// 1×[4g+2g+1g].
func HybridNode() []Config {
	return []Config{
		ConfigFull1g,
		Config2g3x1g, Config2g3x1g,
		Config3g4g, Config3g4g, Config3g4g, Config3g4g,
		DefaultConfig,
	}
}

// UniformNode returns cfg repeated for each of n GPUs.
func UniformNode(cfg Config, n int) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = cfg
	}
	return out
}
