// Package mig models NVIDIA Multi-Instance GPU (MIG) partitioning on an
// A100-80GB: slice profiles (paper Table 2), physically valid partition
// configurations, per-slice allocation state, and the activity accounting
// behind the paper's "GPU time" and "MIG time" metrics.
//
// The model encodes the properties FluidFaaS's scheduling depends on:
// slices are hardware-isolated, only specific combinations can coexist on
// one GPU, and repartitioning takes minutes, so it is never done on the
// request path.
package mig

import (
	"fmt"
)

// SliceType identifies a MIG slice profile on an A100-80GB.
type SliceType int

// The five A100 MIG slice profiles (paper Table 2).
const (
	Slice1g SliceType = iota // 1g.10gb: 1 GPC, 10 GB
	Slice2g                  // 2g.20gb: 2 GPCs, 20 GB
	Slice3g                  // 3g.40gb: 3 GPCs, 40 GB
	Slice4g                  // 4g.40gb: 4 GPCs, 40 GB
	Slice7g                  // 7g.80gb: 7 GPCs, 80 GB
	numSliceTypes
)

// NumSliceTypes is the number of slice profiles; SliceType values are
// dense in [0, NumSliceTypes), so it sizes per-type lookup tables.
const NumSliceTypes = int(numSliceTypes)

// SliceTypes lists all profiles from smallest to largest.
var SliceTypes = []SliceType{Slice1g, Slice2g, Slice3g, Slice4g, Slice7g}

// LessCompute orders slice profiles by compute capacity: fewer GPCs
// first, memory breaking ties, raw enum value last so the order is
// total. Placement code uses this instead of the raw enum comparison so
// "smallest fitting slice" does not silently depend on declaration
// order.
func LessCompute(a, b SliceType) bool {
	if a.GPCs() != b.GPCs() {
		return a.GPCs() < b.GPCs()
	}
	if a.MemGB() != b.MemGB() {
		return a.MemGB() < b.MemGB()
	}
	return a < b
}

type sliceProfile struct {
	name     string
	gpcs     int
	memGB    int
	maxCount int // max instances of this profile on one GPU (Table 2)
	memSlots int // memory slots occupied (of 8 on an A100)
}

var profiles = [numSliceTypes]sliceProfile{
	Slice1g: {"1g.10gb", 1, 10, 7, 1},
	Slice2g: {"2g.20gb", 2, 20, 3, 2},
	Slice3g: {"3g.40gb", 3, 40, 2, 4},
	Slice4g: {"4g.40gb", 4, 40, 1, 4},
	Slice7g: {"7g.80gb", 7, 80, 1, 8},
}

func (t SliceType) valid() bool { return t >= 0 && t < numSliceTypes }

func (t SliceType) profile() sliceProfile {
	if !t.valid() {
		panic(fmt.Sprintf("mig: invalid SliceType %d", int(t)))
	}
	return profiles[t]
}

// String returns the NVIDIA profile name, e.g. "2g.20gb".
func (t SliceType) String() string { return t.profile().name }

// GPCs returns the number of graphics processing clusters in the slice.
func (t SliceType) GPCs() int { return t.profile().gpcs }

// MemGB returns the slice's GPU memory in gigabytes.
func (t SliceType) MemGB() int { return t.profile().memGB }

// MaxCount returns the maximum number of slices of this profile that can
// coexist on one GPU (Table 2).
func (t SliceType) MaxCount() int { return t.profile().maxCount }

// MemSlots returns the number of A100 memory slots (of 8) the profile
// occupies; this drives partition validity.
func (t SliceType) MemSlots() int { return t.profile().memSlots }

// ParseSliceType converts a profile name such as "3g.40gb" to a SliceType.
func ParseSliceType(s string) (SliceType, error) {
	for _, t := range SliceTypes {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("mig: unknown slice profile %q", s)
}

// SmallestFitting returns the smallest slice profile with at least memGB
// gigabytes of memory and at least gpcs GPCs, and whether one exists.
func SmallestFitting(memGB float64, gpcs int) (SliceType, bool) {
	for _, t := range SliceTypes {
		if float64(t.MemGB()) >= memGB && t.GPCs() >= gpcs {
			return t, true
		}
	}
	return 0, false
}
