package scheduler

import (
	"reflect"
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// withPlanner attaches a fresh memoizing planner to a copy of req.
func withPlanner(req Req) Req {
	req.Planner = pipeline.NewPlanner(req.DAG, req.Parts)
	return req
}

// TestPlaceBatchPlannerEquivalence: attaching planners to the requests
// must not change a single placement decision — same nodes, same plans,
// same slice indices — across a batch big enough to exercise repeated
// lookups of the same free-slice multisets.
func TestPlaceBatchPlannerEquivalence(t *testing.T) {
	base := []Req{
		reqFor(t, dnn.ImageClassification, dnn.Large),
		reqFor(t, dnn.ImageClassification, dnn.Medium),
		reqFor(t, dnn.DepthRecognition, dnn.Small),
		reqFor(t, dnn.ImageClassification, dnn.Large),
		reqFor(t, dnn.ExpandedClassification, dnn.Medium),
		reqFor(t, dnn.ImageClassification, dnn.Medium),
	}
	nodes := append(defaultNode(2),
		NodeFree{Node: 2, Free: []mig.SliceType{
			mig.Slice2g, mig.Slice2g, mig.Slice1g, mig.Slice1g}},
		NodeFree{Node: 3, Free: []mig.SliceType{mig.Slice7g}})

	pol := &FluidFaaS{}
	plain := pol.PlaceBatch(base, nodes)

	cached := make([]Req, len(base))
	for i, r := range base {
		cached[i] = withPlanner(r)
	}
	fast := pol.PlaceBatch(cached, nodes)

	if !reflect.DeepEqual(plain, fast) {
		t.Errorf("planner changed placements:\nuncached: %+v\ncached:   %+v", plain, fast)
	}

	// The shared-function requests probe overlapping multisets; the
	// planner must actually have served some of them from cache.
	hits := uint64(0)
	for _, r := range cached {
		hits += r.Planner.Stats().Hits
	}
	if hits == 0 {
		t.Error("no cache hits across a 6-request batch; memoization is dead code")
	}
}

// TestPlaceBatchRankRespected (satellite bugfix): the cross-node choice
// must order by partition rank before GPC footprint. A monolithic plan
// (rank 0) on a fat node beats an earlier-scanned skinny node that can
// only host the rank-1 split, even though the split uses fewer GPCs —
// §5.2.2's walk order is first feasible partition wins.
func TestPlaceBatchRankRespected(t *testing.T) {
	// Two equal stages of 8 GB: monolithic needs 16 GB (a 2g+ slice);
	// the balanced split runs per-stage on 1g slices. Both partitions
	// have CV = 0, so the enumerator ranks monolithic first (fewer
	// stages on equal CV).
	d := dag.New()
	exec := map[mig.SliceType]float64{}
	for _, st := range mig.SliceTypes {
		exec[st] = 0.1
	}
	a := d.AddNode(dag.Node{Name: "a", MemGB: 8, OutMB: 4, Exec: exec})
	b := d.AddNode(dag.Node{Name: "b", MemGB: 8, OutMB: 4, Exec: exec})
	d.AddEdge(a, b)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0].Stages) != 1 {
		t.Fatalf("precondition: monolithic partition should rank first, got %+v", parts[0])
	}
	req := Req{DAG: d, Parts: parts, SLO: 0}

	nodes := []NodeFree{
		{Node: 0, Free: []mig.SliceType{mig.Slice1g, mig.Slice1g}}, // split only: 2 GPCs
		{Node: 1, Free: []mig.SliceType{mig.Slice7g}},              // monolithic: 7 GPCs
	}
	for _, r := range []Req{req, withPlanner(req)} {
		got := (&FluidFaaS{}).PlaceBatch([]Req{r}, nodes)
		if len(got) != 1 {
			t.Fatal("not placed")
		}
		if got[0].Node != 1 || got[0].Plan.Pipelined() {
			t.Errorf("placed on node %d pipelined=%v; want the rank-0 monolithic plan on node 1",
				got[0].Node, got[0].Plan.Pipelined())
		}
	}
}

// TestFreeViewConsumePanicsOnDoubleBook: handing the same physical
// slice index to two placements in one batch is a scheduler bug and
// must fail loudly, not corrupt the free view.
func TestFreeViewConsumePanicsOnDoubleBook(t *testing.T) {
	views := newFreeViews([]NodeFree{
		{Node: 0, Free: []mig.SliceType{mig.Slice2g, mig.Slice1g}},
	})
	v := &views[0]
	v.consume([]int{0})
	defer func() {
		if recover() == nil {
			t.Error("double-booked index did not panic")
		}
	}()
	v.consume([]int{0})
}

// TestFreeViewCountsTrackConsumption: the incremental multiset index
// stays in sync with the used[] mask, so planner cache keys always
// describe the true remaining free set.
func TestFreeViewCountsTrackConsumption(t *testing.T) {
	views := newFreeViews([]NodeFree{
		{Node: 0, Free: []mig.SliceType{
			mig.Slice2g, mig.Slice1g, mig.Slice2g, mig.Slice4g}},
	})
	v := &views[0]
	v.consume([]int{2, 1})
	if got := pipeline.CountsOf(v.availTypes()); got != v.counts {
		t.Errorf("incremental counts %v out of sync with view %v", v.counts, got)
	}
	if v.remaining != 2 {
		t.Errorf("remaining = %d, want 2", v.remaining)
	}
}
