package scheduler

import (
	"fluidfaas/internal/pipeline"
)

// INFlessMIG is the INFless baseline with MIG support bolted on (§6):
// monolithic instances, greedy first-fit placement onto the smallest
// free slice that fits the whole function, exclusive keep-alive, no
// pipelines and no time sharing.
type INFlessMIG struct{}

// Name implements Policy.
func (*INFlessMIG) Name() string { return "infless" }

// Pipelines implements Policy.
func (*INFlessMIG) Pipelines() bool { return false }

// TimeSharing implements Policy.
func (*INFlessMIG) TimeSharing() bool { return false }

// Migration implements Policy.
func (*INFlessMIG) Migration() bool { return false }

// PlaceBatch greedily assigns each request to the first fitting free
// slice in scan order. INFless predates MIG, so its placement is not
// slice-size-aware: it takes the first (often largest) slice the
// function fits, wasting big slices on small functions. That lack of a
// global search is what costs it against ESG (§7.1: ESG outperforms
// INFless by 14% in light workloads).
func (*INFlessMIG) PlaceBatch(reqs []Req, nodes []NodeFree) []Placement {
	views := newFreeViews(nodes)
	var out []Placement
	for ri, req := range reqs {
		placed := false
		for ni := range views {
			types, orig := views[ni].avail()
			best := -1
			for ai, t := range types {
				if !monoFits(req.DAG, t, req.SLO) {
					continue
				}
				best = ai
				break
			}
			if best == -1 {
				continue
			}
			plan, err := pipeline.Monolithic(req.DAG, types[best])
			if err != nil {
				continue
			}
			out = append(out, Placement{
				Req: ri, Node: nodes[ni].Node, Plan: plan,
				SliceIdx: []int{orig[best]},
			})
			views[ni].consume([]int{orig[best]})
			placed = true
			break
		}
		_ = placed
	}
	return out
}
