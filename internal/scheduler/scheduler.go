// Package scheduler implements the instance-placement policies the
// evaluation compares: FluidFaaS (CV-ranked pipeline construction over
// fragmented slices), ESG (monolithic placement by A*-search with
// dual-blade pruning), and INFless+MIG (monolithic greedy placement).
//
// Policies are pure decision procedures over free-slice views, so the
// platform can replay them deterministically inside the simulation.
package scheduler

import (
	"errors"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// Req asks for one new instance of a function.
type Req struct {
	// Func is the function index (for reporting).
	Func int
	// DAG is the function's FFS DAG with profiles.
	DAG *dag.DAG
	// Parts is the function's CV-ranked partition list (offline step).
	Parts []dag.Partition
	// SLO is the function's latency budget; placements whose unloaded
	// latency exceeds it are rejected.
	SLO float64
	// Planner, when non-nil, memoizes the construction procedure for
	// this function (plan cache + feasibility precompute). Policies
	// use it as a drop-in replacement for pipeline.Construct; the
	// placement decisions must be identical with Planner nil.
	Planner *pipeline.Planner
}

// NodeFree is one node's free slices.
type NodeFree struct {
	Node int
	Free []mig.SliceType
}

// Placement deploys one request: the plan plus, per stage, the index
// into the node's Free list of the slice it uses.
type Placement struct {
	Req      int // index into the batch
	Node     int
	Plan     pipeline.Plan
	SliceIdx []int
}

// ErrUnplaced reports that no node can host the request.
var ErrUnplaced = errors.New("scheduler: request cannot be placed")

// Policy is an instance-placement strategy.
type Policy interface {
	// Name identifies the policy ("fluidfaas", "esg", "infless").
	Name() string
	// Pipelines reports whether the policy may split functions into
	// pipeline stages.
	Pipelines() bool
	// TimeSharing reports whether the policy uses hotness-aware
	// eviction-based time sharing of slices.
	TimeSharing() bool
	// Migration reports whether pipeline instances migrate to large
	// slices when they free up.
	Migration() bool
	// PlaceBatch assigns as many requests as possible to free slices.
	// Nodes' Free lists are consumed left to right across the returned
	// placements; a request absent from the result is unplaceable right
	// now.
	PlaceBatch(reqs []Req, nodes []NodeFree) []Placement
}

// monoCost returns the resource cost of running the DAG monolithically
// on a slice type: GPC-seconds per request. Used as the efficiency
// objective for the baselines.
func monoCost(d *dag.DAG, t mig.SliceType) (float64, bool) {
	plan, err := pipeline.Monolithic(d, t)
	if err != nil {
		return 0, false
	}
	return float64(t.GPCs()) * plan.Latency, true
}

// monoFits reports whether the DAG can run monolithically on t within
// the SLO.
func monoFits(d *dag.DAG, t mig.SliceType, slo float64) bool {
	plan, err := pipeline.Monolithic(d, t)
	if err != nil {
		return false
	}
	return slo <= 0 || plan.Latency <= slo
}
