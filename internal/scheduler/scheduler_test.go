package scheduler

import (
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
)

func reqFor(t *testing.T, id dnn.AppID, v dnn.Variant) Req {
	t.Helper()
	a := dnn.Get(id)
	d := a.BuildDAG(v)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	slo, _ := a.SLOLatency(v, 1.5)
	return Req{Func: int(id), DAG: d, Parts: parts, SLO: slo}
}

func defaultNode(n int) []NodeFree {
	out := make([]NodeFree, n)
	for i := range out {
		out[i] = NodeFree{Node: i, Free: []mig.SliceType{mig.Slice4g, mig.Slice2g, mig.Slice1g}}
	}
	return out
}

func TestPolicyFlags(t *testing.T) {
	ff := &FluidFaaS{}
	if !ff.Pipelines() || !ff.TimeSharing() || !ff.Migration() || ff.Name() != "fluidfaas" {
		t.Error("FluidFaaS flags wrong")
	}
	ffAblate := &FluidFaaS{DisableTimeSharing: true, DisableMigration: true}
	if ffAblate.TimeSharing() || ffAblate.Migration() {
		t.Error("ablation flags ignored")
	}
	esg := &ESG{}
	if esg.Pipelines() || esg.TimeSharing() || esg.Migration() || esg.Name() != "esg" {
		t.Error("ESG flags wrong")
	}
	inf := &INFlessMIG{}
	if inf.Pipelines() || inf.TimeSharing() || inf.Name() != "infless" {
		t.Error("INFless flags wrong")
	}
}

// Medium workload shape: the baselines cannot use 1g slices, FluidFaaS can.
func TestMediumPlacementShape(t *testing.T) {
	req := reqFor(t, dnn.ImageClassification, dnn.Medium)
	oneG := []NodeFree{{Node: 0, Free: []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g}}}
	for _, pol := range []Policy{&ESG{}, &INFlessMIG{}} {
		if got := pol.PlaceBatch([]Req{req}, oneG); len(got) != 0 {
			t.Errorf("%s placed a medium function on 1g-only node: %+v", pol.Name(), got)
		}
	}
	ff := &FluidFaaS{}
	got := ff.PlaceBatch([]Req{req}, oneG)
	if len(got) != 1 {
		t.Fatalf("fluidfaas failed to place on 1g fragments")
	}
	if !got[0].Plan.Pipelined() {
		t.Error("fluidfaas placement on 1g fragments should be pipelined")
	}
}

func TestBaselinesPlacementStyles(t *testing.T) {
	// A small function fits every slice. ESG's A* picks the most
	// resource-efficient slice (fewest GPC-seconds: the 1g); INFless's
	// MIG-unaware first-fit burns the first slice in scan order (the
	// 4g) — the behavioural gap behind ESG's 14% light-workload edge.
	req := reqFor(t, dnn.ImageClassification, dnn.Small)
	nodes := defaultNode(1)
	esgGot := (&ESG{}).PlaceBatch([]Req{req}, nodes)
	if len(esgGot) != 1 || esgGot[0].Plan.Stages[0].SliceType != mig.Slice1g {
		t.Errorf("esg placement = %+v, want 1g", esgGot)
	}
	infGot := (&INFlessMIG{}).PlaceBatch([]Req{req}, nodes)
	if len(infGot) != 1 || infGot[0].Plan.Stages[0].SliceType != mig.Slice4g {
		t.Errorf("infless placement = %+v, want first-fit 4g", infGot)
	}
}

func TestESGBeatsGreedyOnConflicts(t *testing.T) {
	// Two requests, one 2g and one 1g free. A medium function needs
	// >=2g; a small one fits either. Greedy in the wrong order could
	// burn the 2g on the small function; A* must place both.
	medium := reqFor(t, dnn.ImageClassification, dnn.Medium)
	small := reqFor(t, dnn.DepthRecognition, dnn.Small)
	nodes := []NodeFree{{Node: 0, Free: []mig.SliceType{mig.Slice2g, mig.Slice1g}}}
	got := (&ESG{}).PlaceBatch([]Req{small, medium}, nodes)
	if len(got) != 2 {
		t.Fatalf("ESG placed %d of 2", len(got))
	}
	byReq := map[int]Placement{}
	for _, p := range got {
		byReq[p.Req] = p
	}
	if byReq[1].Plan.Stages[0].SliceType != mig.Slice2g {
		t.Errorf("medium on %v, want 2g", byReq[1].Plan.Stages[0].SliceType)
	}
	if byReq[0].Plan.Stages[0].SliceType != mig.Slice1g {
		t.Errorf("small on %v, want 1g", byReq[0].Plan.Stages[0].SliceType)
	}
}

func TestESGRespectsDistinctSlices(t *testing.T) {
	// Three small requests, two slices: exactly two placements, on
	// distinct slices.
	req := reqFor(t, dnn.ImageClassification, dnn.Small)
	nodes := []NodeFree{{Node: 0, Free: []mig.SliceType{mig.Slice1g, mig.Slice1g}}}
	got := (&ESG{}).PlaceBatch([]Req{req, req, req}, nodes)
	if len(got) != 2 {
		t.Fatalf("placed %d, want 2", len(got))
	}
	if got[0].SliceIdx[0] == got[1].SliceIdx[0] {
		t.Error("two placements share a slice")
	}
}

func TestESGApp3MediumNeeds4g(t *testing.T) {
	req := reqFor(t, dnn.ExpandedClassification, dnn.Medium)
	no4g := []NodeFree{{Node: 0, Free: []mig.SliceType{mig.Slice3g, mig.Slice2g, mig.Slice2g}}}
	if got := (&ESG{}).PlaceBatch([]Req{req}, no4g); len(got) != 0 {
		t.Errorf("ESG placed app3/medium without a 4g slice: %+v", got)
	}
	with4g := defaultNode(1)
	got := (&ESG{}).PlaceBatch([]Req{req}, with4g)
	if len(got) != 1 || got[0].Plan.Stages[0].SliceType != mig.Slice4g {
		t.Errorf("ESG should place app3/medium on 4g: %+v", got)
	}
}

func TestFluidFaaSBatchConsumesSlices(t *testing.T) {
	req := reqFor(t, dnn.ImageClassification, dnn.Large)
	// One node with 2g+2g+1g+1g: first large placement takes 2g,2g(,1g);
	// a second identical request must not reuse them.
	nodes := []NodeFree{{Node: 0, Free: []mig.SliceType{
		mig.Slice2g, mig.Slice2g, mig.Slice1g, mig.Slice1g}}}
	got := (&FluidFaaS{}).PlaceBatch([]Req{req, req}, nodes)
	if len(got) < 1 {
		t.Fatal("nothing placed")
	}
	seen := map[int]bool{}
	for _, p := range got {
		for _, i := range p.SliceIdx {
			if seen[i] {
				t.Fatalf("slice index %d used by two placements", i)
			}
			seen[i] = true
		}
	}
}

func TestFluidFaaSPrefersMonolithicOnBigSlice(t *testing.T) {
	req := reqFor(t, dnn.ImageClassification, dnn.Medium)
	got := (&FluidFaaS{}).PlaceBatch([]Req{req}, defaultNode(1))
	if len(got) != 1 {
		t.Fatal("not placed")
	}
	if got[0].Plan.Pipelined() {
		t.Errorf("with big slices free, plan should be monolithic: %v", got[0].Plan)
	}
}

func TestINFlessSkipsUnplaceable(t *testing.T) {
	large := reqFor(t, dnn.ImageClassification, dnn.Large)
	small := reqFor(t, dnn.ImageClassification, dnn.Small)
	nodes := []NodeFree{{Node: 0, Free: []mig.SliceType{mig.Slice1g}}}
	got := (&INFlessMIG{}).PlaceBatch([]Req{large, small}, nodes)
	if len(got) != 1 || got[0].Req != 1 {
		t.Errorf("expected only the small request placed, got %+v", got)
	}
}

func TestPlaceBatchEmpty(t *testing.T) {
	for _, pol := range []Policy{&FluidFaaS{}, &ESG{}, &INFlessMIG{}} {
		if got := pol.PlaceBatch(nil, defaultNode(1)); len(got) != 0 {
			t.Errorf("%s placed requests from empty batch", pol.Name())
		}
		req := reqFor(t, dnn.ImageClassification, dnn.Small)
		if got := pol.PlaceBatch([]Req{req}, nil); len(got) != 0 {
			t.Errorf("%s placed requests with no nodes", pol.Name())
		}
	}
}

// The heavy-workload capacity gap (§7.2): on a default-partition node
// ESG fits one large instance (the 4g slice); FluidFaaS fits two (4g
// monolithic + 2g/1g pipeline) on apps whose components fit fragments.
func TestHeavyCapacityGap(t *testing.T) {
	req := reqFor(t, dnn.ImageClassification, dnn.Large)
	twoGPUs := []NodeFree{{Node: 0, Free: []mig.SliceType{
		mig.Slice4g, mig.Slice2g, mig.Slice1g,
		mig.Slice4g, mig.Slice2g, mig.Slice1g}}}
	esgGot := (&ESG{}).PlaceBatch([]Req{req, req, req}, twoGPUs)
	if len(esgGot) != 2 {
		t.Errorf("ESG placed %d large instances on 2 GPUs, want 2 (4g only)", len(esgGot))
	}
	ffGot := (&FluidFaaS{}).PlaceBatch([]Req{req, req, req}, twoGPUs)
	if len(ffGot) != 3 {
		t.Errorf("FluidFaaS placed %d large instances on 2 GPUs, want 3", len(ffGot))
	}
	gpcs := 0
	for _, p := range ffGot {
		gpcs += p.Plan.GPCs()
	}
	if gpcs < 13 {
		t.Errorf("FluidFaaS uses %d GPCs of 14, want >=13 (fragments employed)", gpcs)
	}
}

// dagWithNoProfile exercises defensive paths: a DAG whose node cannot
// run anywhere must never be placed.
func TestUnrunnableDAG(t *testing.T) {
	d := dag.New()
	d.AddNode(dag.Node{Name: "broken", MemGB: 500, Exec: map[mig.SliceType]float64{}})
	req := Req{DAG: d, Parts: nil, SLO: 1}
	for _, pol := range []Policy{&FluidFaaS{}, &ESG{}, &INFlessMIG{}} {
		if got := pol.PlaceBatch([]Req{req}, defaultNode(2)); len(got) != 0 {
			t.Errorf("%s placed an unrunnable DAG", pol.Name())
		}
	}
}
