package scheduler

import (
	"math"
	"testing"
	"testing/quick"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
)

// bruteForceCost finds the optimal total assignment cost (GPC-seconds,
// deferred requests charged the defer penalty) by exhaustive search —
// the ground truth A* with dual-blade pruning must match.
func bruteForceCost(reqs []Req, nodes []NodeFree) float64 {
	type gslice struct{ node, idx int }
	var slices []gslice
	for ni, n := range nodes {
		for si := range n.Free {
			slices = append(slices, gslice{ni, si})
		}
	}
	best := math.Inf(1)
	used := make([]bool, len(slices))
	var rec func(i int, cost float64)
	rec = func(i int, cost float64) {
		if cost >= best {
			return
		}
		if i == len(reqs) {
			best = cost
			return
		}
		// Defer option.
		rec(i+1, cost+deferPenalty)
		for gi, gs := range slices {
			if used[gi] {
				continue
			}
			t := nodes[gs.node].Free[gs.idx]
			if !monoFits(reqs[i].DAG, t, reqs[i].SLO) {
				continue
			}
			c, ok := monoCost(reqs[i].DAG, t)
			if !ok {
				continue
			}
			used[gi] = true
			rec(i+1, cost+c)
			used[gi] = false
		}
	}
	rec(0, 0)
	return best
}

// esgCost computes the total cost of ESG's chosen placement.
func esgCost(placements []Placement, reqs []Req, nodes []NodeFree) float64 {
	placed := map[int]bool{}
	cost := 0.0
	for _, p := range placements {
		placed[p.Req] = true
		t := p.Plan.Stages[0].SliceType
		c, _ := monoCost(reqs[p.Req].DAG, t)
		cost += c
	}
	for i := range reqs {
		if !placed[i] {
			cost += deferPenalty
		}
	}
	return cost
}

// TestESGMatchesBruteForce: the A* search with dual-blade pruning finds
// the optimal assignment on randomly generated small scheduling rounds.
func TestESGMatchesBruteForce(t *testing.T) {
	apps := []dnn.AppID{dnn.ImageClassification, dnn.DepthRecognition,
		dnn.BackgroundElimination, dnn.ExpandedClassification}
	variants := []dnn.Variant{dnn.Small, dnn.Medium}
	sliceMenu := []mig.SliceType{mig.Slice1g, mig.Slice2g, mig.Slice4g, mig.Slice3g}

	f := func(reqPick []uint8, slicePick []uint8) bool {
		nReq := len(reqPick)%4 + 1
		nSlice := len(slicePick)%5 + 1
		var reqs []Req
		for i := 0; i < nReq; i++ {
			pick := uint8(0)
			if i < len(reqPick) {
				pick = reqPick[i]
			}
			app := dnn.Get(apps[int(pick)%len(apps)])
			v := variants[int(pick/16)%len(variants)]
			if app.Excluded(v) {
				v = dnn.Small
			}
			d := app.BuildDAG(v)
			parts, err := d.EnumeratePartitions(mig.Slice7g)
			if err != nil {
				return false
			}
			slo, _ := app.SLOLatency(v, 1.5)
			reqs = append(reqs, Req{Func: i, DAG: d, Parts: parts, SLO: slo})
		}
		var free []mig.SliceType
		for i := 0; i < nSlice; i++ {
			pick := uint8(0)
			if i < len(slicePick) {
				pick = slicePick[i]
			}
			free = append(free, sliceMenu[int(pick)%len(sliceMenu)])
		}
		nodes := []NodeFree{{Node: 0, Free: free}}

		got := esgCost((&ESG{}).PlaceBatch(reqs, nodes), reqs, nodes)
		want := bruteForceCost(reqs, nodes)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPoliciesNeverDoubleAllocate: across random batches, no policy
// assigns the same physical slice twice.
func TestPoliciesNeverDoubleAllocate(t *testing.T) {
	mk := func(n int) ([]Req, []NodeFree) {
		var reqs []Req
		for i := 0; i < n; i++ {
			app := dnn.Get(dnn.AppIDs[i%3])
			v := dnn.Variants[i%3]
			if app.Excluded(v) {
				v = dnn.Small
			}
			d := app.BuildDAG(v)
			parts, _ := d.EnumeratePartitions(mig.Slice7g)
			slo, _ := app.SLOLatency(v, 1.5)
			reqs = append(reqs, Req{Func: i, DAG: d, Parts: parts, SLO: slo})
		}
		nodes := []NodeFree{
			{Node: 0, Free: []mig.SliceType{mig.Slice4g, mig.Slice2g, mig.Slice1g, mig.Slice2g}},
			{Node: 1, Free: []mig.SliceType{mig.Slice4g, mig.Slice1g}},
		}
		return reqs, nodes
	}
	for _, pol := range []Policy{&FluidFaaS{}, &ESG{}, &INFlessMIG{}} {
		for n := 1; n <= 8; n++ {
			reqs, nodes := mk(n)
			placements := pol.PlaceBatch(reqs, nodes)
			seen := map[[2]int]bool{}
			for _, p := range placements {
				if len(p.SliceIdx) != len(p.Plan.Stages) {
					t.Fatalf("%s: stage/slice arity mismatch", pol.Name())
				}
				for _, si := range p.SliceIdx {
					key := [2]int{p.Node, si}
					if seen[key] {
						t.Fatalf("%s: slice %v allocated twice (n=%d)", pol.Name(), key, n)
					}
					seen[key] = true
					if si < 0 || si >= len(nodes[p.Node].Free) {
						t.Fatalf("%s: slice index %d out of range", pol.Name(), si)
					}
					if p.Plan.Stages[indexOf(p.SliceIdx, si)].SliceType != nodes[p.Node].Free[si] {
						t.Fatalf("%s: stage type mismatch at slice %d", pol.Name(), si)
					}
				}
			}
		}
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// TestDualBladePruningReducesSearch: both blades cut explored states
// substantially on a contended round, without changing the optimum.
func TestDualBladePruningReducesSearch(t *testing.T) {
	var reqs []Req
	for i := 0; i < 6; i++ {
		app := dnn.Get(dnn.AppIDs[i%4])
		v := dnn.Medium
		if app.Excluded(v) {
			v = dnn.Small
		}
		d := app.BuildDAG(v)
		parts, _ := d.EnumeratePartitions(mig.Slice7g)
		slo, _ := app.SLOLatency(v, 1.5)
		reqs = append(reqs, Req{Func: i, DAG: d, Parts: parts, SLO: slo})
	}
	var free []mig.SliceType
	for g := 0; g < 4; g++ {
		free = append(free, mig.Slice4g, mig.Slice2g, mig.Slice1g)
	}
	nodes := []NodeFree{{Node: 0, Free: free}}

	full := &ESG{}
	fullPl := full.PlaceBatch(reqs, nodes)
	noPrune := &ESG{DisableDominance: true, DisableBound: true}
	noPrunePl := noPrune.PlaceBatch(reqs, nodes)

	if full.Explored <= 0 || noPrune.Explored <= 0 {
		t.Fatal("explored counters not recorded")
	}
	if full.Explored*2 > noPrune.Explored {
		t.Errorf("dual-blade pruning explored %d states vs %d unpruned — expected at least 2x reduction",
			full.Explored, noPrune.Explored)
	}
	// Same optimal cost either way.
	if got, want := esgCost(fullPl, reqs, nodes), esgCost(noPrunePl, reqs, nodes); math.Abs(got-want) > 1e-9 {
		t.Errorf("pruning changed the optimum: %v vs %v", got, want)
	}
}
