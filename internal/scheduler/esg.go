package scheduler

import (
	"container/heap"
	"math"

	"fluidfaas/internal/pipeline"
)

// ESG is the state-of-the-art baseline (HPDC'24): functions are
// monolithic units assigned to specific MIG slices by the controller,
// which runs an A*-search over the assignment space with dual-blade
// pruning and picks the most resource-efficient option that meets the
// SLO (§3, §6). Exclusive keep-alive, no pipelines, no time sharing.
type ESG struct {
	// DisableDominance and DisableBound switch off one pruning blade
	// each, for the search-effort ablation; the search stays optimal
	// either way, just slower.
	DisableDominance bool
	DisableBound     bool

	// Explored counts A* states popped in the most recent PlaceBatch
	// call (diagnostics for the pruning ablation).
	Explored int
}

// Name implements Policy.
func (*ESG) Name() string { return "esg" }

// Pipelines implements Policy.
func (*ESG) Pipelines() bool { return false }

// TimeSharing implements Policy.
func (*ESG) TimeSharing() bool { return false }

// Migration implements Policy.
func (*ESG) Migration() bool { return false }

// deferPenalty is the cost of leaving a request unplaced; it exceeds any
// single placement's GPC-seconds so A* places everything it can.
const deferPenalty = 1e3

// option is one feasible (slice, cost) choice for a request.
type option struct {
	slice int // global slice index; -1 = defer (leave unplaced)
	cost  float64
}

// searchState is a node of the A* search: the first `level` requests
// have been decided.
type searchState struct {
	level  int
	g      float64 // accumulated cost
	f      float64 // g + admissible remainder estimate
	used   uint64  // bitmask over global slices (the batch view is small)
	choice []int   // per-level option index taken
}

type stateHeap []*searchState

func (h stateHeap) Len() int           { return len(h) }
func (h stateHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h stateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x any)        { *h = append(*h, x.(*searchState)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// PlaceBatch runs the A*-search with dual-blade pruning over the
// monolithic-assignment space. The first blade prunes states whose
// lower bound exceeds the best complete solution found so far; the
// second prunes states dominated at the same search level by a state
// that used a subset of the slices at no greater cost.
func (e *ESG) PlaceBatch(reqs []Req, nodes []NodeFree) []Placement {
	// Flatten slices to global indices (capped at 64 for the bitmask;
	// batches and free lists in one scheduling round are far smaller).
	type gslice struct {
		node, idx int
	}
	var slices []gslice
	for ni, n := range nodes {
		for si := range n.Free {
			if len(slices) == 64 {
				break
			}
			slices = append(slices, gslice{ni, si})
		}
	}

	// Per-request feasible options, cheapest first; plus the defer
	// option. hMin is the admissible per-request remainder bound.
	opts := make([][]option, len(reqs))
	hMin := make([]float64, len(reqs))
	for ri, req := range reqs {
		minCost := deferPenalty
		for gi, gs := range slices {
			t := nodes[gs.node].Free[gs.idx]
			if !monoFits(req.DAG, t, req.SLO) {
				continue
			}
			c, ok := monoCost(req.DAG, t)
			if !ok {
				continue
			}
			opts[ri] = append(opts[ri], option{slice: gi, cost: c})
			if c < minCost {
				minCost = c
			}
		}
		opts[ri] = append(opts[ri], option{slice: -1, cost: deferPenalty})
		hMin[ri] = minCost
	}
	hSuffix := make([]float64, len(reqs)+1)
	for i := len(reqs) - 1; i >= 0; i-- {
		hSuffix[i] = hSuffix[i+1] + hMin[i]
	}

	// A* with the two pruning blades.
	best := math.Inf(1)
	var bestChoice []int
	frontier := &stateHeap{{level: 0, f: hSuffix[0]}}
	heap.Init(frontier)
	type seenState struct {
		used uint64
		g    float64
	}
	seen := make(map[int][]seenState)
	e.Explored = 0
	for frontier.Len() > 0 {
		s := heap.Pop(frontier).(*searchState)
		e.Explored++
		if !e.DisableBound && s.f >= best { // blade 1: bound pruning
			continue
		}
		if s.level == len(reqs) {
			if s.g < best {
				best = s.g
				bestChoice = s.choice
			}
			continue
		}
		// Blade 2: dominance pruning at this level.
		if !e.DisableDominance {
			dominated := false
			for _, prev := range seen[s.level] {
				if prev.used&^s.used == 0 && prev.g <= s.g {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			seen[s.level] = append(seen[s.level], seenState{s.used, s.g})
		}

		for oi, opt := range opts[s.level] {
			if opt.slice >= 0 && s.used&(1<<uint(opt.slice)) != 0 {
				continue
			}
			used := s.used
			if opt.slice >= 0 {
				used |= 1 << uint(opt.slice)
			}
			g := s.g + opt.cost
			f := g + hSuffix[s.level+1]
			if !e.DisableBound && f >= best {
				continue
			}
			choice := make([]int, len(s.choice)+1)
			copy(choice, s.choice)
			choice[len(s.choice)] = oi
			heap.Push(frontier, &searchState{
				level: s.level + 1, g: g, f: f, used: used, choice: choice,
			})
		}
	}

	var out []Placement
	for ri, oi := range bestChoice {
		opt := opts[ri][oi]
		if opt.slice < 0 {
			continue
		}
		gs := slices[opt.slice]
		t := nodes[gs.node].Free[gs.idx]
		plan, err := pipeline.Monolithic(reqs[ri].DAG, t)
		if err != nil {
			continue
		}
		out = append(out, Placement{
			Req: ri, Node: nodes[gs.node].Node, Plan: plan,
			SliceIdx: []int{gs.idx},
		})
	}
	return out
}
