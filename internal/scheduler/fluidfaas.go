package scheduler

import (
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// FluidFaaS is the paper's policy: on-the-fly pipeline construction over
// the CV-ranked partition list (§5.2.2), hotness-aware eviction-based
// time sharing, and pipeline migration (§5.3).
type FluidFaaS struct {
	// DisableTimeSharing and DisableMigration support the ablation
	// benches; the full system leaves them false.
	DisableTimeSharing bool
	DisableMigration   bool
}

// Name implements Policy.
func (*FluidFaaS) Name() string { return "fluidfaas" }

// Pipelines implements Policy.
func (*FluidFaaS) Pipelines() bool { return true }

// TimeSharing implements Policy.
func (p *FluidFaaS) TimeSharing() bool { return !p.DisableTimeSharing }

// Migration implements Policy.
func (p *FluidFaaS) Migration() bool { return !p.DisableMigration }

// freeView tracks which of a node's free slices earlier placements in
// the same batch already consumed.
type freeView struct {
	types []mig.SliceType
	used  []bool
}

func newFreeViews(nodes []NodeFree) []freeView {
	out := make([]freeView, len(nodes))
	for i, n := range nodes {
		out[i] = freeView{types: n.Free, used: make([]bool, len(n.Free))}
	}
	return out
}

// avail returns the unconsumed slice types and their original indices.
func (v *freeView) avail() ([]mig.SliceType, []int) {
	var types []mig.SliceType
	var idx []int
	for i, t := range v.types {
		if !v.used[i] {
			types = append(types, t)
			idx = append(idx, i)
		}
	}
	return types, idx
}

func (v *freeView) consume(origIdx []int) {
	for _, i := range origIdx {
		v.used[i] = true
	}
}

// PlaceBatch places each request in turn on the node where the
// CV-ranked construction finds the best (lowest-CV, then fewest-GPC)
// feasible deployment. Pipelines never span nodes: stages communicate
// through host shared memory (§5.2.1).
func (p *FluidFaaS) PlaceBatch(reqs []Req, nodes []NodeFree) []Placement {
	views := newFreeViews(nodes)
	var out []Placement
	for ri, req := range reqs {
		best := -1
		var bestPlan pipeline.Plan
		var bestIdx []int
		for ni := range views {
			types, orig := views[ni].avail()
			if len(types) == 0 {
				continue
			}
			plan, idx, err := pipeline.Construct(req.DAG, req.Parts, types, req.SLO)
			if err != nil {
				continue
			}
			mapped := make([]int, len(idx))
			for i, ai := range idx {
				mapped[i] = orig[ai]
			}
			if best == -1 || betterPlan(plan, bestPlan) {
				best = ni
				bestPlan = plan
				bestIdx = mapped
			}
		}
		if best == -1 {
			continue
		}
		out = append(out, Placement{
			Req: ri, Node: nodes[best].Node, Plan: bestPlan, SliceIdx: bestIdx,
		})
		views[best].consume(bestIdx)
	}
	return out
}

// betterPlan prefers lower CV (better balance), then fewer GPCs (less
// resource), then fewer stages.
func betterPlan(a, b pipeline.Plan) bool {
	if a.CV != b.CV {
		return a.CV < b.CV
	}
	if a.GPCs() != b.GPCs() {
		return a.GPCs() < b.GPCs()
	}
	return len(a.Stages) < len(b.Stages)
}
