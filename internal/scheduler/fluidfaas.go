package scheduler

import (
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// FluidFaaS is the paper's policy: on-the-fly pipeline construction over
// the CV-ranked partition list (§5.2.2), hotness-aware eviction-based
// time sharing, and pipeline migration (§5.3).
type FluidFaaS struct {
	// DisableTimeSharing and DisableMigration support the ablation
	// benches; the full system leaves them false.
	DisableTimeSharing bool
	DisableMigration   bool
}

// Name implements Policy.
func (*FluidFaaS) Name() string { return "fluidfaas" }

// Pipelines implements Policy.
func (*FluidFaaS) Pipelines() bool { return true }

// TimeSharing implements Policy.
func (p *FluidFaaS) TimeSharing() bool { return !p.DisableTimeSharing }

// Migration implements Policy.
func (p *FluidFaaS) Migration() bool { return !p.DisableMigration }

// freeView tracks which of a node's free slices earlier placements in
// the same batch already consumed, plus the counting-multiset index the
// planner fast path keys on — maintained incrementally so probing a
// node never rebuilds the free list.
type freeView struct {
	types     []mig.SliceType
	used      []bool
	counts    pipeline.Counts
	remaining int
}

func newFreeViews(nodes []NodeFree) []freeView {
	out := make([]freeView, len(nodes))
	for i, n := range nodes {
		out[i] = freeView{
			types:     n.Free,
			used:      make([]bool, len(n.Free)),
			counts:    pipeline.CountsOf(n.Free),
			remaining: len(n.Free),
		}
	}
	return out
}

// avail returns the unconsumed slice types and their original indices
// (the uncached construction path).
func (v *freeView) avail() ([]mig.SliceType, []int) {
	types := make([]mig.SliceType, 0, v.remaining)
	idx := make([]int, 0, v.remaining)
	for i, t := range v.types {
		if !v.used[i] {
			types = append(types, t)
			idx = append(idx, i)
		}
	}
	return types, idx
}

// availTypes returns just the unconsumed slice types; the planner calls
// it only on a cache miss.
func (v *freeView) availTypes() []mig.SliceType {
	types := make([]mig.SliceType, 0, v.remaining)
	for i, t := range v.types {
		if !v.used[i] {
			types = append(types, t)
		}
	}
	return types
}

// consume marks the placement's slice indices taken and updates the
// multiset index. Consuming an index twice within one batch would hand
// the same physical slice to two instances; that is a scheduler bug, so
// it panics rather than silently double-booking.
func (v *freeView) consume(origIdx []int) {
	for _, i := range origIdx {
		if v.used[i] {
			panic("scheduler: free-slice index double-booked within a batch")
		}
		v.used[i] = true
		v.counts[v.types[i]]--
		v.remaining--
	}
}

// PlaceBatch places each request in turn on the node where the
// CV-ranked construction finds the best feasible deployment. Because
// construction returns the first feasible partition in §5.2.2 walk
// order, plans from different nodes may come from different partition
// ranks; the cross-node choice therefore orders by partition rank first
// (earlier-ranked always wins, preserving the walk-order semantics),
// then by fewer GPCs, ties to the first node. Pipelines never span
// nodes: stages communicate through host shared memory (§5.2.1).
//
// When a request carries a Planner, probing a node is a cache lookup
// keyed on the node's free-slice multiset; the partition walk only runs
// on a miss. The placements are identical either way.
func (p *FluidFaaS) PlaceBatch(reqs []Req, nodes []NodeFree) []Placement {
	views := newFreeViews(nodes)
	var out []Placement
	for ri, req := range reqs {
		best := -1
		var bestRes *pipeline.PlanResult
		var bestIdx []int // pre-mapped indices (uncached path only)
		var bestGPCs int
		for ni := range views {
			v := &views[ni]
			if v.remaining == 0 {
				continue
			}
			var res *pipeline.PlanResult
			var mapped []int
			if req.Planner != nil {
				res = req.Planner.Result(v.counts, req.SLO, v.availTypes)
				if res.Err != nil {
					continue
				}
			} else {
				types, orig := v.avail()
				plan, idx, rank, err := pipeline.ConstructRanked(req.DAG, req.Parts, types, req.SLO)
				if err != nil {
					continue
				}
				mapped = make([]int, len(idx))
				for i, ai := range idx {
					mapped[i] = orig[ai]
				}
				res = &pipeline.PlanResult{Rank: rank, Plan: plan}
			}
			g := res.Plan.GPCs()
			if best == -1 || res.Rank < bestRes.Rank ||
				(res.Rank == bestRes.Rank && g < bestGPCs) {
				best, bestRes, bestIdx, bestGPCs = ni, res, mapped, g
			}
		}
		if best == -1 {
			continue
		}
		v := &views[best]
		idx := bestIdx
		if idx == nil {
			// Planner fast path: replay the index binding against the
			// winning node's view; consume() guards double-booking.
			idx = bestRes.BindIndices(v.types, v.used)
		}
		v.consume(idx)
		out = append(out, Placement{
			Req: ri, Node: nodes[best].Node, Plan: bestRes.Plan, SliceIdx: idx,
		})
	}
	return out
}
