package experiments

import (
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/sim"
	"fluidfaas/internal/trace"
)

// ReconfigResult quantifies §2.2's argument that on-demand MIG
// repartitioning is impractical for serverless: when the workload
// shifts from small to large variants, a reconfiguring system
// repartitions the GPU (several minutes offline), while FluidFaaS
// simply pipelines the large function over the existing fragments.
type ReconfigResult struct {
	// Requests served during the shift window by each approach.
	ReconfigServed int
	FluidServed    int
	Total          int
	// OfflineSeconds the reconfiguring GPU spent unavailable.
	OfflineSeconds float64
}

// RunReconfig replays a workload shift on one GPU partitioned
// 2g+2g+2g+1g for a small-variant fleet. From the shift onward only the
// large image-classification variant arrives, which fits no existing
// slice monolithically (it needs 3g-class memory). The reconfiguring
// system drains and repartitions to P2 (3g+2g+2g), paying
// mig.ReconfigureDelay offline, then serves monolithically on the 3g;
// FluidFaaS starts a 2g+2g+1g pipeline over the existing fragments
// immediately.
func RunReconfig(cfg Config) ReconfigResult {
	cfg = cfg.withDefaults()
	app := dnn.Get(dnn.ImageClassification)
	const shiftAt = 60.0
	duration := shiftAt + mig.ReconfigureDelay + 60

	largeDAG := app.BuildDAG(dnn.Large)
	parts, err := largeDAG.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		panic(err)
	}
	largeSLO, _ := app.SLOLatency(dnn.Large, cfg.SLOScale)

	// Arrivals: large-variant requests from the shift onward.
	tr := trace.Generate(trace.Spec{
		Duration: duration,
		Seed:     cfg.Seed + 99,
		Streams:  []trace.StreamSpec{{Func: 0, MeanRPS: 1.0}},
	})
	var arrivals []float64
	for _, r := range tr.Requests {
		if r.Arrival >= shiftAt {
			arrivals = append(arrivals, r.Arrival)
		}
	}

	res := ReconfigResult{Total: len(arrivals)}

	// Reconfiguring system: offline during [shiftAt, shiftAt+delay],
	// then a monolithic 3g instance serves FIFO.
	{
		eng := sim.NewEngine()
		gpu := mig.NewGPU(0, 0, mig.Config2g3x1g)
		if err := gpu.Reconfigure(mig.ConfigP2, shiftAt); err != nil {
			panic(err)
		}
		res.OfflineSeconds = mig.ReconfigureDelay
		plan, err := pipeline.Monolithic(largeDAG, mig.Slice3g)
		if err != nil {
			panic(err)
		}
		st := sim.NewStation(eng, "reconfig")
		served := 0
		for _, at := range arrivals {
			arrival := at
			eng.At(arrival, func() {
				st.Enqueue(&sim.Job{
					Service: func() sim.Time { return plan.Latency },
					Done: func() {
						if eng.Now()-arrival <= largeSLO*4 {
							served++
						}
					},
				})
			})
		}
		// The station only starts once the repartition completes.
		st.Pause()
		eng.At(shiftAt+mig.ReconfigureDelay, func() { st.Resume() })
		eng.RunUntil(duration + 60)
		res.ReconfigServed = served
	}

	// FluidFaaS: pipeline over the already-partitioned fragments,
	// serving from the first post-shift request.
	{
		eng := sim.NewEngine()
		plan, _, err := pipeline.Construct(largeDAG, parts,
			[]mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice2g, mig.Slice1g}, largeSLO)
		if err != nil {
			panic(err)
		}
		// Tandem stations per stage.
		sts := make([]*sim.Station, len(plan.Stages))
		for i := range plan.Stages {
			sts[i] = sim.NewStation(eng, "ffs")
		}
		served := 0
		var enqueue func(arrival float64, si int)
		enqueue = func(arrival float64, si int) {
			sp := plan.Stages[si]
			sts[si].Enqueue(&sim.Job{
				Service: func() sim.Time { return sp.ExecTime },
				Done: func() {
					if si+1 < len(sts) {
						eng.After(sp.TransferOut, func() { enqueue(arrival, si+1) })
						return
					}
					if eng.Now()-arrival <= largeSLO*4 {
						served++
					}
				},
			})
		}
		for _, at := range arrivals {
			arrival := at
			eng.At(arrival, func() { enqueue(arrival, 0) })
		}
		eng.RunUntil(duration + 60)
		res.FluidServed = served
	}
	return res
}

// ReconfigTable renders the reconfiguration study.
func ReconfigTable(r ReconfigResult) Table {
	return Table{
		Title:  "Extension (§2.2): on-demand repartitioning vs FluidFaaS pipelines",
		Header: []string{"approach", "served in time", "of", "GPU offline (s)"},
		Rows: [][]string{
			{"repartition to P2 (3g+2g+2g)", f1(float64(r.ReconfigServed)), f1(float64(r.Total)), f1(r.OfflineSeconds)},
			{"fluidfaas pipeline", f1(float64(r.FluidServed)), f1(float64(r.Total)), "0.0"},
		},
	}
}
