package experiments

import (
	"fmt"

	"fluidfaas/internal/scheduler"
)

// SLOSweepPoint is one row of the SLO-scale sensitivity study: how the
// FluidFaaS-vs-ESG gap varies with the strictness of the latency budget
// (the paper fixes SLO scale 1.5; ESG's own evaluation sweeps it).
type SLOSweepPoint struct {
	Scale     float64
	ESGSLOHit float64
	FFSLOHit  float64
}

// RunSLOSweep runs the medium workload across SLO scales. Tight budgets
// squeeze the pipelines' transfer overhead; loose budgets let even the
// baselines absorb queueing — FluidFaaS's advantage peaks in between.
func RunSLOSweep(cfg Config, scales []float64) []SLOSweepPoint {
	cfg = cfg.withDefaults()
	if len(scales) == 0 {
		scales = []float64{1.2, 1.5, 2.0, 3.0}
	}
	var out []SLOSweepPoint
	for _, s := range scales {
		c := cfg
		c.SLOScale = s
		esg := RunSystem(&scheduler.ESG{}, Medium, c)
		ff := RunSystem(&scheduler.FluidFaaS{}, Medium, c)
		out = append(out, SLOSweepPoint{Scale: s, ESGSLOHit: esg.SLOHit, FFSLOHit: ff.SLOHit})
	}
	return out
}

// SLOSweepTable renders the sweep.
func SLOSweepTable(points []SLOSweepPoint) Table {
	t := Table{
		Title:  "Extension: SLO-scale sensitivity (medium workload)",
		Header: []string{"SLO scale", "esg hit", "fluidfaas hit", "delta"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fx", p.Scale), pct(p.ESGSLOHit), pct(p.FFSLOHit),
			fmt.Sprintf("%+.1fpp", (p.FFSLOHit-p.ESGSLOHit)*100),
		})
	}
	return t
}

// BatchingPoint is one row of the dynamic-batching extension study.
type BatchingPoint struct {
	MaxBatch   int
	Throughput float64
	SLOHit     float64
	P95        float64
}

// RunBatching sweeps the dynamic batch size on an over-saturated heavy
// workload (1.8x rate) with a loose latency budget (SLO scale 4), the
// regime batching targets: service time grows sublinearly with batch
// size, so larger batches raise sustainable throughput while the
// relaxed budget absorbs the added per-request latency — the trade
// INFless-style systems make. At the paper's tight 1.5x SLO, batching
// does not pay (every batch >1 blows the budget), which is consistent
// with FluidFaaS not batching.
func RunBatching(cfg Config, batches []int) []BatchingPoint {
	cfg = cfg.withDefaults()
	cfg.RateScale = 1.8
	cfg.SLOScale = 4
	if len(batches) == 0 {
		batches = []int{1, 2, 4, 8}
	}
	var out []BatchingPoint
	for _, b := range batches {
		c := cfg
		c.MaxBatch = b
		r := RunSystem(&scheduler.FluidFaaS{}, Heavy, c)
		out = append(out, BatchingPoint{
			MaxBatch:   b,
			Throughput: r.Throughput,
			SLOHit:     r.SLOHit,
			P95:        r.LatencyP95,
		})
	}
	return out
}

// BatchingTable renders the batching sweep.
func BatchingTable(points []BatchingPoint) Table {
	t := Table{
		Title:  "Extension: dynamic batching (heavy workload, FluidFaaS)",
		Header: []string{"max batch", "throughput (req/s)", "SLO hit", "p95 (s)"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.MaxBatch), f1(p.Throughput), pct(p.SLOHit), f2(p.P95),
		})
	}
	return t
}
