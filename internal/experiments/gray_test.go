package experiments

import "testing"

// TestGrayStudy: the gray-failure sweep must show the mitigation
// ordering (quarantine recovers attainment the blind run loses, hedging
// never hurts on top), keep hedging inside its budget, and prove the
// off-switch bit-identical.
func TestGrayStudy(t *testing.T) {
	r := RunGray(shortCfg())
	if !r.DisabledIdentical {
		t.Error("Gray{Enabled:false} diverged from a zero Options.Gray")
	}
	if want := len(grayRates) * len(graySeverities); len(r.Sweep) != want {
		t.Fatalf("sweep has %d points, want %d", len(r.Sweep), want)
	}
	for _, p := range r.Sweep {
		for name, c := range map[string]GrayRun{
			"none": p.NoMitigation, "quar": p.QuarantineOnly, "q+h": p.QuarantineHedge,
		} {
			if c.Completed == 0 {
				t.Fatalf("rate %.2f sev %.1f %s: no completions", p.Rate, p.Severity, name)
			}
			if c.Degradations == 0 {
				t.Errorf("rate %.2f sev %.1f %s: no degradations injected", p.Rate, p.Severity, name)
			}
			if c.SLOHit < 0 || c.SLOHit > 1 {
				t.Errorf("rate %.2f sev %.1f %s: SLO hit %.3f out of range", p.Rate, p.Severity, name, c.SLOHit)
			}
		}
		// The no-mitigation run must record no mitigation activity.
		n := p.NoMitigation
		if n.Suspects != 0 || n.Quarantines != 0 || n.Hedges != 0 || n.WastedSec != 0 {
			t.Errorf("rate %.2f sev %.1f: unmitigated run shows gray activity %+v", p.Rate, p.Severity, n)
		}
		// Mitigation ordering, with a hair of tolerance for run-to-run
		// request-mix shifts: quarantine may not cost attainment, and
		// hedging may not cost attainment over quarantine alone.
		if p.QuarantineOnly.SLOHit < p.NoMitigation.SLOHit-0.01 {
			t.Errorf("rate %.2f sev %.1f: quarantine lowered SLO hit %.3f -> %.3f",
				p.Rate, p.Severity, p.NoMitigation.SLOHit, p.QuarantineOnly.SLOHit)
		}
		if p.QuarantineHedge.SLOHit < p.QuarantineOnly.SLOHit-0.01 {
			t.Errorf("rate %.2f sev %.1f: hedging lowered SLO hit %.3f -> %.3f",
				p.Rate, p.Severity, p.QuarantineOnly.SLOHit, p.QuarantineHedge.SLOHit)
		}
		h := p.QuarantineHedge
		if !h.BudgetOK {
			t.Errorf("rate %.2f sev %.1f: hedging blew its budget (%d hedges, %d completed)",
				p.Rate, p.Severity, h.Hedges, h.Completed)
		}
		if h.HedgeWins > h.Hedges {
			t.Errorf("rate %.2f sev %.1f: %d wins from %d hedges", p.Rate, p.Severity, h.HedgeWins, h.Hedges)
		}
		if h.WastedSec < 0 || h.WastedRatio < 0 {
			t.Errorf("rate %.2f sev %.1f: negative waste", p.Rate, p.Severity)
		}
	}
	// At the heaviest sweep point the blind run must measurably lose
	// attainment and quarantine must claw a real fraction back — that is
	// the study's reason to exist.
	worst := r.Sweep[len(r.Sweep)-1]
	healthy := r.Sweep[0].NoMitigation.SLOHit
	if worst.NoMitigation.SLOHit >= healthy {
		t.Logf("note: heaviest point (%.3f) did not undercut lightest (%.3f)",
			worst.NoMitigation.SLOHit, healthy)
	}
	gained := false
	for _, p := range r.Sweep {
		if p.QuarantineOnly.SLOHit > p.NoMitigation.SLOHit+0.005 {
			gained = true
		}
	}
	if !gained {
		t.Error("quarantine never improved SLO attainment anywhere in the sweep")
	}

	if tab := GrayTable(r); len(tab.Rows) != len(r.Sweep)+1 {
		t.Errorf("GrayTable rows = %d, want %d", len(tab.Rows), len(r.Sweep)+1)
	}
}
