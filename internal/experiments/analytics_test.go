package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunAnalyticsDeterministic: the span-analytics study regenerates
// byte-identical reports and snapshots for a given seed, and the report
// actually covers the run.
func TestRunAnalyticsDeterministic(t *testing.T) {
	var reports, snaps [2][]byte
	for i := 0; i < 2; i++ {
		ar := RunAnalytics(shortCfg())
		var b bytes.Buffer
		if err := ar.Report.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		reports[i] = b.Bytes()
		s, err := json.Marshal(ar.Snapshot)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = s

		if ar.Report.Requests != ar.Result.Total {
			t.Errorf("report covers %d requests, run recorded %d",
				ar.Report.Requests, ar.Result.Total)
		}
		if len(ar.Report.Blame) != len(appsFor(Medium)) {
			t.Errorf("blame rows = %d, want one per app (%d)",
				len(ar.Report.Blame), len(appsFor(Medium)))
		}
		if len(ar.Snapshot.Slices) == 0 || len(ar.Snapshot.Functions) == 0 {
			t.Error("platform snapshot is empty")
		}
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("analytics reports differ across same-seed runs")
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Error("platform snapshots differ across same-seed runs")
	}
}

// TestAnalyticsTablesRender: every table renders with its full header
// and one row per function.
func TestAnalyticsTablesRender(t *testing.T) {
	ar := RunAnalytics(shortCfg())
	apps := len(appsFor(Medium))
	for _, tb := range []Table{
		AnalyticsBlameTable(ar.Report),
		AnalyticsStragglerTable(ar.Report),
		AnalyticsBurnTable(ar.Report),
		AnalyticsDriftTable(ar.Report),
	} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row arity %d != header %d", tb.Title, len(row), len(tb.Header))
			}
		}
	}
	if rows := len(AnalyticsBlameTable(ar.Report).Rows); rows != apps {
		t.Errorf("blame table rows = %d, want %d", rows, apps)
	}
}

// TestWriteBenchJSONDeterministic: the machine-readable bench document
// is valid JSON, covers the full matrix in fixed order, and is
// byte-stable across identical inputs.
func TestWriteBenchJSONDeterministic(t *testing.T) {
	cfg := shortCfg()
	e2e := RunEndToEnd(cfg)
	ar := RunAnalytics(cfg)

	var docs [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := WriteBenchJSON(&docs[i], "test", e2e, ar.Report, nil, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Error("bench JSON differs across identical inputs")
	}

	var doc BenchDoc
	if err := json.Unmarshal(docs[0].Bytes(), &doc); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if want := len(Workloads) * len(systemsOrder()); len(doc.Runs) != want {
		t.Fatalf("runs = %d, want %d", len(doc.Runs), want)
	}
	if doc.Runs[0].Workload != "light" || doc.Runs[0].System != "infless" {
		t.Errorf("first run = %s/%s, want light/infless", doc.Runs[0].Workload, doc.Runs[0].System)
	}
	last := doc.Runs[len(doc.Runs)-1]
	if last.Workload != "heavy" || last.System != "fluidfaas" {
		t.Errorf("last run = %s/%s, want heavy/fluidfaas", last.Workload, last.System)
	}
	if doc.Analytics == nil || len(doc.Analytics.Blame) == 0 {
		t.Error("bench JSON has no analytics section")
	}
	for _, r := range doc.Runs {
		if r.Total <= 0 || r.LatencyP50 <= 0 {
			t.Errorf("run %s/%s has empty metrics: %+v", r.Workload, r.System, r)
		}
	}
}
