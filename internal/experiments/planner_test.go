package experiments

import "testing"

// TestRunPlannerAcceptance enforces the planner fast path's two
// shipping criteria on the steady-state medium workload: the cache-on
// and cache-off runs are bit-identical, and memoization eliminates at
// least 5x of the partition-list walks (with a hit rate to match).
func TestRunPlannerAcceptance(t *testing.T) {
	r := RunPlanner(shortCfg())
	if !r.Identical {
		t.Fatal("cache-on and cache-off runs diverged; the plan cache is not behaviour-invariant")
	}
	if r.Hits == 0 {
		t.Fatal("plan cache never hit on the medium workload")
	}
	if r.WalkReduction < 5 {
		t.Errorf("construct walks reduced %.1fx, want >= 5x (hit rate %.1f%%)",
			r.WalkReduction, r.HitRate*100)
	}
	if r.HitRate <= 0 || r.HitRate > 1 {
		t.Errorf("hit rate %.3f out of range", r.HitRate)
	}
}
