package experiments

import (
	"testing"

	"fluidfaas/internal/faults"
	"fluidfaas/internal/scheduler"
)

// TestFaultSpecFor: zero rate must return nil (the exact fault-free
// configuration), nonzero rates scale the GPU/node classes down.
func TestFaultSpecFor(t *testing.T) {
	if FaultSpecFor(0) != nil {
		t.Error("zero rate should disable faults entirely")
	}
	s := FaultSpecFor(0.02)
	if s == nil || !s.Enabled() {
		t.Fatal("nonzero rate produced a disabled spec")
	}
	if s.SliceRate != 0.02 || s.GPURate != 0.005 || s.NodeRate != 0.0005 {
		t.Errorf("rate scaling wrong: %+v", s)
	}
}

// TestResilienceZeroRateMatchesBaseline: the sweep's zero-rate point
// must be bit-for-bit the plain run — same records, same launches, no
// fault activity. This is the acceptance bar for the fault layer being
// purely additive.
func TestResilienceZeroRateMatchesBaseline(t *testing.T) {
	cfg := shortCfg()
	base := RunSystem(&scheduler.FluidFaaS{}, Medium, cfg)

	zero := cfg
	zero.Faults = &faults.Spec{} // explicit all-zero spec, not just nil
	faulted := RunSystem(&scheduler.FluidFaaS{}, Medium, zero)

	if base.SLOHit != faulted.SLOHit {
		t.Errorf("SLO hit differs: %v vs %v", base.SLOHit, faulted.SLOHit)
	}
	if base.Throughput != faulted.Throughput {
		t.Errorf("throughput differs: %v vs %v", base.Throughput, faulted.Throughput)
	}
	if base.Completed != faulted.Completed || base.Total != faulted.Total {
		t.Errorf("request counts differ: %d/%d vs %d/%d",
			base.Completed, base.Total, faulted.Completed, faulted.Total)
	}
	if base.Launched != faulted.Launched {
		t.Errorf("launch counts differ: %d vs %d", base.Launched, faulted.Launched)
	}
	if len(base.Events) != len(faulted.Events) {
		t.Errorf("event counts differ: %d vs %d", len(base.Events), len(faulted.Events))
	}
	if faulted.Faults != 0 || faulted.Retries != 0 || faulted.FailedCount != 0 {
		t.Errorf("zero-rate run shows fault activity: %d faults, %d retries, %d failed",
			faulted.Faults, faulted.Retries, faulted.FailedCount)
	}
	if faulted.Availability != 1 {
		t.Errorf("zero-rate availability = %v, want 1", faulted.Availability)
	}
}

// TestRunResilienceSweep: the sweep covers every rate for every system;
// nonzero rates inject faults deterministically and availability stays
// a valid fraction.
func TestRunResilienceSweep(t *testing.T) {
	cfg := shortCfg()
	rs := RunResilience(cfg)
	if len(rs) != len(ResilienceRates) {
		t.Fatalf("sweep has %d points, want %d", len(rs), len(ResilienceRates))
	}
	for i, r := range rs {
		if r.SliceRate != ResilienceRates[i] {
			t.Errorf("point %d rate = %v, want %v", i, r.SliceRate, ResilienceRates[i])
		}
		if len(r.Systems) != len(Systems()) {
			t.Fatalf("point %d has %d systems, want %d", i, len(r.Systems), len(Systems()))
		}
		for _, s := range r.Systems {
			if s.Availability < 0 || s.Availability > 1 {
				t.Errorf("rate %v %s: availability %v out of range",
					r.SliceRate, s.System, s.Availability)
			}
			if r.SliceRate == 0 && s.Faults != 0 {
				t.Errorf("%s: faults injected at rate zero", s.System)
			}
			if r.SliceRate > 0 && s.Faults == 0 {
				t.Errorf("%s: no faults injected at rate %v over %v s",
					s.System, r.SliceRate, cfg.Duration)
			}
		}
	}
	// Within one rate point the systems share the fault schedule: the
	// injected fault count depends only on seed, horizon and topology.
	for _, r := range rs[1:] {
		for _, s := range r.Systems[1:] {
			if s.Faults != r.Systems[0].Faults {
				t.Errorf("rate %v: fault counts differ across systems (%d vs %d)",
					r.SliceRate, s.Faults, r.Systems[0].Faults)
			}
		}
	}
	tbl := ResilienceTable(rs)
	if len(tbl.Rows) != len(ResilienceRates)*len(Systems()) {
		t.Errorf("table has %d rows, want %d", len(tbl.Rows), len(ResilienceRates)*len(Systems()))
	}
}
