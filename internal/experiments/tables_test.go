package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fluidfaas/internal/metrics"
)

func TestTable2Render(t *testing.T) {
	tab := Table2SliceProfiles()
	s := tab.String()
	for _, want := range []string{"7g.80gb", "1g.10gb", "7GPC", "80gb"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if len(tab.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(tab.Rows))
	}
}

func TestTable5Render(t *testing.T) {
	tab := Table5MinimumSlices()
	if len(tab.Rows) != 12 { // 4 apps x 3 variants
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "NULL") {
		t.Error("Table 5 missing the App 3 large NULL row")
	}
	if !strings.Contains(s, ">=4g.40gb") {
		t.Error("Table 5 missing the App 3 medium 4g row")
	}
}

func TestCSVWriters(t *testing.T) {
	var tl metrics.Timeline
	tl.Add(0, 0.25)
	tl.Add(1, 0.5)
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.HasPrefix(got, "time_s,value\n0.000,0.250000\n") {
		t.Errorf("timeline CSV = %q", got)
	}

	buf.Reset()
	cdf := []metrics.CDFPoint{{Latency: 0.5, Fraction: 0.5}, {Latency: 1, Fraction: 1}}
	if err := WriteCDFCSV(&buf, cdf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.5000,0.5000") {
		t.Errorf("cdf CSV = %q", buf.String())
	}

	buf.Reset()
	r := MotivationResult{
		Times: []float64{0, 1}, Occupied: []float64{0.1, 0.2}, Required: []float64{0.05, 0.1},
	}
	if err := WriteMotivationCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("motivation CSV lines = %d, want 3", len(lines))
	}
}
