package experiments

import (
	"fluidfaas/internal/overload"
	"fluidfaas/internal/scheduler"
)

// This file is the overload extension study: how the three systems
// behave when offered load exceeds capacity. The paper's evaluation
// stops at workloads the testbed can serve; this sweep multiplies the
// medium workload's request rates past saturation and compares plain
// FluidFaaS and the baselines against FluidFaaS with the overload
// controller (SLO-aware admission, fair queueing, brownout) enabled.
// The controller's promise is graceful degradation: goodput holds near
// its peak while the lost traffic fails fast at arrival instead of
// timing out after queueing.

// OverloadMultipliers are the offered-load multiples of the medium
// workload swept by the study; the top point is ~4x what the testbed
// serves at its knee.
var OverloadMultipliers = []float64{1, 2, 4}

// OverloadControlConfig is the controller configuration the study
// enables on FluidFaaS: all three features at their defaults.
func OverloadControlConfig() overload.Config {
	return overload.Config{Admission: true, FairQueue: true, Brownout: true}
}

// OverloadPoint is one load multiplier's results: the three plain
// systems in Systems() order, then FluidFaaS with overload control
// (System name suffixed "+overload").
type OverloadPoint struct {
	Multiplier float64
	Systems    []SystemResult
}

// RunOverload sweeps the load multipliers at the medium workload.
// A nil mults uses OverloadMultipliers. Within one multiplier every
// system sees the identical trace.
func RunOverload(cfg Config, mults []float64) []OverloadPoint {
	cfg = cfg.withDefaults()
	if mults == nil {
		mults = OverloadMultipliers
	}
	// Priority classes for shedding: apps are ranked by index, the last
	// one highest (uniform priorities would shed nothing).
	prios := make([]int, len(appsFor(Medium)))
	for i := range prios {
		prios[i] = i
	}
	var out []OverloadPoint
	for _, m := range mults {
		c := cfg
		c.RateScale = cfg.RateScale * m
		pt := OverloadPoint{Multiplier: m}
		for _, pol := range Systems() {
			pt.Systems = append(pt.Systems, RunSystem(pol, Medium, c))
		}
		oc := c
		oc.Overload = OverloadControlConfig()
		oc.Priorities = prios
		res := RunSystem(&scheduler.FluidFaaS{}, Medium, oc)
		res.System += "+overload"
		pt.Systems = append(pt.Systems, res)
		out = append(out, pt)
	}
	return out
}

// OverloadTable renders the sweep in the evaluation's row format.
func OverloadTable(points []OverloadPoint) Table {
	t := Table{
		Title: "Extension: goodput and degradation under offered overload (medium workload)",
		Header: []string{"xload", "system", "goodput", "slo hit", "fast-fail",
			"timeout-drop", "shed", "fairness", "contractions"},
	}
	for _, pt := range points {
		for _, s := range pt.Systems {
			t.Rows = append(t.Rows, []string{
				f1(pt.Multiplier), s.System, f1(s.Goodput), pct(s.SLOHit),
				itoa(s.Rejected), itoa(s.TimeoutDrops), itoa(s.Shed),
				f3(s.Fairness), itoa(s.Contractions),
			})
		}
	}
	return t
}
