package experiments

import (
	"fmt"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

// MotivationResult reproduces Fig. 3: ESG's resource demand vs the
// ideal requirement, and the per-slice-type MIG usage at the moment of
// peak over-demand.
type MotivationResult struct {
	// Times and the two series of Fig. 3a (fractions of cluster GPCs).
	Times    []float64
	Occupied []float64
	Required []float64
	// PeakOverdemand is max (occupied-required)/required — the paper
	// reports 167% at the 83rd second.
	PeakOverdemand float64
	PeakTime       float64
	// SliceUsageAtPeak maps profile name to active/total counts at the
	// peak (Fig. 3b: only the 4g slices are busy in medium workload).
	SliceUsageAtPeak map[string][2]int
}

// RunMotivation runs ESG on the medium workload and measures the gap
// between allocated and ideally required GPU resources (§4).
func RunMotivation(cfg Config) MotivationResult {
	cfg = cfg.withDefaults()
	w := Medium
	specs := SpecsFor(w, cfg.SLOScale)
	tr := TraceFor(w, cfg)
	cl := cluster.New(cluster.Spec{
		Nodes: cfg.Nodes, GPUConfigs: cfg.GPUConfigs, CPUMemGB: 1440,
	})

	// Per-second per-slice-type activity snapshots.
	type snap struct {
		now     float64
		byType  map[mig.SliceType][2]int
		occGPCs int
	}
	var snaps []snap
	opts := platform.Options{
		Policy: &scheduler.ESG{},
		Seed:   cfg.Seed,
		OnSample: func(now float64, cl *cluster.Cluster) {
			s := snap{now: now, byType: map[mig.SliceType][2]int{}}
			for _, g := range cl.AllGPUs() {
				for _, sl := range g.Slices {
					c := s.byType[sl.Type]
					c[1]++
					if sl.Active() {
						c[0]++
					}
					s.byType[sl.Type] = c
				}
				s.occGPCs += g.OccupiedGPCs()
			}
			snaps = append(snaps, s)
		},
	}
	p := platform.New(cl, specs, opts)
	p.Run(tr, cfg.Drain)

	// Ideal requirement: per-bucket arrival rate times the most
	// GPC-efficient per-request cost of each application.
	apps := appsFor(w)
	ideal := make([]float64, len(apps))
	for i, a := range apps {
		d := a.BuildDAG(w.Variant())
		best := 0.0
		for _, t := range mig.SliceTypes {
			plan, err := pipeline.Monolithic(d, t)
			if err != nil {
				continue
			}
			cost := float64(t.GPCs()) * plan.Latency
			if best == 0 || cost < best {
				best = cost
			}
		}
		ideal[i] = best
	}
	perApp := make([][]float64, len(apps))
	bucket := 1.0
	for i := range apps {
		sub := tr
		rates := make([]float64, int(cfg.Duration/bucket)+1)
		for _, r := range sub.Requests {
			if r.Func == i {
				idx := int(r.Arrival / bucket)
				if idx < len(rates) {
					rates[idx]++
				}
			}
		}
		perApp[i] = rates
	}

	total := float64(cl.TotalGPCs())
	res := MotivationResult{SliceUsageAtPeak: map[string][2]int{}}
	for _, s := range snaps {
		idx := int(s.now / bucket)
		req := 0.0
		for i := range apps {
			if idx < len(perApp[i]) {
				req += perApp[i][idx] * ideal[i]
			}
		}
		reqFrac := req / total
		occFrac := float64(s.occGPCs) / total
		res.Times = append(res.Times, s.now)
		res.Occupied = append(res.Occupied, occFrac)
		res.Required = append(res.Required, reqFrac)
		if reqFrac > 0.05 {
			over := (occFrac - reqFrac) / reqFrac
			if over > res.PeakOverdemand {
				res.PeakOverdemand = over
				res.PeakTime = s.now
				res.SliceUsageAtPeak = map[string][2]int{}
				for t, c := range s.byType {
					res.SliceUsageAtPeak[t.String()] = c
				}
			}
		}
	}
	return res
}

// Fig3Table renders the motivation result in the paper's terms.
func Fig3Table(r MotivationResult) Table {
	t := Table{
		Title:  "Fig. 3: ESG resource demand vs required (medium workload)",
		Header: []string{"quantity", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"peak over-demand", pct(r.PeakOverdemand)},
		[]string{"at second", f1(r.PeakTime)},
	)
	for _, name := range []string{"4g.40gb", "2g.20gb", "1g.10gb"} {
		c := r.SliceUsageAtPeak[name]
		t.Rows = append(t.Rows, []string{
			"active " + name, fmt.Sprintf("%d/%d", c[0], c[1]),
		})
	}
	return t
}

// FragmentationCase is one row of the Fig. 4 walk-through.
type FragmentationCase struct {
	Scenario   string
	FreeSlices string
	Monolithic string
	Pipeline   string
}

// RunFragmentation reproduces the Fig. 4 story: a function that needs
// 4g-class resources cannot be placed monolithically on fragmented
// GPUs, while FluidFaaS builds a pipeline from the fragments ((c) a
// 3g+1g-class combination, (d) two 2g slices).
func RunFragmentation() []FragmentationCase {
	// GPU 1: default partition with the 4g and 1g occupied (instances A
	// and B of Fig. 1/4), leaving its 2g free.
	// GPU 2: P2 partition with the 3g occupied (instance C), leaving two
	// 2g slices free.
	gpu1 := mig.NewGPU(0, 1, mig.DefaultConfig)
	gpu1.Slices[0].Allocate("instance-A", 0) // 4g
	gpu1.Slices[2].Allocate("instance-B", 0) // 1g
	gpu2 := mig.NewGPU(0, 2, mig.ConfigP2)
	gpu2.Slices[0].Allocate("instance-C", 0) // the 3g

	free := append(gpu1.FreeSlices(0), gpu2.FreeSlices(0)...)
	var freeTypes []mig.SliceType
	freeStr := ""
	for i, sl := range free {
		if i > 0 {
			freeStr += " "
		}
		freeStr += sl.ID()
		freeTypes = append(freeTypes, sl.Type)
	}

	// Instance D: the large image-classification variant (baseline
	// needs >= 3g.40gb; no free slice that big exists).
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Large)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		panic(err)
	}
	slo, _ := a.SLOLatency(dnn.Large, 1.5)

	var cases []FragmentationCase
	monoOK := "no free slice fits"
	for _, t := range freeTypes {
		if _, err := pipeline.Monolithic(d, t); err == nil {
			monoOK = "fits " + t.String()
			break
		}
	}
	freeGPCs := 0
	for _, t := range freeTypes {
		freeGPCs += t.GPCs()
	}
	cases = append(cases, FragmentationCase{
		Scenario:   fmt.Sprintf("(a/b) instance D needs >=3g class; %d GPCs free in fragments", freeGPCs),
		FreeSlices: freeStr,
		Monolithic: monoOK,
		Pipeline:   "",
	})

	plan, _, errC := pipeline.Construct(d, parts, freeTypes, slo)
	pipeStr := "infeasible"
	if errC == nil {
		pipeStr = plan.String()
	}
	cases = append(cases, FragmentationCase{
		Scenario:   "(c/d) FluidFaaS pipeline over the fragments",
		FreeSlices: freeStr,
		Monolithic: "n/a",
		Pipeline:   pipeStr,
	})
	return cases
}

// Fig4Table renders the fragmentation walk-through.
func Fig4Table(cases []FragmentationCase) Table {
	t := Table{
		Title:  "Fig. 4: GPU resource fragmentation",
		Header: []string{"scenario", "free slices", "monolithic", "pipeline"},
	}
	for _, c := range cases {
		t.Rows = append(t.Rows, []string{c.Scenario, c.FreeSlices, c.Monolithic, c.Pipeline})
	}
	return t
}

// KeepAliveResult reproduces Fig. 5: occupied vs actively used MIG
// percentage per GPU under the exclusive keep-alive policy.
type KeepAliveResult struct {
	// Per-GPU occupied and active GPC-time fractions.
	OccupiedPct []float64
	ActivePct   []float64
	// AvgActive is the mean active percentage (paper: 16.1%).
	AvgActive float64
	// FracBelow35 is the fraction of time cluster activity stayed under
	// 35% of the occupied capacity (paper: ~90%).
	FracBelow35 float64
}

// RunKeepAlive runs ESG on a sparse trace: instances sit warm in their
// slices (exclusive keep-alive) while actual processing is rare.
func RunKeepAlive(cfg Config) KeepAliveResult {
	cfg = cfg.withDefaults()
	if cfg.Duration < 600 {
		cfg.Duration = 600
	}
	specs := SpecsFor(Light, cfg.SLOScale)
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: cfg.GPUConfigs, CPUMemGB: 1440,
	})
	var activeVsOccupied metrics.Timeline
	p := platform.New(cl, specs, platform.Options{
		Policy: &scheduler.ESG{},
		Seed:   cfg.Seed,
		OnSample: func(now float64, cl *cluster.Cluster) {
			occ := cl.OccupiedGPCs()
			if occ == 0 {
				return
			}
			activeVsOccupied.Add(now, float64(cl.ActiveGPCs())/float64(occ))
		},
	})
	// Sparse but regular traffic: enough to keep instances alive, far
	// below their capacity.
	tr := sparseTrace(len(specs), cfg)
	p.Run(tr, cfg.Drain)

	end := cfg.Duration + cfg.Drain
	res := KeepAliveResult{}
	sumActive := 0.0
	n := 0
	for _, g := range cl.AllGPUs() {
		occT, actT := 0.0, 0.0
		gpcs := 0.0
		for _, sl := range g.Slices {
			w := float64(sl.Type.GPCs())
			occT += sl.OccupiedTime(end) * w
			actT += sl.ActiveTime(end) * w
			gpcs += w
		}
		occPct := occT / (end * gpcs)
		actPct := actT / (end * gpcs)
		res.OccupiedPct = append(res.OccupiedPct, occPct)
		res.ActivePct = append(res.ActivePct, actPct)
		if occPct > 0 {
			sumActive += actPct / occPct
			n++
		}
	}
	if n > 0 {
		res.AvgActive = sumActive / float64(n)
	}
	res.FracBelow35 = activeVsOccupied.FractionBelow(0.35)
	return res
}

// sparseTrace generates the Fig. 5 traffic: bursty activity around 0.5
// req/s per function — instances stay warm but process rarely.
func sparseTrace(nFuncs int, cfg Config) *trace.Trace {
	var streams []trace.StreamSpec
	for i := 0; i < nFuncs; i++ {
		streams = append(streams, trace.StreamSpec{
			Func:          i,
			MeanRPS:       1.2,
			RateSigma:     0.5,
			BurstFactor:   4,
			BurstFraction: 0.08,
			BurstLen:      20,
		})
	}
	return trace.Generate(trace.Spec{
		Duration: cfg.Duration,
		Seed:     cfg.Seed + 555,
		Streams:  streams,
	})
}

// Fig5Table renders the keep-alive result.
func Fig5Table(r KeepAliveResult) Table {
	t := Table{
		Title:  "Fig. 5: occupied vs actively used GPU percentage (ESG, sparse trace)",
		Header: []string{"gpu", "occupied", "active"},
	}
	for i := range r.OccupiedPct {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("gpu%d", i), pct(r.OccupiedPct[i]), pct(r.ActivePct[i]),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"avg active share of occupied", pct(r.AvgActive), ""},
		[]string{"time below 35% activity", pct(r.FracBelow35), ""},
	)
	return t
}
