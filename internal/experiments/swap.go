package experiments

import (
	"fmt"
	"reflect"
	"sort"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

// This file is the model-density study for the swap tier (ROADMAP §3):
// how many distinct models a small testbed can serve per GPU at
// acceptable SLO attainment, with the host-memory pool managed by the
// swap tier versus the legacy anonymous accounting. The workload is a
// phased rotation — model registrations far exceeding host memory, but
// a working set per phase that fits — so the tier's LRU eviction and
// parked-copy swap-ins are exactly what keeps late-registered models
// warm. It also re-checks the tier's off-switch: a run with
// Swap.Enabled=false must be bit-identical to a run that never
// mentioned the tier at all.

// Density-study testbed: one node with two default-partitioned GPUs and
// host memory sized so the bulk of the census fits as pool copies but
// the largest census overflows — the top of the sweep genuinely
// exercises LRU eviction.
const (
	swapGPUs      = 2
	swapHostMemGB = 320
	// swapKeepAlive shortens the keep-alive window (both modes, so the
	// comparison is fair) to less than the larger censuses' group-return
	// period. Legacy warmth is time-based: a model idle past the window
	// is forgotten and reloads cold even though host memory is free. The
	// swap tier's warmth is space-based: the copy stays materialised in
	// the pool until eviction, so the same return is a cheap swap-in.
	// That gap — time-bounded vs capacity-bounded retention — is what
	// model density measures.
	swapKeepAlive = 150.0
	// swapIdleDemote shortens the exclusive-instance idle-demote window
	// (both modes) so an outgoing group's instances release their slices
	// near the phase hand-off instead of pinning them a third of the way
	// into the next phase.
	swapIdleDemote = 5.0
	// Phased rotation with a fixed working set: the census splits into
	// groups of swapGroup models, and the groups take turns — every run
	// spans exactly swapPhases phases of swapPhaseLen seconds, cycling
	// through the groups, each driving its 4 models at swapModelRPS with
	// staggered starts. Every census point runs the identical per-phase
	// dynamics and the same number of group hand-offs (the single-group
	// baseline idles alternate phases so its group, too, cools off and
	// must reload on return); only the accumulated host-memory history
	// differs — which is precisely what the study measures.
	swapGroup    = 4
	swapPhases   = 8
	swapPhaseLen = 60.0
	swapModelRPS = 0.5
	// swapSLOScale sets the density study's SLO between a warm load
	// (model already in the host pool, ~1.6 s for a medium app) and a
	// true cold start (~10 s): a reload from the pool can meet the SLO,
	// a pool miss cannot. That is the regime where host-memory
	// management decides attainment.
	swapSLOScale = 6.0
	// swapBaselineFrac is the SLO-attainment bar: a census counts as
	// served when its hit rate is at least this fraction of the
	// attainment the legacy system (tier off) delivers at the smallest
	// census — one absolute bar, applied to both modes.
	swapBaselineFrac = 0.95
)

// swapCensus is the model counts the sweep visits. Group-return
// periods: 120 s at n≤8 (inside the keep-alive window — both modes
// warm), 180–300 s beyond (outside it — only the pool remembers). The
// top census overflows the pool (20 × ~19 GB > 320 GB), so eviction
// and refetch show up in the on-mode numbers too.
var swapCensus = []int{4, 8, 12, 16, 20}

// SwapPoint is one census point of the density sweep.
type SwapPoint struct {
	// Models is the registered model count; PerGPU is Models/GPUs.
	Models int     `json:"models"`
	PerGPU float64 `json:"perGPU"`
	// SLO attainment with the swap tier on and off.
	SLOHitOn  float64 `json:"sloHitOn"`
	SLOHitOff float64 `json:"sloHitOff"`
	// Swap-tier activity of the on run.
	SwapIns   int     `json:"swapIns"`
	SwapOuts  int     `json:"swapOuts"`
	PoolOccOn float64 `json:"poolOccOn"`
	// Mean request latency, for the table.
	LatencyOn  float64 `json:"latencyOn"`
	LatencyOff float64 `json:"latencyOff"`
}

// SwapResult is the density study outcome.
type SwapResult struct {
	Workload  string  `json:"workload"`
	Seed      int64   `json:"seed"`
	GPUs      int     `json:"gpus"`
	HostMemGB float64 `json:"hostMemGB"`

	Points []SwapPoint `json:"points"`

	// Baseline is the legacy system's smallest-census SLO attainment,
	// the reference both modes are held to.
	Baseline float64 `json:"baseline"`
	// DensityOn/Off are models-per-GPU at the largest census that the
	// mode still serves at ≥ swapBaselineFrac·Baseline, requiring every
	// smaller census to pass too (a census that only "recovers" after a
	// failing one does not count); DensityGain is their ratio.
	DensityOn   float64 `json:"densityOn"`
	DensityOff  float64 `json:"densityOff"`
	DensityGain float64 `json:"densityGain"`

	// DisabledIdentical is the off-switch verdict: Swap{Enabled:false}
	// versus a zero Options.Swap on the standard medium run — request
	// records, event sequences, utilisation timeline and counters all
	// equal.
	DisabledIdentical bool `json:"disabledIdentical"`
}

// swapSpecs replicates the first three medium applications into n
// distinct registered models ("census"): model i is a fresh copy of app
// i%3 under a unique name, so each has its own keep-alive state and its
// own host-pool reservation.
func swapSpecs(n int, sloScale float64) []platform.FunctionSpec {
	apps := appsFor(Medium)[:3]
	v := Medium.Variant()
	specs := make([]platform.FunctionSpec, 0, n)
	for i := 0; i < n; i++ {
		a := apps[i%len(apps)]
		d := a.BuildDAG(v)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			panic(err)
		}
		slo, ok := a.SLOLatency(v, sloScale)
		if !ok {
			panic(fmt.Sprintf("experiments: no SLO for %s/%s", a.Name, v))
		}
		specs = append(specs, platform.FunctionSpec{
			ID: i, Name: fmt.Sprintf("%s@%d", a.Name, i), DAG: d, Parts: parts, SLO: slo,
		})
	}
	return specs
}

// swapTrace builds the phased-rotation trace: the n models split into
// groups of swapGroup that take turns over swapPhases fixed phases, one
// group per phase at swapModelRPS per model with staggered starts. Any
// single phase's working set fits the host pool; a large census in
// total does not — exactly the managed-pool regime. The single-group
// baseline cycles group/idle so every census, baseline included, pays
// the same per-phase reload transition. Fully deterministic — no
// sampling — so on/off runs see byte-identical arrivals.
func swapTrace(n int) *trace.Trace {
	groups := (n + swapGroup - 1) / swapGroup
	cycle := groups
	if cycle < 2 {
		cycle = 2
	}
	interval := 1 / swapModelRPS
	var reqs []trace.Request
	for p := 0; p < swapPhases; p++ {
		g := p % cycle
		if g >= groups {
			continue // idle phase: the baseline group cools off
		}
		start := float64(p) * swapPhaseLen
		for k := 0; k < swapGroup; k++ {
			m := g*swapGroup + k
			if m >= n {
				break
			}
			offset := start + float64(k)*interval/float64(swapGroup)
			for t := offset; t < start+swapPhaseLen; t += interval {
				reqs = append(reqs, trace.Request{Func: m, Arrival: t})
			}
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Arrival != reqs[j].Arrival {
			return reqs[i].Arrival < reqs[j].Arrival
		}
		return reqs[i].Func < reqs[j].Func
	})
	for i := range reqs {
		reqs[i].ID = i
	}
	return &trace.Trace{
		Requests: reqs,
		Duration: swapPhases * swapPhaseLen,
		NumFuncs: n,
	}
}

// runDensity executes one census point: n models on the density testbed
// with the swap tier configured by sw.
func runDensity(n int, seed int64, sloScale float64, sw platform.SwapOptions) *platform.Platform {
	specs := swapSpecs(n, sloScale)
	cl := cluster.New(cluster.Spec{
		Nodes:      1,
		GPUConfigs: mig.UniformNode(mig.DefaultConfig, swapGPUs),
		CPUMemGB:   swapHostMemGB,
	})
	p := platform.New(cl, specs, platform.Options{
		Policy: &scheduler.FluidFaaS{}, Seed: seed, Swap: sw,
		KeepAlive: swapKeepAlive, IdleDemote: swapIdleDemote,
	})
	p.Run(swapTrace(n), 40)
	return p
}

// swapDensity is the served-census verdict: models-per-GPU at the
// largest census whose hit rate holds swapBaselineFrac of the legacy
// baseline, with every smaller census passing too.
func swapDensity(points []SwapPoint, baseline float64, hit func(SwapPoint) float64) float64 {
	best := 0.0
	for _, pt := range points {
		if hit(pt) < swapBaselineFrac*baseline {
			break
		}
		best = pt.PerGPU
	}
	return best
}

// RunSwap runs the swap-tier density study.
func RunSwap(cfg Config) SwapResult {
	cfg = cfg.withDefaults()
	res := SwapResult{
		Workload:  Medium.String(),
		Seed:      cfg.Seed,
		GPUs:      swapGPUs,
		HostMemGB: swapHostMemGB,
	}

	// Off-switch identity: the standard medium run with Options.Swap
	// zero versus explicitly disabled (non-zero PinRecent must not leak
	// into behaviour while Enabled is false). Uses cfg.Duration, so the
	// CI smoke run keeps it short.
	type capture struct {
		recs []metrics.RequestRecord
		exec uint64
	}
	run := func(sw platform.SwapOptions) (SystemResult, capture) {
		c := cfg
		c.Swap = sw
		var cap capture
		c.OnPlatform = func(p *platform.Platform) {
			cap.recs = p.Collector().Records()
			cap.exec = p.Engine().Executed()
		}
		return RunSystem(&scheduler.FluidFaaS{}, Medium, c), cap
	}
	zero, capZero := run(platform.SwapOptions{})
	off, capOff := run(platform.SwapOptions{Enabled: false, PinRecent: 7})
	res.DisabledIdentical = reflect.DeepEqual(capZero.recs, capOff.recs) &&
		capZero.exec == capOff.exec &&
		zero.Launched == off.Launched &&
		zero.Evictions == off.Evictions &&
		zero.Migrations == off.Migrations &&
		reflect.DeepEqual(zero.Events, off.Events) &&
		reflect.DeepEqual(zero.UtilGPCs, off.UtilGPCs)

	// Density sweep: each census on/off. The sweep uses its own phased
	// trace and testbed (fixed duration), independent of cfg.Duration.
	for _, n := range swapCensus {
		on := runDensity(n, cfg.Seed, swapSLOScale, platform.SwapOptions{Enabled: true})
		offP := runDensity(n, cfg.Seed, swapSLOScale, platform.SwapOptions{})
		onLats := on.Collector().Latencies()
		offLats := offP.Collector().Latencies()
		res.Points = append(res.Points, SwapPoint{
			Models:     n,
			PerGPU:     float64(n) / swapGPUs,
			SLOHitOn:   on.Collector().SLOHitRate(),
			SLOHitOff:  offP.Collector().SLOHitRate(),
			SwapIns:    on.SwapIns(),
			SwapOuts:   on.SwapOuts(),
			PoolOccOn:  on.HostPoolOcc.Mean(),
			LatencyOn:  metrics.Percentile(onLats, 50),
			LatencyOff: metrics.Percentile(offLats, 50),
		})
	}
	res.Baseline = res.Points[0].SLOHitOff
	res.DensityOn = swapDensity(res.Points, res.Baseline, func(p SwapPoint) float64 { return p.SLOHitOn })
	res.DensityOff = swapDensity(res.Points, res.Baseline, func(p SwapPoint) float64 { return p.SLOHitOff })
	if res.DensityOff > 0 {
		res.DensityGain = res.DensityOn / res.DensityOff
	}
	return res
}

// SwapTable renders the density study.
func SwapTable(r SwapResult) Table {
	verdict := "IDENTICAL (bit-for-bit)"
	if !r.DisabledIdentical {
		verdict = "DIVERGED — disabled tier is not behaviour-invariant"
	}
	t := Table{
		Title: fmt.Sprintf("Swap tier density: models per GPU, %d GPUs, %.0f GB host pool",
			r.GPUs, r.HostMemGB),
		Header: []string{"models", "per-GPU", "SLO on", "SLO off", "p50 on", "p50 off", "swap in/out", "pool occ"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			itoa(p.Models), f1(p.PerGPU), pct(p.SLOHitOn), pct(p.SLOHitOff),
			f2(p.LatencyOn), f2(p.LatencyOff),
			itoa(p.SwapIns) + "/" + itoa(p.SwapOuts), pct(p.PoolOccOn),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"density on", f1(r.DensityOn) + " models/GPU", "", "", "", "", "", ""},
		[]string{"density off", f1(r.DensityOff) + " models/GPU", "", "", "", "", "", ""},
		[]string{"density gain", f2(r.DensityGain) + "x", "", "", "", "", "", ""},
		[]string{"disabled-tier outcome", verdict, "", "", "", "", "", ""},
	)
	return t
}
