package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
)

// Table2SliceProfiles renders the MIG slice profile table.
func Table2SliceProfiles() Table {
	t := Table{
		Title:  "Table 2: MIG profiles on an A100 GPU",
		Header: []string{"slice", "compute", "memory", "max count"},
	}
	for i := len(mig.SliceTypes) - 1; i >= 0; i-- {
		st := mig.SliceTypes[i]
		t.Rows = append(t.Rows, []string{
			st.String(),
			fmt.Sprintf("%dGPC", st.GPCs()),
			fmt.Sprintf("%dgb", st.MemGB()),
			strconv.Itoa(st.MaxCount()),
		})
	}
	return t
}

// Table5MinimumSlices renders the application-variant minimum-slice
// matrix (baseline vs FluidFaaS).
func Table5MinimumSlices() Table {
	t := Table{
		Title:  "Table 5: application variants and minimum MIG slices",
		Header: []string{"application", "variant", "baseline", "fluidfaas"},
	}
	render := func(st mig.SliceType, ok bool) string {
		if !ok {
			return "NULL"
		}
		return ">=" + st.String()
	}
	for _, a := range dnn.Apps() {
		for _, v := range dnn.Variants {
			bs, bok := a.MinSliceBaseline(v)
			fs, fok := a.MinSliceFluid(v)
			t.Rows = append(t.Rows, []string{
				a.Name, v.String(), render(bs, bok), render(fs, fok),
			})
		}
	}
	return t
}

// WriteTimelineCSV writes a sampled series as "time_s,value" rows for
// plotting.
func WriteTimelineCSV(w io.Writer, tl metrics.Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "value"}); err != nil {
		return err
	}
	for i := range tl.Times {
		if err := cw.Write([]string{
			strconv.FormatFloat(tl.Times[i], 'f', 3, 64),
			strconv.FormatFloat(tl.Values[i], 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV writes a latency CDF as "latency_s,fraction" rows.
func WriteCDFCSV(w io.Writer, cdf []metrics.CDFPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"latency_s", "fraction"}); err != nil {
		return err
	}
	for _, p := range cdf {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.Latency, 'f', 4, 64),
			strconv.FormatFloat(p.Fraction, 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMotivationCSV writes Fig. 3a's two series side by side.
func WriteMotivationCSV(w io.Writer, r MotivationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "occupied_frac", "required_frac"}); err != nil {
		return err
	}
	for i := range r.Times {
		if err := cw.Write([]string{
			strconv.FormatFloat(r.Times[i], 'f', 1, 64),
			strconv.FormatFloat(r.Occupied[i], 'f', 4, 64),
			strconv.FormatFloat(r.Required[i], 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
