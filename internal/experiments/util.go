package experiments

import (
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/scheduler"
)

// The utilization-ledger study: run the medium workload under FluidFaaS
// and under the ESG baseline with the GPU utilization ledger attached,
// and report where every slice-second went. The contrast is the paper's
// §4 waste argument made exact: ESG's coarse monolithic allocation
// leaves the 1g slices stranded (no deployable unit fits them), while
// FluidFaaS's pipelined stages can occupy them.

// UtilComparison pairs the two systems' resolved ledger reports.
type UtilComparison struct {
	FluidFaaS *util.Report `json:"fluidfaas"`
	ESG       *util.Report `json:"esg"`
}

// RunUtilComparison runs the medium workload under FluidFaaS and ESG
// with fresh ledgers and returns both reports. Each ledger's
// conservation invariant is verified before the report is returned.
func RunUtilComparison(cfg Config) UtilComparison {
	run := func(pol scheduler.Policy) *util.Report {
		c := cfg
		c.Util = util.NewLedger()
		RunSystem(pol, Medium, c)
		if err := c.Util.Check(); err != nil {
			panic(err)
		}
		return c.Util.Report()
	}
	return UtilComparison{
		FluidFaaS: run(&scheduler.FluidFaaS{}),
		ESG:       run(&scheduler.ESG{}),
	}
}
