package experiments

import (
	"encoding/json"
	"io"

	"fluidfaas/internal/obs/analytics"
	"fluidfaas/internal/sim"
)

// Machine-readable bench output: the end-to-end matrix plus the span-
// analytics report as one JSON document, for dashboards and regression
// tooling that should not scrape the aligned-column tables. The
// document is deterministic — rows are emitted in fixed workload ×
// system order and every analytics collection is pre-sorted — so
// same-seed runs produce byte-identical files.

// BenchDoc is the top-level BENCH_<exp>.json document.
type BenchDoc struct {
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Duration   float64 `json:"duration"`
	// Runs holds one row per (workload, system), workload-major in
	// paper order.
	Runs []BenchRun `json:"runs"`
	// Analytics is the span-analytics report of the instrumented
	// FluidFaaS/medium capture (blame, stragglers, drift, burn).
	Analytics *analytics.Report `json:"analytics,omitempty"`
	// Planner is the planner fast-path study (cache-on/off identity,
	// hit rate, wall-clock), present when -exp planner ran.
	Planner *PlannerResult `json:"planner,omitempty"`
	// Swap is the swap-tier density study (models-per-GPU sweep,
	// off-switch identity), present when -exp swap ran.
	Swap *SwapResult `json:"swap,omitempty"`
	// Gray is the gray-failure resilience study (rate × severity sweep
	// across mitigation levels, off-switch identity), present when
	// -exp gray ran.
	Gray *GrayResult `json:"gray,omitempty"`
	// Util is the GPU utilization ledger comparison (FluidFaaS vs ESG
	// waste attribution on the medium workload): where every GPU-second
	// went, including the stranded slice-seconds of coarse allocation.
	Util *UtilComparison `json:"util,omitempty"`
	// Engine aggregates the sim engines' self-telemetry across every run
	// in the document: events executed, wall-clock processing rate, the
	// deepest event heap seen, and cancellations. The wall-clock fields
	// are the document's only nondeterministic values.
	Engine *sim.Stats `json:"engine,omitempty"`
}

// BenchRun flattens one SystemResult to its reportable scalars.
type BenchRun struct {
	Workload   string  `json:"workload"`
	System     string  `json:"system"`
	SLOHit     float64 `json:"sloHit"`
	Goodput    float64 `json:"goodput"`
	Throughput float64 `json:"throughput"`
	Completed  int     `json:"completed"`
	Total      int     `json:"total"`
	Rejected   int     `json:"rejected"`
	Timeouts   int     `json:"timeouts"`
	LatencyP50 float64 `json:"latencyP50"`
	LatencyP95 float64 `json:"latencyP95"`
	LatencyP99 float64 `json:"latencyP99"`
	MeanUtil   float64 `json:"meanUtil"`
	PeakUtil   float64 `json:"peakUtil"`
	Fairness   float64 `json:"fairness"`
	Launched   int     `json:"launched"`
	Evictions  int     `json:"evictions"`
	Migrations int     `json:"migrations"`
	// Fragmentation is the run-mean fragmentation index (stranded GPC
	// fraction of the free pool).
	Fragmentation float64 `json:"fragmentation"`
}

// benchRun flattens one result.
func benchRun(r SystemResult) BenchRun {
	return BenchRun{
		Workload: r.Workload.String(), System: r.System,
		SLOHit: r.SLOHit, Goodput: r.Goodput, Throughput: r.Throughput,
		Completed: r.Completed, Total: r.Total,
		Rejected: r.Rejected, Timeouts: r.TimeoutDrops,
		LatencyP50: r.LatencyP50, LatencyP95: r.LatencyP95, LatencyP99: r.LatencyP99,
		MeanUtil: r.UtilGPCs.Mean(), PeakUtil: r.UtilGPCs.Max(),
		Fairness: r.Fairness,
		Launched: r.Launched, Evictions: r.Evictions, Migrations: r.Migrations,
		Fragmentation: r.Fragmentation.Mean(),
	}
}

// WriteBenchJSON writes the bench document for an end-to-end matrix and
// optional analytics / planner-study reports.
func WriteBenchJSON(w io.Writer, exp string, e2e *EndToEnd, rp *analytics.Report, pl *PlannerResult, sw *SwapResult, gr *GrayResult, ut *UtilComparison) error {
	doc := BenchDoc{
		Experiment: exp,
		Seed:       e2e.Cfg.Seed,
		Duration:   e2e.Cfg.Duration,
		Analytics:  rp,
		Planner:    pl,
		Swap:       sw,
		Gray:       gr,
		Util:       ut,
	}
	var agg sim.Stats
	for _, wl := range Workloads {
		for _, sys := range systemsOrder() {
			r := e2e.Results[wl][sys]
			doc.Runs = append(doc.Runs, benchRun(r))
			agg.Executed += r.Engine.Executed
			agg.Scheduled += r.Engine.Scheduled
			agg.Cancellations += r.Engine.Cancellations
			if r.Engine.PeakHeapDepth > agg.PeakHeapDepth {
				agg.PeakHeapDepth = r.Engine.PeakHeapDepth
			}
			if r.Engine.Shards > agg.Shards {
				agg.Shards = r.Engine.Shards
			}
			agg.WallSeconds += r.Engine.WallSeconds
		}
	}
	if agg.WallSeconds > 0 {
		agg.EventsPerSec = float64(agg.Executed) / agg.WallSeconds
	}
	if agg.Executed > 0 {
		doc.Engine = &agg
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
