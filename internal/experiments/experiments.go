// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6–§7), producing the same rows and series the
// paper reports. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"strings"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/sim"
	"fluidfaas/internal/trace"
)

// Workload is one of the paper's three workload levels (§6): the level
// selects the application variant (light=small, medium=medium,
// heavy=large) and the invocation intensity.
type Workload int

// The three workload levels.
const (
	Light Workload = iota
	Medium
	Heavy
)

// Workloads lists all levels.
var Workloads = []Workload{Light, Medium, Heavy}

// String returns the level name.
func (w Workload) String() string {
	switch w {
	case Light:
		return "light"
	case Medium:
		return "medium"
	case Heavy:
		return "heavy"
	}
	return fmt.Sprintf("Workload(%d)", int(w))
}

// Variant returns the application variant the level uses.
func (w Workload) Variant() dnn.Variant {
	switch w {
	case Light:
		return dnn.Small
	case Medium:
		return dnn.Medium
	default:
		return dnn.Large
	}
}

// appRPS returns the per-application mean request rates of the level,
// calibrated against the 2-node/16-GPU default testbed so that the
// paper's regimes reproduce: light leaves headroom everywhere, medium
// exceeds what the baselines can serve without the 1g slices (with the
// expanded app - whose baseline needs a 4g slice - invoked hardest, as
// in the Azure trace's skewed per-function rates), and heavy exceeds
// the baselines' 4g-only capacity.
func (w Workload) appRPS() []float64 {
	switch w {
	case Light:
		return []float64{5, 5, 5, 5}
	case Medium:
		return []float64{8, 8, 8, 10}
	default:
		return []float64{11, 11, 11}
	}
}

// Config parameterises an experiment run.
type Config struct {
	// Seed drives trace generation and platform randomness.
	Seed int64
	// Duration is the trace length in seconds (default 300).
	Duration float64
	// Drain is extra time for in-flight requests (default 40).
	Drain float64
	// SLOScale is the SLO latency over the reference latency
	// (default 1.5, §6).
	SLOScale float64
	// GPUConfigs is the per-GPU partition layout of each node
	// (default: the paper's 4g+2g+1g on all 8 GPUs).
	GPUConfigs []mig.Config
	// Nodes is the node count (default 2).
	Nodes int
	// MaxBatch enables dynamic batching at instances (1 = off, the
	// paper's configuration).
	MaxBatch int
	// RateScale multiplies every stream's request rate (default 1);
	// extension studies use it to push systems past saturation.
	RateScale float64
	// Routing overrides the load balancer's instance ordering (for the
	// routing ablation; default is the paper's latency-ascending).
	Routing platform.RoutingOrder
	// Faults injects a deterministic hardware-fault schedule (nil = the
	// paper's fault-free runs; used by the resilience extension study).
	Faults *faults.Spec
	// Overload enables the overload-control subsystem (zero = off, the
	// paper's configuration; used by the overload extension study).
	Overload overload.Config
	// Swap enables the model-swapping memory tier (zero = off, the
	// paper's configuration; used by the density extension study).
	Swap platform.SwapOptions
	// Gray enables the gray-failure resilience subsystem — slice health
	// scoring, quarantine and hedged retries (zero = off, the paper's
	// configuration; used by the gray-failure extension study).
	Gray platform.GrayOptions
	// CPUMemGB is the host memory per node (default 1440, paper Table 3;
	// the density study constrains it to put the pool under pressure).
	CPUMemGB float64
	// Priorities assigns per-app priority classes (index = app order;
	// missing entries default to 0). Brownout shedding spares the
	// highest class.
	Priorities []int
	// Obs attaches an observability recorder to the run (nil = off, the
	// zero-cost default). The recorder fills with request traces, slice
	// spans and metrics for the Chrome-trace / Prometheus exporters.
	Obs *obs.Recorder
	// Decisions attaches a decision-provenance recorder (nil = off, the
	// zero-cost default): every scheduling choice point logs the inputs
	// it saw and the outcome it chose, queryable per request after the
	// run ("why did request N end up there?").
	Decisions *decisions.Recorder
	// Util attaches a GPU utilization ledger (nil = off, the zero-cost
	// default): a pure observer that attributes every slice-second to a
	// busy/idle/waste state, with fragmentation analytics and roll-ups
	// (the /util and /heatmap endpoints).
	Util *util.Ledger
	// OnEvent subscribes to the platform's lifecycle event bus before
	// the run starts, seeing every event losslessly (the retained ring
	// in SystemResult.Events is bounded). Subscribers must only observe.
	OnEvent func(platform.Event)
	// EventLogCap bounds the retained lifecycle-event ring (0 = the
	// platform default, 4096).
	EventLogCap int
	// OnPlatform, when set, observes the finished platform after the run
	// (before RunSystem returns), e.g. to take an introspection
	// Snapshot. Observers must not mutate the platform.
	OnPlatform func(*platform.Platform)
	// DisablePlanCache turns off the memoized placement planner. The
	// cache is behaviour-invariant, so this only exists for the planner
	// benchmark and the CI cache-on/off determinism diff.
	DisablePlanCache bool
	// Shards selects the simulation kernel (platform.Options.Shards):
	// <= 1 is the sequential engine, >= 2 the sharded engine with one
	// coordinator shard plus node shards. Behaviour-invariant — same
	// seed, same results at any shard count (enforced by test).
	Shards int
	// TransferScale multiplies every stage-boundary hop cost (0 = 1,
	// the paper's cost model); the transfer-sensitivity ablation sweeps
	// it. Applied per-run to the freshly built DAGs, never globally.
	TransferScale float64
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 300
	}
	if c.Drain <= 0 {
		c.Drain = 40
	}
	if c.SLOScale <= 0 {
		c.SLOScale = 1.5
	}
	if c.GPUConfigs == nil {
		c.GPUConfigs = mig.UniformNode(mig.DefaultConfig, 8)
	}
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.RateScale <= 0 {
		c.RateScale = 1
	}
	if c.CPUMemGB <= 0 {
		c.CPUMemGB = 1440
	}
	return c
}

// DefaultConfig returns the paper's evaluation setup.
func DefaultConfig() Config { return Config{Seed: 42}.withDefaults() }

// Systems returns the three compared systems in paper order.
func Systems() []scheduler.Policy {
	return []scheduler.Policy{&scheduler.INFlessMIG{}, &scheduler.ESG{}, &scheduler.FluidFaaS{}}
}

// appsFor lists the applications active at a workload level (App 3's
// large variant is excluded from the study, Table 5).
func appsFor(w Workload) []dnn.App {
	var out []dnn.App
	for _, a := range dnn.Apps() {
		if a.Excluded(w.Variant()) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// SpecsFor builds the platform function specs of a workload level.
func SpecsFor(w Workload, sloScale float64) []platform.FunctionSpec {
	var out []platform.FunctionSpec
	for _, a := range appsFor(w) {
		v := w.Variant()
		d := a.BuildDAG(v)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			panic(err)
		}
		slo, ok := a.SLOLatency(v, sloScale)
		if !ok {
			panic(fmt.Sprintf("experiments: no SLO for %s/%s", a.Name, v))
		}
		out = append(out, platform.FunctionSpec{
			ID: len(out), Name: a.Name, DAG: d, Parts: parts, SLO: slo,
		})
	}
	return out
}

// TraceFor generates the workload trace: Azure-like modulation with
// bursts (§6 uses the Azure Functions production traces for invocation
// frequencies and intervals).
func TraceFor(w Workload, cfg Config) *trace.Trace {
	cfg = cfg.withDefaults()
	apps := appsFor(w)
	rates := w.appRPS()
	var streams []trace.StreamSpec
	for i := range apps {
		streams = append(streams, trace.StreamSpec{
			Func:          i,
			MeanRPS:       rates[i] * cfg.RateScale,
			RateSigma:     0.30,
			BurstFactor:   1.6,
			BurstFraction: 0.12,
			BurstLen:      25,
		})
	}
	return trace.Generate(trace.Spec{
		Duration: cfg.Duration,
		Seed:     cfg.Seed + int64(w)*1000,
		Streams:  streams,
	})
}

// SystemResult summarises one (system, workload) run.
type SystemResult struct {
	System   string
	Workload Workload

	SLOHit      float64
	SLOHitByApp map[int]float64
	Throughput  float64
	Completed   int
	Total       int

	LatencyP50 float64
	LatencyP95 float64
	LatencyP99 float64
	CDFByApp   map[int][]metrics.CDFPoint

	Breakdown metrics.Breakdown
	GPUTime   float64
	MIGTime   float64

	UtilGPCs      metrics.Timeline
	UtilGPUs      metrics.Timeline
	OccupiedGPCs  metrics.Timeline
	Fragmentation metrics.Timeline

	Evictions  int
	Migrations int
	Launched   int

	// Overload-study outcome: SLO-meeting completions per second, the
	// fast-fail/timeout/shed split of the lost requests, Jain fairness
	// over per-app SLO hit rates, and brownout activity.
	Goodput      float64
	Fairness     float64
	Rejected     int
	TimeoutDrops int
	Shed         int
	Contractions int

	// Fault-run outcome: the fraction of requests that did not fail on
	// faulted hardware, and the retry/teardown activity behind it.
	Availability float64
	FailedCount  int
	RetriedCount int
	TotalRetries int
	Faults       int
	Recoveries   int
	Retries      int

	// Events are the platform's retained lifecycle events; EventsTotal
	// counts every event the run published and EventsDropped how many
	// the bounded ring overwrote (Config.OnEvent sees them all).
	Events        []platform.Event
	EventsTotal   int
	EventsDropped int

	// Engine is the sim engine's self-telemetry: events processed,
	// wall-clock processing rate, peak heap depth, cancellations. The
	// wall-clock fields are the only nondeterministic values in the
	// result; they surface in BENCH json but never in decision records
	// or determinism-diffed exports.
	Engine sim.Stats
}

// RunSystem executes one (policy, workload) experiment.
func RunSystem(pol scheduler.Policy, w Workload, cfg Config) SystemResult {
	cfg = cfg.withDefaults()
	specs := SpecsFor(w, cfg.SLOScale)
	for i := range specs {
		if i < len(cfg.Priorities) {
			specs[i].Priority = cfg.Priorities[i]
		}
		if cfg.TransferScale > 0 {
			specs[i].DAG.TransferScale = cfg.TransferScale
		}
	}
	cl := cluster.New(cluster.Spec{
		Nodes:      cfg.Nodes,
		GPUConfigs: cfg.GPUConfigs,
		CPUMemGB:   cfg.CPUMemGB,
	})
	p := platform.New(cl, specs, platform.Options{
		Policy: pol, Seed: cfg.Seed, MaxBatch: cfg.MaxBatch, Routing: cfg.Routing,
		Faults: cfg.Faults, Overload: cfg.Overload, Swap: cfg.Swap, Gray: cfg.Gray,
		Obs: cfg.Obs, Decisions: cfg.Decisions, Util: cfg.Util,
		EventLogCap: cfg.EventLogCap,
		DisablePlanCache: cfg.DisablePlanCache,
		Shards:           cfg.Shards,
	})
	if cfg.OnEvent != nil {
		p.EventBus().Subscribe(cfg.OnEvent)
	}
	tr := TraceFor(w, cfg)
	p.Run(tr, cfg.Drain)

	col := p.Collector()
	lats := col.Latencies()
	end := cfg.Duration + cfg.Drain
	res := SystemResult{
		System:        pol.Name(),
		Workload:      w,
		SLOHit:        col.SLOHitRate(),
		SLOHitByApp:   col.SLOHitRateByFunc(),
		Throughput:    col.Throughput(cfg.Duration),
		Completed:     col.Completed(),
		Total:         col.Len(),
		LatencyP50:    metrics.Percentile(lats, 50),
		LatencyP95:    metrics.Percentile(lats, 95),
		LatencyP99:    metrics.Percentile(lats, 99),
		CDFByApp:      map[int][]metrics.CDFPoint{},
		Breakdown:     col.MeanBreakdown(),
		GPUTime:       cl.GPUTime(end),
		MIGTime:       cl.MIGTime(end),
		UtilGPCs:      p.UtilGPCs,
		UtilGPUs:      p.UtilGPUs,
		OccupiedGPCs:  p.OccupiedGPCs,
		Fragmentation: p.Fragmentation,
		Evictions:     p.Evictions(),
		Migrations:    p.Migrations(),
		Launched:      p.Launched(),
		Goodput:       col.Goodput(cfg.Duration),
		Rejected:      col.RejectedCount(),
		TimeoutDrops:  col.TimeoutDropCount(),
		Shed:          p.ShedCount(),
		Contractions:  p.Contractions(),
		Availability:  col.Availability(),
		FailedCount:   col.FailedCount(),
		RetriedCount:  col.RetriedCount(),
		TotalRetries:  col.TotalRetries(),
		Faults:        p.FaultsInjected(),
		Recoveries:    p.Recoveries(),
		Retries:       p.Retries(),
		Events:        p.Events(),
		EventsTotal:   p.TotalEvents(),
		EventsDropped: p.DroppedEvents(),
		Engine:        p.Engine().Stats(),
	}
	for f, ls := range col.LatenciesByFunc() {
		res.CDFByApp[f] = metrics.CDF(ls, 20)
	}
	// Jain fairness over per-app SLO hit rates, in dense app order for
	// determinism.
	hits := make([]float64, len(specs))
	for f, h := range res.SLOHitByApp {
		if f >= 0 && f < len(hits) {
			hits[f] = h
		}
	}
	res.Fairness = metrics.JainIndex(hits)
	if cfg.OnPlatform != nil {
		cfg.OnPlatform(p)
	}
	return res
}

// Table is a printable experiment result in the paper's row format.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func itoa(n int) string    { return fmt.Sprintf("%d", n) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
