package experiments

import (
	"fmt"

	"fluidfaas/internal/mps"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/sim"
)

// IsolationResult is the extension study behind Table 1's columns:
// strong isolation (MIG + FluidFaaS) versus weak isolation (MPS
// sharing) on the same workload. MPS never fragments — any process fits
// any GPU with memory headroom — but co-located tenants interfere and
// share a security domain, the two hazards that pushed serverless
// platforms toward MIG (§1).
type IsolationResult struct {
	// FluidFaaS (MIG) side.
	MIGThroughput float64
	MIGSLOHit     float64
	// MPS side.
	MPSThroughput   float64
	MPSSLOHit       float64
	MPSMeanSlowdown float64
	// ExposureSeconds is pairwise cross-tenant co-residency under MPS;
	// zero by construction under MIG.
	MPSExposureSeconds float64
}

// RunIsolation compares MIG-based FluidFaaS with MPS sharing on the
// medium workload over the same GPU count.
func RunIsolation(cfg Config) IsolationResult {
	cfg = cfg.withDefaults()
	w := Medium
	mig := RunSystem(&scheduler.FluidFaaS{}, w, cfg)

	// MPS pool with the same number of physical GPUs.
	eng := sim.NewEngine()
	var profiles []mps.FunctionProfile
	for _, a := range appsFor(w) {
		v := w.Variant()
		minSlice, ok := a.MinSliceBaseline(v)
		if !ok {
			continue
		}
		plan, err := pipeline.Monolithic(a.BuildDAG(v), minSlice)
		if err != nil {
			panic(err)
		}
		slo, _ := a.SLOLatency(v, cfg.SLOScale)
		profiles = append(profiles, mps.FunctionProfile{
			Name:     a.Name,
			Exec:     plan.Latency,
			WantGPCs: float64(minSlice.GPCs()),
			MemGB:    a.TotalMemGB(v),
			SLO:      slo,
		})
	}
	nGPUs := cfg.Nodes * len(cfg.GPUConfigs)
	cl := mps.NewCluster(eng, nGPUs, profiles)
	tr := TraceFor(w, cfg)
	for _, r := range tr.Requests {
		req := r
		eng.At(req.Arrival, func() { cl.Submit(req.Func, req.Arrival) })
	}
	eng.RunUntil(cfg.Duration + cfg.Drain)
	mpsRes := cl.Finish(cfg.Duration)

	return IsolationResult{
		MIGThroughput:      mig.Throughput,
		MIGSLOHit:          mig.SLOHit,
		MPSThroughput:      mpsRes.Throughput,
		MPSSLOHit:          mpsRes.SLOHit,
		MPSMeanSlowdown:    mpsRes.MeanSlowdown,
		MPSExposureSeconds: mpsRes.ExposureSeconds,
	}
}

// IsolationTable renders the strong-vs-weak isolation study.
func IsolationTable(r IsolationResult) Table {
	return Table{
		Title:  "Extension: strong (MIG+FluidFaaS) vs weak (MPS) isolation, medium workload",
		Header: []string{"quantity", "MIG+FluidFaaS", "MPS"},
		Rows: [][]string{
			{"throughput (req/s)", f1(r.MIGThroughput), f1(r.MPSThroughput)},
			{"SLO hit rate", pct(r.MIGSLOHit), pct(r.MPSSLOHit)},
			{"mean interference slowdown", "1.00 (hardware isolated)", f2(r.MPSMeanSlowdown)},
			{"cross-tenant exposure (pair-s)", "0", fmt.Sprintf("%.0f", r.MPSExposureSeconds)},
		},
	}
}
