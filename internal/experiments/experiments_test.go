package experiments

import (
	"strings"
	"testing"

	"fluidfaas/internal/scheduler"
)

// shortCfg keeps experiment tests fast while preserving the regimes.
func shortCfg() Config {
	c := DefaultConfig()
	c.Duration = 150
	c.Drain = 30
	return c
}

func TestWorkloadDefinitions(t *testing.T) {
	if Light.Variant().String() != "small" ||
		Medium.Variant().String() != "medium" ||
		Heavy.Variant().String() != "large" {
		t.Error("workload->variant mapping broken (§6)")
	}
	if len(appsFor(Light)) != 4 || len(appsFor(Medium)) != 4 {
		t.Error("light/medium should run all four applications")
	}
	if len(appsFor(Heavy)) != 3 {
		t.Error("heavy should exclude app 3 (Table 5 NULL)")
	}
	for _, w := range Workloads {
		if len(w.appRPS()) != len(appsFor(w)) {
			t.Errorf("%v: rate vector arity mismatch", w)
		}
	}
}

func TestSpecsForAssignsSLOs(t *testing.T) {
	specs := SpecsFor(Medium, 1.5)
	if len(specs) != 4 {
		t.Fatalf("specs = %d, want 4", len(specs))
	}
	for i, s := range specs {
		if s.ID != i || s.SLO <= 0 || s.DAG == nil || len(s.Parts) == 0 {
			t.Errorf("spec %d incomplete: %+v", i, s)
		}
	}
}

func TestTraceForDeterministicPerWorkload(t *testing.T) {
	cfg := shortCfg()
	a := TraceFor(Medium, cfg)
	b := TraceFor(Medium, cfg)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("trace generation not deterministic")
	}
	c := TraceFor(Heavy, cfg)
	if len(c.Requests) == len(a.Requests) {
		t.Log("note: different workloads produced equal request counts (unlikely)")
	}
}

// The central end-to-end shape of the paper: FluidFaaS matches the
// baselines in light workloads and clearly beats ESG in medium and
// heavy, in both SLO hit rate and throughput.
func TestEndToEndShape(t *testing.T) {
	// ESG's queues need time to build up; the short config understates
	// the medium-workload gap, so this test runs the full duration.
	e := RunEndToEnd(DefaultConfig())
	light := e.Results[Light]
	if d := light["fluidfaas"].SLOHit - light["esg"].SLOHit; d < -0.10 {
		t.Errorf("light: fluidfaas %.2f far below esg %.2f", light["fluidfaas"].SLOHit, light["esg"].SLOHit)
	}
	med := e.Results[Medium]
	if med["fluidfaas"].SLOHit < med["esg"].SLOHit*1.3 {
		t.Errorf("medium: fluidfaas SLO %.2f not clearly above esg %.2f (paper: up to +90%%)",
			med["fluidfaas"].SLOHit, med["esg"].SLOHit)
	}
	heavy := e.Results[Heavy]
	if heavy["fluidfaas"].Throughput < heavy["esg"].Throughput*1.25 {
		t.Errorf("heavy: fluidfaas throughput %.1f not clearly above esg %.1f (paper: +75%%)",
			heavy["fluidfaas"].Throughput, heavy["esg"].Throughput)
	}
	if heavy["fluidfaas"].SLOHit <= heavy["esg"].SLOHit {
		t.Errorf("heavy: fluidfaas SLO %.2f should beat esg %.2f",
			heavy["fluidfaas"].SLOHit, heavy["esg"].SLOHit)
	}
	// ESG and INFless share the non-pipeline execution model: similar
	// medium/heavy results (§7.1).
	if d := heavy["esg"].Throughput - heavy["infless"].Throughput; d < -3 || d > 3 {
		t.Errorf("heavy: esg %.1f vs infless %.1f should be similar",
			heavy["esg"].Throughput, heavy["infless"].Throughput)
	}

	// Table renderers produce complete tables.
	for _, tab := range []Table{
		e.Fig9SLOHitRates(), e.Fig10Throughput(),
		e.FigCDF(Light), e.FigCDF(Medium), e.FigCDF(Heavy),
		e.Fig14Breakdown(), e.Table6ResourceCost(), e.Fig16Utilization(),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q has no rows", tab.Title)
		}
		s := tab.String()
		if !strings.Contains(s, tab.Title) {
			t.Errorf("table render missing title")
		}
	}

	// Fig. 14 shape: FluidFaaS pays transfer overhead but saves far
	// more queueing under medium/heavy (§7.3).
	for _, w := range []Workload{Medium, Heavy} {
		esgB := e.Results[w]["esg"].Breakdown
		ffB := e.Results[w]["fluidfaas"].Breakdown
		if ffB.Transfer <= esgB.Transfer {
			t.Errorf("%v: fluidfaas transfer %.3f should exceed esg %.3f", w, ffB.Transfer, esgB.Transfer)
		}
		if ffB.Queue >= esgB.Queue {
			t.Errorf("%v: fluidfaas queue %.2f should be below esg %.2f", w, ffB.Queue, esgB.Queue)
		}
	}

	// Fig. 16 shape: heavy-workload GPU utilisation is far higher under
	// FluidFaaS (paper: +75% during bursts).
	ffUtil := e.Results[Heavy]["fluidfaas"].UtilGPCs
	esgUtil := e.Results[Heavy]["esg"].UtilGPCs
	if ffUtil.Mean() < esgUtil.Mean()*1.2 {
		t.Errorf("heavy utilisation: fluidfaas %.2f vs esg %.2f", ffUtil.Mean(), esgUtil.Mean())
	}

	// Timeline accessor works.
	ts, vs := e.Fig16Timeline(Heavy, "fluidfaas")
	if len(ts) == 0 || len(ts) != len(vs) {
		t.Error("Fig16Timeline empty or ragged")
	}
}

func TestMotivationShape(t *testing.T) {
	r := RunMotivation(shortCfg())
	// ESG demands substantially more than required (paper: 167% at the
	// 83rd second; exact magnitude depends on the trace).
	if r.PeakOverdemand < 0.5 {
		t.Errorf("peak over-demand = %.2f, want clearly positive", r.PeakOverdemand)
	}
	// Fig. 3b: at the peak the 1g slices sit idle under ESG.
	c1g := r.SliceUsageAtPeak["1g.10gb"]
	if c1g[0] != 0 {
		t.Errorf("1g slices active at peak: %d (ESG cannot use them at medium)", c1g[0])
	}
	c4g := r.SliceUsageAtPeak["4g.40gb"]
	if c4g[0] == 0 {
		t.Error("no 4g activity at peak")
	}
	if len(r.Times) == 0 || len(r.Times) != len(r.Occupied) || len(r.Times) != len(r.Required) {
		t.Error("motivation series ragged")
	}
	if tab := Fig3Table(r); len(tab.Rows) < 3 {
		t.Error("Fig3Table incomplete")
	}
}

func TestFragmentationStory(t *testing.T) {
	cases := RunFragmentation()
	if len(cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(cases))
	}
	if !strings.Contains(cases[0].Monolithic, "no free slice fits") {
		t.Errorf("monolithic placement should fail on fragments: %q", cases[0].Monolithic)
	}
	if cases[1].Pipeline == "infeasible" || cases[1].Pipeline == "" {
		t.Errorf("FluidFaaS pipeline over fragments should be feasible: %q", cases[1].Pipeline)
	}
	if !strings.Contains(cases[1].Pipeline, "->") {
		t.Errorf("expected a multi-stage pipeline, got %q", cases[1].Pipeline)
	}
	if tab := Fig4Table(cases); len(tab.Rows) != 2 {
		t.Error("Fig4Table incomplete")
	}
}

func TestKeepAliveShape(t *testing.T) {
	cfg := shortCfg()
	cfg.Duration = 600
	r := RunKeepAlive(cfg)
	if len(r.OccupiedPct) != 8 {
		t.Fatalf("per-GPU rows = %d, want 8", len(r.OccupiedPct))
	}
	// The exclusive keep-alive gap: occupied far exceeds active (paper
	// Fig. 5: avg active 16.1%, <35% for 90% of the time).
	if r.AvgActive > 0.35 {
		t.Errorf("avg active share = %.2f, want well below occupied", r.AvgActive)
	}
	if r.FracBelow35 < 0.60 {
		t.Errorf("time below 35%% activity = %.2f, want most of the run", r.FracBelow35)
	}
	occAny := false
	for i := range r.OccupiedPct {
		if r.OccupiedPct[i] > 0 {
			occAny = true
		}
		if r.ActivePct[i] > r.OccupiedPct[i]+1e-9 {
			t.Errorf("gpu%d active %.2f exceeds occupied %.2f", i, r.ActivePct[i], r.OccupiedPct[i])
		}
	}
	if !occAny {
		t.Error("no GPU was ever occupied")
	}
	if tab := Fig5Table(r); len(tab.Rows) < 10 {
		t.Error("Fig5Table incomplete")
	}
}

func TestPartitionsShape(t *testing.T) {
	cfg := shortCfg()
	rs := RunPartitions(cfg)
	if len(rs) != 3 {
		t.Fatalf("partition rows = %d, want 3", len(rs))
	}
	for _, r := range rs {
		if r.Gain < 1.15 {
			t.Errorf("%s: fluidfaas gain %.2fx, want clearly above 1 (paper: 1.70-1.78x)", r.Scheme, r.Gain)
		}
	}
	// P2 has no 4g slice, so ESG is limited to 3 GPCs per GPU there and
	// FluidFaaS's advantage peaks (paper: P2 gain is the largest).
	if rs[2].Scheme != "P2" || rs[2].Gain <= rs[0].Gain {
		t.Errorf("P2 gain %.2fx should exceed Hybrid gain %.2fx", rs[2].Gain, rs[0].Gain)
	}
	if tab := Fig15Table(rs); len(tab.Rows) != 3 {
		t.Error("Fig15Table incomplete")
	}
}

func TestRunSystemAblations(t *testing.T) {
	cfg := shortCfg()
	full := RunSystem(&scheduler.FluidFaaS{}, Heavy, cfg)
	noPipe := RunSystem(&scheduler.FluidFaaS{DisableTimeSharing: true, DisableMigration: true}, Heavy, cfg)
	// Even without time sharing and migration, pipelining alone must
	// beat ESG's throughput in heavy workloads.
	esg := RunSystem(&scheduler.ESG{}, Heavy, cfg)
	if noPipe.Throughput < esg.Throughput {
		t.Errorf("pipeline-only fluidfaas %.1f below esg %.1f", noPipe.Throughput, esg.Throughput)
	}
	if full.Migrations < 0 || noPipe.Migrations != 0 {
		t.Errorf("migration ablation leaked: %d", noPipe.Migrations)
	}
}
