package experiments

import (
	"fmt"
	"reflect"

	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
)

// This file is the gray-failure resilience study (ROADMAP: robustness):
// slices that silently slow down instead of failing stop. Fail-stop
// faults the platform already survives — the watchdog sees the death
// and retries. A degraded slice is worse: it keeps accepting work and
// keeps completing it late, so every request routed there misses its
// SLO while the placement logic still counts the slice as healthy
// capacity. The study sweeps degradation rate × severity and compares
// three mitigation levels on the same arrival sequence:
//
//	none        — degradations strike, the platform routes blindly
//	quarantine  — the health scorer detects and quarantines slow slices
//	quar+hedge  — additionally, deadline-at-risk requests on suspect
//	              slices get a hedged duplicate on clean hardware
//
// It also re-checks the off-switch: a run with Gray.Enabled=false must
// be bit-identical to a run that never mentioned the subsystem.

// grayRates and graySeverities are the sweep grid. Rates are
// cluster-wide SliceDegraded events per second; with ~48 slices on the
// default testbed and 60 s episodes, 0.1/s keeps ~12% of the slices
// degraded at any moment and 0.25/s ~30% — the regime where routing
// blindly onto sick hardware visibly costs attainment. Severities are
// fixed per point by pinning the min/max draw together, so each point
// isolates one slowdown factor.
var (
	grayRates      = []float64{0.1, 0.25}
	graySeverities = []float64{2.5, 5}
)

// grayMTTR keeps episodes long relative to the health scorer's
// detection time (a few observations) but short enough that several
// strike-recover cycles fit a run.
const grayMTTR = 60.0

// GrayRun is one (rate, severity, mitigation) cell.
type GrayRun struct {
	// SLOHit and Availability over all requests of the run.
	SLOHit       float64 `json:"sloHit"`
	Availability float64 `json:"availability"`
	Completed    int     `json:"completed"`
	Failed       int     `json:"failed"`
	// Degradations injected and the mitigation activity they drew.
	Degradations int `json:"degradations"`
	Suspects     int `json:"suspects"`
	Quarantines  int `json:"quarantines"`
	Hedges       int `json:"hedges"`
	HedgeWins    int `json:"hedgeWins"`
	// WastedSec is GPU time spent by hedge copies that lost their race;
	// WastedRatio is that against the run's total GPU busy time.
	WastedSec   float64 `json:"wastedSec"`
	WastedRatio float64 `json:"wastedRatio"`
	// HedgeRate is hedges per completed request; BudgetOK is whether it
	// respected the configured per-function budget (with one launch of
	// slack per function, since the budget admits a first hedge early).
	HedgeRate float64 `json:"hedgeRate"`
	BudgetOK  bool    `json:"budgetOK"`
}

// GrayPoint is one sweep point: the three mitigation levels on the same
// degradation schedule and arrival sequence.
type GrayPoint struct {
	Rate           float64 `json:"rate"`
	Severity       float64 `json:"severity"`
	NoMitigation   GrayRun `json:"noMitigation"`
	QuarantineOnly GrayRun `json:"quarantineOnly"`
	QuarantineHedge GrayRun `json:"quarantineHedge"`
}

// GrayResult is the study outcome.
type GrayResult struct {
	Workload    string  `json:"workload"`
	Seed        int64   `json:"seed"`
	HedgeBudget float64 `json:"hedgeBudget"`

	Sweep []GrayPoint `json:"sweep"`

	// DisabledIdentical is the off-switch verdict: Gray{Enabled:false}
	// with non-zero sibling knobs versus a zero Options.Gray on the
	// standard light run — request records, event sequences, utilisation
	// timeline and counters all equal, and zero gray activity recorded.
	DisabledIdentical bool `json:"disabledIdentical"`
}

// grayHedgeBudget is the per-function hedge budget of the study (the
// platform default: one duplicate per ten completions).
const grayHedgeBudget = 0.1

// runGrayCell executes one mitigation level of one sweep point on the
// Light workload (SLOs tight enough that a 2.5x slowdown misses them,
// capacity slack enough that clean hardware exists to hedge onto).
func runGrayCell(cfg Config, rate, severity float64, g platform.GrayOptions) GrayRun {
	c := cfg
	c.Faults = &faults.Spec{
		DegradedRate:        rate,
		DegradedMTTR:        grayMTTR,
		DegradedMinSeverity: severity,
		DegradedMaxSeverity: severity,
	}
	c.Gray = g
	var out GrayRun
	var gpuBusy float64
	c.OnPlatform = func(p *platform.Platform) {
		out.Suspects = p.Suspects()
		out.Quarantines = p.Quarantines()
		out.Hedges = p.Hedges()
		out.HedgeWins = p.HedgeWins()
		out.WastedSec = p.HedgeWastedSeconds()
	}
	res := RunSystem(&scheduler.FluidFaaS{}, Light, c)
	gpuBusy = res.GPUTime
	out.SLOHit = res.SLOHit
	out.Availability = res.Availability
	out.Completed = res.Completed
	out.Failed = res.FailedCount
	out.Degradations = res.Faults
	if gpuBusy > 0 {
		out.WastedRatio = out.WastedSec / gpuBusy
	}
	if res.Completed > 0 {
		out.HedgeRate = float64(out.Hedges) / float64(res.Completed)
	}
	// One launch of slack per registered function: the budget admits a
	// function's first hedge before it has served ten requests.
	funcs := len(SpecsFor(Light, 1.5))
	out.BudgetOK = float64(out.Hedges) <= grayHedgeBudget*float64(res.Completed)+float64(funcs)
	return out
}

// RunGray runs the gray-failure resilience study.
func RunGray(cfg Config) GrayResult {
	cfg = cfg.withDefaults()
	res := GrayResult{
		Workload:    Light.String(),
		Seed:        cfg.Seed,
		HedgeBudget: grayHedgeBudget,
	}

	// Off-switch identity: the standard light run with Options.Gray zero
	// versus explicitly disabled with every sibling knob set (none may
	// leak into behaviour while Enabled is false). Uses cfg.Duration, so
	// the CI smoke run keeps it short.
	type capture struct {
		recs []metrics.RequestRecord
		exec uint64
		gray [3]int
	}
	run := func(g platform.GrayOptions) (SystemResult, capture) {
		c := cfg
		c.Gray = g
		var cap capture
		c.OnPlatform = func(p *platform.Platform) {
			cap.recs = p.Collector().Records()
			cap.exec = p.Engine().Executed()
			cap.gray = [3]int{p.Suspects(), p.Quarantines(), p.Hedges()}
		}
		return RunSystem(&scheduler.FluidFaaS{}, Light, c), cap
	}
	zero, capZero := run(platform.GrayOptions{})
	off, capOff := run(platform.GrayOptions{
		Enabled: false, Hedge: true, Alpha: 0.9,
		SuspectRatio: 1.01, QuarantineRatio: 1.02, MinSamples: 1, HedgeBudget: 99,
	})
	res.DisabledIdentical = reflect.DeepEqual(capZero.recs, capOff.recs) &&
		capZero.exec == capOff.exec &&
		capZero.gray == [3]int{} && capOff.gray == [3]int{} &&
		zero.Launched == off.Launched &&
		zero.Evictions == off.Evictions &&
		reflect.DeepEqual(zero.Events, off.Events) &&
		reflect.DeepEqual(zero.UtilGPCs, off.UtilGPCs)

	// The sweep: every (rate, severity) under the three mitigation
	// levels. Same cfg.Seed throughout, so within a point all three
	// levels face the identical degradation schedule and arrivals.
	for _, rate := range grayRates {
		for _, sev := range graySeverities {
			pt := GrayPoint{Rate: rate, Severity: sev}
			pt.NoMitigation = runGrayCell(cfg, rate, sev, platform.GrayOptions{})
			pt.QuarantineOnly = runGrayCell(cfg, rate, sev, platform.GrayOptions{
				Enabled: true,
			})
			pt.QuarantineHedge = runGrayCell(cfg, rate, sev, platform.GrayOptions{
				Enabled: true, Hedge: true, HedgeBudget: grayHedgeBudget,
			})
			res.Sweep = append(res.Sweep, pt)
		}
	}
	return res
}

// GrayTable renders the study.
func GrayTable(r GrayResult) Table {
	verdict := "IDENTICAL (bit-for-bit)"
	if !r.DisabledIdentical {
		verdict = "DIVERGED — disabled subsystem is not behaviour-invariant"
	}
	t := Table{
		Title: fmt.Sprintf("Gray-failure resilience: SLO attainment under degraded slices (%s workload, hedge budget %.0f%%)",
			r.Workload, 100*r.HedgeBudget),
		Header: []string{"rate", "sev", "SLO none", "SLO quar", "SLO q+h", "quar", "hedges(won)", "wasted", "budget"},
	}
	for _, p := range r.Sweep {
		budget := "ok"
		if !p.QuarantineHedge.BudgetOK {
			budget = "OVER"
		}
		t.Rows = append(t.Rows, []string{
			f3(p.Rate), f1(p.Severity),
			pct(p.NoMitigation.SLOHit), pct(p.QuarantineOnly.SLOHit), pct(p.QuarantineHedge.SLOHit),
			itoa(p.QuarantineHedge.Quarantines),
			itoa(p.QuarantineHedge.Hedges) + "(" + itoa(p.QuarantineHedge.HedgeWins) + ")",
			pct(p.QuarantineHedge.WastedRatio),
			budget,
		})
	}
	t.Rows = append(t.Rows,
		[]string{"disabled-path outcome", verdict, "", "", "", "", "", "", ""},
	)
	return t
}
