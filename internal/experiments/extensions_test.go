package experiments

import (
	"testing"
)

func TestIsolationStudy(t *testing.T) {
	r := RunIsolation(shortCfg())
	if r.MIGThroughput <= 0 || r.MPSThroughput <= 0 {
		t.Fatalf("degenerate throughputs: %+v", r)
	}
	// Weak isolation's signature: interference slowdown above 1 and
	// non-zero cross-tenant exposure. MIG has neither by construction.
	if r.MPSMeanSlowdown <= 1.0 {
		t.Errorf("MPS mean slowdown = %.2f, want > 1 (interference)", r.MPSMeanSlowdown)
	}
	if r.MPSExposureSeconds <= 0 {
		t.Errorf("MPS exposure = %.0f, want > 0", r.MPSExposureSeconds)
	}
	tab := IsolationTable(r)
	if len(tab.Rows) != 4 {
		t.Errorf("IsolationTable rows = %d", len(tab.Rows))
	}
}

func TestReconfigStudy(t *testing.T) {
	r := RunReconfig(shortCfg())
	if r.Total == 0 {
		t.Fatal("no post-shift requests generated")
	}
	// FluidFaaS serves through the shift; the repartitioning system
	// loses the requests that arrive during its multi-minute offline
	// window.
	if r.FluidServed <= r.ReconfigServed {
		t.Errorf("fluidfaas served %d, reconfig served %d: pipelines should win",
			r.FluidServed, r.ReconfigServed)
	}
	if float64(r.FluidServed) < 0.9*float64(r.Total) {
		t.Errorf("fluidfaas served %d of %d, want nearly all", r.FluidServed, r.Total)
	}
	if r.OfflineSeconds < 200 {
		t.Errorf("offline window = %.0f s, want minutes (§2.2)", r.OfflineSeconds)
	}
	if tab := ReconfigTable(r); len(tab.Rows) != 2 {
		t.Error("ReconfigTable incomplete")
	}
}

func TestSLOSweep(t *testing.T) {
	cfg := shortCfg()
	points := RunSLOSweep(cfg, []float64{1.5, 3.0})
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.FFSLOHit < 0 || p.FFSLOHit > 1 || p.ESGSLOHit < 0 || p.ESGSLOHit > 1 {
			t.Errorf("hit rates out of range: %+v", p)
		}
	}
	// Looser budgets cannot hurt either system.
	if points[1].FFSLOHit < points[0].FFSLOHit-0.05 {
		t.Errorf("fluidfaas hit fell when SLO loosened: %.2f -> %.2f",
			points[0].FFSLOHit, points[1].FFSLOHit)
	}
	if tab := SLOSweepTable(points); len(tab.Rows) != 2 {
		t.Error("SLOSweepTable incomplete")
	}
	// Default scales.
	if got := RunSLOSweep(Config{Seed: 1, Duration: 60, Drain: 20}, nil); len(got) != 4 {
		t.Errorf("default sweep = %d points, want 4", len(got))
	}
}

func TestBatchingStudy(t *testing.T) {
	cfg := shortCfg()
	points := RunBatching(cfg, []int{1, 4})
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	// In the over-saturated loose-SLO regime, batching must raise
	// throughput substantially.
	if points[1].Throughput < points[0].Throughput*1.15 {
		t.Errorf("batch 4 throughput %.1f not clearly above batch 1 %.1f",
			points[1].Throughput, points[0].Throughput)
	}
	if tab := BatchingTable(points); len(tab.Rows) != 2 {
		t.Error("BatchingTable incomplete")
	}
}

func TestChainingStudy(t *testing.T) {
	r := RunChaining(shortCfg())
	// The paper's §5 premise: the whole-workflow function beats
	// function-per-model chaining on SLO (hop overhead + per-function
	// queueing) and uses less deployment memory (no duplicated GPU
	// runtimes).
	if r.WholeSLOHit <= r.ChainSLOHit {
		t.Errorf("whole-workflow SLO %.2f should beat chained %.2f",
			r.WholeSLOHit, r.ChainSLOHit)
	}
	if r.ChainMemoryGB <= r.WholeMemoryGB {
		t.Errorf("chained memory %.1f should exceed whole %.1f",
			r.ChainMemoryGB, r.WholeMemoryGB)
	}
	if r.ChainHopOverhead <= 0 {
		t.Error("chained run has no hop overhead")
	}
	if tab := ChainingTable(r); len(tab.Rows) != 5 {
		t.Error("ChainingTable incomplete")
	}
}
