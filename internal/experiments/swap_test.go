package experiments

import "testing"

func TestSwapTraceStructure(t *testing.T) {
	for _, n := range []int{4, 8, 12, 20} {
		tr := swapTrace(n)
		if tr.NumFuncs != n {
			t.Fatalf("n=%d: NumFuncs = %d", n, tr.NumFuncs)
		}
		if tr.Duration != swapPhases*swapPhaseLen {
			t.Fatalf("n=%d: duration = %v", n, tr.Duration)
		}
		seen := make(map[int]bool)
		last := -1.0
		for i, rq := range tr.Requests {
			if rq.ID != i {
				t.Fatalf("n=%d: sparse request IDs at %d", n, i)
			}
			if rq.Arrival < last {
				t.Fatalf("n=%d: arrivals not sorted at %d", n, i)
			}
			last = rq.Arrival
			if rq.Arrival >= tr.Duration {
				t.Fatalf("n=%d: arrival %v past duration", n, rq.Arrival)
			}
			if rq.Func < 0 || rq.Func >= n {
				t.Fatalf("n=%d: out-of-range func %d", n, rq.Func)
			}
			seen[rq.Func] = true
		}
		if len(seen) != n {
			t.Errorf("n=%d: only %d models received traffic", n, len(seen))
		}
	}
	// The single-group baseline idles alternate phases: it must have
	// strictly fewer requests than two back-to-back groups would, so
	// the baseline too pays cool-off/reload transitions.
	if a, b := len(swapTrace(4).Requests), len(swapTrace(8).Requests); a >= b {
		t.Errorf("baseline trace (%d reqs) not lighter than two-group trace (%d)", a, b)
	}
}

func TestSwapDensityPrefixRule(t *testing.T) {
	pts := []SwapPoint{
		{PerGPU: 2, SLOHitOn: 0.90, SLOHitOff: 0.70},
		{PerGPU: 4, SLOHitOn: 0.70, SLOHitOff: 0.60},
		{PerGPU: 6, SLOHitOn: 0.60, SLOHitOff: 0.50},
		// A later census that recovers above the bar must not count:
		// density is the largest census with every smaller one passing.
		{PerGPU: 8, SLOHitOn: 0.80, SLOHitOff: 0.40},
	}
	base := 0.70 // bar = 0.95 * 0.70 = 0.665
	if got := swapDensity(pts, base, func(p SwapPoint) float64 { return p.SLOHitOn }); got != 4 {
		t.Errorf("on density = %v, want 4 (prefix rule)", got)
	}
	if got := swapDensity(pts, base, func(p SwapPoint) float64 { return p.SLOHitOff }); got != 2 {
		t.Errorf("off density = %v, want 2", got)
	}
	if got := swapDensity(nil, base, func(p SwapPoint) float64 { return 1 }); got != 0 {
		t.Errorf("empty sweep density = %v, want 0", got)
	}
}
