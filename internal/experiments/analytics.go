package experiments

import (
	"fmt"

	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/analytics"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
)

// obsRecorder ensures cfg carries a recorder and returns it.
func obsRecorder(cfg *Config) *obs.Recorder {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRecorder()
	}
	return cfg.Obs
}

// The span-analytics study: one instrumented FluidFaaS run whose span
// log is decomposed into per-function latency blame tables, profile-
// drift ratios and SLO burn-rate alerts. The analysis is a pure
// post-run observer — the run itself is bit-for-bit the same as an
// uninstrumented one — and deterministic, so the tables regenerate
// identically for a given seed.

// AnalyticsResult bundles one instrumented run with its analysis.
type AnalyticsResult struct {
	Result   SystemResult
	Report   *analytics.Report
	Snapshot platform.Snapshot
}

// RunAnalytics executes one instrumented FluidFaaS run on the medium
// workload under cfg and analyses its span log. Set cfg.MaxBatch > 1 to
// make the drift detector earn its keep: batched stage executions run
// n^gamma longer than the declared per-request profile, exactly the
// divergence it watches for.
func RunAnalytics(cfg Config) AnalyticsResult {
	cfg = cfg.withDefaults()
	rec := obsRecorder(&cfg)
	var snap platform.Snapshot
	prev := cfg.OnPlatform
	cfg.OnPlatform = func(p *platform.Platform) {
		snap = p.Snapshot()
		if prev != nil {
			prev(p)
		}
	}
	r := RunSystem(&scheduler.FluidFaaS{}, Medium, cfg)
	return AnalyticsResult{
		Result:   r,
		Report:   analytics.Analyze(analytics.Config{}, rec),
		Snapshot: snap,
	}
}

// AnalyticsBlameTable renders the per-function critical-path blame
// table: where each function's mean end-to-end latency goes, and which
// component dominates.
func AnalyticsBlameTable(rp *analytics.Report) Table {
	t := Table{
		Title: "Span analytics: critical-path blame per function (mean seconds)",
		Header: []string{"app", "reqs", "latency", "p99",
			"queue", "load", "exec", "transfer", "retry", "dominant"},
	}
	for _, b := range rp.Blame {
		t.Rows = append(t.Rows, []string{
			b.Func, itoa(b.Requests), f3(b.MeanLatency), f3(b.P99Latency),
			f3(b.Mean.Queue), f3(b.Mean.Load), f3(b.Mean.Exec),
			f3(b.Mean.Transfer), f3(b.Mean.Retry),
			fmt.Sprintf("%s (%s)", b.Dominant, pct(b.Share)),
		})
	}
	return t
}

// AnalyticsStragglerTable renders the straggler report: requests past
// their function's p99 and the component that made each slow.
func AnalyticsStragglerTable(rp *analytics.Report) Table {
	t := Table{
		Title:  "Span analytics: stragglers (past their function's p99)",
		Header: []string{"app", "req", "arrival", "latency", "outcome", "top component"},
	}
	for _, s := range rp.Stragglers {
		t.Rows = append(t.Rows, []string{
			s.Func, itoa(s.Req), f1(s.Arrival), f3(s.Latency), s.Outcome, s.Top,
		})
	}
	if len(t.Rows) == 0 {
		t.Rows = append(t.Rows, []string{"-", "-", "-", "-", "-", "-"})
	}
	return t
}

// AnalyticsDriftTable renders the profile-drift ratios: observed vs
// declared stage execution time per (function, stage, slice type).
func AnalyticsDriftTable(rp *analytics.Report) Table {
	t := Table{
		Title:  "Span analytics: profile drift (EWMA observed/declared)",
		Header: []string{"key", "ratio", "declared", "last obs", "samples", "flagged"},
	}
	for _, d := range rp.Drift {
		flag := ""
		if d.Flagged {
			flag = "DRIFT"
		}
		t.Rows = append(t.Rows, []string{
			d.Key.String(), f2(d.Ratio), f3(d.Declared), f3(d.LastObserved),
			itoa(d.Samples), flag,
		})
	}
	return t
}

// AnalyticsBurnTable renders the SLO burn-rate monitor's end state and
// alert activity per function.
func AnalyticsBurnTable(rp *analytics.Report) Table {
	t := Table{
		Title: "Span analytics: SLO burn rates (multi-window, budget-relative)",
		Header: []string{"app", "budget", "burn 5m", "burn 1h",
			"misses", "total", "pages", "warns", "active"},
	}
	for _, s := range rp.Burn {
		t.Rows = append(t.Rows, []string{
			s.Func, f3(s.Budget), f1(s.ShortBurn), f1(s.LongBurn),
			itoa(s.Misses), itoa(s.Total), itoa(s.Pages), itoa(s.Warns), s.Active,
		})
	}
	return t
}
