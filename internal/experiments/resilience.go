package experiments

import (
	"fluidfaas/internal/faults"
)

// This file is the resilience extension study: how the three systems
// degrade and recover when the cluster's hardware fails underneath
// them. The paper evaluates fault-free testbeds; this sweep injects
// seeded MIG-slice ECC faults, whole-GPU failures and node crashes at
// increasing rates and compares SLO attainment and availability (the
// fraction of requests that did not die with their hardware).
// FluidFaaS's strong-isolation premise (§4) predicts graceful
// degradation: a slice fault takes down one slice's work, not the
// GPU's.

// ResilienceRates are the slice-fault rates (faults/s, cluster-wide)
// swept by the study; GPU and node failures scale down from the slice
// rate (GPUs fail 4x less often, nodes 40x).
var ResilienceRates = []float64{0, 0.005, 0.02}

// FaultSpecFor derives the full fault profile from a slice-fault rate.
// A zero rate returns nil: the exact fault-free configuration, so the
// sweep's baseline is bit-for-bit the paper's run.
func FaultSpecFor(sliceRate float64) *faults.Spec {
	if sliceRate <= 0 {
		return nil
	}
	return &faults.Spec{
		SliceRate: sliceRate,
		GPURate:   sliceRate / 4,
		NodeRate:  sliceRate / 40,
		SliceMTTR: 30,
		GPUMTTR:   90,
		NodeMTTR:  180,
	}
}

// ResilienceResult is one fault-rate point of the sweep.
type ResilienceResult struct {
	// SliceRate is the swept slice-fault rate (faults/s).
	SliceRate float64
	// Systems holds one result per compared system, in Systems() order.
	Systems []SystemResult
}

// RunResilience sweeps the fault rates at the medium workload for all
// three systems. Every run shares cfg's seed: within one rate the
// systems see identical traces and identical fault schedules.
func RunResilience(cfg Config) []ResilienceResult {
	cfg = cfg.withDefaults()
	var out []ResilienceResult
	for _, rate := range ResilienceRates {
		c := cfg
		c.Faults = FaultSpecFor(rate)
		rr := ResilienceResult{SliceRate: rate}
		for _, pol := range Systems() {
			rr.Systems = append(rr.Systems, RunSystem(pol, Medium, c))
		}
		out = append(out, rr)
	}
	return out
}

// ResilienceTable renders the sweep in the evaluation's row format.
func ResilienceTable(rs []ResilienceResult) Table {
	t := Table{
		Title: "Extension: SLO attainment and availability under hardware faults (medium workload)",
		Header: []string{"fault rate", "system", "slo hit", "availability",
			"failed", "retries", "faults", "recovered"},
	}
	for _, r := range rs {
		for _, s := range r.Systems {
			t.Rows = append(t.Rows, []string{
				f3(r.SliceRate), s.System, pct(s.SLOHit), pct(s.Availability),
				itoa(s.FailedCount), itoa(s.TotalRetries),
				itoa(s.Faults), itoa(s.Recoveries),
			})
		}
	}
	return t
}
