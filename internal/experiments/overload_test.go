package experiments

import (
	"testing"
)

func TestOverloadStudy(t *testing.T) {
	pts := RunOverload(shortCfg(), []float64{1, 3})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, pt := range pts {
		if len(pt.Systems) != 4 {
			t.Fatalf("x%.0f: systems = %d, want 3 plain + overload",
				pt.Multiplier, len(pt.Systems))
		}
		for _, s := range pt.Systems[:3] {
			if s.Rejected != 0 || s.Shed != 0 {
				t.Errorf("x%.0f %s: plain system rejected/shed (%d/%d)",
					pt.Multiplier, s.System, s.Rejected, s.Shed)
			}
		}
		oc := pt.Systems[3]
		if oc.System != "fluidfaas+overload" {
			t.Fatalf("x%.0f: last system = %q", pt.Multiplier, oc.System)
		}
		if oc.Fairness <= 0 || oc.Fairness > 1 {
			t.Errorf("x%.0f: fairness = %v, want (0,1]", pt.Multiplier, oc.Fairness)
		}
	}
	low, high := pts[0].Systems[3], pts[1].Systems[3]
	if high.Rejected == 0 {
		t.Error("overloaded run produced no fast-fail rejections")
	}
	if high.TimeoutDrops != 0 {
		t.Errorf("admission control should pre-empt timeout drops, got %d",
			high.TimeoutDrops)
	}
	// Graceful degradation: goodput under 3x offered load must hold
	// within 20% of the nominal-load goodput (in practice it rises,
	// since admission keeps the served fraction at capacity).
	if high.Goodput < 0.8*low.Goodput {
		t.Errorf("goodput collapsed under overload: %.1f at x3 vs %.1f at x1",
			high.Goodput, low.Goodput)
	}
	// And the controller must beat plain FluidFaaS where it matters.
	plain := pts[1].Systems[2]
	if high.Goodput <= plain.Goodput {
		t.Errorf("overload control did not improve goodput: %.1f vs plain %.1f",
			high.Goodput, plain.Goodput)
	}
}

func TestOverloadTableShape(t *testing.T) {
	pts := []OverloadPoint{{
		Multiplier: 2,
		Systems: []SystemResult{{
			System: "x", Goodput: 1.5, SLOHit: 0.5, Rejected: 3, Fairness: 0.9,
		}},
	}}
	tab := OverloadTable(pts)
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != len(tab.Header) {
		t.Fatalf("table shape wrong: %+v", tab)
	}
	if tab.Rows[0][1] != "x" || tab.Rows[0][4] != "3" {
		t.Errorf("row content wrong: %v", tab.Rows[0])
	}
}
