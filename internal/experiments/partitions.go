package experiments

import (
	"fmt"

	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
)

// PartitionScheme names one of the Table 7 partitioning schemes.
type PartitionScheme struct {
	Name       string
	GPUConfigs []mig.Config
}

// Table7Schemes returns the paper's partition schemes.
func Table7Schemes() []PartitionScheme {
	return []PartitionScheme{
		{Name: "Hybrid", GPUConfigs: mig.HybridNode()},
		{Name: "P1", GPUConfigs: mig.UniformNode(mig.ConfigP1, 8)},
		{Name: "P2", GPUConfigs: mig.UniformNode(mig.ConfigP2, 8)},
	}
}

// PartitionResult is one row of Fig. 15.
type PartitionResult struct {
	Scheme        string
	ESGThroughput float64
	FFThroughput  float64
	Gain          float64
	ESGSLOHit     float64
	FFSLOHit      float64
}

// RunPartitions reproduces Fig. 15: heavy-workload throughput of
// FluidFaaS vs ESG across the Table 7 partitioning schemes. The paper
// measures +70% (Hybrid), +75% (P1), +78% (P2), driven by the small
// fragments ESG cannot use.
func RunPartitions(cfg Config) []PartitionResult {
	cfg = cfg.withDefaults()
	var out []PartitionResult
	for _, scheme := range Table7Schemes() {
		c := cfg
		c.GPUConfigs = scheme.GPUConfigs
		esg := RunSystem(&scheduler.ESG{}, Heavy, c)
		ff := RunSystem(&scheduler.FluidFaaS{}, Heavy, c)
		r := PartitionResult{
			Scheme:        scheme.Name,
			ESGThroughput: esg.Throughput,
			FFThroughput:  ff.Throughput,
			ESGSLOHit:     esg.SLOHit,
			FFSLOHit:      ff.SLOHit,
		}
		if esg.Throughput > 0 {
			r.Gain = ff.Throughput / esg.Throughput
		}
		out = append(out, r)
	}
	return out
}

// Fig15Table renders the partition study.
func Fig15Table(rs []PartitionResult) Table {
	t := Table{
		Title:  "Fig. 15: throughput under different MIG partitions (heavy workload)",
		Header: []string{"partition", "esg (req/s)", "fluidfaas (req/s)", "gain", "esg SLO", "fluid SLO"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Scheme, f1(r.ESGThroughput), f1(r.FFThroughput),
			fmt.Sprintf("%.2fx", r.Gain), pct(r.ESGSLOHit), pct(r.FFSLOHit),
		})
	}
	return t
}
