package experiments

import (
	"fmt"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
	"fluidfaas/internal/workflow"
)

// ChainingResult compares the whole-workflow FluidFaaS function against
// the function-per-model chaining style (§5's design premise: putting
// the entire ML workflow in one serverless function avoids hop
// overheads, extra cold starts, and duplicated GPU runtimes).
type ChainingResult struct {
	// Whole-workflow (FluidFaaS function) side.
	WholeSLOHit     float64
	WholeThroughput float64
	WholeMemoryGB   float64
	// Chained (one function per model) side.
	ChainSLOHit      float64
	ChainThroughput  float64
	ChainMemoryGB    float64
	ChainHopOverhead float64
	ChainMeanLatency float64
}

// RunChaining runs the medium image-classification workload both ways
// on identical clusters and traces.
func RunChaining(cfg Config) ChainingResult {
	cfg = cfg.withDefaults()
	app := dnn.Get(dnn.ImageClassification)
	variant := dnn.Medium

	tr := trace.Generate(trace.Spec{
		Duration: cfg.Duration,
		Seed:     cfg.Seed + 7,
		Streams: []trace.StreamSpec{{
			Func: 0, MeanRPS: 8, RateSigma: 0.3,
			BurstFactor: 1.6, BurstFraction: 0.12, BurstLen: 25,
		}},
	})
	spec := cluster.Spec{
		Nodes: 1, GPUConfigs: cfg.GPUConfigs[:4], CPUMemGB: 720,
	}

	// Whole workflow: one FluidFaaS function.
	wholeSpecs := []FunctionSpecBuilder{{App: app, Variant: variant}}
	whole := runWholeWorkflow(wholeSpecs, tr, spec, cfg)

	// Chained: one function per model.
	chain := workflow.RunChained(app, variant, tr, spec,
		&scheduler.FluidFaaS{}, cfg.Seed, cfg.SLOScale)

	return ChainingResult{
		WholeSLOHit:      whole.SLOHit,
		WholeThroughput:  whole.Throughput,
		WholeMemoryGB:    app.TotalMemGB(variant) + workflow.RuntimeDupGB,
		ChainSLOHit:      chain.SLOHit,
		ChainThroughput:  chain.Throughput,
		ChainMemoryGB:    chain.MemoryGB,
		ChainHopOverhead: chain.HopOverhead,
		ChainMeanLatency: chain.MeanLatency,
	}
}

// FunctionSpecBuilder pairs an app with a variant for ad-hoc runs.
type FunctionSpecBuilder struct {
	App     dnn.App
	Variant dnn.Variant
}

// runWholeWorkflow runs the apps as whole-workflow functions over tr.
func runWholeWorkflow(builders []FunctionSpecBuilder, tr *trace.Trace,
	spec cluster.Spec, cfg Config) SystemResult {

	var specs []platform.FunctionSpec
	for i, b := range builders {
		d := b.App.BuildDAG(b.Variant)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			panic(err)
		}
		slo, ok := b.App.SLOLatency(b.Variant, cfg.SLOScale)
		if !ok {
			panic("experiments: no SLO for whole-workflow run")
		}
		specs = append(specs, platform.FunctionSpec{
			ID: i, Name: b.App.Name, DAG: d, Parts: parts, SLO: slo,
		})
	}
	cl := cluster.New(spec)
	p := platform.New(cl, specs, platform.Options{
		Policy: &scheduler.FluidFaaS{}, Seed: cfg.Seed,
	})
	p.Run(tr, cfg.Drain)
	col := p.Collector()
	return SystemResult{
		System:     "fluidfaas-whole",
		SLOHit:     col.SLOHitRate(),
		Throughput: col.Throughput(tr.Duration),
		Completed:  col.Completed(),
		Total:      col.Len(),
	}
}

// ChainingTable renders the study.
func ChainingTable(r ChainingResult) Table {
	return Table{
		Title:  "Extension (§5): whole-workflow function vs function-per-model chaining",
		Header: []string{"quantity", "whole workflow", "chained"},
		Rows: [][]string{
			{"SLO hit rate", pct(r.WholeSLOHit), pct(r.ChainSLOHit)},
			{"throughput (req/s)", f1(r.WholeThroughput), f1(r.ChainThroughput)},
			{"deployment memory (GB)", f1(r.WholeMemoryGB), f1(r.ChainMemoryGB)},
			{"chain hop overhead (ms)", "0", f1(r.ChainHopOverhead * 1000)},
			{"chained mean latency (s)", "-", fmt.Sprintf("%.2f", r.ChainMeanLatency)},
		},
	}
}
