package experiments

import (
	"reflect"
	"time"

	"fluidfaas/internal/metrics"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
)

// PlannerResult is the planner fast-path study: the same medium
// FluidFaaS run with the plan cache on and off, reporting wall-clock
// simulator throughput, the cache's hit statistics, and — the contract
// that makes the cache safe to ship — whether the two runs were
// bit-identical.
type PlannerResult struct {
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// Identical is the behaviour-invariance verdict: request records,
	// lifecycle event sequences, utilisation timeline and platform
	// counters all equal across cache-on/off.
	Identical bool `json:"identical"`

	// Cache statistics of the cache-on run.
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Uncached     uint64  `json:"uncached"`
	QuickRejects uint64  `json:"quickRejects"`
	HitRate      float64 `json:"hitRate"`
	// WalkReduction is lookups over partition-list walks: how many
	// construction calls each walk now serves.
	WalkReduction float64 `json:"walkReduction"`

	// Wall-clock comparison (host seconds; same simulated workload, so
	// events executed is identical when Identical holds).
	Events               uint64  `json:"events"`
	CachedSeconds        float64 `json:"cachedSeconds"`
	UncachedSeconds      float64 `json:"uncachedSeconds"`
	CachedEventsPerSec   float64 `json:"cachedEventsPerSec"`
	UncachedEventsPerSec float64 `json:"uncachedEventsPerSec"`
	Speedup              float64 `json:"speedup"`
}

// RunPlanner runs the planner fast-path study on the medium workload.
func RunPlanner(cfg Config) PlannerResult {
	cfg = cfg.withDefaults()
	w := Medium

	type capture struct {
		recs  []metrics.RequestRecord
		exec  uint64
		stats pipeline.PlannerStats
	}
	run := func(disable bool) (SystemResult, capture, float64) {
		c := cfg
		c.DisablePlanCache = disable
		var cap capture
		c.OnPlatform = func(p *platform.Platform) {
			cap.recs = p.Collector().Records()
			cap.exec = p.Engine().Executed()
			cap.stats = p.PlannerStats()
		}
		start := time.Now()
		r := RunSystem(&scheduler.FluidFaaS{}, w, c)
		return r, cap, time.Since(start).Seconds()
	}
	on, capOn, wallOn := run(false)
	off, capOff, wallOff := run(true)

	st := capOn.stats
	res := PlannerResult{
		Workload: w.String(),
		Seed:     cfg.Seed,
		Identical: reflect.DeepEqual(capOn.recs, capOff.recs) &&
			capOn.exec == capOff.exec &&
			on.Launched == off.Launched &&
			on.Evictions == off.Evictions &&
			on.Migrations == off.Migrations &&
			reflect.DeepEqual(on.Events, off.Events) &&
			reflect.DeepEqual(on.UtilGPCs, off.UtilGPCs),
		Hits:         st.Hits,
		Misses:       st.Misses,
		Uncached:     st.Uncached,
		QuickRejects: st.QuickRejects,
		HitRate:      st.HitRate(),
		Events:       capOn.exec,
		CachedSeconds:   wallOn,
		UncachedSeconds: wallOff,
	}
	if st.Walks() > 0 {
		res.WalkReduction = float64(st.Lookups()) / float64(st.Walks())
	}
	if wallOn > 0 {
		res.CachedEventsPerSec = float64(capOn.exec) / wallOn
	}
	if wallOff > 0 {
		res.UncachedEventsPerSec = float64(capOff.exec) / wallOff
	}
	if wallOn > 0 && wallOff > 0 {
		res.Speedup = wallOff / wallOn
	}
	return res
}

// PlannerTable renders the planner fast-path study.
func PlannerTable(r PlannerResult) Table {
	verdict := "IDENTICAL (bit-for-bit)"
	if !r.Identical {
		verdict = "DIVERGED — cache is not behaviour-invariant"
	}
	return Table{
		Title:  "Planner fast path: plan cache on vs off, " + r.Workload + " workload",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"cache-on/off outcome", verdict},
			{"cache hits", itoa(int(r.Hits))},
			{"cache misses (walks)", itoa(int(r.Misses))},
			{"uncached lookups (sig overflow)", itoa(int(r.Uncached))},
			{"quick-rejected partitions", itoa(int(r.QuickRejects))},
			{"hit rate", pct(r.HitRate)},
			{"construct walks saved", f1(r.WalkReduction) + "x"},
			{"events executed", itoa(int(r.Events))},
			{"cached wall (s) / events/s", f2(r.CachedSeconds) + " / " + f1(r.CachedEventsPerSec)},
			{"uncached wall (s) / events/s", f2(r.UncachedSeconds) + " / " + f1(r.UncachedEventsPerSec)},
			{"wall-clock speedup", f2(r.Speedup) + "x"},
		},
	}
}
