package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// EndToEnd runs every (system, workload) combination once and caches
// nothing — callers reuse the returned map across figures 9–16 and
// Table 6.
type EndToEnd struct {
	Cfg     Config
	Results map[Workload]map[string]SystemResult
}

// RunEndToEnd executes the full end-to-end matrix (§7.1). The nine
// (system, workload) simulations are independent deterministic runs, so
// they execute in parallel; results are identical to a serial sweep.
func RunEndToEnd(cfg Config) *EndToEnd {
	cfg = cfg.withDefaults()
	e := &EndToEnd{Cfg: cfg, Results: map[Workload]map[string]SystemResult{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range Workloads {
		e.Results[w] = map[string]SystemResult{}
		for _, pol := range Systems() {
			w, pol := w, pol
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := RunSystem(pol, w, cfg)
				mu.Lock()
				e.Results[w][pol.Name()] = r
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return e
}

func systemsOrder() []string { return []string{"infless", "esg", "fluidfaas"} }

// Fig9SLOHitRates returns the per-application SLO hit rates of Fig. 9.
func (e *EndToEnd) Fig9SLOHitRates() Table {
	t := Table{
		Title:  "Fig. 9: SLO hit rate per application and workload",
		Header: []string{"workload", "app", "infless", "esg", "fluidfaas"},
	}
	for _, w := range Workloads {
		apps := appsFor(w)
		for ai, a := range apps {
			row := []string{w.String(), a.Name}
			for _, sys := range systemsOrder() {
				row = append(row, pct(e.Results[w][sys].SLOHitByApp[ai]))
			}
			t.Rows = append(t.Rows, row)
		}
		row := []string{w.String(), "ALL"}
		for _, sys := range systemsOrder() {
			row = append(row, pct(e.Results[w][sys].SLOHit))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10Throughput returns the system throughput of Fig. 10, plus the
// FluidFaaS-over-ESG gain the paper headlines (25% medium, 75% heavy).
func (e *EndToEnd) Fig10Throughput() Table {
	t := Table{
		Title:  "Fig. 10: system throughput (req/s)",
		Header: []string{"workload", "infless", "esg", "fluidfaas", "fluid/esg"},
	}
	for _, w := range Workloads {
		row := []string{w.String()}
		for _, sys := range systemsOrder() {
			row = append(row, f1(e.Results[w][sys].Throughput))
		}
		gain := e.Results[w]["fluidfaas"].Throughput / e.Results[w]["esg"].Throughput
		row = append(row, fmt.Sprintf("%.2fx", gain))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FigCDF returns the latency CDF tables of Figs. 11 (heavy), 12
// (medium) and 13 (light).
func (e *EndToEnd) FigCDF(w Workload) Table {
	figNo := map[Workload]string{Heavy: "11", Medium: "12", Light: "13"}[w]
	t := Table{
		Title:  fmt.Sprintf("Fig. %s: end-to-end latency CDF (%s workload)", figNo, w),
		Header: []string{"app", "system", "p50(s)", "p90(s)", "p95(s)", "max(s)"},
	}
	apps := appsFor(w)
	for ai, a := range apps {
		for _, sys := range systemsOrder() {
			cdf := e.Results[w][sys].CDFByApp[ai]
			row := []string{a.Name, sys}
			for _, q := range []float64{0.50, 0.90, 0.95, 1.0} {
				v := 0.0
				for _, pt := range cdf {
					if pt.Fraction >= q {
						v = pt.Latency
						break
					}
				}
				if v == 0 && len(cdf) > 0 {
					v = cdf[len(cdf)-1].Latency
				}
				row = append(row, f2(v))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig14Breakdown returns the latency breakdown of Fig. 14 (ESG left
// bar, FluidFaaS right bar; queue / load / exec / transfer in ms).
func (e *EndToEnd) Fig14Breakdown() Table {
	t := Table{
		Title:  "Fig. 14: end-to-end latency breakdown (ms)",
		Header: []string{"workload", "system", "queue", "load", "exec", "transfer"},
	}
	for _, w := range Workloads {
		for _, sys := range []string{"esg", "fluidfaas"} {
			b := e.Results[w][sys].Breakdown
			t.Rows = append(t.Rows, []string{
				w.String(), sys,
				f1(b.Queue * 1000), f1(b.Load * 1000),
				f1(b.Exec * 1000), f1(b.Transfer * 1000),
			})
		}
	}
	return t
}

// Table6ResourceCost returns the normalised MIG and GPU time of
// Table 6 (FluidFaaS = 1; lower is better).
func (e *EndToEnd) Table6ResourceCost() Table {
	t := Table{
		Title:  "Table 6: resource cost normalised to FluidFaaS",
		Header: []string{"metric", "workload", "infless", "esg", "fluidfaas"},
	}
	for _, metric := range []string{"MIG time", "GPU time"} {
		for _, w := range Workloads {
			get := func(sys string) float64 {
				r := e.Results[w][sys]
				if metric == "MIG time" {
					return r.MIGTime
				}
				return r.GPUTime
			}
			base := get("fluidfaas")
			row := []string{metric, w.String()}
			for _, sys := range systemsOrder() {
				if base > 0 {
					row = append(row, f2(get(sys)/base))
				} else {
					row = append(row, "n/a")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Fig16Utilization returns the GPU utilisation summary of Fig. 16:
// mean and peak active-GPC fraction per system and workload.
func (e *EndToEnd) Fig16Utilization() Table {
	t := Table{
		Title:  "Fig. 16: GPU utilisation (active GPC fraction)",
		Header: []string{"workload", "system", "mean", "peak"},
	}
	for _, w := range Workloads {
		for _, sys := range systemsOrder() {
			tl := e.Results[w][sys].UtilGPCs
			t.Rows = append(t.Rows, []string{
				w.String(), sys, pct(tl.Mean()), pct(tl.Max()),
			})
		}
	}
	return t
}

// Fig16Timeline returns one system's sampled utilisation series for
// plotting (time, activeGPCfraction).
func (e *EndToEnd) Fig16Timeline(w Workload, system string) ([]float64, []float64) {
	tl := e.Results[w][system].UtilGPCs
	return tl.Times, tl.Values
}

// SortedApps returns the app names of a workload in ID order (helper
// for reports).
func SortedApps(w Workload) []string {
	var names []string
	for _, a := range appsFor(w) {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
