package ffaas

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// appFunction adapts a dnn application to the Function interface the way
// a developer would write it.
type appFunction struct {
	app     dnn.App
	variant dnn.Variant
}

func (f appFunction) Name() string { return f.app.Name + "/" + f.variant.String() }

func (f appFunction) DefDAG(b *Builder) {
	handles := make([]Handle, len(f.app.Models))
	preds := make(map[int][]int)
	for _, e := range f.app.Edges {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	for i, m := range f.app.Models {
		mod := &StaticModule{
			ModuleName: m.String(),
			Mem:        m.MemGB(f.variant),
			Out:        m.OutMB(f.variant),
			Exec:       m.ExecProfile(f.variant),
		}
		var ins []Handle
		for _, p := range preds[i] {
			ins = append(ins, handles[p])
		}
		if len(ins) == 0 {
			ins = []Handle{Input}
		}
		handles[i] = b.Reg(mod, ins...)
	}
}

func mediumApp0() appFunction {
	return appFunction{app: dnn.Get(dnn.ImageClassification), variant: dnn.Medium}
}

func TestBuildDAGMatchesDNN(t *testing.T) {
	fn := mediumApp0()
	d, err := BuildDAG(fn)
	if err != nil {
		t.Fatal(err)
	}
	want := fn.app.BuildDAG(fn.variant)
	if d.Len() != want.Len() {
		t.Fatalf("DAG len = %d, want %d", d.Len(), want.Len())
	}
	if math.Abs(d.TotalMemGB()-want.TotalMemGB()) > 1e-9 {
		t.Errorf("mem %v != %v", d.TotalMemGB(), want.TotalMemGB())
	}
	e1, _ := d.TotalExecOn(mig.Slice2g)
	e2, _ := want.TotalExecOn(mig.Slice2g)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("exec %v != %v", e1, e2)
	}
}

func TestProfileMode(t *testing.T) {
	fn := mediumApp0()
	d, profs, err := Profile(fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != d.Len() {
		t.Fatalf("profiles = %d, want %d", len(profs), d.Len())
	}
	for _, p := range profs {
		if p.MemGB <= 0 || len(p.Exec) == 0 {
			t.Errorf("profile %s incomplete: %+v", p.Name, p)
		}
		// Medium components all fit 1g.
		if _, ok := p.Exec[mig.Slice1g]; !ok {
			t.Errorf("profile %s missing 1g entry", p.Name)
		}
	}
}

// configFor builds a Config via the invoker path: rank partitions,
// construct against available slices, convert the plan.
func configFor(t *testing.T, fn appFunction, avail []mig.SliceType) (Config, pipeline.Plan) {
	t.Helper()
	d := fn.app.BuildDAG(fn.variant)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	plan, idx, err := pipeline.Construct(d, parts, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(idx))
	for i, ai := range idx {
		ids[i] = avail[ai].String()
	}
	cfg, err := FromPlan(plan, ids)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, plan
}

func TestLaunchAndInvokeMonolithic(t *testing.T) {
	fn := mediumApp0()
	cfg, plan := configFor(t, fn, []mig.SliceType{mig.Slice4g})
	inst, err := Launch(fn, cfg, LaunchOptions{Preloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Stages() != 1 {
		t.Fatalf("stages = %d, want 1", inst.Stages())
	}
	res := inst.InvokeWait(0)
	if math.Abs(res.Latency-plan.Latency) > 1e-9 {
		t.Errorf("latency = %v, plan latency = %v", res.Latency, plan.Latency)
	}
	if res.QueueTime != 0 || res.LoadTime != 0 {
		t.Errorf("unexpected queue/load: %+v", res)
	}
}

func TestLaunchPipelineOverlap(t *testing.T) {
	fn := mediumApp0()
	cfg, plan := configFor(t, fn, []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g})
	if len(cfg.Stages) < 2 {
		t.Fatalf("expected pipelined config, got %d stages", len(cfg.Stages))
	}
	inst, err := Launch(fn, cfg, LaunchOptions{Preloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Submit a back-to-back burst at virtual time 0; pipelining means
	// request k completes at about latency + k*bottleneck.
	const n = 10
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = inst.Invoke(0)
	}
	var last Result
	for i := 0; i < n; i++ {
		last = <-chans[i]
	}
	wantLast := plan.Latency + float64(n-1)*plan.Bottleneck
	gotLast := last.Latency
	if math.Abs(gotLast-wantLast) > 1e-6 {
		t.Errorf("burst completion latency = %v, want %v (pipelined)", gotLast, wantLast)
	}
	served, busy := inst.StageStats()
	for i := range served {
		if served[i] != n {
			t.Errorf("stage %d served %d, want %d", i, served[i], n)
		}
		if busy[i] <= 0 {
			t.Errorf("stage %d busy = %v", i, busy[i])
		}
	}
}

func TestEvictionReloadPenalty(t *testing.T) {
	fn := mediumApp0()
	cfg, _ := configFor(t, fn, []mig.SliceType{mig.Slice4g})
	load := func(memGB float64) float64 { return memGB / 12 }
	inst, err := Launch(fn, cfg, LaunchOptions{Preloaded: true, LoadTime: load})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	first := inst.InvokeWait(0)
	if first.LoadTime != 0 {
		t.Errorf("preloaded first request paid load %v", first.LoadTime)
	}
	inst.EvictStage(0)
	second := inst.InvokeWait(first.Latency)
	wantLoad := fn.app.TotalMemGB(fn.variant) / 12
	if math.Abs(second.LoadTime-wantLoad) > 1e-9 {
		t.Errorf("post-eviction load = %v, want %v", second.LoadTime, wantLoad)
	}
	third := inst.InvokeWait(second.Latency + second.LoadTime + 10)
	if third.LoadTime != 0 {
		t.Errorf("third request paid load %v after reload", third.LoadTime)
	}
}

func TestColdStartLoadOnFirstRequest(t *testing.T) {
	fn := mediumApp0()
	cfg, _ := configFor(t, fn, []mig.SliceType{mig.Slice4g})
	inst, err := Launch(fn, cfg, LaunchOptions{LoadTime: func(m float64) float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	res := inst.InvokeWait(0)
	if res.LoadTime != 1 {
		t.Errorf("cold first request load = %v, want 1", res.LoadTime)
	}
}

func TestLaunchRejectsBadConfigs(t *testing.T) {
	fn := mediumApp0()
	good, _ := configFor(t, fn, []mig.SliceType{mig.Slice4g})
	cases := map[string]Config{
		"empty":       {},
		"missingNode": {Stages: []StageConfig{{Nodes: good.Stages[0].Nodes[:2], Slice: mig.Slice4g}}},
		"dupNode": {Stages: []StageConfig{
			{Nodes: good.Stages[0].Nodes, Slice: mig.Slice4g},
			{Nodes: good.Stages[0].Nodes[:1], Slice: mig.Slice1g},
		}},
		"oom":     {Stages: []StageConfig{{Nodes: good.Stages[0].Nodes, Slice: mig.Slice1g}}},
		"badNode": {Stages: []StageConfig{{Nodes: []dag.NodeID{0, 1, 99}, Slice: mig.Slice4g}}},
		"backwards": {Stages: []StageConfig{
			{Nodes: good.Stages[0].Nodes[2:], Slice: mig.Slice4g},
			{Nodes: good.Stages[0].Nodes[:2], Slice: mig.Slice2g},
		}},
	}
	for name, cfg := range cases {
		if _, err := Launch(fn, cfg, LaunchOptions{}); err == nil {
			t.Errorf("config %q accepted", name)
		}
	}
}

func TestCloseIdempotentAndInvokeAfterClose(t *testing.T) {
	fn := mediumApp0()
	cfg, _ := configFor(t, fn, []mig.SliceType{mig.Slice4g})
	inst, err := Launch(fn, cfg, LaunchOptions{Preloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	inst.Close() // must not panic
	ch := inst.Invoke(0)
	if _, ok := <-ch; ok {
		t.Error("Invoke after Close delivered a result")
	}
}

func TestFromPlanArityMismatch(t *testing.T) {
	fn := mediumApp0()
	d := fn.app.BuildDAG(fn.variant)
	plan, err := pipeline.Monolithic(d, mig.Slice4g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromPlan(plan, []string{"a", "b"}); err == nil {
		t.Error("FromPlan accepted wrong slice ID count")
	}
}

// The Fig. 7 example: five modules with a fork at the entry.
func TestFig7StyleFunction(t *testing.T) {
	mk := func(name string, ms float64) *StaticModule {
		exec := map[mig.SliceType]float64{}
		for _, st := range mig.SliceTypes {
			exec[st] = ms
		}
		return &StaticModule{ModuleName: name, Mem: 2, Out: 4, Exec: exec}
	}
	fn := funcDef{
		name: "fig7",
		def: func(b *Builder) {
			x1 := b.Reg(mk("m1", 0.01), Input)
			x2 := b.Reg(mk("m2", 0.01), Input)
			x3 := b.Reg(mk("m3", 0.02), x1, x2)
			x4 := b.Reg(mk("m4", 0.02), x3)
			b.Reg(mk("m5", 0.02), x4)
		},
	}
	d, err := BuildDAG(fn)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("nodes = %d, want 5", d.Len())
	}
	segs, err := d.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Errorf("segments = %d, want 4 (fork collapses)", len(segs))
	}
}

type funcDef struct {
	name string
	def  func(b *Builder)
}

func (f funcDef) Name() string      { return f.name }
func (f funcDef) DefDAG(b *Builder) { f.def(b) }

// TestConcurrentInvokers stresses the RUN-mode runtime: many goroutines
// invoking one pipelined instance concurrently (run under -race).
func TestConcurrentInvokers(t *testing.T) {
	fn := mediumApp0()
	cfg, _ := configFor(t, fn, []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g})
	inst, err := Launch(fn, cfg, LaunchOptions{Preloaded: true, LoadTime: func(m float64) float64 { return m / 12 }})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	const workers, perWorker = 8, 25
	results := make(chan Result, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				results <- inst.InvokeWait(float64(w*perWorker+i) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	close(results)
	n := 0
	for r := range results {
		n++
		if r.ExecTime <= 0 {
			t.Fatal("zero exec time")
		}
	}
	if n != workers*perWorker {
		t.Fatalf("results = %d, want %d", n, workers*perWorker)
	}
	served, _ := inst.StageStats()
	for i, s := range served {
		if s != workers*perWorker {
			t.Errorf("stage %d served %d", i, s)
		}
	}
	// Evict while idle, then serve again: still consistent.
	for i := 0; i < inst.Stages(); i++ {
		inst.EvictStage(i)
	}
	res := inst.InvokeWait(1000)
	if res.LoadTime <= 0 {
		t.Error("post-eviction request paid no reload")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	fn := mediumApp0()
	cfg, _ := configFor(t, fn, []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g})
	cfg.QueueCap = 32
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(cfg.Stages) || back.QueueCap != 32 {
		t.Fatalf("round trip mangled config: %+v", back)
	}
	for i := range cfg.Stages {
		if back.Stages[i].Slice != cfg.Stages[i].Slice ||
			back.Stages[i].SliceID != cfg.Stages[i].SliceID ||
			len(back.Stages[i].Nodes) != len(cfg.Stages[i].Nodes) {
			t.Fatalf("stage %d mismatch: %+v vs %+v", i, back.Stages[i], cfg.Stages[i])
		}
	}
	// A round-tripped config launches.
	inst, err := Launch(fn, back, LaunchOptions{Preloaded: true})
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	// Bad slice names are rejected.
	if err := json.Unmarshal([]byte(`{"stages":[{"nodes":[0],"slice":"9g.90gb"}]}`), &back); err == nil {
		t.Error("bogus slice profile accepted")
	}
}
