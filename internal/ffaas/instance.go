package ffaas

import (
	"fmt"
	"sync"

	"fluidfaas/internal/dag"
)

// Result reports the virtual-time breakdown of one request through an
// instance (the components of Fig. 14's latency breakdown).
type Result struct {
	// Latency is the end-to-end virtual latency from arrival to result.
	Latency float64
	// QueueTime is time spent waiting for stage slices.
	QueueTime float64
	// ExecTime is time spent executing components.
	ExecTime float64
	// TransferTime is time spent in host shared-memory hops.
	TransferTime float64
	// LoadTime is reload penalty paid after evictions.
	LoadTime float64
	// StageTimes lists per-stage service times.
	StageTimes []float64
}

type job struct {
	arrival float64 // virtual arrival time at the current stage
	res     Result
	done    chan Result
}

// stageProc is one stage process: the analog of the per-MIG process of
// Listing 1, with its shared-memory input queue and eviction flag.
type stageProc struct {
	idx      int
	cfg      StageConfig
	exec     float64 // service time on the stage's slice
	transfer float64 // hop cost to the next stage
	memGB    float64
	loadTime func(memGB float64) float64

	inbox chan *job
	next  *stageProc

	mu          sync.Mutex
	availableAt float64 // virtual time the slice frees up
	loaded      bool
	evict       bool
	served      uint64
	busy        float64
}

func (s *stageProc) run(wg *sync.WaitGroup, final func(*job)) {
	defer wg.Done()
	for j := range s.inbox {
		s.mu.Lock()
		start := j.arrival
		if s.availableAt > start {
			start = s.availableAt
		}
		j.res.QueueTime += start - j.arrival
		if s.evict {
			s.loaded = false
			s.evict = false
		}
		service := s.exec
		if !s.loaded {
			load := s.loadTime(s.memGB)
			j.res.LoadTime += load
			service += load
			s.loaded = true
		}
		finish := start + service
		s.availableAt = finish
		s.served++
		s.busy += service
		s.mu.Unlock()

		j.res.ExecTime += s.exec
		j.res.StageTimes = append(j.res.StageTimes, service)
		if s.next != nil {
			j.res.TransferTime += s.transfer
			j.arrival = finish + s.transfer
			s.next.inbox <- j
		} else {
			j.arrival = finish
			final(j)
		}
	}
	if s.next != nil {
		close(s.next.inbox)
	}
}

// Evict raises the stage's eviction flag: the model is dropped from the
// slice after the in-flight request, and the next request pays the
// reload (Listing 1's self.eviction).
func (s *stageProc) Evict() {
	s.mu.Lock()
	s.evict = true
	s.mu.Unlock()
}

// Instance is a running FluidFaaS function: RUN-mode initialisation has
// imported the DAG and the configuration layer, and one stage process
// serves each assigned MIG slice.
type Instance struct {
	name   string
	d      *dag.DAG
	cfg    Config
	stages []*stageProc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// LoadTimeFunc models how long (re)loading memGB of model state onto a
// slice takes.
type LoadTimeFunc func(memGB float64) float64

// LaunchOptions tune instance startup.
type LaunchOptions struct {
	// LoadTime models reload cost after eviction; nil means models are
	// pre-loaded and reloads are free (exclusive-hot behaviour).
	LoadTime LoadTimeFunc
	// Preloaded marks models as already resident (no first-request load).
	Preloaded bool
}

// Launch runs the function in RUN mode under the given configuration
// layer: it validates the stage assignment against the DAG and starts
// the stage processes (Listing 1's _start_processes).
func Launch(fn Function, cfg Config, opts LaunchOptions) (*Instance, error) {
	d, err := BuildDAG(fn)
	if err != nil {
		return nil, err
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("ffaas: %s: empty configuration layer", fn.Name())
	}
	// Stage coverage: every node exactly once, in topological order.
	seen := make(map[dag.NodeID]int)
	for si, sc := range cfg.Stages {
		for _, n := range sc.Nodes {
			if int(n) < 0 || int(n) >= d.Len() {
				return nil, fmt.Errorf("ffaas: %s: stage %d references unknown node %d", fn.Name(), si, n)
			}
			if _, dup := seen[n]; dup {
				return nil, fmt.Errorf("ffaas: %s: node %d assigned twice", fn.Name(), n)
			}
			seen[n] = si
		}
	}
	if len(seen) != d.Len() {
		return nil, fmt.Errorf("ffaas: %s: %d of %d nodes assigned", fn.Name(), len(seen), d.Len())
	}
	for u := 0; u < d.Len(); u++ {
		for _, v := range d.Succ(dag.NodeID(u)) {
			if seen[v] < seen[dag.NodeID(u)] {
				return nil, fmt.Errorf("ffaas: %s: edge %d->%d crosses stages backwards", fn.Name(), u, v)
			}
		}
	}

	loadTime := opts.LoadTime
	if loadTime == nil {
		loadTime = func(float64) float64 { return 0 }
	}
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = 64
	}

	inst := &Instance{name: fn.Name(), d: d, cfg: cfg}
	for si, sc := range cfg.Stages {
		exec := 0.0
		mem := 0.0
		inStage := make(map[dag.NodeID]bool, len(sc.Nodes))
		for _, n := range sc.Nodes {
			inStage[n] = true
		}
		for _, n := range sc.Nodes {
			t, ok := d.Node(n).ExecOn(sc.Slice)
			if !ok {
				return nil, fmt.Errorf("ffaas: %s: node %s cannot run on %s",
					fn.Name(), d.Node(n).Name, sc.Slice)
			}
			exec += t
			mem += d.Node(n).MemGB
			for _, v := range d.Succ(n) {
				if inStage[v] {
					exec += dag.IntraTransfer
				}
			}
		}
		if mem > float64(sc.Slice.MemGB()) {
			return nil, fmt.Errorf("ffaas: %s: stage %d needs %.1f GB on %s",
				fn.Name(), si, mem, sc.Slice)
		}
		transfer := 0.0
		if si < len(cfg.Stages)-1 {
			out := 0.0
			for _, n := range sc.Nodes {
				for _, v := range d.Succ(n) {
					if !inStage[v] && d.Node(n).OutMB > out {
						out = d.Node(n).OutMB
					}
				}
			}
			transfer = d.HopTime(out)
		}
		inst.stages = append(inst.stages, &stageProc{
			idx:      si,
			cfg:      sc,
			exec:     exec,
			transfer: transfer,
			memGB:    mem,
			loadTime: loadTime,
			inbox:    make(chan *job, qcap),
			loaded:   opts.Preloaded,
		})
	}
	for i := 0; i < len(inst.stages)-1; i++ {
		inst.stages[i].next = inst.stages[i+1]
	}
	for _, s := range inst.stages {
		inst.wg.Add(1)
		go s.run(&inst.wg, func(j *job) {
			j.res.Latency = j.res.QueueTime + j.res.ExecTime + j.res.TransferTime + j.res.LoadTime
			j.done <- j.res
		})
	}
	return inst, nil
}

// Name returns the function name.
func (inst *Instance) Name() string { return inst.name }

// Stages returns the number of pipeline stages.
func (inst *Instance) Stages() int { return len(inst.stages) }

// Invoke submits a request arriving at the given virtual time and
// returns a channel delivering its Result. Arrival times should be
// non-decreasing across calls for meaningful queueing.
func (inst *Instance) Invoke(arrival float64) <-chan Result {
	done := make(chan Result, 1)
	inst.mu.Lock()
	if inst.closed {
		inst.mu.Unlock()
		close(done)
		return done
	}
	inst.mu.Unlock()
	inst.stages[0].inbox <- &job{arrival: arrival, done: done}
	return done
}

// InvokeWait submits a request and blocks for its Result.
func (inst *Instance) InvokeWait(arrival float64) Result {
	return <-inst.Invoke(arrival)
}

// EvictStage raises stage i's eviction flag.
func (inst *Instance) EvictStage(i int) { inst.stages[i].Evict() }

// StageStats reports per-stage served counts and busy time.
func (inst *Instance) StageStats() (served []uint64, busy []float64) {
	for _, s := range inst.stages {
		s.mu.Lock()
		served = append(served, s.served)
		busy = append(busy, s.busy)
		s.mu.Unlock()
	}
	return served, busy
}

// Close terminates the stage processes after in-flight requests drain
// (Listing 1's _terminate_processes). It is idempotent.
func (inst *Instance) Close() {
	inst.mu.Lock()
	if inst.closed {
		inst.mu.Unlock()
		return
	}
	inst.closed = true
	inst.mu.Unlock()
	close(inst.stages[0].inbox)
	inst.wg.Wait()
}
