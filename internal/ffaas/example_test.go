package ffaas_test

import (
	"fmt"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/ffaas"
	"fluidfaas/internal/mig"
)

// twoStage is a minimal developer-written FluidFaaS function.
type twoStage struct{}

func (twoStage) Name() string { return "two-stage" }

func (twoStage) DefDAG(b *ffaas.Builder) {
	exec := func(ms float64) map[mig.SliceType]float64 {
		m := map[mig.SliceType]float64{}
		for _, t := range mig.SliceTypes {
			m[t] = ms / 1000
		}
		return m
	}
	x := b.Reg(&ffaas.StaticModule{
		ModuleName: "encoder", Mem: 6, Out: 8, Exec: exec(40),
	}, ffaas.Input)
	b.Reg(&ffaas.StaticModule{
		ModuleName: "decoder", Mem: 4, Out: 1, Exec: exec(30),
	}, x)
}

// Example walks the whole FluidFaaS function lifecycle: BUILDDAG-mode
// profiling, the configuration layer written by the invoker, and
// RUN-mode execution through the per-slice stage processes.
func Example() {
	fn := twoStage{}

	// BUILDDAG mode.
	_, profiles, _ := ffaas.Profile(fn)
	for _, p := range profiles {
		fmt.Printf("%s: %.0f GB\n", p.Name, p.MemGB)
	}

	// The invoker decided on a two-stage pipeline over two 1g slices
	// and wrote it to the configuration layer.
	cfg := ffaas.Config{Stages: []ffaas.StageConfig{
		{Nodes: []dag.NodeID{0}, Slice: mig.Slice1g, SliceID: "gpu0/1g#0"},
		{Nodes: []dag.NodeID{1}, Slice: mig.Slice1g, SliceID: "gpu1/1g#0"},
	}}

	// RUN mode.
	inst, err := ffaas.Launch(fn, cfg, ffaas.LaunchOptions{Preloaded: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer inst.Close()
	res := inst.InvokeWait(0)
	fmt.Printf("stages: %d\n", inst.Stages())
	fmt.Printf("exec: %.0f ms\n", res.ExecTime*1000)
	fmt.Printf("queue: %.0f ms\n", res.QueueTime*1000)
	// Output:
	// encoder: 6 GB
	// decoder: 4 GB
	// stages: 2
	// exec: 70 ms
	// queue: 0 ms
}
