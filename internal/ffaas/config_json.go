package ffaas

import (
	"encoding/json"
	"fmt"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// The configuration layer is a real artifact in the deployed system: the
// invoker writes the pipeline structure and MIG assignment into the
// function's container before launch (§5.2.1). These helpers give it a
// stable JSON wire form.

type stageConfigJSON struct {
	Nodes   []int  `json:"nodes"`
	Slice   string `json:"slice"`
	SliceID string `json:"slice_id"`
}

type configJSON struct {
	Stages   []stageConfigJSON `json:"stages"`
	QueueCap int               `json:"queue_cap,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c Config) MarshalJSON() ([]byte, error) {
	out := configJSON{QueueCap: c.QueueCap}
	for _, sc := range c.Stages {
		nodes := make([]int, len(sc.Nodes))
		for i, n := range sc.Nodes {
			nodes[i] = int(n)
		}
		out.Stages = append(out.Stages, stageConfigJSON{
			Nodes:   nodes,
			Slice:   sc.Slice.String(),
			SliceID: sc.SliceID,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Config) UnmarshalJSON(data []byte) error {
	var in configJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("ffaas: config: %w", err)
	}
	out := Config{QueueCap: in.QueueCap}
	for i, sc := range in.Stages {
		t, err := mig.ParseSliceType(sc.Slice)
		if err != nil {
			return fmt.Errorf("ffaas: config stage %d: %w", i, err)
		}
		nodes := make([]dag.NodeID, len(sc.Nodes))
		for j, n := range sc.Nodes {
			nodes[j] = dag.NodeID(n)
		}
		out.Stages = append(out.Stages, StageConfig{
			Nodes:   nodes,
			Slice:   t,
			SliceID: sc.SliceID,
		})
	}
	*c = out
	return nil
}
