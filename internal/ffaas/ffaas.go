// Package ffaas is the FluidFaaS programming model (paper §5.2.1,
// Fig. 7): developers wrap each DNN component in a Module, register the
// components and their dataflow in DefDAG, and the runtime takes care of
// everything else. A FluidFaaS function initialises in one of two modes —
// BuildDAG (construct and profile the FFS DAG) or Run (import the DAG
// and the MIG assignment the invoker wrote to the configuration layer,
// then execute stages as communicating processes, Listing 1).
//
// The Run-mode runtime here is a real concurrent pipeline: one goroutine
// per stage ("a separate process for each MIG"), channels standing in
// for the shared-memory queues, and per-stage eviction flags. Model
// execution advances virtual time (profiles drive durations) so examples
// and tests run instantly while reproducing queueing behaviour exactly.
package ffaas

import (
	"fmt"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// Module is the analog of FluidFaaS.Module: the thin wrapper developers
// put around a DNN model. Implementations supply the profile the
// invoker's pipeline construction consumes.
type Module interface {
	// Name identifies the component.
	Name() string
	// MemGB is the component's GPU memory footprint.
	MemGB() float64
	// OutMB is the component's output tensor size.
	OutMB() float64
	// ExecOn returns the inference time on a slice profile, and whether
	// the component fits it.
	ExecOn(t mig.SliceType) (float64, bool)
}

// StaticModule is a Module backed by explicit profile data — the common
// case for profiled DNN models.
type StaticModule struct {
	ModuleName string
	Mem        float64
	Out        float64
	Exec       map[mig.SliceType]float64
}

// Name implements Module.
func (m *StaticModule) Name() string { return m.ModuleName }

// MemGB implements Module.
func (m *StaticModule) MemGB() float64 { return m.Mem }

// OutMB implements Module.
func (m *StaticModule) OutMB() float64 { return m.Out }

// ExecOn implements Module.
func (m *StaticModule) ExecOn(t mig.SliceType) (float64, bool) {
	d, ok := m.Exec[t]
	return d, ok
}

// Handle is a dataflow value returned by Reg, used to wire components
// together (the x1, x2, ... of Fig. 7). The zero Handle is the function
// input.
type Handle struct {
	node dag.NodeID
	set  bool
}

// Input is the function's external input (the event payload).
var Input = Handle{}

// Builder collects component registrations during DefDAG.
type Builder struct {
	d *dag.DAG
}

// Reg registers a component and its inputs in the FFS DAG and returns a
// handle to its output — the analog of FluidFaaS.Module.reg.
func (b *Builder) Reg(m Module, inputs ...Handle) Handle {
	exec := make(map[mig.SliceType]float64)
	for _, t := range mig.SliceTypes {
		if d, ok := m.ExecOn(t); ok {
			exec[t] = d
		}
	}
	id := b.d.AddNode(dag.Node{
		Name:  m.Name(),
		MemGB: m.MemGB(),
		OutMB: m.OutMB(),
		Exec:  exec,
	})
	for _, in := range inputs {
		if in.set {
			b.d.AddEdge(in.node, id)
		}
	}
	return Handle{node: id, set: true}
}

// Function is what a developer writes: a name and the DAG definition.
// It is the Go analog of subclassing FFaaS and overriding defDAG.
type Function interface {
	Name() string
	DefDAG(b *Builder)
}

// Mode selects how a FluidFaaS function initialises (Fig. 7's RUN and
// BUILDDAG entry points).
type Mode int

// Initialisation modes.
const (
	// BuildDAGMode constructs the FFS DAG and profiles its components.
	BuildDAGMode Mode = iota
	// RunMode imports the DAG and the invoker's MIG assignment from the
	// configuration layer and serves requests.
	RunMode
)

// BuildDAG runs the function in BUILDDAG mode and returns its validated
// FFS DAG.
func BuildDAG(fn Function) (*dag.DAG, error) {
	b := &Builder{d: dag.New()}
	fn.DefDAG(b)
	if err := b.d.Validate(); err != nil {
		return nil, fmt.Errorf("ffaas: %s: %w", fn.Name(), err)
	}
	return b.d, nil
}

// ComponentProfile is one row of the profiling output: the per-slice-type
// execution times and memory of one component.
type ComponentProfile struct {
	Node  dag.NodeID
	Name  string
	MemGB float64
	Exec  map[mig.SliceType]float64
}

// Profile runs the function in BUILDDAG mode and returns the per-node
// performance profiles the invoker's pipeline construction consumes
// (Fig. 6a: "profiles").
func Profile(fn Function) (*dag.DAG, []ComponentProfile, error) {
	d, err := BuildDAG(fn)
	if err != nil {
		return nil, nil, err
	}
	profs := make([]ComponentProfile, d.Len())
	for i := 0; i < d.Len(); i++ {
		n := d.Node(dag.NodeID(i))
		exec := make(map[mig.SliceType]float64, len(n.Exec))
		for k, v := range n.Exec {
			exec[k] = v
		}
		profs[i] = ComponentProfile{
			Node:  dag.NodeID(i),
			Name:  n.Name,
			MemGB: n.MemGB,
			Exec:  exec,
		}
	}
	return d, profs, nil
}

// StageConfig is one stage of the deployment the invoker decided on.
type StageConfig struct {
	// Nodes of the FFS DAG executing in this stage.
	Nodes []dag.NodeID
	// Slice profile the stage runs on.
	Slice mig.SliceType
	// SliceID names the physical slice (CUDA_VISIBLE_DEVICES analog).
	SliceID string
}

// Config is the configuration layer of a FluidFaaS function: the invoker
// writes the pipeline structure and MIG assignment here before launching
// the instance (§5.2.1), and RUN-mode initialisation imports it.
type Config struct {
	Stages []StageConfig
	// QueueCap bounds each stage's job queue (the shared-memory queue
	// depth); 0 means a reasonable default.
	QueueCap int
}

// FromPlan converts an invoker pipeline plan plus physical slice IDs to
// a Config.
func FromPlan(plan pipeline.Plan, sliceIDs []string) (Config, error) {
	if len(sliceIDs) != len(plan.Stages) {
		return Config{}, fmt.Errorf("ffaas: %d slice IDs for %d stages",
			len(sliceIDs), len(plan.Stages))
	}
	var cfg Config
	for i, sp := range plan.Stages {
		cfg.Stages = append(cfg.Stages, StageConfig{
			Nodes:   sp.Stage.Nodes,
			Slice:   sp.SliceType,
			SliceID: sliceIDs[i],
		})
	}
	return cfg, nil
}
