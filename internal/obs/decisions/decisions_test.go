package decisions

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestKindNames: every kind round-trips String -> ParseKind, the name
// table covers exactly the declared kinds, and JSON marshalling uses
// names, not integers.
func TestKindNames(t *testing.T) {
	if len(kindNames) != int(numKinds) {
		t.Fatalf("kindNames has %d entries, want %d", len(kindNames), numKinds)
	}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, back, err, k)
		}
		b, err := json.Marshal(k)
		if err != nil || string(b) != `"`+name+`"` {
			t.Errorf("Marshal(%v) = %s, %v", k, b, err)
		}
		var rt Kind
		if err := json.Unmarshal(b, &rt); err != nil || rt != k {
			t.Errorf("Unmarshal(%s) = %v, %v", b, rt, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
}

// TestNilRecorder: every method on a nil *Recorder is a safe no-op, so
// call sites never need a nil check around arguments-free calls.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(Record{Kind: KindAdmit, Req: 1})
	r.Freeze(1, "x")
	if r.Total() != 0 || r.Dropped() != 0 || r.Freezes() != 0 {
		t.Error("nil recorder reports non-zero totals")
	}
	if r.Chain(1) != nil || r.Snapshot() != nil || r.Counts() != nil ||
		r.Dumps() != nil || r.Requests() != nil {
		t.Error("nil recorder returns non-nil collections")
	}
	if cancel := r.Subscribe(func(Record) {}); cancel == nil {
		t.Error("nil recorder Subscribe returned nil cancel")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	var exp Export
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil || exp.Total != 0 {
		t.Errorf("nil WriteJSON produced %q", buf.String())
	}
	buf.Reset()
	if err := r.WriteChainJSON(&buf, 3); err != nil {
		t.Errorf("nil WriteChainJSON: %v", err)
	}
}

// TestRecorderChains: records are sequenced in arrival order, chains
// are per-request and lossless across ring wraparound, and counts
// aggregate by kind.
func TestRecorderChains(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Record{Kind: KindAdmit, Req: i % 2, Outcome: "ok"})
	}
	r.Record(Record{Kind: KindBrownout, Req: NoRequest})
	if r.Total() != 11 || r.Dropped() != 7 {
		t.Errorf("total %d dropped %d, want 11/7", r.Total(), r.Dropped())
	}
	chain := r.Chain(0)
	if len(chain) != 5 {
		t.Fatalf("chain(0) len = %d, want 5 (lossless past ring wrap)", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i].Seq <= chain[i-1].Seq {
			t.Fatalf("chain not seq-ordered: %+v", chain)
		}
	}
	if got := r.Requests(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Requests() = %v, want [0 1]", got)
	}
	counts := r.Counts()
	if counts["admit"] != 10 || counts["brownout"] != 1 || len(counts) != 2 {
		t.Errorf("Counts() = %v", counts)
	}
	if len(r.Snapshot()) != 4 {
		t.Errorf("snapshot len = %d, want ring capacity 4", len(r.Snapshot()))
	}
}

// TestRecorderFreeze: freezing snapshots the ring into a dump; dumps
// are capped at maxDumps while the freeze counter keeps counting.
func TestRecorderFreeze(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Record{Kind: KindQuarantine, Req: NoRequest, Subject: "s1"})
	r.Freeze(10, "quarantine s1")
	dumps := r.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "quarantine s1" ||
		dumps[0].Time != 10 || len(dumps[0].Records) != 1 {
		t.Fatalf("dump = %+v", dumps)
	}
	for i := 0; i < maxDumps+3; i++ {
		r.Freeze(float64(i), "again")
	}
	if len(r.Dumps()) != maxDumps {
		t.Errorf("dumps retained = %d, want cap %d", len(r.Dumps()), maxDumps)
	}
	if r.Freezes() != maxDumps+4 {
		t.Errorf("Freezes() = %d, want %d", r.Freezes(), maxDumps+4)
	}
}

// TestRecorderSubscribe: a subscriber sees records as they are made,
// already stamped with their sequence number.
func TestRecorderSubscribe(t *testing.T) {
	r := NewRecorder(2)
	var seqs []int
	cancel := r.Subscribe(func(rec Record) { seqs = append(seqs, rec.Seq) })
	r.Record(Record{Kind: KindAdmit, Req: 1})
	r.Record(Record{Kind: KindReject, Req: 2})
	cancel()
	r.Record(Record{Kind: KindDrop, Req: 3})
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Errorf("subscriber seqs = %v, want [0 1]", seqs)
	}
}

// TestWriteJSONDeterministic: the export is byte-stable across repeated
// writes — the property the CI determinism smoke diffs against.
func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Record{Time: 1.5, Kind: KindAdmit, Func: "f", Req: 0, Subject: "s",
		Rule: "rule", Outcome: "ok",
		Inputs:     []KV{{K: "a", V: "1"}},
		Candidates: []Candidate{{ID: "c", Reason: "busy"}}})
	r.Record(Record{Time: 2, Kind: KindHedgeSpawn, Req: 0, Outcome: "dup"})
	r.Freeze(3, "anomaly")
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteJSON not byte-stable")
	}
	var c, d bytes.Buffer
	if err := r.WriteChainJSON(&c, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChainJSON(&d, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("WriteChainJSON not byte-stable")
	}
	var exp Export
	if err := json.Unmarshal(a.Bytes(), &exp); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}
	if exp.Total != 2 || exp.Freezes != 1 || len(exp.Dumps) != 1 {
		t.Errorf("export = %+v", exp)
	}
}
