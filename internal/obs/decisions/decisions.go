// Package decisions records *why* the scheduler did what it did: a
// typed, deterministic provenance trail of every choice point in the
// platform — admission and rejection, plan-cache lookups, slice binds,
// demotions and swap evictions, brownout transitions, quarantines,
// hedge spawns and settlements, fault retries and drops. Where the obs
// recorder captures what happened (spans, marks, counters), a decision
// record captures the inputs the decider saw, the candidates it
// rejected and the rule that fired, causally linked to the request's
// span chain by request ID and attempt.
//
// Records flow through an obs.Bus ring (bounded, counted, live
// subscribable) for the /decisions stream, and additionally into
// per-request chains kept lossless so /why?req=<id> can replay a
// request's complete fate even after the ring has wrapped. An
// anomaly-triggered Freeze snapshots the ring into a bounded dump list
// for post-mortems (SLO burn-rate pages and quarantines freeze; see
// DESIGN.md §15).
//
// A nil *Recorder is the off switch: every method is nil-receiver safe
// and call sites guard any argument construction behind a nil check, so
// a run without a recorder is bit-identical to one built before this
// package existed (enforced by TestDecisionsDisabledIdentity).
package decisions

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"fluidfaas/internal/obs"
)

// Kind classifies a scheduling decision.
type Kind int

// Decision kinds, one per choice point in the scheduler stack.
const (
	// KindAdmit: admission routed a request (to an exclusive instance,
	// a time-sharing binding, a fresh binding, or the pending queue).
	KindAdmit Kind = iota
	// KindReject: admission control refused a request (see Rule for the
	// typed reason).
	KindReject
	// KindPlanHit: a placement lookup was served from the plan cache.
	KindPlanHit
	// KindPlanMiss: a placement lookup ran the full constructor and
	// populated the cache.
	KindPlanMiss
	// KindPlanUncached: a placement lookup bypassed the cache (counts
	// multiset overflowed the signature).
	KindPlanUncached
	// KindBind: capacity was bound — an exclusive instance launched on
	// slices, or a function bound to a time-sharing pool slice.
	KindBind
	// KindDemote: an idle exclusive instance was demoted to time
	// sharing.
	KindDemote
	// KindSwapEvict: a model's host-pool copy was evicted under memory
	// pressure.
	KindSwapEvict
	// KindSwapRelief: brownout pressure swapped an idle model out of
	// GPU memory.
	KindSwapRelief
	// KindBrownout: the degradation ladder changed level.
	KindBrownout
	// KindSuspect: a slice's health score crossed the suspect
	// threshold, or recovered back to healthy, or was readmitted on
	// probation (see Outcome).
	KindSuspect
	// KindQuarantine: a suspect slice was quarantined and torn down.
	KindQuarantine
	// KindHedgeSpawn: a request at deadline risk on a suspect slice
	// launched a duplicate.
	KindHedgeSpawn
	// KindHedgeSettle: a hedged pair resolved — one copy won, the other
	// was swallowed or cancelled.
	KindHedgeSettle
	// KindRetry: a request that lost its hardware was re-routed with
	// backoff.
	KindRetry
	// KindDrop: a request was abandoned (stale in queue, retries
	// exhausted, or run end).
	KindDrop

	numKinds
)

// String names the kind as it appears in JSON exports and filters.
func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindReject:
		return "reject"
	case KindPlanHit:
		return "plan-hit"
	case KindPlanMiss:
		return "plan-miss"
	case KindPlanUncached:
		return "plan-uncached"
	case KindBind:
		return "bind"
	case KindDemote:
		return "demote"
	case KindSwapEvict:
		return "swap-evict"
	case KindSwapRelief:
		return "swap-relief"
	case KindBrownout:
		return "brownout"
	case KindSuspect:
		return "suspect"
	case KindQuarantine:
		return "quarantine"
	case KindHedgeSpawn:
		return "hedge-spawn"
	case KindHedgeSettle:
		return "hedge-settle"
	case KindRetry:
		return "retry"
	case KindDrop:
		return "drop"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindNames maps parseable names back to kinds, for /decisions filters.
// Kept in sync with String by TestKindNames.
var kindNames = map[string]Kind{
	"admit": KindAdmit, "reject": KindReject,
	"plan-hit": KindPlanHit, "plan-miss": KindPlanMiss,
	"plan-uncached": KindPlanUncached,
	"bind":          KindBind, "demote": KindDemote,
	"swap-evict": KindSwapEvict, "swap-relief": KindSwapRelief,
	"brownout": KindBrownout, "suspect": KindSuspect,
	"quarantine": KindQuarantine, "hedge-spawn": KindHedgeSpawn,
	"hedge-settle": KindHedgeSettle, "retry": KindRetry,
	"drop": KindDrop,
}

// ParseKind resolves a kind name as rendered by Kind.String.
func ParseKind(name string) (Kind, error) {
	if k, ok := kindNames[strings.TrimSpace(name)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("decisions: unknown kind %q", name)
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// KV is one named input a decider saw, with the value rendered to a
// string by the call site (ordered slices, not maps, so records marshal
// deterministically).
type KV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Candidate is one alternative the decider considered and passed over,
// with the reason it lost.
type Candidate struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

// NoRequest is the Req value of platform-scoped decisions (binds,
// brownout transitions, quarantines, evictions) that are not tied to a
// single request.
const NoRequest = -1

// Record is one scheduling decision.
type Record struct {
	// Seq is the recorder-assigned sequence number (0-based, total
	// order over all decisions in a run).
	Seq int `json:"seq"`
	// Time is the virtual time the decision was made.
	Time float64 `json:"time"`
	// Kind classifies the decision.
	Kind Kind `json:"kind"`
	// Func names the deciding function ("" for platform-wide decisions
	// such as brownout transitions).
	Func string `json:"func,omitempty"`
	// Req is the request the decision is about, NoRequest (-1) for
	// platform-scoped decisions. Request-scoped records form the /why
	// chain.
	Req int `json:"req"`
	// Attempt is the request's attempt number at decision time (0 =
	// first try), linking the record to the matching obs span chain.
	Attempt int `json:"attempt,omitempty"`
	// Subject is the object decided about or chosen: an instance ID,
	// slice ID, model key or ladder level.
	Subject string `json:"subject,omitempty"`
	// Rule names the policy clause that fired (e.g. "route-exclusive",
	// "deadline-estimate", "retry-abandoned").
	Rule string `json:"rule,omitempty"`
	// Outcome states what was decided, human-readable.
	Outcome string `json:"outcome"`
	// Inputs are the signals the decider saw (pressure, scores,
	// estimates, cache signatures), in a fixed call-site order.
	Inputs []KV `json:"inputs,omitempty"`
	// Candidates are the alternatives considered and rejected, with
	// per-candidate reasons, in consideration order.
	Candidates []Candidate `json:"candidates,omitempty"`
}

// Dump is one frozen ring snapshot, captured when an anomaly fired.
type Dump struct {
	// Time is the virtual time of the freeze.
	Time float64 `json:"time"`
	// Reason says what anomaly triggered it ("quarantine gpu0/g0/s1",
	// "slo-burn: 2 pages").
	Reason string `json:"reason"`
	// Total and Dropped are the ring counters at freeze time; Records
	// is the retained window, oldest first.
	Total   int      `json:"total"`
	Dropped int      `json:"dropped"`
	Records []Record `json:"records"`
}

// maxDumps bounds retained anomaly dumps; later freezes are counted but
// not stored, so a quarantine storm cannot hoard memory.
const maxDumps = 8

// Recorder collects decision records. It is nil-safe: every method on a
// nil receiver is a no-op (or returns a zero value), so provenance can
// be compiled in everywhere and switched off by not constructing one.
//
// The ring (an obs.Bus) bounds the global stream; per-request chains
// are kept separately and losslessly so a request's complete fate
// survives ring wraparound. A mutex guards the chain and dump state for
// live readers; the bus has its own.
type Recorder struct {
	bus *obs.Bus[Record]

	mu     sync.Mutex
	seq    int
	byReq  map[int][]Record
	counts [numKinds]int
	dumps  []Dump
	frozen int // freezes triggered, including those past maxDumps
}

// NewRecorder returns a recorder whose ring retains the newest ringCap
// records (obs.DefaultBusCapacity when ringCap <= 0).
func NewRecorder(ringCap int) *Recorder {
	return &Recorder{
		bus:   obs.NewBus[Record](ringCap),
		byReq: map[int][]Record{},
	}
}

// Record stamps rec with the next sequence number and stores it: into
// the ring always, and into the request's chain when rec.Req >=
// 0. Callers set every other field, including Time.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = r.seq
	r.seq++
	if rec.Kind >= 0 && rec.Kind < numKinds {
		r.counts[rec.Kind]++
	}
	if rec.Req >= 0 {
		r.byReq[rec.Req] = append(r.byReq[rec.Req], rec)
	}
	r.mu.Unlock()
	r.bus.Publish(rec)
}

// Freeze snapshots the ring into the dump list, tagged with the anomaly
// that triggered it. Beyond maxDumps the freeze is counted but the
// snapshot discarded.
func (r *Recorder) Freeze(now float64, reason string) {
	if r == nil {
		return
	}
	snap := r.bus.Snapshot()
	total, dropped := r.bus.Total(), r.bus.Dropped()
	r.mu.Lock()
	r.frozen++
	if len(r.dumps) < maxDumps {
		r.dumps = append(r.dumps, Dump{
			Time: now, Reason: reason,
			Total: total, Dropped: dropped, Records: snap,
		})
	}
	r.mu.Unlock()
}

// Chain returns the request's complete decision chain in decision
// order, nil when the request made no recorded decision (or r is nil).
func (r *Recorder) Chain(req int) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	chain := r.byReq[req]
	out := make([]Record, len(chain))
	copy(out, chain)
	return out
}

// Requests returns the IDs of all requests with a recorded chain,
// ascending.
func (r *Recorder) Requests() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.byReq))
	for id := range r.byReq {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Snapshot returns the ring's retained records, oldest first.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	return r.bus.Snapshot()
}

// Subscribe registers a live observer of every record (see
// obs.Bus.Subscribe). The cancel is a no-op on a nil recorder.
func (r *Recorder) Subscribe(fn func(Record)) (cancel func()) {
	if r == nil {
		return func() {}
	}
	return r.bus.Subscribe(fn)
}

// Total returns how many decisions were ever recorded.
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	return r.bus.Total()
}

// Dropped returns how many records the bounded ring overwrote
// (per-request chains retain them regardless).
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.bus.Dropped()
}

// Counts tallies decisions ever recorded by kind name, omitting zero
// kinds.
func (r *Recorder) Counts() map[string]int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for k, n := range r.counts {
		if n > 0 {
			out[Kind(k).String()] = n
		}
	}
	return out
}

// Dumps returns the retained anomaly dumps in freeze order.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// Freezes returns how many anomaly freezes fired (including any past
// the dump bound).
func (r *Recorder) Freezes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Export is the JSON document WriteJSON emits.
type Export struct {
	Total   int            `json:"total"`
	Dropped int            `json:"dropped"`
	Counts  map[string]int `json:"counts"`
	Freezes int            `json:"freezes,omitempty"`
	Records []Record       `json:"records"`
	Dumps   []Dump         `json:"dumps,omitempty"`
}

// WriteJSON writes the recorder's state as one deterministic JSON
// document: ring counters, per-kind tallies, the retained ring oldest
// first, and any anomaly dumps. Same run, same bytes (encoding/json
// sorts the Counts map).
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := Export{
		Total:   r.Total(),
		Dropped: r.Dropped(),
		Counts:  r.Counts(),
		Freezes: r.Freezes(),
		Records: r.Snapshot(),
		Dumps:   r.Dumps(),
	}
	if doc.Counts == nil {
		doc.Counts = map[string]int{}
	}
	if doc.Records == nil {
		doc.Records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ChainExport is the JSON document WriteChainJSON emits.
type ChainExport struct {
	Req   int      `json:"req"`
	Chain []Record `json:"chain"`
}

// WriteChainJSON writes one request's complete decision chain as JSON
// (an empty chain for unknown requests).
func (r *Recorder) WriteChainJSON(w io.Writer, req int) error {
	chain := r.Chain(req)
	if chain == nil {
		chain = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChainExport{Req: req, Chain: chain})
}
