package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus-style text exposition of the recorder's metrics:
// per-(function, outcome) request counts and latency histograms,
// per-slice busy-seconds and utilisation, lifecycle event totals, and
// driver-set gauges. The output is deterministic: series are emitted in
// sorted label order and floats use shortest-round-trip formatting, so
// identical recorder contents produce byte-identical files.

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the recorder's metrics in Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, r *Recorder) error {
	if r == nil {
		r = &Recorder{}
	}
	var b strings.Builder

	// Request counts and latency histograms, keyed (function, outcome).
	keys := sortedKeys(r.hists)
	b.WriteString("# HELP fluidfaas_requests_total Finalised requests by function and outcome.\n")
	b.WriteString("# TYPE fluidfaas_requests_total counter\n")
	for _, k := range keys {
		fn, outcome, _ := strings.Cut(k, histKeySep)
		fmt.Fprintf(&b, "fluidfaas_requests_total{func=%q,outcome=%q} %d\n",
			fn, outcome, r.hists[k].N)
	}
	b.WriteString("# HELP fluidfaas_request_latency_seconds End-to-end request latency.\n")
	b.WriteString("# TYPE fluidfaas_request_latency_seconds histogram\n")
	for _, k := range keys {
		fn, outcome, _ := strings.Cut(k, histKeySep)
		h := r.hists[k]
		cum := h.Cumulative()
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "fluidfaas_request_latency_seconds_bucket{func=%q,outcome=%q,le=%q} %d\n",
				fn, outcome, promFloat(bound), cum[i])
		}
		fmt.Fprintf(&b, "fluidfaas_request_latency_seconds_bucket{func=%q,outcome=%q,le=\"+Inf\"} %d\n",
			fn, outcome, h.N)
		fmt.Fprintf(&b, "fluidfaas_request_latency_seconds_sum{func=%q,outcome=%q} %s\n",
			fn, outcome, promFloat(h.Sum))
		fmt.Fprintf(&b, "fluidfaas_request_latency_seconds_count{func=%q,outcome=%q} %d\n",
			fn, outcome, h.N)
	}

	// Per-slice busy/idle utilisation counters, in track registration
	// order (stable and topology-meaningful). Busy seconds are computed
	// once per track and feed both series.
	tracks := r.Tracks()
	busy := make([]float64, len(tracks))
	for i, tr := range tracks {
		busy[i] = r.BusySeconds(tr.Name)
	}
	b.WriteString("# HELP fluidfaas_slice_busy_seconds_total Busy (load+exec) seconds per MIG slice.\n")
	b.WriteString("# TYPE fluidfaas_slice_busy_seconds_total counter\n")
	for i, tr := range tracks {
		fmt.Fprintf(&b, "fluidfaas_slice_busy_seconds_total{node=\"%d\",slice=%q} %s\n",
			tr.Node, tr.Name, promFloat(busy[i]))
	}
	if d := r.Duration(); d > 0 {
		b.WriteString("# HELP fluidfaas_slice_utilisation Busy fraction of the run per MIG slice.\n")
		b.WriteString("# TYPE fluidfaas_slice_utilisation gauge\n")
		for i, tr := range tracks {
			fmt.Fprintf(&b, "fluidfaas_slice_utilisation{node=\"%d\",slice=%q} %s\n",
				tr.Node, tr.Name, promFloat(busy[i]/d))
		}
	}

	// Lifecycle event totals by kind.
	b.WriteString("# HELP fluidfaas_events_total Platform lifecycle events by kind.\n")
	b.WriteString("# TYPE fluidfaas_events_total counter\n")
	for _, k := range sortedKeys(r.marks) {
		fmt.Fprintf(&b, "fluidfaas_events_total{kind=%q} %d\n", k, r.marks[k])
	}

	// Driver-set gauges (e.g. ring-dropped events, run duration).
	// sortedKeys already sorts; a second sort here was pure waste.
	for _, n := range sortedKeys(r.gauges) {
		fmt.Fprintf(&b, "# HELP %s Driver-set gauge.\n# TYPE %s gauge\n%s %s\n",
			n, n, n, promFloat(r.gauges[n]))
	}

	// Labeled gauge families (per-slice health scores, per-node pool
	// occupancy, per-reason reject counts), in family-name order with
	// samples in the caller's insertion order.
	for _, n := range sortedKeys(r.series) {
		s := r.series[n]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", n, s.help, n)
		for _, key := range s.order {
			if key == "" {
				fmt.Fprintf(&b, "%s %s\n", n, promFloat(s.points[key]))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", n, key, promFloat(s.points[key]))
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
