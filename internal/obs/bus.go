package obs

// Bus is a streaming fan-out of values with a bounded ring as the
// default sink. Subscribers see every published value synchronously and
// losslessly, in publish order; the ring retains only the newest
// Capacity values for after-the-fact inspection and counts what it
// overwrote instead of dropping silently. The zero value is unusable;
// build buses with NewBus.
//
// The bus is deliberately synchronous and single-goroutine (the
// simulation engine runs everything on one goroutine): Publish calls
// each subscriber inline, so subscribing observers cannot reorder or
// lose events, and determinism is preserved as long as subscribers only
// observe.
type Bus[T any] struct {
	capacity int
	buf      []T
	next     int
	total    int
	subs     []func(T)
}

// DefaultBusCapacity is the ring size when NewBus is given a
// non-positive capacity.
const DefaultBusCapacity = 4096

// NewBus returns a bus whose ring retains the newest capacity values
// (DefaultBusCapacity when capacity <= 0).
func NewBus[T any](capacity int) *Bus[T] {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus[T]{capacity: capacity}
}

// Capacity returns the ring's bound.
func (b *Bus[T]) Capacity() int { return b.capacity }

// Subscribe registers fn to be called synchronously with every value
// published after this point. The returned cancel function removes the
// subscription (idempotent).
func (b *Bus[T]) Subscribe(fn func(T)) (cancel func()) {
	b.subs = append(b.subs, fn)
	idx := len(b.subs) - 1
	return func() {
		if idx >= 0 && idx < len(b.subs) && b.subs[idx] != nil {
			b.subs[idx] = nil
		}
	}
}

// Publish appends v to the ring (overwriting the oldest value when
// full) and delivers it to every live subscriber in subscription order.
func (b *Bus[T]) Publish(v T) {
	if b.buf == nil {
		b.buf = make([]T, 0, b.capacity)
	}
	if len(b.buf) < b.capacity {
		b.buf = append(b.buf, v)
	} else {
		b.buf[b.next] = v
	}
	b.next = (b.next + 1) % b.capacity
	b.total++
	for _, fn := range b.subs {
		if fn != nil {
			fn(v)
		}
	}
}

// Total returns how many values were ever published.
func (b *Bus[T]) Total() int { return b.total }

// Retained returns how many values the ring currently holds.
func (b *Bus[T]) Retained() int { return len(b.buf) }

// Dropped returns how many published values the ring has overwritten —
// the loss a Snapshot consumer sees (subscribers see everything).
func (b *Bus[T]) Dropped() int { return b.total - len(b.buf) }

// Snapshot returns the retained values oldest-first.
func (b *Bus[T]) Snapshot() []T {
	if len(b.buf) < b.capacity {
		out := make([]T, len(b.buf))
		copy(out, b.buf)
		return out
	}
	out := make([]T, 0, b.capacity)
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}
