package obs

import "sync"

// Bus is a streaming fan-out of values with a bounded ring as the
// default sink. Subscribers see every published value synchronously and
// losslessly, in publish order; the ring retains only the newest
// Capacity values for after-the-fact inspection and counts what it
// overwrote instead of dropping silently. The zero value is unusable;
// build buses with NewBus.
//
// The bus is deliberately synchronous (the simulation engine runs
// everything on one goroutine): Publish calls each subscriber inline, so
// subscribing observers cannot reorder or lose events, and determinism
// is preserved as long as subscribers only observe. Ring and
// subscription state are additionally mutex-guarded so a live reader on
// another goroutine — the introspection server's /decisions endpoint,
// or a concurrent test — can Snapshot/Subscribe safely while the
// simulation publishes. Subscribers run outside the lock; under
// concurrent publishers their delivery order is the lock-acquisition
// order of the ring update.
type Bus[T any] struct {
	mu       sync.Mutex
	capacity int
	buf      []T
	next     int
	total    int
	subs     []func(T)
}

// DefaultBusCapacity is the ring size when NewBus is given a
// non-positive capacity.
const DefaultBusCapacity = 4096

// NewBus returns a bus whose ring retains the newest capacity values
// (DefaultBusCapacity when capacity <= 0).
func NewBus[T any](capacity int) *Bus[T] {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus[T]{capacity: capacity}
}

// Capacity returns the ring's bound.
func (b *Bus[T]) Capacity() int { return b.capacity }

// Subscribe registers fn to be called synchronously with every value
// published after this point. The returned cancel function removes the
// subscription (idempotent).
func (b *Bus[T]) Subscribe(fn func(T)) (cancel func()) {
	b.mu.Lock()
	b.subs = append(b.subs, fn)
	idx := len(b.subs) - 1
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		// Copy-on-write: an in-flight Publish may still be walking the
		// old slice outside the lock, so never nil a slot in place.
		if idx >= 0 && idx < len(b.subs) && b.subs[idx] != nil {
			subs := make([]func(T), len(b.subs))
			copy(subs, b.subs)
			subs[idx] = nil
			b.subs = subs
		}
		b.mu.Unlock()
	}
}

// Publish appends v to the ring (overwriting the oldest value when
// full) and delivers it to every live subscriber in subscription order.
func (b *Bus[T]) Publish(v T) {
	b.mu.Lock()
	if b.buf == nil {
		b.buf = make([]T, 0, b.capacity)
	}
	if len(b.buf) < b.capacity {
		b.buf = append(b.buf, v)
	} else {
		b.buf[b.next] = v
	}
	b.next = (b.next + 1) % b.capacity
	b.total++
	subs := b.subs
	b.mu.Unlock()
	for _, fn := range subs {
		if fn != nil {
			fn(v)
		}
	}
}

// Total returns how many values were ever published.
func (b *Bus[T]) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Retained returns how many values the ring currently holds.
func (b *Bus[T]) Retained() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Dropped returns how many published values the ring has overwritten —
// the loss a Snapshot consumer sees (subscribers see everything).
func (b *Bus[T]) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - len(b.buf)
}

// Snapshot returns the retained values oldest-first.
func (b *Bus[T]) Snapshot() []T {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) < b.capacity {
		out := make([]T, len(b.buf))
		copy(out, b.buf)
		return out
	}
	out := make([]T, 0, b.capacity)
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}
