package obs

// Histogram is a fixed-bucket histogram with cumulative-friendly
// storage: Counts[i] tallies observations v <= Bounds[i] (and greater
// than Bounds[i-1]); Counts[len(Bounds)] is the +Inf overflow bucket.
// Bounds must be strictly ascending.
type Histogram struct {
	Bounds []float64
	Counts []int
	Sum    float64
	N      int
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (plus an implicit +Inf overflow bucket).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Bounds: bounds,
		Counts: make([]int, len(bounds)+1),
	}
}

// latencyBounds are the log-spaced (factor 2) latency buckets: 1 ms up
// to ~131 s, covering sub-SLO service through PendingDrop timeouts.
var latencyBounds = func() []float64 {
	out := make([]float64, 18)
	b := 0.001
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}()

// NewLatencyHistogram returns the standard log-bucketed latency
// histogram (1ms, 2ms, 4ms, ... ~131s, +Inf).
func NewLatencyHistogram() *Histogram { return NewHistogram(latencyBounds) }

// Observe adds one sample. Values on a bucket's upper bound land in
// that bucket (Prometheus `le` semantics); values above the last bound
// land in the +Inf overflow bucket.
func (h *Histogram) Observe(v float64) {
	// Binary search: first bound >= v.
	lo, hi := 0, len(h.Bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.Bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.Counts[lo]++
	h.Sum += v
	h.N++
}

// Cumulative returns the cumulative counts per bound (Prometheus
// bucket values), excluding the +Inf bucket whose cumulative count is
// N.
func (h *Histogram) Cumulative() []int {
	out := make([]int, len(h.Bounds))
	c := 0
	for i := range h.Bounds {
		c += h.Counts[i]
		out[i] = c
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1], clamped) by linear
// interpolation inside the bucket holding rank q·N, assuming samples
// are uniformly spread across the bucket — the same estimator as
// Prometheus's histogram_quantile. Semantics at the edges:
//
//   - An empty histogram (or one with no bounds) returns 0, never NaN.
//   - The first bucket interpolates from a lower edge of 0 (latency
//     buckets have no negative mass).
//   - q=0 returns the lower edge of the first non-empty bucket; q=1
//     the upper bound of the last non-empty one.
//   - Mass in the +Inf overflow bucket reports the last finite bound —
//     there is no upper edge to interpolate toward, so quantiles clamp
//     there (the log-bucket layout keeps the clamp within one factor-2
//     step of the true value for in-range data).
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.N)
	cum := 0.0
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		if rank <= cum+float64(n) {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (h.Bounds[i]-lo)*frac
		}
		cum += float64(n)
	}
	return h.Bounds[len(h.Bounds)-1]
}
