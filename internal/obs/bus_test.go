package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBusRingWraparound: the ring retains only the newest Capacity
// values, snapshots come out oldest-first, and the dropped counter
// reports exactly what was overwritten.
func TestBusRingWraparound(t *testing.T) {
	b := NewBus[int](8)
	for i := 0; i < 20; i++ {
		b.Publish(i)
	}
	if b.Total() != 20 {
		t.Errorf("Total = %d, want 20", b.Total())
	}
	if b.Retained() != 8 {
		t.Errorf("Retained = %d, want 8", b.Retained())
	}
	if b.Dropped() != 12 {
		t.Errorf("Dropped = %d, want 12", b.Dropped())
	}
	snap := b.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(snap))
	}
	for i, v := range snap {
		if v != 12+i {
			t.Fatalf("snapshot[%d] = %d, want %d", i, v, 12+i)
		}
	}
}

// TestBusUnderCapacity: before wrapping, nothing is dropped and the
// snapshot holds everything in publish order.
func TestBusUnderCapacity(t *testing.T) {
	b := NewBus[string](4)
	b.Publish("a")
	b.Publish("b")
	if b.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", b.Dropped())
	}
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0] != "a" || snap[1] != "b" {
		t.Errorf("snapshot = %v, want [a b]", snap)
	}
}

// TestBusExactCapacity: filling the ring exactly drops nothing; one
// more publish drops one.
func TestBusExactCapacity(t *testing.T) {
	b := NewBus[int](3)
	for i := 0; i < 3; i++ {
		b.Publish(i)
	}
	if b.Dropped() != 0 {
		t.Errorf("Dropped at exact capacity = %d, want 0", b.Dropped())
	}
	b.Publish(3)
	if b.Dropped() != 1 {
		t.Errorf("Dropped after one overwrite = %d, want 1", b.Dropped())
	}
	snap := b.Snapshot()
	if snap[0] != 1 || snap[2] != 3 {
		t.Errorf("snapshot = %v, want [1 2 3]", snap)
	}
}

// TestBusSubscribers: subscribers see every value losslessly — even
// ones the ring overwrote — in publish order; cancelling stops
// delivery; a subscriber added mid-stream sees only later values.
func TestBusSubscribers(t *testing.T) {
	b := NewBus[int](2)
	var all, late []int
	cancel := b.Subscribe(func(v int) { all = append(all, v) })
	for i := 0; i < 5; i++ {
		if i == 3 {
			b.Subscribe(func(v int) { late = append(late, v) })
		}
		b.Publish(i)
	}
	if len(all) != 5 {
		t.Fatalf("subscriber saw %d of 5 values (ring dropped %d, subscribers must not)",
			len(all), b.Dropped())
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("subscriber order wrong: %v", all)
		}
	}
	if len(late) != 2 || late[0] != 3 {
		t.Errorf("late subscriber saw %v, want [3 4]", late)
	}
	cancel()
	cancel() // idempotent
	b.Publish(99)
	if len(all) != 5 {
		t.Error("cancelled subscriber still receiving")
	}
}

// TestBusDefaultCapacity: non-positive capacities fall back to the
// default.
func TestBusDefaultCapacity(t *testing.T) {
	if got := NewBus[int](0).Capacity(); got != DefaultBusCapacity {
		t.Errorf("Capacity = %d, want %d", got, DefaultBusCapacity)
	}
	if got := NewBus[int](-5).Capacity(); got != DefaultBusCapacity {
		t.Errorf("Capacity = %d, want %d", got, DefaultBusCapacity)
	}
}

// TestBusSubscriberChurnDropAccounting: a subscriber joining after the
// ring has already wrapped still observes a consistent world — the
// drop counter at join time plus everything it then receives equals
// the bus total.
func TestBusSubscriberChurnDropAccounting(t *testing.T) {
	b := NewBus[int](4)
	for i := 0; i < 11; i++ {
		b.Publish(i)
	}
	droppedAtJoin, retainedAtJoin := b.Dropped(), b.Retained()
	if droppedAtJoin != 7 {
		t.Fatalf("Dropped before join = %d, want 7", droppedAtJoin)
	}
	var seen []int
	cancel := b.Subscribe(func(v int) { seen = append(seen, v) })
	for i := 11; i < 25; i++ {
		b.Publish(i)
	}
	cancel()
	b.Publish(25) // after cancel: not seen, still counted by the ring
	// Everything published before the join was either dropped or still
	// retained; everything while subscribed was seen; one publish came
	// after the cancel. Those partitions must tile the bus total.
	if len(seen) != 14 ||
		droppedAtJoin+retainedAtJoin+len(seen)+1 != b.Total() {
		t.Errorf("churn accounting: seen %d, droppedAtJoin %d, retainedAtJoin %d, total %d",
			len(seen), droppedAtJoin, retainedAtJoin, b.Total())
	}
	for i, v := range seen {
		if v != 11+i {
			t.Fatalf("mid-run subscriber order wrong: %v", seen)
		}
	}
}

// TestBusConcurrentPublishSubscribe: ring wraparound under concurrent
// publishers with subscribers joining and cancelling mid-stream must be
// race-clean (run under -race) and must not lose counts: Total equals
// the number of publishes and Dropped+Retained equals Total.
func TestBusConcurrentPublishSubscribe(t *testing.T) {
	const (
		publishers = 4
		perPub     = 500
	)
	b := NewBus[int](16)
	var wg sync.WaitGroup
	var received atomic.Int64
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if i%50 == 0 {
					cancel := b.Subscribe(func(int) { received.Add(1) })
					b.Publish(p*perPub + i)
					cancel()
					continue
				}
				b.Publish(p*perPub + i)
			}
		}(p)
	}
	wg.Wait()
	if b.Total() != publishers*perPub {
		t.Errorf("Total = %d, want %d", b.Total(), publishers*perPub)
	}
	if b.Dropped()+b.Retained() != b.Total() {
		t.Errorf("Dropped %d + Retained %d != Total %d",
			b.Dropped(), b.Retained(), b.Total())
	}
	if got := len(b.Snapshot()); got != 16 {
		t.Errorf("snapshot len = %d, want 16", got)
	}
	if received.Load() == 0 {
		t.Error("transient subscribers received nothing")
	}
}
