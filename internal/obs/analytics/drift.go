package analytics

import (
	"fmt"
	"sort"
)

// Profile-drift detection: the invoker's CV-ranked pipeline
// construction and the routing latency estimates both trust the static
// per-slice-type profiles declared in the FFS DAG (Table 2). The drift
// tracker compares every observed stage execution against the declared
// profile it was planned with and maintains a per-(model-component,
// slice-type) EWMA of the observed/declared ratio. When the smoothed
// ratio diverges past the threshold it flags the key and emits a drift
// event — it never feeds back into scheduling (closing that loop is
// future work); it only tells the operator the planning model and the
// hardware no longer agree.

// DriftKey identifies one drift series: a function's pipeline stage
// (stage -1 = the monolithic whole-model deployment) on a slice type.
type DriftKey struct {
	Func  string `json:"func"`
	Stage int    `json:"stage"`
	Slice string `json:"slice"`
}

// String renders the key like "app0/stage1@2g.20gb" (monolithic stages
// render as "app0/mono@4g.40gb").
func (k DriftKey) String() string {
	if k.Stage < 0 {
		return fmt.Sprintf("%s/mono@%s", k.Func, k.Slice)
	}
	return fmt.Sprintf("%s/stage%d@%s", k.Func, k.Stage, k.Slice)
}

// DriftEntry is one key's drift state.
type DriftEntry struct {
	Key DriftKey `json:"key"`
	// Ratio is the EWMA of observed/declared execution time: 1 means
	// the profile still matches reality.
	Ratio float64 `json:"ratio"`
	// LastObserved and Declared are the newest sample's durations.
	LastObserved float64 `json:"lastObserved"`
	Declared     float64 `json:"declared"`
	Samples      int     `json:"samples"`
	// Flagged marks keys currently past the divergence threshold.
	Flagged bool `json:"flagged"`
}

// DriftEvent is published when a key's EWMA ratio crosses the
// divergence threshold (in either direction).
type DriftEvent struct {
	Time  float64  `json:"time"`
	Key   DriftKey `json:"key"`
	Ratio float64  `json:"ratio"`
	// Recovered marks the ratio returning inside the threshold after a
	// flagged stretch.
	Recovered bool `json:"recovered"`
}

// DriftTracker maintains EWMA drift ratios per key. The zero value is
// unusable; build with NewDriftTracker.
type DriftTracker struct {
	alpha      float64
	threshold  float64
	minSamples int
	states     map[DriftKey]*DriftEntry
}

// NewDriftTracker returns a tracker smoothing with alpha (default 0.2),
// flagging when |EWMA-1| > threshold (default 0.25) after at least
// minSamples observations (default 8 — a fresh EWMA is noise).
func NewDriftTracker(alpha, threshold float64, minSamples int) *DriftTracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	if threshold <= 0 {
		threshold = 0.25
	}
	if minSamples <= 0 {
		minSamples = 8
	}
	return &DriftTracker{
		alpha: alpha, threshold: threshold, minSamples: minSamples,
		states: map[DriftKey]*DriftEntry{},
	}
}

// Observe folds one stage execution into the key's EWMA. It returns a
// DriftEvent when this sample pushes the smoothed ratio across the
// threshold (or back inside it), nil otherwise.
func (d *DriftTracker) Observe(t float64, k DriftKey, observed, declared float64) *DriftEvent {
	if declared <= 0 {
		return nil
	}
	ratio := observed / declared
	st, ok := d.states[k]
	if !ok {
		st = &DriftEntry{Key: k, Ratio: ratio}
		d.states[k] = st
	} else {
		st.Ratio = d.alpha*ratio + (1-d.alpha)*st.Ratio
	}
	st.LastObserved = observed
	st.Declared = declared
	st.Samples++
	if st.Samples < d.minSamples {
		return nil
	}
	diverged := st.Ratio > 1+d.threshold || st.Ratio < 1-d.threshold
	if diverged == st.Flagged {
		return nil
	}
	st.Flagged = diverged
	return &DriftEvent{Time: t, Key: k, Ratio: st.Ratio, Recovered: !diverged}
}

// Entries returns every key's drift state, sorted by key for
// deterministic reports.
func (d *DriftTracker) Entries() []DriftEntry {
	out := make([]DriftEntry, 0, len(d.states))
	for _, st := range d.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Slice < b.Slice
	})
	return out
}
