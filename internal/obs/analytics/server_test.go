package analytics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"fluidfaas/internal/obs/decisions"
)

// get fetches a path from the handler and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints: the introspection handler serves Prometheus
// metrics, a JSON analytics report, and a JSON state snapshot.
func TestServerEndpoints(t *testing.T) {
	rec := synthRecorder()
	srv := httptest.NewServer(Handler(ServerOptions{
		Recorder: rec,
		Report:   Analyze(Config{}, rec),
		State:    map[string]int{"slices": 4},
	}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "fluidfaas_requests_total") {
		t.Errorf("/metrics: code %d body %.80q", code, body)
	}

	code, body = get(t, srv, "/analytics")
	if code != 200 {
		t.Fatalf("/analytics: code %d", code)
	}
	var rp Report
	if err := json.Unmarshal([]byte(body), &rp); err != nil {
		t.Fatalf("/analytics: not JSON: %v", err)
	}
	if rp.Requests != 80 || len(rp.Blame) != 2 {
		t.Errorf("/analytics: requests %d, blame %d", rp.Requests, len(rp.Blame))
	}

	code, body = get(t, srv, "/state")
	var st map[string]int
	if code != 200 || json.Unmarshal([]byte(body), &st) != nil || st["slices"] != 4 {
		t.Errorf("/state: code %d body %q", code, body)
	}

	if code, body = get(t, srv, "/"); code != 200 || !strings.Contains(body, "/analytics") {
		t.Errorf("index: code %d", code)
	}
	if code, _ = get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if code, _ = get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d, want 200", code)
	}
}

// TestServerEmpty: a server with nothing wired still answers every
// endpoint with valid documents.
func TestServerEmpty(t *testing.T) {
	srv := httptest.NewServer(Handler(ServerOptions{}))
	defer srv.Close()

	if code, _ := get(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics: code %d", code)
	}
	code, body := get(t, srv, "/analytics")
	var rp Report
	if code != 200 || json.Unmarshal([]byte(body), &rp) != nil {
		t.Errorf("/analytics: code %d body %q", code, body)
	}
	if code, body := get(t, srv, "/state"); code != 200 || strings.TrimSpace(body) != "null" {
		t.Errorf("/state: code %d body %q", code, body)
	}
}

// TestServerDecisions: /decisions serves the full provenance export,
// honours kind/func/req/limit filters (rejecting malformed ones), and
// /why returns one request's ordered chain.
func TestServerDecisions(t *testing.T) {
	dr := decisions.NewRecorder(0)
	dr.Record(decisions.Record{Kind: decisions.KindAdmit, Req: 7, Func: "bert", Outcome: "admitted"})
	dr.Record(decisions.Record{Kind: decisions.KindHedgeSpawn, Req: 7, Func: "bert", Outcome: "duplicated"})
	dr.Record(decisions.Record{Kind: decisions.KindReject, Req: 9, Func: "gpt2", Outcome: "shed"})
	srv := httptest.NewServer(Handler(ServerOptions{Decisions: dr}))
	defer srv.Close()

	code, body := get(t, srv, "/decisions")
	var exp decisions.Export
	if code != 200 || json.Unmarshal([]byte(body), &exp) != nil {
		t.Fatalf("/decisions: code %d body %q", code, body)
	}
	if exp.Total != 3 || len(exp.Records) != 3 {
		t.Errorf("/decisions: total %d records %d, want 3/3", exp.Total, len(exp.Records))
	}

	var filtered struct {
		Matched int                `json:"matched"`
		Records []decisions.Record `json:"records"`
	}
	code, body = get(t, srv, "/decisions?kind=admit")
	if code != 200 || json.Unmarshal([]byte(body), &filtered) != nil {
		t.Fatalf("/decisions?kind=admit: code %d body %q", code, body)
	}
	if filtered.Matched != 1 || filtered.Records[0].Kind != decisions.KindAdmit {
		t.Errorf("kind filter: matched %d", filtered.Matched)
	}
	code, body = get(t, srv, "/decisions?func=bert&limit=1")
	if code != 200 || json.Unmarshal([]byte(body), &filtered) != nil {
		t.Fatalf("/decisions?func=bert&limit=1: code %d body %q", code, body)
	}
	if filtered.Matched != 1 || filtered.Records[0].Kind != decisions.KindHedgeSpawn {
		t.Errorf("func+limit filter: matched %d, want newest bert record", filtered.Matched)
	}
	code, body = get(t, srv, "/decisions?req=9")
	if code != 200 || json.Unmarshal([]byte(body), &filtered) != nil ||
		filtered.Matched != 1 || filtered.Records[0].Req != 9 {
		t.Errorf("req filter: code %d body %q", code, body)
	}
	if code, _ = get(t, srv, "/decisions?kind=bogus"); code != 400 {
		t.Errorf("bad kind: code %d, want 400", code)
	}
	if code, _ = get(t, srv, "/decisions?limit=-1"); code != 400 {
		t.Errorf("bad limit: code %d, want 400", code)
	}

	code, body = get(t, srv, "/why?req=7")
	var chain decisions.ChainExport
	if code != 200 || json.Unmarshal([]byte(body), &chain) != nil {
		t.Fatalf("/why: code %d body %q", code, body)
	}
	if chain.Req != 7 || len(chain.Chain) != 2 ||
		chain.Chain[0].Kind != decisions.KindAdmit || chain.Chain[1].Kind != decisions.KindHedgeSpawn {
		t.Errorf("/why chain: %+v", chain)
	}
	if code, _ = get(t, srv, "/why"); code != 400 {
		t.Errorf("/why without req: code %d, want 400", code)
	}
	if code, _ = get(t, srv, "/why?req=x"); code != 400 {
		t.Errorf("/why bad req: code %d, want 400", code)
	}

	// Nil recorder: both endpoints still serve valid empty documents.
	empty := httptest.NewServer(Handler(ServerOptions{}))
	defer empty.Close()
	code, body = get(t, empty, "/decisions")
	if code != 200 || json.Unmarshal([]byte(body), &exp) != nil || exp.Total != 0 {
		t.Errorf("nil /decisions: code %d body %q", code, body)
	}
	code, body = get(t, empty, "/why?req=1")
	if code != 200 || json.Unmarshal([]byte(body), &chain) != nil || len(chain.Chain) != 0 {
		t.Errorf("nil /why: code %d body %q", code, body)
	}
}
