package analytics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a path from the handler and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints: the introspection handler serves Prometheus
// metrics, a JSON analytics report, and a JSON state snapshot.
func TestServerEndpoints(t *testing.T) {
	rec := synthRecorder()
	srv := httptest.NewServer(Handler(ServerOptions{
		Recorder: rec,
		Report:   Analyze(Config{}, rec),
		State:    map[string]int{"slices": 4},
	}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "fluidfaas_requests_total") {
		t.Errorf("/metrics: code %d body %.80q", code, body)
	}

	code, body = get(t, srv, "/analytics")
	if code != 200 {
		t.Fatalf("/analytics: code %d", code)
	}
	var rp Report
	if err := json.Unmarshal([]byte(body), &rp); err != nil {
		t.Fatalf("/analytics: not JSON: %v", err)
	}
	if rp.Requests != 80 || len(rp.Blame) != 2 {
		t.Errorf("/analytics: requests %d, blame %d", rp.Requests, len(rp.Blame))
	}

	code, body = get(t, srv, "/state")
	var st map[string]int
	if code != 200 || json.Unmarshal([]byte(body), &st) != nil || st["slices"] != 4 {
		t.Errorf("/state: code %d body %q", code, body)
	}

	if code, body = get(t, srv, "/"); code != 200 || !strings.Contains(body, "/analytics") {
		t.Errorf("index: code %d", code)
	}
	if code, _ = get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if code, _ = get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d, want 200", code)
	}
}

// TestServerEmpty: a server with nothing wired still answers every
// endpoint with valid documents.
func TestServerEmpty(t *testing.T) {
	srv := httptest.NewServer(Handler(ServerOptions{}))
	defer srv.Close()

	if code, _ := get(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics: code %d", code)
	}
	code, body := get(t, srv, "/analytics")
	var rp Report
	if code != 200 || json.Unmarshal([]byte(body), &rp) != nil {
		t.Errorf("/analytics: code %d body %q", code, body)
	}
	if code, body := get(t, srv, "/state"); code != 200 || strings.TrimSpace(body) != "null" {
		t.Errorf("/state: code %d body %q", code, body)
	}
}
