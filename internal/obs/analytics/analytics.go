package analytics

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"fluidfaas/internal/obs"
)

// Config parameterises one analysis pass; zero fields take defaults.
type Config struct {
	// DriftAlpha, DriftThreshold, DriftMinSamples parameterise the
	// profile-drift EWMA (defaults 0.2, 0.25, 8 — see NewDriftTracker).
	DriftAlpha      float64
	DriftThreshold  float64
	DriftMinSamples int
	// Burn parameterises the SLO burn-rate monitor.
	Burn BurnConfig
	// StragglerLimit caps the straggler report (default 10).
	StragglerLimit int
}

// FuncBlame is one function's latency blame table: per-component mean
// and quantiles over every finalised request, plus the dominant
// bottleneck classification.
type FuncBlame struct {
	Func     string `json:"func"`
	Requests int    `json:"requests"`
	// MeanLatency and P99Latency summarise end-to-end latency; the
	// quantile is histogram-interpolated (log buckets), the mean exact.
	MeanLatency float64 `json:"meanLatency"`
	P99Latency  float64 `json:"p99Latency"`
	// Mean components are exact; P50/P95/P99 come from per-component
	// log-bucket histograms, so they are estimates with bucket-sized
	// resolution (but deterministic).
	Mean Components `json:"mean"`
	P50  Components `json:"p50"`
	P95  Components `json:"p95"`
	P99  Components `json:"p99"`
	// Dominant is the component with the largest mean; Share is its
	// fraction of mean latency (0 when mean latency is 0).
	Dominant string  `json:"dominant"`
	Share    float64 `json:"share"`
}

// Straggler is one request past its function's p99, with its blame.
type Straggler struct {
	Func    string     `json:"func"`
	Req     int        `json:"req"`
	Arrival float64    `json:"arrival"`
	Latency float64    `json:"latency"`
	Outcome string     `json:"outcome"`
	Comp    Components `json:"components"`
	// Top is the straggler's own dominant component — the thing that
	// made this specific request slow.
	Top string `json:"top"`
}

// Report is one run's complete analytics snapshot. Field order is the
// JSON output order; every collection is sorted, so identical recorder
// contents serialise byte-identically.
type Report struct {
	Requests    int          `json:"requests"`
	Blame       []FuncBlame  `json:"blame"`
	Stragglers  []Straggler  `json:"stragglers"`
	Drift       []DriftEntry `json:"drift"`
	DriftEvents []DriftEvent `json:"driftEvents"`
	Burn        []BurnStatus `json:"burn"`
	BurnAlerts  []BurnAlert  `json:"burnAlerts"`
}

// WriteJSON writes the report as indented JSON. Output is
// deterministic: structs fix field order and all slices are sorted.
func (rp *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rp)
}

// Analyze runs the full pass — critical-path reconstruction, blame
// aggregation, straggler extraction, drift detection, burn-rate replay —
// over a finished recorder. The recorder is read, never mutated.
func Analyze(cfg Config, rec *obs.Recorder) *Report {
	if cfg.StragglerLimit <= 0 {
		cfg.StragglerLimit = 10
	}
	paths := Reconstruct(rec.Spans())
	rp := &Report{Requests: len(paths)}
	rp.Blame, rp.Stragglers = blame(paths, cfg.StragglerLimit)
	rp.Drift, rp.DriftEvents = drift(cfg, rec)
	rp.Burn, rp.BurnAlerts = burn(cfg, rec)
	return rp
}

// blameAcc accumulates one function's component histograms.
type blameAcc struct {
	n       int
	sum     Components
	sumLat  float64
	latHist *obs.Histogram
	hists   map[string]*obs.Histogram // by component name
	paths   []RequestPath
}

// blame builds the per-function blame tables and the straggler report.
func blame(paths []RequestPath, stragglerLimit int) ([]FuncBlame, []Straggler) {
	accs := map[string]*blameAcc{}
	for _, p := range paths {
		a, ok := accs[p.Name]
		if !ok {
			a = &blameAcc{latHist: obs.NewLatencyHistogram(), hists: map[string]*obs.Histogram{}}
			for _, name := range ComponentNames {
				a.hists[name] = obs.NewLatencyHistogram()
			}
			accs[p.Name] = a
		}
		a.n++
		a.sumLat += p.Latency()
		a.latHist.Observe(p.Latency())
		a.sum.Queue += p.Comp.Queue
		a.sum.Load += p.Comp.Load
		a.sum.Exec += p.Comp.Exec
		a.sum.Transfer += p.Comp.Transfer
		a.sum.Retry += p.Comp.Retry
		for _, name := range ComponentNames {
			a.hists[name].Observe(p.Comp.byName(name))
		}
		a.paths = append(a.paths, p)
	}

	fns := make([]string, 0, len(accs))
	for fn := range accs {
		fns = append(fns, fn)
	}
	sort.Strings(fns)

	blames := make([]FuncBlame, 0, len(fns))
	var stragglers []Straggler
	for _, fn := range fns {
		a := accs[fn]
		inv := 1 / float64(a.n)
		fb := FuncBlame{
			Func: fn, Requests: a.n,
			MeanLatency: a.sumLat * inv,
			P99Latency:  a.latHist.Quantile(0.99),
			Mean: Components{
				Queue: a.sum.Queue * inv, Load: a.sum.Load * inv,
				Exec: a.sum.Exec * inv, Transfer: a.sum.Transfer * inv,
				Retry: a.sum.Retry * inv,
			},
		}
		quant := func(q float64) Components {
			return Components{
				Queue:    a.hists["queue"].Quantile(q),
				Load:     a.hists["load"].Quantile(q),
				Exec:     a.hists["exec"].Quantile(q),
				Transfer: a.hists["transfer"].Quantile(q),
				Retry:    a.hists["retry"].Quantile(q),
			}
		}
		fb.P50, fb.P95, fb.P99 = quant(0.50), quant(0.95), quant(0.99)
		fb.Dominant = fb.Mean.Dominant()
		if fb.MeanLatency > 0 {
			fb.Share = fb.Mean.byName(fb.Dominant) / fb.MeanLatency
		}
		blames = append(blames, fb)

		for _, p := range a.paths {
			if p.Latency() > fb.P99Latency {
				stragglers = append(stragglers, Straggler{
					Func: p.Name, Req: p.Req, Arrival: p.Arrival,
					Latency: p.Latency(), Outcome: p.Outcome,
					Comp: p.Comp, Top: p.Comp.Dominant(),
				})
			}
		}
	}
	// Worst first; ties in (func, req) order for determinism.
	sort.Slice(stragglers, func(i, j int) bool {
		if stragglers[i].Latency != stragglers[j].Latency {
			return stragglers[i].Latency > stragglers[j].Latency
		}
		if stragglers[i].Func != stragglers[j].Func {
			return stragglers[i].Func < stragglers[j].Func
		}
		return stragglers[i].Req < stragglers[j].Req
	})
	if len(stragglers) > stragglerLimit {
		stragglers = stragglers[:stragglerLimit]
	}
	return blames, stragglers
}

// drift replays exec spans carrying a declared profile through the EWMA
// tracker, in record order (the simulation's causal order).
func drift(cfg Config, rec *obs.Recorder) ([]DriftEntry, []DriftEvent) {
	tr := NewDriftTracker(cfg.DriftAlpha, cfg.DriftThreshold, cfg.DriftMinSamples)
	// Function names for drift keys come from the request log; spans
	// only carry the function index.
	names := map[int]string{}
	for _, o := range rec.RequestLog() {
		names[o.Func] = o.Name
	}
	var events []DriftEvent
	for _, sp := range rec.Spans() {
		if sp.Kind != obs.KindSlice || sp.Cat != "exec" || sp.Declared <= 0 {
			continue
		}
		fn, ok := names[sp.Func]
		if !ok {
			// The request never finalised (still in flight at run end);
			// fall back to the span label.
			fn = strings.TrimPrefix(sp.Name, "exec ")
		}
		k := DriftKey{Func: fn, Stage: sp.Stage, Slice: sp.Detail}
		if ev := tr.Observe(sp.End, k, sp.End-sp.Start, sp.Declared); ev != nil {
			events = append(events, *ev)
		}
	}
	return tr.Entries(), events
}

// burn replays the finalised-request log (completion order, so times
// are non-decreasing) through the burn monitor.
func burn(cfg Config, rec *obs.Recorder) ([]BurnStatus, []BurnAlert) {
	m := NewBurnMonitor(cfg.Burn)
	for _, o := range rec.RequestLog() {
		m.Observe(o.Name, o.Completion, o.SLOMiss())
	}
	return m.Status(), m.Alerts()
}
