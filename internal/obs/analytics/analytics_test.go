package analytics

import (
	"bytes"
	"testing"

	"fluidfaas/internal/obs"
)

// synthRecorder builds a small deterministic recorder: two functions,
// one with drifting exec times and SLO misses.
func synthRecorder() *obs.Recorder {
	r := obs.NewRecorder()
	for i := 0; i < 40; i++ {
		t0 := float64(i * 10)
		// app0: healthy, exec matches its declared 1s profile.
		r.AsyncSpan("request", "app0", 0, i, t0, t0+2, "served")
		r.StageSpan("exec app0", "gpu0/2g.20gb#0", "2g.20gb", 0, i, -1, t0+1, t0+2, 1)
		r.ObserveRequest(obs.RequestObs{
			Func: 0, Name: "app0", Req: i,
			Arrival: t0, Completion: t0 + 2, SLO: 5, Outcome: "served",
		})
		// app1: observed exec is 1.6x the declared profile and misses
		// its SLO every time.
		r.AsyncSpan("request", "app1", 1, i, t0, t0+4, "served")
		r.StageSpan("exec app1", "gpu0/3g.40gb#0", "3g.40gb", 1, i, -1, t0+0.8, t0+4, 2)
		r.ObserveRequest(obs.RequestObs{
			Func: 1, Name: "app1", Req: i,
			Arrival: t0, Completion: t0 + 4, SLO: 1, Outcome: "served",
		})
	}
	r.SetDuration(400)
	return r
}

// TestAnalyzeReport: the full pass classifies bottlenecks, flags the
// drifted stage, and pages on the burning function.
func TestAnalyzeReport(t *testing.T) {
	rp := Analyze(Config{}, synthRecorder())

	if rp.Requests != 80 {
		t.Fatalf("requests = %d, want 80", rp.Requests)
	}
	if len(rp.Blame) != 2 {
		t.Fatalf("blame rows = %d, want 2", len(rp.Blame))
	}
	b0, b1 := rp.Blame[0], rp.Blame[1]
	if b0.Func != "app0" || b1.Func != "app1" {
		t.Fatalf("blame order: %q, %q", b0.Func, b1.Func)
	}
	// app0: 1s exec + 1s queue per 2s request.
	if b0.Mean.Exec != 1 || b0.Mean.Queue != 1 {
		t.Errorf("app0 mean = %+v", b0.Mean)
	}
	// app1: 3.2s exec dominates its 4s latency.
	if b1.Dominant != "exec" || b1.Share < 0.7 {
		t.Errorf("app1 dominant = %q share %v", b1.Dominant, b1.Share)
	}

	// Drift: app1's ratio converges to 1.6 and is flagged; app0 is not.
	if len(rp.Drift) != 2 {
		t.Fatalf("drift entries = %d, want 2", len(rp.Drift))
	}
	for _, d := range rp.Drift {
		switch d.Key.Func {
		case "app0":
			if d.Flagged || d.Ratio != 1 {
				t.Errorf("app0 drift = %+v", d)
			}
		case "app1":
			if !d.Flagged || d.Ratio < 1.5 {
				t.Errorf("app1 drift = %+v", d)
			}
		}
	}
	flagEvents := 0
	for _, ev := range rp.DriftEvents {
		if !ev.Recovered && ev.Key.Func == "app1" {
			flagEvents++
		}
	}
	if flagEvents != 1 {
		t.Errorf("app1 flag events = %d, want 1", flagEvents)
	}

	// Burn: app1 misses 100% of a 1% budget in both windows -> page.
	var app1Burn *BurnStatus
	for i := range rp.Burn {
		if rp.Burn[i].Func == "app1" {
			app1Burn = &rp.Burn[i]
		}
	}
	if app1Burn == nil {
		t.Fatal("no burn status for app1")
	}
	if app1Burn.Active != "page" || app1Burn.Pages != 1 || app1Burn.Misses != 40 {
		t.Errorf("app1 burn = %+v", *app1Burn)
	}
	for _, s := range rp.Burn {
		if s.Func == "app0" && (s.Active != "none" || s.Misses != 0) {
			t.Errorf("app0 burn = %+v", s)
		}
	}
}

// TestAnalyzeDeterministic: the same recorder contents produce
// byte-identical JSON reports.
func TestAnalyzeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Analyze(Config{}, synthRecorder()).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(Config{}, synthRecorder()).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("reports differ across identical runs")
	}
}

// TestDriftTrackerRecovery: a flagged key emits a recovery event when
// its EWMA returns inside the threshold.
func TestDriftTrackerRecovery(t *testing.T) {
	tr := NewDriftTracker(0.5, 0.25, 2)
	k := DriftKey{Func: "app0", Stage: 0, Slice: "2g.20gb"}
	var events []DriftEvent
	feed := func(obsDur float64, n int) {
		for i := 0; i < n; i++ {
			if ev := tr.Observe(float64(len(events)), k, obsDur, 1); ev != nil {
				events = append(events, *ev)
			}
		}
	}
	feed(2, 6) // drives EWMA well past 1.25 -> flag
	feed(1, 8) // back toward 1 -> recover
	if len(events) != 2 {
		t.Fatalf("events = %+v, want flag then recover", events)
	}
	if events[0].Recovered || !events[1].Recovered {
		t.Errorf("event sequence = %+v", events)
	}
	if e := tr.Entries(); len(e) != 1 || e[0].Flagged {
		t.Errorf("entries = %+v", e)
	}
}

// TestDriftTrackerMinSamples: no event before minSamples observations,
// however extreme the ratio.
func TestDriftTrackerMinSamples(t *testing.T) {
	tr := NewDriftTracker(0.2, 0.25, 8)
	k := DriftKey{Func: "app0", Stage: -1, Slice: "7g.80gb"}
	for i := 0; i < 7; i++ {
		if ev := tr.Observe(float64(i), k, 10, 1); ev != nil {
			t.Fatalf("event before minSamples: %+v", ev)
		}
	}
	if ev := tr.Observe(7, k, 10, 1); ev == nil {
		t.Error("no event at minSamples with a 10x ratio")
	}
}

// TestBurnMonitorWindows: a burst of misses pages while both windows
// burn, then resolves once the short window slides past the burst.
func TestBurnMonitorWindows(t *testing.T) {
	m := NewBurnMonitor(BurnConfig{Budget: 0.1, ShortWindow: 10, LongWindow: 100})
	// 20 misses in 0..10 burn both windows at 10x budget -> page
	// (threshold 14.4 needs budget 0.1: burn = 1/0.1 = 10... not enough
	// for page, but past warn 6).
	var fired []BurnAlert
	for i := 0; i < 20; i++ {
		if a := m.Observe("app0", float64(i)/2, true); a != nil {
			fired = append(fired, *a)
		}
	}
	if len(fired) != 1 || fired[0].Severity != "warn" || fired[0].Resolved {
		t.Fatalf("burst alerts = %+v, want one warn", fired)
	}
	// Successes push the short window's miss rate to zero -> resolve.
	for i := 0; i < 30; i++ {
		if a := m.Observe("app0", 11+float64(i), false); a != nil {
			fired = append(fired, *a)
		}
	}
	if len(fired) != 2 || !fired[1].Resolved || fired[1].Severity != "none" {
		t.Fatalf("alerts = %+v, want warn then resolve", fired)
	}
	st := m.Status()
	if len(st) != 1 || st[0].Warns != 1 || st[0].Pages != 0 || st[0].Active != "none" {
		t.Errorf("status = %+v", st)
	}
}

// TestBurnMonitorPage: misses at full budget-burn in both windows
// escalate straight to page.
func TestBurnMonitorPage(t *testing.T) {
	m := NewBurnMonitor(BurnConfig{Budget: 0.01, ShortWindow: 10, LongWindow: 100})
	var page *BurnAlert
	for i := 0; i < 10; i++ {
		if a := m.Observe("app0", float64(i), true); a != nil && page == nil {
			page = a
		}
	}
	if page == nil || page.Severity != "page" {
		t.Fatalf("alert = %+v, want page", page)
	}
	if page.ShortBurn != 100 || page.LongBurn != 100 {
		t.Errorf("burn rates = %v/%v, want 100/100", page.ShortBurn, page.LongBurn)
	}
}
