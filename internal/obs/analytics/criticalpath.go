// Package analytics interprets the raw telemetry the obs layer
// collects: critical-path attribution of end-to-end latency, drift
// detection between observed stage executions and the declared FFS-DAG
// profiles the scheduler plans with, SLO burn-rate monitoring, and a
// live introspection HTTP handler. Like the collection layer beneath
// it, everything here is a pure observer — analysis reads recorder
// state and never feeds back into scheduling — and deterministic: the
// same recorder contents produce byte-identical reports.
package analytics

import (
	"sort"

	"fluidfaas/internal/obs"
)

// Component names, in the fixed taxonomy (and trim-precedence) order.
// See Components for what each bucket means.
var ComponentNames = []string{"exec", "transfer", "load", "retry", "queue"}

// Components decomposes one request's end-to-end latency:
//
//	exec     — stage execution on MIG slices (final attempt only)
//	transfer — inter-stage hops through host shared memory
//	load     — model loads the request waited on (time-sharing loads
//	           in its service, or its share of an instance cold start)
//	retry    — fault penalty: everything from arrival to the last
//	           retry re-route, i.e. the failed attempts' queueing,
//	           wasted partial service, and backoff
//	queue    — the residual: load-balancer pending time and stage
//	           queue waits of the surviving attempt
//
// The five components always sum exactly to Completion-Arrival.
type Components struct {
	Queue    float64 `json:"queue"`
	Load     float64 `json:"load"`
	Exec     float64 `json:"exec"`
	Transfer float64 `json:"transfer"`
	Retry    float64 `json:"retry"`
}

// Total returns the summed components.
func (c Components) Total() float64 {
	return c.Queue + c.Load + c.Exec + c.Transfer + c.Retry
}

// byName returns the component value for a taxonomy name.
func (c Components) byName(name string) float64 {
	switch name {
	case "exec":
		return c.Exec
	case "transfer":
		return c.Transfer
	case "load":
		return c.Load
	case "retry":
		return c.Retry
	default:
		return c.Queue
	}
}

// Dominant returns the largest component's name; ties break in
// taxonomy order, so the answer is deterministic.
func (c Components) Dominant() string {
	best, bestV := "queue", c.Queue
	for _, name := range ComponentNames {
		if v := c.byName(name); v > bestV {
			best, bestV = name, v
		}
	}
	return best
}

// RequestPath is one finalised request's critical-path attribution.
type RequestPath struct {
	Func    int     `json:"func"`
	Name    string  `json:"name"`
	Req     int     `json:"req"`
	Arrival float64 `json:"arrival"`
	End     float64 `json:"end"`
	Outcome string  `json:"outcome"`
	Retries int     `json:"retries"`
	Comp    Components
}

// Latency is the end-to-end latency the components decompose.
func (p RequestPath) Latency() float64 { return p.End - p.Arrival }

// pathKey identifies a request's span chain.
type pathKey struct{ fn, req int }

// Reconstruct rebuilds every finalised request's critical path from the
// recorder's span log. The chain grammar it consumes:
//
//   - one "request" async span per finalised request (the envelope;
//     Detail carries the outcome),
//   - "retry" async marks for fault re-routes — each mark restarts the
//     chain: slice spans recorded before the last mark belong to a
//     failed attempt and are charged to the retry component, not to
//     exec/load/transfer,
//   - "exec"/"load"/"transfer" spans tied to the request (Req >= 0).
//
// Robustness over adversarial chains (partial chains of dropped or
// rejected requests, spans overlapping or spilling past the envelope)
// comes from clipping every span to the envelope and trimming the
// summed components, in taxonomy order, to never exceed the remaining
// end-to-end budget; queue is the residual. That construction makes
// "components sum exactly to end-to-end latency" an invariant rather
// than a hope.
func Reconstruct(spans []obs.Span) []RequestPath {
	type acc struct {
		path      RequestPath
		hasReq    bool
		lastRetry float64
		retries   int
		exec      float64
		load      float64
		transfer  float64
	}
	chains := map[pathKey]*acc{}
	get := func(fn, req int) *acc {
		k := pathKey{fn, req}
		a, ok := chains[k]
		if !ok {
			a = &acc{lastRetry: -1}
			chains[k] = a
		}
		return a
	}

	// Pass 1: envelopes and retry marks fix each chain's window and the
	// start of its surviving attempt.
	for _, sp := range spans {
		if sp.Req < 0 {
			continue
		}
		switch {
		case sp.Kind == obs.KindAsync && sp.Cat == "request":
			a := get(sp.Func, sp.Req)
			a.hasReq = true
			a.path = RequestPath{
				Func: sp.Func, Name: sp.Name, Req: sp.Req,
				Arrival: sp.Start, End: sp.End, Outcome: sp.Detail,
			}
		case sp.Kind == obs.KindAsyncMark && sp.Cat == "retry":
			a := get(sp.Func, sp.Req)
			a.retries++
			if sp.Start > a.lastRetry {
				a.lastRetry = sp.Start
			}
		}
	}

	// Pass 2: sum the surviving attempt's slice work, clipped to the
	// envelope. Spans that start before the last retry mark belong to a
	// torn-down attempt (their recorded durations cover time that never
	// completed) and are excluded.
	for _, sp := range spans {
		if sp.Req < 0 {
			continue
		}
		switch sp.Cat {
		case "exec", "load", "transfer":
		default:
			continue
		}
		a, ok := chains[pathKey{sp.Func, sp.Req}]
		if !ok || !a.hasReq {
			continue
		}
		if a.lastRetry >= 0 && sp.Start < a.lastRetry {
			continue
		}
		start, end := sp.Start, sp.End
		if start < a.path.Arrival {
			start = a.path.Arrival
		}
		if end > a.path.End {
			end = a.path.End
		}
		if end <= start {
			continue
		}
		switch sp.Cat {
		case "exec":
			a.exec += end - start
		case "load":
			a.load += end - start
		case "transfer":
			a.transfer += end - start
		}
	}

	out := make([]RequestPath, 0, len(chains))
	for _, a := range chains {
		if !a.hasReq {
			continue // orphan slice spans (run ended mid-service)
		}
		retryPenalty := 0.0
		if a.lastRetry >= 0 {
			retryPenalty = a.lastRetry - a.path.Arrival
		}
		rem := a.path.Latency()
		trim := func(v float64) float64 {
			if v > rem {
				v = rem
			}
			if v < 0 {
				v = 0
			}
			rem -= v
			return v
		}
		a.path.Comp.Exec = trim(a.exec)
		a.path.Comp.Transfer = trim(a.transfer)
		a.path.Comp.Load = trim(a.load)
		a.path.Comp.Retry = trim(retryPenalty)
		a.path.Comp.Queue = rem
		a.path.Retries = a.retries
		out = append(out, a.path)
	}
	// Completion order (ties by function then request) mirrors the
	// recorder's request log and keeps downstream aggregation and JSON
	// byte-deterministic.
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Req < out[j].Req
	})
	return out
}
