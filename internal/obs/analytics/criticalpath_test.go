package analytics

import (
	"math"
	"testing"

	"fluidfaas/internal/obs"
)

// checkSums asserts the package invariant: every reconstructed path's
// components sum exactly to its end-to-end latency.
func checkSums(t *testing.T, paths []RequestPath) {
	t.Helper()
	for _, p := range paths {
		if d := math.Abs(p.Comp.Total() - p.Latency()); d > 1e-9 {
			t.Errorf("req %d/%d: components sum %v != latency %v (diff %g)",
				p.Func, p.Req, p.Comp.Total(), p.Latency(), d)
		}
	}
}

// TestReconstructSimpleChain: a clean chain decomposes into its parts
// with queue as the residual.
func TestReconstructSimpleChain(t *testing.T) {
	r := obs.NewRecorder()
	// Envelope 0..10: load 1..2, exec 2..5 and 6..8, transfer 5..6.
	r.AsyncSpan("request", "app0", 0, 1, 0, 10, "served")
	r.SliceSpan("load", "load app0", "gpu0/3g.40gb#0", 0, 1, 0, 1, 2)
	r.StageSpan("exec app0", "gpu0/3g.40gb#0", "3g.40gb", 0, 1, 0, 2, 5, 3)
	r.SliceSpan("transfer", "s0->s1", "gpu0/3g.40gb#0", 0, 1, 0, 5, 6)
	r.StageSpan("exec app0", "gpu0/2g.20gb#0", "2g.20gb", 0, 1, 1, 6, 8, 2)

	paths := Reconstruct(r.Spans())
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	want := Components{Queue: 3, Load: 1, Exec: 5, Transfer: 1, Retry: 0}
	if p.Comp != want {
		t.Errorf("components = %+v, want %+v", p.Comp, want)
	}
	if p.Comp.Dominant() != "exec" {
		t.Errorf("dominant = %q, want exec", p.Comp.Dominant())
	}
	checkSums(t, paths)
}

// TestReconstructRetriedChain: a retry mark restarts the chain — spans
// recorded before the last mark belong to the failed attempt and are
// charged to the retry component instead of exec.
func TestReconstructRetriedChain(t *testing.T) {
	r := obs.NewRecorder()
	r.AsyncSpan("request", "app0", 0, 7, 0, 20, "served")
	// Failed attempt: exec span recorded ahead-of-time, torn down by a
	// fault at t=4 (span covers time that never completed).
	r.StageSpan("exec app0", "gpu0/3g.40gb#0", "3g.40gb", 0, 7, -1, 2, 8, 6)
	r.AsyncMark("retry", "retry", 0, 7, 4, "slice-fault")
	// Surviving attempt after backoff.
	r.SliceSpan("load", "load app0", "gpu1/3g.40gb#0", 0, 7, -1, 6, 8)
	r.StageSpan("exec app0", "gpu1/3g.40gb#0", "3g.40gb", 0, 7, -1, 8, 14, 6)

	paths := Reconstruct(r.Spans())
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Retries != 1 {
		t.Errorf("retries = %d, want 1", p.Retries)
	}
	// retry = lastRetry - arrival = 4; exec = 6 (surviving only);
	// load = 2; queue = 20 - 6 - 2 - 4 = 8.
	want := Components{Queue: 8, Load: 2, Exec: 6, Transfer: 0, Retry: 4}
	if p.Comp != want {
		t.Errorf("components = %+v, want %+v", p.Comp, want)
	}
	checkSums(t, paths)
}

// TestReconstructDoubleRetry: only the last retry mark splits the
// chain; earlier marks just count.
func TestReconstructDoubleRetry(t *testing.T) {
	r := obs.NewRecorder()
	r.AsyncSpan("request", "app0", 0, 3, 0, 30, "served")
	r.AsyncMark("retry", "retry", 0, 3, 5, "fault")
	r.StageSpan("exec app0", "gpu0/1g.10gb#0", "1g.10gb", 0, 3, -1, 6, 9, 3)
	r.AsyncMark("retry", "retry", 0, 3, 10, "fault")
	r.StageSpan("exec app0", "gpu0/1g.10gb#1", "1g.10gb", 0, 3, -1, 12, 18, 3)

	paths := Reconstruct(r.Spans())
	p := paths[0]
	if p.Retries != 2 {
		t.Errorf("retries = %d, want 2", p.Retries)
	}
	// The 6..9 exec belongs to the second (failed) attempt: excluded.
	want := Components{Queue: 14, Load: 0, Exec: 6, Transfer: 0, Retry: 10}
	if p.Comp != want {
		t.Errorf("components = %+v, want %+v", p.Comp, want)
	}
	checkSums(t, paths)
}

// TestReconstructPartialChains: dropped and rejected requests have
// partial (or empty) chains; components still sum exactly.
func TestReconstructPartialChains(t *testing.T) {
	r := obs.NewRecorder()
	// Rejected at admission: zero-length envelope, no slice spans.
	r.AsyncSpan("request", "app0", 0, 1, 5, 5, "rejected")
	// Dropped after queueing and a partial load.
	r.AsyncSpan("request", "app1", 1, 2, 0, 9, "dropped")
	r.SliceSpan("load", "load app1", "gpu0/2g.20gb#0", 1, 2, -1, 6, 8)
	// Failed after exhausting retries: mark only, no surviving spans.
	r.AsyncSpan("request", "app2", 2, 3, 0, 12, "failed")
	r.AsyncMark("retry", "retry", 2, 3, 7, "fault")

	paths := Reconstruct(r.Spans())
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	checkSums(t, paths)
	for _, p := range paths {
		switch p.Req {
		case 1:
			if p.Comp != (Components{}) {
				t.Errorf("rejected: components = %+v, want all zero", p.Comp)
			}
		case 2:
			if p.Comp.Load != 2 || p.Comp.Queue != 7 {
				t.Errorf("dropped: components = %+v", p.Comp)
			}
		case 3:
			if p.Comp.Retry != 7 || p.Comp.Queue != 5 {
				t.Errorf("failed: components = %+v", p.Comp)
			}
		}
	}
}

// TestReconstructOverlapAndSpill: overlapping stage spans and spans
// spilling past the envelope are trimmed so the sum never exceeds the
// end-to-end latency.
func TestReconstructOverlapAndSpill(t *testing.T) {
	r := obs.NewRecorder()
	r.AsyncSpan("request", "app0", 0, 4, 0, 10, "served")
	// Two overlapping exec spans totalling 12 raw seconds inside a
	// 10-second envelope, plus a transfer spilling past the end.
	r.StageSpan("exec app0", "gpu0/3g.40gb#0", "3g.40gb", 0, 4, 0, 1, 8, 7)
	r.StageSpan("exec app0", "gpu0/2g.20gb#0", "2g.20gb", 0, 4, 1, 4, 9, 5)
	r.SliceSpan("transfer", "s0->s1", "gpu0/2g.20gb#0", 0, 4, 1, 9, 15)
	// A load span entirely before arrival: clipped away.
	r.SliceSpan("load", "load app0", "gpu0/3g.40gb#0", 0, 4, -1, -3, -1)

	paths := Reconstruct(r.Spans())
	p := paths[0]
	if p.Comp.Exec != 10 || p.Comp.Transfer != 0 || p.Comp.Load != 0 || p.Comp.Queue != 0 {
		t.Errorf("components = %+v, want exec=10 rest 0", p.Comp)
	}
	checkSums(t, paths)
}

// TestReconstructMigratedChain: a pipeline migration moves later stages
// to different slices mid-request; the chain still sums. Migration hop
// marks (cat "migrate") must not be mistaken for retries.
func TestReconstructMigratedChain(t *testing.T) {
	r := obs.NewRecorder()
	r.AsyncSpan("request", "app0", 0, 5, 0, 12, "served")
	r.StageSpan("exec app0", "gpu0/2g.20gb#0", "2g.20gb", 0, 5, 0, 1, 4, 3)
	r.AsyncMark("migrate", "hop", 0, 5, 4, "gpu0->gpu1")
	r.SliceSpan("transfer", "s0->s1", "gpu1/2g.20gb#0", 0, 5, 1, 4, 5)
	r.StageSpan("exec app0", "gpu1/2g.20gb#0", "2g.20gb", 0, 5, 1, 5, 9, 4)

	paths := Reconstruct(r.Spans())
	p := paths[0]
	if p.Retries != 0 {
		t.Errorf("migration hop counted as retry: retries = %d", p.Retries)
	}
	want := Components{Queue: 4, Load: 0, Exec: 7, Transfer: 1, Retry: 0}
	if p.Comp != want {
		t.Errorf("components = %+v, want %+v", p.Comp, want)
	}
	checkSums(t, paths)
}

// TestReconstructOrphans: slice spans for requests the run never
// finalised (no request envelope) produce no path.
func TestReconstructOrphans(t *testing.T) {
	r := obs.NewRecorder()
	r.StageSpan("exec app0", "gpu0/2g.20gb#0", "2g.20gb", 0, 9, 0, 1, 4, 3)
	r.AsyncMark("retry", "retry", 0, 9, 2, "fault")
	// Instance-scoped spans (req = -1) are never request work.
	r.SliceSpan("load", "launch app0", "gpu0/2g.20gb#0", 0, -1, -1, 0, 5)

	if paths := Reconstruct(r.Spans()); len(paths) != 0 {
		t.Errorf("got %d paths from orphan spans, want 0", len(paths))
	}
}

// TestReconstructOrdering: output is sorted by completion time, ties by
// function then request, independent of span record order.
func TestReconstructOrdering(t *testing.T) {
	r := obs.NewRecorder()
	r.AsyncSpan("request", "app1", 1, 0, 2, 8, "served")
	r.AsyncSpan("request", "app0", 0, 5, 0, 8, "served")
	r.AsyncSpan("request", "app0", 0, 1, 0, 4, "served")

	paths := Reconstruct(r.Spans())
	got := [][2]int{}
	for _, p := range paths {
		got = append(got, [2]int{p.Func, p.Req})
	}
	want := [][2]int{{0, 1}, {0, 5}, {1, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
