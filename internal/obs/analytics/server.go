package analytics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
)

// Live introspection: an opt-in HTTP handler that exposes a finished
// (or running) recorder. Endpoints:
//
//	/metrics      — Prometheus text exposition (scrape-compatible)
//	/analytics    — the full analytics Report as JSON
//	/state        — a driver-supplied platform snapshot as JSON
//	/decisions    — decision-provenance stream (filterable, JSON)
//	/why?req=<id> — one request's complete decision chain (JSON)
//	/debug/pprof/ — the standard Go profiler endpoints
//
// The handler holds references, not copies: serving after the run is
// finished (the simulator's model — run to completion, then serve) is
// race-free because nothing mutates the recorder any more.

// ServerOptions wires the handler's data sources. Nil/zero fields are
// served as empty documents rather than errors, so a partially wired
// server is still inspectable.
type ServerOptions struct {
	// Recorder backs /metrics.
	Recorder *obs.Recorder
	// Report backs /analytics; nil serves an empty report.
	Report *Report
	// State backs /state: any JSON-marshalable value, typically the
	// platform's occupancy snapshot. Kept as an opaque value so this
	// package does not depend on the platform.
	State any
	// Decisions backs /decisions and /why; nil serves empty documents.
	Decisions *decisions.Recorder
	// Util backs /util and /heatmap; nil serves empty documents.
	Util *util.Report
}

// Handler returns the introspection mux.
func Handler(o ServerOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, o.Recorder)
	})

	mux.HandleFunc("/analytics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rp := o.Report
		if rp == nil {
			rp = &Report{}
		}
		_ = rp.WriteJSON(w)
	})

	mux.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.State)
	})

	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var (
			wantKind decisions.Kind
			byKind   bool
			wantFunc = q.Get("func")
			wantReq  int
			byReq    bool
			limit    int
		)
		if s := q.Get("kind"); s != "" {
			k, err := decisions.ParseKind(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			wantKind, byKind = k, true
		}
		if s := q.Get("req"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad req: "+s, http.StatusBadRequest)
				return
			}
			wantReq, byReq = n, true
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad limit: "+s, http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		if !byKind && wantFunc == "" && !byReq && limit == 0 {
			_ = o.Decisions.WriteJSON(w)
			return
		}
		recs := o.Decisions.Snapshot()
		kept := recs[:0]
		for _, rec := range recs {
			if byKind && rec.Kind != wantKind {
				continue
			}
			if wantFunc != "" && rec.Func != wantFunc {
				continue
			}
			if byReq && rec.Req != wantReq {
				continue
			}
			kept = append(kept, rec)
		}
		if limit > 0 && len(kept) > limit {
			kept = kept[len(kept)-limit:]
		}
		doc := struct {
			Total   int                `json:"total"`
			Dropped int                `json:"dropped"`
			Matched int                `json:"matched"`
			Counts  map[string]int     `json:"counts"`
			Records []decisions.Record `json:"records"`
		}{
			Total:   o.Decisions.Total(),
			Dropped: o.Decisions.Dropped(),
			Matched: len(kept),
			Counts:  o.Decisions.Counts(),
			Records: kept,
		}
		if doc.Counts == nil {
			doc.Counts = map[string]int{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(doc)
	})

	mux.HandleFunc("/util", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rp := o.Util
		if rp == nil {
			rp = &util.Report{}
		}
		_ = rp.WriteJSON(w)
	})

	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rp := o.Util
		if rp == nil {
			rp = &util.Report{}
		}
		_ = rp.WriteHeatmap(w)
	})

	mux.HandleFunc("/why", func(w http.ResponseWriter, r *http.Request) {
		s := r.URL.Query().Get("req")
		if s == "" {
			http.Error(w, "missing req parameter: /why?req=<id>", http.StatusBadRequest)
			return
		}
		req, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad req: "+s, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = o.Decisions.WriteChainJSON(w, req)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("fluidfaas introspection\n\n" +
			"/metrics      Prometheus text exposition\n" +
			"/analytics    blame / drift / burn report (JSON)\n" +
			"/state        platform snapshot (JSON)\n" +
			"/decisions    decision provenance, filters: kind, func, req, limit (JSON)\n" +
			"/why?req=<id> one request's decision chain (JSON)\n" +
			"/util         GPU utilization ledger report (JSON)\n" +
			"/heatmap      per-slice utilization heatmap (text)\n" +
			"/debug/pprof  Go profiler\n"))
	})

	return mux
}
