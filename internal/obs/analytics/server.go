package analytics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"fluidfaas/internal/obs"
)

// Live introspection: an opt-in HTTP handler that exposes a finished
// (or running) recorder. Endpoints:
//
//	/metrics      — Prometheus text exposition (scrape-compatible)
//	/analytics    — the full analytics Report as JSON
//	/state        — a driver-supplied platform snapshot as JSON
//	/debug/pprof/ — the standard Go profiler endpoints
//
// The handler holds references, not copies: serving after the run is
// finished (the simulator's model — run to completion, then serve) is
// race-free because nothing mutates the recorder any more.

// ServerOptions wires the handler's data sources. Nil/zero fields are
// served as empty documents rather than errors, so a partially wired
// server is still inspectable.
type ServerOptions struct {
	// Recorder backs /metrics.
	Recorder *obs.Recorder
	// Report backs /analytics; nil serves an empty report.
	Report *Report
	// State backs /state: any JSON-marshalable value, typically the
	// platform's occupancy snapshot. Kept as an opaque value so this
	// package does not depend on the platform.
	State any
}

// Handler returns the introspection mux.
func Handler(o ServerOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, o.Recorder)
	})

	mux.HandleFunc("/analytics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rp := o.Report
		if rp == nil {
			rp = &Report{}
		}
		_ = rp.WriteJSON(w)
	})

	mux.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.State)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("fluidfaas introspection\n\n" +
			"/metrics      Prometheus text exposition\n" +
			"/analytics    blame / drift / burn report (JSON)\n" +
			"/state        platform snapshot (JSON)\n" +
			"/debug/pprof  Go profiler\n"))
	})

	return mux
}
