package analytics

import "sort"

// SLO burn-rate monitoring, after the multi-window multi-burn-rate
// pattern: an error budget (allowed SLO-miss fraction), a fast window
// that catches sharp regressions, and a slow window that suppresses
// pages for blips the budget easily absorbs. An alert fires only when
// BOTH windows burn faster than a severity's threshold; it resolves
// when either window drops back under. All windows are virtual-time
// seconds, so the monitor is as deterministic as the simulation feeding
// it: replaying a run's request log reproduces the alert sequence
// byte-for-byte.

// BurnSeverity orders alert severities.
type BurnSeverity int

// Severities: a page means the budget is being consumed so fast that
// hours remain; a warn means days.
const (
	BurnNone BurnSeverity = iota
	BurnWarn
	BurnPage
)

// String renders the severity for reports.
func (s BurnSeverity) String() string {
	switch s {
	case BurnPage:
		return "page"
	case BurnWarn:
		return "warn"
	default:
		return "none"
	}
}

// BurnAlert is one alert transition on a function's burn state.
type BurnAlert struct {
	Time     float64 `json:"time"`
	Func     string  `json:"func"`
	Severity string  `json:"severity"`
	// Resolved marks the severity de-escalating rather than firing.
	Resolved bool `json:"resolved"`
	// ShortBurn and LongBurn are the burn rates (miss-rate / budget) in
	// the two windows at the transition instant.
	ShortBurn float64 `json:"shortBurn"`
	LongBurn  float64 `json:"longBurn"`
}

// BurnStatus is one function's burn state at end of run.
type BurnStatus struct {
	Func      string  `json:"func"`
	Budget    float64 `json:"budget"`
	ShortBurn float64 `json:"shortBurn"`
	LongBurn  float64 `json:"longBurn"`
	// Misses and Total count over the whole run, not a window.
	Misses int `json:"misses"`
	Total  int `json:"total"`
	// Active is the severity still firing when the run ended.
	Active string `json:"active"`
	// Pages and Warns count fire transitions over the run.
	Pages int `json:"pages"`
	Warns int `json:"warns"`
}

// burnSample is one finalised request in a window deque.
type burnSample struct {
	t    float64
	miss bool
}

// burnWindow is a sliding miss-rate window over virtual time.
type burnWindow struct {
	width   float64
	samples []burnSample
	head    int // index of the oldest in-window sample
	misses  int
	total   int
}

func (w *burnWindow) observe(t float64, miss bool) {
	w.samples = append(w.samples, burnSample{t, miss})
	w.total++
	if miss {
		w.misses++
	}
	for w.head < len(w.samples) && w.samples[w.head].t < t-w.width {
		if w.samples[w.head].miss {
			w.misses--
		}
		w.total--
		w.head++
	}
	// Reclaim the dead prefix once it dominates the deque.
	if w.head > 1024 && w.head*2 > len(w.samples) {
		w.samples = append([]burnSample(nil), w.samples[w.head:]...)
		w.head = 0
	}
}

// burn returns the window's burn rate: miss-rate divided by budget.
// An empty window burns nothing.
func (w *burnWindow) burn(budget float64) float64 {
	if w.total == 0 || budget <= 0 {
		return 0
	}
	return float64(w.misses) / float64(w.total) / budget
}

// funcBurn is one function's monitor state.
type funcBurn struct {
	short, long burnWindow
	misses      int
	total       int
	active      BurnSeverity
	pages       int
	warns       int
}

// BurnConfig parameterises the monitor; zero fields take defaults.
type BurnConfig struct {
	// Budget is the allowed SLO-miss fraction (default 0.01 — a 99%
	// objective).
	Budget float64
	// ShortWindow and LongWindow are the two burn windows in seconds
	// (defaults 300 and 3600).
	ShortWindow float64
	LongWindow  float64
	// PageBurn and WarnBurn are the burn-rate thresholds (defaults 14.4
	// and 6 — the canonical 1h/6h budget-exhaustion rates).
	PageBurn float64
	WarnBurn float64
}

// withDefaults fills zero fields.
func (c BurnConfig) withDefaults() BurnConfig {
	if c.Budget <= 0 {
		c.Budget = 0.01
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 300
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 3600
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 14.4
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 6
	}
	return c
}

// BurnMonitor tracks per-function SLO burn rates over two sliding
// virtual-time windows and raises threshold alerts.
type BurnMonitor struct {
	cfg    BurnConfig
	funcs  map[string]*funcBurn
	alerts []BurnAlert
}

// NewBurnMonitor returns a monitor with cfg's zero fields defaulted.
func NewBurnMonitor(cfg BurnConfig) *BurnMonitor {
	return &BurnMonitor{cfg: cfg.withDefaults(), funcs: map[string]*funcBurn{}}
}

// Observe feeds one finalised request (times must be non-decreasing,
// which completion order guarantees) and returns the alert transition
// it caused, if any.
func (m *BurnMonitor) Observe(fn string, t float64, miss bool) *BurnAlert {
	fb, ok := m.funcs[fn]
	if !ok {
		fb = &funcBurn{
			short: burnWindow{width: m.cfg.ShortWindow},
			long:  burnWindow{width: m.cfg.LongWindow},
		}
		m.funcs[fn] = fb
	}
	fb.total++
	if miss {
		fb.misses++
	}
	fb.short.observe(t, miss)
	fb.long.observe(t, miss)

	sb := fb.short.burn(m.cfg.Budget)
	lb := fb.long.burn(m.cfg.Budget)
	level := BurnNone
	switch {
	case sb >= m.cfg.PageBurn && lb >= m.cfg.PageBurn:
		level = BurnPage
	case sb >= m.cfg.WarnBurn && lb >= m.cfg.WarnBurn:
		level = BurnWarn
	}
	if level == fb.active {
		return nil
	}
	resolved := level < fb.active
	fb.active = level
	if !resolved {
		switch level {
		case BurnPage:
			fb.pages++
		case BurnWarn:
			fb.warns++
		}
	}
	// A resolve reports the level transitioned TO, so the alert stream
	// reads as a state machine (page -> warn -> none).
	a := BurnAlert{
		Time: t, Func: fn, Severity: level.String(), Resolved: resolved,
		ShortBurn: sb, LongBurn: lb,
	}
	m.alerts = append(m.alerts, a)
	return &a
}

// Alerts returns every alert transition in firing order.
func (m *BurnMonitor) Alerts() []BurnAlert { return m.alerts }

// Status returns per-function burn state, sorted by function name.
func (m *BurnMonitor) Status() []BurnStatus {
	out := make([]BurnStatus, 0, len(m.funcs))
	for fn, fb := range m.funcs {
		out = append(out, BurnStatus{
			Func: fn, Budget: m.cfg.Budget,
			ShortBurn: fb.short.burn(m.cfg.Budget),
			LongBurn:  fb.long.burn(m.cfg.Budget),
			Misses:    fb.misses, Total: fb.total,
			Active: fb.active.String(),
			Pages:  fb.pages, Warns: fb.warns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}
