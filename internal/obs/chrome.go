package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Chrome trace-event export: one process per node with one thread per
// MIG slice (so Perfetto shows a utilisation timeline per slice), plus
// a "requests" process carrying each request's causal chain as nested
// async spans (queue -> load/exec/transfer hops happen on the slice
// tracks; retries and lifecycle instants are marks). The output is a
// JSON-object-format trace ({"traceEvents": [...]}) per the trace-event
// spec and loads directly in Perfetto / chrome://tracing.
//
// The export is deterministic: events are emitted in record order,
// timestamps are integral microseconds, and all JSON field order is
// fixed by the event struct.

// chromeEvent is one trace event. Field order fixes the byte layout.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Reserved pids: requests (async chains) and platform-wide marks live
// in their own processes; node n's hardware tracks use pid nodePidBase+n.
const (
	requestsPid = 1
	platformPid = 2
	nodePidBase = 10
)

func usec(t float64) int64 { return int64(math.Round(t * 1e6)) }

// asyncID is the async chain identity of a request.
func asyncID(fn, req int) string { return fmt.Sprintf("f%d-r%d", fn, req) }

// WriteChromeTrace writes the recorder's spans as Chrome trace-event
// JSON. Same recorder contents ⇒ byte-identical output.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	var evs []chromeEvent

	// Metadata: name the processes and the per-slice threads.
	meta := func(pid int, name string) {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(requestsPid, "requests")
	meta(platformPid, "platform")
	evs = append(evs, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: platformPid, Tid: 0,
		Args: map[string]any{"name": "lifecycle"},
	})
	namedNodes := map[int]bool{}
	// tid within a node process is the track's per-node index.
	tids := make(map[string]int, len(r.Tracks()))
	nodeNext := map[int]int{}
	for _, tr := range r.Tracks() {
		pid := nodePidBase + tr.Node
		if !namedNodes[tr.Node] {
			namedNodes[tr.Node] = true
			meta(pid, fmt.Sprintf("node%d", tr.Node))
		}
		tid := nodeNext[tr.Node]
		nodeNext[tr.Node]++
		tids[tr.Name] = tid
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": tr.Name},
		})
	}
	nodeOf := make(map[string]int, len(r.Tracks()))
	for _, tr := range r.Tracks() {
		nodeOf[tr.Name] = tr.Node
	}

	for _, sp := range r.Spans() {
		switch sp.Kind {
		case KindSlice:
			dur := usec(sp.End) - usec(sp.Start)
			args := map[string]any{"func": sp.Func, "req": sp.Req}
			if sp.Stage >= 0 {
				args["stage"] = sp.Stage
			}
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X", Ts: usec(sp.Start), Dur: &dur,
				Pid: nodePidBase + nodeOf[sp.Track], Tid: tids[sp.Track], Args: args,
			})
		case KindAsync:
			args := map[string]any{"func": sp.Func, "req": sp.Req}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			id := asyncID(sp.Func, sp.Req)
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "b", Ts: usec(sp.Start),
				Pid: requestsPid, Tid: 0, ID: id, Args: args,
			})
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "e", Ts: usec(sp.End),
				Pid: requestsPid, Tid: 0, ID: id,
			})
		case KindAsyncMark:
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "n", Ts: usec(sp.Start),
				Pid: requestsPid, Tid: 0, ID: asyncID(sp.Func, sp.Req),
				Args: map[string]any{"func": sp.Func, "req": sp.Req, "detail": sp.Detail},
			})
		case KindCounter:
			// Counter timeline on the owning track's process (health
			// scores per slice); unregistered tracks chart platform-wide.
			pid, tid := platformPid, 0
			if t, ok := tids[sp.Track]; ok {
				pid, tid = nodePidBase+nodeOf[sp.Track], t
			}
			evs = append(evs, chromeEvent{
				Name: sp.Name + " " + sp.Track, Cat: sp.Cat, Ph: "C",
				Ts: usec(sp.Start), Pid: pid, Tid: tid,
				Args: map[string]any{"value": sp.Value},
			})
		case KindMark:
			pid, tid := platformPid, 0
			if t, ok := tids[sp.Track]; ok {
				pid, tid = nodePidBase+nodeOf[sp.Track], t
			}
			args := map[string]any{"subject": sp.Track}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			evs = append(evs, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "i", Ts: usec(sp.Start),
				Pid: pid, Tid: tid, Scope: "t", Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
