package util

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Segment is one resolved run of a single state on a slice. Consecutive
// segments of a slice abut exactly (bitwise-equal boundaries).
type Segment struct {
	State State   `json:"state"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Totals is slice-seconds (or GPC-seconds) by state. Field order fixes
// the JSON byte layout.
type Totals struct {
	BusyExec      float64 `json:"busy_exec"`
	BusyLoad      float64 `json:"busy_load"`
	BusyTransfer  float64 `json:"busy_transfer"`
	WarmIdle      float64 `json:"warm_idle"`
	ColdIdle      float64 `json:"cold_idle"`
	Stranded      float64 `json:"stranded"`
	Quarantined   float64 `json:"quarantined"`
	Reconfiguring float64 `json:"reconfiguring"`
}

func (t *Totals) ptr(s State) *float64 {
	switch s {
	case BusyExec:
		return &t.BusyExec
	case BusyLoad:
		return &t.BusyLoad
	case BusyTransfer:
		return &t.BusyTransfer
	case WarmIdle:
		return &t.WarmIdle
	case ColdIdle:
		return &t.ColdIdle
	case Stranded:
		return &t.Stranded
	case Quarantined:
		return &t.Quarantined
	case Reconfiguring:
		return &t.Reconfiguring
	}
	panic("util: invalid state " + s.String())
}

// Add accumulates sec seconds of state s.
func (t *Totals) Add(s State, sec float64) { *t.ptr(s) += sec }

// AddScaled accumulates k × o into t (GPC weighting).
func (t *Totals) AddScaled(o Totals, k float64) {
	for _, s := range States {
		*t.ptr(s) += k * o.Get(s)
	}
}

// Get returns the seconds accumulated under state s.
func (t Totals) Get(s State) float64 { return *t.ptr(s) }

// Busy returns the productive seconds (exec + load + transfer).
func (t Totals) Busy() float64 { return t.BusyExec + t.BusyLoad + t.BusyTransfer }

// Sum returns the seconds across all states.
func (t Totals) Sum() float64 {
	sum := 0.0
	for _, s := range States {
		sum += t.Get(s)
	}
	return sum
}

// SliceReport is one slice's resolved timeline and totals.
type SliceReport struct {
	ID    string  `json:"id"`
	Node  int     `json:"node"`
	GPU   int     `json:"gpu"`
	Type  string  `json:"type"`
	GPCs  int     `json:"gpcs"`
	MemGB float64 `json:"mem_gb"`
	// Wall is the slice's total existence time across its epochs.
	Wall     float64   `json:"wall"`
	Seconds  Totals    `json:"seconds"`
	Segments []Segment `json:"segments"`
}

// GPUReport rolls a GPU's slices up, in plain and GPC-weighted seconds.
type GPUReport struct {
	Node       int    `json:"node"`
	GPU        int    `json:"gpu"`
	GPCs       int    `json:"gpcs"`
	Seconds    Totals `json:"seconds"`
	GPCSeconds Totals `json:"gpc_seconds"`
}

// NodeReport rolls a node's GPUs up.
type NodeReport struct {
	Node       int    `json:"node"`
	GPCs       int    `json:"gpcs"`
	Seconds    Totals `json:"seconds"`
	GPCSeconds Totals `json:"gpc_seconds"`
}

// Report is the resolved utilization ledger: per-slice segments with
// GPU/node/cluster roll-ups and the fragmentation-analytics series.
// All orders are deterministic (slice registration order).
type Report struct {
	// Duration is the run length the ledger was closed at.
	Duration float64 `json:"duration"`
	// SliceSeconds and GPCSeconds are the total accounted capacity
	// (the conservation denominators).
	SliceSeconds float64 `json:"slice_seconds"`
	GPCSeconds   float64 `json:"gpc_seconds"`
	// Cluster is the cluster-wide roll-up in slice-seconds; ClusterGPC
	// weights each slice by its GPC count (so a wasted 4g slice-second
	// costs 4× a wasted 1g one, matching the paper's GPU-time metric).
	Cluster    Totals `json:"cluster"`
	ClusterGPC Totals `json:"cluster_gpc_seconds"`

	Nodes  []NodeReport  `json:"nodes"`
	GPUs   []GPUReport   `json:"gpus"`
	Slices []SliceReport `json:"slices"`

	Fragmentation []FragSample `json:"fragmentation"`
}

// build resolves every epoch and aggregates the roll-ups.
func (l *Ledger) build(end float64) *Report {
	rep := &Report{Duration: end, Fragmentation: l.frag}
	type gpuKey struct{ node, gpu int }
	gpuIdx := map[gpuKey]int{}
	nodeIdx := map[int]int{}
	for _, id := range l.order {
		ss := l.slices[id]
		sr := SliceReport{
			ID: ss.id, Node: ss.node, GPU: ss.gpu,
			Type: ss.typ, GPCs: ss.gpcs, MemGB: ss.memGB,
		}
		for _, e := range ss.epochs {
			stop := end
			if e.died >= 0 && e.died < stop {
				stop = e.died
			}
			if stop > e.born {
				sr.Wall += stop - e.born
			}
			for _, seg := range e.resolve(end) {
				sr.Segments = append(sr.Segments, seg)
				sr.Seconds.Add(seg.State, seg.End-seg.Start)
			}
		}
		rep.SliceSeconds += sr.Wall
		rep.GPCSeconds += float64(sr.GPCs) * sr.Wall
		rep.Cluster.AddScaled(sr.Seconds, 1)
		rep.ClusterGPC.AddScaled(sr.Seconds, float64(sr.GPCs))

		gk := gpuKey{ss.node, ss.gpu}
		gi, ok := gpuIdx[gk]
		if !ok {
			gi = len(rep.GPUs)
			gpuIdx[gk] = gi
			rep.GPUs = append(rep.GPUs, GPUReport{Node: ss.node, GPU: ss.gpu})
		}
		rep.GPUs[gi].GPCs += sr.GPCs
		rep.GPUs[gi].Seconds.AddScaled(sr.Seconds, 1)
		rep.GPUs[gi].GPCSeconds.AddScaled(sr.Seconds, float64(sr.GPCs))

		ni, ok := nodeIdx[ss.node]
		if !ok {
			ni = len(rep.Nodes)
			nodeIdx[ss.node] = ni
			rep.Nodes = append(rep.Nodes, NodeReport{Node: ss.node})
		}
		rep.Nodes[ni].GPCs += sr.GPCs
		rep.Nodes[ni].Seconds.AddScaled(sr.Seconds, 1)
		rep.Nodes[ni].GPCSeconds.AddScaled(sr.Seconds, float64(sr.GPCs))

		rep.Slices = append(rep.Slices, sr)
	}
	return rep
}

// conservationEps bounds the floating-point slack the conservation
// check tolerates when summing state seconds (the segment boundaries
// themselves must match exactly).
const conservationEps = 1e-6

// Check verifies the conservation invariant on the resolved report:
// every slice's segments tile its epochs exactly — first boundary at
// birth, consecutive segments abutting with bitwise-equal floats, last
// boundary at death (or run end) — and the per-state seconds sum back
// to the slice's wall time. An error here means the ledger lost or
// double-counted slice-seconds.
func (l *Ledger) Check() error {
	if l == nil {
		return nil
	}
	rep := l.Report()
	end := l.end
	for _, sr := range rep.Slices {
		ss := l.slices[sr.ID]
		si := 0
		for _, e := range ss.epochs {
			stop := end
			if e.died >= 0 && e.died < stop {
				stop = e.died
			}
			if stop <= e.born {
				continue
			}
			prev := e.born
			for si < len(sr.Segments) && sr.Segments[si].Start < stop {
				seg := sr.Segments[si]
				if seg.Start != prev {
					return fmt.Errorf("util: %s: segment gap [%v != %v)", sr.ID, prev, seg.Start)
				}
				if seg.End <= seg.Start {
					return fmt.Errorf("util: %s: empty segment at %v", sr.ID, seg.Start)
				}
				prev = seg.End
				si++
			}
			if prev != stop {
				return fmt.Errorf("util: %s: epoch ends at %v, segments at %v", sr.ID, stop, prev)
			}
		}
		if si != len(sr.Segments) {
			return fmt.Errorf("util: %s: %d segments outside any epoch", sr.ID, len(sr.Segments)-si)
		}
		if d := math.Abs(sr.Seconds.Sum() - sr.Wall); d > conservationEps*math.Max(1, sr.Wall) {
			return fmt.Errorf("util: %s: state seconds %v != wall %v (off by %v)",
				sr.ID, sr.Seconds.Sum(), sr.Wall, d)
		}
	}
	if d := math.Abs(rep.Cluster.Sum() - rep.SliceSeconds); d > conservationEps*math.Max(1, rep.SliceSeconds) {
		return fmt.Errorf("util: cluster seconds %v != capacity %v", rep.Cluster.Sum(), rep.SliceSeconds)
	}
	return nil
}

// WriteJSON writes the report as indented JSON. Deterministic: struct
// field order plus registration-ordered slices ⇒ identical reports
// produce byte-identical output.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
