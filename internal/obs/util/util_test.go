package util

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// reg registers a 1-GPC test slice with a cold-idle base at t=0.
func reg(l *Ledger, id string) {
	l.Register(id, 0, 0, "1g.10gb", 1, 10, 0, ColdIdle)
}

func segEq(t *testing.T, got []Segment, want []Segment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("segments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestNilLedger: every method on the nil sink is a safe no-op, and the
// nil report is nil.
func TestNilLedger(t *testing.T) {
	var l *Ledger
	if l.Enabled() {
		t.Fatal("nil ledger claims to be enabled")
	}
	reg(l, "a")
	l.SetBase("a", 1, WarmIdle)
	l.Busy("a", BusyExec, 1, 2)
	l.CancelBusy("a", 1.5)
	l.Retire("a", 3)
	l.AddFragSample(FragSample{Time: 1})
	l.Close(10)
	if l.Report() != nil {
		t.Fatal("nil ledger produced a report")
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestResolvePriority: overlapping exec/load/transfer claims resolve in
// priority order over the base timeline.
func TestResolvePriority(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.SetBase("a", 1, WarmIdle)
	l.Busy("a", BusyTransfer, 2, 8)
	l.Busy("a", BusyLoad, 3, 7)
	l.Busy("a", BusyExec, 4, 6)
	l.Close(10)
	segEq(t, l.Report().Slices[0].Segments, []Segment{
		{ColdIdle, 0, 1}, {WarmIdle, 1, 2},
		{BusyTransfer, 2, 3}, {BusyLoad, 3, 4}, {BusyExec, 4, 6},
		{BusyLoad, 6, 7}, {BusyTransfer, 7, 8}, {WarmIdle, 8, 10},
	})
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroLengthIntervals: zero- and negative-length busy claims carry
// no slice-seconds and are dropped, leaving the base timeline intact.
func TestZeroLengthIntervals(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.Busy("a", BusyExec, 5, 5)
	l.Busy("a", BusyLoad, 6, 4)
	l.Close(10)
	segEq(t, l.Report().Slices[0].Segments, []Segment{{ColdIdle, 0, 10}})
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSameTimestampTransitions: a second base transition at the same
// instant wins (teardowns collapse several flips into one timestamp),
// including merging back into the preceding point when the flip undoes
// itself.
func TestSameTimestampTransitions(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.SetBase("a", 3, WarmIdle)
	l.SetBase("a", 3, Quarantined) // same-instant override
	l.SetBase("a", 5, WarmIdle)
	l.SetBase("a", 5, Quarantined) // override that undoes the flip
	l.Close(8)
	segEq(t, l.Report().Slices[0].Segments, []Segment{
		{ColdIdle, 0, 3}, {Quarantined, 3, 8},
	})
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenAtEnd: a busy claim recorded upfront with an end time past the
// run (the platform records spans with future ends) is clipped to the
// close boundary, and an epoch that never retires runs to the end.
func TestOpenAtEnd(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.SetBase("a", 1, WarmIdle)
	l.Busy("a", BusyExec, 8, 25) // ends past the run
	l.Close(10)
	rep := l.Report()
	segEq(t, rep.Slices[0].Segments, []Segment{
		{ColdIdle, 0, 1}, {WarmIdle, 1, 8}, {BusyExec, 8, 10},
	})
	if got := rep.Slices[0].Seconds.BusyExec; got != 2 {
		t.Fatalf("clipped exec seconds = %v, want 2", got)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSliceChurn: Retire + Register under the same ID models a
// Reconfigure replacing a slice; the wall time skips the gap between
// epochs and conservation holds per epoch.
func TestSliceChurn(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.SetBase("a", 1, Reconfiguring)
	l.Retire("a", 2)
	l.Register("a", 0, 0, "2g.20gb", 2, 20, 4, WarmIdle)
	l.Busy("a", BusyExec, 5, 6)
	l.Close(10)
	rep := l.Report()
	sr := rep.Slices[0]
	if sr.Wall != 8 { // [0,2) + [4,10)
		t.Fatalf("wall = %v, want 8", sr.Wall)
	}
	segEq(t, sr.Segments, []Segment{
		{ColdIdle, 0, 1}, {Reconfiguring, 1, 2},
		{WarmIdle, 4, 5}, {BusyExec, 5, 6}, {WarmIdle, 6, 10},
	})
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelBusy: truncation removes claims past the cut and clips the
// spanning one, exactly like the span recorder's CancelSliceWork.
func TestCancelBusy(t *testing.T) {
	l := NewLedger()
	reg(l, "a")
	l.Busy("a", BusyLoad, 1, 3)
	l.Busy("a", BusyExec, 3, 9)  // spans the cut: clipped
	l.Busy("a", BusyExec, 7, 12) // starts after the cut: removed
	l.CancelBusy("a", 5)
	l.Close(10)
	segEq(t, l.Report().Slices[0].Segments, []Segment{
		{ColdIdle, 0, 1}, {BusyLoad, 1, 3}, {BusyExec, 3, 5}, {ColdIdle, 5, 10},
	})
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRollups: GPU/node/cluster aggregation weights GPC-seconds by the
// slice size and sums plain seconds unweighted.
func TestRollups(t *testing.T) {
	l := NewLedger()
	l.Register("g0/4g#0", 0, 0, "4g.40gb", 4, 40, 0, ColdIdle)
	l.Register("g1/1g#0", 0, 1, "1g.10gb", 1, 10, 0, Stranded)
	l.Busy("g0/4g#0", BusyExec, 0, 10)
	l.Close(10)
	rep := l.Report()
	if rep.SliceSeconds != 20 || rep.GPCSeconds != 50 {
		t.Fatalf("capacity = %v slice-s / %v gpc-s, want 20 / 50", rep.SliceSeconds, rep.GPCSeconds)
	}
	if rep.Cluster.BusyExec != 10 || rep.ClusterGPC.BusyExec != 40 {
		t.Fatalf("cluster exec = %v / %v gpc, want 10 / 40", rep.Cluster.BusyExec, rep.ClusterGPC.BusyExec)
	}
	if rep.Cluster.Stranded != 10 || rep.ClusterGPC.Stranded != 10 {
		t.Fatalf("cluster stranded = %v / %v gpc, want 10 / 10", rep.Cluster.Stranded, rep.ClusterGPC.Stranded)
	}
	if len(rep.Nodes) != 1 || len(rep.GPUs) != 2 {
		t.Fatalf("rollup shape: %d nodes, %d gpus", len(rep.Nodes), len(rep.GPUs))
	}
	if got := rep.Nodes[0].GPCSeconds.Sum(); math.Abs(got-50) > 1e-12 {
		t.Fatalf("node gpc-seconds = %v, want 50", got)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicJSON: identical ledgers produce byte-identical
// reports (the CI determinism diff depends on this).
func TestDeterministicJSON(t *testing.T) {
	build := func() *Ledger {
		l := NewLedger()
		reg(l, "a")
		l.Register("b", 0, 0, "2g.20gb", 2, 20, 0, WarmIdle)
		l.Busy("a", BusyExec, 1, 4)
		l.Busy("b", BusyLoad, 2, 3)
		l.SetBase("a", 6, WarmIdle)
		l.AddFragSample(FragSample{Time: 5, Index: 0.25, FreeGPCs: 4, StrandedGPCs: 1, StrandedGB: 10, LargestPlaceableGPCs: 2})
		l.Close(10)
		return l
	}
	var a, b bytes.Buffer
	if err := build().Report().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Report().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical ledgers produced different JSON")
	}
	for _, want := range []string{`"busy-exec"`, `"cluster"`, `"stranded_gpcs"`} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("report JSON lacks %s", want)
		}
	}
}

// TestHeatmap: the text heatmap renders every slice row and the
// GPC-weighted waste summary.
func TestHeatmap(t *testing.T) {
	l := NewLedger()
	l.Register("g0/4g#0", 0, 0, "4g.40gb", 4, 40, 0, ColdIdle)
	l.Register("g0/1g#1", 0, 0, "1g.10gb", 1, 10, 0, Stranded)
	l.Busy("g0/4g#0", BusyExec, 0, 5)
	l.AddFragSample(FragSample{Time: 9, Index: 0.2, FreeGPCs: 5, StrandedGPCs: 1, StrandedGB: 10})
	l.Close(10)
	var b bytes.Buffer
	if err := l.Report().WriteHeatmap(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"node0", "gpu0", "4g.40gb#0", "1g.10gb#1",
		"where did the GPU-seconds go", "stranded", "fragmentation (last sample"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heatmap lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "|EEEEEEEEEEEEEEEEEEEEWWWWWWWWWWWWWWWWWWWW|") &&
		!strings.Contains(out, "|EEEEEEEEEEEEEEEEEEEE....................|") {
		t.Fatalf("4g bar not half exec:\n%s", out)
	}
}

// TestPanics: the ledger turns caller bugs into panics rather than
// silently corrupting conservation.
func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(l *Ledger)
	}{
		{"register live", func(l *Ledger) { reg(l, "a"); reg(l, "a") }},
		{"busy base state", func(l *Ledger) { reg(l, "a"); l.Busy("a", WarmIdle, 1, 2) }},
		{"setbase busy state", func(l *Ledger) { reg(l, "a"); l.SetBase("a", 1, BusyExec) }},
		{"setbase backwards", func(l *Ledger) { reg(l, "a"); l.SetBase("a", 5, WarmIdle); l.SetBase("a", 3, ColdIdle) }},
		{"unregistered", func(l *Ledger) { l.SetBase("ghost", 1, WarmIdle) }},
		{"retire twice", func(l *Ledger) { reg(l, "a"); l.Retire("a", 1); l.Retire("a", 2) }},
		{"frag out of order", func(l *Ledger) {
			l.AddFragSample(FragSample{Time: 5})
			l.AddFragSample(FragSample{Time: 4})
		}},
		{"register after close", func(l *Ledger) { l.Close(1); reg(l, "a") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.f(NewLedger())
		})
	}
}
