// Package util is the GPU utilization ledger: a time-weighted per-slice
// state integrator that classifies every slice-second of a run into a
// closed set of states, so the platform can answer "where did the
// GPU-seconds go" for hardware the way the span trace answers it for
// requests. The paper's premise is that coarse allocation strands
// capacity (§4); this ledger is the instrument that measures the
// stranding — and the waste attribution HAS-GPU-style repartition
// policies need as input (ROADMAP §2).
//
// The ledger is a pure observer fed by the platform's slice-state
// transition hooks (bind/unbind, keepalive park, quarantine/probation,
// fault teardown) plus busy-interval claims mirroring the span
// recorder's load/exec/transfer spans. Like every observer layer here,
// a nil *Ledger is the disabled sink: every method short-circuits, so a
// run with the ledger attached is bit-for-bit identical to one without.
//
// Model: each slice carries a piecewise-constant BASE timeline (what
// the slice is when no work runs on it: warm-idle, cold-idle, stranded,
// quarantined, reconfiguring) and a set of BUSY interval claims (exec,
// load, transfer). At Close the two resolve into contiguous per-slice
// segments by a priority sweep — exec over load over transfer over
// base — so the state seconds of one slice tile its wall time exactly
// (the conservation invariant Check enforces).
package util

import (
	"fmt"
	"sort"
)

// State classifies one slice-second. The declaration order is the
// resolution priority for busy states (exec wins over load wins over
// transfer) and the canonical order of every export.
type State int

// The closed state set. Every slice-second of a run lands in exactly
// one of these.
const (
	// BusyExec: a stage execution ran on the slice.
	BusyExec State = iota
	// BusyLoad: model weights were being fetched onto the slice.
	BusyLoad
	// BusyTransfer: an inter-stage activation transfer ran.
	BusyTransfer
	// WarmIdle: the slice is allocated (exclusive instance or
	// time-sharing pool) but no work is running — keepalive cost.
	WarmIdle
	// ColdIdle: the slice is free and at least one registered deployable
	// unit (monolithic function or pipeline stage) could be placed on it.
	ColdIdle
	// Stranded: the slice is free but too small for any registered
	// stage — fragmentation waste, the capacity §4 says MIG strands.
	Stranded
	// Quarantined: the slice is out of placement (unhealthy hardware or
	// gray-failure quarantine).
	Quarantined
	// Reconfiguring: the slice's GPU is mid-repartition and unavailable.
	Reconfiguring
	numStates
)

// NumStates is the number of ledger states; State values are dense in
// [0, NumStates).
const NumStates = int(numStates)

// States lists all states in canonical (priority/export) order.
var States = []State{
	BusyExec, BusyLoad, BusyTransfer, WarmIdle,
	ColdIdle, Stranded, Quarantined, Reconfiguring,
}

var stateNames = [numStates]string{
	BusyExec:      "busy-exec",
	BusyLoad:      "busy-load",
	BusyTransfer:  "busy-transfer",
	WarmIdle:      "warm-idle",
	ColdIdle:      "cold-idle",
	Stranded:      "stranded",
	Quarantined:   "quarantined",
	Reconfiguring: "reconfiguring",
}

// String names the state as it appears in every export.
func (s State) String() string {
	if s < 0 || s >= numStates {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalJSON renders the state name, so Segment and Totals JSON carry
// readable states instead of enum ordinals.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Busy reports whether the state is a busy claim state (the only states
// Ledger.Busy accepts).
func (s State) Busy() bool { return s <= BusyTransfer }

// basePoint is one base-timeline transition: the slice's idle state
// from t onward (until the next point).
type basePoint struct {
	t float64
	s State
}

// claim is one busy interval on a slice.
type claim struct {
	s          State
	start, end float64
}

// epoch is one registration lifetime of a slice ID. Reconfigure retires
// the old slices and registers fresh ones (possibly under the same ID),
// so a slice ID maps to a sequence of non-overlapping epochs.
type epoch struct {
	born float64
	died float64 // < 0 while the epoch is open
	base []basePoint
	busy []claim
}

// sliceSeries is the ledger's record of one slice ID.
type sliceSeries struct {
	id     string
	node   int
	gpu    int
	typ    string
	gpcs   int
	memGB  float64
	epochs []*epoch
}

func (ss *sliceSeries) open() *epoch {
	if n := len(ss.epochs); n > 0 && ss.epochs[n-1].died < 0 {
		return ss.epochs[n-1]
	}
	return nil
}

// FragSample is one fragmentation-analytics sample: the scalar
// fragmentation index decomposed into stranded capacity and placement
// headroom.
type FragSample struct {
	// Time is the sample's virtual time.
	Time float64 `json:"time"`
	// Index is mig.FragmentationIndex over the free slices.
	Index float64 `json:"index"`
	// FreeGPCs is the total free compute at the sample.
	FreeGPCs int `json:"free_gpcs"`
	// StrandedGPCs and StrandedGB are the free capacity no registered
	// deployable unit can use — the fragmentation waste decomposition.
	StrandedGPCs int     `json:"stranded_gpcs"`
	StrandedGB   float64 `json:"stranded_gb"`
	// LargestPlaceableGPCs is the compute of the largest free slice a
	// registered stage could still be placed on (0 = nothing placeable):
	// the headroom series a repartition policy would watch.
	LargestPlaceableGPCs int `json:"largest_placeable_gpcs"`
}

// Ledger accumulates slice-state timelines for one run. The zero value
// is not ready — use NewLedger; a nil *Ledger is the disabled sink and
// every method short-circuits.
type Ledger struct {
	slices map[string]*sliceSeries
	order  []string // first-registration order, fixes every export
	frag   []FragSample

	maxT   float64
	closed bool
	end    float64
	report *Report
}

// NewLedger returns an empty, enabled ledger.
func NewLedger() *Ledger {
	return &Ledger{slices: make(map[string]*sliceSeries)}
}

// Enabled reports whether the ledger collects anything.
func (l *Ledger) Enabled() bool { return l != nil }

func (l *Ledger) touchTime(t float64) {
	if t > l.maxT {
		l.maxT = t
	}
}

func (l *Ledger) series(id string) *sliceSeries {
	ss := l.slices[id]
	if ss == nil {
		panic("util: unregistered slice " + id)
	}
	return ss
}

// Register opens an epoch for a slice: topology identity, capacity, and
// the base state it starts in. Registering an ID again after Retire
// models slice churn across a Reconfigure; registering while an epoch
// is still open is a caller bug.
func (l *Ledger) Register(id string, node, gpu int, sliceType string, gpcs int, memGB, now float64, base State) {
	if l == nil {
		return
	}
	if l.closed {
		panic("util: Register after Close")
	}
	ss := l.slices[id]
	if ss == nil {
		ss = &sliceSeries{id: id, node: node, gpu: gpu, typ: sliceType, gpcs: gpcs, memGB: memGB}
		l.slices[id] = ss
		l.order = append(l.order, id)
	} else if ss.open() != nil {
		panic("util: Register of live slice " + id)
	}
	if n := len(ss.epochs); n > 0 && now < ss.epochs[n-1].died {
		panic("util: epoch overlaps retired predecessor on " + id)
	}
	ss.epochs = append(ss.epochs, &epoch{
		born: now, died: -1,
		base: []basePoint{{t: now, s: base}},
	})
	l.touchTime(now)
}

// Retire closes the slice's open epoch at now (the slice ceases to
// exist, e.g. its GPU is being repartitioned into a different layout).
func (l *Ledger) Retire(id string, now float64) {
	if l == nil {
		return
	}
	ss := l.series(id)
	e := ss.open()
	if e == nil {
		panic("util: Retire of retired slice " + id)
	}
	if now < e.born {
		panic("util: Retire before Register on " + id)
	}
	e.died = now
	l.touchTime(now)
}

// SetBase records the slice's base (no-work) state from now on. Calls
// with an unchanged state are no-ops, so hooks can re-derive the state
// after every transition without bloating the timeline; a second
// transition at the same timestamp wins (teardowns collapse several
// state flips into one instant).
func (l *Ledger) SetBase(id string, now float64, s State) {
	if l == nil {
		return
	}
	if s.Busy() {
		panic("util: busy state " + s.String() + " is claimed via Busy, not SetBase")
	}
	e := l.series(id).open()
	if e == nil {
		panic("util: SetBase on retired slice " + id)
	}
	last := &e.base[len(e.base)-1]
	if now < last.t {
		panic("util: SetBase time goes backwards on " + id)
	}
	if last.s == s {
		return
	}
	if now == last.t {
		last.s = s
		// Collapsing may re-merge with the point before it.
		if n := len(e.base); n >= 2 && e.base[n-2].s == s {
			e.base = e.base[:n-1]
		}
		return
	}
	e.base = append(e.base, basePoint{t: now, s: s})
	l.touchTime(now)
}

// Busy claims a busy interval on the slice, mirroring the span the
// trace recorder gets (including spans recorded upfront with future end
// times — Close clips them to the run window). Zero- and negative-
// length claims are dropped: they carry no slice-seconds.
func (l *Ledger) Busy(id string, s State, start, end float64) {
	if l == nil {
		return
	}
	if !s.Busy() {
		panic("util: Busy with non-busy state " + s.String())
	}
	if end <= start {
		return
	}
	e := l.series(id).open()
	if e == nil {
		panic("util: Busy on retired slice " + id)
	}
	e.busy = append(e.busy, claim{s: s, start: start, end: end})
	l.touchTime(start)
}

// CancelBusy truncates the slice's busy claims at `at`: claims that
// start later vanish, claims spanning it end there. Fault and
// quarantine teardowns call this so upfront-recorded work that died
// with its owner does not masquerade as busy time after the teardown —
// the ledger-side twin of obs.Recorder.CancelSliceWork.
func (l *Ledger) CancelBusy(id string, at float64) {
	if l == nil {
		return
	}
	e := l.series(id).open()
	if e == nil {
		return
	}
	kept := e.busy[:0]
	for _, c := range e.busy {
		if c.end > at {
			if c.start >= at {
				continue
			}
			c.end = at
		}
		kept = append(kept, c)
	}
	e.busy = kept
}

// AddFragSample appends one fragmentation-analytics sample. Samples
// must arrive in non-decreasing time order (they do: the platform
// samples on its single-threaded engine).
func (l *Ledger) AddFragSample(s FragSample) {
	if l == nil {
		return
	}
	if n := len(l.frag); n > 0 && s.Time < l.frag[n-1].Time {
		panic("util: fragmentation samples out of order")
	}
	l.frag = append(l.frag, s)
	l.touchTime(s.Time)
}

// Close ends the run at `end`: every open epoch is bounded there, busy
// claims are clipped to their epochs, and the base/busy timelines
// resolve into the contiguous per-slice segments Report exposes.
// Idempotent; later calls are no-ops.
func (l *Ledger) Close(end float64) {
	if l == nil || l.closed {
		return
	}
	l.closed = true
	l.end = end
	l.touchTime(end)
	l.report = l.build(end)
}

// Closed reports whether the ledger has been resolved.
func (l *Ledger) Closed() bool { return l != nil && l.closed }

// Report returns the resolved utilization report. Calling it before
// Close resolves at the latest timestamp the ledger has seen.
func (l *Ledger) Report() *Report {
	if l == nil {
		return nil
	}
	if !l.closed {
		l.Close(l.maxT)
	}
	return l.report
}

// resolve turns one epoch's base timeline and busy claims into
// contiguous segments over [born, min(died, end)] via a single sweep:
// at every elementary interval the highest-priority active busy claim
// wins, else the base state. Segment boundaries come from one shared
// sorted slice, so consecutive segments abut exactly (bitwise-equal
// floats), which is what makes the conservation check exact.
func (e *epoch) resolve(end float64) []Segment {
	stop := end
	if e.died >= 0 && e.died < stop {
		stop = e.died
	}
	if stop <= e.born {
		return nil
	}

	// Clip claims to the epoch window; build start/end events.
	type ev struct {
		t     float64
		s     State
		delta int
	}
	var evs []ev
	bounds := []float64{e.born, stop}
	for _, c := range e.busy {
		cs, ce := c.start, c.end
		if cs < e.born {
			cs = e.born
		}
		if ce > stop {
			ce = stop
		}
		if cs >= ce {
			continue
		}
		evs = append(evs, ev{t: cs, s: c.s, delta: 1}, ev{t: ce, s: c.s, delta: -1})
		bounds = append(bounds, cs, ce)
	}
	for _, bp := range e.base {
		if bp.t > e.born && bp.t < stop {
			bounds = append(bounds, bp.t)
		}
	}
	sort.Float64s(bounds)
	uniq := bounds[:1]
	for _, t := range bounds[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	var segs []Segment
	var active [BusyTransfer + 1]int
	ei, bi := 0, 0
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		for ei < len(evs) && evs[ei].t <= a {
			active[evs[ei].s] += evs[ei].delta
			ei++
		}
		for bi+1 < len(e.base) && e.base[bi+1].t <= a {
			bi++
		}
		st := e.base[bi].s
		for s := BusyExec; s <= BusyTransfer; s++ {
			if active[s] > 0 {
				st = s
				break
			}
		}
		if n := len(segs); n > 0 && segs[n-1].State == st {
			segs[n-1].End = b
		} else {
			segs = append(segs, Segment{State: st, Start: a, End: b})
		}
	}
	return segs
}
