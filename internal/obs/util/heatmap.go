package util

import (
	"fmt"
	"io"
	"strings"
)

// Plain-text cluster heatmap: one proportional state bar per slice,
// grouped by node and GPU, with a GPC-weighted "where did the
// GPU-seconds go" summary. This is what the analytics server's
// /heatmap endpoint serves and what the README walkthrough shows.

// heatGlyphs maps each state to its bar character, in States order.
var heatGlyphs = [numStates]byte{
	BusyExec:      'E',
	BusyLoad:      'L',
	BusyTransfer:  'T',
	WarmIdle:      'W',
	ColdIdle:      '.',
	Stranded:      'S',
	Quarantined:   'Q',
	Reconfiguring: 'R',
}

const heatBarWidth = 40

// stateBar renders a fixed-width bar whose glyph counts are
// proportional to the state totals (cumulative rounding, so the bar is
// always exactly heatBarWidth wide and deterministic).
func stateBar(t Totals, wall float64) string {
	if wall <= 0 {
		return strings.Repeat(" ", heatBarWidth)
	}
	var b strings.Builder
	cum, drawn := 0.0, 0
	for _, s := range States {
		cum += t.Get(s)
		upto := int(cum/wall*heatBarWidth + 0.5)
		if upto > heatBarWidth {
			upto = heatBarWidth
		}
		for ; drawn < upto; drawn++ {
			b.WriteByte(heatGlyphs[s])
		}
	}
	for ; drawn < heatBarWidth; drawn++ {
		b.WriteByte(' ')
	}
	return b.String()
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}

// WriteHeatmap renders the report as a plain-text cluster heatmap.
// Deterministic for identical reports.
func (r *Report) WriteHeatmap(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "GPU utilization heatmap — %.1fs wall, %d slices, %.0f GPC-seconds\n",
		r.Duration, len(r.Slices), r.GPCSeconds)
	b.WriteString("legend: E busy-exec  L busy-load  T busy-transfer  W warm-idle  . cold-idle  S stranded  Q quarantined  R reconfiguring\n")

	lastNode, lastGPU := -1, -1
	for _, sr := range r.Slices {
		if sr.Node != lastNode {
			fmt.Fprintf(&b, "\nnode%d\n", sr.Node)
			lastNode, lastGPU = sr.Node, -1
		}
		if sr.GPU != lastGPU {
			fmt.Fprintf(&b, "  gpu%d\n", sr.GPU)
			lastGPU = sr.GPU
		}
		fmt.Fprintf(&b, "    %-12s |%s| busy %5.1f%%  warm %5.1f%%  stranded %5.1f%%\n",
			sr.Type+"#"+itoa(sliceIndex(sr.ID)), stateBar(sr.Seconds, sr.Wall),
			pct(sr.Seconds.Busy(), sr.Wall),
			pct(sr.Seconds.WarmIdle, sr.Wall),
			pct(sr.Seconds.Stranded, sr.Wall))
	}

	b.WriteString("\nwhere did the GPU-seconds go (GPC-weighted):\n")
	for _, s := range States {
		v := r.ClusterGPC.Get(s)
		fmt.Fprintf(&b, "  %-14s %10.1f  %5.1f%%\n", s.String(), v, pct(v, r.GPCSeconds))
	}
	if n := len(r.Fragmentation); n > 0 {
		last := r.Fragmentation[n-1]
		fmt.Fprintf(&b, "\nfragmentation (last sample, t=%.1f): index %.3f, free %d GPCs, stranded %d GPCs / %.0f GB, largest placeable %d GPCs\n",
			last.Time, last.Index, last.FreeGPCs, last.StrandedGPCs, last.StrandedGB, last.LargestPlaceableGPCs)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sliceIndex extracts the trailing slice index from an ID of the form
// "gpuN/type#idx"; -1 when the ID has no index suffix.
func sliceIndex(id string) int {
	i := strings.LastIndexByte(id, '#')
	if i < 0 {
		return -1
	}
	n := 0
	for _, c := range id[i+1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string {
	if n < 0 {
		return "?"
	}
	return fmt.Sprintf("%d", n)
}
