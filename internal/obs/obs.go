// Package obs is the platform's observability layer: per-request traces
// built from typed spans, a lossless streaming event bus with a bounded
// ring as the default sink, log-bucketed latency histograms, and two
// deterministic exporters (Chrome trace-event JSON for Perfetto, and
// Prometheus-style text exposition).
//
// Everything here is an observer: recording a span or publishing an
// event never schedules simulation work or mutates platform state, so a
// run with observability attached is bit-for-bit identical to one
// without. The Recorder's methods are nil-receiver safe — a nil
// *Recorder is the disabled sink and every call short-circuits — so
// instrumentation points do not need their own guards.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// SpanKind classifies how a span is rendered in the trace export.
type SpanKind int

// Span kinds.
const (
	// KindSlice is a duration span on a hardware track (one track per
	// MIG slice): model loads, stage executions, transfers.
	KindSlice SpanKind = iota
	// KindAsync is a duration span on a request's causal chain
	// (admission-to-completion, queueing). Async spans with the same
	// request identity nest in Perfetto.
	KindAsync
	// KindMark is an instant on a hardware or platform track
	// (lifecycle events: launch, evict, fault, brownout, ...).
	KindMark
	// KindAsyncMark is an instant on a request's causal chain (retry
	// and migration hops).
	KindAsyncMark
	// KindCounter is a sampled numeric value on a hardware track
	// (per-slice health scores), rendered as a counter timeline.
	KindCounter
)

// Span is one recorded observation. Times are virtual-time seconds.
type Span struct {
	Kind SpanKind
	// Cat groups spans (queue, load, exec, transfer, request, retry).
	Cat string
	// Name labels the span (function name, event kind, ...).
	Name string
	// Track is the hardware track (a MIG slice ID) for KindSlice and
	// KindMark spans; empty means the platform-wide track.
	Track string
	// Func and Req tie the span to a request ("-1" = none). Together
	// they are the async chain identity.
	Func, Req int
	// Stage is the pipeline stage index (-1 when not stage-scoped).
	Stage int
	// Start and End bound the span; instants have Start == End.
	Start, End float64
	// Detail is free-form context (event detail, retry reason; for
	// exec spans recorded via StageSpan, the slice type).
	Detail string
	// Declared is the profiled duration the scheduler assumed for this
	// span (exec spans only; 0 = no declared baseline). Drift analysis
	// compares End-Start against it.
	Declared float64
	// Value is the sample of a KindCounter span.
	Value float64
}

// Track is one registered hardware track.
type Track struct {
	Node int
	Name string
}

// Recorder accumulates spans, tracks, and request metrics for one run.
// The zero value is ready to use; a nil *Recorder is the disabled sink.
type Recorder struct {
	spans  []Span
	tracks []Track
	tidx   map[string]int

	// busy accumulates per-track busy seconds (load + exec span
	// durations), the utilisation counter of the metrics export.
	busy map[string]float64

	// hists holds per-(function, outcome) latency histograms and
	// counts keyed by `func \xff outcome`.
	hists map[string]*Histogram

	// reqs is the finalised-request log, in completion order — the
	// analytics layer's request feed.
	reqs []RequestObs

	// marks counts instants by name (lifecycle event totals).
	marks map[string]int

	// gauges holds driver-set scalar metrics (e.g. dropped events).
	gauges map[string]float64

	// series holds driver-set labeled gauge families (per-slice health,
	// per-node pool occupancy, per-reason reject counts).
	series map[string]*labeledSeries

	// duration is the observed run length, for utilisation fractions.
	duration float64
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// RegisterTrack declares a hardware track (a MIG slice) on a node.
// Registration order fixes the export's thread ordering; registering a
// name twice is a no-op.
func (r *Recorder) RegisterTrack(node int, name string) {
	if r == nil {
		return
	}
	if r.tidx == nil {
		r.tidx = make(map[string]int)
	}
	if _, ok := r.tidx[name]; ok {
		return
	}
	r.tidx[name] = len(r.tracks)
	r.tracks = append(r.tracks, Track{Node: node, Name: name})
}

// Tracks returns the registered hardware tracks in registration order.
func (r *Recorder) Tracks() []Track {
	if r == nil {
		return nil
	}
	return r.tracks
}

// SliceSpan records a duration span on a hardware track. Load and exec
// spans also accumulate the track's busy-seconds counter.
func (r *Recorder) SliceSpan(cat, name, track string, fn, req, stage int, start, end float64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindSlice, Cat: cat, Name: name, Track: track,
		Func: fn, Req: req, Stage: stage, Start: start, End: end,
	})
	if cat == "load" || cat == "exec" {
		if r.busy == nil {
			r.busy = make(map[string]float64)
		}
		r.busy[track] += end - start
	}
}

// StageSpan records a stage execution on a hardware track together
// with the declared profile duration the scheduler assumed and the
// slice type it ran on (kept in Detail). It is the drift detector's
// input: observed End-Start versus Declared. Busy-seconds accumulate
// exactly as for an exec SliceSpan.
func (r *Recorder) StageSpan(name, track, sliceType string, fn, req, stage int, start, end, declared float64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindSlice, Cat: "exec", Name: name, Track: track,
		Func: fn, Req: req, Stage: stage, Start: start, End: end,
		Detail: sliceType, Declared: declared,
	})
	if r.busy == nil {
		r.busy = make(map[string]float64)
	}
	r.busy[track] += end - start
}

// CancelSliceWork truncates the track's hardware work spans at `at`:
// load/exec/transfer slice spans ending later are cut there (removed
// entirely when they start at or after it), and the track's busy
// counter gives the cut seconds back. Fault and quarantine teardowns
// call this because work spans are recorded upfront with their future
// end times — without the cut, the phantom tail of an execution that
// died with its hardware stays on the books as busy time, overstating
// BusySeconds and overlapping whatever the reallocated slice runs
// next. Safe to call broadly: on the single-threaded engine, any work
// span still open on a track at teardown time belongs to the owner
// being torn down. (A truncated exec span keeps its Declared profile
// time; the drift analytics see cancelled work as a fast outlier,
// which is accurate — the work did end early.)
func (r *Recorder) CancelSliceWork(track string, at float64) {
	if r == nil {
		return
	}
	kept := r.spans[:0]
	for _, sp := range r.spans {
		if sp.Kind == KindSlice && sp.Track == track && sp.End > at &&
			(sp.Cat == "load" || sp.Cat == "exec" || sp.Cat == "transfer") {
			if sp.Start >= at {
				if sp.Cat != "transfer" {
					r.busy[track] -= sp.End - sp.Start
				}
				continue
			}
			if sp.Cat != "transfer" {
				r.busy[track] -= sp.End - at
			}
			sp.End = at
		}
		kept = append(kept, sp)
	}
	r.spans = kept
}

// AsyncSpan records a duration span on a request's causal chain.
func (r *Recorder) AsyncSpan(cat, name string, fn, req int, start, end float64, detail string) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindAsync, Cat: cat, Name: name,
		Func: fn, Req: req, Stage: -1, Start: start, End: end, Detail: detail,
	})
}

// AsyncMark records an instant on a request's causal chain (a retry or
// migration hop).
func (r *Recorder) AsyncMark(cat, name string, fn, req int, t float64, detail string) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindAsyncMark, Cat: cat, Name: name,
		Func: fn, Req: req, Stage: -1, Start: t, End: t, Detail: detail,
	})
}

// Mark records an instant on a hardware or platform track and counts it
// by name. The track may be unregistered (instance IDs, function
// names); the export puts those on the platform-wide track.
func (r *Recorder) Mark(name, track string, t float64, detail string) {
	r.MarkCat("event", name, track, t, detail)
}

// MarkCat is Mark with an explicit category ("health" for gray
// transitions, "swap" for tier traffic, ...), so trace viewers can
// group and filter lifecycle instants by subsystem.
func (r *Recorder) MarkCat(cat, name, track string, t float64, detail string) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindMark, Cat: cat, Name: name, Track: track,
		Func: -1, Req: -1, Stage: -1, Start: t, End: t, Detail: detail,
	})
	if r.marks == nil {
		r.marks = make(map[string]int)
	}
	r.marks[name]++
}

// Counter records a sampled numeric value on a hardware track at time t
// (e.g. a slice's health score). The chrome export renders these as
// counter timelines on the owning track's process.
func (r *Recorder) Counter(cat, name, track string, t, value float64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{
		Kind: KindCounter, Cat: cat, Name: name, Track: track,
		Func: -1, Req: -1, Stage: -1, Start: t, End: t, Value: value,
	})
}

// histKeySep separates function and outcome in histogram keys; it
// cannot appear in either.
const histKeySep = "\xff"

// Request observes a finalised request for the metrics export: one
// latency-histogram sample per (function, outcome).
func (r *Recorder) Request(fn, outcome string, latency float64) {
	if r == nil {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	key := fn + histKeySep + outcome
	h, ok := r.hists[key]
	if !ok {
		h = NewLatencyHistogram()
		r.hists[key] = h
	}
	h.Observe(latency)
}

// RequestObs is one finalised request as the analytics layer sees it:
// identity, envelope, SLO and outcome. The recorder keeps them in
// record order, which is completion order (requests are finalised at
// their completion instants on the single-threaded engine).
type RequestObs struct {
	Func    int
	Name    string
	Req     int
	Arrival float64
	// Completion is the finalisation time (the drop/reject instant for
	// requests the platform abandoned).
	Completion float64
	SLO        float64
	Outcome    string // served | dropped | rejected | failed
	Retries    int
}

// Latency is the request's end-to-end latency.
func (o RequestObs) Latency() float64 { return o.Completion - o.Arrival }

// SLOMiss reports whether the request counts against its function's
// violation budget: any non-served outcome, or a served response later
// than the SLO. Requests without an SLO never miss.
func (o RequestObs) SLOMiss() bool {
	if o.SLO <= 0 {
		return false
	}
	return o.Outcome != "served" || o.Latency() > o.SLO
}

// ObserveRequest logs a finalised request for analytics and feeds the
// per-(function, outcome) latency histogram.
func (r *Recorder) ObserveRequest(o RequestObs) {
	if r == nil {
		return
	}
	r.reqs = append(r.reqs, o)
	r.Request(o.Name, o.Outcome, o.Latency())
}

// RequestLog returns the finalised requests in record (completion)
// order (shared slice; do not mutate).
func (r *Recorder) RequestLog() []RequestObs {
	if r == nil {
		return nil
	}
	return r.reqs
}

// SetGauge records a driver-supplied scalar metric.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
}

// labeledSeries is one labeled gauge family for the Prometheus export.
type labeledSeries struct {
	help  string
	order []string // label-block emission order (insertion order)
	// points maps a rendered label block (`k="v",k2="v2"`) to its value.
	points map[string]float64
}

// SetSeries records one sample of a labeled gauge family; labels render
// in the given order and later calls with the same name and labels
// overwrite. Families export in name order, samples in insertion order
// — callers that record in a deterministic order get deterministic
// output.
func (r *Recorder) SetSeries(name, help string, v float64, labels ...[2]string) {
	if r == nil {
		return
	}
	if r.series == nil {
		r.series = make(map[string]*labeledSeries)
	}
	s := r.series[name]
	if s == nil {
		s = &labeledSeries{help: help, points: map[string]float64{}}
		r.series[name] = s
	}
	var b strings.Builder
	for i, lv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", lv[0], lv[1])
	}
	key := b.String()
	if _, ok := s.points[key]; !ok {
		s.order = append(s.order, key)
	}
	s.points[key] = v
}

// SetDuration records the run length, the denominator of the exported
// per-slice utilisation fractions.
func (r *Recorder) SetDuration(d float64) {
	if r == nil {
		return
	}
	r.duration = d
}

// Duration returns the recorded run length (0 when unset).
func (r *Recorder) Duration() float64 {
	if r == nil {
		return 0
	}
	return r.duration
}

// Spans returns all recorded spans in record order (shared slice; do
// not mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// BusySeconds returns the accumulated busy time of a track.
func (r *Recorder) BusySeconds(track string) float64 {
	if r == nil {
		return 0
	}
	return r.busy[track]
}

// MarkCount returns how many instants were recorded under name.
func (r *Recorder) MarkCount(name string) int {
	if r == nil {
		return 0
	}
	return r.marks[name]
}

// sortedKeys returns map keys in sorted order, for deterministic
// exports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
