package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorder: every method of a nil recorder is a safe no-op —
// the disabled sink must cost nothing and never panic.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.RegisterTrack(0, "gpu0/1g.10gb#0")
	r.SliceSpan("exec", "app0", "gpu0/1g.10gb#0", 0, 1, 0, 0, 1)
	r.AsyncSpan("request", "app0", 0, 1, 0, 2, "")
	r.AsyncMark("retry", "retry", 0, 1, 1, "node died")
	r.Mark("launch", "app0#1", 0, "")
	r.Request("app0", "served", 0.5)
	r.SetGauge("g", 1)
	r.SetDuration(10)
	if r.Spans() != nil || r.Tracks() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.BusySeconds("x") != 0 || r.MarkCount("launch") != 0 || r.Duration() != 0 {
		t.Fatal("nil recorder returned nonzero counters")
	}
	// Exporters accept a nil recorder too.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func sampleRecorder() *Recorder {
	r := NewRecorder()
	r.RegisterTrack(0, "gpu0/4g.40gb#0")
	r.RegisterTrack(0, "gpu0/2g.20gb#0")
	r.RegisterTrack(1, "gpu8/4g.40gb#0")
	r.AsyncSpan("request", "app0", 0, 7, 0, 2.5, "served")
	r.AsyncSpan("queue", "queue", 0, 7, 0, 0.5, "")
	r.SliceSpan("load", "load app0", "gpu0/4g.40gb#0", 0, 7, -1, 0.5, 1.0)
	r.SliceSpan("exec", "exec app0", "gpu0/4g.40gb#0", 0, 7, 0, 1.0, 2.0)
	r.SliceSpan("transfer", "transfer", "gpu0/4g.40gb#0", 0, 7, 0, 2.0, 2.1)
	r.AsyncMark("retry", "retry", 0, 7, 2.2, "slice failed")
	r.Mark("launch", "app0#1", 0.1, "[4g]")
	r.Mark("evict", "gpu0/2g.20gb#0", 1.5, "LRU")
	r.Request("app0", "served", 2.5)
	r.Request("app0", "dropped", 8.0)
	r.Request("app1", "served", 0.001) // exactly on the first bound
	r.SetGauge("fluidfaas_events_dropped", 3)
	r.SetDuration(10)
	return r
}

// TestRecorderAccounting: busy seconds accumulate from load+exec spans
// only; marks count by name.
func TestRecorderAccounting(t *testing.T) {
	r := sampleRecorder()
	if got := r.BusySeconds("gpu0/4g.40gb#0"); got != 1.5 {
		t.Errorf("busy = %v, want 1.5 (transfer must not count)", got)
	}
	if r.MarkCount("launch") != 1 || r.MarkCount("evict") != 1 {
		t.Error("mark counts wrong")
	}
	if len(r.Tracks()) != 3 {
		t.Fatalf("tracks = %d, want 3", len(r.Tracks()))
	}
	r.RegisterTrack(0, "gpu0/4g.40gb#0") // duplicate: no-op
	if len(r.Tracks()) != 3 {
		t.Error("duplicate track registration added a track")
	}
}

// TestChromeTraceShape: the export is valid trace-event JSON — a
// traceEvents array whose events carry ph/ts/pid/tid — with one thread
// per registered slice and the expected span phases.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing %q", ev, field)
			}
		}
		ph := ev["ph"].(string)
		phases[ph]++
		if ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			threadNames[args["name"].(string)] = true
		}
	}
	for _, tr := range []string{"gpu0/4g.40gb#0", "gpu0/2g.20gb#0", "gpu8/4g.40gb#0"} {
		if !threadNames[tr] {
			t.Errorf("no thread metadata for slice track %s", tr)
		}
	}
	for _, ph := range []string{"X", "b", "e", "i", "n", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events in export", ph)
		}
	}
	if phases["b"] != phases["e"] {
		t.Errorf("async begin/end mismatch: %d b vs %d e", phases["b"], phases["e"])
	}
}

// TestExportDeterminism: identical recorder contents produce
// byte-identical exports.
func TestExportDeterminism(t *testing.T) {
	var c1, c2, p1, p2 bytes.Buffer
	if err := WriteChromeTrace(&c1, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&c2, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("Chrome trace export is not deterministic")
	}
	if err := WritePrometheus(&p1, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&p2, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Error("Prometheus export is not deterministic")
	}
}

// TestPrometheusShape: the text exposition carries the histogram
// series with cumulative buckets, +Inf, sum and count, and the
// per-slice and event counters.
func TestPrometheusShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`fluidfaas_requests_total{func="app0",outcome="served"} 1`,
		`fluidfaas_requests_total{func="app0",outcome="dropped"} 1`,
		// 0.001 lands in the le="0.001" bucket (le semantics).
		`fluidfaas_request_latency_seconds_bucket{func="app1",outcome="served",le="0.001"} 1`,
		`fluidfaas_request_latency_seconds_bucket{func="app0",outcome="served",le="+Inf"} 1`,
		`fluidfaas_request_latency_seconds_count{func="app0",outcome="served"} 1`,
		`fluidfaas_slice_busy_seconds_total{node="0",slice="gpu0/4g.40gb#0"} 1.5`,
		`fluidfaas_slice_utilisation{node="0",slice="gpu0/4g.40gb#0"} 0.15`,
		`fluidfaas_events_total{kind="launch"} 1`,
		`fluidfaas_events_dropped 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
