package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketEdges: values exactly on a bucket's upper bound
// land in that bucket (Prometheus le semantics); values past the last
// bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{0.5, 0},
		{1, 0}, // exactly on the first bound
		{1.001, 1},
		{2, 1},      // exactly on a middle bound
		{4, 2},      // exactly on the last bound
		{4.0001, 3}, // overflow
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		before := append([]int(nil), h.Counts...)
		h.Observe(c.v)
		for i := range h.Counts {
			wantDelta := 0
			if i == c.want {
				wantDelta = 1
			}
			if h.Counts[i]-before[i] != wantDelta {
				t.Errorf("Observe(%v): bucket %d delta = %d, want %d",
					c.v, i, h.Counts[i]-before[i], wantDelta)
			}
		}
	}
	if h.N != len(cases) {
		t.Errorf("N = %d, want %d", h.N, len(cases))
	}
}

// TestHistogramCumulative: cumulative counts are monotone and the
// overflow bucket brings the total to N.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []int{1, 2, 3}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Counts[len(h.Bounds)] != 2 {
		t.Errorf("overflow count = %d, want 2", h.Counts[len(h.Bounds)])
	}
}

// TestLatencyHistogramBounds: the standard latency buckets are log-
// spaced by factor 2 from 1 ms and strictly ascending.
func TestLatencyHistogramBounds(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Bounds[0] != 0.001 {
		t.Errorf("first bound = %v, want 0.001", h.Bounds[0])
	}
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] != h.Bounds[i-1]*2 {
			t.Errorf("bounds not doubling at %d: %v -> %v", i, h.Bounds[i-1], h.Bounds[i])
		}
	}
	if last := h.Bounds[len(h.Bounds)-1]; last < 100 {
		t.Errorf("last bound %v too small to cover client timeouts", last)
	}
}

// TestHistogramQuantile: quantiles report bucket upper bounds; empty
// histograms report 0.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(1.0); q != 4 {
		t.Errorf("p100 = %v, want 4 (overflow clamps to last bound)", q)
	}
}

// TestHistogramBadBounds: non-ascending bounds are a construction bug.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}
