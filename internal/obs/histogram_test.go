package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketEdges: values exactly on a bucket's upper bound
// land in that bucket (Prometheus le semantics); values past the last
// bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{0.5, 0},
		{1, 0}, // exactly on the first bound
		{1.001, 1},
		{2, 1},      // exactly on a middle bound
		{4, 2},      // exactly on the last bound
		{4.0001, 3}, // overflow
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		before := append([]int(nil), h.Counts...)
		h.Observe(c.v)
		for i := range h.Counts {
			wantDelta := 0
			if i == c.want {
				wantDelta = 1
			}
			if h.Counts[i]-before[i] != wantDelta {
				t.Errorf("Observe(%v): bucket %d delta = %d, want %d",
					c.v, i, h.Counts[i]-before[i], wantDelta)
			}
		}
	}
	if h.N != len(cases) {
		t.Errorf("N = %d, want %d", h.N, len(cases))
	}
}

// TestHistogramCumulative: cumulative counts are monotone and the
// overflow bucket brings the total to N.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []int{1, 2, 3}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Counts[len(h.Bounds)] != 2 {
		t.Errorf("overflow count = %d, want 2", h.Counts[len(h.Bounds)])
	}
}

// TestLatencyHistogramBounds: the standard latency buckets are log-
// spaced by factor 2 from 1 ms and strictly ascending.
func TestLatencyHistogramBounds(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Bounds[0] != 0.001 {
		t.Errorf("first bound = %v, want 0.001", h.Bounds[0])
	}
	for i := 1; i < len(h.Bounds); i++ {
		if h.Bounds[i] != h.Bounds[i-1]*2 {
			t.Errorf("bounds not doubling at %d: %v -> %v", i, h.Bounds[i-1], h.Bounds[i])
		}
	}
	if last := h.Bounds[len(h.Bounds)-1]; last < 100 {
		t.Errorf("last bound %v too small to cover client timeouts", last)
	}
}

// TestHistogramQuantile: table-driven coverage of the interpolated
// quantile estimator's documented semantics — empty histograms, the
// q=0/q=1 edges, single-bucket interpolation from a zero lower edge,
// and mass in the +Inf overflow bucket clamping to the last bound.
func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		samples []float64
		q       float64
		want    float64
	}{
		{"empty", []float64{1, 2, 4}, nil, 0.5, 0},
		{"empty q=1", []float64{1, 2, 4}, nil, 1, 0},
		// Four samples uniform in bucket (2,4]: rank 2 of 4 ⇒ halfway.
		{"interpolates within bucket", []float64{1, 2, 4},
			[]float64{2.5, 2.5, 3.5, 3.5}, 0.5, 3},
		// q=0 is the lower edge of the first non-empty bucket.
		{"q=0 lower edge", []float64{1, 2, 4}, []float64{2.5, 3}, 0, 2},
		{"q=0 first bucket zero edge", []float64{1, 2, 4}, []float64{0.5}, 0, 0},
		// q=1 is the upper bound of the last non-empty bucket.
		{"q=1 upper bound", []float64{1, 2, 4}, []float64{0.5, 1.5}, 1, 2},
		// One bucket holding everything: interpolate across [0, 1].
		{"single bucket", []float64{1}, []float64{0.2, 0.4, 0.6, 0.8}, 0.5, 0.5},
		// All mass in +Inf clamps every quantile to the last bound.
		{"overflow mass", []float64{1, 2, 4}, []float64{10, 20, 30}, 0.5, 4},
		{"overflow mass q=1", []float64{1, 2, 4}, []float64{10}, 1, 4},
		// Mixed in-range and overflow: p50 interpolates, p100 clamps.
		{"mixed overflow p50", []float64{1, 2, 4}, []float64{0.5, 0.5, 1.5, 3, 100}, 0.5, 1.5},
		{"mixed overflow p100", []float64{1, 2, 4}, []float64{0.5, 0.5, 1.5, 3, 100}, 1, 4},
		// Out-of-range q clamps rather than extrapolating.
		{"q below range", []float64{1, 2, 4}, []float64{2.5, 3}, -1, 2},
		{"q above range", []float64{1, 2, 4}, []float64{0.5, 1.5}, 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(c.bounds)
			for _, v := range c.samples {
				h.Observe(v)
			}
			if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
}

// TestHistogramBadBounds: non-ascending bounds are a construction bug.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}
