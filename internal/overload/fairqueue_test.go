package overload

import (
	"testing"
)

// drain pops everything, recording the dequeue order.
func drain(fq *FairQueue[string], prefer string, grace float64) []string {
	var out []string
	for {
		v, ok := fq.Dequeue(prefer, grace)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// TestFairQueueInterleavesBurst: a flow that bursts n items does not
// starve a sibling — the sibling's items are served at their fair
// virtual times, interleaved with the burst.
func TestFairQueueInterleavesBurst(t *testing.T) {
	fq := NewFairQueue[string]()
	for i := 0; i < 6; i++ {
		fq.Enqueue("bursty", 1, 1, "b")
	}
	fq.Enqueue("meek", 1, 1, "m0")
	fq.Enqueue("meek", 1, 1, "m1")
	order := drain(fq, "", 0)
	if len(order) != 8 {
		t.Fatalf("drained %d items, want 8", len(order))
	}
	// meek's items carry start tags 0 and 1; they must both be served
	// before the burst's third item (start tag 2).
	for i, v := range order {
		if v == "m1" && i > 3 {
			t.Errorf("meek's second item served at position %d; starved by the burst", i)
		}
	}
}

// TestFairQueueBacklogOnlyCharges: a flow idle while others are served
// re-enters at the current virtual time, not at zero — it cannot bank
// credit while absent (SFQ's max(vt, lastFinish) start rule).
func TestFairQueueBacklogOnlyCharges(t *testing.T) {
	fq := NewFairQueue[string]()
	for i := 0; i < 4; i++ {
		fq.Enqueue("a", 1, 1, "a")
	}
	for i := 0; i < 3; i++ {
		fq.Dequeue("", 0) // vt advances to 2
	}
	fq.Enqueue("late", 1, 1, "late")
	// late's start = max(vt=2, 0) = 2 < a's remaining head (start 3):
	// it is next, but it does not leapfrog what was already served.
	if v, _ := fq.Dequeue("", 0); v != "late" {
		t.Errorf("dequeued %q, want the late flow at the current virtual time", v)
	}
}

// TestFairQueueStickiness: within the grace the preferred (resident)
// flow keeps the slice even when a sibling is marginally fairer;
// beyond it, the sibling wins.
func TestFairQueueStickiness(t *testing.T) {
	fq := NewFairQueue[string]()
	fq.Enqueue("res", 1, 1, "r0") // start 0
	fq.Enqueue("res", 1, 1, "r1") // start 1
	fq.Enqueue("sib", 1, 1, "s0") // start 0
	fq.Dequeue("res", 0.5)        // r0 (tie broken by preference)
	// Heads now: res at 1, sib at 0. Lead 1 > grace 0.5: sib wins.
	if v, _ := fq.Dequeue("res", 0.5); v != "s0" {
		t.Errorf("dequeued %q, want the fair sibling beyond the grace", v)
	}
	// With a large grace the resident would have kept the slot.
	fq2 := NewFairQueue[string]()
	fq2.Enqueue("res", 1, 1, "r0")
	fq2.Enqueue("res", 1, 1, "r1")
	fq2.Enqueue("sib", 1, 1, "s0")
	fq2.Dequeue("res", 2)
	if v, _ := fq2.Dequeue("res", 2); v != "r1" {
		t.Errorf("dequeued %q, want the sticky resident inside the grace", v)
	}
}

// TestFairQueueWeights: a weight-2 flow finishes its items in half the
// virtual time, earning twice the service share.
func TestFairQueueWeights(t *testing.T) {
	fq := NewFairQueue[string]()
	for i := 0; i < 4; i++ {
		fq.Enqueue("heavy", 2, 1, "h")
		fq.Enqueue("light", 1, 1, "l")
	}
	order := drain(fq, "", 0)
	heavyFirst := 0
	for _, v := range order[:6] {
		if v == "h" {
			heavyFirst++
		}
	}
	if heavyFirst < 4 {
		t.Errorf("heavy flow got %d of the first 6 slots, want its full 4", heavyFirst)
	}
}

// TestFairQueueFilter removes failing items, returns them in
// deterministic order, and re-chains survivors so freed virtual time
// is not charged.
func TestFairQueueFilter(t *testing.T) {
	fq := NewFairQueue[int]()
	for i := 0; i < 4; i++ {
		fq.Enqueue("a", 1, 1, i) // starts 0..3
	}
	fq.Enqueue("b", 1, 1, 100)
	removed := fq.Filter(func(v int) bool { return v != 0 && v != 1 })
	if len(removed) != 2 || removed[0] != 0 || removed[1] != 1 {
		t.Fatalf("removed %v, want [0 1]", removed)
	}
	if fq.Len() != 3 || fq.FlowLen("a") != 2 {
		t.Fatalf("len=%d flow a=%d, want 3 and 2", fq.Len(), fq.FlowLen("a"))
	}
	// a's survivors re-chained to starts 0,1: item 2 ties with b's
	// (start 0) and the lexicographic tie-break picks flow a.
	if v, _ := fq.Dequeue("", 0); v != 2 {
		t.Errorf("head after filter = %v, want the re-chained survivor 2", v)
	}
}

// TestFairQueueDeterministicTieBreak: equal start tags resolve by flow
// key, lexicographically.
func TestFairQueueDeterministicTieBreak(t *testing.T) {
	fq := NewFairQueue[string]()
	fq.Enqueue("zeta", 1, 1, "z")
	fq.Enqueue("alpha", 1, 1, "a")
	if v, _ := fq.Dequeue("", 0); v != "a" {
		t.Errorf("dequeued %q, want the lexicographically first flow on a tie", v)
	}
}

// TestFairQueueEmpty: dequeue on empty reports false.
func TestFairQueueEmpty(t *testing.T) {
	fq := NewFairQueue[int]()
	if _, ok := fq.Dequeue("", 0); ok {
		t.Error("dequeue on empty queue reported ok")
	}
	fq.Enqueue("a", 1, 1, 1)
	fq.Clear()
	if fq.Len() != 0 {
		t.Error("clear left items behind")
	}
	if _, ok := fq.Dequeue("", 0); ok {
		t.Error("dequeue after clear reported ok")
	}
}
