// Package overload implements the platform's overload-control
// primitives: the configuration of SLO-aware admission control, an
// MQFQ-style start-time fair queue for functions sharing a MIG slice
// (fairqueue.go), and a brownout ladder that maps a node-pressure
// signal onto progressively stronger degradation levels with
// hysteresis. The package holds the pure decision logic; the platform
// owns the queue/instance state and applies the decisions.
package overload

// Config enables and tunes the overload-control features. The zero
// value disables all of them, leaving the platform's behaviour
// untouched.
type Config struct {
	// Admission enables SLO-aware admission control at routing: a
	// request whose estimated completion time (queue depth, load state
	// and exec profile) exceeds its deadline is rejected immediately
	// (fast-fail) instead of queued to die of a client timeout.
	Admission bool
	// AdmissionSlack scales the completion estimate before comparing it
	// with the deadline: >1 rejects more aggressively, <1 gives the
	// estimate the benefit of the doubt (default 1).
	AdmissionSlack float64

	// FairQueue replaces the deadline-sorted queue of a shared slice
	// with per-function virtual-time fair queues, so one bursty
	// function cannot starve co-resident bindings.
	FairQueue bool
	// StickyGrace is the virtual-time lead (seconds of virtual service)
	// the slice's resident function may hold over the globally fairest
	// flow before it must yield — MQFQ's stickiness, trading a bounded
	// unfairness for fewer model swaps (default 0.5).
	StickyGrace float64

	// Brownout enables the degradation ladder driven by the platform's
	// node-pressure signal.
	Brownout bool
	// Enter are the pressure thresholds entering Conserve, Degrade and
	// Shed (default {1.2, 2.0, 3.0}; pressure 1.0 means the backlog
	// exactly fills the admission capacity).
	Enter [3]float64
	// ExitMargin is subtracted from a level's entry threshold to form
	// its exit threshold, the hysteresis band (default 0.25).
	ExitMargin float64
	// Dwell is the minimum sojourn (s) at a level before the ladder
	// may de-escalate (default 5).
	Dwell float64

	// SwapHeadroom is the host-pool occupancy ceiling below which a
	// brownout at LevelShed prefers swapping an idle model out of GPU
	// memory over shedding traffic (default 0.95). Only consulted when
	// the platform's swap tier is enabled.
	SwapHeadroom float64
}

// Enabled reports whether any overload-control feature is on.
func (c Config) Enabled() bool { return c.Admission || c.FairQueue || c.Brownout }

// HedgingAllowed reports whether hedged retries may launch at ladder
// level l. Hedging spends duplicate work to buy tail latency, which is
// exactly wrong once the ladder passes the conserve rung — above it the
// cluster needs every slice-second for primary work, so hedging shuts
// off before shedding or contraction start.
func (c Config) HedgingAllowed(l Level) bool { return l <= LevelConserve }

// Defaulted fills unset tuning knobs.
func (c Config) Defaulted() Config {
	if c.AdmissionSlack <= 0 {
		c.AdmissionSlack = 1
	}
	if c.StickyGrace <= 0 {
		c.StickyGrace = 0.5
	}
	if c.Enter == [3]float64{} {
		c.Enter = [3]float64{1.2, 2.0, 3.0}
	}
	if c.ExitMargin <= 0 {
		c.ExitMargin = 0.25
	}
	if c.Dwell <= 0 {
		c.Dwell = 5
	}
	if c.SwapHeadroom <= 0 {
		c.SwapHeadroom = 0.95
	}
	return c
}

// PreferSwapRelief reports whether a shed-level brownout should try a
// swap demotion (freeing GPU memory by writing an idle model back to
// the host pool) before rejecting traffic: only at LevelShed, and only
// while the pool still has headroom to take the copy.
func (c Config) PreferSwapRelief(level Level, poolOccupancy float64) bool {
	return level >= LevelShed && poolOccupancy < c.Defaulted().SwapHeadroom
}

// Level is a rung of the brownout ladder.
type Level int

// The degradation ladder, mildest first.
const (
	// LevelNormal: no degradation.
	LevelNormal Level = iota
	// LevelConserve: keep-alive windows shorten so idle capacity
	// returns to the free pool sooner.
	LevelConserve
	// LevelDegrade: cool exclusive instances demote early and oversized
	// pipelines contract to fewer/smaller slices.
	LevelDegrade
	// LevelShed: traffic of the lowest-priority functions is rejected
	// at arrival.
	LevelShed
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelConserve:
		return "conserve"
	case LevelDegrade:
		return "degrade"
	case LevelShed:
		return "shed"
	}
	return "Level(?)"
}

// Ladder is the brownout state machine: escalation is immediate (a
// pressure spike must be answered now), de-escalation requires the
// pressure to fall below the hysteresis band and the level to have
// been held for the dwell time — so the ladder cannot flap on a noisy
// signal.
type Ladder struct {
	cfg   Config
	level Level
	since float64
}

// NewLadder builds a ladder from the (defaulted) config.
func NewLadder(cfg Config) *Ladder {
	return &Ladder{cfg: cfg.Defaulted()}
}

// Level returns the current rung.
func (l *Ladder) Level() Level { return l.level }

// Since returns when the current rung was entered.
func (l *Ladder) Since() float64 { return l.since }

// target maps a pressure value to the rung it calls for.
func (l *Ladder) target(pressure float64) Level {
	t := LevelNormal
	for i, enter := range l.cfg.Enter {
		if pressure >= enter {
			t = Level(i + 1)
		}
	}
	return t
}

// Observe feeds one pressure sample; it returns the transition taken,
// if any. One call de-escalates at most one rung.
func (l *Ladder) Observe(now, pressure float64) (from, to Level, changed bool) {
	from = l.level
	if t := l.target(pressure); t > l.level {
		l.level = t
		l.since = now
		return from, l.level, true
	}
	if l.level > LevelNormal && now-l.since >= l.cfg.Dwell {
		exit := l.cfg.Enter[l.level-1] - l.cfg.ExitMargin
		if pressure < exit {
			l.level--
			l.since = now
			return from, l.level, true
		}
	}
	return from, l.level, false
}
