package overload

import (
	"math"
	"sort"
)

// FairQueue is a start-time fair queue (SFQ) over named flows, the
// queueing discipline MQFQ applies to serverless GPU functions: each
// flow's items carry virtual start/finish tags, and dequeue picks the
// flow whose head has the smallest start tag, so a flow that bursts
// only spends its own virtual time and cannot starve its siblings. A
// "sticky" grace lets the caller keep serving one preferred flow (the
// slice's resident model) while its lead stays inside the grace,
// trading a bounded unfairness for fewer model swaps.
//
// All tie-breaks are lexicographic on the flow key, so the queue is
// fully deterministic.
type FairQueue[T any] struct {
	vt    float64
	flows map[string]*flow[T]
	keys  []string // sorted, for deterministic scans
	size  int
}

type fqItem[T any] struct {
	payload T
	service float64
	start   float64
	finish  float64
}

type flow[T any] struct {
	weight float64
	// lastFinish is the finish tag of the flow's newest item (queued or
	// already dequeued); a flow that went idle restarts at max(vt,
	// lastFinish) so it cannot bank virtual time while absent.
	lastFinish float64
	// servedFinish is the finish tag of the last dequeued item, the
	// re-chaining base when queued items are filtered out.
	servedFinish float64
	q            []fqItem[T]
}

// NewFairQueue returns an empty fair queue.
func NewFairQueue[T any]() *FairQueue[T] {
	return &FairQueue[T]{flows: make(map[string]*flow[T])}
}

// Len returns the total queued items.
func (fq *FairQueue[T]) Len() int { return fq.size }

// FlowLen returns the queued items of one flow.
func (fq *FairQueue[T]) FlowLen(key string) int {
	if fl := fq.flows[key]; fl != nil {
		return len(fl.q)
	}
	return 0
}

// VirtualTime returns the global virtual clock (diagnostics).
func (fq *FairQueue[T]) VirtualTime() float64 { return fq.vt }

// Enqueue adds an item to a flow. weight scales the flow's share
// (<=0 is treated as 1); service is the item's estimated service time,
// the currency of fairness.
func (fq *FairQueue[T]) Enqueue(key string, weight, service float64, payload T) {
	if weight <= 0 {
		weight = 1
	}
	fl := fq.flows[key]
	if fl == nil {
		fl = &flow[T]{}
		fq.flows[key] = fl
		i := sort.SearchStrings(fq.keys, key)
		fq.keys = append(fq.keys, "")
		copy(fq.keys[i+1:], fq.keys[i:])
		fq.keys[i] = key
	}
	fl.weight = weight
	start := math.Max(fq.vt, fl.lastFinish)
	if n := len(fl.q); n > 0 {
		start = fl.q[n-1].finish
	}
	finish := start + service/weight
	fl.q = append(fl.q, fqItem[T]{payload: payload, service: service, start: start, finish: finish})
	fl.lastFinish = finish
	fq.size++
}

// head returns the backlogged flow with the smallest head start tag.
func (fq *FairQueue[T]) head() (string, *flow[T]) {
	var bestKey string
	var best *flow[T]
	for _, key := range fq.keys {
		fl := fq.flows[key]
		if len(fl.q) == 0 {
			continue
		}
		if best == nil || fl.q[0].start < best.q[0].start {
			bestKey, best = key, fl
		}
	}
	return bestKey, best
}

// Dequeue removes and returns the next item. When prefer names a
// backlogged flow whose head start tag is within grace of the fairest
// flow's, the preferred flow is served instead (stickiness). The zero
// T and false are returned when the queue is empty.
func (fq *FairQueue[T]) Dequeue(prefer string, grace float64) (T, bool) {
	key, fl := fq.head()
	if fl == nil {
		var zero T
		return zero, false
	}
	if prefer != "" && prefer != key {
		if pf := fq.flows[prefer]; pf != nil && len(pf.q) > 0 &&
			pf.q[0].start <= fl.q[0].start+grace {
			key, fl = prefer, pf
		}
	}
	it := fl.q[0]
	fl.q = fl.q[1:]
	fq.size--
	fl.servedFinish = it.finish
	if it.start > fq.vt {
		fq.vt = it.start
	}
	return it.payload, true
}

// Items returns every queued payload, flows in key order, FIFO within
// a flow (used for fault teardown).
func (fq *FairQueue[T]) Items() []T {
	out := make([]T, 0, fq.size)
	for _, key := range fq.keys {
		for _, it := range fq.flows[key].q {
			out = append(out, it.payload)
		}
	}
	return out
}

// Clear empties the queue, keeping flow history.
func (fq *FairQueue[T]) Clear() {
	for _, fl := range fq.flows {
		fl.q = nil
	}
	fq.size = 0
}

// Filter removes queued items failing keep and returns them (flows in
// key order, FIFO within a flow). Surviving items are re-chained so
// removed work frees its virtual time: the new head may start at the
// flow's served history, never later than its original tag.
func (fq *FairQueue[T]) Filter(keep func(T) bool) []T {
	var removed []T
	for _, key := range fq.keys {
		fl := fq.flows[key]
		if len(fl.q) == 0 {
			continue
		}
		kept := fl.q[:0]
		dropped := false
		for _, it := range fl.q {
			if keep(it.payload) {
				kept = append(kept, it)
			} else {
				removed = append(removed, it.payload)
				dropped = true
			}
		}
		fl.q = kept
		if !dropped {
			continue
		}
		if len(fl.q) == 0 {
			fl.lastFinish = fl.servedFinish
			continue
		}
		for i := range fl.q {
			if i == 0 {
				// An item never starts before the flow's served history,
				// and removals never push it past its original tag.
				fl.q[0].start = math.Min(fl.q[0].start,
					math.Max(fq.vt, fl.servedFinish))
			} else {
				fl.q[i].start = fl.q[i-1].finish
			}
			fl.q[i].finish = fl.q[i].start + fl.q[i].service/fl.weight
		}
		fl.lastFinish = fl.q[len(fl.q)-1].finish
	}
	fq.size -= len(removed)
	return removed
}
