package overload

import "testing"

// TestLadderEscalatesImmediately: a pressure spike jumps straight to
// the rung it calls for, no dwell.
func TestLadderEscalatesImmediately(t *testing.T) {
	l := NewLadder(Config{Brownout: true})
	if from, to, changed := l.Observe(0, 5.0); !changed || from != LevelNormal || to != LevelShed {
		t.Errorf("Observe(5.0) = %v->%v changed=%v, want normal->shed", from, to, changed)
	}
	if l.Level() != LevelShed {
		t.Errorf("level = %v, want shed", l.Level())
	}
}

// TestLadderDeEscalationHysteresis: stepping down needs the pressure
// below the exit band AND the dwell time served, one rung at a time.
func TestLadderDeEscalationHysteresis(t *testing.T) {
	cfg := Config{Brownout: true, Enter: [3]float64{1.0, 2.0, 3.0}, ExitMargin: 0.25, Dwell: 5}
	l := NewLadder(cfg)
	l.Observe(0, 2.5) // -> degrade

	// Inside the hysteresis band (>= 2.0-0.25): no step down ever.
	if _, _, changed := l.Observe(10, 1.9); changed {
		t.Error("stepped down inside the hysteresis band")
	}
	// Below the band but before the dwell: hold.
	if _, _, changed := l.Observe(3, 0.1); changed {
		t.Error("stepped down before the dwell expired")
	}
	// Below the band, dwell served: one rung only.
	if from, to, changed := l.Observe(6, 0.1); !changed || from != LevelDegrade || to != LevelConserve {
		t.Errorf("Observe = %v->%v changed=%v, want degrade->conserve", from, to, changed)
	}
	// The next step down needs its own dwell.
	if _, _, changed := l.Observe(7, 0.1); changed {
		t.Error("double-stepped down without a fresh dwell")
	}
	if from, to, _ := l.Observe(12, 0.1); from != LevelConserve || to != LevelNormal {
		t.Errorf("final step = %v->%v, want conserve->normal", from, to)
	}
}

// TestLadderZeroPressureStaysNormal: the zero signal never leaves
// normal — the gate for bit-for-bit identical no-pressure runs.
func TestLadderZeroPressureStaysNormal(t *testing.T) {
	l := NewLadder(Config{Brownout: true})
	for now := 0.0; now < 100; now++ {
		if _, _, changed := l.Observe(now, 0); changed || l.Level() != LevelNormal {
			t.Fatalf("ladder left normal on zero pressure at t=%v", now)
		}
	}
}

// TestConfigDefaulted fills only unset knobs.
func TestConfigDefaulted(t *testing.T) {
	c := Config{}.Defaulted()
	if c.AdmissionSlack != 1 || c.StickyGrace != 0.5 || c.Dwell != 5 || c.ExitMargin != 0.25 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.Enter != [3]float64{1.2, 2.0, 3.0} {
		t.Errorf("unexpected default thresholds: %v", c.Enter)
	}
	if c.Enabled() {
		t.Error("zero config reports enabled")
	}
	keep := Config{AdmissionSlack: 2, Enter: [3]float64{9, 10, 11}}.Defaulted()
	if keep.AdmissionSlack != 2 || keep.Enter[0] != 9 {
		t.Error("Defaulted overwrote explicit knobs")
	}
}

// TestPreferSwapRelief: swap relief only replaces a shed — never a
// milder brownout rung — and only while the pool can take the copy.
func TestPreferSwapRelief(t *testing.T) {
	c := Config{}
	for _, lvl := range []Level{LevelNormal, LevelConserve, LevelDegrade} {
		if c.PreferSwapRelief(lvl, 0) {
			t.Errorf("relief preferred at %v, want shed-only", lvl)
		}
	}
	if !c.PreferSwapRelief(LevelShed, 0.5) {
		t.Error("relief refused at shed with ample headroom")
	}
	if c.PreferSwapRelief(LevelShed, 0.95) {
		t.Error("relief preferred at the default headroom ceiling")
	}
	tight := Config{SwapHeadroom: 0.5}
	if tight.PreferSwapRelief(LevelShed, 0.6) {
		t.Error("relief ignored an explicit headroom ceiling")
	}
	if !tight.PreferSwapRelief(LevelShed, 0.4) {
		t.Error("relief refused below the explicit ceiling")
	}
}

// TestLevelString names every rung.
func TestLevelString(t *testing.T) {
	want := map[Level]string{
		LevelNormal: "normal", LevelConserve: "conserve",
		LevelDegrade: "degrade", LevelShed: "shed",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), s)
		}
	}
}

// TestHedgingAllowed: hedged retries are permitted through Conserve and
// cut off at Degrade and Shed, regardless of tuning.
func TestHedgingAllowed(t *testing.T) {
	c := Config{}.Defaulted()
	want := map[Level]bool{
		LevelNormal: true, LevelConserve: true,
		LevelDegrade: false, LevelShed: false,
	}
	for lvl, ok := range want {
		if got := c.HedgingAllowed(lvl); got != ok {
			t.Errorf("HedgingAllowed(%s) = %v, want %v", lvl, got, ok)
		}
	}
}
