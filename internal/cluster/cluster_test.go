package cluster

import (
	"testing"

	"fluidfaas/internal/mig"
)

func TestDefaultSpecMatchesPaperTestbed(t *testing.T) {
	c := New(DefaultSpec())
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(c.Nodes))
	}
	for _, n := range c.Nodes {
		if len(n.GPUs) != 8 {
			t.Errorf("node %d GPUs = %d, want 8", n.ID, len(n.GPUs))
		}
		if n.CPUMemGB != 1440 {
			t.Errorf("node %d CPU mem = %v, want 1440", n.ID, n.CPUMemGB)
		}
		if n.TotalGPCs() != 56 {
			t.Errorf("node %d GPCs = %d, want 56", n.ID, n.TotalGPCs())
		}
	}
	if c.TotalGPCs() != 112 {
		t.Errorf("cluster GPCs = %d, want 112", c.TotalGPCs())
	}
	// GPU IDs globally unique and ordered.
	all := c.AllGPUs()
	if len(all) != 16 {
		t.Fatalf("AllGPUs = %d, want 16", len(all))
	}
	for i, g := range all {
		if g.ID != i {
			t.Errorf("gpu %d has ID %d", i, g.ID)
		}
	}
}

func TestNodeFreeSlicesAndGPCs(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 2), CPUMemGB: 100})
	n := c.Nodes[0]
	if got := len(n.FreeSlices(0)); got != 6 {
		t.Fatalf("free slices = %d, want 6", got)
	}
	if n.FreeGPCs(0) != 14 {
		t.Errorf("FreeGPCs = %d, want 14", n.FreeGPCs(0))
	}
	n.GPUs[0].Slices[0].Allocate("x", 0) // take the 4g
	if n.FreeGPCs(0) != 10 {
		t.Errorf("FreeGPCs after alloc = %d, want 10", n.FreeGPCs(0))
	}
	if c.OccupiedGPCs() != 4 {
		t.Errorf("OccupiedGPCs = %d, want 4", c.OccupiedGPCs())
	}
}

func TestWarmMemoryAccounting(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 50})
	n := c.Nodes[0]
	if !n.ReserveWarm(30) {
		t.Fatal("ReserveWarm(30) failed with 50 free")
	}
	if n.ReserveWarm(30) {
		t.Fatal("ReserveWarm(30) succeeded with only 20 free")
	}
	if !n.ReserveWarm(20) {
		t.Fatal("ReserveWarm(20) failed with exactly 20 free")
	}
	n.ReleaseWarm(30)
	if n.WarmMemGB() != 20 {
		t.Errorf("WarmMemGB = %v, want 20", n.WarmMemGB())
	}
	n.ReleaseWarm(20)
	if n.WarmMemGB() != 0 {
		t.Errorf("WarmMemGB = %v, want 0", n.WarmMemGB())
	}
}

func TestReleaseWarmNegativePanics(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 50})
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	c.Nodes[0].ReleaseWarm(10)
}

func TestReleaseWarmFloatNoiseClamps(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 50})
	n := c.Nodes[0]
	if !n.ReserveWarm(10) {
		t.Fatal("ReserveWarm(10) failed")
	}
	// Releasing a hair more than was reserved is float noise, not a
	// bookkeeping bug: it clamps to zero instead of panicking.
	n.ReleaseWarm(10 + 1e-12)
	if n.WarmMemGB() != 0 {
		t.Errorf("WarmMemGB = %v, want 0 after noise-clamped release", n.WarmMemGB())
	}
	if !n.ReserveWarm(50) {
		t.Error("full-capacity reservation failed after clamp")
	}
}

func TestDropWarmThenReReserve(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 50})
	n := c.Nodes[0]
	if !n.ReserveWarm(30) {
		t.Fatal("ReserveWarm(30) failed")
	}
	n.Pool().ReserveModel("m", 20)
	n.DropWarm()
	if n.WarmMemGB() != 0 {
		t.Fatalf("WarmMemGB = %v after DropWarm, want 0", n.WarmMemGB())
	}
	if n.Pool().Has("m") {
		t.Error("keyed copy survived DropWarm")
	}
	// The crash wiped the reservations; the full capacity is reusable
	// and releasing the wiped reservation must not be double-counted.
	if !n.ReserveWarm(50) {
		t.Error("ReserveWarm(50) failed after DropWarm emptied the pool")
	}
	n.ReleaseWarm(50)
	if n.WarmMemGB() != 0 {
		t.Errorf("WarmMemGB = %v, want 0", n.WarmMemGB())
	}
}

func TestClusterTimes(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 2), CPUMemGB: 100})
	g0 := c.Nodes[0].GPUs[0]
	s0, s1 := g0.Slices[0], g0.Slices[1]
	s0.Allocate("a", 0)
	s1.Allocate("b", 0)
	s0.SetActive(true, 0)
	s1.SetActive(true, 0)
	s0.SetActive(false, 10)
	s1.SetActive(false, 10)
	if got := c.GPUTime(20); got != 10 {
		t.Errorf("GPUTime = %v, want 10 (one GPU active)", got)
	}
	if got := c.MIGTime(20); got != 20 {
		t.Errorf("MIGTime = %v, want 20 (two slices × 10)", got)
	}
}

func TestHybridCluster(t *testing.T) {
	c := New(Spec{Nodes: 1, GPUConfigs: mig.HybridNode(), CPUMemGB: 1440})
	if got := c.Nodes[0].TotalGPCs(); got != 7+7+7+7*4+7 {
		t.Errorf("hybrid node GPCs = %d, want 56", got)
	}
}

func TestNewPanics(t *testing.T) {
	for _, spec := range []Spec{
		{Nodes: 0, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1)},
		{Nodes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", spec)
				}
			}()
			New(spec)
		}()
	}
}
