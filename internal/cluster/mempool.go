package cluster

import (
	"container/list"
	"fmt"
	"sort"
)

// MemPool is a node's host-memory pool. It backs the warm keep-alive
// tier: every model copy parked in CPU memory holds a reservation here.
// Two reservation styles coexist:
//
//   - Keyed, per-model reservations (ReserveModel/ReleaseModel), the
//     swap tier's currency: each key is one model copy, tracked in LRU
//     order so the pool can evict the least-recently-used copy under
//     pressure. A copy may be "parked" — still resident, but with no
//     live binding — which makes it the preferred eviction victim and
//     lets a later binding reclaim it instead of refetching remotely.
//   - Anonymous reservations (Reserve/Release), the legacy warm
//     accounting: a bare byte count with no identity. The platform's
//     swap-disabled path uses these, preserving the pre-swap-tier
//     accept/reject semantics exactly.
//
// Both styles draw from the same capacity.
type MemPool struct {
	capGB  float64
	usedGB float64
	anonGB float64

	entries map[string]*poolEntry
	lru     *list.List // front = most recently used; back = LRU victim
}

type poolEntry struct {
	key    string
	gb     float64
	parked bool
	// loaded marks the copy as materialised: the model was actually
	// fetched into the reserved space at least once. A bare reservation
	// is space, not data — reloading from it would be a phantom warm
	// start.
	loaded bool
	elem   *list.Element
}

// NewMemPool returns an empty pool with the given capacity.
func NewMemPool(capGB float64) *MemPool {
	return &MemPool{
		capGB:   capGB,
		entries: make(map[string]*poolEntry),
		lru:     list.New(),
	}
}

// CapacityGB returns the pool capacity.
func (m *MemPool) CapacityGB() float64 { return m.capGB }

// UsedGB returns reserved memory (keyed plus anonymous).
func (m *MemPool) UsedGB() float64 { return m.usedGB }

// FreeGB returns unreserved capacity.
func (m *MemPool) FreeGB() float64 { return m.capGB - m.usedGB }

// Occupancy returns UsedGB/CapacityGB, the pool-pressure metric; zero
// when the pool has no capacity.
func (m *MemPool) Occupancy() float64 {
	if m.capGB <= 0 {
		return 0
	}
	return m.usedGB / m.capGB
}

// Reserve makes an anonymous reservation. It reports false when the
// pool cannot fit it (exact fit is allowed).
func (m *MemPool) Reserve(gb float64) bool {
	if m.usedGB+gb > m.capGB {
		return false
	}
	m.anonGB += gb
	m.usedGB += gb
	return true
}

// Release returns anonymously reserved memory. Releasing more than was
// reserved panics (beyond a float-noise tolerance, which is clamped).
func (m *MemPool) Release(gb float64) {
	m.anonGB -= gb
	m.usedGB -= gb
	if m.anonGB < -1e-9 {
		panic(fmt.Sprintf("cluster: warm memory went negative (%v)", m.anonGB))
	}
	if m.anonGB < 0 {
		m.usedGB -= m.anonGB
		m.anonGB = 0
	}
	if m.usedGB < 0 {
		m.usedGB = 0
	}
}

// Has reports whether the pool holds a copy for key.
func (m *MemPool) Has(key string) bool {
	_, ok := m.entries[key]
	return ok
}

// Parked reports whether key's copy is parked (resident with no live
// binding). False when the key is absent.
func (m *MemPool) Parked(key string) bool {
	e, ok := m.entries[key]
	return ok && e.parked
}

// ReserveModel reserves gb for the model copy key, marking it most
// recently used. An already-present key is refreshed in place (and
// un-parked) regardless of gb. Reports false when the pool cannot fit
// the reservation; the caller decides whether to evict and retry.
func (m *MemPool) ReserveModel(key string, gb float64) bool {
	if e, ok := m.entries[key]; ok {
		e.parked = false
		m.lru.MoveToFront(e.elem)
		return true
	}
	if m.usedGB+gb > m.capGB {
		return false
	}
	e := &poolEntry{key: key, gb: gb}
	e.elem = m.lru.PushFront(e)
	m.entries[key] = e
	m.usedGB += gb
	return true
}

// ReleaseModel drops key's reservation. Unknown keys are a no-op, so
// teardown paths may release defensively.
func (m *MemPool) ReleaseModel(key string) {
	e, ok := m.entries[key]
	if !ok {
		return
	}
	m.lru.Remove(e.elem)
	delete(m.entries, key)
	m.usedGB -= e.gb
	if m.usedGB < 0 {
		m.usedGB = 0
	}
}

// Touch marks key's copy most recently used.
func (m *MemPool) Touch(key string) {
	if e, ok := m.entries[key]; ok {
		m.lru.MoveToFront(e.elem)
	}
}

// MarkLoaded records that key's copy was materialised: a model fetch
// completed into the reserved space. Unknown keys are a no-op (the
// reservation may have been evicted while the fetch was in flight).
func (m *MemPool) MarkLoaded(key string) {
	if e, ok := m.entries[key]; ok {
		e.loaded = true
	}
}

// LoadedCopy reports whether the pool holds a materialised copy for
// key — a reservation whose model fetch completed. Only such a copy can
// make a later load warm.
func (m *MemPool) LoadedCopy(key string) bool {
	e, ok := m.entries[key]
	return ok && e.loaded
}

// Park marks key's copy as having no live binding: it stays resident
// and reclaimable, but becomes an eviction candidate.
func (m *MemPool) Park(key string) {
	if e, ok := m.entries[key]; ok {
		e.parked = true
	}
}

// Reclaim re-attaches a parked copy to a live binding, marking it most
// recently used. Reports false when the key is absent.
func (m *MemPool) Reclaim(key string) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	e.parked = false
	m.lru.MoveToFront(e.elem)
	return true
}

// EvictLRU removes and returns the least-recently-used copy for which
// evictable returns true (parked copies are always candidates). ok is
// false when no copy may be evicted.
func (m *MemPool) EvictLRU(evictable func(key string) bool) (string, float64, bool) {
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*poolEntry)
		if e.parked || (evictable != nil && evictable(e.key)) {
			m.lru.Remove(e.elem)
			delete(m.entries, e.key)
			m.usedGB -= e.gb
			if m.usedGB < 0 {
				m.usedGB = 0
			}
			return e.key, e.gb, true
		}
	}
	return "", 0, false
}

// Models returns the resident copy keys, sorted, for snapshots.
func (m *MemPool) Models() []string {
	out := make([]string, 0, len(m.entries))
	for k := range m.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParkedCount returns how many resident copies are parked.
func (m *MemPool) ParkedCount() int {
	n := 0
	for _, e := range m.entries {
		if e.parked {
			n++
		}
	}
	return n
}

// DropAll empties the pool (a node crash loses CPU memory).
func (m *MemPool) DropAll() {
	m.usedGB = 0
	m.anonGB = 0
	m.entries = make(map[string]*poolEntry)
	m.lru.Init()
}
