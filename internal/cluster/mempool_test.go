package cluster

import (
	"reflect"
	"testing"
)

func TestMemPoolKeyedReserveRelease(t *testing.T) {
	m := NewMemPool(100)
	if !m.ReserveModel("a", 40) || !m.ReserveModel("b", 40) {
		t.Fatal("reservations failed with room to spare")
	}
	if m.ReserveModel("c", 30) {
		t.Error("ReserveModel(c, 30) succeeded with only 20 free")
	}
	if !m.ReserveModel("c", 20) {
		t.Error("exact-fit keyed reservation refused")
	}
	if m.UsedGB() != 100 || m.FreeGB() != 0 {
		t.Errorf("used/free = %v/%v, want 100/0", m.UsedGB(), m.FreeGB())
	}
	// Re-reserving an existing key refreshes in place: no double charge.
	if !m.ReserveModel("a", 40) {
		t.Error("re-reserving a resident key should always succeed")
	}
	if m.UsedGB() != 100 {
		t.Errorf("re-reserve double-charged: used = %v", m.UsedGB())
	}
	m.ReleaseModel("b")
	if m.Has("b") || m.UsedGB() != 60 {
		t.Errorf("after release: has(b)=%v used=%v", m.Has("b"), m.UsedGB())
	}
	m.ReleaseModel("b") // unknown key: defensive no-op
	if m.UsedGB() != 60 {
		t.Errorf("double release changed accounting: used = %v", m.UsedGB())
	}
	if got := m.Models(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Models() = %v", got)
	}
}

func TestMemPoolLRUEvictionOrder(t *testing.T) {
	m := NewMemPool(100)
	m.ReserveModel("a", 30)
	m.ReserveModel("b", 30)
	m.ReserveModel("c", 30)
	m.Touch("a") // order (MRU..LRU): a c b
	all := func(string) bool { return true }
	key, gb, ok := m.EvictLRU(all)
	if !ok || key != "b" || gb != 30 {
		t.Fatalf("first eviction = %q/%v/%v, want b/30/true", key, gb, ok)
	}
	key, _, ok = m.EvictLRU(all)
	if !ok || key != "c" {
		t.Fatalf("second eviction = %q, want c", key)
	}
	if m.UsedGB() != 30 {
		t.Errorf("used after evictions = %v, want 30", m.UsedGB())
	}
}

func TestMemPoolEvictionRespectsPredicate(t *testing.T) {
	m := NewMemPool(100)
	m.ReserveModel("pinned", 40)
	m.ReserveModel("free", 40)
	m.Touch("free") // make "pinned" the LRU victim
	key, _, ok := m.EvictLRU(func(k string) bool { return k != "pinned" })
	if !ok || key != "free" {
		t.Fatalf("eviction = %q/%v, want free/true (skipping pinned LRU)", key, ok)
	}
	if _, _, ok := m.EvictLRU(func(string) bool { return false }); ok {
		t.Error("eviction succeeded with nothing evictable")
	}
	// Parked copies are always candidates, predicate notwithstanding.
	m.Park("pinned")
	if key, _, ok := m.EvictLRU(func(string) bool { return false }); !ok || key != "pinned" {
		t.Errorf("parked copy not evicted: %q/%v", key, ok)
	}
}

func TestMemPoolParkReclaim(t *testing.T) {
	m := NewMemPool(100)
	m.ReserveModel("a", 30)
	if m.Parked("a") {
		t.Error("fresh reservation reported parked")
	}
	m.Park("a")
	if !m.Parked("a") || m.ParkedCount() != 1 {
		t.Errorf("park not recorded: parked=%v count=%d", m.Parked("a"), m.ParkedCount())
	}
	if !m.Reclaim("a") || m.Parked("a") {
		t.Error("reclaim failed or left the copy parked")
	}
	if m.Reclaim("ghost") {
		t.Error("reclaimed an absent key")
	}
	// ReserveModel on a parked key un-parks it too.
	m.Park("a")
	m.ReserveModel("a", 30)
	if m.Parked("a") {
		t.Error("re-reservation left the copy parked")
	}
}

func TestMemPoolLoadedCopy(t *testing.T) {
	m := NewMemPool(100)
	m.ReserveModel("a", 30)
	// A bare reservation is space, not data: it must not count as a
	// warm copy until the fetch lands.
	if m.LoadedCopy("a") {
		t.Error("bare reservation reported as a loaded copy")
	}
	m.MarkLoaded("a")
	if !m.LoadedCopy("a") {
		t.Error("materialised copy not reported loaded")
	}
	m.MarkLoaded("ghost") // eviction raced the fetch: no-op
	if m.Has("ghost") || m.LoadedCopy("ghost") {
		t.Error("MarkLoaded resurrected an absent key")
	}
	m.ReleaseModel("a")
	m.ReserveModel("a", 30)
	if m.LoadedCopy("a") {
		t.Error("loaded flag survived release + re-reservation")
	}
}

func TestMemPoolOccupancyAndAnonymousMix(t *testing.T) {
	m := NewMemPool(200)
	if m.Occupancy() != 0 {
		t.Errorf("empty occupancy = %v", m.Occupancy())
	}
	m.ReserveModel("a", 50)
	if !m.Reserve(50) {
		t.Fatal("anonymous reserve failed with room")
	}
	if m.Occupancy() != 0.5 {
		t.Errorf("occupancy = %v, want 0.5 (keyed+anonymous share capacity)", m.Occupancy())
	}
	if m.ReserveModel("b", 150) {
		t.Error("keyed reservation ignored anonymous usage")
	}
	if NewMemPool(0).Occupancy() != 0 {
		t.Error("zero-capacity pool occupancy not 0")
	}
}

func TestMemPoolDropAll(t *testing.T) {
	m := NewMemPool(100)
	m.ReserveModel("a", 30)
	m.MarkLoaded("a")
	m.Reserve(20)
	m.DropAll()
	if m.UsedGB() != 0 || m.Has("a") || m.LoadedCopy("a") || len(m.Models()) != 0 {
		t.Errorf("DropAll left state: used=%v has=%v", m.UsedGB(), m.Has("a"))
	}
	// The pool is fully usable again afterwards.
	if !m.ReserveModel("a", 100) {
		t.Error("post-drop exact-fit reservation failed")
	}
}
