// Package cluster assembles MIG-partitioned GPUs into nodes and a
// cluster, mirroring the paper's testbed: two invoker nodes with eight
// A100-80GB GPUs each (Table 3).
package cluster

import (
	"fluidfaas/internal/mig"
)

// Node is one invoker node holding GPUs and host (CPU) memory. Host
// memory backs the warm keep-alive state: evicted models park there.
type Node struct {
	ID       int
	GPUs     []*mig.GPU
	CPUMemGB float64

	// pool manages host memory used by warm (evicted) models; lazily
	// initialised from CPUMemGB on first use.
	pool *MemPool

	// down marks a crashed node: no placement until it recovers, and
	// its warm host-memory copies are lost.
	down bool

	// gen counts node-level free-set changes (health flips); GPUs carry
	// their own generations.
	gen uint64
}

// Healthy reports whether the node is up.
func (n *Node) Healthy() bool { return !n.down }

// SetHealthy marks the node crashed (false) or recovered (true). GPU
// and slice health are tracked separately.
func (n *Node) SetHealthy(h bool) {
	n.down = !h
	n.gen++
}

// FreeGen returns a generation number for the node's free-slice set:
// FreeSlices(now) returns the same view as long as FreeGen is unchanged
// and stable is true. stable is false while any GPU is unavailable
// (mid-reconfiguration): its free set then changes with the mere
// passage of time, so cached views cannot be trusted across calls.
func (n *Node) FreeGen(now float64) (gen uint64, stable bool) {
	gen = n.gen
	stable = true
	for _, g := range n.GPUs {
		gen += g.Gen()
		if !g.Available(now) {
			stable = false
		}
	}
	return gen, stable
}

// Pool returns the node's host-memory pool, initialising it from
// CPUMemGB on first use.
func (n *Node) Pool() *MemPool {
	if n.pool == nil {
		n.pool = NewMemPool(n.CPUMemGB)
	}
	return n.pool
}

// DropWarm discards all warm host-memory reservations (a node crash
// loses the models parked in CPU memory).
func (n *Node) DropWarm() { n.Pool().DropAll() }

// Cluster is a set of invoker nodes.
type Cluster struct {
	Nodes []*Node
}

// Spec describes a cluster to construct.
type Spec struct {
	// Nodes is the node count (paper: 2).
	Nodes int
	// GPUConfigs gives the per-GPU partition for each GPU of a node
	// (paper: 8 GPUs per node). The same layout is applied to every node.
	GPUConfigs []mig.Config
	// CPUMemGB per node (paper Table 3: 1440 GB).
	CPUMemGB float64
}

// DefaultSpec returns the paper's testbed: 2 nodes × 8 GPUs, each GPU
// partitioned 4g.40gb + 2g.20gb + 1g.10gb, 1440 GB host memory.
func DefaultSpec() Spec {
	return Spec{
		Nodes:      2,
		GPUConfigs: mig.UniformNode(mig.DefaultConfig, 8),
		CPUMemGB:   1440,
	}
}

// New builds a cluster from spec. GPU IDs are globally unique.
func New(spec Spec) *Cluster {
	if spec.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if len(spec.GPUConfigs) == 0 {
		panic("cluster: need at least one GPU per node")
	}
	c := &Cluster{}
	gpuID := 0
	for n := 0; n < spec.Nodes; n++ {
		node := &Node{ID: n, CPUMemGB: spec.CPUMemGB}
		for _, cfg := range spec.GPUConfigs {
			node.GPUs = append(node.GPUs, mig.NewGPU(n, gpuID, cfg))
			gpuID++
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// FreeSlices returns the node's free healthy slices across all GPUs,
// largest first within each GPU, GPUs in ID order. A crashed node has
// no free slices.
func (n *Node) FreeSlices(now float64) []*mig.Slice {
	if n.down {
		return nil
	}
	var out []*mig.Slice
	for _, g := range n.GPUs {
		out = append(out, g.FreeSlices(now)...)
	}
	return out
}

// FreeGPCs returns total free compute on the node.
func (n *Node) FreeGPCs(now float64) int {
	if n.down {
		return 0
	}
	t := 0
	for _, g := range n.GPUs {
		t += g.FreeGPCs(now)
	}
	return t
}

// TotalGPCs returns the node's total compute capacity.
func (n *Node) TotalGPCs() int {
	t := 0
	for _, g := range n.GPUs {
		t += g.Config().TotalGPCs()
	}
	return t
}

// ReserveWarm reserves host memory for a warm (evicted) model. It
// reports false when host memory is exhausted. This is the anonymous
// (unkeyed) reservation style; the swap tier uses the pool's keyed API
// directly.
func (n *Node) ReserveWarm(memGB float64) bool { return n.Pool().Reserve(memGB) }

// ReleaseWarm returns host memory reserved by ReserveWarm.
func (n *Node) ReleaseWarm(memGB float64) { n.Pool().Release(memGB) }

// WarmMemGB returns host memory currently holding warm models.
func (n *Node) WarmMemGB() float64 { return n.Pool().UsedGB() }

// AllGPUs returns every GPU in the cluster in ID order.
func (c *Cluster) AllGPUs() []*mig.GPU {
	var out []*mig.GPU
	for _, n := range c.Nodes {
		out = append(out, n.GPUs...)
	}
	return out
}

// TotalGPCs returns the cluster's total compute capacity.
func (c *Cluster) TotalGPCs() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.TotalGPCs()
	}
	return t
}

// ActiveGPCs returns compute currently processing across the cluster.
func (c *Cluster) ActiveGPCs() int {
	t := 0
	for _, g := range c.AllGPUs() {
		t += g.ActiveGPCs()
	}
	return t
}

// OccupiedGPCs returns compute currently allocated across the cluster.
func (c *Cluster) OccupiedGPCs() int {
	t := 0
	for _, g := range c.AllGPUs() {
		t += g.OccupiedGPCs()
	}
	return t
}

// GPUTime returns summed GPU time (union activity per GPU, §6) at now.
func (c *Cluster) GPUTime(now float64) float64 {
	t := 0.0
	for _, g := range c.AllGPUs() {
		t += g.ActiveTime(now)
	}
	return t
}

// MIGTime returns summed per-slice active time at now.
func (c *Cluster) MIGTime(now float64) float64 {
	t := 0.0
	for _, g := range c.AllGPUs() {
		t += g.MIGTime(now)
	}
	return t
}
