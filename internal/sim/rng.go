package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a seeded random stream. Components derive independent streams
// from a root seed and a name, so adding a component never perturbs the
// draws of another (a common reproducibility hazard when sharing one
// rand.Rand across a simulation).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream derived from seed and name.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	derived := seed ^ int64(h.Sum64())
	return &RNG{r: rand.New(rand.NewSource(derived))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Exp returns an exponential draw with the given mean. Mean must be
// positive.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Poisson returns a Poisson draw with the given mean, using inversion for
// small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= g.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := g.r.NormFloat64()*math.Sqrt(mean) + mean
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Norm returns a normal draw with the given mean and standard deviation.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNorm returns a log-normal draw where the underlying normal has the
// given mu and sigma.
func (g *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
