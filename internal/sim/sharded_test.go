package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// --- sequential-engine edge cases (the PR-10 bugfix sweep) ---

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.After(1, func() { ran = true })
	e.Run()
	if !ran || !ev.Fired() {
		t.Fatalf("event did not fire")
	}
	e.Cancel(ev)
	if ev.Cancelled() {
		t.Fatalf("Cancel after fire marked the event cancelled")
	}
	if got := e.Stats().Cancellations; got != 0 {
		t.Fatalf("Cancel after fire counted as a cancellation: %d", got)
	}
}

func TestEngineCancelTwice(t *testing.T) {
	e := NewEngine()
	ev := e.After(1, func() {})
	e.After(2, func() {})
	e.Cancel(ev)
	e.Cancel(ev)
	if got := e.Stats().Cancellations; got != 1 {
		t.Fatalf("double Cancel counted %d cancellations, want 1", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEnginePendingInterleaved(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 6)
	for i := range evs {
		evs[i] = e.After(float64(i+1), func() {})
	}
	e.Cancel(evs[2]) // cancel a queued event
	e.Step()         // fire evs[0]
	e.Cancel(evs[0]) // no-op: already fired
	e.Cancel(evs[4])
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e.Run()
	if got := e.Executed(); got != 4 {
		t.Fatalf("Executed = %d, want 4", got)
	}
	s := e.Stats()
	if s.Cancellations != 2 {
		t.Fatalf("Cancellations = %d, want 2", s.Cancellations)
	}
}

func TestEngineRunUntilForeverDrained(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Forever) // empty schedule: clock must stay at 0, not jump to Forever
	if e.Now() != 0 {
		t.Fatalf("Now = %v after RunUntil(Forever) on empty schedule", e.Now())
	}
	e.After(3, func() {})
	e.RunUntil(Forever)
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3 (last event time)", e.Now())
	}
}

// --- sharded engine ---

// driveWorkload runs a synthetic multi-node workload on any kernel and
// returns the execution log. clocks[i] is node i's scheduling surface
// (all the same engine for the sequential case, per-shard clocks for
// the sharded case). The workload mixes monotone arrival chains,
// same-node service chains, cross-node hops at ties and near-ties, and
// cancellations — the shapes the platform generates.
func driveWorkload(k Kernel, clocks []Clock, seed int64) []string {
	var log []string
	nodes := len(clocks)
	rng := NewRNG(seed, "wl")
	emit := func(tag string) { log = append(log, fmt.Sprintf("%.9f %s", k.Now(), tag)) }

	var chain func(node, depth int)
	chain = func(node, depth int) {
		emit(fmt.Sprintf("n%d d%d", node, depth))
		if depth >= 6 {
			return
		}
		c := clocks[node]
		// Same-node continuation, sometimes at zero delay (seq ties).
		d := rng.Float64() * 0.02
		if rng.Float64() < 0.2 {
			d = 0
		}
		c.After(d, func() { chain(node, depth+1) })
		// Occasional cross-node hop with a short horizon-violating delay
		// and one with a realistic transfer-floor delay.
		if rng.Float64() < 0.4 {
			peer := (node + 1 + rng.Intn(nodes-1)) % nodes
			if nodes == 1 {
				peer = 0
			}
			hop := 0.001
			if rng.Float64() < 0.5 {
				hop = 0.010
			}
			clocks[peer].After(hop, func() { chain(peer, depth+1) })
		}
		// Schedule-then-cancel: half fire, half are cancelled.
		victim := c.After(0.005, func() { emit(fmt.Sprintf("victim n%d", node)) })
		if rng.Float64() < 0.5 {
			c.Cancel(victim)
		}
	}

	// Pre-sorted arrival wave onto every node (exercises the lane).
	for i := 0; i < 40; i++ {
		at := float64(i) * 0.01
		node := i % nodes
		k.At(at, func() { chain(node, 0) })
	}
	k.RunUntil(5)
	return log
}

// TestShardedDeterminismSweep checks the same-seed identity contract:
// the execution log on 1/2/4/8 shards is identical to the sequential
// engine's, event for event.
func TestShardedDeterminismSweep(t *testing.T) {
	const nodes = 8
	seq := NewEngine()
	seqClocks := make([]Clock, nodes)
	for i := range seqClocks {
		seqClocks[i] = seq
	}
	want := driveWorkload(seq, seqClocks, 42)
	if len(want) < 100 {
		t.Fatalf("workload too small to be meaningful: %d events logged", len(want))
	}
	for _, shards := range []int{1, 2, 4, 8} {
		se := NewShardedEngine(shards)
		clocks := make([]Clock, nodes)
		for i := range clocks {
			// Mirror the platform mapping: shard 0 is the coordinator,
			// nodes spread over the rest (or everything on shard 0).
			if shards == 1 {
				clocks[i] = se.Shard(0)
			} else {
				clocks[i] = se.Shard(1 + i%(shards-1))
			}
		}
		got := driveWorkload(se, clocks, 42)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("shards=%d diverges at event %d: got %q want %q", shards, i, got[i], want[i])
				}
			}
			t.Fatalf("shards=%d log length %d, want %d", shards, len(got), len(want))
		}
		if se.Executed() != seq.Executed() {
			t.Fatalf("shards=%d Executed = %d, want %d", shards, se.Executed(), seq.Executed())
		}
		if st := se.Stats(); st.Scheduled != seq.Stats().Scheduled || st.Cancellations != seq.Stats().Cancellations {
			t.Fatalf("shards=%d stats mismatch: %+v vs %+v", shards, st, seq.Stats())
		}
	}
}

// TestShardedCrossShardBelowHorizon pins the tricky merge case: while
// shard A is being drained, one of its callbacks schedules onto shard B
// below A's next event — the new event must still fire in global order.
func TestShardedCrossShardBelowHorizon(t *testing.T) {
	se := NewShardedEngine(3)
	a, b := se.Shard(1), se.Shard(2)
	var order []string
	a.At(1, func() {
		order = append(order, "a@1")
		// Cross-shard events below shard A's next head (a@2).
		b.After(0, func() { order = append(order, "b@1") })   // tie: later seq, fires after a@1
		b.After(0.5, func() { order = append(order, "b@1.5") })
	})
	a.At(2, func() { order = append(order, "a@2") })
	se.Run()
	want := []string{"a@1", "b@1", "b@1.5", "a@2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestShardedCancel covers both cancel paths: tombstoning a lane event
// and eagerly removing a heap event, plus cancel-after-fire.
func TestShardedCancel(t *testing.T) {
	se := NewShardedEngine(2)
	c := se.Shard(1)
	// Monotone appends land in the lane...
	laneEv := c.At(1, func() { t.Fatalf("cancelled lane event fired") })
	c.At(2, func() {})
	// ...then an earlier event must go to the heap.
	heapEv := c.At(1.5, func() { t.Fatalf("cancelled heap event fired") })
	if se.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", se.Pending())
	}
	se.Cancel(laneEv)
	se.Cancel(heapEv)
	se.Cancel(heapEv) // no-op
	if se.Pending() != 1 {
		t.Fatalf("Pending after cancels = %d, want 1", se.Pending())
	}
	fired := se.After(0.1, func() {})
	se.Run()
	se.Cancel(fired)
	if fired.Cancelled() {
		t.Fatalf("Cancel after fire marked event cancelled")
	}
	st := se.Stats()
	if st.Cancellations != 2 || st.Executed != 2 {
		t.Fatalf("stats = %+v, want 2 cancellations, 2 executed", st)
	}
}

func TestShardedPastSchedulingPanics(t *testing.T) {
	se := NewShardedEngine(2)
	se.After(1, func() {})
	se.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("scheduling in the past did not panic")
		}
	}()
	se.Shard(1).At(0.5, func() {})
}

func TestShardedStatsRollup(t *testing.T) {
	se := NewShardedEngine(4)
	for i := 0; i < 4; i++ {
		c := se.Shard(i)
		for j := 0; j < 3; j++ {
			c.At(float64(i*3+j)*0.1, func() {})
		}
	}
	se.Run()
	st := se.Stats()
	if st.Shards != 4 || st.Executed != 12 || st.Scheduled != 12 {
		t.Fatalf("stats roll-up = %+v", st)
	}
	per := se.ShardStats()
	var sum uint64
	for _, s := range per {
		sum += s.Executed
	}
	if sum != st.Executed {
		t.Fatalf("per-shard executed sums to %d, want %d", sum, st.Executed)
	}
	// Monotone per-shard appends should ride the lane: no shard's queue
	// should ever have been deeper than its 3 events.
	if st.PeakHeapDepth != 3 {
		t.Fatalf("PeakHeapDepth = %d, want 3", st.PeakHeapDepth)
	}
}

// TestShardedLaneAbsorbsMonotoneArrivals is a whitebox check that a
// pre-sorted arrival wave (the platform pre-schedules every trace
// arrival at Run start) stays out of the heap entirely.
func TestShardedLaneAbsorbsMonotoneArrivals(t *testing.T) {
	se := NewShardedEngine(1)
	for i := 0; i < 1000; i++ {
		se.At(float64(i)*0.001, func() {})
	}
	if n := len(se.shards[0].heap); n != 0 {
		t.Fatalf("monotone arrivals leaked into the heap: %d", n)
	}
	if n := len(se.shards[0].lane); n != 1000 {
		t.Fatalf("lane holds %d events, want 1000", n)
	}
	se.Run()
	if se.Executed() != 1000 {
		t.Fatalf("Executed = %d", se.Executed())
	}
}
