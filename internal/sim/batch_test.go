package sim

import (
	"math"
	"testing"
)

// linearService returns 1s regardless of batch size (perfect batching).
func linearService(int) Time { return 1 }

func TestBatchStationCoalesces(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 4, 0.5, linearService)
	var sizes []int
	for i := 0; i < 4; i++ {
		s.Enqueue(func(n int) { sizes = append(sizes, n) })
	}
	e.Run()
	if len(sizes) != 4 {
		t.Fatalf("completions = %d, want 4", len(sizes))
	}
	for _, n := range sizes {
		if n != 4 {
			t.Fatalf("batch sizes = %v, want all 4 (full batch fires immediately)", sizes)
		}
	}
	if e.Now() != 1 {
		t.Errorf("full batch served at %v, want immediately (1s service)", e.Now())
	}
	if s.Batches() != 1 || s.Served() != 4 || s.MeanBatch() != 4 {
		t.Errorf("stats: batches=%d served=%d mean=%v", s.Batches(), s.Served(), s.MeanBatch())
	}
}

func TestBatchStationWindowExpiry(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 8, 0.5, linearService)
	var doneAt Time = -1
	s.Enqueue(func(n int) {
		if n != 1 {
			t.Errorf("batch size = %d, want 1", n)
		}
		doneAt = e.Now()
	})
	e.Run()
	// Lone job waits out the 0.5s window then serves for 1s.
	if math.Abs(doneAt-1.5) > 1e-12 {
		t.Errorf("done at %v, want 1.5", doneAt)
	}
}

func TestBatchStationZeroWindowServesImmediately(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 8, 0, linearService)
	var n0 int
	s.Enqueue(func(n int) { n0 = n })
	e.Run()
	if e.Now() != 1 || n0 != 1 {
		t.Errorf("zero-window service: now=%v n=%d", e.Now(), n0)
	}
}

func TestBatchStationOverflowSplitsBatches(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 2, 0, linearService)
	count := map[int]int{}
	for i := 0; i < 5; i++ {
		s.Enqueue(func(n int) { count[n]++ })
	}
	e.Run()
	// 5 jobs, max 2: batches of 2,2,1.
	if count[2] != 4 || count[1] != 1 {
		t.Errorf("batch size distribution = %v, want 4 jobs in pairs + 1 single", count)
	}
	if s.Batches() != 3 {
		t.Errorf("batches = %d, want 3", s.Batches())
	}
	if e.Now() != 3 {
		t.Errorf("makespan = %v, want 3", e.Now())
	}
}

func TestBatchStationTimerRearms(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 4, 0.5, linearService)
	var firstDone, secondDone Time
	s.Enqueue(func(int) { firstDone = e.Now() })
	// Second job arrives long after the first batch completed: the
	// window timer must re-arm.
	e.At(5, func() {
		s.Enqueue(func(int) { secondDone = e.Now() })
	})
	e.Run()
	if math.Abs(firstDone-1.5) > 1e-12 {
		t.Errorf("first done at %v, want 1.5", firstDone)
	}
	if math.Abs(secondDone-6.5) > 1e-12 {
		t.Errorf("second done at %v, want 6.5 (window re-armed)", secondDone)
	}
}

func TestBatchStationPauseResume(t *testing.T) {
	e := NewEngine()
	s := NewBatchStation(e, "b", 2, 0, linearService)
	s.Pause()
	var done Time = -1
	s.Enqueue(func(int) { done = e.Now() })
	e.At(3, func() { s.Resume() })
	e.Run()
	if done != 4 {
		t.Errorf("done at %v, want 4 (paused until 3)", done)
	}
}

func TestBatchStationHooks(t *testing.T) {
	e := NewEngine()
	// A short window lets the two back-to-back jobs coalesce.
	s := NewBatchStation(e, "b", 2, 0.1, func(n int) Time { return Time(n) })
	var starts, ends []int
	s.OnStart = func(n int) { starts = append(starts, n) }
	s.OnEnd = func(n int) { ends = append(ends, n) }
	s.Enqueue(func(int) {})
	s.Enqueue(func(int) {})
	e.Run()
	if len(starts) != 1 || starts[0] != 2 || len(ends) != 1 || ends[0] != 2 {
		t.Errorf("hooks: starts=%v ends=%v", starts, ends)
	}
	if s.BusyTime() != 2 {
		t.Errorf("BusyTime = %v, want 2", s.BusyTime())
	}
}

func TestBatchStationPanics(t *testing.T) {
	e := NewEngine()
	for name, f := range map[string]func(){
		"maxBatch":   func() { NewBatchStation(e, "x", 0, 0, linearService) },
		"nilService": func() { NewBatchStation(e, "x", 1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
