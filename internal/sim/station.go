package sim

// Station is a single-server FIFO queueing station driven by a Clock.
// Jobs enter via Enqueue; the station serves one job at a time, holding
// it for the service time returned by the job's Service callback, then
// invokes Done. Stations are the building block for both monolithic
// instances (one station) and pipelines (a chain of stations).
type Station struct {
	eng  Clock
	name string

	queue []*Job
	busy  bool
	// cur is the job in service; finishFn is the pre-bound completion
	// callback shared by every job (allocated once in NewStation).
	cur      *Job
	finishFn func()

	// Paused stations accept jobs but do not start service; used while a
	// time-sharing instance's model is being (re)loaded onto a slice.
	paused bool

	busySince Time
	busyTotal Time
	served    uint64
}

// Job is a unit of work flowing through stations.
type Job struct {
	// Service returns how long the station works on this job.
	Service func() Time
	// Done runs when service completes.
	Done func()
	// Runner, when set, supplies both callbacks from one value and takes
	// precedence over the Service/Done fields. A caller that embeds Job
	// in its own per-job state and points Runner back at it pays one
	// allocation per job instead of one per captured closure variable —
	// this is the platform's hot path for pipeline stages.
	Runner Runner
	// EnqueuedAt records when the job entered the current station's queue.
	EnqueuedAt Time
	// StartedAt records when service began at the current station.
	StartedAt Time
}

// Runner is the allocation-lean form of a job's callbacks (see
// Job.Runner).
type Runner interface {
	// Service returns how long the station works on this job.
	Service() Time
	// Done runs when service completes.
	Done()
}

func (j *Job) service() Time {
	if j.Runner != nil {
		return j.Runner.Service()
	}
	return j.Service()
}

func (j *Job) done() {
	if j.Runner != nil {
		j.Runner.Done()
		return
	}
	if j.Done != nil {
		j.Done()
	}
}

// NewStation returns an idle station bound to eng.
func NewStation(eng Clock, name string) *Station {
	s := &Station{eng: eng, name: name}
	// One completion callback per station, not per job: the station is a
	// single server, so the job it belongs to is always s.cur.
	s.finishFn = s.finish
	return s
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// QueueLen returns the number of jobs waiting (excluding the one in
// service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports whether a job is currently in service.
func (s *Station) Busy() bool { return s.busy }

// Served returns the number of jobs completed.
func (s *Station) Served() uint64 { return s.served }

// BusyTime returns the cumulative time spent serving jobs, up to now.
func (s *Station) BusyTime() Time {
	t := s.busyTotal
	if s.busy {
		t += s.eng.Now() - s.busySince
	}
	return t
}

// Utilization returns BusyTime divided by elapsed time since start of the
// simulation (or zero at time zero).
func (s *Station) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	return s.BusyTime() / now
}

// Enqueue adds a job; service starts immediately if the station is idle
// and not paused.
func (s *Station) Enqueue(j *Job) {
	j.EnqueuedAt = s.eng.Now()
	s.queue = append(s.queue, j)
	s.maybeStart()
}

// Pause stops the station from starting new jobs. The job currently in
// service (if any) completes normally.
func (s *Station) Pause() { s.paused = true }

// Resume lets the station start jobs again.
func (s *Station) Resume() {
	if !s.paused {
		return
	}
	s.paused = false
	s.maybeStart()
}

// Paused reports whether the station is paused.
func (s *Station) Paused() bool { return s.paused }

func (s *Station) maybeStart() {
	if s.busy || s.paused || len(s.queue) == 0 {
		return
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.cur = j
	s.busySince = s.eng.Now()
	j.StartedAt = s.eng.Now()
	d := j.service()
	if d < 0 {
		d = 0
	}
	s.eng.After(d, s.finishFn)
}

func (s *Station) finish() {
	j := s.cur
	s.cur = nil
	s.busy = false
	s.busyTotal += s.eng.Now() - s.busySince
	s.served++
	j.done()
	s.maybeStart()
}
