package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// ShardedEngine is a sharded discrete-event kernel: one event structure
// (a small binary heap plus a monotone "lane") per shard, merged into a
// single logical clock. It is built for simulations whose components
// partition naturally — in this repo, one shard per cluster node plus a
// coordinator shard for cluster-global work — and whose cross-shard
// traffic has a nonzero lower bound (the ≥ TransferBase inter-node hop),
// which keeps the conservative merge horizon wide.
//
// Determinism contract: events execute in exact global (time, seq) order
// with a single engine-wide sequence counter, on one goroutine — the
// same total order a sequential Engine would produce for the same
// scheduling calls. A model run on a ShardedEngine is therefore
// bit-for-bit identical to the same model on an Engine, for any shard
// count. Sharding buys throughput, not reordering:
//
//   - Each shard's heap holds only that shard's events, so sift costs
//     are O(log n_shard) instead of O(log n_total).
//   - Events scheduled in non-decreasing (time, seq) order on a shard —
//     pre-sorted trace arrivals, back-to-back service completions — land
//     in the shard's append-only lane: O(1) push and pop, no heap
//     traffic at all.
//   - The merge loop drains the current shard without rescanning the
//     others while its head stays below the conservative horizon (the
//     minimum head of every other shard), so the common case of a long
//     same-shard event chain pays no per-event merge cost.
type ShardedEngine struct {
	now     Time
	seq     uint64
	shards  []*shard
	nRun    uint64
	cancels uint64
	wall    time.Duration

	// Merge fast-path state: cur is the shard whose events are being
	// drained; horizonEv is the earliest head among the *other* shards
	// (nil when they are all empty). cur may keep executing without a
	// rescan while its head is before horizonEv. Scheduling onto a
	// non-current shard tightens the horizon in place, so the cache
	// never goes stale in the unsafe direction.
	cur       *shard
	horizonEv *Event
	horizonOK bool
}

// shard is one partition of the schedule: a heap for out-of-order
// events and a lane for monotone ones.
type shard struct {
	id       int
	heap     eventHeap
	lane     []*Event
	laneHead int // first live-or-tombstoned lane slot
	laneDead int // cancelled events still occupying lane slots
	executed uint64
	peak     int
}

// NewShardedEngine returns a kernel with n shards (min 1) and the clock
// at zero. Shard 0 is the conventional coordinator: ShardedEngine's own
// At/After schedule there.
func NewShardedEngine(n int) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	se := &ShardedEngine{shards: make([]*shard, n)}
	for i := range se.shards {
		se.shards[i] = &shard{id: i}
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns the clock bound to shard i; components constructed with
// it schedule all their events there. i is clamped to the valid range.
func (se *ShardedEngine) Shard(i int) *ShardClock {
	if i < 0 {
		i = 0
	}
	if i >= len(se.shards) {
		i = len(se.shards) - 1
	}
	return &ShardClock{se: se, s: se.shards[i]}
}

// ShardClock is a Clock view of one shard of a ShardedEngine. All
// shards share the engine's logical clock and sequence counter; the
// clock only decides which shard's event structure a callback lands in.
type ShardClock struct {
	se *ShardedEngine
	s  *shard
}

// Now returns the engine-wide virtual time.
func (c *ShardClock) Now() Time { return c.se.now }

// At schedules fn at absolute time t on this clock's shard.
func (c *ShardClock) At(t Time, fn func()) *Event { return c.se.schedule(c.s, t, fn) }

// After schedules fn d seconds from now on this clock's shard.
func (c *ShardClock) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.se.schedule(c.s, c.se.now+d, fn)
}

// Cancel removes ev from the schedule.
func (c *ShardClock) Cancel(ev *Event) { c.se.Cancel(ev) }

// Now returns the current virtual time.
func (se *ShardedEngine) Now() Time { return se.now }

// At schedules fn at absolute time t on the coordinator shard.
func (se *ShardedEngine) At(t Time, fn func()) *Event {
	return se.schedule(se.shards[0], t, fn)
}

// After schedules fn d seconds from now on the coordinator shard.
func (se *ShardedEngine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return se.schedule(se.shards[0], se.now+d, fn)
}

func (se *ShardedEngine) schedule(s *shard, t Time, fn func()) *Event {
	if t < se.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, se.now))
	}
	se.seq++
	ev := &Event{time: t, seq: se.seq, fn: fn, index: -1, sh: s}
	s.push(ev)
	// Keep the merge horizon conservative: a new event on a non-current
	// shard may become the earliest other-shard head.
	if se.horizonOK && s != se.cur {
		if se.horizonEv == nil || ev.before(se.horizonEv) {
			se.horizonEv = ev
		}
	}
	return ev
}

// Cancel removes ev from the schedule. As with Engine.Cancel, fired and
// already-cancelled events are a true no-op. Heap events are removed
// eagerly; lane events are tombstoned in place (the lane is append-only)
// and skipped when the drain reaches them. A cancellation can only move
// a shard's head later, so the cached horizon stays conservative.
func (se *ShardedEngine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.fired {
		return
	}
	ev.cancelled = true
	se.cancels++
	if ev.index == laneIndex {
		ev.sh.laneDead++
		return
	}
	heap.Remove(&ev.sh.heap, ev.index)
}

// Pending returns the number of scheduled, uncancelled events across all
// shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, s := range se.shards {
		n += s.pending()
	}
	return n
}

// Executed returns the number of events executed so far.
func (se *ShardedEngine) Executed() uint64 { return se.nRun }

// Step executes the single earliest event across all shards. It reports
// false when every shard is drained.
func (se *ShardedEngine) Step() bool {
	ev := se.next(Forever)
	if ev == nil {
		return false
	}
	se.fire(ev)
	return true
}

// RunUntil executes events in global (time, seq) order until the clock
// would pass t or every shard drains. After the call Now() == t unless
// the schedule drained earlier.
func (se *ShardedEngine) RunUntil(t Time) {
	start := time.Now()
	for {
		ev := se.next(t)
		if ev == nil {
			break
		}
		se.fire(ev)
	}
	if se.now < t && t != Forever {
		se.now = t
	}
	se.wall += time.Since(start)
}

// Run executes events until every shard drains.
func (se *ShardedEngine) Run() { se.RunUntil(Forever) }

func (se *ShardedEngine) fire(ev *Event) {
	se.now = ev.time
	ev.fired = true
	se.nRun++
	ev.sh.executed++
	ev.fn()
}

// next pops and returns the globally earliest event at or before limit,
// or nil. The fast path keeps draining the current shard while its head
// is before the cached horizon; otherwise it rescans every shard and
// recomputes the horizon.
func (se *ShardedEngine) next(limit Time) *Event {
	if se.horizonOK && se.cur != nil {
		if h := se.cur.head(); h != nil && h.time <= limit &&
			(se.horizonEv == nil || h.before(se.horizonEv)) {
			se.cur.pop(h)
			return h
		}
	}
	var best *Event
	var bestShard *shard
	for _, s := range se.shards {
		if h := s.head(); h != nil && (best == nil || h.before(best)) {
			best, bestShard = h, s
		}
	}
	if best == nil || best.time > limit {
		return nil
	}
	bestShard.pop(best)
	se.cur = bestShard
	var hz *Event
	for _, s := range se.shards {
		if s == bestShard {
			continue
		}
		if h := s.head(); h != nil && (hz == nil || h.before(hz)) {
			hz = h
		}
	}
	se.horizonEv, se.horizonOK = hz, true
	return best
}

// Stats returns the engine-wide telemetry roll-up. PeakHeapDepth is the
// deepest any single shard's queue (heap + live lane) ever got.
func (se *ShardedEngine) Stats() Stats {
	s := Stats{
		Executed:      se.nRun,
		Scheduled:     se.seq,
		Cancellations: se.cancels,
		WallSeconds:   se.wall.Seconds(),
		Shards:        len(se.shards),
	}
	for _, sh := range se.shards {
		if sh.peak > s.PeakHeapDepth {
			s.PeakHeapDepth = sh.peak
		}
	}
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(s.Executed) / s.WallSeconds
	}
	return s
}

// ShardStats returns per-shard telemetry: events executed from and the
// peak queue depth of each shard, in shard order. Engine-wide fields
// (Scheduled, Cancellations, wall clock) are reported by Stats only.
func (se *ShardedEngine) ShardStats() []Stats {
	out := make([]Stats, len(se.shards))
	for i, sh := range se.shards {
		out[i] = Stats{Executed: sh.executed, PeakHeapDepth: sh.peak}
	}
	return out
}

// before is the global execution order: (time, seq) lexicographic.
func (a *Event) before(b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (s *shard) pending() int {
	return len(s.heap) + (len(s.lane) - s.laneHead) - s.laneDead
}

// push queues ev on the shard: the lane if it preserves the lane's
// monotone (time, seq) order, the heap otherwise.
func (s *shard) push(ev *Event) {
	if s.laneHead == len(s.lane) {
		// Lane fully consumed: recycle the backing array.
		s.lane, s.laneHead, s.laneDead = s.lane[:0], 0, 0
		s.lane = append(s.lane, ev)
		ev.index = laneIndex
	} else if tail := s.lane[len(s.lane)-1]; !ev.before(tail) {
		s.lane = append(s.lane, ev)
		ev.index = laneIndex
	} else {
		heap.Push(&s.heap, ev)
	}
	if d := s.pending(); d > s.peak {
		s.peak = d
	}
}

// head returns the shard's earliest live event without removing it,
// skipping lane tombstones.
func (s *shard) head() *Event {
	for s.laneHead < len(s.lane) && s.lane[s.laneHead].cancelled {
		s.lane[s.laneHead] = nil
		s.laneHead++
		s.laneDead--
	}
	var lh *Event
	if s.laneHead < len(s.lane) {
		lh = s.lane[s.laneHead]
	}
	if len(s.heap) == 0 {
		return lh
	}
	hh := s.heap[0]
	if lh == nil || hh.before(lh) {
		return hh
	}
	return lh
}

// pop removes ev, which must be the shard's current head.
func (s *shard) pop(ev *Event) {
	if ev.index == laneIndex {
		s.lane[s.laneHead] = nil
		s.laneHead++
		ev.index = -1
		return
	}
	heap.Pop(&s.heap)
}
