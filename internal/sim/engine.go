// Package sim provides a deterministic discrete-event simulation kernel.
//
// The engine maintains a virtual clock and an event heap ordered by
// (time, sequence). All callbacks run on the caller's goroutine inside
// Run/Step, so simulations built on the engine need no locking and are
// bit-for-bit reproducible for a given seed and event schedule.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.At or Engine.After.
type Event struct {
	time      Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	nRun    uint64 // events executed
	cancels uint64 // events cancelled before firing
	peak    int    // deepest the heap ever got
	wall    time.Duration
}

// Stats is the engine's self-telemetry: how much work the kernel did and
// how fast it did it in wall-clock terms. Virtual-time behaviour is
// unaffected by collecting it; only WallSeconds and EventsPerSec vary
// between otherwise identical runs (they measure the host, not the
// model).
type Stats struct {
	// Executed counts events that fired.
	Executed uint64 `json:"events"`
	// Scheduled counts events ever scheduled (fired, pending or
	// cancelled).
	Scheduled uint64 `json:"scheduled"`
	// Cancellations counts events cancelled before firing.
	Cancellations uint64 `json:"cancellations"`
	// PeakHeapDepth is the largest number of events simultaneously
	// queued.
	PeakHeapDepth int `json:"peak_heap_depth"`
	// WallSeconds is real time spent inside Run/RunUntil.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is Executed/WallSeconds (0 before any timed run).
	EventsPerSec float64 `json:"events_per_sec"`
}

// Stats returns the engine's self-telemetry so far.
func (e *Engine) Stats() Stats {
	s := Stats{
		Executed:      e.nRun,
		Scheduled:     e.seq,
		Cancellations: e.cancels,
		PeakHeapDepth: e.peak,
		WallSeconds:   e.wall.Seconds(),
	}
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(s.Executed) / s.WallSeconds
	}
	return s
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.events, ev)
	if len(e.events) > e.peak {
		e.peak = len(e.events)
	}
	return ev
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the schedule. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	e.cancels++
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
	}
}

// Step executes the single earliest event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		e.nRun++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t or the
// schedule drains. After the call Now() == t unless the schedule drained
// earlier, in which case the clock stays at the last event time.
func (e *Engine) RunUntil(t Time) {
	start := time.Now()
	for {
		next := e.peek()
		if next == nil || next.time > t {
			break
		}
		e.Step()
	}
	if e.now < t && t != Forever {
		e.now = t
	}
	e.wall += time.Since(start)
}

// Run executes events until the schedule drains.
func (e *Engine) Run() {
	start := time.Now()
	for e.Step() {
	}
	e.wall += time.Since(start)
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.events)
	}
	return nil
}
