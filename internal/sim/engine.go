// Package sim provides a deterministic discrete-event simulation kernel.
//
// The engine maintains a virtual clock and an event heap ordered by
// (time, sequence). All callbacks run on the caller's goroutine inside
// Run/Step, so simulations built on the engine need no locking and are
// bit-for-bit reproducible for a given seed and event schedule.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.At or Engine.After.
type Event struct {
	time      Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 when not in a heap, laneIndex when in a shard lane
	cancelled bool
	fired     bool
	sh        *shard // owning shard when scheduled on a ShardedEngine, else nil
}

// laneIndex marks an event queued in a shard's monotone lane rather than
// its heap (see ShardedEngine).
const laneIndex = -2

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel removed the event before it fired.
// Cancelling after the event ran is a no-op, so Cancelled and Fired are
// mutually exclusive.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	nRun    uint64 // events executed
	cancels uint64 // events cancelled before firing
	peak    int    // deepest the heap ever got
	wall    time.Duration
}

// Stats is the engine's self-telemetry: how much work the kernel did and
// how fast it did it in wall-clock terms. Virtual-time behaviour is
// unaffected by collecting it; only WallSeconds and EventsPerSec vary
// between otherwise identical runs (they measure the host, not the
// model).
type Stats struct {
	// Executed counts events that fired.
	Executed uint64 `json:"events"`
	// Scheduled counts events ever scheduled (fired, pending or
	// cancelled).
	Scheduled uint64 `json:"scheduled"`
	// Cancellations counts events cancelled before firing.
	Cancellations uint64 `json:"cancellations"`
	// PeakHeapDepth is the largest number of events simultaneously
	// queued.
	PeakHeapDepth int `json:"peak_heap_depth"`
	// WallSeconds is real time spent inside Run/RunUntil.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is Executed/WallSeconds (0 before any timed run).
	EventsPerSec float64 `json:"events_per_sec"`
	// Shards is the shard count when the kernel is a ShardedEngine;
	// omitted (0) for the sequential Engine.
	Shards int `json:"shards,omitempty"`
}

// Stats returns the engine's self-telemetry so far.
func (e *Engine) Stats() Stats {
	s := Stats{
		Executed:      e.nRun,
		Scheduled:     e.seq,
		Cancellations: e.cancels,
		PeakHeapDepth: e.peak,
		WallSeconds:   e.wall.Seconds(),
	}
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(s.Executed) / s.WallSeconds
	}
	return s
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (uncancelled) events. Cancel
// removes events from the heap eagerly, so this is just the heap size.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.events, ev)
	if len(e.events) > e.peak {
		e.peak = len(e.events)
	}
	return ev
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the schedule. Cancelling an already-fired or
// already-cancelled event is a true no-op: it neither marks the event
// cancelled nor counts toward Stats.Cancellations.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.fired {
		return
	}
	ev.cancelled = true
	e.cancels++
	heap.Remove(&e.events, ev.index)
}

// Step executes the single earliest event. It reports false when no
// events remain. Cancelled events are removed eagerly by Cancel, so
// whatever is at the heap top is live.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	e.fire(heap.Pop(&e.events).(*Event))
	return true
}

func (e *Engine) fire(ev *Event) {
	e.now = ev.time
	ev.fired = true
	e.nRun++
	ev.fn()
}

// RunUntil executes events in order until the clock would pass t or the
// schedule drains. After the call Now() == t unless the schedule drained
// earlier, in which case the clock stays at the last event time.
func (e *Engine) RunUntil(t Time) {
	start := time.Now()
	for len(e.events) > 0 && e.events[0].time <= t {
		e.fire(heap.Pop(&e.events).(*Event))
	}
	if e.now < t && t != Forever {
		e.now = t
	}
	e.wall += time.Since(start)
}

// Run executes events until the schedule drains.
func (e *Engine) Run() {
	start := time.Now()
	for e.Step() {
	}
	e.wall += time.Since(start)
}
