package sim

// Clock is the scheduling surface a simulation component needs: read the
// virtual time and (un)schedule callbacks. Both Engine and the per-shard
// clocks of ShardedEngine implement it, so stations and other model
// pieces are agnostic to which kernel drives them.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
	// At schedules fn at absolute time t; scheduling in the past panics.
	At(t Time, fn func()) *Event
	// After schedules fn d seconds from now; negative delays panic.
	After(d Time, fn func()) *Event
	// Cancel removes ev from the schedule; a no-op on fired or
	// already-cancelled events.
	Cancel(ev *Event)
}

// Kernel is the full driver surface of a simulation kernel: a Clock plus
// the run loop and self-telemetry. Engine and ShardedEngine implement it.
type Kernel interface {
	Clock
	// Step executes the single earliest event, reporting false when the
	// schedule is drained.
	Step() bool
	// RunUntil executes events in global (time, seq) order until the
	// clock would pass t or the schedule drains.
	RunUntil(t Time)
	// Run executes events until the schedule drains.
	Run()
	// Pending returns the number of scheduled, uncancelled events.
	Pending() int
	// Executed returns the number of events executed so far.
	Executed() uint64
	// Stats returns the kernel's self-telemetry.
	Stats() Stats
}

var (
	_ Kernel = (*Engine)(nil)
	_ Kernel = (*ShardedEngine)(nil)
	_ Clock  = (*ShardClock)(nil)
)
