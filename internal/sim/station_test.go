package sim

import (
	"testing"
)

func TestStationServesFIFO(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		st.Enqueue(&Job{
			Service: func() Time { return 2 },
			Done:    func() { done = append(done, i) },
		})
	}
	e.Run()
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Fatalf("completion order = %v", done)
	}
	if e.Now() != 6 {
		t.Errorf("three 2s jobs finished at %v, want 6", e.Now())
	}
	if st.Served() != 3 {
		t.Errorf("Served = %d, want 3", st.Served())
	}
}

func TestStationBusyTime(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	e.At(0, func() {
		st.Enqueue(&Job{Service: func() Time { return 3 }})
	})
	e.At(10, func() {
		st.Enqueue(&Job{Service: func() Time { return 2 }})
	})
	e.Run()
	if got := st.BusyTime(); got != 5 {
		t.Errorf("BusyTime = %v, want 5", got)
	}
	if u := st.Utilization(); u != 5.0/12.0 {
		t.Errorf("Utilization = %v, want %v", u, 5.0/12.0)
	}
}

func TestStationBusyTimeMidService(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	st.Enqueue(&Job{Service: func() Time { return 10 }})
	var mid Time
	e.At(4, func() { mid = st.BusyTime() })
	e.Run()
	if mid != 4 {
		t.Errorf("BusyTime mid-service = %v, want 4", mid)
	}
}

func TestStationPauseResume(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	st.Pause()
	finished := Time(-1)
	st.Enqueue(&Job{
		Service: func() Time { return 1 },
		Done:    func() { finished = e.Now() },
	})
	e.At(5, func() { st.Resume() })
	e.Run()
	if finished != 6 {
		t.Errorf("job finished at %v, want 6 (paused until 5)", finished)
	}
}

func TestStationPauseDoesNotAbortInService(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	var done1, done2 Time
	st.Enqueue(&Job{Service: func() Time { return 4 }, Done: func() { done1 = e.Now() }})
	st.Enqueue(&Job{Service: func() Time { return 4 }, Done: func() { done2 = e.Now() }})
	e.At(1, func() { st.Pause() })
	e.At(10, func() { st.Resume() })
	e.Run()
	if done1 != 4 {
		t.Errorf("in-service job finished at %v, want 4", done1)
	}
	if done2 != 14 {
		t.Errorf("queued job finished at %v, want 14", done2)
	}
}

func TestStationQueueLen(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	for i := 0; i < 5; i++ {
		st.Enqueue(&Job{Service: func() Time { return 1 }})
	}
	if st.QueueLen() != 4 { // one in service
		t.Errorf("QueueLen = %d, want 4", st.QueueLen())
	}
	if !st.Busy() {
		t.Error("station should be busy")
	}
	e.Run()
	if st.QueueLen() != 0 || st.Busy() {
		t.Error("station should be drained and idle")
	}
}

func TestStationNegativeServiceClamped(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, "s")
	ok := false
	st.Enqueue(&Job{Service: func() Time { return -5 }, Done: func() { ok = true }})
	e.Run()
	if !ok {
		t.Error("job with negative service time never completed")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v for zero-length job", e.Now())
	}
}

// Tandem chain: two stations, second fed by first's Done. Verifies
// pipelining overlap: 3 jobs, each stage 2s -> makespan 2*(2)+2*(3-1)=8.
func TestStationTandemPipelineOverlap(t *testing.T) {
	e := NewEngine()
	s1 := NewStation(e, "s1")
	s2 := NewStation(e, "s2")
	var finish Time
	for i := 0; i < 3; i++ {
		j2 := &Job{Service: func() Time { return 2 }, Done: func() { finish = e.Now() }}
		s1.Enqueue(&Job{
			Service: func() Time { return 2 },
			Done:    func() { s2.Enqueue(j2) },
		})
	}
	e.Run()
	if finish != 8 {
		t.Errorf("pipeline makespan = %v, want 8 (overlapped)", finish)
	}
}
