package sim

// BatchStation is a single-server station that coalesces queued jobs
// into batches: service starts when the batch is full or when the
// oldest job has waited out the batching window. DNN inference serves
// batches far more efficiently than single requests, so batching-aware
// serving systems (e.g. INFless) trade a small queueing delay for
// throughput.
type BatchStation struct {
	eng      Clock
	name     string
	maxBatch int
	window   Time
	// service returns the batch service time for n jobs.
	service func(n int) Time

	// OnStart and OnEnd, when set, run at batch start/completion (e.g.
	// to mark a MIG slice active).
	OnStart func(n int)
	OnEnd   func(n int)

	queue  []func(n int)
	busy   bool
	paused bool
	timer  *Event

	served  uint64
	batches uint64
	busyT   Time
}

// NewBatchStation returns an idle batch station. maxBatch must be >= 1;
// window <= 0 serves whatever is queued as soon as the server idles.
func NewBatchStation(eng Clock, name string, maxBatch int, window Time, service func(n int) Time) *BatchStation {
	if maxBatch < 1 {
		panic("sim: maxBatch must be >= 1")
	}
	if service == nil {
		panic("sim: nil batch service function")
	}
	return &BatchStation{
		eng: eng, name: name, maxBatch: maxBatch, window: window, service: service,
	}
}

// Name returns the diagnostic name.
func (s *BatchStation) Name() string { return s.name }

// QueueLen returns jobs waiting for a batch.
func (s *BatchStation) QueueLen() int { return len(s.queue) }

// Busy reports whether a batch is in service.
func (s *BatchStation) Busy() bool { return s.busy }

// Served returns jobs completed.
func (s *BatchStation) Served() uint64 { return s.served }

// Batches returns batches completed.
func (s *BatchStation) Batches() uint64 { return s.batches }

// MeanBatch returns the average batch size so far.
func (s *BatchStation) MeanBatch() float64 {
	if s.batches == 0 {
		return 0
	}
	return float64(s.served) / float64(s.batches)
}

// BusyTime returns cumulative service time.
func (s *BatchStation) BusyTime() Time { return s.busyT }

// Pause stops new batches from starting.
func (s *BatchStation) Pause() { s.paused = true }

// Resume lets batches start again.
func (s *BatchStation) Resume() {
	if !s.paused {
		return
	}
	s.paused = false
	s.maybeStart(false)
}

// Enqueue adds a job; done runs at batch completion with the batch size.
func (s *BatchStation) Enqueue(done func(n int)) {
	s.queue = append(s.queue, done)
	s.maybeStart(false)
}

func (s *BatchStation) maybeStart(windowExpired bool) {
	if s.busy || s.paused || len(s.queue) == 0 {
		return
	}
	if len(s.queue) < s.maxBatch && s.window > 0 && !windowExpired {
		// Wait for more jobs, bounded by the batching window from now
		// (armed once per forming batch).
		if s.timer == nil {
			s.timer = s.eng.After(s.window, func() {
				s.timer = nil
				s.maybeStart(true)
			})
		}
		return
	}
	if s.timer != nil {
		s.eng.Cancel(s.timer)
		s.timer = nil
	}
	n := len(s.queue)
	if n > s.maxBatch {
		n = s.maxBatch
	}
	batch := s.queue[:n]
	s.queue = append([]func(n int){}, s.queue[n:]...)
	s.busy = true
	if s.OnStart != nil {
		s.OnStart(n)
	}
	d := s.service(n)
	if d < 0 {
		d = 0
	}
	s.eng.After(d, func() {
		s.busy = false
		s.busyT += d
		s.batches++
		s.served += uint64(n)
		if s.OnEnd != nil {
			s.OnEnd(n)
		}
		for _, done := range batch {
			done(n)
		}
		s.maybeStart(false)
	})
}
