package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev *Event
	e.At(1, func() { e.Cancel(ev) })
	ev = e.At(2, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled by earlier event still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, tm := range []Time{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { fired = append(fired, tm) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Errorf("fired %d events total, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v after RunUntil(10), want 10", e.Now())
	}
}

func TestEngineRunUntilAllCancelled(t *testing.T) {
	e := NewEngine()
	ev1 := e.At(1, func() {})
	ev2 := e.At(2, func() {})
	e.Cancel(ev1)
	e.Cancel(ev2)
	e.RunUntil(5) // must not panic
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEnginePendingExecuted(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	ev := e.At(2, func() {})
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", e.Executed())
	}
}

// Property: for any set of event times, execution order is sorted.
func TestEngineSortedExecutionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			tm := Time(r)
			e.At(tm, func() { fired = append(fired, tm) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a1 := NewRNG(42, "a")
	b := NewRNG(42, "b")
	_ = b.Float64() // consuming from b must not affect a
	a2 := NewRNG(42, "a")
	for i := 0; i < 100; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatal("same-name streams diverged")
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	g1 := NewRNG(7, "x")
	g2 := NewRNG(7, "x")
	for i := 0; i < 1000; i++ {
		if g1.Intn(100) != g2.Intn(100) {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 25, 100} {
		g := NewRNG(1, "poisson")
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestRNGPoissonZeroAndNegative(t *testing.T) {
	g := NewRNG(1, "p0")
	if g.Poisson(0) != 0 || g.Poisson(-3) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(9, "exp")
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(2.5)
	}
	got := sum / float64(n)
	if math.Abs(got-2.5) > 0.1 {
		t.Errorf("Exp(2.5) sample mean = %v", got)
	}
}

// TestEngineStats: the engine's self-telemetry counts executed and
// scheduled events, cancellations, and the deepest heap seen, and
// reports a positive wall-clock processing rate after a run.
func TestEngineStats(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 5; i++ {
		e.At(float64(i), func() {})
	}
	ev := e.At(10, func() { t.Error("cancelled event ran") })
	e.Cancel(ev)
	e.Run()
	s := e.Stats()
	if s.Executed != 5 {
		t.Errorf("Executed = %d, want 5", s.Executed)
	}
	if s.Scheduled != 6 {
		t.Errorf("Scheduled = %d, want 6", s.Scheduled)
	}
	if s.Cancellations != 1 {
		t.Errorf("Cancellations = %d, want 1", s.Cancellations)
	}
	if s.PeakHeapDepth != 6 {
		t.Errorf("PeakHeapDepth = %d, want 6", s.PeakHeapDepth)
	}
	if s.WallSeconds <= 0 || s.EventsPerSec <= 0 {
		t.Errorf("wall %v rate %v, want both positive", s.WallSeconds, s.EventsPerSec)
	}
}

// TestEngineStatsZero: a fresh engine reports zeros without dividing by
// a zero wall clock.
func TestEngineStatsZero(t *testing.T) {
	s := NewEngine().Stats()
	if s != (Stats{}) {
		t.Errorf("fresh engine stats = %+v, want zero", s)
	}
}
