// Package vgpu is a virtual GPU executor: it costs DNN models described
// as kernel sequences on MIG slices with a roofline model (compute
// ceiling, partitioned memory bandwidth, occupancy limits, launch
// overhead). It is the measurement substrate behind BUILDDAG-mode
// profiling (§5.2.1): given a model a developer registers, the profiler
// "runs" it on every slice profile and fills the FFS DAG's per-slice
// execution map — the role real profiling runs play on physical MIGs.
//
// The catalog in internal/dnn carries pre-calibrated profiles for the
// paper's applications; vgpu is the path for custom models (see
// examples/custommodel).
package vgpu

import (
	"fmt"
	"math"

	"fluidfaas/internal/mig"
)

// A100-80GB roofline constants. Sustained (achieved) rates, not
// datasheet peaks: real inference kernels reach roughly half of the
// tensor-core peak and three quarters of HBM bandwidth.
const (
	// PeakTFLOPs is the whole-GPU sustained half-precision throughput.
	PeakTFLOPs = 156.0
	// PeakBWGBps is the whole-GPU sustained HBM bandwidth.
	PeakBWGBps = 1555.0
	// LaunchOverhead is the per-kernel dispatch cost in seconds.
	LaunchOverhead = 8e-6
)

// Kernel is one GPU kernel's resource footprint.
type Kernel struct {
	Name string
	// GFLOPs of arithmetic work.
	GFLOPs float64
	// MBytes of DRAM traffic.
	MBytes float64
	// Parallelism is how many GPCs the kernel can saturate (0 < p <= 7).
	// Small kernels bound by occupancy run no faster on bigger slices —
	// the source of MIG's sublinear scaling.
	Parallelism float64
}

// bandwidthShare returns the fraction of HBM bandwidth a slice owns:
// MIG partitions bandwidth with the memory slices (1g gets 1/8, 3g and
// 4g get 4/8, the whole GPU 8/8).
func bandwidthShare(t mig.SliceType) float64 {
	return float64(t.MemSlots()) / 8.0
}

// computeShare returns the fraction of peak compute available to a
// kernel on a slice: the slice's GPCs capped by the kernel's
// parallelism.
func computeShare(k Kernel, t mig.SliceType) float64 {
	g := float64(t.GPCs())
	if k.Parallelism > 0 && k.Parallelism < g {
		g = k.Parallelism
	}
	return g / 7.0
}

// KernelTime returns the roofline execution time of one kernel on a
// slice: the slower of its compute and memory phases, plus launch
// overhead.
func KernelTime(k Kernel, t mig.SliceType) float64 {
	if k.GFLOPs < 0 || k.MBytes < 0 {
		panic(fmt.Sprintf("vgpu: negative kernel footprint %+v", k))
	}
	compute := (k.GFLOPs / 1e3) / (PeakTFLOPs * computeShare(k, t))
	memory := (k.MBytes / 1e3) / (PeakBWGBps * bandwidthShare(t))
	et := compute
	if memory > et {
		et = memory
	}
	return et + LaunchOverhead
}

// Model is a DNN model described by its kernel sequence and memory
// footprint.
type Model struct {
	Name string
	// Kernels execute sequentially per inference.
	Kernels []Kernel
	// ParamsGB is the weight footprint.
	ParamsGB float64
	// ActivationGB is the per-request activation footprint.
	ActivationGB float64
	// OutMB is the output tensor size (for pipeline transfer costing).
	OutMB float64
}

// MemGB returns the model's resident footprint.
func (m Model) MemGB() float64 { return m.ParamsGB + m.ActivationGB }

// ExecOn returns the model's inference time on a slice, and whether the
// model fits its memory.
func (m Model) ExecOn(t mig.SliceType) (float64, bool) {
	if m.MemGB() > float64(t.MemGB()) {
		return 0, false
	}
	total := 0.0
	for _, k := range m.Kernels {
		total += KernelTime(k, t)
	}
	return total, true
}

// Profile measures the model on every slice profile — the BUILDDAG
// profiling step. Slices the model does not fit are omitted.
func (m Model) Profile() map[mig.SliceType]float64 {
	out := make(map[mig.SliceType]float64, len(mig.SliceTypes))
	for _, t := range mig.SliceTypes {
		if et, ok := m.ExecOn(t); ok {
			out[t] = et
		}
	}
	return out
}

// EffectiveAlpha estimates the model's GPC-scaling exponent between two
// slice profiles: t(small) = t(big)·(gBig/gSmall)^alpha. It quantifies
// how much the model benefits from bigger slices — the sublinearity
// FluidFaaS exploits (alpha << 1 means fragments are nearly free
// throughput).
func (m Model) EffectiveAlpha(small, big mig.SliceType) (float64, bool) {
	ts, okS := m.ExecOn(small)
	tb, okB := m.ExecOn(big)
	if !okS || !okB || ts <= 0 || tb <= 0 || small.GPCs() >= big.GPCs() {
		return 0, false
	}
	ratio := ts / tb
	gr := float64(big.GPCs()) / float64(small.GPCs())
	return logRatio(ratio) / logRatio(gr), true
}

func logRatio(x float64) float64 { return math.Log(x) }

// ConvLayer builds the kernel of a convolution layer: output elements ×
// kernel window MACs, with traffic for inputs, weights and outputs.
// Batch scales both.
func ConvLayer(name string, batch, outH, outW, inC, outC, kH, kW int) Kernel {
	outElems := float64(batch * outH * outW * outC)
	macs := outElems * float64(inC*kH*kW)
	// Bytes: read input + weights, write output (fp16).
	bytes := 2 * (float64(batch*outH*outW*inC) + float64(inC*outC*kH*kW) + outElems)
	// Parallelism grows with output size; saturates the GPU around a
	// million output elements.
	par := 7.0 * outElems / (outElems + 1e6)
	if par < 0.5 {
		par = 0.5
	}
	return Kernel{
		Name:        name,
		GFLOPs:      2 * macs / 1e9,
		MBytes:      bytes / 1e6,
		Parallelism: par,
	}
}

// MatMulLayer builds the kernel of a dense layer (batch×in times
// in×out).
func MatMulLayer(name string, batch, in, out int) Kernel {
	macs := float64(batch) * float64(in) * float64(out)
	bytes := 2 * (float64(batch*in) + float64(in*out) + float64(batch*out))
	rows := float64(batch * out)
	par := 7.0 * rows / (rows + 5e5)
	if par < 0.5 {
		par = 0.5
	}
	return Kernel{
		Name:        name,
		GFLOPs:      2 * macs / 1e9,
		MBytes:      bytes / 1e6,
		Parallelism: par,
	}
}
