package vgpu

import (
	"math"
	"testing"
	"testing/quick"

	"fluidfaas/internal/mig"
)

func TestKernelTimeRoofline(t *testing.T) {
	// Pure compute kernel saturating the GPU: time = work/peak.
	k := Kernel{GFLOPs: PeakTFLOPs * 1e3, MBytes: 0, Parallelism: 7}
	got := KernelTime(k, mig.Slice7g)
	if math.Abs(got-(1+LaunchOverhead)) > 1e-9 {
		t.Errorf("compute-bound time = %v, want ~1s", got)
	}
	// Pure memory kernel: time = bytes/bandwidth, halved slice -> 1/8
	// bandwidth on 1g.
	m := Kernel{GFLOPs: 0, MBytes: PeakBWGBps * 1e3, Parallelism: 7}
	whole := KernelTime(m, mig.Slice7g)
	oneG := KernelTime(m, mig.Slice1g)
	if math.Abs(whole-(1+LaunchOverhead)) > 1e-9 {
		t.Errorf("memory-bound time = %v, want ~1s", whole)
	}
	if ratio := oneG / whole; math.Abs(ratio-8) > 0.01 {
		t.Errorf("1g memory slowdown = %.2fx, want 8x (1/8 bandwidth)", ratio)
	}
}

func TestOccupancyLimitsScaling(t *testing.T) {
	// A kernel that can only use 1 GPC runs equally fast on every slice.
	k := Kernel{GFLOPs: 100, MBytes: 0, Parallelism: 1}
	t1 := KernelTime(k, mig.Slice1g)
	t7 := KernelTime(k, mig.Slice7g)
	if math.Abs(t1-t7) > 1e-12 {
		t.Errorf("occupancy-limited kernel: t(1g)=%v != t(7g)=%v", t1, t7)
	}
}

func TestKernelTimeMonotone(t *testing.T) {
	k := Kernel{GFLOPs: 500, MBytes: 400, Parallelism: 7}
	prev := math.Inf(1)
	for _, st := range mig.SliceTypes {
		cur := KernelTime(k, st)
		if cur > prev+1e-12 {
			t.Errorf("time increased with slice size at %v: %v > %v", st, cur, prev)
		}
		prev = cur
	}
}

func TestNegativeKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative footprint did not panic")
		}
	}()
	KernelTime(Kernel{GFLOPs: -1}, mig.Slice1g)
}

func resnetish(batch int) Model {
	var ks []Kernel
	ks = append(ks, ConvLayer("stem", batch, 112, 112, 3, 64, 7, 7))
	for i := 0; i < 8; i++ {
		ks = append(ks, ConvLayer("block", batch, 28, 28, 256, 256, 3, 3))
	}
	ks = append(ks, MatMulLayer("fc", batch, 2048, 1000))
	return Model{
		Name: "resnetish", Kernels: ks,
		ParamsGB: 0.2, ActivationGB: 0.2 * float64(batch), OutMB: 0.1,
	}
}

func TestModelProfileAndOOM(t *testing.T) {
	m := resnetish(4)
	p := m.Profile()
	if len(p) != len(mig.SliceTypes) {
		t.Fatalf("profile entries = %d, want all slices (%.1f GB fits everywhere)",
			len(p), m.MemGB())
	}
	if p[mig.Slice1g] <= p[mig.Slice7g] {
		t.Error("1g not slower than 7g")
	}
	// A model bigger than 10 GB must drop the 1g entry.
	big := m
	big.ParamsGB = 12
	if _, ok := big.Profile()[mig.Slice1g]; ok {
		t.Error("12 GB model fits 1g")
	}
	if _, ok := big.ExecOn(mig.Slice2g); !ok {
		t.Error("12.x GB model should fit 2g")
	}
}

func TestEffectiveAlphaSublinear(t *testing.T) {
	// Small batch: occupancy-limited kernels make scaling sublinear.
	small := resnetish(1)
	alpha, ok := small.EffectiveAlpha(mig.Slice1g, mig.Slice7g)
	if !ok {
		t.Fatal("alpha unavailable")
	}
	if alpha <= 0 || alpha >= 1 {
		t.Errorf("small-batch alpha = %.2f, want in (0,1)", alpha)
	}
	// Bigger batch parallelises better: alpha grows.
	large := resnetish(32)
	alphaL, ok := large.EffectiveAlpha(mig.Slice1g, mig.Slice7g)
	if !ok {
		t.Fatal("alpha unavailable")
	}
	if alphaL <= alpha {
		t.Errorf("alpha should grow with batch: %.2f (b=1) vs %.2f (b=32)", alpha, alphaL)
	}
	// Degenerate queries.
	if _, ok := small.EffectiveAlpha(mig.Slice7g, mig.Slice1g); ok {
		t.Error("reversed slices accepted")
	}
}

func TestLayerBuilders(t *testing.T) {
	c := ConvLayer("c", 1, 56, 56, 64, 64, 3, 3)
	if c.GFLOPs <= 0 || c.MBytes <= 0 {
		t.Errorf("conv kernel degenerate: %+v", c)
	}
	// FLOPs = 2 * outElems * inC*kH*kW.
	wantGFLOPs := 2 * float64(56*56*64) * float64(64*3*3) / 1e9
	if math.Abs(c.GFLOPs-wantGFLOPs) > 1e-9 {
		t.Errorf("conv GFLOPs = %v, want %v", c.GFLOPs, wantGFLOPs)
	}
	m := MatMulLayer("m", 8, 1024, 1024)
	wantG := 2 * 8.0 * 1024 * 1024 / 1e9 // 2*batch*in*out FLOPs
	if math.Abs(m.GFLOPs-wantG) > 1e-9 {
		t.Errorf("matmul GFLOPs = %v, want %v", m.GFLOPs, wantG)
	}
	if c.Parallelism < 0.5 || c.Parallelism > 7 || m.Parallelism < 0.5 || m.Parallelism > 7 {
		t.Error("parallelism outside [0.5, 7]")
	}
}

// Property: model execution time is non-increasing in slice size and
// positive, for random kernel mixes.
func TestModelMonotoneProperty(t *testing.T) {
	f := func(gf, mb, par uint16) bool {
		k := Kernel{
			GFLOPs:      float64(gf%5000) + 1,
			MBytes:      float64(mb % 8000),
			Parallelism: float64(par%70)/10 + 0.5,
		}
		m := Model{Name: "p", Kernels: []Kernel{k}, ParamsGB: 1}
		prev := math.Inf(1)
		for _, st := range mig.SliceTypes {
			cur, ok := m.ExecOn(st)
			if !ok || cur <= 0 || cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
