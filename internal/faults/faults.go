// Package faults generates deterministic, seeded fault schedules for
// the simulated cluster: MIG-slice ECC faults, whole-GPU failures, and
// node crash/recover events. The platform injects these on its event
// engine so every run is bit-for-bit reproducible — the same seed and
// spec always yield the same faults, and a zero-rate spec yields no
// events at all (leaving fault-free runs untouched).
//
// Schedules come from two sources: Poisson processes parameterised by
// per-class rates (Spec rates + Build), or an explicit Script for
// targeted studies and regression tests. Each fault carries its own
// repair time drawn from the class's mean time to repair.
package faults

import (
	"fmt"
	"sort"

	"fluidfaas/internal/sim"
)

// Kind classifies a fault event by the hardware layer it takes down.
type Kind int

// The three fault classes, smallest blast radius first.
const (
	// SliceFault takes down one MIG slice (uncorrectable ECC error in
	// the slice's memory partition): the strong-isolation case — the
	// GPU's other slices keep serving.
	SliceFault Kind = iota
	// GPUFault takes down a whole GPU and every slice on it (driver
	// wedge, XID error, thermal shutdown).
	GPUFault
	// NodeCrash takes down an invoker node: all its GPUs, plus the host
	// memory holding warm model copies.
	NodeCrash
	// SliceDegraded is a gray failure: the slice keeps serving, but a
	// severity multiplier (thermal throttling, ECC retirement, PCIe
	// link degradation) stretches its exec, load and transfer times
	// until the repair. No health check trips; only observed-vs-declared
	// timing reveals it.
	SliceDegraded
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case SliceFault:
		return "slice-fault"
	case GPUFault:
		return "gpu-fault"
	case NodeCrash:
		return "node-crash"
	case SliceDegraded:
		return "slice-degraded"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault and its repair.
type Event struct {
	// Time is when the fault strikes (virtual seconds).
	Time float64
	// Kind selects the hardware layer.
	Kind Kind
	// Node is the victim node index. Always set.
	Node int
	// GPU is the victim GPU index within the node (SliceFault and
	// GPUFault; -1 for NodeCrash).
	GPU int
	// Slice is the victim slice index within the GPU (SliceFault only;
	// -1 otherwise).
	Slice int
	// Recovery is the absolute repair time. Recovery past the run
	// horizon means the hardware stays down for the rest of the run.
	Recovery float64
	// Severity is the slowdown multiplier of a SliceDegraded event
	// (>= 1: exec, load and transfer times on the slice stretch by this
	// factor until Recovery). Zero for fail-stop kinds.
	Severity float64
}

// String renders the event for logs.
func (e Event) String() string {
	target := fmt.Sprintf("node%d", e.Node)
	switch e.Kind {
	case GPUFault:
		target = fmt.Sprintf("node%d/gpu%d", e.Node, e.GPU)
	case SliceFault, SliceDegraded:
		target = fmt.Sprintf("node%d/gpu%d/slice%d", e.Node, e.GPU, e.Slice)
	}
	if e.Kind == SliceDegraded {
		return fmt.Sprintf("%8.2fs %-14s %-22s %.1fx repaired %.2fs",
			e.Time, e.Kind, target, e.Severity, e.Recovery)
	}
	return fmt.Sprintf("%8.2fs %-11s %-22s repaired %.2fs", e.Time, e.Kind, target, e.Recovery)
}

// Spec parameterises fault generation. The zero value disables faults
// entirely (Build returns an empty schedule).
type Spec struct {
	// SliceRate, GPURate and NodeRate are cluster-wide fault rates in
	// faults per second for each class. Zero disables the class.
	SliceRate float64
	GPURate   float64
	NodeRate  float64

	// SliceMTTR, GPUMTTR and NodeMTTR are the mean times to repair
	// (seconds) for each class; repair times are exponential draws.
	// Defaults: 30 s (slice reset), 90 s (GPU reset), 180 s (node
	// reboot).
	SliceMTTR float64
	GPUMTTR   float64
	NodeMTTR  float64

	// DegradedRate is the cluster-wide gray-failure rate (SliceDegraded
	// events per second). Zero disables the class.
	DegradedRate float64
	// DegradedMTTR is the mean duration of a degradation episode
	// (default 60 s — thermal throttling clears on its own; ECC
	// retirement waits for a drain).
	DegradedMTTR float64
	// DegradedMinSeverity and DegradedMaxSeverity bound the uniform
	// severity draw (defaults 1.5x and 8x, the paper-reported range of
	// silent slowdowns).
	DegradedMinSeverity float64
	DegradedMaxSeverity float64

	// Script, when non-empty, is used verbatim (sorted by time) instead
	// of generating from the rates — for targeted studies and tests.
	Script []Event
}

func (s Spec) withDefaults() Spec {
	if s.SliceMTTR <= 0 {
		s.SliceMTTR = 30
	}
	if s.GPUMTTR <= 0 {
		s.GPUMTTR = 90
	}
	if s.NodeMTTR <= 0 {
		s.NodeMTTR = 180
	}
	if s.DegradedMTTR <= 0 {
		s.DegradedMTTR = 60
	}
	if s.DegradedMinSeverity <= 1 {
		s.DegradedMinSeverity = 1.5
	}
	if s.DegradedMaxSeverity < s.DegradedMinSeverity {
		s.DegradedMaxSeverity = 8
	}
	return s
}

// Enabled reports whether the spec can produce any events.
func (s Spec) Enabled() bool {
	return len(s.Script) > 0 || s.SliceRate > 0 || s.GPURate > 0 ||
		s.NodeRate > 0 || s.DegradedRate > 0
}

// NodeTopo describes one node's GPUs for victim selection: the slice
// count of each GPU.
type NodeTopo struct {
	Slices []int
}

// Topology describes the cluster shape faults are drawn over.
type Topology struct {
	Nodes []NodeTopo
}

// gpuRef is a flattened (node, gpu) pair for uniform victim draws.
type gpuRef struct {
	node, gpu, slices int
}

func (t Topology) gpus() []gpuRef {
	var out []gpuRef
	for ni, n := range t.Nodes {
		for gi, sc := range n.Slices {
			out = append(out, gpuRef{node: ni, gpu: gi, slices: sc})
		}
	}
	return out
}

// Schedule is a time-ordered fault plan.
type Schedule struct {
	Events []Event
}

// Len returns the number of scheduled faults.
func (s Schedule) Len() int { return len(s.Events) }

// Build derives the fault schedule for one run. Each fault class uses
// an independent RNG stream named after the class, so enabling one
// class never perturbs the draws of another. Faults are generated as
// Poisson processes over [0, horizon); events are returned sorted by
// time (ties broken by class, then generation order).
func Build(spec Spec, seed int64, horizon float64, topo Topology) Schedule {
	spec = spec.withDefaults()
	if len(spec.Script) > 0 {
		if err := ValidateScript(spec.Script, topo); err != nil {
			panic("faults: " + err.Error())
		}
		evs := append([]Event(nil), spec.Script...)
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
		return Schedule{Events: evs}
	}
	if horizon <= 0 || len(topo.Nodes) == 0 {
		return Schedule{}
	}
	var evs []Event

	if spec.SliceRate > 0 {
		rng := sim.NewRNG(seed, "faults/slice")
		gpus := topo.gpus()
		for t := rng.Exp(1 / spec.SliceRate); t < horizon; t += rng.Exp(1 / spec.SliceRate) {
			g := gpus[rng.Intn(len(gpus))]
			if g.slices == 0 {
				continue
			}
			evs = append(evs, Event{
				Time: t, Kind: SliceFault,
				Node: g.node, GPU: g.gpu, Slice: rng.Intn(g.slices),
				Recovery: t + rng.Exp(spec.SliceMTTR),
			})
		}
	}
	if spec.GPURate > 0 {
		rng := sim.NewRNG(seed, "faults/gpu")
		gpus := topo.gpus()
		for t := rng.Exp(1 / spec.GPURate); t < horizon; t += rng.Exp(1 / spec.GPURate) {
			g := gpus[rng.Intn(len(gpus))]
			evs = append(evs, Event{
				Time: t, Kind: GPUFault,
				Node: g.node, GPU: g.gpu, Slice: -1,
				Recovery: t + rng.Exp(spec.GPUMTTR),
			})
		}
	}
	if spec.NodeRate > 0 {
		rng := sim.NewRNG(seed, "faults/node")
		for t := rng.Exp(1 / spec.NodeRate); t < horizon; t += rng.Exp(1 / spec.NodeRate) {
			evs = append(evs, Event{
				Time: t, Kind: NodeCrash,
				Node: rng.Intn(len(topo.Nodes)), GPU: -1, Slice: -1,
				Recovery: t + rng.Exp(spec.NodeMTTR),
			})
		}
	}
	if spec.DegradedRate > 0 {
		rng := sim.NewRNG(seed, "faults/degraded")
		gpus := topo.gpus()
		for t := rng.Exp(1 / spec.DegradedRate); t < horizon; t += rng.Exp(1 / spec.DegradedRate) {
			g := gpus[rng.Intn(len(gpus))]
			if g.slices == 0 {
				continue
			}
			sev := spec.DegradedMinSeverity +
				rng.Float64()*(spec.DegradedMaxSeverity-spec.DegradedMinSeverity)
			evs = append(evs, Event{
				Time: t, Kind: SliceDegraded,
				Node: g.node, GPU: g.gpu, Slice: rng.Intn(g.slices),
				Recovery: t + rng.Exp(spec.DegradedMTTR),
				Severity: sev,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return Schedule{Events: evs}
}

// ValidateScript checks an explicit Script against the cluster shape:
// every event must target an in-range victim for its kind, repairs must
// follow their faults, SliceDegraded events must carry a severity >= 1,
// and two events of the same kind on the same victim must not have
// overlapping [Time, Recovery) windows — an overlapping pair would make
// the first repair silently revive hardware the second fault still
// holds down. Build panics on an invalid script; callers wanting an
// error instead validate up front.
func ValidateScript(script []Event, topo Topology) error {
	for i, e := range script {
		if e.Node < 0 || e.Node >= len(topo.Nodes) {
			return fmt.Errorf("script[%d] %s: node %d out of range [0,%d)",
				i, e.Kind, e.Node, len(topo.Nodes))
		}
		gpus := topo.Nodes[e.Node].Slices
		switch e.Kind {
		case SliceFault, SliceDegraded:
			if e.GPU < 0 || e.GPU >= len(gpus) {
				return fmt.Errorf("script[%d] %s: gpu %d out of range [0,%d) on node %d",
					i, e.Kind, e.GPU, len(gpus), e.Node)
			}
			if e.Slice < 0 || e.Slice >= gpus[e.GPU] {
				return fmt.Errorf("script[%d] %s: slice %d out of range [0,%d) on node %d gpu %d",
					i, e.Kind, e.Slice, gpus[e.GPU], e.Node, e.GPU)
			}
			if e.Kind == SliceDegraded && e.Severity < 1 {
				return fmt.Errorf("script[%d] slice-degraded: severity %.2f < 1", i, e.Severity)
			}
		case GPUFault:
			if e.GPU < 0 || e.GPU >= len(gpus) {
				return fmt.Errorf("script[%d] %s: gpu %d out of range [0,%d) on node %d",
					i, e.Kind, e.GPU, len(gpus), e.Node)
			}
		case NodeCrash:
			// Node already checked.
		default:
			return fmt.Errorf("script[%d]: unknown fault kind %d", i, int(e.Kind))
		}
		if e.Recovery <= e.Time {
			return fmt.Errorf("script[%d] %s: recovery %.2f not after fault time %.2f",
				i, e.Kind, e.Recovery, e.Time)
		}
		// Overlap check against earlier events on the same victim: a
		// repair window still open when the next same-kind fault strikes.
		for j := 0; j < i; j++ {
			o := script[j]
			if o.Kind != e.Kind || o.Node != e.Node || o.GPU != e.GPU || o.Slice != e.Slice {
				continue
			}
			if e.Time < o.Recovery && o.Time < e.Recovery {
				return fmt.Errorf("script[%d] and script[%d]: overlapping %s windows on the same victim "+
					"([%.2f,%.2f) vs [%.2f,%.2f))", j, i, e.Kind, o.Time, o.Recovery, e.Time, e.Recovery)
			}
		}
	}
	return nil
}
