// Package faults generates deterministic, seeded fault schedules for
// the simulated cluster: MIG-slice ECC faults, whole-GPU failures, and
// node crash/recover events. The platform injects these on its event
// engine so every run is bit-for-bit reproducible — the same seed and
// spec always yield the same faults, and a zero-rate spec yields no
// events at all (leaving fault-free runs untouched).
//
// Schedules come from two sources: Poisson processes parameterised by
// per-class rates (Spec rates + Build), or an explicit Script for
// targeted studies and regression tests. Each fault carries its own
// repair time drawn from the class's mean time to repair.
package faults

import (
	"fmt"
	"sort"

	"fluidfaas/internal/sim"
)

// Kind classifies a fault event by the hardware layer it takes down.
type Kind int

// The three fault classes, smallest blast radius first.
const (
	// SliceFault takes down one MIG slice (uncorrectable ECC error in
	// the slice's memory partition): the strong-isolation case — the
	// GPU's other slices keep serving.
	SliceFault Kind = iota
	// GPUFault takes down a whole GPU and every slice on it (driver
	// wedge, XID error, thermal shutdown).
	GPUFault
	// NodeCrash takes down an invoker node: all its GPUs, plus the host
	// memory holding warm model copies.
	NodeCrash
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case SliceFault:
		return "slice-fault"
	case GPUFault:
		return "gpu-fault"
	case NodeCrash:
		return "node-crash"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault and its repair.
type Event struct {
	// Time is when the fault strikes (virtual seconds).
	Time float64
	// Kind selects the hardware layer.
	Kind Kind
	// Node is the victim node index. Always set.
	Node int
	// GPU is the victim GPU index within the node (SliceFault and
	// GPUFault; -1 for NodeCrash).
	GPU int
	// Slice is the victim slice index within the GPU (SliceFault only;
	// -1 otherwise).
	Slice int
	// Recovery is the absolute repair time. Recovery past the run
	// horizon means the hardware stays down for the rest of the run.
	Recovery float64
}

// String renders the event for logs.
func (e Event) String() string {
	target := fmt.Sprintf("node%d", e.Node)
	switch e.Kind {
	case GPUFault:
		target = fmt.Sprintf("node%d/gpu%d", e.Node, e.GPU)
	case SliceFault:
		target = fmt.Sprintf("node%d/gpu%d/slice%d", e.Node, e.GPU, e.Slice)
	}
	return fmt.Sprintf("%8.2fs %-11s %-22s repaired %.2fs", e.Time, e.Kind, target, e.Recovery)
}

// Spec parameterises fault generation. The zero value disables faults
// entirely (Build returns an empty schedule).
type Spec struct {
	// SliceRate, GPURate and NodeRate are cluster-wide fault rates in
	// faults per second for each class. Zero disables the class.
	SliceRate float64
	GPURate   float64
	NodeRate  float64

	// SliceMTTR, GPUMTTR and NodeMTTR are the mean times to repair
	// (seconds) for each class; repair times are exponential draws.
	// Defaults: 30 s (slice reset), 90 s (GPU reset), 180 s (node
	// reboot).
	SliceMTTR float64
	GPUMTTR   float64
	NodeMTTR  float64

	// Script, when non-empty, is used verbatim (sorted by time) instead
	// of generating from the rates — for targeted studies and tests.
	Script []Event
}

func (s Spec) withDefaults() Spec {
	if s.SliceMTTR <= 0 {
		s.SliceMTTR = 30
	}
	if s.GPUMTTR <= 0 {
		s.GPUMTTR = 90
	}
	if s.NodeMTTR <= 0 {
		s.NodeMTTR = 180
	}
	return s
}

// Enabled reports whether the spec can produce any events.
func (s Spec) Enabled() bool {
	return len(s.Script) > 0 || s.SliceRate > 0 || s.GPURate > 0 || s.NodeRate > 0
}

// NodeTopo describes one node's GPUs for victim selection: the slice
// count of each GPU.
type NodeTopo struct {
	Slices []int
}

// Topology describes the cluster shape faults are drawn over.
type Topology struct {
	Nodes []NodeTopo
}

// gpuRef is a flattened (node, gpu) pair for uniform victim draws.
type gpuRef struct {
	node, gpu, slices int
}

func (t Topology) gpus() []gpuRef {
	var out []gpuRef
	for ni, n := range t.Nodes {
		for gi, sc := range n.Slices {
			out = append(out, gpuRef{node: ni, gpu: gi, slices: sc})
		}
	}
	return out
}

// Schedule is a time-ordered fault plan.
type Schedule struct {
	Events []Event
}

// Len returns the number of scheduled faults.
func (s Schedule) Len() int { return len(s.Events) }

// Build derives the fault schedule for one run. Each fault class uses
// an independent RNG stream named after the class, so enabling one
// class never perturbs the draws of another. Faults are generated as
// Poisson processes over [0, horizon); events are returned sorted by
// time (ties broken by class, then generation order).
func Build(spec Spec, seed int64, horizon float64, topo Topology) Schedule {
	spec = spec.withDefaults()
	if len(spec.Script) > 0 {
		evs := append([]Event(nil), spec.Script...)
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
		return Schedule{Events: evs}
	}
	if horizon <= 0 || len(topo.Nodes) == 0 {
		return Schedule{}
	}
	var evs []Event

	if spec.SliceRate > 0 {
		rng := sim.NewRNG(seed, "faults/slice")
		gpus := topo.gpus()
		for t := rng.Exp(1 / spec.SliceRate); t < horizon; t += rng.Exp(1 / spec.SliceRate) {
			g := gpus[rng.Intn(len(gpus))]
			if g.slices == 0 {
				continue
			}
			evs = append(evs, Event{
				Time: t, Kind: SliceFault,
				Node: g.node, GPU: g.gpu, Slice: rng.Intn(g.slices),
				Recovery: t + rng.Exp(spec.SliceMTTR),
			})
		}
	}
	if spec.GPURate > 0 {
		rng := sim.NewRNG(seed, "faults/gpu")
		gpus := topo.gpus()
		for t := rng.Exp(1 / spec.GPURate); t < horizon; t += rng.Exp(1 / spec.GPURate) {
			g := gpus[rng.Intn(len(gpus))]
			evs = append(evs, Event{
				Time: t, Kind: GPUFault,
				Node: g.node, GPU: g.gpu, Slice: -1,
				Recovery: t + rng.Exp(spec.GPUMTTR),
			})
		}
	}
	if spec.NodeRate > 0 {
		rng := sim.NewRNG(seed, "faults/node")
		for t := rng.Exp(1 / spec.NodeRate); t < horizon; t += rng.Exp(1 / spec.NodeRate) {
			evs = append(evs, Event{
				Time: t, Kind: NodeCrash,
				Node: rng.Intn(len(topo.Nodes)), GPU: -1, Slice: -1,
				Recovery: t + rng.Exp(spec.NodeMTTR),
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return Schedule{Events: evs}
}
