package faults

import (
	"testing"
)

func testTopo() Topology {
	// 2 nodes × 2 GPUs × 3 slices, the default partition's shape.
	return Topology{Nodes: []NodeTopo{
		{Slices: []int{3, 3}},
		{Slices: []int{3, 3}},
	}}
}

func TestBuildZeroSpecEmpty(t *testing.T) {
	s := Build(Spec{}, 42, 300, testTopo())
	if s.Len() != 0 {
		t.Fatalf("zero-rate spec produced %d events", s.Len())
	}
	if (Spec{}).Enabled() {
		t.Error("zero spec reports enabled")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := Spec{SliceRate: 0.05, GPURate: 0.01, NodeRate: 0.002}
	a := Build(spec, 7, 300, testTopo())
	b := Build(spec, 7, 300, testTopo())
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\n%v\n%v", i, a.Events[i], b.Events[i])
		}
	}
	c := Build(spec, 8, 300, testTopo())
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same && len(a.Events) > 0 {
		t.Error("different seeds produced identical schedules")
	}
}

// Enabling one fault class must not perturb another class's draws
// (independent RNG streams).
func TestClassIndependence(t *testing.T) {
	sliceOnly := Build(Spec{SliceRate: 0.05}, 7, 300, testTopo())
	both := Build(Spec{SliceRate: 0.05, NodeRate: 0.01}, 7, 300, testTopo())
	var bothSlices []Event
	for _, e := range both.Events {
		if e.Kind == SliceFault {
			bothSlices = append(bothSlices, e)
		}
	}
	if len(bothSlices) != len(sliceOnly.Events) {
		t.Fatalf("slice draws changed when node faults were enabled: %d vs %d",
			len(bothSlices), len(sliceOnly.Events))
	}
	for i := range bothSlices {
		if bothSlices[i] != sliceOnly.Events[i] {
			t.Fatalf("slice event %d perturbed by the node stream", i)
		}
	}
}

func TestBuildEventShape(t *testing.T) {
	spec := Spec{SliceRate: 0.1, GPURate: 0.05, NodeRate: 0.02}
	s := Build(spec, 13, 200, testTopo())
	if s.Len() == 0 {
		t.Fatal("no events at substantial rates")
	}
	last := -1.0
	for _, e := range s.Events {
		if e.Time < 0 || e.Time >= 200 {
			t.Fatalf("event outside horizon: %v", e)
		}
		if e.Time < last {
			t.Fatalf("events out of order: %v after %.2f", e, last)
		}
		last = e.Time
		if e.Recovery <= e.Time {
			t.Fatalf("recovery not after fault: %v", e)
		}
		if e.Node < 0 || e.Node >= 2 {
			t.Fatalf("victim node out of range: %v", e)
		}
		switch e.Kind {
		case SliceFault:
			if e.GPU < 0 || e.GPU >= 2 || e.Slice < 0 || e.Slice >= 3 {
				t.Fatalf("slice victim out of range: %v", e)
			}
		case GPUFault:
			if e.GPU < 0 || e.GPU >= 2 || e.Slice != -1 {
				t.Fatalf("gpu victim malformed: %v", e)
			}
		case NodeCrash:
			if e.GPU != -1 || e.Slice != -1 {
				t.Fatalf("node victim malformed: %v", e)
			}
		}
		if e.String() == "" || e.Kind.String() == "" {
			t.Fatal("empty render")
		}
	}
}

// Degraded events carry an in-range severity, target real slices, and
// come from their own RNG stream (enabling the class must not perturb
// the fail-stop draws).
func TestDegradedGeneration(t *testing.T) {
	spec := Spec{DegradedRate: 0.1}
	s := Build(spec, 11, 300, testTopo())
	if s.Len() == 0 {
		t.Fatal("no degraded events at a substantial rate")
	}
	for _, e := range s.Events {
		if e.Kind != SliceDegraded {
			t.Fatalf("unexpected kind in degraded-only build: %v", e)
		}
		if e.Severity < 1.5 || e.Severity > 8 {
			t.Fatalf("severity %.2f outside default [1.5, 8]: %v", e.Severity, e)
		}
		if e.GPU < 0 || e.GPU >= 2 || e.Slice < 0 || e.Slice >= 3 {
			t.Fatalf("degraded victim out of range: %v", e)
		}
		if e.Recovery <= e.Time {
			t.Fatalf("recovery not after onset: %v", e)
		}
	}
	if !spec.Enabled() {
		t.Error("degraded-only spec reports disabled")
	}

	sliceOnly := Build(Spec{SliceRate: 0.05}, 11, 300, testTopo())
	both := Build(Spec{SliceRate: 0.05, DegradedRate: 0.1}, 11, 300, testTopo())
	var bothSlices []Event
	for _, e := range both.Events {
		if e.Kind == SliceFault {
			bothSlices = append(bothSlices, e)
		}
	}
	if len(bothSlices) != len(sliceOnly.Events) {
		t.Fatalf("slice draws changed when degradation was enabled: %d vs %d",
			len(bothSlices), len(sliceOnly.Events))
	}
	for i := range bothSlices {
		if bothSlices[i] != sliceOnly.Events[i] {
			t.Fatalf("slice event %d perturbed by the degraded stream", i)
		}
	}
}

// TestDegradedSeverityBounds: custom severity bounds are respected.
func TestDegradedSeverityBounds(t *testing.T) {
	spec := Spec{DegradedRate: 0.1, DegradedMinSeverity: 2, DegradedMaxSeverity: 3}
	s := Build(spec, 5, 300, testTopo())
	for _, e := range s.Events {
		if e.Severity < 2 || e.Severity > 3 {
			t.Fatalf("severity %.2f outside [2, 3]", e.Severity)
		}
	}
}

// TestValidateScript: out-of-range victims, inverted windows, bad
// severities and overlapping same-victim windows are rejected with a
// clear error; valid scripts (including the shapes existing regression
// tests use) pass.
func TestValidateScript(t *testing.T) {
	topo := testTopo()
	cases := []struct {
		name   string
		script []Event
		ok     bool
	}{
		{"valid mixed", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 1, Slice: 2, Recovery: 40},
			{Time: 50, Kind: GPUFault, Node: 1, GPU: 0, Slice: -1, Recovery: 120},
			{Time: 60, Kind: NodeCrash, Node: 1, GPU: -1, Slice: -1, Recovery: 200},
			{Time: 70, Kind: SliceDegraded, Node: 0, GPU: 0, Slice: 0, Recovery: 100, Severity: 3},
		}, true},
		{"node out of range", []Event{
			{Time: 1, Kind: NodeCrash, Node: 2, GPU: -1, Slice: -1, Recovery: 5},
		}, false},
		{"negative node", []Event{
			{Time: 1, Kind: SliceFault, Node: -1, GPU: 0, Slice: 0, Recovery: 5},
		}, false},
		{"gpu out of range", []Event{
			{Time: 1, Kind: GPUFault, Node: 0, GPU: 2, Slice: -1, Recovery: 5},
		}, false},
		{"slice out of range", []Event{
			{Time: 1, Kind: SliceFault, Node: 0, GPU: 0, Slice: 3, Recovery: 5},
		}, false},
		{"slice index on gpu fault ignored", []Event{
			{Time: 1, Kind: GPUFault, Node: 0, GPU: 0, Slice: -1, Recovery: 5},
		}, true},
		{"recovery before fault", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 10},
		}, false},
		{"degraded severity below 1", []Event{
			{Time: 1, Kind: SliceDegraded, Node: 0, GPU: 0, Slice: 0, Recovery: 5, Severity: 0.5},
		}, false},
		{"overlapping same victim", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 40},
			{Time: 30, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 60},
		}, false},
		{"sequential same victim", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 40},
			{Time: 40, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 60},
		}, true},
		{"overlap different victims ok", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 40},
			{Time: 30, Kind: SliceFault, Node: 0, GPU: 0, Slice: 1, Recovery: 60},
		}, true},
		{"overlap different kinds ok", []Event{
			{Time: 10, Kind: SliceFault, Node: 0, GPU: 0, Slice: 0, Recovery: 40},
			{Time: 30, Kind: SliceDegraded, Node: 0, GPU: 0, Slice: 0, Recovery: 60, Severity: 2},
		}, true},
	}
	for _, tc := range cases {
		err := ValidateScript(tc.script, topo)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid script accepted", tc.name)
		}
	}
}

// Build panics (with the validation error) on an invalid script instead
// of producing undefined platform behaviour.
func TestBuildRejectsInvalidScript(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build accepted an out-of-range script victim")
		}
	}()
	Build(Spec{Script: []Event{
		{Time: 1, Kind: SliceFault, Node: 9, GPU: 0, Slice: 0, Recovery: 5},
	}}, 1, 300, testTopo())
}

func TestScriptPassthrough(t *testing.T) {
	script := []Event{
		{Time: 50, Kind: GPUFault, Node: 1, GPU: 0, Slice: -1, Recovery: 120},
		{Time: 10, Kind: SliceFault, Node: 0, GPU: 1, Slice: 2, Recovery: 40},
	}
	s := Build(Spec{Script: script, SliceRate: 99}, 1, 300, testTopo())
	if s.Len() != 2 {
		t.Fatalf("script not used verbatim: %d events", s.Len())
	}
	if s.Events[0].Time != 10 || s.Events[1].Time != 50 {
		t.Errorf("script not sorted by time: %v", s.Events)
	}
	if !(Spec{Script: script}).Enabled() {
		t.Error("scripted spec reports disabled")
	}
}
