package platform

import (
	"math"
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/scheduler"
)

// runWithUtil runs one simulation with the given options template,
// attaching led as the utilization ledger (nil = disabled path).
func runWithUtil(t *testing.T, opts Options, led *util.Ledger, seed int64) *Platform {
	t.Helper()
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	opts.Seed = seed
	opts.Util = led
	p := New(cl, specs, opts)
	tr := flatTrace(specs, 8, 120, seed)
	p.Run(tr, 40)
	return p
}

// TestUtilDisabledIdentity: attaching the utilization ledger must not
// change a single request outcome or platform counter — it is a pure
// observer, like the span recorder and the decision recorder before it.
func TestUtilDisabledIdentity(t *testing.T) {
	base := Options{Policy: &scheduler.FluidFaaS{}}
	plain := runWithUtil(t, base, nil, 311)
	led := util.NewLedger()
	tracked := runWithUtil(t, base, led, 311)

	a, b := plain.Collector().Records(), tracked.Collector().Records()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("request records diverge with the ledger attached: %d vs %d records", len(a), len(b))
	}
	if plain.Launched() != tracked.Launched() ||
		plain.Evictions() != tracked.Evictions() ||
		plain.Migrations() != tracked.Migrations() ||
		plain.TotalEvents() != tracked.TotalEvents() {
		t.Fatal("platform counters diverge with the ledger attached")
	}
	if !reflect.DeepEqual(plain.UtilGPCs, tracked.UtilGPCs) {
		t.Fatal("utilisation timeline diverges with the ledger attached")
	}
	if !led.Closed() || len(led.Report().Slices) == 0 {
		t.Fatal("ledger recorded nothing")
	}
}

// TestUtilConservation: the conservation invariant — every slice's state
// seconds tile its wall time exactly — must hold with every subsystem
// that can interrupt or reshape work enabled at once: fail-stop and gray
// faults, quarantine with hedged retries, the swap tier, and overload
// control. This is the acceptance criterion of the ledger.
func TestUtilConservation(t *testing.T) {
	led := util.NewLedger()
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 17, Util: led,
		Obs: obs.NewRecorder(),
		Faults: &faults.Spec{
			SliceRate: 0.08, SliceMTTR: 25,
			DegradedRate: 0.08, DegradedMTTR: 40,
			DegradedMinSeverity: 3, DegradedMaxSeverity: 6,
		},
		Gray:     GrayOptions{Enabled: true, Hedge: true},
		Swap:     SwapOptions{Enabled: true},
		Overload: overload.Config{Admission: true, FairQueue: true, Brownout: true},
	})
	tr := flatTrace(specs, 12, 150, 17)
	p.Run(tr, 40)

	if p.FaultsInjected() == 0 {
		t.Fatal("fault schedule injected nothing; the test exercises no teardown")
	}
	if err := led.Check(); err != nil {
		t.Fatal(err)
	}
	rep := led.Report()
	if rep.Duration != 190 {
		t.Fatalf("ledger closed at %v, want 190", rep.Duration)
	}
	for _, sr := range rep.Slices {
		if sr.Wall != rep.Duration {
			t.Fatalf("%s: wall %v != run duration %v (no slice churn in this run)", sr.ID, sr.Wall, rep.Duration)
		}
	}
	if rep.Cluster.BusyExec <= 0 {
		t.Fatal("no busy-exec seconds attributed")
	}
	if rep.Cluster.WarmIdle <= 0 {
		t.Fatal("no warm-idle seconds attributed")
	}
	if math.Abs(rep.Cluster.Sum()-rep.SliceSeconds) > 1e-6*rep.SliceSeconds {
		t.Fatalf("cluster seconds %v != capacity %v", rep.Cluster.Sum(), rep.SliceSeconds)
	}
	if len(rep.Fragmentation) == 0 {
		t.Fatal("no fragmentation samples recorded")
	}
}

// TestUtilStrandedESG: under the monolithic ESG baseline the medium
// variants (18–30.5 GB) cannot use the 1g.10gb slices, so their free
// time must be attributed as stranded; under FluidFaaS's pipelined
// stages the same slices are placeable and no capacity is stranded.
// This is §4's waste argument measured exactly.
func TestUtilStrandedESG(t *testing.T) {
	run := func(pol scheduler.Policy) *util.Report {
		led := util.NewLedger()
		runWithUtil(t, Options{Policy: pol}, led, 42)
		if err := led.Check(); err != nil {
			t.Fatal(err)
		}
		return led.Report()
	}
	esg := run(&scheduler.ESG{})
	ff := run(&scheduler.FluidFaaS{})
	if esg.Cluster.Stranded <= 0 {
		t.Fatal("ESG run attributed no stranded seconds; 1g slices should strand under monolithic allocation")
	}
	if ff.Cluster.Stranded != 0 {
		t.Fatalf("FluidFaaS run stranded %v seconds; pipelined stages should make every slice type hostable",
			ff.Cluster.Stranded)
	}
	for _, s := range esg.Fragmentation {
		if s.StrandedGPCs > 0 {
			return
		}
	}
	t.Fatal("ESG fragmentation samples never decomposed stranded GPCs")
}
