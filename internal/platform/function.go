package platform

import (
	"sort"

	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// Function is the platform-side state of one registered function.
type Function struct {
	spec FunctionSpec

	// instances are the exclusive-hot deployments (monolithic or
	// pipelined), kept sorted by unloaded latency for the
	// heterogeneity-aware routing of §5.3.
	instances []*Instance
	// ts is the function's single time-sharing binding (§5.3: "each
	// serverless function is restricted to a maximum of one instance in
	// the time sharing state"); nil when cold.
	ts *tsBinding
	// pending holds requests no instance could admit, EDF-ordered.
	pending []*request

	// planner memoizes the §5.2.2 construction procedure for this
	// function (plan cache + feasibility precompute); nil when
	// Options.DisablePlanCache is set. All construction on the hot
	// path goes through fn.construct so the cache is used uniformly.
	planner *pipeline.Planner

	// monoExec caches the monolithic service latency per slice type;
	// missing entries mean the function cannot run monolithically there.
	monoExec map[mig.SliceType]float64
	// memGB is the monolithic footprint (for loads and shared slices).
	memGB float64

	// lastNodeUse tracks when the function last ran on each node, to
	// decide warm vs cold instance loads.
	lastNodeUse map[int]float64

	rrNext int // round-robin cursor for the routing ablation

	// served counts completions that went through Platform.complete
	// (one per hedged pair); hedges counts hedged duplicates launched.
	// Their ratio is the per-function hedge rate GrayOptions.HedgeBudget
	// bounds.
	served int
	hedges int

	// rejectDemand counts admission rejections since the last scale-up
	// pass. Rejected requests never reach fn.pending, but they are still
	// demand — without this, a cold function whose whole first wave
	// fast-fails would never trigger scale-up and reject forever.
	rejectDemand int
}

func newFunction(spec FunctionSpec, planCache bool) *Function {
	fn := &Function{
		spec:        spec,
		monoExec:    make(map[mig.SliceType]float64),
		memGB:       spec.DAG.TotalMemGB(),
		lastNodeUse: make(map[int]float64),
	}
	if planCache {
		fn.planner = pipeline.NewPlanner(spec.DAG, spec.Parts)
	}
	for _, t := range mig.SliceTypes {
		if plan, err := pipeline.Monolithic(spec.DAG, t); err == nil {
			fn.monoExec[t] = plan.Latency
		}
	}
	return fn
}

// construct runs the function's §5.2.2 construction over avail: through
// the memoized planner when enabled, the direct walk otherwise. Results
// are identical either way.
func (fn *Function) construct(avail []mig.SliceType, slo float64) (pipeline.Plan, []int, error) {
	if fn.planner != nil {
		return fn.planner.Construct(avail, slo)
	}
	return pipeline.Construct(fn.spec.DAG, fn.spec.Parts, avail, slo)
}

// sortInstances keeps the routing order: lowest unloaded latency first,
// then instance ID for determinism.
func (fn *Function) sortInstances() {
	sort.SliceStable(fn.instances, func(i, j int) bool {
		if fn.instances[i].plan.Latency != fn.instances[j].plan.Latency {
			return fn.instances[i].plan.Latency < fn.instances[j].plan.Latency
		}
		return fn.instances[i].id < fn.instances[j].id
	})
}

// removeInstance unlinks inst from the function.
func (fn *Function) removeInstance(inst *Instance) {
	for i, x := range fn.instances {
		if x == inst {
			fn.instances = append(fn.instances[:i], fn.instances[i+1:]...)
			return
		}
	}
}

// pushPending enqueues a request EDF-ordered (ascending deadline; the
// paper routes by deadline minus estimated execution and load, which for
// a single function's uniform SLO reduces to arrival order).
func (fn *Function) pushPending(rq *request) {
	// Upper-bound insert: the new request lands after any equal
	// deadlines, exactly where a stable sort of an appended element
	// would place it, without re-sorting the whole queue.
	i := sort.Search(len(fn.pending), func(i int) bool {
		return fn.pending[i].deadline > rq.deadline
	})
	fn.pending = append(fn.pending, nil)
	copy(fn.pending[i+1:], fn.pending[i:])
	fn.pending[i] = rq
}

// popPending removes and returns the most urgent pending request.
func (fn *Function) popPending() *request {
	if len(fn.pending) == 0 {
		return nil
	}
	rq := fn.pending[0]
	fn.pending = fn.pending[1:]
	return rq
}
