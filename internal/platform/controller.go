package platform

import (
	"fmt"
	"math"
	"sort"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/scheduler"
)

// route is the FFS load balancer (§5.3): requests go to exclusive-hot
// instances in ascending latency order until their serving capacity is
// reached, then to the time-sharing instance, then pend (triggering
// scale-up).
func (p *Platform) route(rq *request) {
	fn := rq.fn
	// Tracing: the attempt's queue span starts here (arrival, or the
	// retry re-route instant). Pure bookkeeping, no behaviour.
	rq.waitStart = p.eng.Now()
	if p.opts.Overload.Enabled() && p.admissionReject(rq) {
		return
	}
	// Decision provenance: each route() pass records exactly one Admit
	// with the instances it passed over (and why) as candidates. The
	// record is made before admit/enqueue so a request's chain reads
	// admission first, then whatever the admission triggered.
	dec := p.decOn()
	var cands []decisions.Candidate
	for k, inst := range p.routedInstances(fn) {
		if inst.hasCapacity() {
			if dec {
				p.decideAdmit(rq, "first exclusive instance with capacity",
					inst.id, "admitted to exclusive instance", cands)
			}
			inst.admit(p, rq)
			p.advanceRoundRobin(fn, k)
			return
		}
		if dec {
			cands = append(cands, decisions.Candidate{ID: inst.id, Reason: instCandReason(inst)})
		}
	}
	if fn.ts != nil && fn.ts.outstanding < fn.ts.capacity {
		if dec {
			p.decideAdmit(rq, "existing time-sharing binding",
				fn.ts.shared.slice.ID(),
				fmt.Sprintf("enqueued on shared slice (%d/%d outstanding)",
					fn.ts.outstanding, fn.ts.capacity), cands)
		}
		fn.ts.shared.enqueue(p, fn.ts, rq)
		return
	}
	if dec && fn.ts != nil {
		cands = append(cands, decisions.Candidate{
			ID: fn.ts.shared.slice.ID(),
			Reason: fmt.Sprintf("time-sharing at capacity (%d/%d)",
				fn.ts.outstanding, fn.ts.capacity),
		})
	}
	// FluidFaaS: the first request creates a time-sharing instance
	// (Fig. 8 transition 1).
	if p.opts.Policy.TimeSharing() && fn.ts == nil {
		if inv := p.pickInvokerForTS(fn); inv != nil {
			if b := inv.bindTS(fn); b != nil {
				if dec {
					p.decideAdmit(rq, "fresh time-sharing binding",
						b.shared.slice.ID(), "bound and enqueued on shared slice", cands)
				}
				b.shared.enqueue(p, b, rq)
				return
			}
		}
	}
	if dec {
		p.decideAdmit(rq, "no capacity anywhere", "",
			"pending overflow (scale-up kicked)", cands)
	}
	fn.pushPending(rq)
	p.kickScaleUp()
}

// routedInstances returns the function's exclusive instances in the
// configured routing order. fn.instances is kept latency-ascending, so
// the default order is a plain view. The call is a pure inspection: for
// round-robin it reads the cursor without advancing it — the cursor
// moves only when a request actually lands (advanceRoundRobin), so
// saturated instances and inspection-only calls cannot skew the
// rotation.
func (p *Platform) routedInstances(fn *Function) []*Instance {
	switch p.opts.Routing {
	case RouteLatencyDesc:
		out := make([]*Instance, len(fn.instances))
		for i, inst := range fn.instances {
			out[len(out)-1-i] = inst
		}
		return out
	case RouteRoundRobin:
		n := len(fn.instances)
		if n == 0 {
			return nil
		}
		start := fn.rrNext % n
		out := make([]*Instance, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, fn.instances[(start+i)%n])
		}
		return out
	default:
		return fn.instances
	}
}

// advanceRoundRobin moves the round-robin cursor past the instance that
// just admitted a request: k is the instance's position in the order
// routedInstances returned, so the next request starts its scan at the
// instance after the one that served.
func (p *Platform) advanceRoundRobin(fn *Function, k int) {
	if p.opts.Routing != RouteRoundRobin {
		return
	}
	if n := len(fn.instances); n > 0 {
		fn.rrNext = (fn.rrNext%n + k + 1) % n
	}
}

// kickScaleUp coalesces an immediate scale-up pass (cold starts should
// not wait for the next control period).
func (p *Platform) kickScaleUp() {
	if p.scaleKick {
		return
	}
	p.scaleKick = true
	p.eng.After(0, func() {
		p.scaleKick = false
		p.scaleUp()
	})
}

// pickInvokerForTS picks the node for a new time-sharing binding: the
// invoker whose pool already has a fitting slice with the shortest
// queue, else the node with the most free compute.
func (p *Platform) pickInvokerForTS(fn *Function) *Invoker {
	now := p.eng.Now()
	var best *Invoker
	bestQ := math.MaxInt32
	for _, inv := range p.inv {
		if !inv.node.Healthy() {
			continue
		}
		if ss := inv.pickSharedSlice(fn); ss != nil && ss.qlen() < bestQ {
			best = inv
			bestQ = ss.qlen()
		}
	}
	if best != nil {
		return best
	}
	for _, inv := range p.inv {
		if !inv.node.Healthy() {
			continue
		}
		if best == nil || inv.node.FreeGPCs(now) > best.node.FreeGPCs(now) {
			best = inv
		}
	}
	return best
}

// controlTick is the controller loop: sample pressure and advance the
// brownout ladder, autoscale up, manage keep-alive states, maintain
// the time-sharing pools, drop hopeless requests.
func (p *Platform) controlTick() {
	p.brownoutTick()
	p.scaleUp()
	if p.swapOn() {
		p.decayLoadChurn()
	}
	p.manageKeepAlive()
	for _, inv := range p.inv {
		inv.maintainPool()
	}
	p.dropStalePending()
}

// scaleUp launches instances for pending demand and hot time-sharing
// functions, via the policy's placement (ESG's A*, FluidFaaS's
// CV-ranked construction, INFless's greedy).
func (p *Platform) scaleUp() {
	now := p.eng.Now()
	// Scratch buffers: scaleUp runs every control tick and on every
	// cold-start kick, so rebuilding these from nil dominated the
	// platform's allocation profile. No policy retains the request
	// slice past PlaceBatch, so reuse is safe.
	reqs := p.scratchReqs[:0]
	reqFns := p.scratchFns[:0]
	defer func() {
		p.scratchReqs = reqs[:0]
		p.scratchFns = reqFns[:0]
	}()
	for _, fn := range p.funcs {
		if len(fn.instances) >= p.opts.MaxInstancesPerFunc {
			continue
		}
		want := 0
		// Admission fast-fails are demand too: without counting them, a
		// function whose whole overflow is rejected at arrival would
		// never trigger scale-up. Zero when admission control is off.
		demand := len(fn.pending) + fn.rejectDemand
		fn.rejectDemand = 0
		if demand > 0 {
			// An overloaded but not-hot time-sharing function gets more
			// pool slices, not an exclusive instance (§5.3: "the number
			// of MIG slices allocated to time sharing state instances
			// increases if they are overloaded").
			if p.opts.Policy.TimeSharing() && fn.ts != nil && !fn.ts.tracker.IsHot(now) {
				if !fn.ts.everLoaded {
					// The binding is still cold-loading. A trickle of
					// overflow waits it out (launching now would just
					// pay a second cold start); only clear demand
					// (several requests' worth) scales up in parallel.
					if demand <= 2 {
						continue
					}
				} else {
					// Overloaded but not hot: grow the pool (§5.3).
					// rebindToFreshSlice drains pending itself.
					before := len(fn.pending)
					fn.ts.shared.inv.rebindToFreshSlice(fn)
					demand -= before - len(fn.pending)
					if demand <= 0 {
						continue
					}
					// Pool growth was insufficient; fall through to
					// exclusive scale-up.
				}
			}
			want = int(math.Ceil(float64(demand) / float64(fn.bestCapacity(p.opts.QueueSlack))))
			if want > 4 {
				want = 4
			}
		} else if p.swapOn() && p.opts.Policy.TimeSharing() && fn.ts != nil &&
			len(fn.instances) == 0 && fn.ts.everLoaded && fn.ts.hostMemGB > 0 &&
			fn.ts.loadChurn >= swapChurnPromote*keepalive.SwapInTime(fn.memGB) {
			// Swap-aware churn response: the binding keeps re-paying
			// swap-ins because its slice's working set exceeds residency.
			// Cheap warm reloads keep every queue just short of the
			// pending-overflow trigger, so the pool never grows and the
			// slice sits in a metastable churn regime (the expensive cold
			// reload the legacy path pays here overflows the queue and
			// escapes it — the tier must not be worse than that). Spread
			// the binding to its own pool slice; if it is already alone,
			// promote it — the pool holds a materialised copy, so the
			// launch costs one swap-in, not a refetch. Checked before the
			// hotness promotion: a churning binding often IS hot (all that
			// reload time counts nothing, but the execs add up), and the
			// exclusive launch the hotness rung asks for rarely places
			// while the churn holds every medium slice busy.
			if len(fn.ts.shared.bindings) > 1 {
				inv := fn.ts.shared.inv
				ok := inv.rebindToFreshSlice(fn)
				if !ok && inv.reclaimIdle() > 0 {
					// Idle pool slices (stale bindings riding out the
					// keep-alive window) must not pin a churning binding
					// to a shared slice; reclaim them and retry.
					ok = inv.rebindToFreshSlice(fn)
				}
				if ok {
					fn.ts.loadChurn = 0
					p.logEvent(EvPromote, fn.spec.Name, "reload churn: spread to own pool slice")
				}
				// Otherwise: no slice to spread to; keep the churn and
				// retry next tick.
			} else {
				fn.ts.loadChurn = 0
				want = 1
				p.logEvent(EvPromote, fn.spec.Name, "reload churn on shared slice")
			}
		} else if p.opts.Policy.TimeSharing() && fn.ts != nil &&
			len(fn.instances) == 0 && fn.ts.tracker.IsHot(now) {
			// Fig. 8 transition 2: hot time-sharing function gets an
			// exclusive instance.
			want = 1
			p.logEvent(EvPromote, fn.spec.Name, "time-sharing binding is hot")
		}
		for i := 0; i < want; i++ {
			reqs = append(reqs, scheduler.Req{
				Func:    fn.spec.ID,
				DAG:     fn.spec.DAG,
				Parts:   fn.spec.Parts,
				SLO:     fn.spec.SLO,
				Planner: fn.planner,
			})
			reqFns = append(reqFns, fn)
		}
	}
	if len(reqs) == 0 {
		return
	}
	views, phys := p.nodeFreeViews()
	placements := p.opts.Policy.PlaceBatch(reqs, views)
	if len(placements) < len(reqs) && p.opts.Policy.TimeSharing() {
		// Some demand went unplaced: reclaim idle pool slices so the
		// next round has them (the time-sharing pool must shrink when
		// exclusive demand needs the slices, §5.3).
		for _, inv := range p.inv {
			inv.reclaimIdle()
		}
	}
	for _, pl := range placements {
		fn := reqFns[pl.Req]
		nodeIdx := pl.Node // views carry real node IDs == invoker index
		inv := p.inv[nodeIdx]
		slices := make([]*mig.Slice, len(pl.SliceIdx))
		ok := true
		for i, si := range pl.SliceIdx {
			sl := phys[nodeIdx][si]
			if !sl.Free() {
				ok = false // consumed by an earlier placement this tick
				break
			}
			slices[i] = sl
		}
		if !ok {
			continue
		}
		load := p.loadTimeFor(fn, inv.node, now)
		inst := p.launchInstance(fn, inv.node, pl.Plan, slices, load)
		// Drain pending into the new (still loading) instance.
		for len(fn.pending) > 0 && inst.hasCapacity() {
			rq := fn.popPending()
			if p.decOn() {
				p.decideDrain(rq, inst.id, "admitted to freshly launched instance")
			}
			inst.admit(p, rq)
		}
	}
}

// bestCapacity estimates how many requests one new instance can absorb.
func (fn *Function) bestCapacity(slack float64) int {
	best := math.Inf(1)
	for _, e := range fn.monoExec {
		if e < best {
			best = e
		}
	}
	if math.IsInf(best, 1) {
		return 1
	}
	return admissionCapacity(fn.spec.SLO, best, slack)
}

// manageKeepAlive applies the per-policy keep-alive rules: FluidFaaS
// demotes cool exclusive instances to time sharing (Fig. 8 transition
// 3); the baselines hold slices exclusively until the keep-alive
// timeout expires (the policy §4 criticises).
func (p *Platform) manageKeepAlive() {
	now := p.eng.Now()
	for _, fn := range p.funcs {
		insts := append([]*Instance(nil), fn.instances...)
		for _, inst := range insts {
			if inst.retiring || inst.outstanding > 0 {
				continue
			}
			if p.opts.Policy.TimeSharing() {
				if inst.tracker.IdleFor(now) >= p.effIdleDemote() &&
					!inst.tracker.IsHot(now) {
					p.demote(inst)
				}
			} else {
				if inst.tracker.IdleFor(now) >= p.effKeepAlive() {
					p.releaseInstance(inst)
				}
			}
		}
	}
}

// demote turns a cool exclusive instance into time-sharing state. A
// monolithic instance's slice is adopted into the pool with the model
// still resident (zero-cost demotion); a pipelined instance's slices
// are released and the function keeps a warm binding.
func (p *Platform) demote(inst *Instance) {
	fn := inst.fn
	inv := p.invokerOf(inst.node)
	p.logEvent(EvDemote, inst.id, "idle below hotness threshold")
	if p.decOn() {
		now := p.eng.Now()
		outcome := "slices released, warm binding kept"
		if fn.ts == nil && !inst.Pipelined() {
			outcome = "slice adopted into pool, model resident"
		}
		p.decide(decisions.Record{
			Kind: decisions.KindDemote, Func: fn.spec.Name,
			Req: decisions.NoRequest, Subject: inst.id,
			Rule: "idle below hotness threshold", Outcome: outcome,
			Inputs: []decisions.KV{
				kvF("idle", inst.tracker.IdleFor(now)),
				kvF("threshold", p.effIdleDemote()),
			},
		})
	}
	if fn.ts == nil && !inst.Pipelined() {
		fn.removeInstance(inst)
		inv.adoptShared(inst.slices[0], fn)
		return
	}
	p.releaseInstance(inst)
	if fn.ts == nil {
		if b := inv.bindTS(fn); b != nil {
			// The model was just on a GPU; its host copy is warm.
			b.everLoaded = true
		}
	}
}

// maintainPool ages out idle bindings (warm -> cold after the ten-minute
// timeout, Fig. 8 transition 5) and releases empty pool slices.
func (inv *Invoker) maintainPool() {
	p := inv.p
	now := p.eng.Now()
	shared := append([]*sharedSlice(nil), inv.shared...)
	for _, ss := range shared {
		names := make([]string, 0, len(ss.bindings))
		for name := range ss.bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := ss.bindings[name]
			if b.outstanding > 0 {
				continue
			}
			window := p.effKeepAlive()
			if p.swapOn() && b.everLoaded && b.hostMemGB > 0 &&
				p.opts.Swap.ParkAfter < window {
				// Swap-aware demotion: the materialised pool copy keeps
				// the model warm on its own, so an idle binding need not
				// ride out the keep-alive window pinning a shared slice.
				window = p.opts.Swap.ParkAfter
			}
			if b.tracker.IdleFor(now) >= window {
				if b.state.State() == keepalive.TimeSharing {
					if err := b.state.To(keepalive.Warm); err != nil {
						panic(err)
					}
				}
				if b.state.State() == keepalive.Warm {
					if err := b.state.To(keepalive.Cold); err != nil {
						panic(err)
					}
				}
				p.logEvent(EvCold, b.fn.spec.Name, "idle past the keep-alive window")
				inv.unbind(b)
			}
		}
		if len(ss.bindings) == 0 && !ss.busy && ss.qlen() == 0 {
			// unbind may already have released it; check membership.
			for _, cur := range inv.shared {
				if cur == ss {
					inv.releaseShared(ss)
					break
				}
			}
		}
	}
}

// dropStalePending abandons requests whose wait exceeds PendingDrop
// SLOs; they are recorded as drops (SLO misses). Both waiting places
// are swept: the per-function pending overflow and the time-sharing
// slice queues — a request parked behind a busy shared slice times out
// just like one that never found a slice.
func (p *Platform) dropStalePending() {
	now := p.eng.Now()
	for _, fn := range p.funcs {
		keep := fn.pending[:0]
		for _, rq := range fn.pending {
			if fn.spec.SLO > 0 && now-rq.arrival > p.opts.PendingDrop*fn.spec.SLO {
				rq.rec.Dropped = true
				// The drop is when the request leaves the system; without
				// this, Latency() on a dropped record goes negative.
				rq.rec.Completion = now
				p.logEvent(EvDrop, fn.spec.Name, "pending past the client timeout")
				if p.decOn() {
					p.decide(decisions.Record{
						Kind: decisions.KindDrop, Func: fn.spec.Name,
						Req: rq.id, Attempt: rq.attempts,
						Rule:    "client-timeout",
						Outcome: "dropped from pending overflow",
						Inputs: []decisions.KV{
							kvF("waited", now-rq.arrival),
							kvF("limit", p.opts.PendingDrop*fn.spec.SLO),
						},
					})
				}
				p.record(rq.rec)
				continue
			}
			keep = append(keep, rq)
		}
		fn.pending = keep
	}
	for _, inv := range p.inv {
		for _, ss := range inv.shared {
			for _, b := range ss.dropStale(p, now) {
				p.onTSSlack(b)
			}
		}
	}
}

// invokerOf maps a node to its invoker.
func (p *Platform) invokerOf(node *cluster.Node) *Invoker {
	return p.inv[node.ID]
}

// nodeOf maps a slice back to its node.
func (p *Platform) nodeOf(sl *mig.Slice) *cluster.Node {
	return p.cl.Nodes[sl.GPU.Node]
}

// loadTimeFor models instance startup cost. With the swap tier on, the
// node's host pool is the source of truth: a resident copy means a
// swap-in over PCIe, anything else a full cold start (which also
// establishes the pool copy, evicting LRU victims if needed). Off, the
// legacy heuristic applies: a warm load when the function ran on the
// node within the keep-alive window.
func (p *Platform) loadTimeFor(fn *Function, node *cluster.Node, now float64) float64 {
	if p.swapOn() {
		pool := node.Pool()
		name := fn.spec.Name
		if pool.LoadedCopy(name) {
			if pool.Parked(name) {
				p.swapIns++
				p.logEvent(EvSwapIn, name,
					fmt.Sprintf("exclusive launch from parked copy on node%d", node.ID))
			}
			pool.Reclaim(name)
			return keepalive.SwapInTime(fn.memGB)
		}
		// No materialised copy (a bare reservation is only space): the
		// launch refetches remotely, establishing the pool copy.
		p.ensureHostCopy(node, fn)
		return keepalive.ColdStartTime(fn.memGB)
	}
	if last, ok := fn.lastNodeUse[node.ID]; ok && now-last < p.opts.KeepAlive {
		return keepalive.WarmLoadTime(fn.memGB)
	}
	return keepalive.ColdStartTime(fn.memGB)
}

// monoPlan builds the monolithic plan of fn on a slice type.
func monoPlan(fn *Function, t mig.SliceType) (pipeline.Plan, error) {
	return pipeline.Monolithic(fn.spec.DAG, t)
}
