package platform

import (
	"math"
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/scheduler"
)

// grayTestOptions are explicit scorer knobs so the tests do not depend
// on default drift.
func grayTestOptions() GrayOptions {
	return GrayOptions{
		Enabled: true, Alpha: 0.35,
		SuspectRatio: 1.3, QuarantineRatio: 2.0, RecoverRatio: 1.15,
		MinSamples: 3, RecoverDwell: 5, Probation: 10,
	}
}

// TestGrayDisabledIdentity: with Gray.Enabled false, the platform must
// be bit-for-bit identical to one that never mentioned the subsystem —
// non-zero sibling knobs must not leak into behaviour.
func TestGrayDisabledIdentity(t *testing.T) {
	run := func(g GrayOptions) *Platform {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 77, Gray: g})
		p.Run(flatTrace(specs, 10, 120, 77), 60)
		return p
	}
	a := run(GrayOptions{})
	b := run(GrayOptions{Enabled: false, Hedge: true, Alpha: 0.9,
		SuspectRatio: 1.01, QuarantineRatio: 1.02, MinSamples: 1, HedgeBudget: 99})
	if !reflect.DeepEqual(a.Collector().Records(), b.Collector().Records()) {
		t.Error("request records diverged with the subsystem disabled")
	}
	if a.Engine().Executed() != b.Engine().Executed() {
		t.Errorf("event counts diverged: %d vs %d",
			a.Engine().Executed(), b.Engine().Executed())
	}
	if a.Launched() != b.Launched() || a.Evictions() != b.Evictions() {
		t.Error("launch/eviction counters diverged")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("event logs diverged")
	}
	if !reflect.DeepEqual(a.UtilGPCs, b.UtilGPCs) {
		t.Error("utilisation timelines diverged")
	}
	for _, p := range []*Platform{a, b} {
		if p.Suspects() != 0 || p.Quarantines() != 0 || p.Hedges() != 0 ||
			p.HedgeWins() != 0 || p.HedgeCancels() != 0 || p.HedgeWastedSeconds() != 0 {
			t.Error("disabled subsystem recorded gray activity")
		}
		if len(p.HealthScores) != 0 {
			t.Error("disabled subsystem sampled health timelines")
		}
	}
}

// TestDegradedSliceSlowsExecution: a degraded slice keeps serving but
// stretches exec and load by the severity; recovery restores the
// profile times exactly.
func TestDegradedSliceSlowsExecution(t *testing.T) {
	const sev = 3.0
	run := func(degrade bool) metrics.RequestRecord {
		specs := specsFor(t, dnn.Small)[:1]
		cl := smallCluster(1)
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
		if degrade {
			for gi, g := range cl.Nodes[0].GPUs {
				for si := range g.Slices {
					p.injectFault(faults.Event{
						Kind: faults.SliceDegraded, Node: 0, GPU: gi, Slice: si, Severity: sev,
					})
				}
			}
		}
		p.InjectRequest(0, 0)
		p.Engine().RunUntil(300)
		recs := p.Collector().Records()
		if len(recs) != 1 {
			t.Fatalf("recorded %d requests, want 1", len(recs))
		}
		return recs[0]
	}
	clean := run(false)
	slow := run(true)
	if math.Abs(slow.Exec-sev*clean.Exec) > 1e-9 {
		t.Errorf("degraded exec = %v, want %v (x%.0f of %v)", slow.Exec, sev*clean.Exec, sev, clean.Exec)
	}
	if clean.Load <= 0 {
		t.Fatal("expected a cold load in the clean run")
	}
	if math.Abs(slow.Load-sev*clean.Load) > 1e-9 {
		t.Errorf("degraded load = %v, want %v", slow.Load, sev*clean.Load)
	}

	// Recovery clears the multiplier entirely.
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	ev := faults.Event{Kind: faults.SliceDegraded, Node: 0, GPU: 0, Slice: 0, Severity: sev}
	p.injectFault(ev)
	sl := cl.Nodes[0].GPUs[0].Slices[0]
	if got := p.degradeFactor(sl); got != sev {
		t.Fatalf("degradeFactor = %v, want %v", got, sev)
	}
	if p.DegradedActive() != 1 || p.FaultsInjected() != 1 {
		t.Error("degradation not accounted")
	}
	// A degraded slice is NOT fail-stop: it stays in placement.
	if !sl.Usable(0) {
		t.Error("degraded slice left placement; only quarantine may do that")
	}
	p.recoverFault(ev)
	if got := p.degradeFactor(sl); got != 1 {
		t.Errorf("degradeFactor after recovery = %v, want 1", got)
	}
	if p.DegradedActive() != 0 || p.Recoveries() != 1 {
		t.Error("recovery not accounted")
	}
}

// TestHealthScoreSuspectThenRecovery: slow executions push a slice to
// suspect; sustained on-profile timing (RecoverDwell) clears it without
// ever quarantining.
func TestHealthScoreSuspectThenRecovery(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1, Gray: grayTestOptions()})
	sl := cl.Nodes[0].GPUs[0].Slices[0]
	eng := p.Engine()
	// Three 2x-slow executions at t=0: the third crosses MinSamples and
	// SuspectRatio together.
	eng.At(0, func() {
		for i := 0; i < 3; i++ {
			p.observeSliceExec(sl, 1, 2)
		}
	})
	// On-profile observations once a second decay the score; it reaches
	// RecoverRatio (1.15) at the 5th sample (t=5) and must then dwell 5
	// more seconds before clearing at t=10.
	for i := 1; i <= 12; i++ {
		ti := float64(i)
		eng.At(ti, func() { p.observeSliceExec(sl, 1, 1) })
	}
	eng.RunUntil(4.5)
	h := p.health[sl]
	if h == nil || h.state != sliceSuspect {
		t.Fatal("slice not suspect after three 2x executions")
	}
	if p.Suspects() != 1 {
		t.Errorf("suspects = %d, want 1", p.Suspects())
	}
	eng.RunUntil(9.5)
	if h.state != sliceSuspect {
		t.Error("suspect cleared before the recovery dwell elapsed")
	}
	eng.RunUntil(12.5)
	if h.state != sliceHealthy {
		t.Errorf("suspect not cleared after dwell (score %.3f)", h.score)
	}
	if p.Quarantines() != 0 || sl.Quarantined() {
		t.Error("recovering slice was quarantined")
	}
	if got := p.CountEvents()[EvSliceSuspect]; got != 1 {
		t.Errorf("EvSliceSuspect count = %d, want 1", got)
	}
}

// TestQuarantineLifecycle: crossing the quarantine threshold pulls the
// slice from placement, tears down its time-sharing owner, voids the
// warmth stamps of the affected functions, and readmits the slice as
// suspect after probation.
func TestQuarantineLifecycle(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1, Gray: grayTestOptions()})
	inv, fn := p.inv[0], p.funcs[0]
	b := inv.bindTS(fn)
	if b == nil {
		t.Fatal("bindTS failed")
	}
	sl := b.shared.slice
	fn.lastNodeUse[0] = 0 // warmth the quarantine must void
	// Suspect, then one catastrophic observation over the threshold.
	for i := 0; i < 3; i++ {
		p.observeSliceExec(sl, 1, 2)
	}
	p.observeSliceExec(sl, 1, 8) // score 0.65*2 + 0.35*8 = 4.1 >= 2.0
	if !sl.Quarantined() {
		t.Fatal("slice not quarantined")
	}
	if p.Quarantines() != 1 {
		t.Errorf("quarantines = %d, want 1", p.Quarantines())
	}
	if fn.ts != nil {
		t.Error("time-sharing binding survived the quarantine teardown")
	}
	if _, ok := fn.lastNodeUse[0]; ok {
		t.Error("quarantine left the function's warmth stamp in place")
	}
	if got := len(cl.Nodes[0].FreeSlices(p.Engine().Now())); got != len(cl.Nodes[0].GPUs[0].Slices)-1 {
		t.Errorf("quarantined slice still placeable: %d free slices", got)
	}
	if got := p.CountEvents()[EvSliceQuarantine]; got != 1 {
		t.Errorf("EvSliceQuarantine count = %d, want 1", got)
	}
	// Probation (10 s) readmits the slice as suspect with a reset score.
	p.Engine().RunUntil(11)
	if sl.Quarantined() {
		t.Error("quarantine not lifted after probation")
	}
	h := p.health[sl]
	if h == nil || h.state != sliceSuspect {
		t.Error("readmitted slice not on probationary suspect status")
	}
	// One slow probe re-quarantines immediately (score >= threshold).
	p.observeSliceExec(sl, 1, 4)
	if !sl.Quarantined() || p.Quarantines() != 2 {
		t.Error("slow probe after probation did not re-quarantine")
	}
}

// TestHedgeSingleRecord: of a hedged pair exactly one Completion is
// recorded (the winner); the loser's spent work lands in the dedicated
// wasted counter, never in the metrics.
func TestHedgeSingleRecord(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	g := grayTestOptions()
	g.Hedge = true
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1, Gray: g})
	fn := p.funcs[0]
	mk := func() *request {
		return &request{
			id: 7, fn: fn, arrival: 0, deadline: fn.spec.SLO,
			rec: metrics.RequestRecord{ID: 7, Func: 0, SLO: fn.spec.SLO},
		}
	}
	primary, clone := mk(), mk()
	p.armHedge(primary, clone, 0)
	if p.Hedges() != 1 || fn.hedges != 1 {
		t.Fatal("hedge launch not accounted")
	}
	primary.rec.Exec, primary.rec.Load = 2, 0.5 // spent when it loses
	clone.rec.Exec = 1
	p.complete(clone) // clone wins the race
	if primary.hedgeCancelled() {
		// Sanity of the cancel predicate direction.
	} else {
		t.Fatal("primary not cancelled after the clone won")
	}
	if clone.hedgeCancelled() {
		t.Fatal("winner believes it was cancelled")
	}
	p.complete(primary) // loser finishes: swallowed
	recs := p.Collector().Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d completions for a hedged pair, want 1", len(recs))
	}
	if recs[0].Exec != 1 {
		t.Errorf("recorded the loser's breakdown (exec %v)", recs[0].Exec)
	}
	if p.HedgeWins() != 1 {
		t.Errorf("hedgeWins = %d, want 1", p.HedgeWins())
	}
	if got, want := p.HedgeWastedSeconds(), 2.5; got != want {
		t.Errorf("wasted = %v, want %v", got, want)
	}
	if p.HedgeCancels() != 1 {
		t.Errorf("hedgeCancels = %d, want 1", p.HedgeCancels())
	}
	if fn.served != 1 {
		t.Errorf("fn.served = %d, want 1 (winner only)", fn.served)
	}
}

// TestRetryHedgeMutualExclusion: a hedged copy that loses its hardware
// never also spawns a fault retry — the partner is the retry. Only when
// both copies are dead does the last one fall back to the normal path.
func TestRetryHedgeMutualExclusion(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	g := grayTestOptions()
	g.Hedge = true
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1, Gray: g})
	fn := p.funcs[0]
	mk := func(id int) *request {
		return &request{
			id: id, fn: fn, arrival: 0, deadline: fn.spec.SLO,
			rec: metrics.RequestRecord{ID: id, Func: 0, SLO: fn.spec.SLO},
		}
	}

	// Case 1: one copy dies while the race is live -> abandoned, no retry.
	primary, clone := mk(1), mk(2)
	p.armHedge(primary, clone, 0)
	p.retryAfterFault(primary, "slice failed")
	if p.Retries() != 0 {
		t.Error("live hedge copy spawned a fault retry")
	}
	if p.Collector().Len() != 0 {
		t.Error("abandoned copy produced a record")
	}
	// Case 2: the second copy dies too -> hedge void, normal retry.
	p.retryAfterFault(clone, "slice failed")
	if p.Retries() != 1 {
		t.Errorf("retries = %d, want 1 after both copies died", p.Retries())
	}
	if clone.hedge != nil {
		t.Error("voided hedge still attached to the surviving copy")
	}

	// Case 3: the loser of a settled race dies -> waste counted, no retry.
	primary2, clone2 := mk(3), mk(4)
	p.armHedge(primary2, clone2, 0)
	primary2.rec.Exec = 1.5
	p.complete(clone2) // clone wins and is recorded
	base := p.Collector().Len()
	p.retryAfterFault(primary2, "slice failed")
	if p.Retries() != 1 {
		t.Error("settled loser spawned a fault retry")
	}
	if p.Collector().Len() != base {
		t.Error("settled loser produced a second record")
	}
	if p.HedgeWastedSeconds() < 1.5 {
		t.Errorf("loser's spent work not charged: wasted = %v", p.HedgeWastedSeconds())
	}
}

// TestRetryBackoffJitter: the backoff before a retry is the capped
// exponential spread deterministically over [0.5, 1.5) by a hash of the
// request identity — reproducible, bounded, and de-synchronised across
// requests.
func TestRetryBackoffJitter(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, Backoff: 0.05, BackoffCap: 1}
	cases := []struct {
		id, attempt int
		base        float64
	}{
		{1, 1, 0.05}, {1, 2, 0.1}, {1, 3, 0.2},
		{2, 1, 0.05}, {999, 2, 0.1},
		{7, 6, 1}, // 0.05*2^5 = 1.6 -> capped at 1
		{0, 1, 0.05},
	}
	for _, tc := range cases {
		got := retryBackoff(pol, tc.id, tc.attempt)
		if got != retryBackoff(pol, tc.id, tc.attempt) {
			t.Fatalf("id %d attempt %d: backoff not deterministic", tc.id, tc.attempt)
		}
		if got < 0.5*tc.base || got >= 1.5*tc.base {
			t.Errorf("id %d attempt %d: backoff %v outside [%v, %v)",
				tc.id, tc.attempt, got, 0.5*tc.base, 1.5*tc.base)
		}
	}
	// Different requests at the same attempt must not retry in lockstep.
	a := retryBackoff(pol, 1, 1)
	b := retryBackoff(pol, 2, 1)
	c := retryBackoff(pol, 3, 1)
	if a == b && b == c {
		t.Error("jitter identical across request IDs")
	}
	// And the jitter itself stays in [0, 1).
	for id := 0; id < 50; id++ {
		j := retryJitter(id, 1)
		if j < 0 || j >= 1 {
			t.Fatalf("jitter(%d) = %v outside [0,1)", id, j)
		}
	}
}

// TestGrayEndToEndDeterminism: a full run with degraded faults, the
// scorer and hedging on is deterministic, conserves one record per
// request, and keeps every function's hedge rate under its budget.
func TestGrayEndToEndDeterminism(t *testing.T) {
	run := func() *Platform {
		specs := specsFor(t, dnn.Small)
		cl := cluster.New(cluster.DefaultSpec())
		g := grayTestOptions()
		g.Hedge = true
		g.HedgeBudget = 0.1
		p := New(cl, specs, Options{
			Policy: &scheduler.FluidFaaS{}, Seed: 7,
			Faults:   &faults.Spec{DegradedRate: 0.05, DegradedMTTR: 60},
			Gray:     g,
			Overload: overload.Config{FairQueue: true},
		})
		tr := flatTrace(specs, 6, 180, 7)
		p.Run(tr, 60)
		if p.Collector().Len() != len(tr.Requests) {
			t.Fatalf("recorded %d of %d requests", p.Collector().Len(), len(tr.Requests))
		}
		return p
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Collector().Records(), b.Collector().Records()) {
		t.Error("gray-on records diverged across same-seed runs")
	}
	if a.Engine().Executed() != b.Engine().Executed() {
		t.Error("gray-on event counts diverged")
	}
	if a.Suspects() != b.Suspects() || a.Quarantines() != b.Quarantines() ||
		a.Hedges() != b.Hedges() || a.HedgeWastedSeconds() != b.HedgeWastedSeconds() {
		t.Error("gray counters diverged")
	}
	if a.FaultsInjected() == 0 {
		t.Fatal("no degraded faults injected at a substantial rate")
	}
	for _, fn := range a.funcs {
		if fn.served > 0 && float64(fn.hedges) > 0.1*float64(fn.served)+1 {
			t.Errorf("%s: %d hedges over budget for %d served",
				fn.spec.Name, fn.hedges, fn.served)
		}
	}
}
