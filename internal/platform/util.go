package platform

import (
	"strconv"

	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/util"
)

// This file feeds the GPU utilization ledger (internal/obs/util): a pure
// observer that classifies every slice-second of the run into busy /
// warm-idle / cold-idle / stranded / quarantined / reconfiguring, so the
// run can answer "where did the GPU-seconds go" for hardware the way the
// span trace answers it for requests. Every hook here is gated on
// Options.Util (nil-receiver-safe on top), and none of them mutates
// platform state or schedules engine work — a run with the ledger
// attached is bit-for-bit identical to one without (enforced by
// TestUtilDisabledIdentity).

// utilOn reports whether the utilization ledger is attached.
func (p *Platform) utilOn() bool { return p.opts.Util != nil }

// computeUtilHostable fills the per-slice-type placeability table: a
// type is hostable when at least one registered deployable unit fits it
// — a function that can run monolithically there, or (under a
// pipelining policy) any partition stage whose memory and operators fit.
// A free slice of a non-hostable type is stranded capacity: it can never
// serve anything under the current fragmentation, which is exactly the
// waste §4 attributes to coarse MIG allocation.
func (p *Platform) computeUtilHostable() {
	for _, fn := range p.funcs {
		for t := range fn.monoExec {
			p.utilHostable[t] = true
		}
		if !p.opts.Policy.Pipelines() {
			continue
		}
		d := fn.spec.DAG
		for _, part := range fn.spec.Parts {
			for _, st := range part.Stages {
				mem := st.MemGB(d)
				for _, t := range mig.SliceTypes {
					if p.utilHostable[t] || mem > float64(t.MemGB()) {
						continue
					}
					// A stage covering the whole DAG is the monolithic
					// deployment and carries its compute floor.
					if len(st.Nodes) == d.Len() && t.GPCs() < d.MonoMinGPCs {
						continue
					}
					if _, ok := st.ExecOn(d, t); ok {
						p.utilHostable[t] = true
					}
				}
			}
		}
	}
}

// utilRegister opens the ledger's slice timelines, in topology order
// (the order every export walks).
func (p *Platform) utilRegister() {
	l := p.opts.Util
	if l == nil {
		return
	}
	p.computeUtilHostable()
	for _, node := range p.cl.Nodes {
		for _, g := range node.GPUs {
			for _, sl := range g.Slices {
				l.Register(sl.ID(), node.ID, g.ID, sl.Type.String(),
					sl.Type.GPCs(), float64(sl.Type.MemGB()), 0, p.utilBase(sl, 0))
			}
		}
	}
}

// utilBase classifies a slice's current base (no-work-running) state.
// Priority: a mid-reconfiguration GPU hides everything else; unusable
// hardware (faulted or quarantined at any layer) is out of placement
// regardless of ownership; an owned slice is warm keepalive; a free one
// is placeable capacity or stranded fragmentation waste.
func (p *Platform) utilBase(sl *mig.Slice, now float64) util.State {
	switch {
	case !sl.GPU.Available(now):
		return util.Reconfiguring
	case sl.Quarantined() || !sl.Healthy() || !sl.GPU.Healthy() || !p.cl.Nodes[sl.GPU.Node].Healthy():
		return util.Quarantined
	case !sl.Free():
		return util.WarmIdle
	case p.utilHostable[sl.Type]:
		return util.ColdIdle
	default:
		return util.Stranded
	}
}

// utilTouch re-derives and records the base state of the given slices at
// the current instant. Called after every transition that can change a
// slice's classification (allocate/release, pool grow/shrink, health
// flips, quarantine/probation); unchanged states are no-ops in the
// ledger, so touching broadly is safe and cheap.
func (p *Platform) utilTouch(sls ...*mig.Slice) {
	l := p.opts.Util
	if l == nil {
		return
	}
	now := p.eng.Now()
	for _, sl := range sls {
		l.SetBase(sl.ID(), now, p.utilBase(sl, now))
	}
}

// utilBusy claims a busy interval on a slice, mirroring the span the
// trace recorder gets (upfront, with the future end time; teardown
// truncates via utilCancel).
func (p *Platform) utilBusy(sl *mig.Slice, s util.State, start, end float64) {
	if l := p.opts.Util; l != nil {
		l.Busy(sl.ID(), s, start, end)
	}
}

// utilCancel truncates a slice's open busy claims at the current instant
// — the ledger-side twin of obs.Recorder.CancelSliceWork, called from
// the same fault/quarantine teardown sites.
func (p *Platform) utilCancel(sl *mig.Slice, now float64) {
	if l := p.opts.Util; l != nil {
		l.CancelBusy(sl.ID(), now)
	}
}

// utilSample records one fragmentation-analytics sample: the scalar
// index decomposed into free vs stranded capacity, plus the largest free
// slice a registered stage could still be placed on (the headroom a
// repartition policy would watch). fi is the already-computed
// mig.FragmentationIndex of this sampling instant.
func (p *Platform) utilSample(now, fi float64) {
	l := p.opts.Util
	if l == nil {
		return
	}
	s := util.FragSample{Time: now, Index: fi}
	for _, g := range p.cl.AllGPUs() {
		for _, sl := range g.FreeSlices(now) {
			gp := sl.Type.GPCs()
			s.FreeGPCs += gp
			if !p.utilHostable[sl.Type] {
				s.StrandedGPCs += gp
				s.StrandedGB += float64(sl.Type.MemGB())
			} else if gp > s.LargestPlaceableGPCs {
				s.LargestPlaceableGPCs = gp
			}
		}
	}
	l.AddFragSample(s)
}

// utilClose resolves the ledger at the end of the run and exports it:
// per-slice state Gantt segments on the chrome hardware tracks (cat
// "state", which never touches the busy counters) and the cluster
// state-seconds as a labeled Prometheus series.
func (p *Platform) utilClose(end float64) {
	l := p.opts.Util
	if l == nil {
		return
	}
	l.Close(end)
	r := p.opts.Obs
	if r == nil {
		return
	}
	rep := l.Report()
	for _, sr := range rep.Slices {
		for _, seg := range sr.Segments {
			r.SliceSpan("state", seg.State.String(), sr.ID, -1, -1, -1,
				seg.Start, seg.End)
		}
	}
	for _, st := range util.States {
		r.SetSeries("fluidfaas_util_state_seconds",
			"Slice-seconds of the run by ledger state (cluster roll-up).",
			rep.Cluster.Get(st), [2]string{"state", st.String()})
		r.SetSeries("fluidfaas_util_state_gpc_seconds",
			"GPC-weighted GPU-seconds of the run by ledger state (cluster roll-up).",
			rep.ClusterGPC.Get(st), [2]string{"state", st.String()})
	}
	for _, nr := range rep.Nodes {
		r.SetSeries("fluidfaas_util_busy_gpc_seconds",
			"GPC-weighted productive (exec+load+transfer) seconds per node.",
			nr.GPCSeconds.Busy(), [2]string{"node", strconv.Itoa(nr.Node)})
	}
}
