package platform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/pipeline"
)

// This file is the platform side of decision provenance
// (internal/obs/decisions): thin helpers the choice points call to
// record why they did what they did. Everything is gated on
// Options.Decisions != nil — the nil path builds no arguments and
// allocates nothing, keeping recorder-off runs bit-identical
// (TestDecisionsDisabledIdentity, the PR-3 pattern).

// decOn reports whether decision provenance is being recorded.
func (p *Platform) decOn() bool { return p.opts.Decisions != nil }

// decide stamps rec with the current virtual time and records it.
// Call sites guard argument construction behind decOn themselves.
func (p *Platform) decide(rec decisions.Record) {
	rec.Time = p.eng.Now()
	p.opts.Decisions.Record(rec)
}

// kv/kvF/kvI build decision inputs with deterministic rendering.
func kv(k, v string) decisions.KV { return decisions.KV{K: k, V: v} }

func kvF(k string, v float64) decisions.KV {
	return decisions.KV{K: k, V: strconv.FormatFloat(v, 'g', -1, 64)}
}

func kvI(k string, v int) decisions.KV {
	return decisions.KV{K: k, V: strconv.Itoa(v)}
}

// decideAdmit records one admission-routing decision for rq: every
// route() invocation (first attempt or retry re-route) produces exactly
// one Admit record (or a Reject from admission control), so a request's
// chain always opens with its admission fate per attempt.
func (p *Platform) decideAdmit(rq *request, rule, subject, outcome string, cands []decisions.Candidate) {
	p.decide(decisions.Record{
		Kind: decisions.KindAdmit, Func: rq.fn.spec.Name,
		Req: rq.id, Attempt: rq.attempts,
		Subject: subject, Rule: rule, Outcome: outcome,
		Candidates: cands,
	})
}

// decideDrain records a pending-overflow request finally finding a
// home: its chain already carries the "pending overflow" admission
// verdict, this is the placement that resolved it.
func (p *Platform) decideDrain(rq *request, subject, outcome string) {
	p.decideAdmit(rq, "pending-overflow drain", subject, outcome, nil)
}

// instCandReason says why a scanned exclusive instance did not admit.
func instCandReason(inst *Instance) string {
	if inst.retiring {
		return "retiring"
	}
	return fmt.Sprintf("at capacity (%d/%d)", inst.outstanding, inst.capacity)
}

// poolCandidates lists the invoker's other pool slices and why each was
// not the bind target. Only called while provenance is on.
func poolCandidates(inv *Invoker, fn *Function, chosen *sharedSlice) []decisions.Candidate {
	var cands []decisions.Candidate
	for _, ss := range inv.shared {
		if ss == chosen {
			continue
		}
		reason := fmt.Sprintf("queue %d", ss.qlen())
		if _, ok := fn.monoExec[ss.slice.Type]; !ok {
			reason = "type cannot host function"
		}
		cands = append(cands, decisions.Candidate{ID: ss.slice.ID(), Reason: reason})
	}
	return cands
}

// wirePlanObservers attaches a provenance observer to every function's
// plan cache, so placement lookups record hit/miss/uncached with the
// signature and outcome the planner saw. Called from New only when
// provenance is on; without it the planner's observer stays nil and the
// lookup path is untouched.
func (p *Platform) wirePlanObservers() {
	for _, fn := range p.funcs {
		if fn.planner == nil {
			continue
		}
		fn := fn
		fn.planner.SetObserver(func(o pipeline.PlanObservation) {
			kind := decisions.KindPlanMiss
			rule := "constructed and cached"
			switch {
			case !o.SigOK:
				kind = decisions.KindPlanUncached
				rule = "signature overflow"
			case o.Cached:
				kind = decisions.KindPlanHit
				rule = "served from cache"
			}
			outcome := fmt.Sprintf("rank %d plan", o.Rank)
			if o.Err != nil {
				outcome = "no feasible plan: " + o.Err.Error()
			}
			p.decide(decisions.Record{
				Kind: kind, Func: fn.spec.Name, Req: decisions.NoRequest,
				Rule: rule, Outcome: outcome,
				Inputs: []decisions.KV{
					kv("sig", "0x"+strconv.FormatUint(o.Sig, 16)),
					kvF("slo", o.SLO),
				},
			})
		})
	}
}

// sliceIDs joins slice IDs for bind-decision inputs.
func sliceIDs(sls []*mig.Slice) string {
	ids := make([]string, len(sls))
	for i, sl := range sls {
		ids[i] = sl.ID()
	}
	return strings.Join(ids, "+")
}

// eventCat maps a lifecycle event to the trace category its instant is
// filed under, so health and swap instants can be filtered apart from
// ordinary lifecycle in the Chrome trace.
func eventCat(k EventKind) string {
	switch k {
	case EvDegrade, EvSliceSuspect, EvSliceQuarantine, EvRecover:
		return "health"
	case EvSwapIn, EvSwapOut:
		return "swap"
	}
	return "event"
}

// exportRunCounters publishes the end-of-run counters that previously
// lived only on the Platform struct into the trace recorder's metric
// surface: hedge economics, swap-tier traffic, per-node host-pool
// occupancy, per-slice health scores, and typed reject reasons. Called
// once at the end of Run; a nil recorder skips everything.
func (p *Platform) exportRunCounters() {
	r := p.opts.Obs
	if r == nil {
		return
	}
	r.SetGauge("fluidfaas_hedges_total", float64(p.hedges))
	r.SetGauge("fluidfaas_hedge_wins_total", float64(p.hedgeWins))
	r.SetGauge("fluidfaas_hedge_cancels_total", float64(p.hedgeCancels))
	r.SetGauge("fluidfaas_hedge_wasted_seconds_total", p.hedgeWastedSec)
	r.SetGauge("fluidfaas_swap_ins_total", float64(p.swapIns))
	r.SetGauge("fluidfaas_swap_outs_total", float64(p.swapOuts))
	r.SetGauge("fluidfaas_swap_reliefs_total", float64(p.swapReliefs))
	for _, inv := range p.inv {
		r.SetSeries("fluidfaas_host_pool_occupancy",
			"Host-memory pool occupancy (UsedGB/CapacityGB) per node at run end.",
			inv.node.Pool().Occupancy(),
			[2]string{"node", strconv.Itoa(inv.node.ID)})
	}
	ids := make([]string, 0, len(p.health))
	byID := make(map[string]*sliceHealth, len(p.health))
	for sl, h := range p.health {
		ids = append(ids, sl.ID())
		byID[sl.ID()] = h
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := byID[id]
		r.SetSeries("fluidfaas_slice_health_score",
			"Gray-failure health score (EWMA observed/declared exec ratio) per scored slice at run end.",
			h.score,
			[2]string{"slice", id}, [2]string{"state", healthStateName(h.state)})
	}
	for why := RejectReason(0); why < numRejectReasons; why++ {
		if p.rejectReasons[why] == 0 && !p.opts.Overload.Enabled() {
			continue
		}
		r.SetSeries("fluidfaas_rejects_total",
			"Admission fast-fails by typed reason.",
			float64(p.rejectReasons[why]),
			[2]string{"reason", why.String()})
	}
	r.SetGauge("fluidfaas_fragmentation_index_mean", p.Fragmentation.Mean())
	for i, t := range p.Fragmentation.Times {
		r.SetSeries("fluidfaas_fragmentation_index",
			"Cluster fragmentation index (stranded GPC fraction) sampled over the run.",
			p.Fragmentation.Values[i],
			[2]string{"t", strconv.FormatFloat(t, 'g', -1, 64)})
	}
}
