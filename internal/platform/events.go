package platform

import "fmt"

// EventKind classifies platform lifecycle events.
type EventKind int

// Lifecycle events the platform records.
const (
	// EvLaunch: an exclusive instance launched.
	EvLaunch EventKind = iota
	// EvRelease: an exclusive instance released its slices.
	EvRelease
	// EvDemote: an exclusive instance demoted to time sharing (Fig. 8
	// transition 3).
	EvDemote
	// EvPromote: a hot time-sharing function received an exclusive
	// instance (Fig. 8 transition 2).
	EvPromote
	// EvEvict: a time-sharing resident was evicted to host memory
	// (Fig. 8 transition 4).
	EvEvict
	// EvCold: a warm binding aged out (Fig. 8 transition 5).
	EvCold
	// EvMigrate: a pipeline instance migrated to a monolithic one.
	EvMigrate
	// EvDrop: a pending request was abandoned.
	EvDrop
	// EvPoolGrow: the time-sharing pool acquired a slice.
	EvPoolGrow
	// EvPoolShrink: the time-sharing pool released a slice.
	EvPoolShrink
	// EvFault: a slice, GPU or node failed; its instances and bindings
	// were torn down.
	EvFault
	// EvRecover: failed hardware was repaired and rejoined placement.
	EvRecover
	// EvRetry: an in-flight request lost its hardware and was re-routed
	// with backoff.
	EvRetry
	// EvReject: admission control fast-failed a request at arrival (its
	// estimated completion could not meet the deadline).
	EvReject
	// EvShed: brownout shedding refused a low-priority request.
	EvShed
	// EvBrownout: the degradation ladder changed level.
	EvBrownout
	// EvContract: a pipelined instance was contracted to a smaller
	// footprint under brownout.
	EvContract
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvLaunch:
		return "launch"
	case EvRelease:
		return "release"
	case EvDemote:
		return "demote"
	case EvPromote:
		return "promote"
	case EvEvict:
		return "evict"
	case EvCold:
		return "cold"
	case EvMigrate:
		return "migrate"
	case EvDrop:
		return "drop"
	case EvPoolGrow:
		return "pool-grow"
	case EvPoolShrink:
		return "pool-shrink"
	case EvFault:
		return "fault"
	case EvRecover:
		return "recover"
	case EvRetry:
		return "retry"
	case EvReject:
		return "reject"
	case EvShed:
		return "shed"
	case EvBrownout:
		return "brownout"
	case EvContract:
		return "contract"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one recorded platform lifecycle event.
type Event struct {
	Time    float64
	Kind    EventKind
	Subject string // instance ID, function name, or slice ID
	Detail  string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%8.2fs %-11s %-30s %s", e.Time, e.Kind, e.Subject, e.Detail)
}

// eventLog is a bounded ring of recent events.
type eventLog struct {
	buf   []Event
	next  int
	total int
}

const eventLogCap = 4096

func (l *eventLog) add(e Event) {
	if cap(l.buf) == 0 {
		l.buf = make([]Event, 0, eventLogCap)
	}
	if len(l.buf) < eventLogCap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
	}
	l.next = (l.next + 1) % eventLogCap
	l.total++
}

// snapshot returns events oldest-first.
func (l *eventLog) snapshot() []Event {
	if len(l.buf) < eventLogCap {
		out := make([]Event, len(l.buf))
		copy(out, l.buf)
		return out
	}
	out := make([]Event, 0, eventLogCap)
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// logEvent records a lifecycle event.
func (p *Platform) logEvent(kind EventKind, subject, detail string) {
	p.events.add(Event{Time: p.eng.Now(), Kind: kind, Subject: subject, Detail: detail})
}

// Events returns the retained lifecycle events, oldest first (the log
// keeps the most recent 4096).
func (p *Platform) Events() []Event { return p.events.snapshot() }

// CountEvents tallies retained events by kind.
func (p *Platform) CountEvents() map[EventKind]int {
	out := map[EventKind]int{}
	for _, e := range p.events.snapshot() {
		out[e.Kind]++
	}
	return out
}
