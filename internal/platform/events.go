package platform

import (
	"fmt"
	"strings"

	"fluidfaas/internal/obs"
)

// EventKind classifies platform lifecycle events.
type EventKind int

// Lifecycle events the platform records.
const (
	// EvLaunch: an exclusive instance launched.
	EvLaunch EventKind = iota
	// EvRelease: an exclusive instance released its slices.
	EvRelease
	// EvDemote: an exclusive instance demoted to time sharing (Fig. 8
	// transition 3).
	EvDemote
	// EvPromote: a hot time-sharing function received an exclusive
	// instance (Fig. 8 transition 2).
	EvPromote
	// EvEvict: a time-sharing resident was evicted to host memory
	// (Fig. 8 transition 4).
	EvEvict
	// EvCold: a warm binding aged out (Fig. 8 transition 5).
	EvCold
	// EvMigrate: a pipeline instance migrated to a monolithic one.
	EvMigrate
	// EvDrop: a pending request was abandoned.
	EvDrop
	// EvPoolGrow: the time-sharing pool acquired a slice.
	EvPoolGrow
	// EvPoolShrink: the time-sharing pool released a slice.
	EvPoolShrink
	// EvFault: a slice, GPU or node failed; its instances and bindings
	// were torn down.
	EvFault
	// EvRecover: failed hardware was repaired and rejoined placement.
	EvRecover
	// EvRetry: an in-flight request lost its hardware and was re-routed
	// with backoff.
	EvRetry
	// EvReject: admission control fast-failed a request at arrival (its
	// estimated completion could not meet the deadline).
	EvReject
	// EvShed: brownout shedding refused a low-priority request.
	EvShed
	// EvBrownout: the degradation ladder changed level.
	EvBrownout
	// EvContract: a pipelined instance was contracted to a smaller
	// footprint under brownout.
	EvContract
	// EvSwapIn: a load was served from a parked host-pool copy instead
	// of a remote refetch (swap tier).
	EvSwapIn
	// EvSwapOut: a model's host-pool copy was evicted under memory
	// pressure, or an idle model was swapped out of GPU memory to
	// relieve a brownout (swap tier).
	EvSwapOut
	// EvDegrade: a slice entered gray degradation — it keeps serving,
	// but exec/load/transfer times stretch by the event's severity.
	EvDegrade
	// EvSliceSuspect: a slice's health score (EWMA of
	// observed-vs-declared exec ratio) crossed the suspect threshold,
	// or a quarantined slice was readmitted on probation.
	EvSliceSuspect
	// EvSliceQuarantine: a suspect slice's health score crossed the
	// quarantine threshold; it was pulled from placement and its owner
	// torn down.
	EvSliceQuarantine
	// EvHedge: a request at deadline risk on a suspect slice launched a
	// duplicate on healthy hardware (first completion wins).
	EvHedge
	// EvHedgeCancel: the losing copy of a hedged request was cancelled
	// (or finished unrecorded; its work counts as hedge waste).
	EvHedgeCancel
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvLaunch:
		return "launch"
	case EvRelease:
		return "release"
	case EvDemote:
		return "demote"
	case EvPromote:
		return "promote"
	case EvEvict:
		return "evict"
	case EvCold:
		return "cold"
	case EvMigrate:
		return "migrate"
	case EvDrop:
		return "drop"
	case EvPoolGrow:
		return "pool-grow"
	case EvPoolShrink:
		return "pool-shrink"
	case EvFault:
		return "fault"
	case EvRecover:
		return "recover"
	case EvRetry:
		return "retry"
	case EvReject:
		return "reject"
	case EvShed:
		return "shed"
	case EvBrownout:
		return "brownout"
	case EvContract:
		return "contract"
	case EvSwapIn:
		return "swap-in"
	case EvSwapOut:
		return "swap-out"
	case EvDegrade:
		return "degrade"
	case EvSliceSuspect:
		return "slice-suspect"
	case EvSliceQuarantine:
		return "slice-quarantine"
	case EvHedge:
		return "hedge"
	case EvHedgeCancel:
		return "hedge-cancel"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one recorded platform lifecycle event.
type Event struct {
	Time    float64
	Kind    EventKind
	Subject string // instance ID, function name, or slice ID
	Detail  string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%8.2fs %-11s %-30s %s", e.Time, e.Kind, e.Subject, e.Detail)
}

// eventKindNames maps parseable names to kinds, for -events-kind style
// filters. Kept in sync with String by TestEventKindNames.
var eventKindNames = map[string]EventKind{
	"launch": EvLaunch, "release": EvRelease, "demote": EvDemote,
	"promote": EvPromote, "evict": EvEvict, "cold": EvCold,
	"migrate": EvMigrate, "drop": EvDrop, "pool-grow": EvPoolGrow,
	"pool-shrink": EvPoolShrink, "fault": EvFault, "recover": EvRecover,
	"retry": EvRetry, "reject": EvReject, "shed": EvShed,
	"brownout": EvBrownout, "contract": EvContract,
	"swap-in": EvSwapIn, "swap-out": EvSwapOut,
	"degrade": EvDegrade, "slice-suspect": EvSliceSuspect,
	"slice-quarantine": EvSliceQuarantine,
	"hedge": EvHedge, "hedge-cancel": EvHedgeCancel,
}

// ParseEventKind resolves an event-kind name ("fault", "retry", ...)
// as rendered by EventKind.String.
func ParseEventKind(name string) (EventKind, error) {
	if k, ok := eventKindNames[strings.TrimSpace(name)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("platform: unknown event kind %q", name)
}

// eventLogCap is the default bound on retained events
// (Options.EventLogCap overrides it).
const eventLogCap = obs.DefaultBusCapacity

// logEvent publishes a lifecycle event: subscribers see it losslessly,
// the bounded ring retains it for Events().
func (p *Platform) logEvent(kind EventKind, subject, detail string) {
	p.events.Publish(Event{Time: p.eng.Now(), Kind: kind, Subject: subject, Detail: detail})
}

// EventBus exposes the lifecycle event stream. Subscribe before Run to
// observe every event without ring loss; subscribers must only observe
// (mutating platform state from a subscriber breaks determinism
// guarantees).
func (p *Platform) EventBus() *obs.Bus[Event] { return p.events }

// Events returns the retained lifecycle events, oldest first (the ring
// keeps the most recent Options.EventLogCap, default 4096; see
// TotalEvents and DroppedEvents for what fell off).
func (p *Platform) Events() []Event { return p.events.Snapshot() }

// TotalEvents returns how many lifecycle events the run ever published,
// including those the bounded ring has since overwritten.
func (p *Platform) TotalEvents() int { return p.events.Total() }

// DroppedEvents returns how many lifecycle events the bounded ring
// overwrote (subscribers saw them; Events() no longer does).
func (p *Platform) DroppedEvents() int { return p.events.Dropped() }

// CountEvents tallies retained events by kind. When the ring has
// wrapped (DroppedEvents() > 0) this undercounts; subscribe to the
// EventBus for lossless tallies.
func (p *Platform) CountEvents() map[EventKind]int {
	out := map[EventKind]int{}
	for _, e := range p.events.Snapshot() {
		out[e.Kind]++
	}
	return out
}
