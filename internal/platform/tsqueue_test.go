package platform

import (
	"math"
	"testing"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/scheduler"
)

// tsFixture binds the first two small functions onto one shared slice
// and pre-loads them, returning the platform, bindings and slice.
func tsFixture(t *testing.T) (*Platform, *tsBinding, *tsBinding, *sharedSlice) {
	t.Helper()
	specs := specsFor(t, dnn.Small)[:2]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 3})
	inv := p.inv[0]
	b0 := inv.bindTS(p.funcs[0])
	b1 := inv.bindTS(p.funcs[1])
	if b0 == nil || b1 == nil || b0.shared != b1.shared {
		t.Fatalf("bindings not sharing a slice: %v %v", b0, b1)
	}
	b0.everLoaded = true
	b1.everLoaded = true
	return p, b0, b1, b0.shared
}

// TestEnqueuePriorityTable: the queue orders by deadline minus
// estimated execution and load (§5.3), not by arrival; ties keep
// arrival order (stable sort).
func TestEnqueuePriorityTable(t *testing.T) {
	cases := []struct {
		name string
		// jobs are enqueued in order while the slice is busy; binding
		// index selects b0 or b1, deadline sets the priority input.
		jobs []struct {
			binding  int
			deadline float64
		}
		// wantOrder are job indices in expected queue order.
		wantOrder []int
	}{
		{
			name: "earliest deadline first regardless of arrival",
			jobs: []struct {
				binding  int
				deadline float64
			}{{0, 100}, {0, 50}, {1, 10}},
			wantOrder: []int{2, 1, 0},
		},
		{
			name: "already-sorted input unchanged",
			jobs: []struct {
				binding  int
				deadline float64
			}{{0, 10}, {0, 20}, {1, 300}},
			wantOrder: []int{0, 1, 2},
		},
		{
			name: "same binding same deadline keeps arrival order",
			jobs: []struct {
				binding  int
				deadline float64
			}{{0, 50}, {0, 50}, {0, 50}},
			wantOrder: []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, b0, b1, ss := tsFixture(t)
			bindings := []*tsBinding{b0, b1}
			// A blocker request occupies the slice so the case's jobs
			// queue instead of starting service.
			p.eng.At(0, func() {
				ss.enqueue(p, b0, &request{fn: b0.fn, deadline: 1000})
			})
			jobs := make([]*request, len(tc.jobs))
			p.eng.At(0.001, func() {
				for i, j := range tc.jobs {
					jobs[i] = &request{fn: bindings[j.binding].fn, deadline: j.deadline}
					ss.enqueue(p, bindings[j.binding], jobs[i])
				}
			})
			p.eng.RunUntil(0.002)
			if len(ss.queue) != len(tc.jobs) {
				t.Fatalf("queue length = %d, want %d", len(ss.queue), len(tc.jobs))
			}
			for qi, ji := range tc.wantOrder {
				if ss.queue[qi].rq != jobs[ji] {
					t.Errorf("queue[%d] is job with deadline %v, want job %d (deadline %v)",
						qi, ss.queue[qi].rq.deadline, ji, tc.jobs[ji].deadline)
				}
			}
		})
	}
}

// TestEstLoadTable: the load estimate follows the binding's placement
// state — free when resident, a warm reload from host memory, or a
// full cold start.
func TestEstLoadTable(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 3})
	b := p.inv[0].bindTS(p.funcs[0])
	if b == nil {
		t.Fatal("bindTS failed")
	}
	mem := b.fn.memGB
	cases := []struct {
		name       string
		resident   bool
		everLoaded bool
		want       float64
	}{
		{"resident is free", true, true, 0},
		{"resident overrides load history", true, false, 0},
		{"evicted but warm reloads from host", false, true, keepalive.WarmLoadTime(mem)},
		{"never loaded pays a cold start", false, false, keepalive.ColdStartTime(mem)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b.resident = tc.resident
			b.everLoaded = tc.everLoaded
			if got := b.estLoad(); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("estLoad = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestTSCapacityAdmission: route admits requests to the time-sharing
// binding only up to its capacity; overflow pends for scale-up.
func TestTSCapacityAdmission(t *testing.T) {
	p, b0, _, _ := tsFixture(t)
	fn := b0.fn
	p.eng.At(0.5, func() {
		n := b0.capacity + 2
		for i := 0; i < n; i++ {
			p.route(&request{
				id: i, fn: fn, arrival: 0.5, deadline: 0.5 + fn.spec.SLO,
			})
		}
		if b0.outstanding != b0.capacity {
			t.Errorf("binding outstanding = %d, want capacity %d",
				b0.outstanding, b0.capacity)
		}
		if len(fn.pending) != 2 {
			t.Errorf("pending = %d, want the 2 overflow requests", len(fn.pending))
		}
	})
	p.eng.RunUntil(0.6)
}

// TestEvictThenLoad: serving a non-resident binding evicts the LRU
// resident (Fig. 8 transition 4) and charges the reload to the new
// request's Load.
func TestEvictThenLoad(t *testing.T) {
	p, b0, b1, ss := tsFixture(t)
	rq0 := &request{fn: b0.fn, deadline: 1000}
	rq1 := &request{fn: b1.fn, deadline: 1000}
	p.eng.At(0, func() { ss.enqueue(p, b0, rq0) })
	// By t=30 the b0 request has finished and left b0 resident.
	p.eng.At(30, func() {
		if ss.resident != b0 || !b0.resident {
			t.Fatal("b0 not resident after serving")
		}
		ss.enqueue(p, b1, rq1)
	})
	p.eng.RunUntil(60)

	if p.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", p.Evictions())
	}
	if b0.resident || ss.resident != b1 {
		t.Error("b1 did not replace b0 as the resident")
	}
	if got := b0.state.State(); got != keepalive.Warm {
		t.Errorf("evicted binding state = %v, want warm", got)
	}
	if got := b1.state.State(); got != keepalive.TimeSharing {
		t.Errorf("serving binding state = %v, want time-sharing", got)
	}
	if want := keepalive.WarmLoadTime(b1.fn.memGB); math.Abs(rq1.rec.Load-want) > 1e-9 {
		t.Errorf("b1 request load = %v, want warm reload %v", rq1.rec.Load, want)
	}
	if want := keepalive.WarmLoadTime(b0.fn.memGB); math.Abs(rq0.rec.Load-want) > 1e-9 {
		t.Errorf("b0 request load = %v, want its own warm load %v", rq0.rec.Load, want)
	}
}
