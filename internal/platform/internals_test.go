package platform

import (
	"math"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

// smallCluster builds a 1-node cluster with n default-partition GPUs.
func smallCluster(n int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, n), CPUMemGB: 400,
	})
}

// TestBreakdownResidualConsistency: for every completed request,
// queue+load+exec+transfer must equal the end-to-end latency.
func TestBreakdownResidualConsistency(t *testing.T) {
	p := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 8, 150, 23)
	for i, r := range p.Collector().Records() {
		if r.Dropped {
			continue
		}
		sum := r.Queue + r.Load + r.Exec + r.Transfer
		if math.Abs(sum-r.Latency()) > 1e-6 {
			t.Fatalf("record %d: components %.6f != latency %.6f", i, sum, r.Latency())
		}
		if r.Queue < 0 || r.Load < 0 || r.Exec <= 0 {
			t.Fatalf("record %d has nonsensical components: %+v", i, r)
		}
	}
}

// TestSharedSliceEDFOrdering: on a time-sharing slice, the request with
// the earliest adjusted deadline runs first even if enqueued later.
func TestSharedSliceEDFOrdering(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:2]
	// Give function 1 a much tighter SLO so its requests preempt (in
	// queue order) function 0's.
	specs[1].SLO = specs[1].SLO / 3
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 31})
	inv := p.inv[0]

	// Bind both functions to the same shared slice and pre-load them so
	// no swaps confound ordering.
	b0 := inv.bindTS(p.funcs[0])
	b1 := inv.bindTS(p.funcs[1])
	if b0 == nil || b1 == nil || b0.shared != b1.shared {
		t.Fatalf("bindings not sharing a slice: %v %v", b0, b1)
	}
	b0.everLoaded = true
	b1.everLoaded = true

	// Occupy the slice so both test requests must queue, then enqueue
	// fn0 (loose deadline) before fn1 (tight deadline).
	ss := b0.shared
	p.eng.At(0, func() {
		ss.enqueue(p, b0, &request{fn: p.funcs[0], deadline: 100})
	})
	p.eng.At(0.001, func() {
		ss.enqueue(p, b0, &request{fn: p.funcs[0], deadline: 50})
		ss.enqueue(p, b1, &request{fn: p.funcs[1], deadline: 10})
	})
	// Run and inspect queue order directly: the fn1 job must be first.
	p.eng.RunUntil(0.002)
	if len(ss.queue) != 2 {
		t.Fatalf("queue length = %d, want 2", len(ss.queue))
	}
	if ss.queue[0].b != b1 {
		t.Errorf("EDF queue head is %s, want the tight-deadline function",
			ss.queue[0].b.fn.spec.Name)
	}
}

// TestRebindToFreshSlice: an overloaded binding moves to a new pool
// slice while its queued work drains on the old one.
func TestRebindToFreshSlice(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 31})
	inv := p.inv[0]
	fn := p.funcs[0]
	b := inv.bindTS(fn)
	if b == nil {
		t.Fatal("bindTS failed")
	}
	old := b.shared
	if !inv.rebindToFreshSlice(fn) {
		t.Fatal("rebind failed with free slices available")
	}
	if b.shared == old {
		t.Error("binding did not move")
	}
	if len(old.bindings) != 0 {
		t.Error("old slice still holds the binding")
	}
	if !b.shared.lru.Contains(fn.spec.Name) {
		t.Error("new slice LRU missing the binding")
	}
	// Rebind for a foreign invoker is refused.
	other := &Invoker{p: p, node: cl.Nodes[0]}
	if other.rebindToFreshSlice(fn) && b.shared.inv != other {
		t.Error("foreign invoker rebound the function")
	}
}

// TestReclaimIdlePool: idle pool slices free up when exclusive demand
// cannot be placed; recently-used bindings survive.
func TestReclaimIdlePool(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:2]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 31})
	inv := p.inv[0]
	b0 := inv.bindTS(p.funcs[0])
	if b0 == nil {
		t.Fatal("bindTS failed")
	}
	// Mark the binding recently used: reclaim must keep it.
	b0.tracker.Touch(p.eng.Now())
	if freed := inv.reclaimIdle(); freed != 0 {
		t.Errorf("reclaimed %d slices holding a recently-used binding", freed)
	}
	// Age it out and retry.
	p.eng.At(100, func() {
		if freed := inv.reclaimIdle(); freed != 1 {
			t.Errorf("reclaimed %d slices, want 1", freed)
		}
	})
	p.eng.RunUntil(101)
	if p.funcs[0].ts != nil {
		t.Error("binding survived reclamation with no sibling slice")
	}
	if len(inv.shared) != 0 {
		t.Errorf("pool still has %d slices", len(inv.shared))
	}
}

// TestAdmissionCapacity covers the capacity formula edge cases.
func TestAdmissionCapacity(t *testing.T) {
	if got := admissionCapacity(1.0, 0.3, 1); got != 3 {
		t.Errorf("capacity = %d, want 3", got)
	}
	if got := admissionCapacity(1.0, 2.0, 1); got != 1 {
		t.Errorf("capacity floor = %d, want 1", got)
	}
	if got := admissionCapacity(1.0, 0, 1); got != 1 {
		t.Errorf("capacity with zero bottleneck = %d, want 1", got)
	}
	if got := admissionCapacity(1.0, 0.3, 2); got != 6 {
		t.Errorf("capacity with slack 2 = %d, want 6", got)
	}
}

// TestWarmVsColdLoads: a function returning to a node within the
// keep-alive window loads warm; after the window it pays a cold start.
func TestWarmVsColdLoads(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.ESG{}, Seed: 31})
	fn := p.funcs[0]
	node := cl.Nodes[0]
	cold := p.loadTimeFor(fn, node, 0)
	if want := keepalive.ColdStartTime(fn.memGB); math.Abs(cold-want) > 1e-9 {
		t.Errorf("first load = %v, want cold %v", cold, want)
	}
	fn.lastNodeUse[node.ID] = 0
	warm := p.loadTimeFor(fn, node, 100)
	if want := keepalive.WarmLoadTime(fn.memGB); math.Abs(warm-want) > 1e-9 {
		t.Errorf("load within window = %v, want warm %v", warm, want)
	}
	late := p.loadTimeFor(fn, node, p.opts.KeepAlive+1)
	if late != cold {
		t.Errorf("load after window = %v, want cold %v", late, cold)
	}
}

// TestCrossPolicyDeterminism: all three policies are reproducible.
func TestCrossPolicyDeterminism(t *testing.T) {
	for _, pol := range []scheduler.Policy{&scheduler.ESG{}, &scheduler.INFlessMIG{}} {
		a := runOne(t, pol, dnn.Medium, 6, 120, 3)
		b := runOne(t, pol, dnn.Medium, 6, 120, 3)
		ra, rb := a.Collector().Records(), b.Collector().Records()
		if len(ra) != len(rb) {
			t.Fatalf("%s: lengths differ", pol.Name())
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: record %d differs", pol.Name(), i)
			}
		}
	}
}

// TestTSStateTransitionsExercised: under a rate that oscillates around
// the hotness threshold, bindings visit warm and get evicted.
func TestTSStateTransitionsExercised(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 5})
	var streams []trace.StreamSpec
	for i := range specs {
		streams = append(streams, trace.StreamSpec{
			Func: i, MeanRPS: 0.3, BurstFactor: 6, BurstFraction: 0.1, BurstLen: 15,
		})
	}
	tr := trace.Generate(trace.Spec{Duration: 400, Seed: 5, Streams: streams})
	p.Run(tr, 60)
	if p.Evictions() == 0 {
		t.Error("no evictions under oscillating low-rate load")
	}
	hit := p.Collector().SLOHitRate()
	if hit < 0.2 {
		t.Errorf("SLO hit %.2f suspiciously low even for bursty cold traffic", hit)
	}
}

// TestArriveUnknownFunctionPanics guards the trace/spec contract.
func TestArriveUnknownFunctionPanics(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.ESG{}, Seed: 1})
	tr := &trace.Trace{
		Requests: []trace.Request{{ID: 0, Func: 5, Arrival: 1}},
		Duration: 10, NumFuncs: 6,
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown function did not panic")
		}
	}()
	p.Run(tr, 1)
}

// TestBatchingMode: with batching on, stages coalesce requests, every
// request completes, and accounting stays consistent.
func TestBatchingMode(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(2)
	p := New(cl, specs, Options{
		Policy: &scheduler.ESG{}, Seed: 2, MaxBatch: 4, BatchWindow: 0.05,
	})
	tr := trace.Generate(trace.Spec{Duration: 120, Seed: 2, Streams: []trace.StreamSpec{
		{Func: 0, MeanRPS: 10},
	}})
	p.Run(tr, 60)
	col := p.Collector()
	if col.Len() != len(tr.Requests) {
		t.Fatalf("recorded %d of %d", col.Len(), len(tr.Requests))
	}
	for i, r := range col.Records() {
		if r.Dropped {
			continue
		}
		sum := r.Queue + r.Load + r.Exec + r.Transfer
		if math.Abs(sum-r.Latency()) > 1e-6 {
			t.Fatalf("record %d inconsistent: %.6f vs %.6f", i, sum, r.Latency())
		}
	}
	if col.Completed() < int(0.9*float64(col.Len())) {
		t.Errorf("completed %d of %d under batching", col.Completed(), col.Len())
	}
}

// TestRoutingOrders: all three orders serve the workload; the paper's
// latency-ascending order must not lose to the adversarial one.
func TestRoutingOrders(t *testing.T) {
	hits := map[RoutingOrder]float64{}
	for _, order := range []RoutingOrder{RouteLatencyAsc, RouteLatencyDesc, RouteRoundRobin} {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 4, Routing: order})
		tr := flatTrace(specs, 8, 200, 4)
		p.Run(tr, 40)
		hits[order] = p.Collector().SLOHitRate()
	}
	if hits[RouteLatencyAsc] < hits[RouteLatencyDesc]-0.05 {
		t.Errorf("latency-ascending routing (%.2f) lost badly to slowest-first (%.2f)",
			hits[RouteLatencyAsc], hits[RouteLatencyDesc])
	}
}

// TestHybridPartitionRun: the platform works on heterogeneous per-GPU
// partitions (Table 7 Hybrid).
func TestHybridPartitionRun(t *testing.T) {
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.Spec{Nodes: 2, GPUConfigs: mig.HybridNode(), CPUMemGB: 1440})
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 6})
	tr := flatTrace(specs, 6, 150, 6)
	p.Run(tr, 40)
	if p.Collector().Len() != len(tr.Requests) {
		t.Fatalf("recorded %d of %d", p.Collector().Len(), len(tr.Requests))
	}
	if hit := p.Collector().SLOHitRate(); hit < 0.4 {
		t.Errorf("hybrid-partition SLO hit %.2f suspiciously low", hit)
	}
}

// TestEventLog: the lifecycle events of a run are recorded in order and
// cover the expected kinds.
func TestEventLog(t *testing.T) {
	p := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 8, 150, 23)
	evs := p.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	last := -1.0
	for _, e := range evs {
		if e.Time < last {
			t.Fatal("events out of order")
		}
		last = e.Time
		if e.String() == "" {
			t.Fatal("empty event render")
		}
	}
	counts := p.CountEvents()
	if counts[EvLaunch] == 0 {
		t.Error("no launch events")
	}
	if counts[EvLaunch] > eventLogCap && len(evs) != eventLogCap {
		t.Error("ring buffer not bounded")
	}
	if p.Evictions() > 0 && counts[EvEvict] == 0 {
		t.Error("evictions happened but no evict events")
	}
	if p.Migrations() > 0 && counts[EvMigrate] == 0 {
		t.Error("migrations happened but no migrate events")
	}
}

// TestEventLogRing: the ring keeps only the newest entries, and the
// platform reports what fell off instead of dropping silently.
func TestEventLogRing(t *testing.T) {
	l := obs.NewBus[Event](eventLogCap)
	for i := 0; i < eventLogCap+10; i++ {
		l.Publish(Event{Time: float64(i)})
	}
	snap := l.Snapshot()
	if len(snap) != eventLogCap {
		t.Fatalf("snapshot = %d, want %d", len(snap), eventLogCap)
	}
	if snap[0].Time != 10 || snap[len(snap)-1].Time != float64(eventLogCap+9) {
		t.Errorf("ring window = [%v, %v], want [10, %d]",
			snap[0].Time, snap[len(snap)-1].Time, eventLogCap+9)
	}
	if l.Total() != eventLogCap+10 || l.Dropped() != 10 {
		t.Errorf("total/dropped = %d/%d, want %d/10", l.Total(), l.Dropped(), eventLogCap+10)
	}
}

// TestEventLogCapConfigurable: a platform run with a tiny ring retains
// only that many events, counts the overflow, and a bus subscriber
// still sees every event losslessly.
func TestEventLogCapConfigurable(t *testing.T) {
	specs := specsFor(t, dnn.Medium)
	cl := smallCluster(8)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 23, EventLogCap: 16})
	var streamed []Event
	p.EventBus().Subscribe(func(e Event) { streamed = append(streamed, e) })
	tr := flatTrace(specs, 8, 150, 23)
	p.Run(tr, 40)

	if p.TotalEvents() <= 16 {
		t.Skipf("run produced only %d events; cannot exercise wraparound", p.TotalEvents())
	}
	evs := p.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring cap 16", len(evs))
	}
	if got := p.DroppedEvents(); got != p.TotalEvents()-16 {
		t.Errorf("DroppedEvents = %d, want %d", got, p.TotalEvents()-16)
	}
	if len(streamed) != p.TotalEvents() {
		t.Errorf("subscriber saw %d of %d events; the bus must be lossless",
			len(streamed), p.TotalEvents())
	}
	// The ring holds exactly the newest events, in order.
	tail := streamed[len(streamed)-16:]
	for i, e := range evs {
		if e != tail[i] {
			t.Fatalf("ring[%d] = %+v, want newest-16 window %+v", i, e, tail[i])
		}
	}
}

// TestEventKindNames: every EventKind round-trips through its String
// form and ParseEventKind.
func TestEventKindNames(t *testing.T) {
	for k := EvLaunch; k <= EvHedgeCancel; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil {
			t.Errorf("ParseEventKind(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("ParseEventKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseEventKind("no-such-kind"); err == nil {
		t.Error("ParseEventKind accepted an unknown name")
	}
}

// TestFragmentationSampled: the fragmentation series is recorded and
// bounded; under medium load with the 4g slices busy it must show
// meaningful fragmentation.
func TestFragmentationSampled(t *testing.T) {
	p := runOne(t, &scheduler.ESG{}, dnn.Medium, 8, 150, 23)
	if p.Fragmentation.Len() == 0 {
		t.Fatal("no fragmentation samples")
	}
	for _, v := range p.Fragmentation.Values {
		if v < 0 || v > 1 {
			t.Fatalf("fragmentation sample out of range: %v", v)
		}
	}
	if p.Fragmentation.Max() <= 0 {
		t.Error("fragmentation never rose above zero under medium ESG load")
	}
}
