package platform

import (
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
)

// runWithPlanCache runs one platform simulation with the placement-plan
// cache on or off.
func runWithPlanCache(t *testing.T, disable bool, seed int64) *Platform {
	t.Helper()
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: seed, DisablePlanCache: disable,
	})
	tr := flatTrace(specs, 8, 120, seed)
	p.Run(tr, 40)
	return p
}

// TestPlanCacheIdentity: the plan cache is a pure memoization — same
// seed with the cache on and off must produce bit-identical request
// records, platform counters, lifecycle event sequences, and the
// utilisation timeline. This is the tentpole's behaviour-invariance
// contract, the same acceptance criterion the observability layer meets
// in TestObsZeroCostIdentity.
func TestPlanCacheIdentity(t *testing.T) {
	cached := runWithPlanCache(t, false, 77)
	plain := runWithPlanCache(t, true, 77)

	a, b := cached.Collector().Records(), plain.Collector().Records()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("request records diverge with plan cache on: %d vs %d records", len(a), len(b))
	}
	if cached.Launched() != plain.Launched() ||
		cached.Evictions() != plain.Evictions() ||
		cached.Migrations() != plain.Migrations() ||
		cached.TotalEvents() != plain.TotalEvents() {
		t.Fatal("platform counters diverge with plan cache on")
	}
	if !reflect.DeepEqual(cached.Events(), plain.Events()) {
		t.Fatal("lifecycle event sequences diverge with plan cache on")
	}
	if !reflect.DeepEqual(cached.UtilGPCs, plain.UtilGPCs) {
		t.Fatal("utilisation timeline diverges with plan cache on")
	}

	// The invariance proof is only interesting if the cache actually
	// served lookups on this workload.
	cs, ps := cached.PlannerStats(), plain.PlannerStats()
	if cs.Hits == 0 {
		t.Error("plan cache recorded no hits over a steady-state run")
	}
	if ps.Lookups() != 0 {
		t.Errorf("DisablePlanCache run still consulted planners: %+v", ps)
	}
}

// TestRoundRobinAdvancesOnlyOnAdmit is the regression test for the
// satellite routing bugfix: the round-robin cursor used to move on
// every routedInstances call, so a request that found all instances
// saturated still rotated the cursor — and under sustained saturation
// the rotation decoupled from actual admits, skewing fairness. The
// cursor must move only when a request admits, and then past the
// instance that served it.
func TestRoundRobinAdvancesOnlyOnAdmit(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{
		Policy:  &scheduler.FluidFaaS{DisableTimeSharing: true},
		Routing: RouteRoundRobin,
		Seed:    3,
	})
	fn := p.funcs[0]
	node := p.Cluster().Nodes[0]

	// Three real monolithic instances, one per default-partition slice.
	for _, sl := range node.FreeSlices(0) {
		pl, err := monoPlan(fn, sl.Type)
		if err != nil {
			t.Fatalf("small function should run monolithically on %v: %v", sl.Type, err)
		}
		p.launchInstance(fn, node, pl, []*mig.Slice{sl}, 0)
	}
	if len(fn.instances) != 3 {
		t.Fatalf("launched %d instances, want 3", len(fn.instances))
	}

	// Saturate everything: a request that admits nowhere must leave the
	// cursor exactly where it was (the old code advanced it here).
	saved := make([]int, 3)
	for i, inst := range fn.instances {
		saved[i] = inst.capacity
		inst.capacity = 0
	}
	fn.rrNext = 0
	p.InjectRequest(0, 100)
	if fn.rrNext != 0 {
		t.Errorf("saturated scan moved the round-robin cursor to %d", fn.rrNext)
	}
	if len(fn.pending) != 1 {
		t.Fatalf("saturated request should pend, pending = %d", len(fn.pending))
	}

	// Open capacity at offset 1 only: the admit there must move the
	// cursor past the serving instance, to offset 2.
	fn.instances[1].capacity = saved[1]
	p.InjectRequest(0, 101)
	if fn.instances[1].outstanding != 1 {
		t.Fatalf("request did not admit at the open instance")
	}
	if fn.rrNext != 2 {
		t.Errorf("cursor = %d after admit at offset 1, want 2", fn.rrNext)
	}
}
