package platform

import (
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

// specsFor builds FunctionSpecs for the paper's applications at one
// variant (excluded variants are skipped); IDs are dense in app order.
func specsFor(t *testing.T, v dnn.Variant) []FunctionSpec {
	t.Helper()
	var out []FunctionSpec
	for _, a := range dnn.Apps() {
		if a.Excluded(v) {
			continue
		}
		d := a.BuildDAG(v)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			t.Fatal(err)
		}
		slo, _ := a.SLOLatency(v, 1.5)
		out = append(out, FunctionSpec{
			ID: len(out), Name: a.Name + "/" + v.String(),
			DAG: d, Parts: parts, SLO: slo,
		})
	}
	return out
}

func flatTrace(specs []FunctionSpec, rps, duration float64, seed int64) *trace.Trace {
	var streams []trace.StreamSpec
	for i := range specs {
		streams = append(streams, trace.StreamSpec{Func: i, MeanRPS: rps, RateSigma: 0.3})
	}
	return trace.Generate(trace.Spec{Duration: duration, Seed: seed, Streams: streams})
}

func runOne(t *testing.T, pol scheduler.Policy, v dnn.Variant, rps, duration float64, seed int64) *Platform {
	t.Helper()
	specs := specsFor(t, v)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, Options{Policy: pol, Seed: seed})
	tr := flatTrace(specs, rps, duration, seed)
	p.Run(tr, 60)
	if p.Collector().Len() != len(tr.Requests) {
		t.Fatalf("%s: recorded %d of %d requests", pol.Name(),
			p.Collector().Len(), len(tr.Requests))
	}
	return p
}

func TestLightWorkloadAllPoliciesMeetSLO(t *testing.T) {
	for _, pol := range []scheduler.Policy{&scheduler.FluidFaaS{}, &scheduler.ESG{}, &scheduler.INFlessMIG{}} {
		p := runOne(t, pol, dnn.Small, 5, 240, 11)
		if hit := p.Collector().SLOHitRate(); hit < 0.85 {
			t.Errorf("%s light SLO hit rate = %.2f, want >= 0.85", pol.Name(), hit)
		}
	}
}

func TestMediumWorkloadFluidFaaSWins(t *testing.T) {
	ff := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 12, 300, 13)
	esg := runOne(t, &scheduler.ESG{}, dnn.Medium, 12, 300, 13)
	ffHit := ff.Collector().SLOHitRate()
	esgHit := esg.Collector().SLOHitRate()
	if ffHit <= esgHit {
		t.Errorf("medium: fluidfaas SLO %.2f should beat esg %.2f", ffHit, esgHit)
	}
	ffThr := ff.Collector().Throughput(300)
	esgThr := esg.Collector().Throughput(300)
	if ffThr < esgThr {
		t.Errorf("medium: fluidfaas throughput %.1f below esg %.1f", ffThr, esgThr)
	}
}

func TestHeavyWorkloadThroughputGap(t *testing.T) {
	ff := runOne(t, &scheduler.FluidFaaS{}, dnn.Large, 11, 300, 17)
	esg := runOne(t, &scheduler.ESG{}, dnn.Large, 11, 300, 17)
	ffThr := ff.Collector().Throughput(300)
	esgThr := esg.Collector().Throughput(300)
	if ffThr < esgThr*1.2 {
		t.Errorf("heavy: fluidfaas throughput %.1f not clearly above esg %.1f", ffThr, esgThr)
	}
	if ffHit, esgHit := ff.Collector().SLOHitRate(), esg.Collector().SLOHitRate(); ffHit <= esgHit {
		t.Errorf("heavy: fluidfaas SLO %.2f should beat esg %.2f", ffHit, esgHit)
	}
}

func TestDeterminism(t *testing.T) {
	a := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 8, 180, 5)
	b := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 8, 180, 5)
	ra, rb := a.Collector().Records(), b.Collector().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra[i], rb[i])
		}
	}
	if a.Launched() != b.Launched() || a.Evictions() != b.Evictions() {
		t.Error("platform counters differ across identical runs")
	}
}

// Low-rate functions stay in time sharing and share one slice through
// eviction; the baselines would hold one slice per function.
func TestTimeSharingEviction(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 200,
	})
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 3})
	// Very low rate: far below the 30% hotness threshold.
	var streams []trace.StreamSpec
	for i := range specs {
		streams = append(streams, trace.StreamSpec{Func: i, MeanRPS: 0.08})
	}
	tr := trace.Generate(trace.Spec{Duration: 400, Seed: 3, Streams: streams})
	p.Run(tr, 60)
	if p.Evictions() == 0 {
		t.Error("no evictions despite multiple cold functions sharing slices")
	}
	// Sub-threshold load should stay in time sharing. A couple of
	// transient launches are tolerated: shedding client-timed-out queue
	// jobs frees binding slots, and the extra admitted work can briefly
	// push a swap-thrashed binding over the hotness threshold while it
	// has overflow (Fig. 8 transition 2).
	if p.Launched() > 2 {
		t.Errorf("launched %d exclusive instances for sub-threshold load", p.Launched())
	}
	if hit := p.Collector().SLOHitRate(); hit > 0.9 {
		// Cold starts and reloads should cost something; a perfect rate
		// would mean eviction was never exercised.
		t.Logf("note: SLO hit rate %.2f (evictions=%d)", hit, p.Evictions())
	}
}

// Exclusive keep-alive: after load stops, baselines hold their slices
// until the timeout; FluidFaaS demotes and frees them much sooner.
func TestKeepAliveRelease(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	mk := func(pol scheduler.Policy) *Platform {
		cl := cluster.New(cluster.Spec{
			Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 200,
		})
		p := New(cl, specs, Options{Policy: pol, Seed: 9})
		tr := trace.Generate(trace.Spec{Duration: 900, Seed: 9, Streams: []trace.StreamSpec{
			// Busy for the first ~120 s, then silent.
			{Func: 0, MeanRPS: 4, BurstFactor: 1},
		}})
		// Truncate arrivals after 120 s.
		var kept []trace.Request
		for _, r := range tr.Requests {
			if r.Arrival < 120 {
				kept = append(kept, r)
			}
		}
		tr.Requests = kept
		p.Run(tr, 780)
		return p
	}
	esg := mk(&scheduler.ESG{})
	// ESG holds the slice for the whole keep-alive window after the last
	// request: occupied time >= 120 + 600.
	occ := esg.Cluster().AllGPUs()[0].Slices[2].OccupiedTime(900) // 1g slice
	if occ < 600 {
		t.Errorf("esg occupied 1g slice for %.0f s, want >= 600 (exclusive keep-alive)", occ)
	}
	ff := mk(&scheduler.FluidFaaS{})
	// FluidFaaS demotes exclusive instances shortly after the load
	// stops; by the end nothing exclusive remains.
	if n := len(ff.funcs[0].instances); n != 0 {
		t.Errorf("fluidfaas still holds %d exclusive instances long after idle", n)
	}
	// Both systems pay the unavoidable cold-start misses; the hit rates
	// must be comparable (the light-workload result of Fig. 9).
	ffHit, esgHit := ff.Collector().SLOHitRate(), esg.Collector().SLOHitRate()
	if ffHit < esgHit-0.15 {
		t.Errorf("fluidfaas SLO hit %.2f far below esg %.2f in light load", ffHit, esgHit)
	}
}

func TestPipelineMigration(t *testing.T) {
	// Three GPUs, two hot medium functions whose combined demand exceeds
	// the monolithic slots, so pipelines form on the 1g fragments. When
	// function 0 stops at t=150 its big slices free, and a surviving
	// pipeline must migrate to a monolithic instance.
	specs := specsFor(t, dnn.Medium)[:2]
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 3), CPUMemGB: 200,
	})
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 21, IdleDemote: 10})
	tr := trace.Generate(trace.Spec{Duration: 400, Seed: 21, Streams: []trace.StreamSpec{
		{Func: 0, MeanRPS: 6}, // hot, grabs the big slices, stops at t=150
		{Func: 1, MeanRPS: 4}, // hot throughout; overflow pipelines
	}})
	var kept []trace.Request
	for _, r := range tr.Requests {
		if r.Func == 0 && r.Arrival > 150 {
			continue
		}
		kept = append(kept, r)
	}
	tr.Requests = kept
	p.Run(tr, 60)
	if p.Migrations() == 0 {
		t.Error("no pipeline migration despite a freed large slice")
	}
}

func TestMigrationDisabledAblation(t *testing.T) {
	specs := specsFor(t, dnn.Medium)[:2]
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 200,
	})
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{DisableMigration: true}, Seed: 21, IdleDemote: 10,
	})
	tr := flatTrace(specs, 3, 300, 21)
	p.Run(tr, 60)
	if p.Migrations() != 0 {
		t.Errorf("migrations = %d with migration disabled", p.Migrations())
	}
}

// After the run + keep-alive-free workload, no slice should be leaked to
// a phantom owner: every allocation is owned by a live instance or the
// time-sharing pool.
func TestNoSliceLeak(t *testing.T) {
	p := runOne(t, &scheduler.FluidFaaS{}, dnn.Small, 4, 200, 7)
	owners := map[string]bool{}
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			owners[inst.id] = true
		}
	}
	for _, inv := range p.inv {
		owners[inv.sharedOwner()] = true
	}
	for _, g := range p.Cluster().AllGPUs() {
		for _, s := range g.Slices {
			if !s.Free() && !owners[s.Owner] {
				t.Errorf("slice %s owned by unknown %q", s.ID(), s.Owner)
			}
		}
	}
	// All requests accounted for, none stuck in flight.
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			if inst.outstanding != 0 {
				t.Errorf("instance %s still has %d outstanding", inst.id, inst.outstanding)
			}
		}
		if fn.ts != nil && fn.ts.outstanding != 0 {
			t.Errorf("ts binding of %s still has %d outstanding", fn.spec.Name, fn.ts.outstanding)
		}
	}
}

func TestGPUTimeAccounting(t *testing.T) {
	p := runOne(t, &scheduler.ESG{}, dnn.Small, 5, 200, 7)
	gpu := p.Cluster().GPUTime(260)
	mig := p.Cluster().MIGTime(260)
	if gpu <= 0 || mig <= 0 {
		t.Fatalf("GPU time %.1f / MIG time %.1f should be positive", gpu, mig)
	}
	if gpu > mig+1e-9 {
		t.Errorf("GPU (union) time %.1f exceeds MIG (sum) time %.1f", gpu, mig)
	}
}

func TestUtilizationSampled(t *testing.T) {
	p := runOne(t, &scheduler.FluidFaaS{}, dnn.Medium, 8, 200, 7)
	if p.UtilGPCs.Len() == 0 || p.UtilGPUs.Len() == 0 || p.OccupiedGPCs.Len() == 0 {
		t.Fatal("utilization timelines empty")
	}
	if p.UtilGPCs.Max() <= 0 {
		t.Error("no GPC activity sampled")
	}
	for i, v := range p.UtilGPCs.Values {
		if v < 0 || v > 1 {
			t.Fatalf("sample %d out of range: %v", i, v)
		}
	}
}

func TestBreakdownComponentsPresent(t *testing.T) {
	p := runOne(t, &scheduler.FluidFaaS{}, dnn.Large, 10, 240, 19)
	b := p.Collector().MeanBreakdown()
	if b.Exec <= 0 {
		t.Error("no exec time in breakdown")
	}
	if b.Transfer <= 0 {
		t.Error("no transfer time despite pipelined instances")
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	cl := cluster.New(cluster.DefaultSpec())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil policy accepted")
			}
		}()
		New(cl, nil, Options{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("sparse IDs accepted")
			}
		}()
		New(cl, []FunctionSpec{{ID: 3}}, Options{Policy: &scheduler.FluidFaaS{}})
	}()
}
