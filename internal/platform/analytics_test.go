package platform

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/analytics"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/scheduler"
)

// runMixed runs an instrumented simulation through the adversarial mix:
// hardware faults (retried and failed requests), overload control
// (rejections, fair queueing, brownout), pipeline migration, and heavy
// load (drops). This is the span-chain torture chamber the critical-
// path reconstruction has to survive.
func runMixed(t *testing.T, rec *obs.Recorder, seed int64) *Platform {
	t.Helper()
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: seed, Obs: rec,
		Faults:   &faults.Spec{SliceRate: 0.08, SliceMTTR: 30},
		Overload: overload.Config{Admission: true, FairQueue: true, Brownout: true},
	})
	tr := flatTrace(specs, 12, 150, seed)
	p.Run(tr, 40)
	return p
}

// TestAnalyticsComponentSum: for every finalised request in the mixed
// run, the reconstructed components sum exactly to the recorded
// end-to-end latency, and for served requests each component matches
// the metrics layer's own breakdown.
func TestAnalyticsComponentSum(t *testing.T) {
	rec := obs.NewRecorder()
	p := runMixed(t, rec, 42)

	records := map[[2]int]metrics.RequestRecord{}
	for _, r := range p.Collector().Records() {
		records[[2]int{r.Func, r.ID}] = r
	}
	paths := analytics.Reconstruct(rec.Spans())
	if len(paths) != len(records) {
		t.Fatalf("reconstructed %d paths, collector has %d records", len(paths), len(records))
	}

	const tol = 1e-9
	retried, served := 0, 0
	for _, pa := range paths {
		r, ok := records[[2]int{pa.Func, pa.Req}]
		if !ok {
			t.Fatalf("path %d/%d has no record", pa.Func, pa.Req)
		}
		if d := math.Abs(pa.Comp.Total() - r.Latency()); d > tol {
			t.Errorf("req %d/%d (%s): components sum %v != latency %v",
				pa.Func, pa.Req, pa.Outcome, pa.Comp.Total(), r.Latency())
		}
		if pa.Retries != r.Retries {
			t.Errorf("req %d/%d: path retries %d != record retries %d",
				pa.Func, pa.Req, pa.Retries, r.Retries)
		}
		if r.Retries > 0 {
			retried++
		}
		if pa.Outcome != "served" {
			continue
		}
		served++
		// Served requests: the span-derived components must agree with
		// the metrics layer's independent accounting — exec, load and
		// transfer exactly, and queue+retry together covering the
		// completion residual.
		if math.Abs(pa.Comp.Exec-r.Exec) > tol ||
			math.Abs(pa.Comp.Load-r.Load) > tol ||
			math.Abs(pa.Comp.Transfer-r.Transfer) > tol ||
			math.Abs(pa.Comp.Queue+pa.Comp.Retry-r.Queue) > tol {
			t.Errorf("req %d/%d: components %+v disagree with record exec=%v load=%v transfer=%v queue=%v",
				pa.Func, pa.Req, pa.Comp, r.Exec, r.Load, r.Transfer, r.Queue)
		}
	}
	if served == 0 {
		t.Fatal("mixed run served nothing; the invariant was never exercised")
	}
	if retried == 0 && p.Retries() > 0 {
		t.Error("platform retried requests but no path shows retries")
	}
}

// TestAnalyticsPurity: attaching analytics changes nothing — the
// instrumented run's records and counters are identical to the bare
// run's — and the analytics snapshot itself is byte-identical across
// same-seed runs.
func TestAnalyticsPurity(t *testing.T) {
	plain := runMixed(t, nil, 7)

	var reports [2]bytes.Buffer
	var traced *Platform
	for i := 0; i < 2; i++ {
		rec := obs.NewRecorder()
		traced = runMixed(t, rec, 7)
		rp := analytics.Analyze(analytics.Config{}, rec)
		if err := rp.WriteJSON(&reports[i]); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(plain.Collector().Records(), traced.Collector().Records()) {
		t.Fatal("request records diverge with analytics attached")
	}
	if plain.Launched() != traced.Launched() ||
		plain.Evictions() != traced.Evictions() ||
		plain.Migrations() != traced.Migrations() ||
		plain.Retries() != traced.Retries() ||
		plain.Rejected() != traced.Rejected() ||
		plain.TotalEvents() != traced.TotalEvents() {
		t.Fatal("platform counters diverge with analytics attached")
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Error("analytics reports differ across same-seed runs")
	}
}

// TestSnapshotDeterministic: the introspection snapshot marshals
// byte-identically across same-seed runs, repeated marshalling does not
// perturb it, and its shape covers the cluster.
func TestSnapshotDeterministic(t *testing.T) {
	var snaps [2][]byte
	var p *Platform
	for i := 0; i < 2; i++ {
		p = runMixed(t, nil, 13)
		b, err := json.Marshal(p.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatal("snapshots differ across same-seed runs")
	}
	again, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snaps[1], again) {
		t.Fatal("taking a snapshot twice produced different documents")
	}

	s := p.Snapshot()
	var nSlices int
	for _, node := range p.Cluster().Nodes {
		for _, g := range node.GPUs {
			nSlices += len(g.Slices)
		}
	}
	if len(s.Slices) != nSlices {
		t.Errorf("snapshot has %d slices, cluster has %d", len(s.Slices), nSlices)
	}
	if len(s.Functions) == 0 {
		t.Error("snapshot has no functions")
	}
	valid := map[string]bool{
		"cold": true, "warm": true, "time-sharing": true, "exclusive-hot": true,
	}
	for _, fs := range s.Functions {
		if !valid[fs.KeepAlive] {
			t.Errorf("function %s has invalid keep-alive state %q", fs.Name, fs.KeepAlive)
		}
	}
	if s.Counters.Launched != p.Launched() {
		t.Errorf("snapshot launched %d != platform %d", s.Counters.Launched, p.Launched())
	}
}
