package platform

import (
	"fmt"
	"math"

	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/pipeline"
)

// RejectReason is the typed cause of an admission-time rejection,
// replacing the bare strings reject used to take: the reason selects
// the event kind, the per-reason counter, and the provenance label; the
// human-readable detail rides alongside.
type RejectReason int

const (
	// RejectShed: brownout priority shedding turned the request away.
	RejectShed RejectReason = iota
	// RejectDeadline: the completion estimate already missed the deadline.
	RejectDeadline
	numRejectReasons
)

// String names the reason for metrics labels and decision records.
func (r RejectReason) String() string {
	switch r {
	case RejectShed:
		return "shed-priority"
	case RejectDeadline:
		return "deadline-estimate"
	}
	return fmt.Sprintf("RejectReason(%d)", int(r))
}

// eventKind maps the reason to the lifecycle event it emits.
func (r RejectReason) eventKind() EventKind {
	if r == RejectShed {
		return EvShed
	}
	return EvReject
}

// This file integrates the overload-control subsystem
// (internal/overload) with the platform: SLO-aware admission at route,
// the node-pressure signal feeding the brownout ladder, and the
// ladder's effects — shortened keep-alive windows, early demotion,
// pipeline contraction, and priority shedding. Everything here is a
// no-op when the corresponding opts.Overload feature is off, keeping
// feature-off runs bit-for-bit identical.

// admissionReject decides whether rq is turned away at arrival. Shed
// rejections (brownout) are checked first, then the SLO-aware
// completion estimate. Returns true when the request was rejected and
// recorded.
func (p *Platform) admissionReject(rq *request) bool {
	oc := p.opts.Overload
	fn := rq.fn
	if oc.Brownout && p.ladder.Level() >= overload.LevelShed &&
		fn.spec.Priority < p.maxPriority {
		// With the swap tier on and pool headroom, prefer swapping an
		// idle model out of GPU memory over shedding this request: the
		// demotion frees capacity, and the request takes the normal
		// routing path instead of a rejection.
		if !p.trySwapRelief() {
			p.shed++
			var inputs []decisions.KV
			if p.decOn() {
				inputs = []decisions.KV{
					kv("brownout", p.ladder.Level().String()),
					kvI("priority", fn.spec.Priority),
					kvI("floor", p.maxPriority),
					kvF("pressure", p.lastPressure),
				}
			}
			p.reject(rq, RejectShed, fmt.Sprintf("brownout %s: priority %d below %d",
				p.ladder.Level(), fn.spec.Priority, p.maxPriority), inputs)
			return true
		}
	}
	if !oc.Admission || fn.spec.SLO <= 0 {
		return false
	}
	est := p.completionEstimate(fn)
	if p.eng.Now()+est*oc.AdmissionSlack > rq.deadline {
		// Rejections are still demand: autoscaling must see them, or a
		// cold function whose whole first wave fast-fails never scales
		// up and rejects forever.
		fn.rejectDemand++
		p.kickScaleUp()
		var inputs []decisions.KV
		if p.decOn() {
			inputs = []decisions.KV{
				kvF("estimate", est),
				kvF("slack", oc.AdmissionSlack),
				kvF("deadline", rq.deadline),
			}
		}
		p.reject(rq, RejectDeadline,
			fmt.Sprintf("estimated completion %.3fs past deadline", est), inputs)
		return true
	}
	return false
}

// reject fast-fails a request at arrival: the record carries the
// rejection instant as its completion, so fast-fail latency is bounded
// (zero wait) and distinct from a timeout drop. inputs (nil unless
// provenance is on) become the Reject decision's inputs.
func (p *Platform) reject(rq *request, why RejectReason, detail string, inputs []decisions.KV) {
	rq.rec.Dropped = true
	rq.rec.Rejected = true
	rq.rec.Completion = p.eng.Now()
	p.rejected++
	p.rejectReasons[why]++
	p.logEvent(why.eventKind(), rq.fn.spec.Name, detail)
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindReject, Func: rq.fn.spec.Name,
			Req: rq.id, Attempt: rq.attempts,
			Rule: why.String(), Outcome: detail, Inputs: inputs,
		})
	}
	p.record(rq.rec)
}

// RejectedByReason returns admission rejections keyed by typed reason.
func (p *Platform) RejectedByReason() map[string]int {
	out := make(map[string]int, numRejectReasons)
	for r := RejectReason(0); r < numRejectReasons; r++ {
		out[r.String()] = p.rejectReasons[r]
	}
	return out
}

// completionEstimate is the optimistic end-to-end estimate for a new
// request of fn, mirroring the routing order: the best exclusive
// instance with capacity, else the time-sharing binding's queue, else
// the scale-up path (a fresh instance plus the pending backlog ahead).
func (p *Platform) completionEstimate(fn *Function) float64 {
	now := p.eng.Now()
	best := math.Inf(1)
	for _, inst := range fn.instances {
		if !inst.hasCapacity() {
			continue
		}
		wait := inst.loadEndsAt - now
		if wait < 0 {
			wait = 0
		}
		est := wait + float64(inst.outstanding)*inst.plan.Bottleneck + inst.plan.Latency
		if est < best {
			best = est
		}
	}
	if b := fn.ts; b != nil && b.outstanding < b.capacity {
		ss := b.shared
		est := ss.queuedWork + ss.servingWork + b.estLoad() + b.execOn()
		if est < best {
			best = est
		}
	}
	if !math.IsInf(best, 1) {
		return best
	}
	// Scale-up path: a new instance must load and then chew through
	// the backlog ahead of this request. Optimistic about parallelism
	// (scale-up launches up to 4 instances a pass).
	exec := fn.bestExec()
	load := keepalive.ColdStartTime(fn.memGB)
	for _, last := range fn.lastNodeUse {
		if now-last < p.opts.KeepAlive {
			load = keepalive.WarmLoadTime(fn.memGB)
			break
		}
	}
	ahead := len(fn.pending)
	par := 4 * fn.bestCapacity(p.opts.QueueSlack)
	waves := float64(ahead / par)
	return load + exec + waves*exec
}

// bestExec is the function's fastest monolithic service time (its
// cheapest plan latency when it cannot run monolithically anywhere).
func (fn *Function) bestExec() float64 {
	best := math.Inf(1)
	for _, e := range fn.monoExec {
		if e < best {
			best = e
		}
	}
	if math.IsInf(best, 1) {
		best = fn.spec.SLO
	}
	return best
}

// pressure is the node-pressure signal driving the brownout ladder:
// admitted plus pending demand over total admission capacity. 1.0
// means the backlog exactly fills what the deployed instances can
// admit; above that, requests are pending with nowhere to go. A
// platform with no capacity yet reports zero (it has not scaled up,
// not melted down).
func (p *Platform) pressure() float64 {
	capacity, load := 0, 0
	for _, fn := range p.funcs {
		load += len(fn.pending)
		for _, inst := range fn.instances {
			if inst.retiring {
				continue
			}
			capacity += inst.capacity
			load += inst.outstanding
		}
		if fn.ts != nil {
			capacity += fn.ts.capacity
			load += fn.ts.outstanding
		}
	}
	if capacity == 0 {
		return 0
	}
	return float64(load) / float64(capacity)
}

// brownoutTick samples pressure, advances the ladder, and applies the
// Degrade rung's contraction. Called from the control loop.
func (p *Platform) brownoutTick() {
	if !p.opts.Overload.Brownout {
		return
	}
	now := p.eng.Now()
	p.lastPressure = p.pressure()
	if from, to, changed := p.ladder.Observe(now, p.lastPressure); changed {
		p.logEvent(EvBrownout, fmt.Sprintf("%s -> %s", from, to),
			fmt.Sprintf("pressure %.2f", p.lastPressure))
		if p.decOn() {
			p.decide(decisions.Record{
				Kind: decisions.KindBrownout, Req: decisions.NoRequest,
				Subject: to.String(), Rule: "pressure ladder",
				Outcome: fmt.Sprintf("%s -> %s", from, to),
				Inputs:  []decisions.KV{kvF("pressure", p.lastPressure)},
			})
		}
	}
	if p.ladder.Level() >= overload.LevelDegrade {
		p.contractPipelined()
	}
}

// Brownout keep-alive scaling per rung: under pressure, idle capacity
// must return to the free pool sooner. Indexed by overload.Level.
var (
	brownoutKeepAliveScale  = [4]float64{1, 0.25, 0.1, 0.05}
	brownoutIdleDemoteScale = [4]float64{1, 0.5, 0.25, 0.1}
)

// effKeepAlive is the keep-alive window after brownout scaling.
func (p *Platform) effKeepAlive() float64 {
	if !p.opts.Overload.Brownout {
		return p.opts.KeepAlive
	}
	return p.opts.KeepAlive * brownoutKeepAliveScale[p.ladder.Level()]
}

// effIdleDemote is the demotion idle threshold after brownout scaling.
func (p *Platform) effIdleDemote() float64 {
	if !p.opts.Overload.Brownout {
		return p.opts.IdleDemote
	}
	return p.opts.IdleDemote * brownoutIdleDemoteScale[p.ladder.Level()]
}

// contractPipelined is the Degrade rung's action: take the pipelined
// instance with the largest GPC footprint and replace it with a
// smaller deployment built from the node's free slices — monolithic on
// the smallest feasible slice, else a smaller pipeline from the
// CV-ranked partition list. The old instance drains and releases its
// slices; one contraction per control tick bounds the churn.
func (p *Platform) contractPipelined() {
	now := p.eng.Now()
	var worst *Instance
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			if !inst.Pipelined() || inst.retiring || inst.migrating || inst.failed {
				continue
			}
			if worst == nil || inst.plan.GPCs() > worst.plan.GPCs() ||
				(inst.plan.GPCs() == worst.plan.GPCs() && inst.id < worst.id) {
				worst = inst
			}
		}
	}
	if worst == nil {
		return
	}
	fn := worst.fn
	free := worst.node.FreeSlices(now)

	// Monolithic on the smallest free slice that fits under the SLO.
	var plan pipeline.Plan
	var slices []*mig.Slice
	found := false
	for _, sl := range free {
		if sl.Type.GPCs() >= worst.plan.GPCs() {
			continue // must shrink the footprint
		}
		exec, ok := fn.monoExec[sl.Type]
		if !ok || fn.memGB > float64(sl.Type.MemGB()) ||
			fn.spec.DAG.MonoMinGPCs > sl.Type.GPCs() {
			continue
		}
		if fn.spec.SLO > 0 && exec > fn.spec.SLO {
			continue
		}
		if found && sl.Type >= slices[0].Type {
			continue
		}
		pl, err := monoPlan(fn, sl.Type)
		if err != nil {
			continue
		}
		plan, slices, found = pl, []*mig.Slice{sl}, true
	}
	if !found {
		// Smaller pipeline over the free slices (the CV-ranked
		// enumerator's construction, reused).
		types := make([]mig.SliceType, len(free))
		for i, sl := range free {
			types[i] = sl.Type
		}
		pl, _, err := fn.construct(types, fn.spec.SLO)
		if err == nil && pl.GPCs() < worst.plan.GPCs() {
			slices = make([]*mig.Slice, len(pl.Stages))
			ok := true
			used := map[*mig.Slice]bool{}
			for i, sp := range pl.Stages {
				slices[i] = nil
				for _, sl := range free {
					if sl.Type == sp.SliceType && !used[sl] {
						slices[i], used[sl] = sl, true
						break
					}
				}
				if slices[i] == nil {
					ok = false
					break
				}
			}
			if ok {
				plan, found = pl, true
			}
		}
	}
	if !found {
		return
	}
	load := p.loadTimeFor(fn, worst.node, now)
	repl := p.launchInstance(fn, worst.node, plan, slices, load)
	worst.retiring = true
	p.contractions++
	p.logEvent(EvContract, worst.id,
		fmt.Sprintf("contracted %d->%d GPCs into %s", worst.plan.GPCs(), plan.GPCs(), repl.id))
	for len(fn.pending) > 0 && repl.hasCapacity() {
		rq := fn.popPending()
		if p.decOn() {
			p.decideDrain(rq, repl.id, "admitted to contracted replacement instance")
		}
		repl.admit(p, rq)
	}
	if worst.outstanding == 0 {
		p.releaseInstance(worst)
	}
}
