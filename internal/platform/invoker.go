package platform

import (
	"fmt"
	"sort"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/sim"
)

// Invoker is the per-node runtime: it owns the node's time-sharing slice
// pool and performs eviction, pool resizing, and pipeline migration.
type Invoker struct {
	p    *Platform
	node *cluster.Node
	// clk is where this node's events live: the node's shard clock on a
	// sharded kernel, the engine itself otherwise. All node-local timers
	// (station service, instance loads, transfer hops, time-sharing
	// service) schedule here; cluster-global work stays on p.eng.
	clk    sim.Clock
	shared []*sharedSlice

	// Cached free-slice snapshot, revalidated against the node's
	// free-set generation. Every path that changes the free set —
	// instance launch/release, pool grow/shrink, demotion adoption,
	// migration, fault injection and recovery — bumps the generation
	// at the mig/cluster layer, so the cache can never serve a stale
	// view.
	freeGen   uint64
	freeValid bool
	freeTypes []mig.SliceType
	freePhys  []*mig.Slice
}

func newInvoker(p *Platform, node *cluster.Node, clk sim.Clock) *Invoker {
	return &Invoker{p: p, node: node, clk: clk}
}

// freeView returns the node's free slices (types and physical slices,
// in FreeSlices order). Unchanged nodes are served from the cached
// snapshot; a node with a GPU mid-reconfiguration is never cached, as
// its free set changes with the passage of time alone.
func (inv *Invoker) freeView(now float64) ([]mig.SliceType, []*mig.Slice) {
	gen, stable := inv.node.FreeGen(now)
	if inv.freeValid && stable && gen == inv.freeGen {
		return inv.freeTypes, inv.freePhys
	}
	free := inv.node.FreeSlices(now)
	types := make([]mig.SliceType, len(free))
	for i, s := range free {
		types[i] = s.Type
	}
	inv.freeGen = gen
	inv.freeValid = stable
	inv.freeTypes = types
	inv.freePhys = free
	return types, free
}

// tsBinding is a function's time-sharing deployment: the function is
// bound to one shared slice; its model is either resident on the slice
// or evicted to host memory (warm).
type tsBinding struct {
	fn       *Function
	shared   *sharedSlice
	resident bool
	// everLoaded distinguishes the first load (cold start from remote
	// storage) from warm reloads out of host memory.
	everLoaded  bool
	tracker     *keepalive.Tracker
	state       *keepalive.Machine
	outstanding int
	capacity    int
	hostMemGB   float64 // host memory reserved for the warm copy
	// loadChurn accumulates reload time the binding paid on recent
	// kicks, decayed each control tick (swap tier only). Sustained
	// churn means the slice's working set exceeds residency, the signal
	// for swap-aware promotion: every request is being served — just
	// behind a reload — so the pending-overflow trigger never fires.
	loadChurn float64
}

// tsJob is one queued time-sharing request.
type tsJob struct {
	rq *request
	b  *tsBinding
	// priority = deadline - estimated execution - estimated load (§5.3).
	priority float64
	// service is the job's estimated execution time, the fair queue's
	// currency and the admission estimator's backlog unit.
	service    float64
	enqueuedAt float64
}

// sharedSlice is one MIG slice in the invoker's time-sharing pool.
// Only one instance accesses it at a time, preserving the MIG isolation
// principle (§4).
type sharedSlice struct {
	inv      *Invoker
	slice    *mig.Slice
	resident *tsBinding
	lru      *keepalive.LRU
	bindings map[string]*tsBinding // keyed by function name
	queue    []*tsJob
	// fair replaces queue when overload fair queueing is enabled:
	// per-function virtual-time flows so one bursty function cannot
	// starve co-resident bindings (MQFQ-style).
	fair *overload.FairQueue[*tsJob]
	// queuedWork and servingWork track the backlog in estimated
	// execution seconds, feeding the admission estimator.
	queuedWork  float64
	servingWork float64
	busy        bool
	// serving is the job in service while busy, so a fault can retry
	// exactly the request that was running.
	serving *tsJob
	// failed marks a pool slice torn down by a hardware fault: stale
	// engine events referencing it become no-ops.
	failed bool
}

// newSharedSlice builds a pool slice, with a fair queue when the
// overload subsystem asks for one.
func newSharedSlice(inv *Invoker, sl *mig.Slice) *sharedSlice {
	ss := &sharedSlice{
		inv:      inv,
		slice:    sl,
		lru:      keepalive.NewLRU(),
		bindings: make(map[string]*tsBinding),
	}
	if inv.p.opts.Overload.FairQueue {
		ss.fair = overload.NewFairQueue[*tsJob]()
	}
	return ss
}

// qlen is the queued-job count, whichever discipline holds them.
func (ss *sharedSlice) qlen() int {
	if ss.fair != nil {
		return ss.fair.Len()
	}
	return len(ss.queue)
}

// pop removes the next job to serve: the fair queue's pick (sticky to
// the resident function, avoiding swap thrash) or the deadline-ordered
// head. Nil when empty.
func (ss *sharedSlice) pop() *tsJob {
	var job *tsJob
	if ss.fair != nil {
		prefer := ""
		if ss.resident != nil {
			prefer = ss.resident.fn.spec.Name
		}
		j, ok := ss.fair.Dequeue(prefer, ss.inv.p.opts.Overload.StickyGrace)
		if !ok {
			return nil
		}
		job = j
	} else {
		if len(ss.queue) == 0 {
			return nil
		}
		job = ss.queue[0]
		ss.queue = ss.queue[1:]
	}
	ss.queuedWork -= job.service
	return job
}

// drainJobs empties the queue for teardown, deterministic order.
func (ss *sharedSlice) drainJobs() []*tsJob {
	var jobs []*tsJob
	if ss.fair != nil {
		jobs = ss.fair.Items()
		ss.fair.Clear()
	} else {
		jobs = ss.queue
		ss.queue = nil
	}
	ss.queuedWork = 0
	return jobs
}

// sharedOwner is the slice-owner tag of pool slices.
func (inv *Invoker) sharedOwner() string {
	return fmt.Sprintf("ts-pool@node%d", inv.node.ID)
}

// execOn returns the binding's monolithic service time on its shared
// slice.
func (b *tsBinding) execOn() float64 {
	return b.fn.monoExec[b.shared.slice.Type]
}

// estLoad estimates the load the next request would pay. A warm reload
// requires an actual host copy (hostMemGB > 0): a binding whose
// reservation failed or whose copy the pool evicted pays a full cold
// start, never a phantom warm load.
func (b *tsBinding) estLoad() float64 {
	if b.resident {
		return 0
	}
	if b.everLoaded && b.hostMemGB > 0 {
		return keepalive.WarmLoadTime(b.fn.memGB)
	}
	return keepalive.ColdStartTime(b.fn.memGB)
}

// reserveWarmCopy backs b with a host-memory copy. With the swap tier
// on, the copy is a keyed pool reservation that may evict LRU victims
// or reclaim a parked copy of the same model (making the next load a
// swap-in instead of a remote fetch); off, it is the legacy anonymous
// reservation, and failure simply leaves the binding copyless.
func (inv *Invoker) reserveWarmCopy(b *tsBinding) {
	fn := b.fn
	if inv.p.swapOn() {
		gb, hadCopy := inv.p.ensureHostCopy(inv.node, fn)
		b.hostMemGB = gb
		if hadCopy {
			b.everLoaded = true
		}
		return
	}
	if inv.node.ReserveWarm(fn.memGB) {
		b.hostMemGB = fn.memGB
	}
}

// bindTS gives fn a time-sharing binding on this node, growing the pool
// if needed. Returns nil when no slice in the pool or free list can host
// the function monolithically.
func (inv *Invoker) bindTS(fn *Function) *tsBinding {
	if fn.ts != nil {
		return fn.ts
	}
	ss := inv.pickSharedSlice(fn)
	if inv.p.swapOn() && ss != nil && len(ss.bindings) > 0 {
		// Swap-aware bind placement: bindings are cheap to re-create
		// (the model copy persists in the host pool), so they unbind
		// early and re-bind often. Piling every re-bind onto the same
		// shared slice round-robins reloads; take a fresh slice while
		// one is free and share only when the node is truly full.
		if grown := inv.growPool(fn); grown != nil {
			ss = grown
		}
	}
	if ss == nil {
		ss = inv.growPool(fn)
	}
	if ss == nil {
		return nil
	}
	b := &tsBinding{
		fn:      fn,
		shared:  ss,
		tracker: keepalive.NewTracker(),
		state:   keepalive.NewMachine(),
	}
	// Fig. 8 transition 1: first request creates a time-sharing
	// instance.
	if err := b.state.To(keepalive.TimeSharing); err != nil {
		panic(err)
	}
	b.capacity = admissionCapacity(fn.spec.SLO, b.execOn(), inv.p.opts.QueueSlack)
	// Keep a host-memory copy for warm reloads.
	inv.reserveWarmCopy(b)
	b.tracker.Touch(inv.p.eng.Now())
	ss.bindings[fn.spec.Name] = b
	ss.lru.Touch(fn.spec.Name)
	fn.ts = b
	if inv.p.decOn() {
		inv.p.decide(decisions.Record{
			Kind: decisions.KindBind, Func: fn.spec.Name,
			Req: decisions.NoRequest, Subject: ss.slice.ID(),
			Rule:    "shortest-queue pool slice",
			Outcome: fmt.Sprintf("time-sharing binding, capacity %d", b.capacity),
			Inputs: []decisions.KV{
				kvI("queue", ss.qlen()),
				kvF("host_copy_gb", b.hostMemGB),
			},
			Candidates: poolCandidates(inv, fn, ss),
		})
	}
	return b
}

// adoptShared converts an already-allocated slice (from a demoted
// monolithic instance) into a pool slice with fn resident — the
// cheapest demotion: no data movement at all.
func (inv *Invoker) adoptShared(sl *mig.Slice, fn *Function) *tsBinding {
	now := inv.p.eng.Now()
	sl.Release(now)
	sl.Allocate(inv.sharedOwner(), now)
	ss := newSharedSlice(inv, sl)
	inv.shared = append(inv.shared, ss)
	b := &tsBinding{
		fn:         fn,
		shared:     ss,
		resident:   true,
		everLoaded: true,
		tracker:    keepalive.NewTracker(),
		state:      keepalive.NewMachine(),
	}
	if err := b.state.To(keepalive.TimeSharing); err != nil {
		panic(err)
	}
	b.capacity = admissionCapacity(fn.spec.SLO, b.execOn(), inv.p.opts.QueueSlack)
	inv.reserveWarmCopy(b)
	b.tracker.Touch(now)
	ss.bindings[fn.spec.Name] = b
	ss.lru.Touch(fn.spec.Name)
	ss.resident = b
	fn.ts = b
	return b
}

// pickSharedSlice returns the pool slice with the shortest queue that
// can host fn monolithically.
func (inv *Invoker) pickSharedSlice(fn *Function) *sharedSlice {
	var best *sharedSlice
	for _, ss := range inv.shared {
		if _, ok := fn.monoExec[ss.slice.Type]; !ok {
			continue
		}
		if best == nil || ss.qlen() < best.qlen() {
			best = ss
		}
	}
	return best
}

// growPool allocates the smallest free slice that can host fn and adds
// it to the pool.
func (inv *Invoker) growPool(fn *Function) *sharedSlice {
	now := inv.p.eng.Now()
	// The generation-validated snapshot spares the full node walk: an
	// overloaded function retries growth every scale-up pass, and an
	// unchanged free set answers from cache (same FreeSlices order).
	_, free := inv.freeView(now)
	var pick *mig.Slice
	for _, sl := range free {
		if _, ok := fn.monoExec[sl.Type]; !ok {
			continue
		}
		if pick == nil || sl.Type < pick.Type {
			pick = sl
		}
	}
	if pick == nil {
		return nil
	}
	pick.Allocate(inv.sharedOwner(), now)
	inv.p.utilTouch(pick)
	ss := newSharedSlice(inv, pick)
	inv.shared = append(inv.shared, ss)
	inv.p.logEvent(EvPoolGrow, pick.ID(), "")
	return ss
}

// rebindToFreshSlice grows the pool and moves fn's binding onto the new
// slice, relieving a congested shared slice. Requests already queued on
// the old slice drain there; new requests go to the fresh one. Reports
// false when no free slice can host the function.
func (inv *Invoker) rebindToFreshSlice(fn *Function) bool {
	b := fn.ts
	if b == nil || b.shared.inv != inv {
		return false
	}
	ns := inv.growPool(fn)
	if ns == nil {
		return false
	}
	old := b.shared
	delete(old.bindings, fn.spec.Name)
	old.lru.Remove(fn.spec.Name)
	if old.resident == b {
		old.resident = nil
		b.resident = false
	}
	b.shared = ns
	b.capacity = admissionCapacity(fn.spec.SLO, b.execOn(), inv.p.opts.QueueSlack)
	ns.bindings[fn.spec.Name] = b
	ns.lru.Touch(fn.spec.Name)
	// The fresh slice starts serving pending overflow immediately —
	// without this, pending requests sit until the next completion or
	// control tick.
	inv.p.onTSSlack(b)
	return true
}

// reclaimIdle releases completely idle pool slices so exclusive
// scale-up can use them: bindings are moved to sibling pool slices when
// one fits, otherwise aged straight to cold. Returns how many slices
// were freed. Called when placement fails for lack of free slices —
// idle shared capacity should never block a hot function (§5.3's
// auto-scale-down of the time-sharing pool).
func (inv *Invoker) reclaimIdle() int {
	freed := 0
	now := inv.p.eng.Now()
	shared := append([]*sharedSlice(nil), inv.shared...)
	for _, ss := range shared {
		if ss.busy || ss.qlen() > 0 {
			continue
		}
		idle := true
		for _, b := range ss.bindings {
			// Recently used bindings stay: dropping them would trade a
			// guaranteed cold start for a speculative placement.
			if b.outstanding > 0 || b.tracker.IdleFor(now) < 5 {
				idle = false
				break
			}
		}
		if !idle {
			continue
		}
		names := make([]string, 0, len(ss.bindings))
		for name := range ss.bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := ss.bindings[name]
			if dst := inv.siblingSlice(ss, b); dst != nil {
				delete(ss.bindings, name)
				ss.lru.Remove(name)
				if ss.resident == b {
					ss.resident = nil
				}
				b.resident = false
				b.shared = dst
				b.capacity = admissionCapacity(b.fn.spec.SLO, b.execOn(), inv.p.opts.QueueSlack)
				dst.bindings[name] = b
				dst.lru.Touch(name)
				// Drain pending into the new home right away; a moved
				// binding must not strand its function's overflow until
				// the next completion or control tick.
				inv.p.onTSSlack(b)
				continue
			}
			// No sibling fits: the binding goes cold.
			if b.state.State() == keepalive.TimeSharing {
				if err := b.state.To(keepalive.Warm); err != nil {
					panic(err)
				}
			}
			if b.state.State() == keepalive.Warm {
				if err := b.state.To(keepalive.Cold); err != nil {
					panic(err)
				}
			}
			inv.unbind(b)
		}
		// unbind may have released the slice already.
		for _, cur := range inv.shared {
			if cur == ss {
				inv.releaseShared(ss)
				break
			}
		}
		freed++
	}
	return freed
}

// siblingSlice finds another pool slice that can host b's function.
func (inv *Invoker) siblingSlice(not *sharedSlice, b *tsBinding) *sharedSlice {
	for _, ss := range inv.shared {
		if ss == not {
			continue
		}
		if _, ok := b.fn.monoExec[ss.slice.Type]; ok {
			return ss
		}
	}
	return nil
}

// enqueue admits a request to the binding's shared slice: into the
// per-function fair queue when overload fair queueing is on, else the
// single queue ordered by deadline minus estimated execution and load
// times (§5.3). The ordered insert is a binary search — re-sorting the
// whole queue on every arrival was O(n log n) per request.
func (ss *sharedSlice) enqueue(p *Platform, b *tsBinding, rq *request) {
	b.outstanding++
	rq.snapshot()
	b.tracker.Touch(p.eng.Now())
	job := &tsJob{
		rq:         rq,
		b:          b,
		priority:   rq.deadline - b.execOn() - b.estLoad(),
		service:    b.execOn(),
		enqueuedAt: p.eng.Now(),
	}
	ss.queuedWork += job.service
	if ss.fair != nil {
		ss.fair.Enqueue(b.fn.spec.Name, 1, job.service, job)
	} else {
		// Upper bound keeps equal-priority jobs in arrival order, the
		// exact order the stable sort produced.
		i := sort.Search(len(ss.queue), func(i int) bool {
			return ss.queue[i].priority > job.priority
		})
		ss.queue = append(ss.queue, nil)
		copy(ss.queue[i+1:], ss.queue[i:])
		ss.queue[i] = job
	}
	ss.kick(p)
}

// kick starts serving if the slice is idle. Cancelled hedge copies are
// skimmed off the queue head without service (their winner already
// completed); a gray-degraded slice stretches both the load and the
// execution by its severity factor.
func (ss *sharedSlice) kick(p *Platform) {
	if ss.failed || ss.busy || ss.qlen() == 0 {
		return
	}
	job := ss.pop()
	var cancelled []*tsJob
	for job != nil && job.rq.hedgeCancelled() {
		cancelled = append(cancelled, job)
		job = ss.pop()
	}
	for _, cj := range cancelled {
		cj.b.outstanding--
		// complete() settles the loser: no record, waste counted (zero
		// here — the copy never served).
		p.complete(cj.rq)
	}
	if job == nil {
		for _, cj := range cancelled {
			p.onTSSlack(cj.b)
		}
		return
	}
	ss.busy = true
	ss.serving = job
	b := job.b
	now := p.eng.Now()

	f := p.degradeFactor(ss.slice)
	load := 0.0
	if ss.resident != b {
		// Evict the LRU resident and load the pertinent instance
		// (§5.3). Loading happens as part of this request's service.
		if ss.resident != nil {
			ss.evictResident(p)
		}
		load = b.estLoad() * f
		if p.swapOn() {
			b.loadChurn += load
		}
		ss.resident = b
		b.resident = true
		// Warm -> TimeSharing for a reload out of host memory, Cold ->
		// TimeSharing (Fig. 8 transition 1) when the copy was lost and the
		// load above is a full cold start.
		if s := b.state.State(); s == keepalive.Warm || s == keepalive.Cold {
			if err := b.state.To(keepalive.TimeSharing); err != nil {
				panic(err)
			}
		}
	}
	declaredExec := b.execOn()
	exec := declaredExec * f
	job.rq.rec.Load += load
	job.rq.rec.Exec += exec
	ss.servingWork = load + exec
	ss.lru.Touch(b.fn.spec.Name)
	ss.slice.SetActive(true, now)
	if r := p.opts.Obs; r != nil {
		rq := job.rq
		r.AsyncSpan("queue", "queue", rq.rec.Func, rq.rec.ID, rq.waitStart, now, "")
		if load > 0 {
			r.SliceSpan("load", "load "+b.fn.spec.Name, ss.slice.ID(),
				rq.rec.Func, rq.rec.ID, -1, now, now+load)
		}
		r.StageSpan("exec "+b.fn.spec.Name, ss.slice.ID(),
			ss.slice.Type.String(), rq.rec.Func, rq.rec.ID, -1,
			now+load, now+load+exec, declaredExec)
	}
	p.utilBusy(ss.slice, util.BusyLoad, now, now+load)
	p.utilBusy(ss.slice, util.BusyExec, now+load, now+load+exec)
	ss.inv.clk.After(load+exec, func() {
		if ss.failed {
			// The slice died mid-service; the fault handler already
			// retried the job elsewhere.
			return
		}
		end := p.eng.Now()
		ss.serving = nil
		ss.servingWork = 0
		ss.slice.SetActive(false, end)
		// The model is fully fetched only now; the host copy makes
		// later loads warm (for this binding and for exclusive
		// launches on this node).
		b.everLoaded = true
		b.fn.lastNodeUse[ss.inv.node.ID] = end
		if p.swapOn() {
			// The fetch landed in host RAM on its way to the device:
			// (re-)reserve the pool copy if the binding lost it, refresh
			// its LRU position either way, and mark it materialised —
			// from here on a reload out of it is a real warm start.
			if b.hostMemGB == 0 {
				b.hostMemGB, _ = p.ensureHostCopy(ss.inv.node, b.fn)
			} else {
				ss.inv.node.Pool().Touch(b.fn.spec.Name)
			}
			ss.inv.node.Pool().MarkLoaded(b.fn.spec.Name)
		}
		// Hotness counts execution only: a cold-start load must not make
		// a rarely-used function look hot.
		b.tracker.Begin(end - exec)
		b.tracker.End(end)
		b.outstanding--
		ss.busy = false
		p.complete(job.rq)
		// Health observation may quarantine this slice and tear it down
		// (failShared); the kick below then no-ops on ss.failed.
		p.observeSliceExec(ss.slice, declaredExec, exec)
		ss.kick(p)
		p.onTSSlack(b)
	})
	// The serving job may be at deadline risk on a suspect slice:
	// consider duplicating it onto healthy hardware (no-op unless
	// hedging is on). After the service registration so the clone's
	// routing cannot interleave with this slice's bookkeeping.
	p.maybeHedgeTS(ss, job.rq, now+load+exec)
	for _, cj := range cancelled {
		p.onTSSlack(cj.b)
	}
}

// evictResident moves the current resident out of MIG memory to the
// warm state (Fig. 8 transition 4).
func (ss *sharedSlice) evictResident(p *Platform) {
	old := ss.resident
	if old == nil {
		return
	}
	old.resident = false
	if old.state.State() == keepalive.TimeSharing {
		if err := old.state.To(keepalive.Warm); err != nil {
			panic(err)
		}
		if old.hostMemGB <= 0 {
			// No host copy backs this binding (the reservation failed, or
			// the pool evicted the copy): claiming Warm would charge the
			// next reload a phantom WarmLoadTime. Fall through to Cold —
			// the next load is a genuine remote refetch.
			if err := old.state.To(keepalive.Cold); err != nil {
				panic(err)
			}
			old.everLoaded = false
		}
	}
	ss.resident = nil
	p.evicted++
	p.logEvent(EvEvict, old.fn.spec.Name, "LRU eviction from "+ss.slice.ID())
}

// unbind removes a binding entirely (warm -> cold, Fig. 8 transition 5,
// or promotion cleanup).
func (inv *Invoker) unbind(b *tsBinding) {
	ss := b.shared
	delete(ss.bindings, b.fn.spec.Name)
	ss.lru.Remove(b.fn.spec.Name)
	if ss.resident == b {
		ss.resident = nil
	}
	if b.hostMemGB > 0 {
		if inv.p.swapOn() {
			// The copy stays in the pool, parked: a later rebind or
			// exclusive launch reclaims it (swap-in) unless memory
			// pressure evicts it first.
			inv.node.Pool().Park(b.fn.spec.Name)
		} else {
			inv.node.ReleaseWarm(b.hostMemGB)
		}
	}
	b.fn.ts = nil
	// Release empty pool slices so exclusive instances can use them.
	if len(ss.bindings) == 0 && !ss.busy && ss.qlen() == 0 {
		inv.releaseShared(ss)
	}
}

// releaseShared returns a pool slice to the free pool.
func (inv *Invoker) releaseShared(ss *sharedSlice) {
	now := inv.p.eng.Now()
	for i, x := range inv.shared {
		if x == ss {
			inv.shared = append(inv.shared[:i], inv.shared[i+1:]...)
			break
		}
	}
	ss.slice.Release(now)
	inv.p.utilTouch(ss.slice)
	inv.p.logEvent(EvPoolShrink, ss.slice.ID(), "")
	if inv.p.opts.Policy.Migration() {
		inv.p.tryMigration(ss.slice)
	}
}

// dropStale sheds queued time-sharing jobs whose wait exceeds the
// client timeout. They are recorded exactly like stale pending drops —
// before this sweep, a timed-out request stuck behind a congested
// shared slice was never dropped at all. Returns the bindings whose
// capacity the sweep freed, so the caller can drain pending overflow
// into them.
func (ss *sharedSlice) dropStale(p *Platform, now float64) []*tsBinding {
	stale := func(job *tsJob) bool {
		// A live hedge copy is never stale-dropped: its partner may be
		// about to win, and the settle logic (not a drop record) decides
		// the request's one outcome. Settled losers are dropped silently
		// below.
		if job.rq.hedge != nil && job.rq.hedge.winner == nil {
			return false
		}
		slo := job.rq.fn.spec.SLO
		return slo > 0 && now-job.rq.arrival > p.opts.PendingDrop*slo
	}
	var dropped []*tsJob
	if ss.fair != nil {
		dropped = ss.fair.Filter(func(j *tsJob) bool { return !stale(j) })
	} else {
		keep := ss.queue[:0]
		for _, j := range ss.queue {
			if stale(j) {
				dropped = append(dropped, j)
			} else {
				keep = append(keep, j)
			}
		}
		ss.queue = keep
	}
	var freed []*tsBinding
	for _, j := range dropped {
		ss.queuedWork -= j.service
		j.b.outstanding--
		if j.rq.hedgeCancelled() {
			// Settled hedge loser: its winner was already recorded; the
			// queued copy just disappears (complete() swallows it).
			p.complete(j.rq)
		} else {
			j.rq.rec.Dropped = true
			j.rq.rec.Completion = now
			p.logEvent(EvDrop, j.rq.fn.spec.Name, "time-sharing queue past the client timeout")
			if p.decOn() {
				p.decide(decisions.Record{
					Kind: decisions.KindDrop, Func: j.rq.fn.spec.Name,
					Req: j.rq.id, Attempt: j.rq.attempts,
					Subject: ss.slice.ID(), Rule: "client-timeout",
					Outcome: "dropped from time-sharing queue",
					Inputs: []decisions.KV{
						kvF("waited", now-j.rq.arrival),
						kvF("limit", p.opts.PendingDrop*j.rq.fn.spec.SLO),
					},
				})
			}
			p.record(j.rq.rec)
		}
		seen := false
		for _, b := range freed {
			if b == j.b {
				seen = true
				break
			}
		}
		if !seen {
			freed = append(freed, j.b)
		}
	}
	return freed
}

// onTSSlack drains pending requests into the binding after a completion.
func (p *Platform) onTSSlack(b *tsBinding) {
	fn := b.fn
	for len(fn.pending) > 0 && b.outstanding < b.capacity && fn.ts == b {
		rq := fn.popPending()
		if p.decOn() {
			p.decideDrain(rq, b.shared.slice.ID(), "enqueued on shared slice with new slack")
		}
		b.shared.enqueue(p, b, rq)
	}
}

// tryMigration implements pipeline migration (§5.3): when a large slice
// frees up, replace the worst pipelined instance that fits it with a
// monolithic instance on the freed slice.
func (p *Platform) tryMigration(freed *mig.Slice) {
	now := p.eng.Now()
	if !freed.Free() || !freed.Usable(now) || !p.nodeOf(freed).Healthy() {
		return
	}
	var bestFn *Function
	var bestInst *Instance
	for _, fn := range p.funcs {
		exec, ok := fn.monoExec[freed.Type]
		if !ok || fn.memGB > float64(freed.Type.MemGB()) {
			continue
		}
		if fn.spec.SLO > 0 && exec > fn.spec.SLO {
			continue
		}
		if fn.spec.DAG.MonoMinGPCs > freed.Type.GPCs() {
			continue
		}
		for _, inst := range fn.instances {
			if !inst.Pipelined() || inst.retiring || inst.migrating {
				continue
			}
			// A pipeline with no in-flight work and a cooled-off
			// tracker is about to be demoted by the keep-alive manager;
			// migrating it would pay a model load on the freed slice
			// for a function nobody is calling.
			if inst.outstanding == 0 && !inst.tracker.IsHot(now) {
				continue
			}
			// Prefer migrating the highest-latency pipeline.
			if bestInst == nil || inst.plan.Latency > bestInst.plan.Latency {
				bestFn, bestInst = fn, inst
			}
		}
	}
	if bestInst == nil {
		return
	}
	plan, err := monoPlan(bestFn, freed.Type)
	if err != nil {
		return
	}
	node := p.nodeOf(freed)
	load := p.loadTimeFor(bestFn, node, now)
	newInst := p.launchInstance(bestFn, node, plan, []*mig.Slice{freed}, load)
	bestInst.migrating = true
	bestInst.retiring = true
	p.migrated++
	p.logEvent(EvMigrate, bestInst.id, "replaced by monolithic on "+freed.ID())
	// The fresh monolith absorbs the function's pending overflow right
	// away — discarding it stranded those requests until the next
	// completion or control tick.
	for len(bestFn.pending) > 0 && newInst.hasCapacity() {
		rq := bestFn.popPending()
		if p.decOn() {
			p.decideDrain(rq, newInst.id, "admitted to migration monolith")
		}
		newInst.admit(p, rq)
	}
	if bestInst.outstanding == 0 {
		p.releaseInstance(bestInst)
	}
}
