package platform

import (
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
)

// TestWarmReloadNeedsReservation: a binding whose host-memory
// reservation failed must plan a full cold start, never a phantom warm
// reload backed by memory it does not hold.
func TestWarmReloadNeedsReservation(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: 0.01,
	})
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	inv := p.inv[0]
	fn := p.funcs[0]
	b := inv.bindTS(fn)
	if b == nil {
		t.Fatal("bindTS failed")
	}
	if b.hostMemGB != 0 {
		t.Fatalf("hostMemGB = %v with a full pool, want 0", b.hostMemGB)
	}
	b.everLoaded = true // the first (cold) load completed
	if got, want := b.estLoad(), keepalive.ColdStartTime(fn.memGB); got != want {
		t.Errorf("estLoad = %v, want cold %v: warm without a reservation", got, want)
	}
	// The copyless unbind must not release memory it never reserved.
	inv.unbind(b)
	if got := cl.Nodes[0].WarmMemGB(); got != 0 {
		t.Errorf("WarmMemGB = %v after unbind, want 0", got)
	}

	// Control: with room, the reservation sticks and the reload is warm.
	cl2 := smallCluster(1)
	p2 := New(cl2, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	b2 := p2.inv[0].bindTS(p2.funcs[0])
	if b2.hostMemGB != p2.funcs[0].memGB {
		t.Fatalf("hostMemGB = %v, want %v", b2.hostMemGB, p2.funcs[0].memGB)
	}
	b2.everLoaded = true
	if got, want := b2.estLoad(), keepalive.WarmLoadTime(p2.funcs[0].memGB); got != want {
		t.Errorf("estLoad = %v, want warm %v", got, want)
	}
}

// TestNodeCrashZeroesSurvivingBindings: a node crash drops the host
// pool wholesale, so any binding that outlives the per-slice teardown
// (e.g. its shared slice already failed) must forget its reservation —
// its later unbind would otherwise release memory the pool no longer
// tracks and trip the negative-memory panic.
func TestNodeCrashZeroesSurvivingBindings(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	inv := p.inv[0]
	fn := p.funcs[0]
	b := inv.bindTS(fn)
	if b == nil || b.hostMemGB == 0 {
		t.Fatal("binding has no warm reservation")
	}
	// The binding's slice is already marked failed, so the crash's
	// slice sweep skips it and the binding survives with hostMemGB set.
	b.shared.failed = true
	p.injectFault(faults.Event{Kind: faults.NodeCrash, Node: 0, GPU: -1, Slice: -1})
	if b.hostMemGB != 0 {
		t.Fatal("binding kept its reservation past DropWarm")
	}
	if b.everLoaded {
		t.Error("binding still believes its copy survived the crash")
	}
	if got := cl.Nodes[0].WarmMemGB(); got != 0 {
		t.Fatalf("WarmMemGB = %v after crash, want 0", got)
	}
	// The unbind that used to go negative.
	if fn.ts != nil {
		inv.unbind(fn.ts)
	}
	if got := cl.Nodes[0].WarmMemGB(); got != 0 {
		t.Errorf("WarmMemGB = %v after unbind, want 0", got)
	}
}

// TestEnsureHostCopyPhantomWarmGuard: only a materialised pool copy may
// report hadCopy — a bare reservation whose fetch never completed is
// space, not data.
func TestEnsureHostCopyPhantomWarmGuard(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 1, Swap: SwapOptions{Enabled: true},
	})
	node := cl.Nodes[0]
	fn := p.funcs[0]
	name := fn.spec.Name

	gb, had := p.ensureHostCopy(node, fn)
	if gb != fn.memGB || had {
		t.Fatalf("first reserve = (%v, %v), want (%v, false)", gb, had, fn.memGB)
	}
	// Parked before the fetch landed: reclaiming the bare reservation
	// must not look like a warm copy, and is not a swap-in.
	node.Pool().Park(name)
	if _, had = p.ensureHostCopy(node, fn); had {
		t.Error("bare reservation reported as a copy")
	}
	if p.SwapIns() != 0 {
		t.Errorf("swapIns = %d reclaiming an unmaterialised reservation", p.SwapIns())
	}
	// Once materialised, the parked copy is a real swap-in.
	node.Pool().MarkLoaded(name)
	node.Pool().Park(name)
	if _, had = p.ensureHostCopy(node, fn); !had {
		t.Error("materialised parked copy not reported")
	}
	if p.SwapIns() != 1 {
		t.Errorf("swapIns = %d, want 1", p.SwapIns())
	}
}

// TestEnsureHostCopyEvictsUnderPressure: a pool sized for one model
// evicts the parked LRU copy to admit the next, and the victim's next
// load is cold.
func TestEnsureHostCopyEvictsUnderPressure(t *testing.T) {
	specs := specsFor(t, dnn.Medium)[:2]
	// Size the pool off a throwaway platform: one medium copy fits,
	// two do not.
	probe := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	capGB := probe.funcs[0].memGB + 1
	if probe.funcs[1].memGB+1 > capGB {
		capGB = probe.funcs[1].memGB + 1
	}
	if capGB >= probe.funcs[0].memGB+probe.funcs[1].memGB {
		t.Fatalf("pool %v would fit both models", capGB)
	}
	cl := cluster.New(cluster.Spec{
		Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 1), CPUMemGB: capGB,
	})
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 1, Swap: SwapOptions{Enabled: true},
	})
	node := cl.Nodes[0]
	fn0, fn1 := p.funcs[0], p.funcs[1]

	if _, _ = p.ensureHostCopy(node, fn0); !node.Pool().Has(fn0.spec.Name) {
		t.Fatal("fn0 reservation missing")
	}
	node.Pool().MarkLoaded(fn0.spec.Name)
	node.Pool().Park(fn0.spec.Name)
	gb, had := p.ensureHostCopy(node, fn1)
	if gb != fn1.memGB || had {
		t.Fatalf("fn1 reserve = (%v, %v), want (%v, false)", gb, had, fn1.memGB)
	}
	if node.Pool().Has(fn0.spec.Name) {
		t.Error("LRU victim survived the eviction")
	}
	if p.SwapOuts() != 1 {
		t.Errorf("swapOuts = %d, want 1", p.SwapOuts())
	}
	// With fn1's copy unevictable (not parked, no binding — but guard
	// via a live binding) the pool refuses fn0.
	b1 := p.inv[0].bindTS(fn1)
	if b1 == nil {
		t.Fatal("bindTS failed")
	}
	b1.outstanding = 1
	if gb, _ := p.ensureHostCopy(node, fn0); gb != 0 {
		t.Errorf("reserve = %v with nothing evictable, want 0", gb)
	}
}

// TestSwapParkOnUnbind: with the tier on, unbinding parks the
// materialised copy and a later rebind reclaims it as a swap-in — the
// binding comes back warm, not cold.
func TestSwapParkOnUnbind(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 1, Swap: SwapOptions{Enabled: true},
	})
	inv := p.inv[0]
	fn := p.funcs[0]
	name := fn.spec.Name
	b := inv.bindTS(fn)
	if b == nil || b.hostMemGB == 0 {
		t.Fatal("keyed reservation failed")
	}
	cl.Nodes[0].Pool().MarkLoaded(name)
	inv.unbind(b)
	if !cl.Nodes[0].Pool().Parked(name) {
		t.Fatal("unbind did not park the copy")
	}
	b2 := inv.bindTS(fn)
	if b2 == nil || !b2.everLoaded {
		t.Fatal("rebind did not reclaim the parked copy warm")
	}
	if p.SwapIns() != 1 {
		t.Errorf("swapIns = %d, want 1", p.SwapIns())
	}
	if got, want := b2.estLoad(), keepalive.WarmLoadTime(fn.memGB); got != want {
		t.Errorf("estLoad after reclaim = %v, want warm %v", got, want)
	}
}

// TestSwapDisabledIdentity: with Swap.Enabled false, the platform must
// be bit-for-bit identical to one that never mentioned the tier —
// non-zero sibling knobs must not leak into behaviour.
func TestSwapDisabledIdentity(t *testing.T) {
	run := func(sw SwapOptions) *Platform {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 77, Swap: sw})
		p.Run(flatTrace(specs, 10, 120, 77), 60)
		return p
	}
	a := run(SwapOptions{})
	b := run(SwapOptions{Enabled: false, PinRecent: 9, ParkAfter: 1})
	if !reflect.DeepEqual(a.Collector().Records(), b.Collector().Records()) {
		t.Error("request records diverged with the tier disabled")
	}
	if a.Engine().Executed() != b.Engine().Executed() {
		t.Errorf("event counts diverged: %d vs %d",
			a.Engine().Executed(), b.Engine().Executed())
	}
	if a.Launched() != b.Launched() || a.Evictions() != b.Evictions() {
		t.Error("launch/eviction counters diverged")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("event logs diverged")
	}
	if !reflect.DeepEqual(a.UtilGPCs, b.UtilGPCs) {
		t.Error("utilisation timelines diverged")
	}
	if a.SwapIns() != 0 || a.SwapOuts() != 0 || a.SwapReliefs() != 0 {
		t.Error("disabled tier recorded swap activity")
	}
}

// TestSwapEnabledDeterminism: the tier itself is deterministic — two
// same-seed runs with it on are identical.
func TestSwapEnabledDeterminism(t *testing.T) {
	run := func() *Platform {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{
			Policy: &scheduler.FluidFaaS{}, Seed: 77,
			Swap: SwapOptions{Enabled: true},
		})
		p.Run(flatTrace(specs, 10, 120, 77), 60)
		return p
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Collector().Records(), b.Collector().Records()) {
		t.Error("swap-on records diverged across same-seed runs")
	}
	if a.Engine().Executed() != b.Engine().Executed() {
		t.Error("swap-on event counts diverged")
	}
	if a.SwapIns() != b.SwapIns() || a.SwapOuts() != b.SwapOuts() {
		t.Error("swap counters diverged")
	}
}
