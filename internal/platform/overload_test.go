package platform

import (
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/scheduler"
)

// TestOverloadOffBitForBit: setting overload tuning knobs without
// enabling any feature must leave the simulation bit-for-bit identical
// to a run with no overload config at all.
func TestOverloadOffBitForBit(t *testing.T) {
	run := func(oc overload.Config) *Platform {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 42, Overload: oc})
		tr := flatTrace(specs, 8, 120, 42)
		p.Run(tr, 60)
		return p
	}
	a := run(overload.Config{})
	b := run(overload.Config{
		// Tuning knobs without the feature flags: all must be inert.
		AdmissionSlack: 2, StickyGrace: 3,
		Enter: [3]float64{0.1, 0.2, 0.3}, ExitMargin: 0.05, Dwell: 1,
	})
	ra, rb := a.Collector().Records(), b.Collector().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra[i], rb[i])
		}
	}
	if a.Launched() != b.Launched() || a.Evictions() != b.Evictions() ||
		a.Migrations() != b.Migrations() {
		t.Error("platform counters differ with inert overload knobs")
	}
	if b.Rejected() != 0 || b.ShedCount() != 0 || b.Contractions() != 0 {
		t.Error("overload actions fired with all features disabled")
	}
	if b.BrownoutLevel() != overload.LevelNormal {
		t.Errorf("brownout level = %v with brownout disabled", b.BrownoutLevel())
	}
}

// TestAdmissionFastFail: under sustained overload, admission control
// fast-fails requests at arrival (bounded rejection latency) instead of
// letting them die of client timeouts, and the system still serves
// traffic (rejections count as scale-up demand).
func TestAdmissionFastFail(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	p := New(smallCluster(1), specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 7,
		Overload: overload.Config{Admission: true},
	})
	tr := flatTrace(specs, 25, 90, 7)
	p.Run(tr, 60)
	col := p.Collector()
	if col.RejectedCount() == 0 {
		t.Fatal("no fast-fail rejections under 25 rps/function on one GPU")
	}
	if p.Rejected() != col.RejectedCount() {
		t.Errorf("platform rejected counter %d != collector %d",
			p.Rejected(), col.RejectedCount())
	}
	for i, r := range col.Records() {
		if !r.Rejected {
			continue
		}
		if !r.Dropped {
			t.Fatalf("record %d rejected but not dropped", i)
		}
		if r.Latency() != 0 {
			t.Fatalf("record %d: fast-fail latency %.3f, want 0 (rejected at arrival)",
				i, r.Latency())
		}
	}
	if col.Completed() == 0 {
		t.Error("admission rejected everything: reject demand did not drive scale-up")
	}
	if p.CountEvents()[EvReject] == 0 {
		t.Error("no reject events logged")
	}
}

// TestBrownoutShedPriority: at the Shed rung only sub-maximum-priority
// traffic is refused; the highest class always passes.
func TestBrownoutShedPriority(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:2]
	specs[0].Priority = 0
	specs[1].Priority = 1
	p := New(smallCluster(1), specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 3,
		Overload: overload.Config{Brownout: true},
	})
	// Force the ladder straight to Shed.
	p.ladder.Observe(0, 100)
	if p.BrownoutLevel() != overload.LevelShed {
		t.Fatalf("ladder at %v after pressure 100", p.BrownoutLevel())
	}
	mkReq := func(id int, fn *Function) *request {
		return &request{
			id: id, fn: fn, deadline: fn.spec.SLO,
			rec: metrics.RequestRecord{ID: id, Func: fn.spec.ID, SLO: fn.spec.SLO},
		}
	}
	p.route(mkReq(0, p.funcs[0]))
	p.route(mkReq(1, p.funcs[1]))
	if p.ShedCount() != 1 {
		t.Fatalf("shed = %d, want exactly the low-priority request", p.ShedCount())
	}
	recs := p.Collector().Records()
	if len(recs) != 1 || !recs[0].Rejected || recs[0].Func != 0 {
		t.Errorf("shed records = %+v, want one rejection of function 0", recs)
	}
	if p.funcs[1].ts == nil && len(p.funcs[1].pending) == 0 {
		t.Error("high-priority request vanished instead of being served")
	}
	if p.CountEvents()[EvShed] != 1 {
		t.Error("shed event not logged")
	}
}

// TestBrownoutEffectiveWindows: keep-alive and demotion windows shrink
// as the ladder escalates, and revert exactly when brownout is off.
func TestBrownoutEffectiveWindows(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	on := New(smallCluster(1), specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 3,
		Overload: overload.Config{Brownout: true},
	})
	off := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 3})
	if on.effKeepAlive() != on.opts.KeepAlive || on.effIdleDemote() != on.opts.IdleDemote {
		t.Error("windows scaled at LevelNormal")
	}
	prevKA, prevID := on.effKeepAlive(), on.effIdleDemote()
	for _, pr := range []float64{1.3, 2.1, 3.5} {
		on.ladder.Observe(0, pr)
		ka, id := on.effKeepAlive(), on.effIdleDemote()
		if ka >= prevKA || id >= prevID {
			t.Errorf("windows did not shrink entering %v: keepalive %v->%v demote %v->%v",
				on.BrownoutLevel(), prevKA, ka, prevID, id)
		}
		prevKA, prevID = ka, id
	}
	// Even at a forced high rung, a brownout-disabled platform never
	// scales its windows.
	off.ladder.Observe(0, 100)
	if off.effKeepAlive() != off.opts.KeepAlive || off.effIdleDemote() != off.opts.IdleDemote {
		t.Error("windows scaled with brownout disabled")
	}
}

// TestBrownoutLadderEngages: a heavy burst drives pressure up; the
// ladder must leave Normal and log its transitions.
func TestBrownoutLadderEngages(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	for i := range specs {
		specs[i].Priority = i
	}
	p := New(smallCluster(1), specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 11,
		Overload: overload.Config{Brownout: true},
	})
	tr := flatTrace(specs, 30, 60, 11)
	p.Run(tr, 60)
	if p.CountEvents()[EvBrownout] == 0 {
		t.Error("ladder never moved under 30 rps/function on one GPU")
	}
}

// TestFairQueueInterleavesBurst: with fair queueing, a burst from one
// function cannot starve a co-resident binding; with the deadline
// queue, the tight-deadline burst runs first.
func TestFairQueueInterleavesBurst(t *testing.T) {
	setup := func(fair bool) (*Platform, *tsBinding, *tsBinding, *sharedSlice) {
		specs := specsFor(t, dnn.Small)[:2]
		oc := overload.Config{}
		if fair {
			oc.FairQueue = true
		}
		p := New(smallCluster(1), specs, Options{
			Policy: &scheduler.FluidFaaS{}, Seed: 3, Overload: oc,
		})
		inv := p.inv[0]
		b0 := inv.bindTS(p.funcs[0])
		b1 := inv.bindTS(p.funcs[1])
		if b0 == nil || b1 == nil || b0.shared != b1.shared {
			t.Fatalf("bindings not sharing a slice")
		}
		// Equalise service times so the pop order depends only on the
		// queueing discipline, not the models' relative exec costs.
		st := b0.shared.slice.Type
		p.funcs[0].monoExec[st] = 0.2
		p.funcs[1].monoExec[st] = 0.2
		b0.everLoaded, b1.everLoaded = true, true
		return p, b0, b1, b0.shared
	}
	popOrder := func(p *Platform, b0, b1 *tsBinding, ss *sharedSlice) []int {
		// Hold the slice busy so all six jobs queue, then drain by hand.
		ss.busy = true
		for i := 0; i < 4; i++ {
			ss.enqueue(p, b0, &request{fn: b0.fn, deadline: 10 + float64(i)})
		}
		ss.enqueue(p, b1, &request{fn: b1.fn, deadline: 1000})
		ss.enqueue(p, b1, &request{fn: b1.fn, deadline: 1001})
		ss.busy = false
		var order []int
		for ss.qlen() > 0 {
			job := ss.pop()
			order = append(order, job.b.fn.spec.ID)
		}
		return order
	}

	p, b0, b1, ss := setup(true)
	order := popOrder(p, b0, b1, ss)
	lastB1 := -1
	for i, id := range order {
		if id == 1 {
			lastB1 = i
		}
	}
	if lastB1 > 3 {
		t.Errorf("fair queue starved the sibling: order %v", order)
	}

	p, b0, b1, ss = setup(false)
	order = popOrder(p, b0, b1, ss)
	if order[4] != 1 || order[5] != 1 {
		t.Errorf("deadline queue order %v, want the loose-deadline jobs last", order)
	}
}

// TestDropStaleTSQueue is the regression test for the satellite bugfix:
// a request stuck in a shared-slice queue past the client timeout must
// be dropped by dropStalePending (it previously only swept fn.pending,
// so such requests were served long after the client had gone, wasting
// GPU time). Covered for both queue disciplines.
func TestDropStaleTSQueue(t *testing.T) {
	for _, fair := range []bool{false, true} {
		name := "deadline-queue"
		if fair {
			name = "fair-queue"
		}
		t.Run(name, func(t *testing.T) {
			specs := specsFor(t, dnn.Small)[:2]
			oc := overload.Config{FairQueue: fair}
			p := New(smallCluster(1), specs, Options{
				Policy: &scheduler.FluidFaaS{}, Seed: 3, Overload: oc,
			})
			inv := p.inv[0]
			b0 := inv.bindTS(p.funcs[0])
			b1 := inv.bindTS(p.funcs[1])
			if b0 == nil || b1 == nil || b0.shared != b1.shared {
				t.Fatal("bindings not sharing a slice")
			}
			b0.everLoaded, b1.everLoaded = true, true
			ss := b0.shared
			// Make the blocking job's service far outlast the client
			// timeout, so the queued job is still waiting at sweep time.
			p.funcs[0].monoExec[ss.slice.Type] = 50

			stale := &request{
				id: 1, fn: b1.fn, arrival: 0, deadline: b1.fn.spec.SLO,
				rec: metrics.RequestRecord{ID: 1, Func: 1, SLO: b1.fn.spec.SLO},
			}
			p.eng.At(0, func() {
				// A long-deadline job occupies the slice; the b1 job
				// queues behind it.
				ss.enqueue(p, b0, &request{fn: b0.fn, deadline: 1000})
				ss.enqueue(p, b1, stale)
			})
			// Well past PendingDrop*SLO, a control-loop sweep runs while
			// the job still sits in the queue.
			cut := p.opts.PendingDrop*b1.fn.spec.SLO + 1
			p.eng.At(cut, func() {
				if ss.qlen() != 1 {
					t.Fatalf("queue length = %d before sweep, want the stuck job", ss.qlen())
				}
				p.dropStalePending()
				if ss.qlen() != 0 {
					t.Error("stale job survived the sweep")
				}
				if b1.outstanding != 0 {
					t.Errorf("binding outstanding = %d after drop, want 0", b1.outstanding)
				}
			})
			p.eng.RunUntil(cut + 0.001)
			if !stale.rec.Dropped || stale.rec.Rejected {
				t.Errorf("stale record = %+v, want a timeout drop", stale.rec)
			}
			if stale.rec.Completion != cut {
				t.Errorf("drop time = %v, want sweep time %v", stale.rec.Completion, cut)
			}
			found := false
			for _, r := range p.Collector().Records() {
				if r.ID == 1 && r.Dropped {
					found = true
				}
			}
			if !found {
				t.Error("dropped request not recorded")
			}
		})
	}
}

// TestRoutedInstanceOrders covers the three routing orders over a
// hand-built instance list (satellite coverage task).
func TestRoutedInstanceOrders(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	fn := p.funcs[0]
	mk := func(id string, lat float64) *Instance {
		return &Instance{id: id, fn: fn, plan: pipeline.Plan{Latency: lat}}
	}
	a, b, c := mk("a", 0.1), mk("b", 0.2), mk("c", 0.3)
	fn.instances = []*Instance{a, b, c} // latency-ascending invariant

	p.opts.Routing = RouteLatencyAsc
	got := p.routedInstances(fn)
	if got[0] != a || got[1] != b || got[2] != c {
		t.Errorf("ascending order wrong: %v", ids(got))
	}

	p.opts.Routing = RouteLatencyDesc
	got = p.routedInstances(fn)
	if got[0] != c || got[1] != b || got[2] != a {
		t.Errorf("descending order wrong: %v", ids(got))
	}
	if fn.instances[0] != a {
		t.Error("descending view mutated the underlying slice")
	}

	p.opts.Routing = RouteRoundRobin
	// routedInstances is a pure inspection: repeated calls must return
	// the same rotation (the cursor only moves when a request admits,
	// via advanceRoundRobin).
	for i := 0; i < 3; i++ {
		got = p.routedInstances(fn)
		if len(got) != 3 {
			t.Fatalf("round-robin returned %d instances", len(got))
		}
		if got[0] != a || got[1] != b || got[2] != c {
			t.Fatalf("inspection call %d moved the cursor: %v", i, ids(got))
		}
	}
	// Admits advance the cursor past the serving instance: each admit at
	// offset k in the returned order starts the next scan at k+1.
	firsts := map[string]int{}
	for i := 0; i < 6; i++ {
		got = p.routedInstances(fn)
		// Each view is a rotation: order must be preserved cyclically.
		for j := 1; j < 3; j++ {
			prev, cur := got[j-1], got[j]
			if !(prev == a && cur == b || prev == b && cur == c || prev == c && cur == a) {
				t.Fatalf("round-robin view %v is not a rotation", ids(got))
			}
		}
		firsts[got[0].id]++
		p.advanceRoundRobin(fn, 0) // the head instance admitted
	}
	// Over 6 admits every instance leads exactly twice: rotation fairness.
	for _, inst := range []*Instance{a, b, c} {
		if firsts[inst.id] != 2 {
			t.Errorf("instance %s led %d of 6 admits, want 2", inst.id, firsts[inst.id])
		}
	}
	// An admit deeper in the scan (offset k) moves the cursor past the
	// instance that served, not just one step.
	fn.rrNext = 0
	p.advanceRoundRobin(fn, 1) // head was full; b (offset 1) admitted
	if got = p.routedInstances(fn); got[0] != c {
		t.Errorf("after admit at offset 1 the scan should start at c, got %v", ids(got))
	}

	// Empty instance list under round-robin must not panic or divide by
	// zero.
	fn.instances = nil
	if got := p.routedInstances(fn); len(got) != 0 {
		t.Errorf("round-robin over no instances returned %v", ids(got))
	}
}

func ids(insts []*Instance) []string {
	out := make([]string, len(insts))
	for i, inst := range insts {
		out[i] = inst.id
	}
	return out
}

// TestMigrationDrainsPending is the regression test for the satellite
// bugfix: tryMigration used to discard the freshly launched monolithic
// instance, stranding the function's pending overflow until the next
// completion or control tick. The new instance must absorb pending
// requests immediately.
func TestMigrationDrainsPending(t *testing.T) {
	specs := specsFor(t, dnn.Medium)[:1]
	// One default-partition GPU supplies the 4g migration target; a
	// fully fragmented GPU supplies 1g slices for the pipeline.
	cl := cluster.New(cluster.Spec{
		Nodes: 1, CPUMemGB: 400,
		GPUConfigs: []mig.Config{mig.DefaultConfig, mig.ConfigFull1g},
	})
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	fn := p.funcs[0]
	node := cl.Nodes[0]

	// Build a pipelined instance on small slices, leaving a big slice
	// free as the migration target.
	free := node.FreeSlices(0)
	var small []*mig.Slice
	var target *mig.Slice
	for _, sl := range free {
		if sl.Type == mig.Slice4g && target == nil {
			target = sl
		}
		// Only 1g slices feed the pipeline, so Construct cannot pick
		// a monolithic placement.
		if sl.Type == mig.Slice1g {
			small = append(small, sl)
		}
	}
	if target == nil {
		t.Fatal("no 4g slice free")
	}
	types := make([]mig.SliceType, len(small))
	for i, sl := range small {
		types[i] = sl.Type
	}
	plan, _, err := pipeline.Construct(fn.spec.DAG, fn.spec.Parts, types, fn.spec.SLO)
	if err != nil {
		t.Fatalf("no pipelined plan over %v: %v", types, err)
	}
	if !plan.Pipelined() {
		t.Fatalf("construct returned a monolithic plan over %v", types)
	}
	slices := make([]*mig.Slice, len(plan.Stages))
	used := map[*mig.Slice]bool{}
	for i, sp := range plan.Stages {
		for _, sl := range small {
			if sl.Type == sp.SliceType && !used[sl] {
				slices[i], used[sl] = sl, true
				break
			}
		}
		if slices[i] == nil {
			t.Fatalf("no free slice for stage %d (%v)", i, sp.SliceType)
		}
	}
	inst := p.launchInstance(fn, node, plan, slices, 0)

	// Keep the pipeline busy (a migration candidate) and stack overflow
	// in fn.pending.
	inst.admit(p, &request{id: 0, fn: fn, deadline: 100})
	for i := 1; i <= 3; i++ {
		fn.pushPending(&request{id: i, fn: fn, deadline: 100 + float64(i)})
	}

	p.tryMigration(target)
	if p.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", p.Migrations())
	}
	var mono *Instance
	for _, cand := range fn.instances {
		if !cand.Pipelined() && !cand.retiring {
			mono = cand
		}
	}
	if mono == nil {
		t.Fatal("no monolithic replacement instance")
	}
	drained := 3 - len(fn.pending)
	if drained == 0 {
		t.Fatal("pending overflow not drained into the migrated instance")
	}
	if mono.outstanding != drained {
		t.Errorf("replacement outstanding = %d, want the %d drained requests",
			mono.outstanding, drained)
	}
	if !inst.retiring {
		t.Error("migrated pipeline not retiring")
	}
}
