package platform

import (
	"fmt"
	"sort"

	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
)

// This file is the platform's defence against gray failures: hardware
// that keeps answering but answers slowly. A degraded slice (see
// faults.SliceDegraded) stretches every execution, load and transfer it
// serves by the fault's severity. Fail-stop machinery never notices —
// nothing crashes — so detection has to come from timing evidence: a
// per-slice health score tracks the EWMA of the observed-vs-declared
// execution ratio and classifies the slice healthy -> suspect ->
// quarantined with hysteresis. Quarantined slices leave the placement
// views (mig.Slice.SetQuarantined) and their owners are torn down
// through the ordinary fault paths, so pipelines migrate off degraded
// hardware exactly like they migrate off dead hardware; after a
// probation period the slice is readmitted as suspect and must re-earn
// a healthy score. Requests at deadline risk on a *suspect* slice may
// additionally launch a hedged duplicate (hedge.go).
//
// Everything here is inert unless Options.Gray.Enabled is set: with the
// zero options a run is bit-for-bit identical to one built before this
// file existed (enforced by TestGrayDisabledIdentity).

// GrayOptions configure gray-failure detection and mitigation.
type GrayOptions struct {
	// Enabled turns the health scorer (and, with Hedge, hedged retries)
	// on. Off, no observation is recorded and no slice is ever
	// suspected or quarantined; degraded-slice faults still slow the
	// afflicted slice, which is exactly the no-mitigation baseline the
	// gray experiment measures.
	Enabled bool
	// Alpha is the EWMA smoothing factor of the health score: score =
	// (1-Alpha)*score + Alpha*(observed/declared exec) (default 0.35 —
	// a handful of slow executions flags the slice, one outlier does
	// not).
	Alpha float64
	// SuspectRatio is the score at which a healthy slice becomes
	// suspect (default 1.3: executions run 30% over profile).
	SuspectRatio float64
	// QuarantineRatio is the score at which a suspect slice is
	// quarantined (default 2.0).
	QuarantineRatio float64
	// RecoverRatio is the score a suspect slice must stay at or below
	// for RecoverDwell seconds to be cleared back to healthy (default
	// 1.15). The gap below SuspectRatio is the hysteresis band that
	// stops flapping.
	RecoverRatio float64
	// MinSamples is how many observations a slice needs before it can
	// be suspected — a single slow first execution is not evidence
	// (default 3).
	MinSamples int
	// RecoverDwell is how long a suspect slice's score must stay at or
	// below RecoverRatio before it is cleared (default 5 s).
	RecoverDwell float64
	// Probation is how long a quarantined slice sits out before being
	// readmitted as suspect. Quarantined slices serve no traffic, so
	// without a timed probation the score could never recover (default
	// 30 s).
	Probation float64
	// Hedge enables hedged retries: a request at deadline risk on a
	// suspect slice is duplicated onto healthy hardware, the first
	// completion wins, and the loser is cancelled (hedge.go).
	Hedge bool
	// HedgeBudget bounds the per-function hedge rate: a function may
	// hold at most HedgeBudget hedges per completed request (default
	// 0.1, i.e. at most ~10% duplicate launches).
	HedgeBudget float64
}

func (g *GrayOptions) fillDefaults() {
	if g.Alpha <= 0 || g.Alpha > 1 {
		g.Alpha = 0.35
	}
	if g.SuspectRatio <= 1 {
		g.SuspectRatio = 1.3
	}
	if g.QuarantineRatio <= g.SuspectRatio {
		g.QuarantineRatio = 2.0
		if g.QuarantineRatio <= g.SuspectRatio {
			g.QuarantineRatio = 2 * g.SuspectRatio
		}
	}
	if g.RecoverRatio <= 0 || g.RecoverRatio >= g.SuspectRatio {
		g.RecoverRatio = 1.15
		if g.RecoverRatio >= g.SuspectRatio {
			g.RecoverRatio = 0.9 * g.SuspectRatio
		}
	}
	if g.MinSamples <= 0 {
		g.MinSamples = 3
	}
	if g.RecoverDwell <= 0 {
		g.RecoverDwell = 5
	}
	if g.Probation <= 0 {
		g.Probation = 30
	}
	if g.HedgeBudget <= 0 {
		g.HedgeBudget = 0.1
	}
}

// grayOn reports whether the health scorer is active.
func (p *Platform) grayOn() bool { return p.opts.Gray.Enabled }

// hedgeOn reports whether hedged retries may launch.
func (p *Platform) hedgeOn() bool { return p.opts.Gray.Enabled && p.opts.Gray.Hedge }

// Health-score states of a slice.
const (
	sliceHealthy = iota
	sliceSuspect
	sliceQuarantinedState
)

// sliceHealth is the scorer's per-slice state.
type sliceHealth struct {
	score   float64
	samples int
	state   int
	// belowSince is when the score last dropped to RecoverRatio or
	// below while suspect; -1 when not in a recovery streak.
	belowSince float64
}

// degradeFactor returns the slowdown multiplier a gray-degraded slice
// currently imposes (1 when the slice is fine). Every execution, load
// and transfer on the slice is multiplied by it; ×1.0 is exact in IEEE
// arithmetic, so fault-free runs stay bit-identical.
func (p *Platform) degradeFactor(sl *mig.Slice) float64 {
	if len(p.degraded) == 0 {
		return 1
	}
	if f, ok := p.degraded[sl]; ok {
		return f
	}
	return 1
}

// degradeLoadFactor is the worst degradation factor across a pipeline's
// slices — the initial load is only done when every stage's weights are
// in place, so the slowest slice gates it.
func (p *Platform) degradeLoadFactor(slices []*mig.Slice) float64 {
	f := 1.0
	for _, sl := range slices {
		if g := p.degradeFactor(sl); g > f {
			f = g
		}
	}
	return f
}

// observeSliceExec feeds one execution observation into the slice's
// health score and runs the healthy/suspect/quarantined classification.
// declared is the profiled execution time, observed what the slice
// actually took; their ratio is the scored signal. No-op unless the
// gray subsystem is enabled.
func (p *Platform) observeSliceExec(sl *mig.Slice, declared, observed float64) {
	if !p.grayOn() || declared <= 0 || observed <= 0 {
		return
	}
	g := &p.opts.Gray
	h := p.health[sl]
	if h == nil {
		h = &sliceHealth{belowSince: -1}
		p.health[sl] = h
	}
	ratio := observed / declared
	if h.samples == 0 {
		h.score = ratio
	} else {
		h.score = (1-g.Alpha)*h.score + g.Alpha*ratio
	}
	h.samples++
	now := p.eng.Now()
	switch h.state {
	case sliceHealthy:
		if h.samples >= g.MinSamples && h.score >= g.SuspectRatio {
			h.state = sliceSuspect
			h.belowSince = -1
			p.suspects++
			p.logEvent(EvSliceSuspect, sl.ID(),
				fmt.Sprintf("health score %.2f over %.2f", h.score, g.SuspectRatio))
			if p.decOn() {
				p.decide(decisions.Record{
					Kind: decisions.KindSuspect, Req: decisions.NoRequest,
					Subject: sl.ID(), Rule: "EWMA score over suspect threshold",
					Outcome: "healthy -> suspect",
					Inputs: []decisions.KV{
						kvF("score", h.score),
						kvF("threshold", g.SuspectRatio),
						kvI("samples", h.samples),
					},
				})
			}
		}
	case sliceSuspect:
		switch {
		case h.score >= g.QuarantineRatio:
			p.quarantineSlice(sl, h)
		case h.score <= g.RecoverRatio:
			if h.belowSince < 0 {
				h.belowSince = now
			}
			if now-h.belowSince >= g.RecoverDwell {
				h.state = sliceHealthy
				h.belowSince = -1
				p.logEvent(EvRecover, sl.ID(),
					fmt.Sprintf("health score %.2f back under %.2f", h.score, g.RecoverRatio))
				if p.decOn() {
					p.decide(decisions.Record{
						Kind: decisions.KindSuspect, Req: decisions.NoRequest,
						Subject: sl.ID(), Rule: "recovery dwell satisfied",
						Outcome: "suspect -> healthy",
						Inputs: []decisions.KV{
							kvF("score", h.score),
							kvF("threshold", g.RecoverRatio),
							kvF("dwell", g.RecoverDwell),
						},
					})
				}
			}
		default:
			// Score in the hysteresis band: the recovery streak breaks.
			h.belowSince = -1
		}
	}
	// Quarantined slices serve no traffic; a straggling observation
	// (completion that raced the quarantine) changes nothing.
}

// quarantineSlice pulls a suspect slice from placement: its owner is
// torn down through the fault paths (in-flight requests retry on
// healthy hardware, pipelines re-place elsewhere), its bindings' warmth
// stamps are voided, and a probation timer readmits it later.
func (p *Platform) quarantineSlice(sl *mig.Slice, h *sliceHealth) {
	h.state = sliceQuarantinedState
	h.belowSince = -1
	sl.SetQuarantined(true)
	p.quarantines++
	p.logEvent(EvSliceQuarantine, sl.ID(),
		fmt.Sprintf("health score %.2f over %.2f", h.score, p.opts.Gray.QuarantineRatio))
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindQuarantine, Req: decisions.NoRequest,
			Subject: sl.ID(), Rule: "EWMA score over quarantine threshold",
			Outcome: "suspect -> quarantined; owner torn down",
			Inputs: []decisions.KV{
				kvF("score", h.score),
				kvF("threshold", p.opts.Gray.QuarantineRatio),
				kvF("probation", p.opts.Gray.Probation),
			},
		})
	}
	p.tearDownQuarantined(sl)
	p.utilTouch(sl)
	// A quarantine is an anomaly: freeze the provenance ring after the
	// teardown so the dump carries the retries it caused.
	if p.decOn() {
		p.opts.Decisions.Freeze(p.eng.Now(), "quarantine "+sl.ID())
	}
	p.eng.After(p.opts.Gray.Probation, func() { p.liftQuarantine(sl) })
	// Torn-down demand must re-place on healthy hardware now, not at
	// the next control period.
	p.kickScaleUp()
}

// tearDownQuarantined evicts whatever owns the quarantined slice. The
// teardown reuses the fail-stop paths (failShared/failInstance), then
// additionally voids the affected functions' last-use stamps on the
// node: that warmth was earned on hardware whose timing lied, and the
// next launch must not trust it.
func (p *Platform) tearDownQuarantined(sl *mig.Slice) {
	if sl.Free() {
		return
	}
	inv := p.inv[sl.GPU.Node]
	for _, ss := range inv.shared {
		if ss.slice == sl {
			fns := make([]*Function, 0, len(ss.bindings))
			for _, b := range ss.bindings {
				fns = append(fns, b.fn)
			}
			p.failShared(ss)
			for _, fn := range fns {
				delete(fn.lastNodeUse, inv.node.ID)
			}
			return
		}
	}
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			for _, s := range inst.slices {
				if s == sl {
					p.failInstance(inst)
					delete(fn.lastNodeUse, inst.node.ID)
					return
				}
			}
		}
	}
}

// liftQuarantine readmits a quarantined slice as suspect after its
// probation: it re-enters placement, but its score is parked at the
// suspect threshold so it must prove itself with genuinely fast
// executions (one slow probe re-quarantines it quickly).
func (p *Platform) liftQuarantine(sl *mig.Slice) {
	h := p.health[sl]
	if h == nil || h.state != sliceQuarantinedState {
		return
	}
	sl.SetQuarantined(false)
	p.utilTouch(sl)
	h.state = sliceSuspect
	h.score = p.opts.Gray.SuspectRatio
	h.samples = 0
	h.belowSince = -1
	p.logEvent(EvSliceSuspect, sl.ID(), "probation over: readmitted for probing")
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindSuspect, Req: decisions.NoRequest,
			Subject: sl.ID(), Rule: "probation expired",
			Outcome: "quarantined -> suspect (must re-earn healthy)",
			Inputs:  []decisions.KV{kvF("score", h.score)},
		})
	}
	p.kickScaleUp()
}

// sampleHealth appends every scored slice's current health score to its
// timeline (called from sampleUtilization while the scorer is on). The
// walk is sorted by slice ID so the trace recorder's counter timeline
// (one "health" counter per slice hardware track) is deterministic.
func (p *Platform) sampleHealth(now float64) {
	ids := make([]string, 0, len(p.health))
	byID := make(map[string]*sliceHealth, len(p.health))
	for sl, h := range p.health {
		ids = append(ids, sl.ID())
		byID[sl.ID()] = h
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := byID[id]
		tl := p.HealthScores[id]
		if tl == nil {
			tl = &metrics.Timeline{}
			p.HealthScores[id] = tl
		}
		tl.Add(now, h.score)
		if r := p.opts.Obs; r != nil {
			r.Counter("health", "health", id, now, h.score)
		}
	}
}

// healthStateName names a scorer state for metrics labels.
func healthStateName(state int) string {
	switch state {
	case sliceSuspect:
		return "suspect"
	case sliceQuarantinedState:
		return "quarantined"
	}
	return "healthy"
}

// Suspects returns how many healthy->suspect transitions occurred.
func (p *Platform) Suspects() int { return p.suspects }

// Quarantines returns how many slices were quarantined.
func (p *Platform) Quarantines() int { return p.quarantines }

// DegradedActive returns how many slices are gray-degraded right now.
func (p *Platform) DegradedActive() int { return len(p.degraded) }
