package platform

import (
	"fmt"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/obs/decisions"
)

// This file is the model-swapping memory tier (ROADMAP §3, after
// Torpor/FaaSwap): each node's host memory becomes a managed pool of
// per-model copies (cluster.MemPool) instead of a bare byte counter.
// With the tier enabled:
//
//   - A binding or exclusive launch reserves its model copy by name;
//     when the pool is full, the least-recently-used idle copy is
//     evicted to make room (its binding's next load pays a full cold
//     start — "Cold" now means the pool truly evicted the model).
//   - When a binding unbinds (keep-alive ageing, pool reclaim), its
//     copy is parked rather than freed: a later rebind or exclusive
//     launch reclaims it and pays SwapInTime, not a remote refetch.
//   - A brownout at LevelShed first tries to swap an idle exclusive
//     instance out of GPU memory (paying SwapOutTime for the
//     device-to-host drain) instead of shedding traffic, when the pool
//     has headroom (overload.Config.PreferSwapRelief).
//
// Everything is gated on Options.Swap.Enabled: disabled, the platform
// uses the legacy anonymous warm accounting and is bit-for-bit
// identical to pre-tier behaviour (enforced by TestSwapDisabledIdentity).

// SwapOptions configure the model-swapping memory tier.
type SwapOptions struct {
	// Enabled turns the tier on. Off (the zero value), warm host copies
	// use the legacy anonymous accounting and nothing here applies.
	Enabled bool
	// PinRecent protects a binding's host copy from pool eviction while
	// the binding was active within this window (default 2 s), so a
	// momentary lull cannot evict a model mid-burst.
	PinRecent float64
	// ParkAfter is the swap-aware demotion window (default 10 s): a
	// time-sharing binding idle this long whose pool copy is
	// materialised unbinds early — long before the legacy keep-alive
	// window — parking the copy. The legacy path must hold bindings to
	// stay warm; the tier needs only the pool copy, so idle models stop
	// pinning shared slices they are not using. Their return costs one
	// swap-in, not a refetch.
	ParkAfter float64
}

func (o *SwapOptions) fillDefaults() {
	if o.PinRecent <= 0 {
		o.PinRecent = 2
	}
	if o.ParkAfter <= 0 {
		o.ParkAfter = 10
	}
}

// swapOn reports whether the swap tier is active.
func (p *Platform) swapOn() bool { return p.opts.Swap.Enabled }

// swapChurnPromote scales the reload-churn promotion threshold: a
// binding whose decayed churn accumulator exceeds this many swap-ins'
// worth of reload time gets an exclusive instance (controller.scaleUp).
// With churnDecay 0.7 per control tick, two reloads a couple of seconds
// apart cross the bar; a single reload never does.
const (
	swapChurnPromote = 1.25
	churnDecay       = 0.7
)

// decayLoadChurn ages every binding's reload-churn accumulator; called
// once per control tick while the swap tier is on.
func (p *Platform) decayLoadChurn() {
	for _, inv := range p.inv {
		for _, ss := range inv.shared {
			for _, b := range ss.bindings {
				b.loadChurn *= churnDecay
			}
		}
	}
}

// SwapIns returns how many loads were served from a parked host-pool
// copy instead of a remote refetch.
func (p *Platform) SwapIns() int { return p.swapIns }

// SwapOuts returns how many host-pool copies were evicted under memory
// pressure.
func (p *Platform) SwapOuts() int { return p.swapOuts }

// SwapReliefs returns how many brownout sheds were converted into swap
// demotions of idle exclusive instances.
func (p *Platform) SwapReliefs() int { return p.swapReliefs }

// ensureHostCopy reserves pool space for fn's model on node, evicting
// LRU victims as needed. It returns the reserved size (0 when the pool
// could not fit the copy even after evictions) and whether a
// materialised copy was already resident — the caller then knows the
// next load is a swap-in, not a remote fetch. A bare reservation (fetch
// never completed) is reclaimed but reported as no copy: warm starts
// need data, not just space.
func (p *Platform) ensureHostCopy(node *cluster.Node, fn *Function) (gb float64, hadCopy bool) {
	pool := node.Pool()
	name := fn.spec.Name
	if pool.Has(name) {
		loaded := pool.LoadedCopy(name)
		if loaded && pool.Parked(name) {
			p.swapIns++
			p.logEvent(EvSwapIn, name, fmt.Sprintf("reclaimed parked copy on node%d", node.ID))
		}
		pool.Reclaim(name)
		return fn.memGB, loaded
	}
	now := p.eng.Now()
	for !pool.ReserveModel(name, fn.memGB) {
		victim, vgb, ok := pool.EvictLRU(func(k string) bool {
			return p.copyEvictable(node, k, now)
		})
		if !ok {
			return 0, false
		}
		p.dropHostCopy(node, victim, vgb)
	}
	return fn.memGB, false
}

// copyEvictable reports whether model key's host copy on node may be
// evicted: not while the model has a live exclusive instance there, and
// not while its time-sharing binding is resident, has work in flight,
// or was active within the PinRecent window.
func (p *Platform) copyEvictable(node *cluster.Node, key string, now float64) bool {
	fn := p.fnByName[key]
	if fn == nil {
		return true
	}
	for _, inst := range fn.instances {
		if inst.node == node && !inst.failed {
			return false
		}
	}
	if b := fn.ts; b != nil && b.shared.inv.node == node {
		if b.outstanding > 0 || b.resident {
			return false
		}
		if b.tracker.IdleFor(now) < p.opts.Swap.PinRecent {
			return false
		}
	}
	return true
}

// dropHostCopy records the pool eviction of model key's copy on node:
// the owning binding (if any) loses its warm backing, so its next load
// pays a full cold start.
func (p *Platform) dropHostCopy(node *cluster.Node, key string, gb float64) {
	if fn := p.fnByName[key]; fn != nil {
		if b := fn.ts; b != nil && b.shared.inv.node == node {
			b.hostMemGB = 0
			b.everLoaded = false
		}
	}
	p.swapOuts++
	p.logEvent(EvSwapOut, key, fmt.Sprintf("pool eviction on node%d (%.1f GB)", node.ID, gb))
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindSwapEvict, Func: key, Req: decisions.NoRequest,
			Subject: fmt.Sprintf("node%d", node.ID),
			Rule:    "LRU host-pool eviction under memory pressure",
			Outcome: "host copy dropped; next load is a cold start",
			Inputs: []decisions.KV{
				kvF("gb", gb),
				kvF("occupancy", node.Pool().Occupancy()),
			},
		})
	}
}

// parkIfUnused parks fn's host copy on node when nothing there still
// uses it: no live exclusive instance and no binding holding the copy.
// Called when an exclusive instance releases — its model stays parked
// in the pool for a cheap swap-in until pressure evicts it.
func (p *Platform) parkIfUnused(fn *Function, node *cluster.Node) {
	for _, other := range fn.instances {
		if other.node == node && !other.failed {
			return
		}
	}
	if b := fn.ts; b != nil && b.shared.inv.node == node && b.hostMemGB > 0 {
		return
	}
	node.Pool().Park(fn.spec.Name)
}

// poolOccupancy is the mean host-pool occupancy across nodes, the
// pressure signal PreferSwapRelief consults.
func (p *Platform) poolOccupancy() float64 {
	if len(p.cl.Nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range p.cl.Nodes {
		sum += n.Pool().Occupancy()
	}
	return sum / float64(len(p.cl.Nodes))
}

// trySwapRelief converts a brownout shed into a swap demotion: the most
// idle exclusive instance with no in-flight work drains its model to
// the host pool (SwapOutTime) and then demotes, freeing GPU capacity
// for the overloaded function; the triggering request is admitted into
// the normal routing path instead of being rejected. One relief may be
// in flight at a time; while it drains, further sheds proceed as usual.
func (p *Platform) trySwapRelief() bool {
	if !p.swapOn() || p.reliefPending {
		return false
	}
	if !p.opts.Overload.PreferSwapRelief(p.ladder.Level(), p.poolOccupancy()) {
		return false
	}
	now := p.eng.Now()
	var victim *Instance
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			if inst.retiring || inst.failed || inst.migrating || inst.outstanding > 0 {
				continue
			}
			if inst.tracker.IsHot(now) {
				continue
			}
			if victim == nil || inst.tracker.IdleFor(now) > victim.tracker.IdleFor(now) ||
				(inst.tracker.IdleFor(now) == victim.tracker.IdleFor(now) && inst.id < victim.id) {
				victim = inst
			}
		}
	}
	if victim == nil {
		return false
	}
	victim.retiring = true
	p.reliefPending = true
	p.swapReliefs++
	drain := keepalive.SwapOutTime(victim.fn.memGB)
	p.logEvent(EvSwapOut, victim.id,
		fmt.Sprintf("brownout swap relief: draining to host pool (%.2fs)", drain))
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindSwapRelief, Func: victim.fn.spec.Name,
			Req: decisions.NoRequest, Subject: victim.id,
			Rule:    "most-idle cold instance swapped out instead of shedding",
			Outcome: "draining to host pool, then demote",
			Inputs: []decisions.KV{
				kvF("drain", drain),
				kvF("idle", victim.tracker.IdleFor(now)),
				kvF("occupancy", p.poolOccupancy()),
			},
		})
	}
	p.eng.After(drain, func() {
		p.reliefPending = false
		if victim.failed {
			return
		}
		if victim.outstanding == 0 {
			p.demote(victim)
		} else {
			victim.retiring = false
		}
	})
	return true
}
