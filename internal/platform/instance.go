package platform

import (
	"fmt"
	"math"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/sim"
)

// Instance is one exclusive-hot deployment of a function: a monolithic
// instance on one slice or a pipeline across several. Time-sharing
// deployments are tsBindings (invoker.go).
type Instance struct {
	id   string
	fn   *Function
	node *cluster.Node
	// clk is the node's shard clock (the engine itself on a sequential
	// kernel): all the instance's timers — load completion, station
	// service, inter-stage transfer hops — are node-local events.
	clk  sim.Clock
	plan pipeline.Plan

	slices   []*mig.Slice
	stations []*sim.Station
	// bstations replaces stations when dynamic batching is enabled.
	bstations []*sim.BatchStation

	outstanding int
	capacity    int

	tracker  *keepalive.Tracker
	retiring bool
	// loadEndsAt is when the initial model load finishes; stations stay
	// paused until then.
	loadEndsAt float64
	// migrating marks a pipeline instance being replaced by a
	// monolithic one (§5.3 pipeline migration).
	migrating bool
	// failed marks an instance torn down by a hardware fault: stale
	// engine events referencing it become no-ops, and its in-flight
	// requests were already retried elsewhere.
	failed bool
	// inflight tracks admitted, not-yet-completed requests so a fault
	// can retry exactly the work that was lost.
	inflight []*request
}

// forget drops rq from the in-flight list (on completion).
func (inst *Instance) forget(rq *request) {
	for i, x := range inst.inflight {
		if x == rq {
			inst.inflight = append(inst.inflight[:i], inst.inflight[i+1:]...)
			return
		}
	}
}

// Pipelined reports whether the instance spans multiple slices.
func (inst *Instance) Pipelined() bool { return inst.plan.Pipelined() }

// launchInstance allocates the plan's slices and starts the stage
// stations, paused for the load time. Slices are the physical slices
// matched to plan stages.
func (p *Platform) launchInstance(fn *Function, node *cluster.Node, plan pipeline.Plan, slices []*mig.Slice, loadTime float64) *Instance {
	now := p.eng.Now()
	// A gray-degraded slice stretches the initial weight fetch too; the
	// pipeline is ready only when its slowest slice is (x1.0 when no
	// slice is degraded, which is exact).
	loadTime *= p.degradeLoadFactor(slices)
	p.instSeq++
	inst := &Instance{
		id:      fmt.Sprintf("%s#%d", fn.spec.Name, p.instSeq),
		fn:      fn,
		node:    node,
		clk:     p.inv[node.ID].clk,
		plan:    plan,
		slices:  slices,
		tracker: keepalive.NewTracker(),
	}
	bottleneck := plan.Bottleneck
	if p.opts.MaxBatch > 1 {
		// With batching, the effective per-request service time at full
		// batch is exec·n^gamma / n.
		bottleneck *= math.Pow(float64(p.opts.MaxBatch), p.opts.BatchGamma-1)
	}
	inst.capacity = admissionCapacity(fn.spec.SLO, bottleneck, p.opts.QueueSlack)
	inst.loadEndsAt = now + loadTime
	if p.swapOn() {
		// The initial fetch materialises the pool copy when it lands;
		// until then the reservation is space without data. No-op if the
		// pool evicted the reservation mid-fetch.
		name := fn.spec.Name
		inst.clk.After(loadTime, func() {
			if !inst.failed {
				node.Pool().MarkLoaded(name)
			}
		})
	}
	for si, sp := range plan.Stages {
		sl := slices[si]
		if sl.Type != sp.SliceType {
			panic(fmt.Sprintf("platform: slice %s type %v != stage type %v",
				sl.ID(), sl.Type, sp.SliceType))
		}
		sl.Allocate(inst.id, now)
		if p.opts.MaxBatch > 1 {
			exec := sp.ExecTime
			slice := sl
			bs := sim.NewBatchStation(inst.clk, inst.id+"/"+sl.ID(),
				p.opts.MaxBatch, p.opts.BatchWindow,
				func(n int) sim.Time {
					// Gray degradation stretches the whole batch (x1.0
					// exact when the slice is clean).
					return exec * math.Pow(float64(n), p.opts.BatchGamma) *
						p.degradeFactor(slice)
				})
			bs.OnStart = func(int) {
				if inst.failed {
					return
				}
				slice.SetActive(true, p.eng.Now())
				inst.tracker.Begin(p.eng.Now())
			}
			bs.OnEnd = func(int) {
				if inst.failed {
					return
				}
				slice.SetActive(false, p.eng.Now())
				inst.tracker.End(p.eng.Now())
			}
			bs.Pause()
			inst.bstations = append(inst.bstations, bs)
			continue
		}
		st := sim.NewStation(inst.clk, inst.id+"/"+sl.ID())
		st.Pause()
		inst.stations = append(inst.stations, st)
	}
	resume := func() {
		if inst.failed {
			return
		}
		for _, st := range inst.stations {
			st.Resume()
		}
		for _, bs := range inst.bstations {
			bs.Resume()
		}
	}
	if loadTime > 0 {
		inst.clk.After(loadTime, resume)
	} else {
		resume()
	}
	if r := p.opts.Obs; r != nil && loadTime > 0 {
		for si, sl := range slices {
			r.SliceSpan("load", "load "+fn.spec.Name, sl.ID(),
				fn.spec.ID, -1, si, now, now+loadTime)
		}
	}
	p.utilTouch(slices...)
	if p.utilOn() && loadTime > 0 {
		for _, sl := range slices {
			p.utilBusy(sl, util.BusyLoad, now, now+loadTime)
		}
	}
	inst.tracker.Touch(now)
	fn.instances = append(fn.instances, inst)
	fn.sortInstances()
	fn.lastNodeUse[node.ID] = now
	p.launched++
	p.logEvent(EvLaunch, inst.id, plan.String())
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindBind, Func: fn.spec.Name,
			Req: decisions.NoRequest, Subject: inst.id,
			Rule:    "policy placement",
			Outcome: "launched " + plan.String(),
			Inputs: []decisions.KV{
				kv("slices", sliceIDs(slices)),
				kvF("load", loadTime),
				kvI("capacity", inst.capacity),
			},
		})
	}
	return inst
}

// admissionCapacity bounds outstanding requests so queued work can still
// meet the SLO: the paper routes "until its serving capacity is
// reached".
func admissionCapacity(slo, bottleneck, slack float64) int {
	if bottleneck <= 0 {
		return 1
	}
	c := int(slack * slo / bottleneck)
	if c < 1 {
		c = 1
	}
	return c
}

// admit runs a request through the instance's stage stations.
func (inst *Instance) admit(p *Platform, rq *request) {
	inst.outstanding++
	inst.inflight = append(inst.inflight, rq)
	rq.snapshot()
	inst.tracker.Touch(p.eng.Now())
	inst.enqueueStage(p, rq, 0)
	// The request may be at deadline risk on a suspect slice: consider
	// duplicating it onto healthy hardware (no-op unless hedging is on).
	p.maybeHedgeInstance(inst, rq)
}

func (inst *Instance) enqueueStage(p *Platform, rq *request, si int) {
	if inst.failed {
		// The instance died while rq was between stages; the fault
		// handler already retried it elsewhere.
		return
	}
	if len(inst.bstations) > 0 {
		inst.enqueueStageBatched(p, rq, si)
		return
	}
	// One allocation per stage visit: the stageJob embeds the sim.Job
	// and serves as its Runner, instead of a closure pair capturing a
	// heap cell per variable.
	sj := &stageJob{p: p, inst: inst, rq: rq, si: si, enqueueAt: p.eng.Now()}
	sj.job.Runner = sj
	inst.stations[si].Enqueue(&sj.job)
}

// stageJob is one request's passage through one exclusive-pipeline
// stage: the sim.Job it rides plus the state its callbacks need.
type stageJob struct {
	job       sim.Job
	p         *Platform
	inst      *Instance
	rq        *request
	si        int
	enqueueAt float64
	// exec is what the stage actually took (profile time stretched by
	// any gray degradation); it stays 0 when the copy was cancelled
	// before service, so Done can tell the two apart.
	exec float64
}

// Service implements sim.Runner.
func (sj *stageJob) Service() sim.Time {
	p, inst, rq, si := sj.p, sj.inst, sj.rq, sj.si
	if inst.failed || rq.hedgeCancelled() {
		return 0
	}
	sl := inst.slices[si]
	sp := inst.plan.Stages[si]
	now := p.eng.Now()
	wait := now - sj.enqueueAt
	// Attribute the portion of the wait spent in the initial
	// model load to Load (Fig. 14); the remaining wait becomes
	// Queue as the residual at completion.
	load := inst.loadEndsAt - sj.enqueueAt
	if load < 0 {
		load = 0
	}
	if load > wait {
		load = wait
	}
	rq.rec.Load += load
	exec := sp.ExecTime * p.degradeFactor(sl)
	sj.exec = exec
	rq.rec.Exec += exec
	sl.SetActive(true, now)
	inst.tracker.Begin(now)
	if r := p.opts.Obs; r != nil {
		if si == 0 {
			r.AsyncSpan("queue", "queue", rq.rec.Func, rq.rec.ID,
				rq.waitStart, now, "")
		}
		if load > 0 {
			// The share of the wait spent behind the initial model
			// load, so the critical-path reconstruction can split
			// load from queue exactly as the metrics layer does.
			r.AsyncSpan("load", "load-wait", rq.rec.Func, rq.rec.ID,
				sj.enqueueAt, sj.enqueueAt+load, "")
		}
		// Declared stays the profile time; a degraded slice's
		// stretch shows up as span drift.
		r.StageSpan("exec "+inst.fn.spec.Name, sl.ID(),
			sp.SliceType.String(), rq.rec.Func, rq.rec.ID, si,
			now, now+exec, sp.ExecTime)
	}
	p.utilBusy(sl, util.BusyExec, now, now+exec)
	return exec
}

// Done implements sim.Runner.
func (sj *stageJob) Done() {
	p, inst, rq, si, exec := sj.p, sj.inst, sj.rq, sj.si, sj.exec
	if inst.failed {
		return
	}
	sl := inst.slices[si]
	sp := inst.plan.Stages[si]
	now := p.eng.Now()
	if exec > 0 {
		sl.SetActive(false, now)
		inst.tracker.End(now)
	}
	if rq.hedgeCancelled() {
		// Losing copy of a hedged request: stop its pipeline here;
		// complete() swallows it (no record, waste counted).
		inst.outstanding--
		inst.forget(rq)
		p.complete(rq)
		p.onInstanceSlack(inst)
		return
	}
	if si+1 < len(inst.stations) {
		tr := sp.TransferOut * p.degradeFactor(sl)
		rq.rec.Transfer += tr
		p.opts.Obs.SliceSpan("transfer", "transfer", sl.ID(),
			rq.rec.Func, rq.rec.ID, si, now, now+tr)
		p.utilBusy(sl, util.BusyTransfer, now, now+tr)
		inst.clk.After(tr, func() {
			inst.enqueueStage(p, rq, si+1)
		})
		p.observeSliceExec(sl, sp.ExecTime, exec)
		return
	}
	inst.outstanding--
	inst.forget(rq)
	p.complete(rq)
	p.onInstanceSlack(inst)
	// Health observation last: it may quarantine the slice and
	// tear this instance down, which must not race the
	// completion bookkeeping above.
	p.observeSliceExec(sl, sp.ExecTime, exec)
}

// enqueueStageBatched runs the batched stage path: requests coalesce at
// the stage's BatchStation and each is charged the full batch duration
// (the slice was busy that long on its behalf; waiting to form the
// batch lands in Queue via the completion residual).
func (inst *Instance) enqueueStageBatched(p *Platform, rq *request, si int) {
	if inst.failed {
		return
	}
	bs := inst.bstations[si]
	sl := inst.slices[si]
	sp := inst.plan.Stages[si]
	bs.Enqueue(func(n int) {
		if inst.failed {
			return
		}
		if rq.hedgeCancelled() {
			// Losing copy of a hedged request: the batch it rode already
			// ran, but its own pipeline stops here unrecorded.
			inst.outstanding--
			inst.forget(rq)
			p.complete(rq)
			p.onInstanceSlack(inst)
			return
		}
		declared := sp.ExecTime * math.Pow(float64(n), p.opts.BatchGamma)
		dur := declared * p.degradeFactor(sl)
		rq.rec.Exec += dur
		if r := p.opts.Obs; r != nil {
			// The batch callback fires at completion, so the exec span
			// runs backwards from now over the batch duration.
			now := p.eng.Now()
			if si == 0 {
				r.AsyncSpan("queue", "queue", rq.rec.Func, rq.rec.ID,
					rq.waitStart, now-dur, "")
			}
			// Declared is the unbatched profile time; the batched span is
			// longer by n^gamma, which is exactly the drift the analytics
			// layer should surface.
			r.StageSpan("exec "+inst.fn.spec.Name, sl.ID(),
				sp.SliceType.String(), rq.rec.Func, rq.rec.ID, si,
				now-dur, now, sp.ExecTime)
		}
		p.utilBusy(sl, util.BusyExec, p.eng.Now()-dur, p.eng.Now())
		if si+1 < len(inst.bstations) {
			tr := sp.TransferOut * p.degradeFactor(sl)
			rq.rec.Transfer += tr
			p.opts.Obs.SliceSpan("transfer", "transfer", sl.ID(),
				rq.rec.Func, rq.rec.ID, si, p.eng.Now(), p.eng.Now()+tr)
			p.utilBusy(sl, util.BusyTransfer, p.eng.Now(), p.eng.Now()+tr)
			inst.clk.After(tr, func() {
				inst.enqueueStageBatched(p, rq, si+1)
			})
			p.observeSliceExec(sl, declared, dur)
			return
		}
		inst.outstanding--
		inst.forget(rq)
		inst.tracker.Touch(p.eng.Now())
		p.complete(rq)
		p.onInstanceSlack(inst)
		// Health observation last (may quarantine and tear down).
		p.observeSliceExec(sl, declared, dur)
	})
}

// hasCapacity reports whether the instance can admit another request.
func (inst *Instance) hasCapacity() bool {
	return !inst.retiring && inst.outstanding < inst.capacity
}

// release frees the instance's slices and unlinks it. Only call when no
// requests are outstanding.
func (p *Platform) releaseInstance(inst *Instance) {
	if inst.outstanding > 0 {
		panic("platform: releasing instance with outstanding requests")
	}
	now := p.eng.Now()
	var freed []*mig.Slice
	for _, sl := range inst.slices {
		sl.Release(now)
		freed = append(freed, sl)
	}
	inst.fn.removeInstance(inst)
	inst.fn.lastNodeUse[inst.node.ID] = now
	p.utilTouch(freed...)
	if p.swapOn() {
		p.parkIfUnused(inst.fn, inst.node)
	}
	p.logEvent(EvRelease, inst.id, "")
	// Freed large slices may enable pipeline migration (§5.3).
	if p.opts.Policy.Migration() {
		for _, sl := range freed {
			p.tryMigration(sl)
		}
	}
}

// onInstanceSlack runs after a completion frees capacity: drain pending
// requests, and finish retirement when a draining instance empties.
func (p *Platform) onInstanceSlack(inst *Instance) {
	fn := inst.fn
	for len(fn.pending) > 0 && inst.hasCapacity() {
		rq := fn.popPending()
		if p.decOn() {
			p.decideDrain(rq, inst.id, "admitted on completion slack")
		}
		inst.admit(p, rq)
	}
	// A fault-failed instance already released its slices in
	// failInstance; releasing again would double-release and panic.
	if inst.retiring && !inst.failed && inst.outstanding == 0 {
		p.releaseInstance(inst)
	}
}
