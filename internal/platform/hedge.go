package platform

import (
	"fmt"

	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
)

// Hedged retries (gray-failure mitigation, stage 2): a request whose
// estimated finish on a *suspect* slice would miss its deadline
// launches a duplicate on healthy hardware. Both copies run; the first
// completion wins and is the request's one recorded sample, the loser
// is cancelled wherever it is (skipped in queue, swallowed at
// completion) and its spent execution/load lands in the wasted-work
// counter, never in the metrics. Hedges are charged against a
// per-function budget (GrayOptions.HedgeBudget) and are disabled
// outright above the brownout conserve rung
// (overload.Config.HedgingAllowed) — duplicate work is the wrong
// medicine for an overloaded cluster.

// hedgeState links the two copies of a hedged request. Exactly one of
// them wins (first through Platform.complete); the other's completion,
// drop or fault-retry is swallowed.
type hedgeState struct {
	primary *request
	clone   *request
	// winner is whichever copy completed first; nil while racing.
	winner *request
	// dead counts copies that lost their hardware while racing. When
	// both die the hedge is void and the last copy retries normally.
	dead int
}

// hedgeCancelled reports whether rq is the losing copy of a settled
// hedge: its partner already completed, so rq must produce no record
// and should stop consuming service as soon as it is noticed.
func (rq *request) hedgeCancelled() bool {
	h := rq.hedge
	return h != nil && h.winner != nil && h.winner != rq
}

// settleHedge runs in Platform.complete for hedged copies. The first
// copy through claims the win and is recorded normally (false). The
// loser's completion is swallowed (true): its spent work since
// admission is charged to the wasted-hedge counter and no sample is
// recorded — satellite invariant: one Completion per hedged request.
func (p *Platform) settleHedge(rq *request) (loser bool) {
	h := rq.hedge
	if h.winner == nil {
		h.winner = rq
		if rq == h.clone {
			p.hedgeWins++
		}
		if p.decOn() {
			outcome := "primary won"
			if rq == h.clone {
				outcome = "clone won"
			}
			p.decide(decisions.Record{
				Kind: decisions.KindHedgeSettle, Func: rq.fn.spec.Name,
				Req: rq.id, Attempt: rq.attempts,
				Rule: "first-completion-wins", Outcome: outcome,
			})
		}
		return false
	}
	if h.winner == rq {
		return false
	}
	p.chargeHedgeWaste(rq, "losing copy finished")
	return true
}

// chargeHedgeWaste books the losing copy's spent execution and load
// since its admission snapshot as wasted hedge work.
func (p *Platform) chargeHedgeWaste(rq *request, detail string) {
	wasted := (rq.rec.Exec - rq.snapExec) + (rq.rec.Load - rq.snapLoad)
	if wasted < 0 {
		wasted = 0
	}
	p.hedgeWastedSec += wasted
	p.hedgeCancels++
	p.logEvent(EvHedgeCancel, rq.fn.spec.Name,
		fmt.Sprintf("%s, %.3fs wasted", detail, wasted))
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindHedgeSettle, Func: rq.fn.spec.Name,
			Req: rq.id, Attempt: rq.attempts,
			Rule: "loser-cancelled", Outcome: detail,
			Inputs: []decisions.KV{kvF("wasted", wasted)},
		})
	}
}

// shouldHedge gates a hedge launch for rq currently placed on sl with
// the given estimated finish time: the slice must be suspect (healthy
// needs no hedge, quarantined hardware is already torn down), the
// request must be at genuine deadline risk and on its first attempt
// (fault retries already re-route; a retry's duplicate would double
// the retry), the brownout ladder must allow duplicate work, and the
// function must have hedge budget left.
func (p *Platform) shouldHedge(sl *mig.Slice, rq *request, estFinish float64) bool {
	if !p.hedgeOn() || rq.hedge != nil || rq.attempts > 0 {
		return false
	}
	if rq.fn.spec.SLO <= 0 || estFinish <= rq.deadline {
		return false
	}
	if !p.opts.Overload.HedgingAllowed(p.ladder.Level()) {
		return false
	}
	h := p.health[sl]
	if h == nil || h.state != sliceSuspect {
		return false
	}
	fn := rq.fn
	return float64(fn.hedges) < p.opts.Gray.HedgeBudget*float64(fn.served+1)
}

// maybeHedgeTS considers hedging the job that just started service on a
// shared slice.
func (p *Platform) maybeHedgeTS(ss *sharedSlice, rq *request, estFinish float64) {
	if p.shouldHedge(ss.slice, rq, estFinish) {
		p.launchHedge(rq, nil, ss)
	}
}

// maybeHedgeInstance considers hedging a request just admitted to an
// exclusive instance: if any of the instance's slices is suspect, the
// finish estimate stretches the plan latency by that slice's score.
func (p *Platform) maybeHedgeInstance(inst *Instance, rq *request) {
	if !p.hedgeOn() || rq.hedge != nil {
		return
	}
	var worst *sliceHealth
	var worstSl *mig.Slice
	for _, sl := range inst.slices {
		if h := p.health[sl]; h != nil && h.state == sliceSuspect {
			if worst == nil || h.score > worst.score {
				worst, worstSl = h, sl
			}
		}
	}
	if worst == nil {
		return
	}
	now := p.eng.Now()
	loadWait := inst.loadEndsAt - now
	if loadWait < 0 {
		loadWait = 0
	}
	est := now + loadWait +
		float64(inst.outstanding-1)*inst.plan.Bottleneck +
		inst.plan.Latency*worst.score
	if p.shouldHedge(worstSl, rq, est) {
		p.launchHedge(rq, inst, nil)
	}
}

// launchHedge duplicates rq onto healthy hardware, avoiding wherever
// the primary sits. Targets in routing order: an exclusive instance
// with capacity whose slices are all clean, then the function's
// time-sharing binding if it lives on a clean slice. If no clean target
// exists the hedge silently does not launch — duplicating onto equally
// suspect hardware buys nothing.
func (p *Platform) launchHedge(rq *request, avoidInst *Instance, avoidShared *sharedSlice) {
	fn := rq.fn
	now := p.eng.Now()
	clone := &request{
		id:       rq.id,
		fn:       fn,
		arrival:  rq.arrival,
		deadline: rq.deadline,
		rec: metrics.RequestRecord{
			ID:      rq.rec.ID,
			Func:    rq.rec.Func,
			Arrival: rq.rec.Arrival,
			SLO:     rq.rec.SLO,
		},
	}
	for _, inst := range fn.instances {
		if inst == avoidInst || inst.failed || !inst.hasCapacity() {
			continue
		}
		if !p.instanceSlicesClean(inst) {
			continue
		}
		p.armHedge(rq, clone, now)
		p.logEvent(EvHedge, fn.spec.Name,
			fmt.Sprintf("request %d duplicated onto %s", rq.id, inst.id))
		if p.decOn() {
			p.decide(decisions.Record{
				Kind: decisions.KindHedgeSpawn, Func: fn.spec.Name,
				Req: rq.id, Attempt: rq.attempts, Subject: inst.id,
				Rule:    "deadline at risk on suspect slice",
				Outcome: "duplicated onto clean exclusive instance",
				Inputs: []decisions.KV{
					kvI("budget_used", fn.hedges),
					kvI("served", fn.served),
				},
			})
		}
		inst.admit(p, clone)
		return
	}
	if b := fn.ts; b != nil && b.shared != avoidShared && !b.shared.failed &&
		b.outstanding < b.capacity && p.sliceClean(b.shared.slice) {
		p.armHedge(rq, clone, now)
		p.logEvent(EvHedge, fn.spec.Name,
			fmt.Sprintf("request %d duplicated onto shared %s", rq.id, b.shared.slice.ID()))
		if p.decOn() {
			p.decide(decisions.Record{
				Kind: decisions.KindHedgeSpawn, Func: fn.spec.Name,
				Req: rq.id, Attempt: rq.attempts, Subject: b.shared.slice.ID(),
				Rule:    "deadline at risk on suspect slice",
				Outcome: "duplicated onto clean shared slice",
				Inputs: []decisions.KV{
					kvI("budget_used", fn.hedges),
					kvI("served", fn.served),
				},
			})
		}
		// The clone enqueues under the function's own fair-queue flow,
		// so its service charges the function's virtual time like any
		// other request — hedging cannot steal fairness from
		// co-resident flows (MQFQ accounting is automatic).
		b.shared.enqueue(p, b, clone)
		return
	}
}

// armHedge links the two copies and charges the function's budget.
func (p *Platform) armHedge(rq, clone *request, now float64) {
	h := &hedgeState{primary: rq, clone: clone}
	rq.hedge, clone.hedge = h, h
	rq.fn.hedges++
	p.hedges++
	clone.waitStart = now
}

// sliceClean reports whether a slice is a sound hedge target: usable
// hardware with no adverse health evidence.
func (p *Platform) sliceClean(sl *mig.Slice) bool {
	if !sl.Usable(p.eng.Now()) {
		return false
	}
	h := p.health[sl]
	return h == nil || h.state == sliceHealthy
}

// instanceSlicesClean reports whether every slice of an instance is a
// sound hedge target.
func (p *Platform) instanceSlicesClean(inst *Instance) bool {
	for _, sl := range inst.slices {
		if !p.sliceClean(sl) {
			return false
		}
	}
	return true
}

// Hedges returns how many hedged duplicates launched.
func (p *Platform) Hedges() int { return p.hedges }

// HedgeWins returns how many hedged requests the duplicate won (the
// clone completed before the primary).
func (p *Platform) HedgeWins() int { return p.hedgeWins }

// HedgeCancels returns how many losing hedge copies were cancelled or
// swallowed.
func (p *Platform) HedgeCancels() int { return p.hedgeCancels }

// HedgeWastedSeconds returns the execution+load seconds losing hedge
// copies burned — the price paid for the tail-latency insurance,
// bounded by the per-function budget.
func (p *Platform) HedgeWastedSeconds() float64 { return p.hedgeWastedSec }
