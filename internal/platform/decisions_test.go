package platform

import (
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/scheduler"
)

// richOptions is a configuration exercising every decision point at
// once: gray scoring with hedging, degraded faults with retries,
// the swap tier, and full overload control.
func richOptions(dec *decisions.Recorder) Options {
	g := grayTestOptions()
	g.Hedge = true
	g.HedgeBudget = 0.1
	return Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 7,
		Faults:    &faults.Spec{DegradedRate: 0.05, DegradedMTTR: 60, SliceRate: 0.02, SliceMTTR: 30},
		Gray:      g,
		Swap:      SwapOptions{Enabled: true},
		Overload:  overload.Config{Admission: true, FairQueue: true, Brownout: true},
		Decisions: dec,
	}
}

func runRich(t *testing.T, dec *decisions.Recorder) *Platform {
	t.Helper()
	specs := specsFor(t, dnn.Small)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, richOptions(dec))
	p.Run(flatTrace(specs, 6, 180, 7), 60)
	return p
}

// TestDecisionsDisabledIdentity: the provenance recorder is a pure
// observer — a same-seed run with it attached must be bit-for-bit
// identical to one without it, across every subsystem at once.
func TestDecisionsDisabledIdentity(t *testing.T) {
	a := runRich(t, nil)
	b := runRich(t, decisions.NewRecorder(0))
	if !reflect.DeepEqual(a.Collector().Records(), b.Collector().Records()) {
		t.Error("request records diverged with the recorder attached")
	}
	if a.Engine().Executed() != b.Engine().Executed() {
		t.Errorf("event counts diverged: %d vs %d",
			a.Engine().Executed(), b.Engine().Executed())
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("event logs diverged")
	}
	if !reflect.DeepEqual(a.UtilGPCs, b.UtilGPCs) {
		t.Error("utilisation timelines diverged")
	}
	if a.Launched() != b.Launched() || a.Evictions() != b.Evictions() ||
		a.Hedges() != b.Hedges() || a.SwapIns() != b.SwapIns() ||
		a.Rejected() != b.Rejected() {
		t.Error("platform counters diverged")
	}
}

// TestDecisionChains: every request in a full multi-subsystem run has a
// decision chain; each chain opens with the admission verdict (admit or
// reject), is strictly seq-ordered, and hedge spawns are eventually
// settled within the same chain.
func TestDecisionChains(t *testing.T) {
	dec := decisions.NewRecorder(0)
	p := runRich(t, dec)

	total := p.Collector().Len()
	if total == 0 || dec.Total() == 0 {
		t.Fatalf("empty run: %d requests, %d decisions", total, dec.Total())
	}
	reqs := dec.Requests()
	if len(reqs) != total {
		t.Fatalf("chains for %d of %d requests", len(reqs), total)
	}
	hedged := 0
	for _, id := range reqs {
		chain := dec.Chain(id)
		if len(chain) == 0 {
			t.Fatalf("req %d: empty chain", id)
		}
		if k := chain[0].Kind; k != decisions.KindAdmit && k != decisions.KindReject {
			t.Fatalf("req %d: chain opens with %v, want admit or reject", id, k)
		}
		spawns, settles := 0, 0
		for i, rec := range chain {
			if rec.Req != id {
				t.Fatalf("req %d: foreign record %+v", id, rec)
			}
			if i > 0 && rec.Seq <= chain[i-1].Seq {
				t.Fatalf("req %d: chain not seq-ordered", id)
			}
			switch rec.Kind {
			case decisions.KindHedgeSpawn:
				spawns++
			case decisions.KindHedgeSettle:
				settles++
			}
		}
		if spawns > 0 {
			hedged++
			if settles == 0 {
				t.Errorf("req %d: %d hedge spawns never settled", id, spawns)
			}
		}
	}
	if p.Hedges() > 0 && hedged == 0 {
		t.Error("platform hedged but no chain carries a hedge-spawn record")
	}
	counts := dec.Counts()
	if counts["admit"] == 0 || counts["plan-miss"] == 0 {
		t.Errorf("expected admit and plan-miss decisions, got %v", counts)
	}
	if p.Rejected() > 0 && counts["reject"] == 0 {
		t.Errorf("%d rejections but no reject decisions", p.Rejected())
	}
	if p.FaultsInjected() == 0 {
		t.Fatal("no faults injected; the chain test lost its retry coverage")
	}
}

// TestQuarantineFreezesRing: a quarantine is an anomaly — it must
// freeze the decision ring into a dump whose records include the
// quarantine verdict itself.
func TestQuarantineFreezesRing(t *testing.T) {
	dec := decisions.NewRecorder(0)
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(1)
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 1,
		Gray: grayTestOptions(), Decisions: dec,
	})
	inv, fn := p.inv[0], p.funcs[0]
	b := inv.bindTS(fn)
	if b == nil {
		t.Fatal("bindTS failed")
	}
	sl := b.shared.slice
	for i := 0; i < 3; i++ {
		p.observeSliceExec(sl, 1, 2)
	}
	p.observeSliceExec(sl, 1, 8)
	if p.Quarantines() != 1 {
		t.Fatalf("quarantines = %d, want 1", p.Quarantines())
	}
	if dec.Freezes() != 1 {
		t.Fatalf("freezes = %d, want 1", dec.Freezes())
	}
	dumps := dec.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	found := false
	for _, rec := range dumps[0].Records {
		if rec.Kind == decisions.KindQuarantine {
			found = true
		}
	}
	if !found {
		t.Error("frozen dump does not contain the quarantine decision")
	}
	if counts := dec.Counts(); counts["suspect"] == 0 || counts["quarantine"] != 1 {
		t.Errorf("counts = %v, want suspect>0 and quarantine=1", counts)
	}
}
