package platform

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fluidfaas/internal/faults"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs/decisions"
)

// This file is the platform's reaction to hardware faults: injection of
// the deterministic fault schedule, teardown of instances and
// time-sharing bindings on failed hardware, and deadline-aware request
// retry. Placement automatically avoids failed hardware because
// FreeSlices filters unhealthy slices/GPUs/nodes; relaunching and
// rebinding happen through the ordinary demand path (retried requests
// pend, kickScaleUp places them elsewhere).

// scheduleFaults builds the run's fault schedule and registers the
// injection and repair events. A nil or empty spec registers nothing,
// leaving fault-free runs bit-for-bit identical.
func (p *Platform) scheduleFaults(end float64) {
	if p.opts.Faults == nil || !p.opts.Faults.Enabled() {
		return
	}
	topo := faults.Topology{}
	for _, n := range p.cl.Nodes {
		nt := faults.NodeTopo{}
		for _, g := range n.GPUs {
			nt.Slices = append(nt.Slices, len(g.Slices))
		}
		topo.Nodes = append(topo.Nodes, nt)
	}
	sched := faults.Build(*p.opts.Faults, p.opts.Seed, end, topo)
	for _, ev := range sched.Events {
		ev := ev
		if ev.Time > end {
			continue
		}
		p.eng.At(ev.Time, func() { p.injectFault(ev) })
		if ev.Recovery > ev.Time && ev.Recovery <= end {
			p.eng.At(ev.Recovery, func() { p.recoverFault(ev) })
		}
	}
}

// injectFault applies one fault event: mark the hardware unhealthy and
// tear down whatever was running on it. Striking already-failed
// hardware is a no-op (overlapping faults happen at high rates).
func (p *Platform) injectFault(ev faults.Event) {
	switch ev.Kind {
	case faults.SliceFault:
		sl := p.cl.Nodes[ev.Node].GPUs[ev.GPU].Slices[ev.Slice]
		if !sl.Healthy() {
			return
		}
		sl.SetHealthy(false)
		p.faultsInjected++
		p.logEvent(EvFault, sl.ID(), "slice ECC fault")
		p.failSlice(sl)
		p.utilTouch(sl)
	case faults.GPUFault:
		g := p.cl.Nodes[ev.Node].GPUs[ev.GPU]
		if !g.Healthy() {
			return
		}
		g.SetHealthy(false)
		p.faultsInjected++
		p.logEvent(EvFault, fmt.Sprintf("gpu%d", g.ID), "GPU failure")
		for _, sl := range g.Slices {
			p.failSlice(sl)
		}
		p.utilTouch(g.Slices...)
	case faults.SliceDegraded:
		// Gray failure: the slice keeps serving, but every execution,
		// load and transfer on it stretches by the severity factor. No
		// teardown, no placement change — fail-stop machinery never
		// notices, which is exactly what makes gray failures hard.
		sl := p.cl.Nodes[ev.Node].GPUs[ev.GPU].Slices[ev.Slice]
		if !sl.Healthy() {
			return
		}
		if _, already := p.degraded[sl]; already {
			return
		}
		sev := ev.Severity
		if sev < 1 {
			sev = 1
		}
		p.degraded[sl] = sev
		p.faultsInjected++
		p.logEvent(EvDegrade, sl.ID(), fmt.Sprintf("gray degradation x%.1f", sev))
		// Nothing freed, nothing to re-place: skip the scale-up kick.
		return
	case faults.NodeCrash:
		node := p.cl.Nodes[ev.Node]
		if !node.Healthy() {
			return
		}
		node.SetHealthy(false)
		p.faultsInjected++
		p.logEvent(EvFault, fmt.Sprintf("node%d", node.ID), "node crash")
		for _, g := range node.GPUs {
			for _, sl := range g.Slices {
				p.failSlice(sl)
			}
			p.utilTouch(g.Slices...)
		}
		// The crash loses the host memory holding warm copies, and the
		// node's image/weight cache: future loads there are cold. Every
		// surviving binding on the node must also forget its reservation
		// — a binding that kept hostMemGB past DropWarm would release
		// memory the pool no longer tracks and trip the negative-memory
		// panic on unbind.
		node.DropWarm()
		for _, fn := range p.funcs {
			if b := fn.ts; b != nil && b.shared.inv.node == node {
				b.hostMemGB = 0
				b.everLoaded = false
			}
			delete(fn.lastNodeUse, node.ID)
		}
	}
	// Retried and pending demand should be re-placed on surviving
	// hardware without waiting for the next control period.
	p.kickScaleUp()
}

// recoverFault repairs the hardware a fault event took down. Only the
// layer the fault struck is repaired: a slice that faulted on its own
// stays down when its GPU or node recovers.
func (p *Platform) recoverFault(ev faults.Event) {
	switch ev.Kind {
	case faults.SliceFault:
		sl := p.cl.Nodes[ev.Node].GPUs[ev.GPU].Slices[ev.Slice]
		if sl.Healthy() {
			return
		}
		sl.SetHealthy(true)
		p.recoveries++
		p.logEvent(EvRecover, sl.ID(), "slice repaired")
		p.utilTouch(sl)
	case faults.GPUFault:
		g := p.cl.Nodes[ev.Node].GPUs[ev.GPU]
		if g.Healthy() {
			return
		}
		g.SetHealthy(true)
		p.recoveries++
		p.logEvent(EvRecover, fmt.Sprintf("gpu%d", g.ID), "GPU recovered")
		p.utilTouch(g.Slices...)
	case faults.NodeCrash:
		node := p.cl.Nodes[ev.Node]
		if node.Healthy() {
			return
		}
		node.SetHealthy(true)
		p.recoveries++
		p.logEvent(EvRecover, fmt.Sprintf("node%d", node.ID), "node recovered")
		for _, g := range node.GPUs {
			p.utilTouch(g.Slices...)
		}
	case faults.SliceDegraded:
		sl := p.cl.Nodes[ev.Node].GPUs[ev.GPU].Slices[ev.Slice]
		if _, ok := p.degraded[sl]; !ok {
			return
		}
		delete(p.degraded, sl)
		p.recoveries++
		p.logEvent(EvRecover, sl.ID(), "gray degradation cleared")
		// The slice was never out of placement; no capacity appeared.
		// (The health scorer still has to observe its way back to
		// healthy — the platform has no oracle for the recovery.)
		return
	}
	// Recovered capacity can absorb pending demand immediately.
	p.kickScaleUp()
}

// failSlice tears down whatever owns the slice: an exclusive instance
// (all its slices free up, in-flight requests retry) or a time-sharing
// pool slice (bindings go cold, queued requests retry). A free slice
// needs no teardown — it just stops appearing in placement views.
func (p *Platform) failSlice(sl *mig.Slice) {
	if sl.Free() {
		return
	}
	inv := p.inv[sl.GPU.Node]
	for _, ss := range inv.shared {
		if ss.slice == sl {
			p.failShared(ss)
			return
		}
	}
	for _, fn := range p.funcs {
		for _, inst := range fn.instances {
			for _, s := range inst.slices {
				if s == sl {
					p.failInstance(inst)
					return
				}
			}
		}
	}
}

// failInstance tears down an exclusive instance whose hardware failed:
// its slices are released (healthy siblings of a pipeline return to the
// free pool), and every in-flight request is retried elsewhere.
func (p *Platform) failInstance(inst *Instance) {
	if inst.failed {
		return
	}
	inst.failed = true
	inst.retiring = true
	now := p.eng.Now()
	for _, sl := range inst.slices {
		// The upfront load/exec spans on this slice extend past the
		// teardown instant; truncate them (and their busy-seconds) in both
		// the trace and the ledger so recorded busy time matches work the
		// hardware actually performed.
		p.opts.Obs.CancelSliceWork(sl.ID(), now)
		p.utilCancel(sl, now)
		if !sl.Free() {
			sl.Release(now)
		}
	}
	p.utilTouch(inst.slices...)
	inst.fn.removeInstance(inst)
	p.logEvent(EvRelease, inst.id, "torn down by fault")
	rqs := inst.inflight
	inst.inflight = nil
	inst.outstanding = 0
	for _, rq := range rqs {
		p.retryAfterFault(rq, "instance "+inst.id+" failed")
	}
}

// failShared tears down a time-sharing pool slice whose hardware
// failed: the serving and queued requests retry elsewhere, and every
// binding goes cold (its GPU-resident and host-warm copies are gone
// with the hardware; rebinding happens on the next request).
func (p *Platform) failShared(ss *sharedSlice) {
	if ss.failed {
		return
	}
	ss.failed = true
	inv := ss.inv
	now := p.eng.Now()
	// Truncate the in-flight load/exec spans recorded upfront on the
	// slice: the work died with the hardware.
	p.opts.Obs.CancelSliceWork(ss.slice.ID(), now)
	p.utilCancel(ss.slice, now)
	var rqs []*request
	if ss.serving != nil {
		rqs = append(rqs, ss.serving.rq)
		ss.serving = nil
	}
	for _, job := range ss.drainJobs() {
		rqs = append(rqs, job.rq)
	}
	ss.busy = false
	ss.servingWork = 0

	names := make([]string, 0, len(ss.bindings))
	for name := range ss.bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := ss.bindings[name]
		b.outstanding = 0
		b.resident = false
		if b.state.State() == keepalive.TimeSharing {
			if err := b.state.To(keepalive.Warm); err != nil {
				panic(err)
			}
		}
		if b.state.State() == keepalive.Warm {
			if err := b.state.To(keepalive.Cold); err != nil {
				panic(err)
			}
		}
		if b.hostMemGB > 0 {
			if p.swapOn() {
				inv.node.Pool().ReleaseModel(name)
			} else {
				inv.node.ReleaseWarm(b.hostMemGB)
			}
			b.hostMemGB = 0
		}
		b.fn.ts = nil
		delete(ss.bindings, name)
		ss.lru.Remove(name)
	}
	ss.resident = nil

	for i, x := range inv.shared {
		if x == ss {
			inv.shared = append(inv.shared[:i], inv.shared[i+1:]...)
			break
		}
	}
	if ss.slice.Active() {
		ss.slice.SetActive(false, now)
	}
	ss.slice.Release(now)
	p.utilTouch(ss.slice)
	p.logEvent(EvPoolShrink, ss.slice.ID(), "torn down by fault")
	for _, rq := range rqs {
		p.retryAfterFault(rq, "shared slice "+ss.slice.ID()+" failed")
	}
}

// retryAfterFault re-routes a request that lost its hardware, with
// capped exponential backoff. Deadline-aware: a request whose retry
// could not land before its drop horizon (or the end of the run), or
// whose attempt budget is spent, is abandoned as a failed drop.
func (p *Platform) retryAfterFault(rq *request, reason string) {
	now := p.eng.Now()
	// Hedge audit: a hedged copy must never ALSO spawn a fault retry —
	// its partner is already the retry. A settled loser has nothing to
	// recover (the winner's completion was recorded); a copy that dies
	// while the race is live is abandoned unless its partner is dead
	// too, in which case the hedge is void and this copy alone falls
	// through to the ordinary retry path.
	if h := rq.hedge; h != nil {
		if h.winner != nil && h.winner != rq {
			p.chargeHedgeWaste(rq, "losing copy lost its hardware")
			return
		}
		if h.winner == nil {
			h.dead++
			if h.dead < 2 {
				p.logEvent(EvHedgeCancel, rq.fn.spec.Name,
					"hedge copy lost its hardware; partner races on")
				return
			}
			rq.hedge = nil
		}
	}
	// Roll the breakdown back to the admission snapshot: the failed
	// attempt's partial execution is wasted work and must not double-
	// count against the retry's own execution. The wasted wall-clock
	// time lands in Queue as the completion residual.
	rq.rec.Exec = rq.snapExec
	rq.rec.Load = rq.snapLoad
	rq.rec.Transfer = rq.snapTransfer
	rq.attempts++
	pol := p.opts.Retry
	backoff := retryBackoff(pol, rq.id, rq.attempts)
	horizon := p.runEnd
	if rq.fn.spec.SLO > 0 {
		if h := rq.arrival + p.opts.PendingDrop*rq.fn.spec.SLO; h < horizon {
			horizon = h
		}
	}
	if rq.attempts > pol.MaxAttempts || now+backoff >= horizon {
		rq.rec.Dropped = true
		rq.rec.Failed = true
		rq.rec.Completion = now
		p.logEvent(EvDrop, rq.fn.spec.Name, "abandoned: "+reason)
		if p.decOn() {
			p.decide(decisions.Record{
				Kind: decisions.KindDrop, Func: rq.fn.spec.Name,
				Req: rq.id, Attempt: rq.attempts,
				Rule: "retry-abandoned", Outcome: "abandoned: " + reason,
				Inputs: []decisions.KV{
					kvI("attempts", rq.attempts),
					kvI("max_attempts", pol.MaxAttempts),
					kvF("backoff", backoff),
					kvF("horizon", horizon),
				},
			})
		}
		p.record(rq.rec)
		return
	}
	rq.rec.Retries++
	p.retries++
	p.logEvent(EvRetry, rq.fn.spec.Name, reason)
	if p.decOn() {
		p.decide(decisions.Record{
			Kind: decisions.KindRetry, Func: rq.fn.spec.Name,
			Req: rq.id, Attempt: rq.attempts,
			Rule: "fault-retry", Outcome: reason,
			Inputs: []decisions.KV{kvF("backoff", backoff)},
		})
	}
	p.opts.Obs.AsyncMark("retry", "retry", rq.rec.Func, rq.rec.ID, now, reason)
	p.eng.After(backoff, func() { p.route(rq) })
}

// retryBackoff is the deterministic backoff before retry attempt number
// `attempt` (1-based) of request id: the policy's capped exponential,
// multiplied by a jitter in [0.5, 1.5) derived from the request ID and
// attempt number. Without jitter, every request a fault strands retries
// at the exact same instant and the thundering herd re-collides; seeding
// the jitter from the request identity (FNV-1a, no shared RNG stream)
// keeps same-seed runs bit-reproducible. The jitter applies after the
// cap, so the worst case is 1.5x BackoffCap.
func retryBackoff(pol RetryPolicy, id, attempt int) float64 {
	b := pol.Backoff * math.Pow(2, float64(attempt-1))
	if b > pol.BackoffCap {
		b = pol.BackoffCap
	}
	return b * (0.5 + retryJitter(id, attempt))
}

// retryJitter hashes (id, attempt) to [0, 1).
func retryJitter(id, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(id))
	binary.LittleEndian.PutUint64(buf[8:], uint64(attempt))
	h.Write(buf[:])
	// Top 53 bits -> uniform dyadic rational in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}
