package platform

import (
	"testing"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/scheduler"
)

// TestReclaimIdleDrainsPending: when reclaimIdle moves a binding to a
// sibling pool slice, the function's pending overflow must drain into
// the new home immediately — not sit until the next completion or
// control tick (which may never come for an otherwise-idle function).
func TestReclaimIdleDrainsPending(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(2)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 7})
	inv := p.inv[0]
	fn := p.funcs[0]

	b := inv.bindTS(fn)
	if b == nil {
		t.Fatal("bindTS failed")
	}
	old := b.shared
	// A second, empty pool slice for the sibling move.
	if inv.growPool(fn) == nil {
		t.Fatal("growPool failed with free slices available")
	}

	p.eng.At(10, func() {
		// The binding has been idle 10 s (past reclaim's 5 s bar).
		// Overflow arrives just as exclusive demand forces reclamation.
		for i := 0; i < 2; i++ {
			fn.pushPending(&request{fn: fn, arrival: 10, deadline: 10 + fn.spec.SLO})
		}
		if freed := inv.reclaimIdle(); freed != 1 {
			t.Errorf("freed %d slices, want 1", freed)
		}
		if b.shared == old {
			t.Error("binding did not sibling-move")
		}
		if b.outstanding == 0 {
			t.Error("sibling move did not drain pending into the new slice")
		}
		if len(fn.pending)+b.outstanding != 2 {
			t.Errorf("pending %d + outstanding %d != 2 requests",
				len(fn.pending), b.outstanding)
		}
		if len(fn.pending) > 0 && b.outstanding < b.capacity {
			t.Error("requests left pending with binding capacity to spare")
		}
	})
	p.eng.RunUntil(11)
}

// TestMigrationSkipsIdlePipeline: pipeline migration must not burn a
// freed large slice (and a model load) on a pipelined instance that has
// no in-flight work and a cooled-off tracker — that instance is about
// to be demoted anyway.
func TestMigrationSkipsIdlePipeline(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	cl := smallCluster(2)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 7})
	node := cl.Nodes[0]

	// Find a function that pipelines over two 1g slices and can also
	// run monolithically on the 4g slice within its SLO.
	avail := []mig.SliceType{mig.Slice1g, mig.Slice1g}
	var fn *Function
	var plan pipeline.Plan
	for _, f := range p.funcs {
		pl, _, err := pipeline.Construct(f.spec.DAG, f.spec.Parts, avail, f.spec.SLO)
		if err != nil || !pl.Pipelined() {
			continue
		}
		exec, ok := f.monoExec[mig.Slice4g]
		if !ok || exec > f.spec.SLO || f.memGB > float64(mig.Slice4g.MemGB()) ||
			f.spec.DAG.MonoMinGPCs > mig.Slice4g.GPCs() {
			continue
		}
		fn, plan = f, pl
		break
	}
	if fn == nil {
		t.Fatal("no small function pipelines over {1g,1g} and fits a 4g monolith")
	}

	var inst *Instance
	p.eng.At(0, func() {
		slices := make([]*mig.Slice, len(plan.Stages))
		for i, sp := range plan.Stages {
			for _, sl := range node.FreeSlices(0) {
				if sl.Type == sp.SliceType && !containsSlice(slices, sl) {
					slices[i] = sl
					break
				}
			}
			if slices[i] == nil {
				t.Fatalf("no free %v slice for stage %d", sp.SliceType, i)
			}
		}
		inst = p.launchInstance(fn, node, plan, slices, 0)
	})

	free4g := func(now float64) *mig.Slice {
		for _, sl := range node.FreeSlices(now) {
			if sl.Type == mig.Slice4g {
				return sl
			}
		}
		t.Fatal("no free 4g slice")
		return nil
	}
	p.eng.At(100, func() {
		// 100 s idle, nothing outstanding: migration must skip it.
		p.tryMigration(free4g(100))
		if p.Migrations() != 0 {
			t.Fatal("migrated an idle pipeline with no outstanding work")
		}
		// With in-flight work the same instance is worth migrating.
		inst.outstanding = 1
		p.tryMigration(free4g(100))
		if p.Migrations() != 1 {
			t.Error("did not migrate a pipeline with outstanding work")
		}
		if !inst.migrating || !inst.retiring {
			t.Error("migrated instance not marked migrating/retiring")
		}
		inst.outstanding = 0 // let the run wind down cleanly
	})
	p.eng.RunUntil(101)
}

func containsSlice(slices []*mig.Slice, sl *mig.Slice) bool {
	for _, s := range slices {
		if s == sl {
			return true
		}
	}
	return false
}

// TestDroppedPendingCompletionAtDropTime: a request dropped from the
// pending queue must record the drop time as its completion. A zero
// Completion made Latency() negative, poisoning mean/percentile stats.
func TestDroppedPendingCompletionAtDropTime(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 7})
	fn := p.funcs[0]

	dropAt := 5 + p.opts.PendingDrop*fn.spec.SLO + 1
	p.eng.At(5, func() {
		fn.pushPending(&request{
			fn: fn, arrival: 5, deadline: 5 + fn.spec.SLO,
			rec: metrics.RequestRecord{Arrival: 5, SLO: fn.spec.SLO},
		})
	})
	p.eng.At(dropAt, func() { p.dropStalePending() })
	p.eng.RunUntil(dropAt + 1)

	recs := p.Collector().Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d requests, want 1", len(recs))
	}
	r := recs[0]
	if !r.Dropped {
		t.Fatal("stale pending request was not dropped")
	}
	if r.Completion != dropAt {
		t.Errorf("Completion = %v, want drop time %v", r.Completion, dropAt)
	}
	if r.Latency() <= 0 {
		t.Errorf("dropped request latency = %v, want positive", r.Latency())
	}
}
