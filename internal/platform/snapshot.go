package platform

import "sort"

// Snapshot is a deterministic, JSON-marshalable view of the platform's
// live state: per-slice occupancy, per-function deployment and
// keep-alive state, and the run counters. It backs the introspection
// server's /state endpoint; building one reads platform state and never
// mutates it. Slices appear in topology order and functions in ID
// order, so the same platform state marshals byte-identically.
type Snapshot struct {
	Time      float64         `json:"time"`
	Slices    []SliceState    `json:"slices"`
	Functions []FunctionState `json:"functions"`
	HostPools []HostPoolState `json:"hostPools"`
	Counters  Counters        `json:"counters"`
	Brownout  string          `json:"brownout"`
	Pressure  float64         `json:"pressure"`
}

// HostPoolState is one node's host-memory pool occupancy.
type HostPoolState struct {
	Node       int     `json:"node"`
	CapacityGB float64 `json:"capacityGB"`
	UsedGB     float64 `json:"usedGB"`
	Occupancy  float64 `json:"occupancy"`
	// Models lists resident model copies, sorted (empty under the
	// legacy anonymous accounting).
	Models []string `json:"models,omitempty"`
	Parked int      `json:"parked,omitempty"`
}

// SliceState is one MIG slice's occupancy.
type SliceState struct {
	ID      string `json:"id"`
	Node    int    `json:"node"`
	Type    string `json:"type"`
	Owner   string `json:"owner,omitempty"`
	Active  bool   `json:"active"`
	Healthy bool   `json:"healthy"`
	// Pool is set for slices in an invoker's time-sharing pool.
	Pool *PoolState `json:"pool,omitempty"`
}

// PoolState is the time-sharing view of a pool slice.
type PoolState struct {
	// Resident names the function loaded in MIG memory ("" = none).
	Resident string `json:"resident,omitempty"`
	// Bindings lists the functions bound to the slice, sorted.
	Bindings []string `json:"bindings"`
	Queued   int      `json:"queued"`
	Busy     bool     `json:"busy"`
}

// FunctionState is one registered function's deployment state.
type FunctionState struct {
	Name     string  `json:"name"`
	SLO      float64 `json:"slo"`
	Priority int     `json:"priority,omitempty"`
	// KeepAlive is the function's time-sharing keep-alive state
	// ("cold" when it has no binding at all).
	KeepAlive string `json:"keepAlive"`
	Pending   int    `json:"pending"`
	// TSOutstanding counts requests admitted to the time-sharing
	// binding and not yet finalised.
	TSOutstanding int             `json:"tsOutstanding,omitempty"`
	Instances     []InstanceState `json:"instances"`
}

// InstanceState is one exclusive-hot instance.
type InstanceState struct {
	ID          string   `json:"id"`
	Slices      []string `json:"slices"`
	Pipelined   bool     `json:"pipelined"`
	Outstanding int      `json:"outstanding"`
	Capacity    int      `json:"capacity"`
	Retiring    bool     `json:"retiring,omitempty"`
}

// Counters are the run-level totals the accessor methods expose,
// gathered for one JSON document.
type Counters struct {
	Launched     int `json:"launched"`
	Evicted      int `json:"evicted"`
	Migrated     int `json:"migrated"`
	Faults       int `json:"faults"`
	Recoveries   int `json:"recoveries"`
	Retries      int `json:"retries"`
	Rejected     int `json:"rejected"`
	Shed         int `json:"shed"`
	Contractions int `json:"contractions"`
	SwapIns      int `json:"swapIns,omitempty"`
	SwapOuts     int `json:"swapOuts,omitempty"`
	SwapReliefs  int `json:"swapReliefs,omitempty"`
}

// Snapshot captures the platform's current state.
func (p *Platform) Snapshot() Snapshot {
	s := Snapshot{
		Time: p.eng.Now(),
		Counters: Counters{
			Launched: p.launched, Evicted: p.evicted, Migrated: p.migrated,
			Faults: p.faultsInjected, Recoveries: p.recoveries, Retries: p.retries,
			Rejected: p.rejected, Shed: p.shed, Contractions: p.contractions,
			SwapIns: p.swapIns, SwapOuts: p.swapOuts, SwapReliefs: p.swapReliefs,
		},
		Brownout: p.ladder.Level().String(),
		Pressure: p.lastPressure,
	}

	// Pool views, keyed by slice ID.
	pools := map[string]*PoolState{}
	for _, inv := range p.inv {
		for _, ss := range inv.shared {
			ps := &PoolState{Queued: ss.qlen(), Busy: ss.busy}
			if ss.resident != nil {
				ps.Resident = ss.resident.fn.spec.Name
			}
			for name := range ss.bindings {
				ps.Bindings = append(ps.Bindings, name)
			}
			sort.Strings(ps.Bindings)
			pools[ss.slice.ID()] = ps
		}
	}

	for _, node := range p.cl.Nodes {
		for _, g := range node.GPUs {
			for _, sl := range g.Slices {
				s.Slices = append(s.Slices, SliceState{
					ID: sl.ID(), Node: node.ID, Type: sl.Type.String(),
					Owner: sl.Owner, Active: sl.Active(), Healthy: sl.Healthy(),
					Pool: pools[sl.ID()],
				})
			}
		}
	}

	for _, node := range p.cl.Nodes {
		pool := node.Pool()
		s.HostPools = append(s.HostPools, HostPoolState{
			Node: node.ID, CapacityGB: pool.CapacityGB(), UsedGB: pool.UsedGB(),
			Occupancy: pool.Occupancy(), Models: pool.Models(), Parked: pool.ParkedCount(),
		})
	}

	for _, fn := range p.funcs {
		fs := FunctionState{
			Name: fn.spec.Name, SLO: fn.spec.SLO, Priority: fn.spec.Priority,
			KeepAlive: "cold", Pending: len(fn.pending),
			Instances: []InstanceState{},
		}
		if fn.ts != nil {
			fs.KeepAlive = fn.ts.state.State().String()
			fs.TSOutstanding = fn.ts.outstanding
		} else if len(fn.instances) > 0 {
			fs.KeepAlive = "exclusive-hot"
		}
		for _, inst := range fn.instances {
			is := InstanceState{
				ID: inst.id, Pipelined: inst.Pipelined(),
				Outstanding: inst.outstanding, Capacity: inst.capacity,
				Retiring: inst.retiring,
			}
			for _, sl := range inst.slices {
				is.Slices = append(is.Slices, sl.ID())
			}
			fs.Instances = append(fs.Instances, is)
		}
		s.Functions = append(s.Functions, fs)
	}
	return s
}
