// Package platform is the serverless platform: controller (autoscaling),
// FFS load balancer (heterogeneity-aware routing, §5.3), and per-node
// invokers (pipeline construction, slice allocation, hotness-aware
// eviction-based time sharing, pipeline migration). It executes
// functions as tandem queueing stations on a deterministic discrete-
// event engine, so whole-cluster runs over production-scale traces take
// milliseconds and are exactly reproducible.
package platform

import (
	"fmt"
	"math"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dag"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/overload"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/sim"
	"fluidfaas/internal/trace"
)

// FunctionSpec registers one serverless function with the platform.
type FunctionSpec struct {
	// ID is the function index trace requests carry.
	ID int
	// Name for reporting.
	Name string
	// DAG is the FFS DAG with profiles (BUILDDAG-mode output).
	DAG *dag.DAG
	// Parts is the CV-ranked partition list (computed offline, §5.2.2).
	Parts []dag.Partition
	// SLO is the function's latency budget in seconds.
	SLO float64
	// Priority ranks the function for brownout shedding: under extreme
	// pressure the platform rejects traffic of the lowest priority
	// class first. Higher is more important; default 0. With uniform
	// priorities nothing is ever shed.
	Priority int
}

// Options configure a platform run.
type Options struct {
	// Policy decides instance placement and platform features.
	Policy scheduler.Policy
	// Seed feeds the platform's RNG streams.
	Seed int64
	// Shards selects the simulation kernel: <= 1 runs on the sequential
	// sim.Engine; >= 2 runs on a sim.ShardedEngine with shard 0 as the
	// coordinator (arrivals, routing, control loop, cluster-global
	// decisions) and node-local work — stations, instance load/transfer
	// timers, time-sharing service — spread over the remaining shards by
	// node ID. The kernel choice is behaviour-invariant: same-seed runs
	// are bit-for-bit identical at any shard count (enforced by test).
	Shards int
	// ControlPeriod is the autoscaler cadence (default 1 s).
	ControlPeriod float64
	// SamplePeriod is the utilisation sampling cadence (default 1 s).
	SamplePeriod float64
	// IdleDemote is how long an exclusive instance must sit below the
	// hotness threshold before demotion/retirement (default 20 s).
	IdleDemote float64
	// KeepAlive is the exclusive keep-alive timeout of the baselines
	// and the warm->cold timeout of FluidFaaS (default 600 s, §5.3).
	KeepAlive float64
	// QueueSlack scales instance admission capacity:
	// maxOutstanding = max(1, floor(QueueSlack*SLO/bottleneck)).
	// Default 1.
	QueueSlack float64
	// PendingDrop drops a pending request after this multiple of its
	// SLO (default 4, mimicking client-side timeouts; drops count as
	// SLO misses).
	PendingDrop float64
	// MaxInstancesPerFunc caps autoscaling (default 64).
	MaxInstancesPerFunc int
	// MaxBatch enables dynamic batching at instances: stages coalesce
	// up to MaxBatch requests into one execution (1 = off, the paper's
	// configuration; INFless-style serving systems batch).
	MaxBatch int
	// BatchWindow bounds how long a forming batch waits (default 20 ms).
	BatchWindow float64
	// BatchGamma scales batch service time: exec(n) = exec(1)·n^gamma
	// (default 0.7 — sublinear, the reason batching pays).
	BatchGamma float64
	// Faults, when set, injects hardware failures during Run: the
	// schedule is built deterministically from the spec and Seed, so
	// the same seed always produces the same faults. Nil (or an empty
	// spec) leaves the run bit-for-bit identical to a fault-free one.
	Faults *faults.Spec
	// Retry governs how requests that lose their hardware mid-flight
	// are re-routed (deadline-aware, capped exponential backoff). Only
	// consulted when a fault strikes; irrelevant to fault-free runs.
	Retry RetryPolicy
	// Routing selects the load balancer's instance order; the default
	// is the paper's heterogeneity-aware lowest-latency-first (§5.3).
	// The alternatives exist for the routing ablation.
	Routing RoutingOrder
	// Overload enables the overload-control subsystem: SLO-aware
	// admission at route, fair queueing across functions on shared
	// slices, and the brownout degradation ladder. The zero value
	// turns all three off, leaving runs bit-for-bit identical.
	Overload overload.Config
	// Swap enables the model-swapping memory tier (swap.go): per-model
	// host-pool reservations with LRU eviction, parked copies that make
	// rebinds a swap-in instead of a remote refetch, and brownout swap
	// relief. The zero value keeps the legacy anonymous warm accounting,
	// leaving runs bit-for-bit identical.
	Swap SwapOptions
	// Gray enables the gray-failure resilience subsystem (gray.go,
	// hedge.go): per-slice health scoring over observed-vs-declared
	// execution ratios, quarantine of slices whose timing diverges, and
	// (with Gray.Hedge) hedged retries for deadline-at-risk requests on
	// suspect slices. The zero value turns it all off, leaving runs
	// bit-for-bit identical.
	Gray GrayOptions
	// Obs, when set, records per-request traces (typed spans on one
	// track per MIG slice), lifecycle instants, and exportable metrics
	// (latency histograms, per-slice busy counters). The recorder is a
	// pure observer: a run with Obs attached is bit-for-bit identical
	// to one without (nil short-circuits every instrumentation point).
	Obs *obs.Recorder
	// Decisions, when set, records decision provenance: every scheduling
	// choice point (admission, rejection, plan-cache lookups, binds,
	// demotions, swap evictions, brownout transitions, quarantines,
	// hedges, fault retries, drops) logs a typed record of the inputs it
	// saw and the outcome it chose, causally linked to the request's
	// trace by request ID and attempt. Like Obs, it is a pure observer:
	// nil short-circuits every recording point, keeping recorder-off runs
	// bit-for-bit identical (enforced by test).
	Decisions *decisions.Recorder
	// Util, when set, feeds the GPU utilization ledger: a time-weighted
	// per-slice state integrator classifying every slice-second into
	// busy-exec/load/transfer, warm-idle (bound keepalive), cold-idle
	// (free, placeable), stranded (free but too small for any registered
	// stage), quarantined, or reconfiguring, with GPU/node/cluster
	// roll-ups, an exact conservation invariant, and fragmentation
	// analytics. Like Obs and Decisions it is a pure observer: nil
	// short-circuits every hook, keeping ledger-off runs bit-for-bit
	// identical (enforced by test).
	Util *util.Ledger
	// EventLogCap bounds the retained lifecycle-event ring (default
	// 4096). Subscribers on the EventBus see every event regardless;
	// the ring only limits after-the-fact Events() inspection.
	EventLogCap int
	// OnSample, when set, is called every SamplePeriod with the current
	// virtual time and the cluster, so experiments can record custom
	// series (e.g. per-slice-type activity for Fig. 3b).
	OnSample func(now float64, cl *cluster.Cluster)
	// OnComplete, when set, observes every finalised request record
	// (served or dropped). Drivers building higher-level structures —
	// e.g. function-chaining workflows — use it to trigger downstream
	// invocations.
	OnComplete func(rec metrics.RequestRecord)
	// DisablePlanCache turns off the per-function memoized placement
	// planner, forcing every construction to re-walk the partition
	// list. The cache is behaviour-invariant — same-seed runs with it
	// on and off are bit-for-bit identical (enforced by test) — so
	// this exists only for benchmarking the cache itself and for the
	// determinism diff in CI.
	DisablePlanCache bool
}

func (o *Options) fillDefaults() {
	if o.ControlPeriod <= 0 {
		o.ControlPeriod = 1
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 1
	}
	if o.IdleDemote <= 0 {
		o.IdleDemote = 20
	}
	if o.KeepAlive <= 0 {
		o.KeepAlive = 600
	}
	if o.QueueSlack <= 0 {
		o.QueueSlack = 1
	}
	if o.PendingDrop <= 0 {
		o.PendingDrop = 4
	}
	if o.MaxInstancesPerFunc <= 0 {
		o.MaxInstancesPerFunc = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 0.020
	}
	if o.BatchGamma <= 0 {
		o.BatchGamma = 0.7
	}
	if o.Retry.MaxAttempts <= 0 {
		o.Retry.MaxAttempts = 3
	}
	if o.Retry.Backoff <= 0 {
		o.Retry.Backoff = 0.050
	}
	if o.Retry.BackoffCap <= 0 {
		o.Retry.BackoffCap = 1
	}
	o.Swap.fillDefaults()
	o.Gray.fillDefaults()
}

// RetryPolicy bounds fault-triggered request retries. A request whose
// hardware fails is re-routed after a capped exponential backoff; it is
// abandoned (recorded as a failed drop) once the attempt budget is
// spent or no retry can land before its drop deadline.
type RetryPolicy struct {
	// MaxAttempts is the maximum number of re-routes per request
	// (default 3).
	MaxAttempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it (default 50 ms).
	Backoff float64
	// BackoffCap bounds the backoff growth (default 1 s).
	BackoffCap float64
}

// RoutingOrder selects how the load balancer orders a function's
// exclusive-hot instances.
type RoutingOrder int

// Routing orders.
const (
	// RouteLatencyAsc is the paper's heterogeneity-aware routing:
	// lowest unloaded latency first, so urgent requests land on the
	// fastest deployments (§5.3).
	RouteLatencyAsc RoutingOrder = iota
	// RouteLatencyDesc is the adversarial ablation: slowest first.
	RouteLatencyDesc
	// RouteRoundRobin ignores heterogeneity entirely.
	RouteRoundRobin
)

// request is one in-flight invocation.
type request struct {
	id      int
	fn      *Function
	arrival float64
	// deadline = arrival + SLO; pending requests are EDF-ordered.
	deadline float64
	rec      metrics.RequestRecord

	// attempts counts hardware failures this request has suffered; the
	// retry policy bounds how many it may survive.
	attempts int
	// waitStart is when the current attempt began waiting (arrival, or
	// the retry re-route instant). Tracing-only: the queue span of the
	// attempt runs from waitStart to service start.
	waitStart float64
	// snapExec/snapLoad/snapTransfer snapshot the latency breakdown at
	// admission, so a failed attempt's partial accounting can be rolled
	// back (the wasted time then lands in Queue as the residual).
	snapExec     float64
	snapLoad     float64
	snapTransfer float64

	// hedge links the two copies of a hedged request (hedge.go); nil
	// for ordinary requests.
	hedge *hedgeState
}

// snapshot records the breakdown at admission for fault rollback.
func (rq *request) snapshot() {
	rq.snapExec = rq.rec.Exec
	rq.snapLoad = rq.rec.Load
	rq.snapTransfer = rq.rec.Transfer
}

// Platform wires the controller, load balancer and invokers together.
type Platform struct {
	eng      sim.Kernel
	cl       *cluster.Cluster
	opts     Options
	funcs    []*Function
	fnByName map[string]*Function
	inv      []*Invoker
	col      *metrics.Collector

	// Sampled series for Figs. 3a and 16.
	UtilGPCs     metrics.Timeline // active GPCs / total GPCs
	UtilGPUs     metrics.Timeline // GPUs with any active slice / total
	OccupiedGPCs metrics.Timeline // allocated GPCs / total GPCs
	// Fragmentation samples mig.FragmentationIndex over the free slices:
	// how shattered the unallocated compute is (§4).
	Fragmentation metrics.Timeline
	// HostPoolOcc samples the mean host-memory pool occupancy across
	// nodes (the swap tier's pressure signal; sampled regardless of
	// whether the tier is enabled).
	HostPoolOcc metrics.Timeline
	// HealthScores samples each scored slice's health score over time,
	// keyed by slice ID (only populated while Options.Gray is enabled).
	HealthScores map[string]*metrics.Timeline

	events *obs.Bus[Event]

	// Scratch buffers reused across scaleUp passes (controller.go).
	scratchReqs []scheduler.Req
	scratchFns  []*Function

	instSeq   int
	launched  int  // instances launched, for diagnostics
	evicted   int  // time-sharing evictions performed
	migrated  int  // pipeline->monolithic migrations
	scaleKick bool // an immediate scale-up pass is scheduled

	// Fault subsystem state.
	faultsInjected int // effective fault injections
	recoveries     int // hardware repairs applied
	retries        int // fault-triggered request re-routes

	// Overload-control state (all inert when opts.Overload is zero).
	ladder       *overload.Ladder
	maxPriority  int     // highest FunctionSpec.Priority; shedding spares it
	lastPressure float64 // most recent node-pressure sample
	rejected     int     // admission fast-fails
	shed         int     // brownout shed rejections (subset of rejected)
	contractions int     // brownout pipeline contractions
	// rejectReasons counts admission fast-fails by typed cause.
	rejectReasons [numRejectReasons]int

	// Swap-tier state (all inert when opts.Swap is zero).
	swapIns       int  // loads served from a parked host-pool copy
	swapOuts      int  // host-pool copies evicted under pressure
	swapReliefs   int  // brownout sheds converted to swap demotions
	reliefPending bool // a swap-relief drain is in flight

	// Gray-failure resilience state (gray.go, hedge.go; all inert when
	// opts.Gray is zero except degraded, which degraded-slice fault
	// events populate regardless — the slowdown is physics, the scorer
	// is the optional response).
	degraded       map[*mig.Slice]float64      // active severity per degraded slice
	health         map[*mig.Slice]*sliceHealth // scorer state per observed slice
	suspects       int                         // healthy->suspect transitions
	quarantines    int                         // slices quarantined
	hedges         int                         // hedged duplicates launched
	hedgeWins      int                         // hedges whose clone won the race
	hedgeCancels   int                         // losing copies cancelled/swallowed
	hedgeWastedSec float64                     // exec+load seconds losers burned
	// runEnd bounds retry backoffs: a retry that cannot land before the
	// run ends is pointless (the request would never be recorded).
	runEnd float64

	// utilHostable marks slice types at least one registered deployable
	// unit (monolithic function or pipeline stage) fits — the ledger's
	// cold-idle vs stranded discriminator. Only filled when Options.Util
	// is attached (util.go).
	utilHostable [mig.NumSliceTypes]bool
}

// New builds a platform over the cluster with the registered functions.
func New(cl *cluster.Cluster, specs []FunctionSpec, opts Options) *Platform {
	opts.fillDefaults()
	if opts.Policy == nil {
		panic("platform: nil policy")
	}
	// Kernel selection: a sharded engine with one shard per node (plus
	// the coordinator shard 0) when Shards >= 2, the sequential engine
	// otherwise. nodeClock maps the i-th node onto its shard's clock.
	var eng sim.Kernel
	nodeClock := func(i int) sim.Clock { return eng }
	if opts.Shards > 1 {
		se := sim.NewShardedEngine(opts.Shards)
		eng = se
		nodeClock = func(i int) sim.Clock { return se.Shard(1 + i%(opts.Shards-1)) }
	} else {
		eng = sim.NewEngine()
	}
	p := &Platform{
		eng:      eng,
		cl:       cl,
		opts:     opts,
		fnByName: make(map[string]*Function),
		col:      metrics.NewCollector(),
		runEnd:   math.Inf(1),
		degraded: make(map[*mig.Slice]float64),
		health:   make(map[*mig.Slice]*sliceHealth),
	}
	p.HealthScores = make(map[string]*metrics.Timeline)
	p.opts.Overload = p.opts.Overload.Defaulted()
	p.ladder = overload.NewLadder(p.opts.Overload)
	if p.opts.EventLogCap <= 0 {
		p.opts.EventLogCap = eventLogCap
	}
	p.events = obs.NewBus[Event](p.opts.EventLogCap)
	if rec := p.opts.Obs; rec != nil {
		// One trace track per MIG slice, in topology order, and a
		// lossless mirror of the lifecycle stream into the recorder.
		for _, node := range cl.Nodes {
			for _, g := range node.GPUs {
				for _, sl := range g.Slices {
					rec.RegisterTrack(node.ID, sl.ID())
				}
			}
		}
		p.events.Subscribe(func(e Event) {
			rec.MarkCat(eventCat(e.Kind), e.Kind.String(), e.Subject, e.Time, e.Detail)
		})
	}
	for i, spec := range specs {
		if spec.ID != i {
			panic(fmt.Sprintf("platform: spec %d has ID %d; IDs must be dense", i, spec.ID))
		}
		if spec.Priority > p.maxPriority {
			p.maxPriority = spec.Priority
		}
		fn := newFunction(spec, !opts.DisablePlanCache)
		p.funcs = append(p.funcs, fn)
		if _, dup := p.fnByName[spec.Name]; dup {
			panic(fmt.Sprintf("platform: duplicate function name %q", spec.Name))
		}
		p.fnByName[spec.Name] = fn
	}
	for i, node := range cl.Nodes {
		p.inv = append(p.inv, newInvoker(p, node, nodeClock(i)))
	}
	p.utilRegister()
	if p.decOn() {
		p.wirePlanObservers()
	}
	return p
}

// Engine exposes the simulation kernel (for tests and custom drivers).
func (p *Platform) Engine() sim.Kernel { return p.eng }

// Collector returns the request-outcome collector.
func (p *Platform) Collector() *metrics.Collector { return p.col }

// Launched returns how many instances were launched.
func (p *Platform) Launched() int { return p.launched }

// Evictions returns how many time-sharing evictions occurred.
func (p *Platform) Evictions() int { return p.evicted }

// Migrations returns how many pipeline->monolithic migrations occurred.
func (p *Platform) Migrations() int { return p.migrated }

// FaultsInjected returns how many hardware faults took effect.
func (p *Platform) FaultsInjected() int { return p.faultsInjected }

// Recoveries returns how many hardware repairs were applied.
func (p *Platform) Recoveries() int { return p.recoveries }

// Retries returns how many fault-triggered request re-routes occurred.
func (p *Platform) Retries() int { return p.retries }

// Rejected returns how many requests admission control fast-failed
// (including brownout sheds).
func (p *Platform) Rejected() int { return p.rejected }

// ShedCount returns how many requests brownout shedding refused.
func (p *Platform) ShedCount() int { return p.shed }

// Contractions returns how many brownout pipeline contractions ran.
func (p *Platform) Contractions() int { return p.contractions }

// BrownoutLevel returns the degradation ladder's current rung.
func (p *Platform) BrownoutLevel() overload.Level { return p.ladder.Level() }

// Pressure returns the most recent node-pressure sample (only updated
// while brownout is enabled).
func (p *Platform) Pressure() float64 { return p.lastPressure }

// Cluster returns the underlying cluster for post-run inspection.
func (p *Platform) Cluster() *cluster.Cluster { return p.cl }

// Run replays the trace: requests arrive at their trace times, the
// controller ticks at its period, and the engine runs until the trace
// ends plus drain seconds (so in-flight requests finish).
func (p *Platform) Run(tr *trace.Trace, drain float64) {
	p.col.Reserve(len(tr.Requests))
	for _, r := range tr.Requests {
		req := r
		p.eng.At(req.Arrival, func() { p.arrive(req) })
	}
	end := tr.Duration + drain
	p.runEnd = end
	p.scheduleFaults(end)
	// Control and sampling loops.
	var control func()
	control = func() {
		p.controlTick()
		if p.eng.Now()+p.opts.ControlPeriod <= end {
			p.eng.After(p.opts.ControlPeriod, control)
		}
	}
	p.eng.After(p.opts.ControlPeriod, control)
	var sample func()
	sample = func() {
		p.sampleUtilization()
		if p.eng.Now()+p.opts.SamplePeriod <= end {
			p.eng.After(p.opts.SamplePeriod, sample)
		}
	}
	p.eng.At(0, sample)
	p.eng.RunUntil(end)
	// Requests still pending at the end are dropped (SLO misses). The
	// drop time is the completion: the record's latency is how long the
	// request waited before being abandoned, never negative.
	for _, fn := range p.funcs {
		for _, rq := range fn.pending {
			rq.rec.Dropped = true
			rq.rec.Completion = p.eng.Now()
			if p.decOn() {
				p.decide(decisions.Record{
					Kind: decisions.KindDrop, Func: fn.spec.Name,
					Req: rq.id, Attempt: rq.attempts,
					Rule: "run-end", Outcome: "still pending when the run ended",
				})
			}
			p.record(rq.rec)
		}
		fn.pending = nil
	}
	p.utilClose(end)
	p.exportRunCounters()
	p.opts.Obs.SetDuration(end)
}

// arrive is the load balancer entry point.
func (p *Platform) arrive(r trace.Request) {
	p.InjectRequest(r.Func, r.ID)
}

// InjectRequest routes a request for function fn arriving now, tagged
// with id. Trace replay uses it internally; external drivers (e.g. the
// workflow chaining study) call it from engine events to create
// requests dynamically.
func (p *Platform) InjectRequest(fn, id int) {
	if fn < 0 || fn >= len(p.funcs) {
		panic(fmt.Sprintf("platform: request for unknown function %d", fn))
	}
	f := p.funcs[fn]
	now := p.eng.Now()
	rq := &request{
		id:       id,
		fn:       f,
		arrival:  now,
		deadline: now + f.spec.SLO,
		rec: metrics.RequestRecord{
			ID:      id,
			Func:    fn,
			Arrival: now,
			SLO:     f.spec.SLO,
		},
	}
	p.route(rq)
}

// complete finalises a request. Queue time is the residual of the
// end-to-end latency after execution, transfers and loads — it covers
// both pending time at the load balancer and waiting at stage queues.
func (p *Platform) complete(rq *request) {
	if rq.hedge != nil && p.settleHedge(rq) {
		// Losing copy of a hedged request: its partner's completion was
		// already recorded; this one only left wasted work behind.
		return
	}
	rq.fn.served++
	rq.rec.Completion = p.eng.Now()
	q := (rq.rec.Completion - rq.rec.Arrival) - rq.rec.Exec - rq.rec.Transfer - rq.rec.Load
	if q < 0 {
		q = 0
	}
	rq.rec.Queue = q
	p.record(rq.rec)
}

// record finalises a request record and notifies the OnComplete hook.
func (p *Platform) record(rec metrics.RequestRecord) {
	p.col.Record(rec)
	if r := p.opts.Obs; r != nil {
		name, outcome := p.funcs[rec.Func].spec.Name, recordOutcome(rec)
		r.ObserveRequest(obs.RequestObs{
			Func: rec.Func, Name: name, Req: rec.ID,
			Arrival: rec.Arrival, Completion: rec.Completion,
			SLO: rec.SLO, Outcome: outcome, Retries: rec.Retries,
		})
		r.AsyncSpan("request", name, rec.Func, rec.ID, rec.Arrival, rec.Completion, outcome)
	}
	if p.opts.OnComplete != nil {
		p.opts.OnComplete(rec)
	}
}

// recordOutcome classifies a finalised record for the metrics export.
func recordOutcome(rec metrics.RequestRecord) string {
	switch {
	case rec.Rejected:
		return "rejected"
	case rec.Failed:
		return "failed"
	case rec.Dropped:
		return "dropped"
	default:
		return "served"
	}
}

func (p *Platform) sampleUtilization() {
	now := p.eng.Now()
	total := float64(p.cl.TotalGPCs())
	p.UtilGPCs.Add(now, float64(p.cl.ActiveGPCs())/total)
	p.OccupiedGPCs.Add(now, float64(p.cl.OccupiedGPCs())/total)
	gpus := p.cl.AllGPUs()
	active := 0
	for _, g := range gpus {
		if g.ActiveGPCs() > 0 {
			active++
		}
	}
	p.UtilGPUs.Add(now, float64(active)/float64(len(gpus)))
	fi := mig.FragmentationIndex(gpus, now)
	p.Fragmentation.Add(now, fi)
	p.utilSample(now, fi)
	p.HostPoolOcc.Add(now, p.poolOccupancy())
	if p.grayOn() {
		p.sampleHealth(now)
	}
	if p.opts.OnSample != nil {
		p.opts.OnSample(now, p.cl)
	}
}

// nodeFreeViews snapshots free slices per node for the policy. Each
// invoker revalidates its cached snapshot against the node's free-set
// generation (bumped by every slice allocate/release, health flip and
// reconfiguration at the mig/cluster layer), so an unchanged node costs
// O(GPUs) instead of a full slice walk and re-sort.
func (p *Platform) nodeFreeViews() ([]scheduler.NodeFree, [][]*mig.Slice) {
	now := p.eng.Now()
	views := make([]scheduler.NodeFree, len(p.inv))
	phys := make([][]*mig.Slice, len(p.inv))
	for i, inv := range p.inv {
		types, free := inv.freeView(now)
		views[i] = scheduler.NodeFree{Node: inv.node.ID, Free: types}
		phys[i] = free
	}
	return views, phys
}

// PlannerStats aggregates the plan-cache statistics over all functions.
// Zero-valued when the cache is disabled.
func (p *Platform) PlannerStats() pipeline.PlannerStats {
	var s pipeline.PlannerStats
	for _, fn := range p.funcs {
		if fn.planner != nil {
			s.Add(fn.planner.Stats())
		}
	}
	return s
}
