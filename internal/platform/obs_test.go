package platform

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/scheduler"
)

// runWithObs runs one platform simulation, optionally instrumented.
func runWithObs(t *testing.T, rec *obs.Recorder, seed int64) *Platform {
	t.Helper()
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: seed, Obs: rec})
	tr := flatTrace(specs, 8, 120, seed)
	p.Run(tr, 40)
	return p
}

// TestObsZeroCostIdentity: attaching a recorder must not change a
// single request outcome or platform counter — the observability layer
// observes, it never participates. This is the "disabled means
// bit-for-bit identical" acceptance criterion run in reverse.
func TestObsZeroCostIdentity(t *testing.T) {
	plain := runWithObs(t, nil, 77)
	traced := runWithObs(t, obs.NewRecorder(), 77)

	a, b := plain.Collector().Records(), traced.Collector().Records()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("request records diverge with observability attached: %d vs %d records", len(a), len(b))
	}
	if plain.Launched() != traced.Launched() ||
		plain.Evictions() != traced.Evictions() ||
		plain.Migrations() != traced.Migrations() ||
		plain.TotalEvents() != traced.TotalEvents() {
		t.Fatal("platform counters diverge with observability attached")
	}
	if !reflect.DeepEqual(plain.UtilGPCs, traced.UtilGPCs) {
		t.Fatal("utilisation timeline diverges with observability attached")
	}
}

// TestObsSpansCoverRun: an instrumented run produces request chains
// with queue spans, slice-track exec spans on registered MIG tracks,
// and lifecycle marks mirrored off the event bus.
func TestObsSpansCoverRun(t *testing.T) {
	rec := obs.NewRecorder()
	p := runWithObs(t, rec, 23)

	tracks := map[string]bool{}
	for _, tr := range rec.Tracks() {
		tracks[tr.Name] = true
	}
	var nSlices int
	for _, node := range p.Cluster().Nodes {
		for _, g := range node.GPUs {
			nSlices += len(g.Slices)
		}
	}
	if len(tracks) != nSlices {
		t.Fatalf("registered %d tracks, want one per MIG slice (%d)", len(tracks), nSlices)
	}

	kinds := map[string]int{}
	for _, sp := range rec.Spans() {
		kinds[sp.Cat]++
		if sp.End < sp.Start {
			t.Fatalf("span %+v runs backwards", sp)
		}
		if sp.Kind == obs.KindSlice && !tracks[sp.Track] {
			t.Fatalf("slice span on unregistered track %q", sp.Track)
		}
	}
	for _, cat := range []string{"request", "queue", "exec", "load", "event"} {
		if kinds[cat] == 0 {
			t.Errorf("no %q spans recorded", cat)
		}
	}
	// Every finalised request has exactly one request chain span.
	if kinds["request"] != p.Collector().Len() {
		t.Errorf("request spans = %d, want one per record (%d)",
			kinds["request"], p.Collector().Len())
	}
	// Lifecycle marks mirror the event bus losslessly.
	if got := rec.MarkCount(EvLaunch.String()); got != p.CountEvents()[EvLaunch] && p.DroppedEvents() == 0 {
		t.Errorf("launch marks = %d, events = %d", got, p.CountEvents()[EvLaunch])
	}
	if rec.Duration() <= 0 {
		t.Error("run duration not recorded")
	}
	// Busy seconds accumulated on at least one slice track.
	busy := 0.0
	for name := range tracks {
		busy += rec.BusySeconds(name)
	}
	if busy <= 0 {
		t.Error("no busy time accumulated on any slice track")
	}
}

// TestObsExportsDeterministic: same seed, two runs ⇒ byte-identical
// Chrome trace and Prometheus exports.
func TestObsExportsDeterministic(t *testing.T) {
	var traces, proms [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rec := obs.NewRecorder()
		runWithObs(t, rec, 55)
		if err := obs.WriteChromeTrace(&traces[i], rec); err != nil {
			t.Fatal(err)
		}
		if err := obs.WritePrometheus(&proms[i], rec); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Error("Chrome trace export differs across same-seed runs")
	}
	if !bytes.Equal(proms[0].Bytes(), proms[1].Bytes()) {
		t.Error("Prometheus export differs across same-seed runs")
	}
}

// TestObsRetryMarks: a faulty run records retry hops on the request
// chains it re-routed.
func TestObsRetryMarks(t *testing.T) {
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	rec := obs.NewRecorder()
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 9, Obs: rec,
		Faults: &faults.Spec{SliceRate: 0.1, SliceMTTR: 30},
	})
	tr := flatTrace(specs, 8, 150, 9)
	p.Run(tr, 40)
	if p.Retries() == 0 {
		t.Skip("fault schedule produced no retries at this seed")
	}
	marks := 0
	for _, sp := range rec.Spans() {
		if sp.Kind == obs.KindAsyncMark && sp.Cat == "retry" {
			marks++
			if sp.Req < 0 || sp.Detail == "" {
				t.Fatalf("retry mark missing identity or reason: %+v", sp)
			}
		}
	}
	if marks != p.Retries() {
		t.Errorf("retry marks = %d, platform retries = %d", marks, p.Retries())
	}
}

// TestBusySecondsSpanReconciliation: the per-track BusySeconds counter
// and the span data must tell the same story even when hedged losers
// are cancelled and quarantine tears work down mid-execution. Spans are
// recorded upfront with future end times; CancelSliceWork truncates
// both the span and the counter on teardown, so after any run the
// counter must equal the sum of the surviving load+exec span durations
// on that track — and those spans must never overlap (one slice runs
// one thing at a time with MaxBatch=1).
func TestBusySecondsSpanReconciliation(t *testing.T) {
	specs := specsFor(t, dnn.Medium)
	cl := cluster.New(cluster.DefaultSpec())
	rec := obs.NewRecorder()
	p := New(cl, specs, Options{
		Policy: &scheduler.FluidFaaS{}, Seed: 9, Obs: rec,
		Faults: &faults.Spec{
			SliceRate: 0.1, SliceMTTR: 30,
			DegradedRate: 0.08, DegradedMTTR: 40,
			DegradedMinSeverity: 3, DegradedMaxSeverity: 6,
		},
		Gray: GrayOptions{Enabled: true, Hedge: true},
	})
	tr := flatTrace(specs, 8, 150, 9)
	p.Run(tr, 40)
	if p.FaultsInjected() == 0 {
		t.Fatal("fault schedule injected nothing; the test exercises no cancellation")
	}

	type iv struct{ start, end float64 }
	work := map[string][]iv{}
	for _, sp := range rec.Spans() {
		if sp.Kind == obs.KindSlice && (sp.Cat == "load" || sp.Cat == "exec") {
			work[sp.Track] = append(work[sp.Track], iv{sp.Start, sp.End})
		}
	}
	checked := 0
	for _, trk := range rec.Tracks() {
		ivs := work[trk.Name]
		sum := 0.0
		for _, v := range ivs {
			sum += v.end - v.start
		}
		busy := rec.BusySeconds(trk.Name)
		if math.Abs(busy-sum) > 1e-9*math.Max(1, sum) {
			t.Errorf("%s: BusySeconds %v != span sum %v", trk.Name, busy, sum)
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end-1e-9 {
				t.Errorf("%s: overlapping work spans [%v,%v) and [%v,%v)",
					trk.Name, ivs[i-1].start, ivs[i-1].end, ivs[i].start, ivs[i].end)
			}
		}
		if sum > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no track accumulated any work to reconcile")
	}
}
