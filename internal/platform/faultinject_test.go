package platform

import (
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/faults"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
)

// TestZeroFaultSpecBitForBit: a nil fault spec and an all-zero fault
// spec must both be bit-for-bit identical to a run without the faults
// layer — same records, same lifecycle events, same launches. This is
// the guarantee that adding the subsystem changed nothing for existing
// experiments.
func TestZeroFaultSpecBitForBit(t *testing.T) {
	run := func(spec *faults.Spec) *Platform {
		specs := specsFor(t, dnn.Medium)
		cl := cluster.New(cluster.DefaultSpec())
		p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 23, Faults: spec})
		tr := flatTrace(specs, 8, 150, 23)
		p.Run(tr, 60)
		return p
	}
	a, b := run(nil), run(&faults.Spec{})
	ra, rb := a.Collector().Records(), b.Collector().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs with a zero fault spec: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	if a.Launched() != b.Launched() {
		t.Errorf("launch counts differ: %d vs %d", a.Launched(), b.Launched())
	}
	if !reflect.DeepEqual(a.CountEvents(), b.CountEvents()) {
		t.Errorf("event counts differ: %v vs %v", a.CountEvents(), b.CountEvents())
	}
	if b.FaultsInjected() != 0 || b.Retries() != 0 {
		t.Errorf("zero-rate spec injected %d faults, %d retries",
			b.FaultsInjected(), b.Retries())
	}
}

// TestFaultRunDeterministic: with nonzero fault rates, the same seed
// reproduces the same faults, retries and records exactly.
func TestFaultRunDeterministic(t *testing.T) {
	run := func() *Platform {
		specs := specsFor(t, dnn.Small)
		cl := cluster.New(cluster.Spec{
			Nodes: 2, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 2), CPUMemGB: 400,
		})
		p := New(cl, specs, Options{
			Policy: &scheduler.FluidFaaS{}, Seed: 23,
			Faults: &faults.Spec{SliceRate: 0.02, GPURate: 0.005, NodeRate: 0.001},
		})
		tr := flatTrace(specs, 5, 150, 23)
		p.Run(tr, 60)
		return p
	}
	a, b := run(), run()
	if a.FaultsInjected() == 0 {
		t.Fatal("no faults injected at these rates over 210 s")
	}
	if a.FaultsInjected() != b.FaultsInjected() || a.Recoveries() != b.Recoveries() ||
		a.Retries() != b.Retries() {
		t.Fatalf("fault counters differ: %d/%d/%d vs %d/%d/%d",
			a.FaultsInjected(), a.Recoveries(), a.Retries(),
			b.FaultsInjected(), b.Recoveries(), b.Retries())
	}
	ra, rb := a.Collector().Records(), b.Collector().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs across identical faulty runs", i)
		}
	}
}

// TestFaultRunAllPolicies: every policy survives a moderately faulty
// run without panicking, records every request, and reports a sane
// availability.
func TestFaultRunAllPolicies(t *testing.T) {
	for _, pol := range []scheduler.Policy{
		&scheduler.FluidFaaS{}, &scheduler.ESG{}, &scheduler.INFlessMIG{},
	} {
		specs := specsFor(t, dnn.Small)
		cl := cluster.New(cluster.Spec{
			Nodes: 2, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 2), CPUMemGB: 400,
		})
		p := New(cl, specs, Options{
			Policy: pol, Seed: 17,
			Faults: &faults.Spec{SliceRate: 0.05, GPURate: 0.01, NodeRate: 0.002},
		})
		tr := flatTrace(specs, 5, 120, 17)
		p.Run(tr, 60)
		col := p.Collector()
		if col.Len() != len(tr.Requests) {
			t.Errorf("%s: recorded %d of %d requests under faults",
				pol.Name(), col.Len(), len(tr.Requests))
		}
		if av := col.Availability(); av < 0 || av > 1 {
			t.Errorf("%s: availability %v out of range", pol.Name(), av)
		}
		if p.FaultsInjected() == 0 {
			t.Errorf("%s: no faults injected", pol.Name())
		}
	}
}

// TestScriptedGPUFaultsRetryInFlight: when every GPU fails under load,
// in-flight requests are retried, availability dips, and completions
// resume after the hardware recovers.
func TestScriptedGPUFaultsRetryInFlight(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:3]
	cl := smallCluster(2)
	spec := &faults.Spec{Script: []faults.Event{
		{Time: 30, Kind: faults.GPUFault, Node: 0, GPU: 0, Slice: -1, Recovery: 60},
		{Time: 30, Kind: faults.GPUFault, Node: 0, GPU: 1, Slice: -1, Recovery: 60},
	}}
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 13, Faults: spec})
	tr := flatTrace(specs, 8, 120, 13)
	p.Run(tr, 60)

	if p.FaultsInjected() != 2 || p.Recoveries() != 2 {
		t.Fatalf("faults/recoveries = %d/%d, want 2/2", p.FaultsInjected(), p.Recoveries())
	}
	if p.Retries() == 0 {
		t.Error("no retries despite both GPUs failing under 24 rps")
	}
	col := p.Collector()
	if col.Len() != len(tr.Requests) {
		t.Fatalf("recorded %d of %d requests", col.Len(), len(tr.Requests))
	}
	if col.RetriedCount() == 0 {
		t.Error("no request records carry a retry count")
	}
	resumed := false
	for _, r := range col.Records() {
		if r.Arrival > 60 && !r.Dropped {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("no completions after the GPUs recovered")
	}
	counts := p.CountEvents()
	if counts[EvFault] != 2 || counts[EvRecover] != 2 {
		t.Errorf("event counts fault=%d recover=%d, want 2/2",
			counts[EvFault], counts[EvRecover])
	}
	if counts[EvRetry] == 0 {
		t.Error("no retry events recorded")
	}
}

// TestNodeCrashAndRecovery: a node crash tears down everything on the
// node and loses its warm host memory; the node rejoins placement after
// repair and the run completes cleanly.
func TestNodeCrashAndRecovery(t *testing.T) {
	specs := specsFor(t, dnn.Small)
	cl := cluster.New(cluster.Spec{
		Nodes: 2, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 2), CPUMemGB: 400,
	})
	spec := &faults.Spec{Script: []faults.Event{
		{Time: 30, Kind: faults.NodeCrash, Node: 0, GPU: -1, Slice: -1, Recovery: 80},
	}}
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 11, Faults: spec})
	tr := flatTrace(specs, 4, 120, 11)
	p.Run(tr, 60)

	if p.FaultsInjected() != 1 || p.Recoveries() != 1 {
		t.Fatalf("faults/recoveries = %d/%d, want 1/1", p.FaultsInjected(), p.Recoveries())
	}
	if !cl.Nodes[0].Healthy() {
		t.Error("node 0 still unhealthy after its recovery event")
	}
	if p.Collector().Len() != len(tr.Requests) {
		t.Fatalf("recorded %d of %d requests", p.Collector().Len(), len(tr.Requests))
	}
	counts := p.CountEvents()
	if counts[EvFault] != 1 || counts[EvRecover] != 1 {
		t.Errorf("event counts fault=%d recover=%d, want 1/1",
			counts[EvFault], counts[EvRecover])
	}
}

// TestSliceFaultTearsDownPoolAndRetries: an ECC fault on a time-sharing
// pool slice kills the in-service request's hardware; the request
// retries, the function rebinds on healthy hardware, and the request
// completes with its retry recorded.
func TestSliceFaultTearsDownPoolAndRetries(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	cl := smallCluster(2)
	p := New(cl, specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 9})
	fn := p.funcs[0]
	p.eng.At(0, func() { p.InjectRequest(0, 0) })
	var failedSlice *mig.Slice
	p.eng.At(0.01, func() {
		if fn.ts == nil {
			t.Fatal("request did not create a time-sharing binding")
		}
		failedSlice = fn.ts.shared.slice
		node := cl.Nodes[0]
		for gi, g := range node.GPUs {
			for si, s := range g.Slices {
				if s == failedSlice {
					p.injectFault(faults.Event{
						Time: 0.01, Kind: faults.SliceFault,
						Node: 0, GPU: gi, Slice: si, Recovery: 1e9,
					})
					return
				}
			}
		}
		t.Fatal("pool slice not found in topology")
	})
	p.eng.RunUntil(120)

	if p.FaultsInjected() != 1 {
		t.Fatalf("faults injected = %d, want 1", p.FaultsInjected())
	}
	if p.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", p.Retries())
	}
	recs := p.Collector().Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d requests, want 1", len(recs))
	}
	r := recs[0]
	if r.Dropped || r.Failed {
		t.Fatalf("request failed despite healthy spare hardware: %+v", r)
	}
	if r.Retries != 1 {
		t.Errorf("record retries = %d, want 1", r.Retries)
	}
	if fn.ts == nil {
		t.Error("function did not rebind after the fault")
	} else if fn.ts.shared.slice == failedSlice {
		t.Error("function rebound onto the failed slice")
	}
	if !failedSlice.Free() {
		t.Error("failed slice still allocated after teardown")
	}
	if failedSlice.Healthy() {
		t.Error("failed slice reported healthy")
	}
}

// TestRetryExhaustionFailsRequest: a request whose retry budget is
// spent is recorded as a failed drop at the time of the final fault,
// with a positive latency.
func TestRetryExhaustionFailsRequest(t *testing.T) {
	specs := specsFor(t, dnn.Small)[:1]
	p := New(smallCluster(1), specs, Options{Policy: &scheduler.FluidFaaS{}, Seed: 1})
	fn := p.funcs[0]
	p.eng.At(1, func() {
		rq := &request{
			fn: fn, arrival: 1, deadline: 1 + fn.spec.SLO,
			rec: metrics.RequestRecord{Arrival: 1, SLO: fn.spec.SLO},
		}
		rq.attempts = p.opts.Retry.MaxAttempts // budget already spent
		p.retryAfterFault(rq, "test exhaustion")
	})
	p.eng.RunUntil(2)

	col := p.Collector()
	if col.Len() != 1 {
		t.Fatalf("recorded %d requests, want 1", col.Len())
	}
	r := col.Records()[0]
	if !r.Failed || !r.Dropped {
		t.Fatalf("exhausted request not a failed drop: %+v", r)
	}
	if r.Completion != 1 {
		t.Errorf("Completion = %v, want the abandon time 1", r.Completion)
	}
	if r.Latency() != 0 {
		// Arrival == abandon time here; latency is zero, not negative.
		t.Errorf("latency = %v, want 0", r.Latency())
	}
	if col.FailedCount() != 1 {
		t.Errorf("FailedCount = %d, want 1", col.FailedCount())
	}
	if av := col.Availability(); av != 0 {
		t.Errorf("availability = %v, want 0 with the only request failed", av)
	}
}
