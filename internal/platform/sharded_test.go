package platform

import (
	"bytes"
	"reflect"
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/sim"
)

// shardedRun holds one full-stack run and its observability sinks, so
// the identity tests can compare both in-memory state and every export
// byte stream.
type shardedRun struct {
	p    *Platform
	rec  *obs.Recorder
	dec  *decisions.Recorder
	util *util.Ledger
}

// runRichSharded exercises every subsystem at once — degraded and slice
// faults, gray scoring with hedging, the swap tier, full overload
// control, decision provenance, the utilization ledger, and the obs
// recorder — on the requested kernel (shards <= 1 is the sequential
// engine).
func runRichSharded(t *testing.T, shards int) shardedRun {
	t.Helper()
	r := shardedRun{
		rec:  obs.NewRecorder(),
		dec:  decisions.NewRecorder(0),
		util: util.NewLedger(),
	}
	opts := richOptions(r.dec)
	opts.Shards = shards
	opts.Obs = r.rec
	opts.Util = r.util
	specs := specsFor(t, dnn.Small)
	cl := cluster.New(cluster.DefaultSpec())
	r.p = New(cl, specs, opts)
	r.p.Run(flatTrace(specs, 6, 180, 7), 60)
	return r
}

// exports renders every exporter into bytes: Chrome trace, Prometheus
// text, the decision-provenance JSON, and the utilization report JSON.
func (r shardedRun) exports(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, r.rec); err != nil {
		t.Fatal(err)
	}
	out["trace"] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := obs.WritePrometheus(&buf, r.rec); err != nil {
		t.Fatal(err)
	}
	out["prom"] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := r.dec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out["decisions"] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := r.util.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out["util"] = append([]byte(nil), buf.Bytes()...)
	return out
}

// compareRuns asserts two runs are bit-identical: request records, event
// counts, lifecycle logs, utilisation timelines, counters, and all four
// export byte streams.
func compareRuns(t *testing.T, a, b shardedRun, label string) {
	t.Helper()
	if !reflect.DeepEqual(a.p.Collector().Records(), b.p.Collector().Records()) {
		t.Errorf("%s: request records diverged", label)
	}
	if a.p.Engine().Executed() != b.p.Engine().Executed() {
		t.Errorf("%s: event counts diverged: %d vs %d",
			label, a.p.Engine().Executed(), b.p.Engine().Executed())
	}
	if !reflect.DeepEqual(a.p.Events(), b.p.Events()) {
		t.Errorf("%s: event logs diverged", label)
	}
	if !reflect.DeepEqual(a.p.UtilGPCs, b.p.UtilGPCs) {
		t.Errorf("%s: utilisation timelines diverged", label)
	}
	if a.p.Launched() != b.p.Launched() || a.p.Evictions() != b.p.Evictions() ||
		a.p.Hedges() != b.p.Hedges() || a.p.SwapIns() != b.p.SwapIns() ||
		a.p.Rejected() != b.p.Rejected() {
		t.Errorf("%s: platform counters diverged", label)
	}
	ea, eb := a.exports(t), b.exports(t)
	for name, want := range ea {
		if !bytes.Equal(want, eb[name]) {
			t.Errorf("%s: %s export diverged (%d vs %d bytes)",
				label, name, len(want), len(eb[name]))
		}
	}
}

// TestShardedFullStackIdentity: a same-seed run on the sharded kernel
// must be bit-for-bit identical to the sequential engine with every
// subsystem enabled at once — the tentpole contract. Checked at 2, 4,
// and 8 shards against one sequential reference.
func TestShardedFullStackIdentity(t *testing.T) {
	seq := runRichSharded(t, 0)
	for _, shards := range []int{2, 4, 8} {
		sh := runRichSharded(t, shards)
		st := sh.p.Engine().Stats()
		if st.Shards != shards {
			t.Errorf("engine stats report %d shards, want %d", st.Shards, shards)
		}
		compareRuns(t, seq, sh, "sequential vs sharded")
	}
}

// TestShardedRunRepeatable: two same-seed sharded runs are identical to
// each other (no hidden iteration-order or timing dependence inside the
// sharded kernel itself).
func TestShardedRunRepeatable(t *testing.T) {
	a := runRichSharded(t, 4)
	b := runRichSharded(t, 4)
	compareRuns(t, a, b, "sharded repeat")
}

// TestShardedSpreadsWork: the node shards actually execute events — the
// identity above is not vacuous because everything landed on the
// coordinator shard.
func TestShardedSpreadsWork(t *testing.T) {
	r := runRichSharded(t, 4)
	se, ok := r.p.Engine().(*sim.ShardedEngine)
	if !ok {
		t.Fatalf("engine is %T, want *sim.ShardedEngine", r.p.Engine())
	}
	busy := 0
	for _, st := range se.ShardStats() {
		if st.Executed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d shard(s) executed events; work is not spread", busy)
	}
}
