package pipeline

import (
	"errors"
	"sort"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// ErrNoFit reports that no partition in the ranked list can be supported
// by the available slices (within the SLO, when one is given).
var ErrNoFit = errors.New("pipeline: no partition fits the available slices")

// Construct runs the invoker's launch procedure of §5.2.2: walk the
// CV-ranked partitions in order and deploy the first one the available
// slices can support. For each partition, stages are bound best-fit:
// the most memory-hungry stage first, each to the smallest remaining
// slice that fits — conserving large slices for functions that need
// them. When slo > 0, a candidate whose unloaded latency exceeds the SLO
// is rejected and the walk continues.
//
// It returns the plan and, aligned with plan.Stages, the indices into
// avail of the slices each stage uses.
func Construct(d *dag.DAG, parts []dag.Partition, avail []mig.SliceType, slo float64) (Plan, []int, error) {
	plan, idx, _, err := ConstructRanked(d, parts, avail, slo)
	return plan, idx, err
}

// ConstructRanked is Construct plus the index into parts of the chosen
// partition. The rank lets callers comparing plans built from different
// free-slice views (e.g. across nodes) preserve the §5.2.2 walk order:
// a plan from an earlier-ranked partition always beats one from a
// later-ranked partition, regardless of how the slices bound.
func ConstructRanked(d *dag.DAG, parts []dag.Partition, avail []mig.SliceType, slo float64) (Plan, []int, int, error) {
	for rank, part := range parts {
		idx, ok := assign(d, part, avail)
		if !ok {
			continue
		}
		types := make([]mig.SliceType, len(idx))
		for i, ai := range idx {
			types[i] = avail[ai]
		}
		plan, err := BuildPlan(d, part, types)
		if err != nil {
			continue
		}
		if slo > 0 && plan.Latency > slo {
			continue
		}
		return plan, idx, rank, nil
	}
	return Plan{}, nil, -1, ErrNoFit
}

// needOrder returns the stage indices of part in binding order: most
// memory-hungry first, stable on ties. Both the direct assign path and
// the planner's cached replay use this order, which is what makes the
// cached slice-index binding reproduce the uncached one exactly.
func needOrder(d *dag.DAG, part dag.Partition) []int {
	type stageNeed struct {
		stage int
		mem   float64
	}
	needs := make([]stageNeed, len(part.Stages))
	for i, st := range part.Stages {
		needs[i] = stageNeed{stage: i, mem: st.MemGB(d)}
	}
	sort.SliceStable(needs, func(i, j int) bool { return needs[i].mem > needs[j].mem })
	order := make([]int, len(needs))
	for i, n := range needs {
		order[i] = n.stage
	}
	return order
}

// assign binds stages to available slices best-fit-decreasing; it
// returns, per stage, the index into avail, or ok=false when some stage
// cannot be placed. Among fitting slices it picks the smallest by
// compute (GPCs, then memory — mig.LessCompute), ties going to the
// first index in avail order.
func assign(d *dag.DAG, part dag.Partition, avail []mig.SliceType) ([]int, bool) {
	used := make([]bool, len(avail))
	out := make([]int, len(part.Stages))
	for _, stage := range needOrder(d, part) {
		mem := part.Stages[stage].MemGB(d)
		best := -1
		for ai, t := range avail {
			if used[ai] || float64(t.MemGB()) < mem {
				continue
			}
			if _, ok := part.Stages[stage].ExecOn(d, t); !ok {
				continue
			}
			if best == -1 || mig.LessCompute(t, avail[best]) {
				best = ai
			}
		}
		if best == -1 {
			return nil, false
		}
		used[best] = true
		out[stage] = best
	}
	return out, true
}
