package pipeline

import (
	"errors"
	"sort"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// ErrNoFit reports that no partition in the ranked list can be supported
// by the available slices (within the SLO, when one is given).
var ErrNoFit = errors.New("pipeline: no partition fits the available slices")

// Construct runs the invoker's launch procedure of §5.2.2: walk the
// CV-ranked partitions in order and deploy the first one the available
// slices can support. For each partition, stages are bound best-fit:
// the most memory-hungry stage first, each to the smallest remaining
// slice that fits — conserving large slices for functions that need
// them. When slo > 0, a candidate whose unloaded latency exceeds the SLO
// is rejected and the walk continues.
//
// It returns the plan and, aligned with plan.Stages, the indices into
// avail of the slices each stage uses.
func Construct(d *dag.DAG, parts []dag.Partition, avail []mig.SliceType, slo float64) (Plan, []int, error) {
	for _, part := range parts {
		idx, ok := assign(d, part, avail)
		if !ok {
			continue
		}
		types := make([]mig.SliceType, len(idx))
		for i, ai := range idx {
			types[i] = avail[ai]
		}
		plan, err := BuildPlan(d, part, types)
		if err != nil {
			continue
		}
		if slo > 0 && plan.Latency > slo {
			continue
		}
		return plan, idx, nil
	}
	return Plan{}, nil, ErrNoFit
}

// assign binds stages to available slices best-fit-decreasing; it
// returns, per stage, the index into avail, or ok=false when some stage
// cannot be placed.
func assign(d *dag.DAG, part dag.Partition, avail []mig.SliceType) ([]int, bool) {
	type stageNeed struct {
		stage int
		mem   float64
	}
	needs := make([]stageNeed, len(part.Stages))
	for i, st := range part.Stages {
		needs[i] = stageNeed{stage: i, mem: st.MemGB(d)}
	}
	sort.SliceStable(needs, func(i, j int) bool { return needs[i].mem > needs[j].mem })

	used := make([]bool, len(avail))
	out := make([]int, len(part.Stages))
	for _, n := range needs {
		best := -1
		for ai, t := range avail {
			if used[ai] || float64(t.MemGB()) < n.mem {
				continue
			}
			if _, ok := part.Stages[n.stage].ExecOn(d, t); !ok {
				continue
			}
			if best == -1 || t < avail[best] {
				best = ai
			}
		}
		if best == -1 {
			return nil, false
		}
		used[best] = true
		out[n.stage] = best
	}
	return out, true
}
