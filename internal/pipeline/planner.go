package pipeline

import (
	"sort"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// Counts is a free-slice multiset: how many slices of each profile are
// available. The construction procedure's output — which partition wins
// and which slice profile each stage binds to — is a pure function of
// this multiset (plus the SLO), which is what makes plan caching sound:
// the concrete slice indices only affect which physical slice of a given
// profile a stage lands on, and that tie-break is replayed per caller.
type Counts [mig.NumSliceTypes]int

// CountsOf tallies the multiset of a concrete free-slice view.
func CountsOf(avail []mig.SliceType) Counts {
	var c Counts
	for _, t := range avail {
		c[t]++
	}
	return c
}

// Total returns the number of slices in the multiset.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// sigBits is the width of each per-type count in a Signature; counts at
// or above 1<<sigBits cannot be canonicalized and fall back to the
// uncached path.
const sigBits = 12

// Signature packs the multiset into a canonical uint64 key: sigBits bits
// per slice type, smallest profile in the low bits. Two free-slice views
// have equal signatures iff they are the same multiset, regardless of
// index order. ok is false when any count overflows sigBits bits
// (≥ 4096 free slices of one profile on a node — far beyond any real
// MIG inventory); callers then skip the cache rather than corrupt it.
func (c Counts) Signature() (uint64, bool) {
	var sig uint64
	for i, v := range c {
		if v < 0 || v >= 1<<sigBits {
			return 0, false
		}
		sig |= uint64(v) << (sigBits * i)
	}
	return sig, true
}

// PlanResult is one memoized construction outcome for a
// (multiset, SLO) key.
type PlanResult struct {
	// Err is nil on success, ErrNoFit when no partition fit.
	Err error
	// Rank is the index into the partition list of the chosen
	// partition (-1 on Err). Cross-node comparisons order by Rank
	// first to preserve the §5.2.2 walk-order semantics.
	Rank int
	// Plan is the constructed plan. It is shared by reference across
	// cache hits and must be treated as immutable.
	Plan Plan
	// StageTypes is the slice profile each stage bound to, aligned
	// with Plan.Stages.
	StageTypes []mig.SliceType
	// Order is the binding order (stage indices, most memory-hungry
	// first) the construction used. Replaying index binding in this
	// order, taking per profile the first free index in view order,
	// reproduces the uncached assignment exactly.
	Order []int
}

// PlannerStats counts cache behaviour for benchmarks and reports.
type PlannerStats struct {
	// Hits served a construction from the cache without walking the
	// partition list.
	Hits uint64
	// Misses ran the full walk and cached the result.
	Misses uint64
	// Uncached ran the full walk without caching (signature
	// overflow).
	Uncached uint64
	// QuickRejects counts partitions skipped by the O(1) feasibility
	// pre-check before any assignment was attempted.
	QuickRejects uint64
}

// Walks returns how many full partition-list walks ran.
func (s PlannerStats) Walks() uint64 { return s.Misses + s.Uncached }

// Lookups returns the total number of construction requests.
func (s PlannerStats) Lookups() uint64 { return s.Hits + s.Walks() }

// HitRate returns the fraction of lookups served from the cache.
func (s PlannerStats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Add accumulates o into s (for aggregating per-function planners).
func (s *PlannerStats) Add(o PlannerStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Uncached += o.Uncached
	s.QuickRejects += o.QuickRejects
}

// partPre is the per-partition precompute behind the O(1) infeasibility
// check: per-stage memory needs, the binding order, and per-stage
// minimum-feasible-profile ranks.
type partPre struct {
	order []int
	mems  []float64
	// feasible[stage][type] reports whether the stage can run on the
	// profile at all: memory fits, an exec profile exists, and (for a
	// whole-DAG stage) the monolithic GPC floor holds.
	feasible [][mig.NumSliceTypes]bool
	// minRank[stage] is the smallest compute-rank (see computeOrder)
	// of any feasible profile for the stage.
	minRank []int
	// needGE[r] counts stages whose minRank is ≥ r. A stage with
	// minRank ≥ r can only ever bind a profile of rank ≥ r, so
	// needGE[r] > (free slices of rank ≥ r) proves no assignment
	// exists — a sound O(1) rejection regardless of holes in the
	// feasibility sets.
	needGE [mig.NumSliceTypes + 1]int
	// dead marks a partition with a stage that has no feasible
	// profile at all; it can never be assigned.
	dead bool
}

// Planner memoizes the §5.2.2 construction procedure for one function
// (one DAG + ranked partition list). It is not safe for concurrent use;
// the platform's event loop is single-threaded.
type Planner struct {
	d     *dag.DAG
	parts []dag.Partition
	pre   []partPre
	// computeOrder lists slice types smallest-compute first
	// (mig.LessCompute); rankOf inverts it.
	computeOrder []mig.SliceType
	rankOf       [mig.NumSliceTypes]int
	cache        map[planKey]*PlanResult
	stats        PlannerStats
	// observer, when set, sees every Result lookup (decision
	// provenance). Nil costs nothing; the observer must not call back
	// into the planner.
	observer func(PlanObservation)
}

// PlanObservation describes one Result lookup for provenance: how the
// cache answered and what the construction concluded.
type PlanObservation struct {
	// Cached reports a cache hit; SigOK is false when the multiset
	// overflowed the signature and bypassed the cache entirely.
	Cached bool
	SigOK  bool
	// Sig is the multiset signature (0 on overflow), SLO the lookup's
	// latency budget.
	Sig uint64
	SLO float64
	// Rank is the chosen partition's CV rank (-1 when construction
	// failed) and Err the construction error, nil on success.
	Rank int
	Err  error
}

// SetObserver installs fn as the lookup observer (nil removes it).
func (p *Planner) SetObserver(fn func(PlanObservation)) { p.observer = fn }

type planKey struct {
	sig uint64
	slo float64
}

// NewPlanner builds the per-partition feasibility precompute and an
// empty cache for the DAG's ranked partition list.
func NewPlanner(d *dag.DAG, parts []dag.Partition) *Planner {
	p := &Planner{
		d:     d,
		parts: parts,
		cache: make(map[planKey]*PlanResult),
	}
	p.computeOrder = append([]mig.SliceType(nil), mig.SliceTypes...)
	sort.SliceStable(p.computeOrder, func(i, j int) bool {
		return mig.LessCompute(p.computeOrder[i], p.computeOrder[j])
	})
	for r, t := range p.computeOrder {
		p.rankOf[t] = r
	}
	p.pre = make([]partPre, len(parts))
	for pi, part := range parts {
		pre := partPre{
			order:    needOrder(d, part),
			mems:     make([]float64, len(part.Stages)),
			feasible: make([][mig.NumSliceTypes]bool, len(part.Stages)),
			minRank:  make([]int, len(part.Stages)),
		}
		for si, st := range part.Stages {
			pre.mems[si] = st.MemGB(d)
			mono := len(st.Nodes) == d.Len()
			pre.minRank[si] = mig.NumSliceTypes
			for _, t := range mig.SliceTypes {
				if float64(t.MemGB()) < pre.mems[si] {
					continue
				}
				if mono && t.GPCs() < d.MonoMinGPCs {
					continue
				}
				if _, ok := st.ExecOn(d, t); !ok {
					continue
				}
				pre.feasible[si][t] = true
				if r := p.rankOf[t]; r < pre.minRank[si] {
					pre.minRank[si] = r
				}
			}
			if pre.minRank[si] == mig.NumSliceTypes {
				pre.dead = true
			}
			for r := 0; r <= pre.minRank[si]; r++ {
				pre.needGE[r]++
			}
		}
		p.pre[pi] = pre
	}
	return p
}

// Stats returns a copy of the accumulated cache statistics.
func (p *Planner) Stats() PlannerStats { return p.stats }

// CacheLen returns the number of memoized (multiset, SLO) entries.
func (p *Planner) CacheLen() int { return len(p.cache) }

// Result returns the memoized construction outcome for the free-slice
// multiset c under slo. avail materializes the concrete free-slice view
// and is only invoked on a cache miss (or signature overflow); the view
// it returns must have exactly the multiset c.
//
// No explicit invalidation exists or is needed: the key is the free
// state itself, so any allocation, release, or reconfiguration that
// changes the free multiset selects a different cache line. Stale
// entries for multisets that no longer occur are merely unused.
func (p *Planner) Result(c Counts, slo float64, avail func() []mig.SliceType) *PlanResult {
	sig, ok := c.Signature()
	if !ok {
		p.stats.Uncached++
		res := p.walk(c, slo, avail())
		if p.observer != nil {
			p.observer(PlanObservation{SigOK: false, SLO: slo, Rank: res.Rank, Err: res.Err})
		}
		return res
	}
	key := planKey{sig: sig, slo: slo}
	if res, ok := p.cache[key]; ok {
		p.stats.Hits++
		if p.observer != nil {
			p.observer(PlanObservation{Cached: true, SigOK: true, Sig: sig, SLO: slo, Rank: res.Rank, Err: res.Err})
		}
		return res
	}
	p.stats.Misses++
	res := p.walk(c, slo, avail())
	p.cache[key] = res
	if p.observer != nil {
		p.observer(PlanObservation{SigOK: true, Sig: sig, SLO: slo, Rank: res.Rank, Err: res.Err})
	}
	return res
}

// Construct is a drop-in cached replacement for the package-level
// Construct: same inputs, same outputs, served from the plan cache when
// the free multiset has been seen before.
func (p *Planner) Construct(avail []mig.SliceType, slo float64) (Plan, []int, error) {
	plan, idx, _, err := p.ConstructRanked(avail, slo)
	return plan, idx, err
}

// ConstructRanked is Construct plus the chosen partition's rank.
func (p *Planner) ConstructRanked(avail []mig.SliceType, slo float64) (Plan, []int, int, error) {
	res := p.Result(CountsOf(avail), slo, func() []mig.SliceType { return avail })
	if res.Err != nil {
		return Plan{}, nil, -1, res.Err
	}
	return res.Plan, res.BindIndices(avail, nil), res.Rank, nil
}

// BindIndices replays the index binding of a successful result against
// a concrete free-slice view with the result's multiset: stages bind in
// the recorded order, each taking the first unused index of its profile
// in view order — exactly the tie-break the uncached assignment uses.
// used, when non-nil, marks view entries already consumed by earlier
// placements and is skipped, not mutated; within one call each index is
// taken at most once via per-profile cursors.
func (res *PlanResult) BindIndices(avail []mig.SliceType, used []bool) []int {
	idx := make([]int, len(res.StageTypes))
	next := [mig.NumSliceTypes]int{}
	for _, stage := range res.Order {
		t := res.StageTypes[stage]
		ai := next[t]
		for ai < len(avail) && (avail[ai] != t || (used != nil && used[ai])) {
			ai++
		}
		if ai == len(avail) {
			panic("pipeline: plan result binding exceeds free view")
		}
		next[t] = ai + 1
		idx[stage] = ai
	}
	return idx
}

// walk runs the real §5.2.2 walk (identical outcome to ConstructRanked)
// with the O(1) per-partition infeasibility pre-check, and packages the
// outcome for caching.
func (p *Planner) walk(c Counts, slo float64, avail []mig.SliceType) *PlanResult {
	// availGE[r] counts free slices of compute-rank ≥ r.
	var availGE [mig.NumSliceTypes + 1]int
	for r := mig.NumSliceTypes - 1; r >= 0; r-- {
		availGE[r] = availGE[r+1] + c[p.computeOrder[r]]
	}
	for rank, part := range p.parts {
		pre := &p.pre[rank]
		if pre.dead || p.quickReject(pre, availGE) {
			p.stats.QuickRejects++
			continue
		}
		idx, ok := assign(p.d, part, avail)
		if !ok {
			continue
		}
		types := make([]mig.SliceType, len(idx))
		for i, ai := range idx {
			types[i] = avail[ai]
		}
		plan, err := BuildPlan(p.d, part, types)
		if err != nil {
			continue
		}
		if slo > 0 && plan.Latency > slo {
			continue
		}
		return &PlanResult{Rank: rank, Plan: plan, StageTypes: types, Order: pre.order}
	}
	return &PlanResult{Err: ErrNoFit, Rank: -1}
}

// quickReject reports whether the partition provably cannot be assigned
// from the current free multiset: some rank threshold has more stages
// that require at-least-that-rank profiles than free slices of such
// profiles exist. The check is sound (never rejects an assignable
// partition) because a stage's every feasible profile has rank ≥ its
// minRank.
func (p *Planner) quickReject(pre *partPre, availGE [mig.NumSliceTypes + 1]int) bool {
	for r := 0; r < mig.NumSliceTypes; r++ {
		if pre.needGE[r] > availGE[r] {
			return true
		}
	}
	return false
}
