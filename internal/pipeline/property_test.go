package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// randomChain builds a linear DAG from fuzz bytes: each byte pair sets
// one node's memory (1..15 GB) and base time (10..300 ms on 7g), scaled
// by (7/g)^0.5 across slices.
func randomChain(raw []byte) *dag.DAG {
	n := len(raw)/2 + 1
	if n > 6 {
		n = 6
	}
	d := dag.New()
	var prev dag.NodeID = -1
	for i := 0; i < n; i++ {
		memB, timeB := byte(3), byte(7)
		if 2*i < len(raw) {
			memB = raw[2*i]
		}
		if 2*i+1 < len(raw) {
			timeB = raw[2*i+1]
		}
		mem := float64(memB%15) + 1
		base := (float64(timeB%30)*10 + 10) / 1000
		exec := map[mig.SliceType]float64{}
		for _, t := range mig.SliceTypes {
			if mem > float64(t.MemGB()) {
				continue
			}
			exec[t] = base * math.Sqrt(7/float64(t.GPCs()))
		}
		id := d.AddNode(dag.Node{Name: "n", MemGB: mem, OutMB: float64(memB%40) + 1, Exec: exec})
		if prev >= 0 {
			d.AddEdge(prev, id)
		}
		prev = id
	}
	return d
}

// TestConstructInvariantsProperty: on random chains and random free
// pools, every successful construction satisfies the structural
// invariants the invoker relies on.
func TestConstructInvariantsProperty(t *testing.T) {
	menu := []mig.SliceType{mig.Slice1g, mig.Slice2g, mig.Slice3g, mig.Slice4g, mig.Slice7g}
	f := func(raw []byte, freeRaw []byte) bool {
		d := randomChain(raw)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			return false
		}
		var free []mig.SliceType
		for i := 0; i < len(freeRaw)%7; i++ {
			free = append(free, menu[int(freeRaw[i])%len(menu)])
		}
		plan, idx, err := Construct(d, parts, free, 0)
		if err == ErrNoFit {
			return true
		}
		if err != nil {
			return false
		}
		// (1) one distinct slice per stage, types matching.
		seen := map[int]bool{}
		for i, ai := range idx {
			if ai < 0 || ai >= len(free) || seen[ai] {
				return false
			}
			seen[ai] = true
			if plan.Stages[i].SliceType != free[ai] {
				return false
			}
		}
		// (2) stages cover every node exactly once, in order.
		covered := 0
		nextNode := dag.NodeID(0)
		for _, sp := range plan.Stages {
			for _, n := range sp.Stage.Nodes {
				if n != nextNode {
					return false
				}
				nextNode++
				covered++
			}
		}
		if covered != d.Len() {
			return false
		}
		// (3) memory fits per stage.
		for _, sp := range plan.Stages {
			if sp.MemGB > float64(sp.SliceType.MemGB())+1e-9 {
				return false
			}
		}
		// (4) latency = sum of stage costs; bottleneck = max exec;
		// last stage has no transfer.
		sum, max := 0.0, 0.0
		for i, sp := range plan.Stages {
			sum += sp.ExecTime + sp.TransferOut
			if sp.ExecTime > max {
				max = sp.ExecTime
			}
			if i == len(plan.Stages)-1 && sp.TransferOut != 0 {
				return false
			}
		}
		return math.Abs(sum-plan.Latency) < 1e-9 && math.Abs(max-plan.Bottleneck) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestConstructSLOFilterProperty: with an SLO given, any returned plan
// respects it.
func TestConstructSLOFilterProperty(t *testing.T) {
	f := func(raw []byte, sloRaw uint8) bool {
		d := randomChain(raw)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			return false
		}
		slo := float64(sloRaw%200)/100 + 0.05
		free := []mig.SliceType{mig.Slice1g, mig.Slice2g, mig.Slice4g, mig.Slice1g}
		plan, _, err := Construct(d, parts, free, slo)
		if err != nil {
			return true // nothing fit within the SLO: fine
		}
		return plan.Latency <= slo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
