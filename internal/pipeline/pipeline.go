// Package pipeline turns a ranked DAG partition into a deployable plan:
// stages mapped to MIG slice profiles, with latency, bottleneck and
// transfer analysis, and the first-fit construction procedure the FFS
// invoker runs at instance launch (§5.2.2).
package pipeline

import (
	"fmt"
	"strings"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// StagePlan is one pipeline stage bound to a slice profile.
type StagePlan struct {
	Stage dag.Stage
	// SliceType the stage runs on.
	SliceType mig.SliceType
	// ExecTime is the stage's service time on its slice.
	ExecTime float64
	// TransferOut is the host shared-memory hop cost to the next stage
	// (zero for the last stage).
	TransferOut float64
	// MemGB is the memory the stage needs loaded on its slice.
	MemGB float64
}

// Plan is a fully analysed pipeline configuration for one instance.
type Plan struct {
	Stages []StagePlan
	// Latency is the unloaded end-to-end service latency: stage times
	// plus inter-stage transfers plus intra-stage data movement.
	Latency float64
	// Bottleneck is the largest stage service time; the instance's
	// sustainable throughput is 1/Bottleneck.
	Bottleneck float64
	// CV carries the partition's balance score.
	CV float64
}

// Pipelined reports whether the plan has more than one stage.
func (p Plan) Pipelined() bool { return len(p.Stages) > 1 }

// Throughput returns the plan's sustainable requests per second.
func (p Plan) Throughput() float64 {
	if p.Bottleneck <= 0 {
		return 0
	}
	return 1 / p.Bottleneck
}

// TotalMemGB returns the summed stage memory.
func (p Plan) TotalMemGB() float64 {
	t := 0.0
	for _, s := range p.Stages {
		t += s.MemGB
	}
	return t
}

// GPCs returns the total compute the plan occupies.
func (p Plan) GPCs() int {
	t := 0
	for _, s := range p.Stages {
		t += s.SliceType.GPCs()
	}
	return t
}

// String renders the plan like "[2g.20gb:0.45s -> 1g.10gb:0.15s]".
func (p Plan) String() string {
	parts := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		parts[i] = fmt.Sprintf("%s:%.3fs", s.SliceType, s.ExecTime)
	}
	return "[" + strings.Join(parts, " -> ") + "]"
}

// boundaryOutMB returns the transfer size from a stage: the largest
// output among the stage's nodes with an edge into a later stage.
func boundaryOutMB(d *dag.DAG, stage dag.Stage, inStage map[dag.NodeID]bool) float64 {
	out := 0.0
	for _, n := range stage.Nodes {
		for _, succ := range d.Succ(n) {
			if !inStage[succ] {
				if mb := d.Node(n).OutMB; mb > out {
					out = mb
				}
			}
		}
	}
	return out
}

// intraCost returns the same-slice data movement cost of a stage: one
// IntraTransfer per edge internal to the stage.
func intraCost(d *dag.DAG, stage dag.Stage, inStage map[dag.NodeID]bool) float64 {
	cost := 0.0
	for _, n := range stage.Nodes {
		for _, succ := range d.Succ(n) {
			if inStage[succ] {
				cost += dag.IntraTransfer
			}
		}
	}
	return cost
}

// BuildPlan binds each stage of the partition to the corresponding slice
// profile in types (len(types) must equal the stage count) and analyses
// it. It fails when a stage's memory exceeds its slice or a component
// cannot run on it.
func BuildPlan(d *dag.DAG, part dag.Partition, types []mig.SliceType) (Plan, error) {
	if len(types) != len(part.Stages) {
		return Plan{}, fmt.Errorf("pipeline: %d slice types for %d stages",
			len(types), len(part.Stages))
	}
	plan := Plan{CV: part.CV}
	for i, st := range part.Stages {
		mem := st.MemGB(d)
		if mem > float64(types[i].MemGB()) {
			return Plan{}, fmt.Errorf("pipeline: stage %d needs %.1f GB, %s has %d GB",
				i, mem, types[i], types[i].MemGB())
		}
		if len(st.Nodes) == d.Len() && types[i].GPCs() < d.MonoMinGPCs {
			return Plan{}, fmt.Errorf("pipeline: monolithic stage needs %d GPCs, %s has %d",
				d.MonoMinGPCs, types[i], types[i].GPCs())
		}
		exec, ok := st.ExecOn(d, types[i])
		if !ok {
			return Plan{}, fmt.Errorf("pipeline: stage %d cannot run on %s", i, types[i])
		}
		inStage := make(map[dag.NodeID]bool, len(st.Nodes))
		for _, n := range st.Nodes {
			inStage[n] = true
		}
		exec += intraCost(d, st, inStage)
		sp := StagePlan{Stage: st, SliceType: types[i], ExecTime: exec, MemGB: mem}
		if i < len(part.Stages)-1 {
			sp.TransferOut = d.HopTime(boundaryOutMB(d, st, inStage))
		}
		plan.Stages = append(plan.Stages, sp)
		plan.Latency += sp.ExecTime + sp.TransferOut
		if sp.ExecTime > plan.Bottleneck {
			plan.Bottleneck = sp.ExecTime
		}
	}
	return plan, nil
}

// Monolithic returns the single-stage plan of the whole DAG on one slice
// profile — the baseline (non-pipeline) execution model.
func Monolithic(d *dag.DAG, t mig.SliceType) (Plan, error) {
	part, err := d.MonolithicPartition()
	if err != nil {
		return Plan{}, err
	}
	return BuildPlan(d, part, []mig.SliceType{t})
}
