package pipeline

import (
	"math"
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
)

func rankedParts(t *testing.T, d *dag.DAG) []dag.Partition {
	t.Helper()
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func TestMonolithicPlan(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium)
	plan, err := Monolithic(d, mig.Slice2g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pipelined() {
		t.Error("monolithic plan reports pipelined")
	}
	ref, _ := a.ReferenceLatency(dnn.Medium)
	if math.Abs(plan.Latency-ref) > 1e-9 {
		t.Errorf("monolithic latency %v != reference %v", plan.Latency, ref)
	}
	if plan.Bottleneck <= 0 || plan.Throughput() <= 0 {
		t.Error("plan has no throughput")
	}
	if plan.GPCs() != 2 {
		t.Errorf("GPCs = %d, want 2", plan.GPCs())
	}
}

func TestMonolithicOOM(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium) // 18 GB > 1g's 10 GB
	if _, err := Monolithic(d, mig.Slice1g); err == nil {
		t.Error("monolithic medium on 1g should fail")
	}
}

func TestBuildPlanTransferAndBottleneck(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium)
	parts := rankedParts(t, d)
	// Find the 3-stage (fully split) partition.
	var full dag.Partition
	for _, p := range parts {
		if len(p.Stages) == 3 {
			full = p
			break
		}
	}
	plan, err := BuildPlan(d, full, []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Pipelined() {
		t.Error("3-stage plan not pipelined")
	}
	// Per-hop transfer within the paper's 10-40 ms range.
	for i, s := range plan.Stages {
		if i == len(plan.Stages)-1 {
			if s.TransferOut != 0 {
				t.Errorf("last stage has TransferOut %v", s.TransferOut)
			}
			continue
		}
		if s.TransferOut < 0.010 || s.TransferOut > 0.040 {
			t.Errorf("stage %d transfer %v outside 10-40 ms", i, s.TransferOut)
		}
	}
	// Bottleneck = max stage exec, latency = sum + transfers.
	sum, max := 0.0, 0.0
	for _, s := range plan.Stages {
		sum += s.ExecTime + s.TransferOut
		if s.ExecTime > max {
			max = s.ExecTime
		}
	}
	if math.Abs(plan.Latency-sum) > 1e-12 || math.Abs(plan.Bottleneck-max) > 1e-12 {
		t.Errorf("latency/bottleneck inconsistent: %+v", plan)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Large)
	parts := rankedParts(t, d)
	var full dag.Partition
	for _, p := range parts {
		if len(p.Stages) == 3 {
			full = p
			break
		}
	}
	// Wrong arity.
	if _, err := BuildPlan(d, full, []mig.SliceType{mig.Slice2g}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Large stages (>=12 GB) cannot sit on 1g.
	if _, err := BuildPlan(d, full, []mig.SliceType{mig.Slice1g, mig.Slice2g, mig.Slice2g}); err == nil {
		t.Error("OOM stage accepted")
	}
}

// Pipelining trades latency for the ability to use fragmented slices:
// the pipelined latency exceeds the monolithic one (transfer + slower
// stages) but stays within the 1.5x SLO for the paper's applications.
func TestPipelineLatencyVsSLO(t *testing.T) {
	for _, a := range dnn.Apps() {
		for _, v := range dnn.Variants {
			if a.Excluded(v) {
				continue
			}
			baseMin, _ := a.MinSliceBaseline(v)
			slo, _ := a.SLOLatency(v, 1.5)
			d := a.BuildDAG(v)
			parts := rankedParts(t, d)
			// Fragmented pool: slices strictly smaller than the
			// baseline's minimum — what ESG would leave idle.
			var avail []mig.SliceType
			for _, st := range mig.SliceTypes {
				if st < baseMin {
					for i := 0; i < 5; i++ {
						avail = append(avail, st)
					}
				}
			}
			if len(avail) == 0 {
				continue // small variants fit everywhere
			}
			plan, idx, err := Construct(d, parts, avail, slo)
			if err != nil {
				t.Errorf("%s/%s: no pipeline on fragments: %v", a.Name, v, err)
				continue
			}
			if !plan.Pipelined() {
				t.Errorf("%s/%s: expected a pipelined plan on fragments", a.Name, v)
			}
			if plan.Latency > slo {
				t.Errorf("%s/%s: pipeline latency %.3f > SLO %.3f", a.Name, v, plan.Latency, slo)
			}
			if len(idx) != len(plan.Stages) {
				t.Errorf("%s/%s: assignment arity mismatch", a.Name, v)
			}
		}
	}
}

func TestConstructPrefersMonolithicWhenBigSliceFree(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium)
	parts := rankedParts(t, d)
	slo, _ := a.SLOLatency(dnn.Medium, 1.5)
	avail := []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g, mig.Slice4g}
	plan, _, err := Construct(d, parts, avail, slo)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pipelined() {
		t.Errorf("with a 4g free, construction should be monolithic; got %v", plan)
	}
	if plan.Stages[0].SliceType != mig.Slice4g {
		t.Errorf("monolithic stage on %v, want 4g", plan.Stages[0].SliceType)
	}
}

func TestConstructUsesDistinctSlices(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium)
	parts := rankedParts(t, d)
	avail := []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g}
	_, idx, err := Construct(d, parts, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("slice index %d used twice", i)
		}
		seen[i] = true
	}
}

func TestConstructNoFit(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Large) // every component needs >= 2g
	parts := rankedParts(t, d)
	_, _, err := Construct(d, parts, []mig.SliceType{mig.Slice1g, mig.Slice1g}, 0)
	if err != ErrNoFit {
		t.Errorf("err = %v, want ErrNoFit", err)
	}
}

// Heavy-workload shape (§7.2): large variants pipeline onto the 2g and
// 1g fragments of the default partition while ESG can only use the 4g.
func TestLargeVariantUsesFragments(t *testing.T) {
	for _, id := range []dnn.AppID{dnn.ImageClassification, dnn.DepthRecognition, dnn.BackgroundElimination} {
		a := dnn.Get(id)
		d := a.BuildDAG(dnn.Large)
		parts := rankedParts(t, d)
		slo, _ := a.SLOLatency(dnn.Large, 1.5)
		// Fragments from three GPUs of the default partition (4g in use).
		avail := []mig.SliceType{mig.Slice2g, mig.Slice1g, mig.Slice2g, mig.Slice1g, mig.Slice2g, mig.Slice1g}
		plan, _, err := Construct(d, parts, avail, slo)
		if err != nil {
			t.Errorf("%s/large cannot use fragments: %v", a.Name, err)
			continue
		}
		if !plan.Pipelined() {
			t.Errorf("%s/large plan not pipelined", a.Name)
		}
		for _, s := range plan.Stages {
			if s.SliceType > mig.Slice2g {
				t.Errorf("%s/large stage on %v, fragments only have <=2g", a.Name, s.SliceType)
			}
		}
	}
}

// App 3 medium is the paper's starkest case: the baseline needs a
// 4g.40gb slice, FluidFaaS runs it on 2g+2g+1g fragments.
func TestApp3MediumOnFragments(t *testing.T) {
	a := dnn.Get(dnn.ExpandedClassification)
	d := a.BuildDAG(dnn.Medium)
	parts := rankedParts(t, d)
	slo, _ := a.SLOLatency(dnn.Medium, 1.5)
	avail := []mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g, mig.Slice1g}
	plan, _, err := Construct(d, parts, avail, slo)
	if err != nil {
		t.Fatalf("app3/medium on fragments: %v", err)
	}
	if !plan.Pipelined() {
		t.Error("app3/medium plan not pipelined")
	}
	if plan.Latency > slo {
		t.Errorf("app3/medium latency %.3f > SLO %.3f", plan.Latency, slo)
	}
}

// Throughput of a pipeline on fragments must beat the monolithic
// deployment on the smallest baseline slice per GPC consumed — otherwise
// fragments would not raise cluster throughput.
func TestPipelineThroughputGain(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Large)
	mono, err := Monolithic(d, mig.Slice4g)
	if err != nil {
		t.Fatal(err)
	}
	parts := rankedParts(t, d)
	plan, _, err := Construct(d, parts,
		[]mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Throughput() <= 0.5*mono.Throughput() {
		t.Errorf("pipeline throughput %.2f too low vs monolithic %.2f",
			plan.Throughput(), mono.Throughput())
	}
}

func TestPlanString(t *testing.T) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Small)
	plan, err := Monolithic(d, mig.Slice1g)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.String(); s == "" || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
}
