package pipeline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// randomHoleyChain is randomChain with feasibility holes: some nodes
// lose their exec profile on a mid-sized slice even though memory fits,
// so per-stage feasibility sets are not upward-closed in compute order.
// The planner's O(1) pre-reject must stay sound under such holes.
func randomHoleyChain(raw []byte) *dag.DAG {
	n := len(raw)/2 + 1
	if n > 6 {
		n = 6
	}
	d := dag.New()
	var prev dag.NodeID = -1
	for i := 0; i < n; i++ {
		memB, timeB := byte(3), byte(7)
		if 2*i < len(raw) {
			memB = raw[2*i]
		}
		if 2*i+1 < len(raw) {
			timeB = raw[2*i+1]
		}
		mem := float64(memB%15) + 1
		base := (float64(timeB)*10 + 10) / 1000
		exec := map[mig.SliceType]float64{}
		for _, t := range mig.SliceTypes {
			if mem > float64(t.MemGB()) {
				continue
			}
			exec[t] = base * math.Sqrt(7/float64(t.GPCs()))
		}
		// Punch a hole: drop a feasible middle profile so the stage's
		// feasibility set has a gap in compute order.
		if timeB%3 == 0 {
			delete(exec, mig.SliceType(int(timeB/3)%mig.NumSliceTypes))
		}
		id := d.AddNode(dag.Node{Name: "n", MemGB: mem, OutMB: float64(memB%40) + 1, Exec: exec})
		if prev >= 0 {
			d.AddEdge(prev, id)
		}
		prev = id
	}
	return d
}

// TestPlannerMatchesConstructProperty: the memoized planner is
// extensionally equal to the uncached walk — same plan, same slice
// indices, same partition rank, same error — over random DAGs (with
// non-monotone feasibility holes), random free-slice multisets and
// SLOs, including after simulated alloc/release churn of the free pool.
func TestPlannerMatchesConstructProperty(t *testing.T) {
	menu := mig.SliceTypes
	f := func(raw []byte, freeRaw []byte, sloRaw uint8) bool {
		d := randomHoleyChain(raw)
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			return true // unrunnable reference profile: nothing to compare
		}
		slo := 0.0
		if sloRaw%2 == 0 {
			slo = float64(sloRaw)/64 + 0.05
		}
		pl := NewPlanner(d, parts)
		rng := rand.New(rand.NewSource(int64(len(raw))*131 + int64(len(freeRaw))))
		free := make([]mig.SliceType, 0, 8)
		for i := 0; i < len(freeRaw)%8; i++ {
			free = append(free, menu[int(freeRaw[i])%len(menu)])
		}
		check := func(avail []mig.SliceType) bool {
			ap, ai, ar, ae := pl.ConstructRanked(avail, slo)
			bp, bi, br, be := ConstructRanked(d, parts, avail, slo)
			if (ae == nil) != (be == nil) || ae != be {
				return false
			}
			if ae != nil {
				return true
			}
			return reflect.DeepEqual(ap, bp) &&
				reflect.DeepEqual(ai, bi) && ar == br
		}
		// Churn loop: allocate (drop) and release (add) slices, and
		// permute index order, re-comparing after every mutation. Each
		// multiset revisited must serve from the cache yet stay equal.
		for round := 0; round < 12; round++ {
			if !check(free) {
				return false
			}
			if !check(free) { // immediate revisit: guaranteed cache hit
				return false
			}
			switch rng.Intn(3) {
			case 0: // simulated allocation
				if len(free) > 0 {
					i := rng.Intn(len(free))
					free = append(free[:i], free[i+1:]...)
				}
			case 1: // simulated release
				free = append(free, menu[rng.Intn(len(menu))])
			default: // same multiset, different index order
				rng.Shuffle(len(free), func(i, j int) {
					free[i], free[j] = free[j], free[i]
				})
			}
		}
		// 12 rounds × 2 checks with immediate revisits: at least half
		// the lookups must have hit the cache.
		return pl.Stats().Hits >= pl.Stats().Lookups()/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCountsSignatureCanonicalization: the multiset signature is
// order-independent, injective across distinct multisets within the
// packing bound, and refuses to canonicalize overflowing counts.
func TestCountsSignatureCanonicalization(t *testing.T) {
	perms := [][]mig.SliceType{
		{mig.Slice1g, mig.Slice2g, mig.Slice1g, mig.Slice7g},
		{mig.Slice7g, mig.Slice1g, mig.Slice2g, mig.Slice1g},
		{mig.Slice2g, mig.Slice7g, mig.Slice1g, mig.Slice1g},
	}
	want, ok := CountsOf(perms[0]).Signature()
	if !ok {
		t.Fatal("signature overflow on a 4-slice view")
	}
	for _, p := range perms {
		got, ok := CountsOf(p).Signature()
		if !ok || got != want {
			t.Errorf("permuted view %v: signature %#x ok=%v, want %#x", p, got, ok, want)
		}
	}

	distinct := [][]mig.SliceType{
		{},
		{mig.Slice1g},
		{mig.Slice2g},
		{mig.Slice1g, mig.Slice1g},
		{mig.Slice1g, mig.Slice2g},
		{mig.Slice2g, mig.Slice2g},
		{mig.Slice7g},
		{mig.Slice3g, mig.Slice4g},
		{mig.Slice4g, mig.Slice4g},
	}
	seen := map[uint64][]mig.SliceType{}
	for _, v := range distinct {
		sig, ok := CountsOf(v).Signature()
		if !ok {
			t.Fatalf("overflow on %v", v)
		}
		if prev, dup := seen[sig]; dup {
			t.Errorf("multisets %v and %v collide on %#x", prev, v, sig)
		}
		seen[sig] = v
	}

	var big Counts
	big[mig.Slice1g] = 1 << sigBits // 4096: one past the packing bound
	if _, ok := big.Signature(); ok {
		t.Error("overflowing count canonicalized; cache keys would collide")
	}
	big[mig.Slice1g] = 1<<sigBits - 1
	if _, ok := big.Signature(); !ok {
		t.Error("count at the packing bound should canonicalize")
	}
}

// TestPlannerNegativeCaching: a no-fit outcome is memoized too — the
// second identical query must not re-walk the partition list.
func TestPlannerNegativeCaching(t *testing.T) {
	d := dag.New()
	d.AddNode(dag.Node{Name: "big", MemGB: 60,
		Exec: map[mig.SliceType]float64{mig.Slice7g: 0.2}})
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, parts)
	avail := []mig.SliceType{mig.Slice1g, mig.Slice2g}
	for i := 0; i < 3; i++ {
		if _, _, err := pl.Construct(avail, 0); err != ErrNoFit {
			t.Fatalf("query %d: err = %v, want ErrNoFit", i, err)
		}
	}
	st := pl.Stats()
	if st.Walks() != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v: want exactly 1 walk and 2 hits for 3 identical no-fit queries", st)
	}
}

// TestAssignTieBreakComputeOrder (satellite bugfix): "smallest fitting
// slice" must mean fewest GPCs then least memory — an explicit compute
// comparison — not the raw SliceType enum value, so correctness cannot
// silently depend on declaration order.
func TestAssignTieBreakComputeOrder(t *testing.T) {
	// The comparator itself must realise (GPCs, MemGB, enum) lexicographic
	// order for every pair, whatever the enum values happen to be.
	for _, a := range mig.SliceTypes {
		for _, b := range mig.SliceTypes {
			want := false
			switch {
			case a.GPCs() != b.GPCs():
				want = a.GPCs() < b.GPCs()
			case a.MemGB() != b.MemGB():
				want = a.MemGB() < b.MemGB()
			default:
				want = a < b
			}
			if got := mig.LessCompute(a, b); got != want {
				t.Errorf("LessCompute(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}

	// A single-stage function runnable everywhere: construction over a
	// free list presented in every permutation of {4g, 3g} must pick the
	// 3g — same memory, fewer GPCs — regardless of scan order.
	d := dag.New()
	d.AddNode(dag.Node{Name: "n", MemGB: 35, Exec: map[mig.SliceType]float64{
		mig.Slice3g: 0.1, mig.Slice4g: 0.1, mig.Slice7g: 0.1}})
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	for _, avail := range [][]mig.SliceType{
		{mig.Slice3g, mig.Slice4g},
		{mig.Slice4g, mig.Slice3g},
		{mig.Slice7g, mig.Slice4g, mig.Slice3g},
	} {
		plan, idx, err := Construct(d, parts, avail, 0)
		if err != nil {
			t.Fatalf("no fit over %v: %v", avail, err)
		}
		if got := plan.Stages[0].SliceType; got != mig.Slice3g {
			t.Errorf("over %v chose %v, want 3g.40gb (fewest GPCs at equal memory)", avail, got)
		}
		if avail[idx[0]] != plan.Stages[0].SliceType {
			t.Errorf("over %v: index %d does not match the chosen type", avail, idx[0])
		}
	}
}

// TestPlannerBindIndicesSkipsConsumed: replaying a cached binding
// against a partially consumed view takes the first unconsumed index of
// each profile, matching the uncached tie-break.
func TestPlannerBindIndicesSkipsConsumed(t *testing.T) {
	res := &PlanResult{
		StageTypes: []mig.SliceType{mig.Slice2g, mig.Slice1g},
		Order:      []int{0, 1},
	}
	view := []mig.SliceType{mig.Slice2g, mig.Slice1g, mig.Slice2g, mig.Slice1g}
	used := []bool{true, false, false, false} // first 2g already taken
	idx := res.BindIndices(view, used)
	if idx[0] != 2 || idx[1] != 1 {
		t.Errorf("bound indices %v, want [2 1]", idx)
	}
}

// TestPlannerObserver: the lookup observer fires once per Result call
// and correctly distinguishes a constructing miss, a cache hit, and a
// signature-overflow bypass — the provenance layer's raw signal.
func TestPlannerObserver(t *testing.T) {
	d := dag.New()
	d.AddNode(dag.Node{Name: "n", MemGB: 8,
		Exec: map[mig.SliceType]float64{mig.Slice2g: 0.1, mig.Slice7g: 0.05}})
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(d, parts)
	var obs []PlanObservation
	pl.SetObserver(func(o PlanObservation) { obs = append(obs, o) })

	avail := []mig.SliceType{mig.Slice2g, mig.Slice2g}
	for i := 0; i < 3; i++ {
		if _, _, err := pl.Construct(avail, 0); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if len(obs) != 3 {
		t.Fatalf("observer fired %d times, want 3", len(obs))
	}
	if obs[0].Cached || !obs[0].SigOK || obs[0].Err != nil {
		t.Errorf("first lookup = %+v, want uncached miss", obs[0])
	}
	for i := 1; i < 3; i++ {
		if !obs[i].Cached || !obs[i].SigOK || obs[i].Sig != obs[0].Sig {
			t.Errorf("lookup %d = %+v, want hit with same signature", i, obs[i])
		}
	}

	// A multiset too large to pack bypasses the cache and reports
	// SigOK=false.
	obs = nil
	big := make([]mig.SliceType, 1<<sigBits)
	for i := range big {
		big[i] = mig.Slice1g
	}
	pl.Result(CountsOf(big), 0, func() []mig.SliceType { return big })
	if len(obs) != 1 || obs[0].SigOK || obs[0].Cached {
		t.Errorf("overflow lookup = %+v, want uncached SigOK=false", obs)
	}

	// Removing the observer stops delivery.
	pl.SetObserver(nil)
	obs = nil
	if _, _, err := pl.Construct(avail, 0); err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Error("removed observer still firing")
	}
}
