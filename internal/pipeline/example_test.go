package pipeline_test

import (
	"fmt"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// Example shows the invoker's launch-time step (§5.2.2): the medium
// image-classification function does not fit the fragmented 1g slices
// monolithically, so construction walks the CV-ranked partitions and
// deploys the first feasible pipeline.
func Example() {
	app := dnn.Get(dnn.ImageClassification)
	d := app.BuildDAG(dnn.Medium)
	parts, _ := d.EnumeratePartitions(mig.Slice7g)

	free := []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g}
	slo, _ := app.SLOLatency(dnn.Medium, 1.5)
	plan, _, err := pipeline.Construct(d, parts, free, slo)
	if err != nil {
		fmt.Println("no fit:", err)
		return
	}
	fmt.Printf("stages: %d\n", len(plan.Stages))
	fmt.Printf("pipelined: %v\n", plan.Pipelined())
	fmt.Printf("within SLO: %v\n", plan.Latency <= slo)
	// Output:
	// stages: 3
	// pipelined: true
	// within SLO: true
}

// ExampleMonolithic shows the baseline deployment model: the whole
// function on one slice.
func ExampleMonolithic() {
	app := dnn.Get(dnn.ImageClassification)
	d := app.BuildDAG(dnn.Medium)
	plan, _ := pipeline.Monolithic(d, mig.Slice4g)
	fmt.Printf("stages: %d, GPCs: %d\n", len(plan.Stages), plan.GPCs())
	// The 18 GB function cannot run monolithically on a 1g.10gb slice.
	if _, err := pipeline.Monolithic(d, mig.Slice1g); err != nil {
		fmt.Println("1g: OOM")
	}
	// Output:
	// stages: 1, GPCs: 4
	// 1g: OOM
}
