package dnn

import (
	"fmt"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// AppID identifies one of the four evaluation applications (Table 4).
type AppID int

// The four applications.
const (
	ImageClassification    AppID = iota // App 0: super-res -> segmentation -> classification
	DepthRecognition                    // App 1: deblur -> super-res -> depth
	BackgroundElimination               // App 2: super-res -> deblur -> background removal
	ExpandedClassification              // App 3: deblur -> (optional super-res) -> bg removal -> seg -> cls
	numApps
)

// AppIDs lists all applications.
var AppIDs = []AppID{ImageClassification, DepthRecognition,
	BackgroundElimination, ExpandedClassification}

// App describes one evaluation application.
type App struct {
	ID   AppID
	Name string
	// Models in topological order.
	Models []ModelID
	// Edges as index pairs into Models.
	Edges [][2]int
	// Optional marks models that only execute on some inputs (App 3's
	// conditional super-resolution); they still count toward memory and
	// worst-case latency.
	Optional map[int]bool
	// minGPCsBaseline is the compute a monolithic deployment needs per
	// variant to be viable at all (1 unless stated); App 3's five-model
	// medium variant needs 4 GPCs (Table 5).
	minGPCsBaseline [numVariants]int
	// excluded marks variants outside the paper's study (App 3 large:
	// "NULL" in Table 5, since no slice in the deployed partitions can
	// host it monolithically).
	excluded [numVariants]bool
}

var apps = [numApps]App{
	ImageClassification: {
		ID: ImageClassification, Name: "image-classification",
		Models:          []ModelID{SuperResolution, Segmentation, Classification},
		Edges:           [][2]int{{0, 1}, {1, 2}},
		minGPCsBaseline: [numVariants]int{1, 1, 1},
	},
	DepthRecognition: {
		ID: DepthRecognition, Name: "depth-recognition",
		Models:          []ModelID{Deblur, SuperResolution, DepthEstimation},
		Edges:           [][2]int{{0, 1}, {1, 2}},
		minGPCsBaseline: [numVariants]int{1, 1, 1},
	},
	BackgroundElimination: {
		ID: BackgroundElimination, Name: "background-elimination",
		Models:          []ModelID{SuperResolution, Deblur, BackgroundRemoval},
		Edges:           [][2]int{{0, 1}, {1, 2}},
		minGPCsBaseline: [numVariants]int{1, 1, 1},
	},
	ExpandedClassification: {
		ID: ExpandedClassification, Name: "expanded-image-classification",
		Models: []ModelID{Deblur, SuperResolution, BackgroundRemoval,
			Segmentation, Classification},
		// deblur -> super-res -> bg, with a skip edge deblur -> bg for
		// high-resolution inputs, then bg -> seg -> cls.
		Edges:           [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}},
		Optional:        map[int]bool{1: true},
		minGPCsBaseline: [numVariants]int{1, 4, 1},
		excluded:        [numVariants]bool{false, false, true},
	},
}

// Get returns the application description.
func Get(id AppID) App {
	if id < 0 || id >= numApps {
		panic(fmt.Sprintf("dnn: invalid AppID %d", int(id)))
	}
	return apps[id]
}

// Apps returns all four applications.
func Apps() []App {
	out := make([]App, 0, numApps)
	for _, id := range AppIDs {
		out = append(out, Get(id))
	}
	return out
}

// Excluded reports whether the variant is outside the paper's study.
func (a App) Excluded(v Variant) bool { return a.excluded[mustVariant(v)] }

// BuildDAG constructs the FFS DAG of the application at a variant, with
// every node carrying its profile — the output of the BUILDDAG mode of a
// FluidFaaS function.
func (a App) BuildDAG(v Variant) *dag.DAG {
	d := dag.New()
	ids := make([]dag.NodeID, len(a.Models))
	for i, m := range a.Models {
		ids[i] = d.AddNode(dag.Node{
			Name:  m.String(),
			MemGB: m.MemGB(v),
			OutMB: m.OutMB(v),
			Exec:  m.ExecProfile(v),
		})
	}
	for _, e := range a.Edges {
		d.AddEdge(ids[e[0]], ids[e[1]])
	}
	d.MonoMinGPCs = a.minGPCsBaseline[mustVariant(v)]
	return d
}

// TotalMemGB returns the monolithic memory footprint of the variant.
func (a App) TotalMemGB(v Variant) float64 {
	t := 0.0
	for _, m := range a.Models {
		t += m.MemGB(v)
	}
	return t
}

// MaxComponentMemGB returns the largest single-component footprint — the
// constraint on FluidFaaS's minimum slice.
func (a App) MaxComponentMemGB(v Variant) float64 {
	max := 0.0
	for _, m := range a.Models {
		if g := m.MemGB(v); g > max {
			max = g
		}
	}
	return max
}

// deployableMax is the largest slice profile present in the evaluation's
// partition schemes; 7g.80gb never appears in them, which is why App 3
// large is NULL in Table 5.
const deployableMax = mig.Slice4g

// MinSliceBaseline returns the smallest slice profile a monolithic
// (baseline) deployment of the variant can use: the whole function's
// memory must fit and the profile must meet the variant's compute
// requirement. ok is false when no deployable profile works (Table 5
// "NULL").
func (a App) MinSliceBaseline(v Variant) (mig.SliceType, bool) {
	need := a.TotalMemGB(v)
	for _, t := range mig.SliceTypes {
		if t > deployableMax {
			break
		}
		if float64(t.MemGB()) >= need && t.GPCs() >= a.minGPCsBaseline[mustVariant(v)] {
			return t, true
		}
	}
	return 0, false
}

// MinSliceFluid returns the smallest slice profile a FluidFaaS pipeline
// deployment can use: only the largest single component must fit,
// because the runtime can split every component into its own stage.
func (a App) MinSliceFluid(v Variant) (mig.SliceType, bool) {
	if a.Excluded(v) {
		return 0, false
	}
	need := a.MaxComponentMemGB(v)
	for _, t := range mig.SliceTypes {
		if t > deployableMax {
			break
		}
		if float64(t.MemGB()) >= need {
			return t, true
		}
	}
	return 0, false
}

// IntraTransfer is the per-edge data-movement cost inside a monolithic
// instance (same GPU memory; §7.3 reports 1–5 ms for ESG).
const IntraTransfer = dag.IntraTransfer

// ReferenceLatency returns t of §6: the time for the application to
// complete its whole workflow running alone on its minimum baseline MIG
// slice. ok is false for excluded variants.
func (a App) ReferenceLatency(v Variant) (float64, bool) {
	st, ok := a.MinSliceBaseline(v)
	if !ok {
		return 0, false
	}
	total := 0.0
	for _, m := range a.Models {
		t, ok := m.ExecTime(v, st)
		if !ok {
			return 0, false
		}
		total += t
	}
	total += float64(len(a.Edges)) * IntraTransfer
	return total, true
}

// SLOLatency returns the SLO latency for the variant at the given SLO
// scale (default 1.5, §6).
func (a App) SLOLatency(v Variant, scale float64) (float64, bool) {
	ref, ok := a.ReferenceLatency(v)
	if !ok {
		return 0, false
	}
	return ref * scale, true
}
