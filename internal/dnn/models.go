// Package dnn provides the DNN model catalog and the four workflow
// applications of the paper's evaluation (Tables 4 and 5), with
// per-slice-type performance profiles.
//
// The real system profiles PyTorch models on MIG slices; here the
// profiles are synthetic but calibrated so that every scheduling-visible
// property of the paper holds exactly: the minimum-slice matrix of
// Table 5, the sublinear GPC speedup that makes small slices more
// efficient per GPC, and the 10–40 ms pipeline transfer overheads of
// §7.3. See DESIGN.md §2 for the substitution argument.
package dnn

import (
	"fmt"
	"math"

	"fluidfaas/internal/mig"
)

// Variant is a function size variant (§6): batch size and memory scale.
type Variant int

// The three variants of each application.
const (
	Small Variant = iota
	Medium
	Large
	numVariants
)

// Variants lists all size variants.
var Variants = []Variant{Small, Medium, Large}

// String returns "small", "medium" or "large".
func (v Variant) String() string {
	switch v {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant converts a variant name back to a Variant.
func ParseVariant(s string) (Variant, error) {
	for _, v := range Variants {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("dnn: unknown variant %q", s)
}

// ModelID identifies a DNN model in the catalog.
type ModelID int

// The six models composing the paper's applications (Table 4).
const (
	SuperResolution   ModelID = iota // SRGAN [35]
	Deblur                           // DeblurGAN [5]
	Segmentation                     // DeepLabV3 [6, 22]
	Classification                   // ResNet-50 [2, 30]
	DepthEstimation                  // MiDaS [44]
	BackgroundRemoval                // U2-Net [43]
	numModels
)

// Models lists the whole catalog.
var Models = []ModelID{SuperResolution, Deblur, Segmentation,
	Classification, DepthEstimation, BackgroundRemoval}

// Alpha is the GPC-scaling exponent: execution time on a g-GPC slice is
// t(g) = t(7)·(7/g)^Alpha. Alpha < 1 captures the sublinear speedup of
// inference with more compute (memory-bandwidth-bound layers), which is
// what makes several small slices deliver more aggregate throughput than
// one big slice — the effect FluidFaaS exploits.
const Alpha = 0.4

// variantMult scales batch execution time per variant.
var variantMult = [numVariants]float64{1.0, 2.5, 4.5}

// VariantMult returns the execution-time multiplier of a variant
// relative to Small.
func VariantMult(v Variant) float64 { return variantMult[mustVariant(v)] }

type modelInfo struct {
	name    string
	baseLat float64              // seconds on 7g.80gb, Small variant
	memGB   [numVariants]float64 // footprint per variant
	outMB   [numVariants]float64 // output tensor size per variant
}

var models = [numModels]modelInfo{
	SuperResolution:   {"super-resolution", 0.060, [numVariants]float64{3.0, 6.5, 13.0}, [numVariants]float64{12, 40, 72}},
	Deblur:            {"deblur", 0.050, [numVariants]float64{2.5, 6.0, 9.5}, [numVariants]float64{8, 32, 64}},
	Segmentation:      {"segmentation", 0.055, [numVariants]float64{3.5, 7.0, 14.0}, [numVariants]float64{8, 32, 64}},
	Classification:    {"classification", 0.015, [numVariants]float64{2.0, 4.5, 9.0}, [numVariants]float64{1, 4, 8}},
	DepthEstimation:   {"depth-estimation", 0.045, [numVariants]float64{3.0, 7.0, 14.0}, [numVariants]float64{8, 32, 64}},
	BackgroundRemoval: {"background-removal", 0.050, [numVariants]float64{3.0, 6.5, 13.0}, [numVariants]float64{8, 32, 64}},
}

func mustModel(m ModelID) ModelID {
	if m < 0 || m >= numModels {
		panic(fmt.Sprintf("dnn: invalid ModelID %d", int(m)))
	}
	return m
}

func mustVariant(v Variant) Variant {
	if v < 0 || v >= numVariants {
		panic(fmt.Sprintf("dnn: invalid Variant %d", int(v)))
	}
	return v
}

// String returns the model's name.
func (m ModelID) String() string { return models[mustModel(m)].name }

// MemGB returns the model's GPU memory footprint for a variant.
func (m ModelID) MemGB(v Variant) float64 {
	return models[mustModel(m)].memGB[mustVariant(v)]
}

// OutMB returns the model's output tensor size for a variant.
func (m ModelID) OutMB(v Variant) float64 {
	return models[mustModel(m)].outMB[mustVariant(v)]
}

// ExecTime returns the model's inference time on a slice profile, and
// whether the model fits the profile's memory at all.
func (m ModelID) ExecTime(v Variant, t mig.SliceType) (float64, bool) {
	if m.MemGB(v) > float64(t.MemGB()) {
		return 0, false
	}
	base := models[mustModel(m)].baseLat * variantMult[mustVariant(v)]
	return base * GPCSlowdown(t), true
}

// GPCSlowdown returns (7/g)^Alpha for a slice profile.
func GPCSlowdown(t mig.SliceType) float64 {
	return math.Pow(7.0/float64(t.GPCs()), Alpha)
}

// ExecProfile returns the model's full per-slice-type execution map,
// omitting profiles the model does not fit — the form dag.Node consumes.
func (m ModelID) ExecProfile(v Variant) map[mig.SliceType]float64 {
	out := make(map[mig.SliceType]float64, len(mig.SliceTypes))
	for _, t := range mig.SliceTypes {
		if d, ok := m.ExecTime(v, t); ok {
			out[t] = d
		}
	}
	return out
}
