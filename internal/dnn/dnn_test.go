package dnn

import (
	"math"
	"testing"

	"fluidfaas/internal/mig"
)

// TestTable5MinimumSlices pins the minimum-slice matrix of paper
// Table 5 for both the baseline and FluidFaaS columns.
func TestTable5MinimumSlices(t *testing.T) {
	type row struct {
		app      AppID
		variant  Variant
		baseline string // "" means NULL
		fluid    string
	}
	rows := []row{
		{ImageClassification, Small, "1g.10gb", "1g.10gb"},
		{ImageClassification, Medium, "2g.20gb", "1g.10gb"},
		{ImageClassification, Large, "3g.40gb", "2g.20gb"},
		{DepthRecognition, Small, "1g.10gb", "1g.10gb"},
		{DepthRecognition, Medium, "2g.20gb", "1g.10gb"},
		{DepthRecognition, Large, "3g.40gb", "2g.20gb"},
		{BackgroundElimination, Small, "1g.10gb", "1g.10gb"},
		{BackgroundElimination, Medium, "2g.20gb", "1g.10gb"},
		{BackgroundElimination, Large, "3g.40gb", "2g.20gb"},
		{ExpandedClassification, Small, "2g.20gb", "1g.10gb"},
		{ExpandedClassification, Medium, "4g.40gb", "1g.10gb"},
		{ExpandedClassification, Large, "", ""},
	}
	for _, r := range rows {
		a := Get(r.app)
		got, ok := a.MinSliceBaseline(r.variant)
		if r.baseline == "" {
			if ok {
				t.Errorf("%s/%s baseline = %v, want NULL", a.Name, r.variant, got)
			}
		} else if !ok || got.String() != r.baseline {
			t.Errorf("%s/%s baseline = %v (%v), want %s", a.Name, r.variant, got, ok, r.baseline)
		}
		gotF, okF := a.MinSliceFluid(r.variant)
		if r.fluid == "" {
			if okF {
				t.Errorf("%s/%s fluid = %v, want NULL", a.Name, r.variant, gotF)
			}
		} else if !okF || gotF.String() != r.fluid {
			t.Errorf("%s/%s fluid = %v (%v), want %s", a.Name, r.variant, gotF, okF, r.fluid)
		}
	}
}

// TestTable4Composition pins the model composition of paper Table 4.
func TestTable4Composition(t *testing.T) {
	want := map[AppID][]ModelID{
		ImageClassification:    {SuperResolution, Segmentation, Classification},
		DepthRecognition:       {Deblur, SuperResolution, DepthEstimation},
		BackgroundElimination:  {SuperResolution, Deblur, BackgroundRemoval},
		ExpandedClassification: {Deblur, SuperResolution, BackgroundRemoval, Segmentation, Classification},
	}
	for id, models := range want {
		a := Get(id)
		if len(a.Models) != len(models) {
			t.Fatalf("%s has %d models, want %d", a.Name, len(a.Models), len(models))
		}
		for i := range models {
			if a.Models[i] != models[i] {
				t.Errorf("%s model %d = %v, want %v", a.Name, i, a.Models[i], models[i])
			}
		}
	}
	if len(Apps()) != 4 {
		t.Errorf("Apps() = %d, want 4", len(Apps()))
	}
}

func TestExecTimeScaling(t *testing.T) {
	// Sublinear speedup: fewer GPCs is slower, but per-GPC efficiency is
	// higher on smaller slices (the property FluidFaaS exploits).
	for _, m := range Models {
		t7, ok7 := m.ExecTime(Small, mig.Slice7g)
		t1, ok1 := m.ExecTime(Small, mig.Slice1g)
		if !ok7 || !ok1 {
			t.Fatalf("%v small should fit 1g and 7g", m)
		}
		if t1 <= t7 {
			t.Errorf("%v: t(1g)=%v should exceed t(7g)=%v", m, t1, t7)
		}
		if t1 >= 7*t7 {
			t.Errorf("%v: t(1g)=%v should be sublinear vs 7·t(7g)=%v", m, t1, 7*t7)
		}
		want := t7 * math.Pow(7, Alpha)
		if math.Abs(t1-want) > 1e-12 {
			t.Errorf("%v: t(1g)=%v, want %v", m, t1, want)
		}
	}
}

func TestExecTimeOOM(t *testing.T) {
	// Large segmentation (14 GB) must not fit a 1g.10gb slice.
	if _, ok := Segmentation.ExecTime(Large, mig.Slice1g); ok {
		t.Error("large segmentation fits 1g.10gb")
	}
	if _, ok := Segmentation.ExecTime(Large, mig.Slice2g); !ok {
		t.Error("large segmentation does not fit 2g.20gb")
	}
}

func TestExecProfileOmitsOOM(t *testing.T) {
	p := Segmentation.ExecProfile(Large)
	if _, ok := p[mig.Slice1g]; ok {
		t.Error("profile contains OOM slice type")
	}
	for _, st := range []mig.SliceType{mig.Slice2g, mig.Slice3g, mig.Slice4g, mig.Slice7g} {
		if _, ok := p[st]; !ok {
			t.Errorf("profile missing %v", st)
		}
	}
}

func TestVariantMultMonotone(t *testing.T) {
	if !(VariantMult(Small) < VariantMult(Medium) && VariantMult(Medium) < VariantMult(Large)) {
		t.Error("variant multipliers not increasing")
	}
}

func TestBuildDAGValid(t *testing.T) {
	for _, a := range Apps() {
		for _, v := range Variants {
			d := a.BuildDAG(v)
			if err := d.Validate(); err != nil {
				t.Errorf("%s/%s DAG invalid: %v", a.Name, v, err)
			}
			if d.Len() != len(a.Models) {
				t.Errorf("%s DAG has %d nodes, want %d", a.Name, d.Len(), len(a.Models))
			}
			if got := d.TotalMemGB(); math.Abs(got-a.TotalMemGB(v)) > 1e-9 {
				t.Errorf("%s/%s DAG mem %v != app mem %v", a.Name, v, got, a.TotalMemGB(v))
			}
		}
	}
}

func TestApp3DAGHasBranch(t *testing.T) {
	a := Get(ExpandedClassification)
	d := a.BuildDAG(Medium)
	segs, err := d.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	// deblur opens the optional super-res branch: segments are
	// [{deblur, super-res}, {bg}, {seg}, {cls}].
	if len(segs) != 4 {
		t.Fatalf("app3 segments = %d, want 4", len(segs))
	}
	if len(segs[0].Nodes) != 2 {
		t.Errorf("first segment = %v, want deblur+super-res", segs[0].Nodes)
	}
	if !a.Optional[1] {
		t.Error("super-resolution should be marked optional in app 3")
	}
}

func TestReferenceLatencyAndSLO(t *testing.T) {
	a := Get(ImageClassification)
	ref, ok := a.ReferenceLatency(Medium)
	if !ok || ref <= 0 {
		t.Fatalf("ReferenceLatency = %v, %v", ref, ok)
	}
	// Reference must equal total exec on 2g plus intra transfers.
	want := 0.0
	for _, m := range a.Models {
		e, _ := m.ExecTime(Medium, mig.Slice2g)
		want += e
	}
	want += 2 * IntraTransfer
	if math.Abs(ref-want) > 1e-12 {
		t.Errorf("ReferenceLatency = %v, want %v", ref, want)
	}
	slo, ok := a.SLOLatency(Medium, 1.5)
	if !ok || math.Abs(slo-1.5*ref) > 1e-12 {
		t.Errorf("SLOLatency = %v, want %v", slo, 1.5*ref)
	}
	if _, ok := Get(ExpandedClassification).ReferenceLatency(Large); ok {
		t.Error("excluded variant has a reference latency")
	}
	if _, ok := Get(ExpandedClassification).SLOLatency(Large, 1.5); ok {
		t.Error("excluded variant has an SLO")
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range Variants {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("huge"); err == nil {
		t.Error("ParseVariant accepted bogus variant")
	}
}

func TestInvalidIDsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"model":   func() { _ = ModelID(99).MemGB(Small) },
		"variant": func() { _ = SuperResolution.MemGB(Variant(9)) },
		"app":     func() { Get(AppID(9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid %s did not panic", name)
				}
			}()
			f()
		}()
	}
}
