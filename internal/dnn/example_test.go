package dnn_test

import (
	"fmt"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
)

// Example reproduces a Table 5 row: the medium image-classification
// workflow needs a 2g.20gb slice monolithically, but each of its
// components fits a 1g.10gb — which is exactly what lets FluidFaaS use
// the fragments ESG leaves idle.
func Example() {
	app := dnn.Get(dnn.ImageClassification)
	base, _ := app.MinSliceBaseline(dnn.Medium)
	fluid, _ := app.MinSliceFluid(dnn.Medium)
	fmt.Printf("total memory: %.1f GB\n", app.TotalMemGB(dnn.Medium))
	fmt.Printf("largest component: %.1f GB\n", app.MaxComponentMemGB(dnn.Medium))
	fmt.Printf("baseline minimum: %s\n", base)
	fmt.Printf("fluidfaas minimum: %s\n", fluid)
	ref, _ := app.ReferenceLatency(dnn.Medium)
	slo, _ := app.SLOLatency(dnn.Medium, 1.5)
	fmt.Printf("reference t: %.0f ms, SLO (1.5x): %.0f ms\n", ref*1000, slo*1000)
	_ = mig.Slice1g
	// Output:
	// total memory: 18.0 GB
	// largest component: 7.0 GB
	// baseline minimum: 2g.20gb
	// fluidfaas minimum: 1g.10gb
	// reference t: 540 ms, SLO (1.5x): 811 ms
}
