// Package workflow implements the function-per-model execution style
// the paper's design argues against (§5): each DNN model of an
// application becomes its own serverless function, chained through the
// controller. Every hop pays an inter-function invocation overhead and
// moves tensors through storage, and every function instance duplicates
// the GPU runtime in its own container — the costs that push "recent
// studies [to] advocate putting the entire workflow of an ML
// application as a serverless function".
//
// The driver reuses the full platform: one FunctionSpec per model, with
// chained invocation wired through the OnComplete hook.
package workflow

import (
	"fmt"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/metrics"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

// Inter-function costs.
const (
	// RuntimeDupGB is the GPU runtime (CUDA context, framework) each
	// separate function container duplicates. StreamBox reports over
	// 95% memory savings from avoiding this duplication [52].
	RuntimeDupGB = 1.5
	// HopBase is the fixed controller/queueing cost of invoking the
	// next function in the chain.
	HopBase = 0.040
	// HopBandwidthMBps is the effective bandwidth of passing the
	// intermediate tensor through storage between functions.
	HopBandwidthMBps = 500.0
)

// hopCost returns the chain-hop latency for a tensor of outMB.
func hopCost(outMB float64) float64 {
	return HopBase + outMB/HopBandwidthMBps
}

// Result summarises a chained run against the end-to-end SLO.
type Result struct {
	Total      int
	Completed  int
	SLOHit     float64
	Throughput float64
	// MeanLatency is the mean end-to-end chain latency.
	MeanLatency float64
	// HopOverhead is the per-request chain overhead (sum of hops).
	HopOverhead float64
	// MemoryGB is the summed per-function deployment footprint,
	// including the duplicated runtime; compare against the
	// whole-workflow function's footprint.
	MemoryGB float64
}

// chainState tracks one logical request through the chain.
type chainState struct {
	start     float64
	nextStage int
}

// RunChained executes app at variant as a chain of per-model functions
// on a fresh cluster, replaying tr (function indices in tr are ignored;
// every request enters at stage 0). The end-to-end SLO is the
// whole-application SLO at sloScale.
func RunChained(app dnn.App, variant dnn.Variant, tr *trace.Trace,
	spec cluster.Spec, pol scheduler.Policy, seed int64, sloScale float64) Result {

	appSLO, ok := app.SLOLatency(variant, sloScale)
	if !ok {
		panic(fmt.Sprintf("workflow: no SLO for %s/%s", app.Name, variant))
	}

	// One FunctionSpec per model, with the duplicated runtime added to
	// each footprint. Per-function SLOs apportion the end-to-end budget
	// by execution share (for routing and admission only; hit rates are
	// measured end to end).
	var specs []platform.FunctionSpec
	totalExec := 0.0
	execs := make([]float64, len(app.Models))
	for i, m := range app.Models {
		if et, ok := m.ExecTime(variant, mig.Slice4g); ok {
			execs[i] = et
			totalExec += et
		}
	}
	memoryGB := 0.0
	for i, m := range app.Models {
		d := dag.New()
		d.AddNode(dag.Node{
			Name:  m.String(),
			MemGB: m.MemGB(variant) + RuntimeDupGB,
			OutMB: m.OutMB(variant),
			Exec:  shiftedProfile(m, variant),
		})
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			panic(err)
		}
		share := 1.0 / float64(len(app.Models))
		if totalExec > 0 {
			share = execs[i] / totalExec
		}
		specs = append(specs, platform.FunctionSpec{
			ID:   i,
			Name: fmt.Sprintf("%s/%s", app.Name, m),
			DAG:  d, Parts: parts,
			SLO: appSLO * share,
		})
		memoryGB += m.MemGB(variant) + RuntimeDupGB
	}

	cl := cluster.New(spec)
	chains := make(map[int]*chainState, len(tr.Requests))
	res := Result{}
	var latencySum, hopSum float64

	var p *platform.Platform
	p = platform.New(cl, specs, platform.Options{
		Policy: pol,
		Seed:   seed,
		OnComplete: func(rec metrics.RequestRecord) {
			cs := chains[rec.ID]
			if cs == nil {
				return
			}
			now := rec.Completion
			if rec.Dropped {
				// The chain dies: an end-to-end miss.
				delete(chains, rec.ID)
				return
			}
			cs.nextStage++
			if cs.nextStage < len(app.Models) {
				hop := hopCost(app.Models[cs.nextStage-1].OutMB(variant))
				hopSum += hop
				id := rec.ID
				p.Engine().After(hop, func() {
					p.InjectRequest(chains[id].nextStage, id)
				})
				return
			}
			// Chain complete.
			res.Completed++
			lat := now - cs.start
			latencySum += lat
			if lat <= appSLO {
				res.SLOHit++ // counted; normalised below
			}
			delete(chains, rec.ID)
		},
	})

	for _, r := range tr.Requests {
		req := r
		p.Engine().At(req.Arrival, func() {
			chains[req.ID] = &chainState{start: req.Arrival}
			p.InjectRequest(0, req.ID)
		})
	}
	empty := &trace.Trace{Duration: tr.Duration, NumFuncs: len(specs)}
	p.Run(empty, 60)

	res.Total = len(tr.Requests)
	res.MemoryGB = memoryGB
	if res.Total > 0 {
		res.SLOHit /= float64(res.Total)
	}
	if res.Completed > 0 {
		res.MeanLatency = latencySum / float64(res.Completed)
		res.HopOverhead = hopSum / float64(res.Completed)
	}
	if tr.Duration > 0 {
		res.Throughput = float64(res.Completed) / tr.Duration
	}
	return res
}

// shiftedProfile returns the model's per-slice execution map for the
// chained deployment (same kernels, own container).
func shiftedProfile(m dnn.ModelID, v dnn.Variant) map[mig.SliceType]float64 {
	out := make(map[mig.SliceType]float64)
	for _, t := range mig.SliceTypes {
		// The container's footprint includes the duplicated runtime, so
		// a slice must hold model + runtime.
		if m.MemGB(v)+RuntimeDupGB > float64(t.MemGB()) {
			continue
		}
		if et, ok := m.ExecTime(v, t); ok {
			out[t] = et
		}
	}
	return out
}
