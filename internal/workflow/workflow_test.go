package workflow

import (
	"testing"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

func chainedRun(t *testing.T, rps float64, duration float64) Result {
	t.Helper()
	tr := trace.Generate(trace.Spec{
		Duration: duration,
		Seed:     11,
		Streams:  []trace.StreamSpec{{Func: 0, MeanRPS: rps}},
	})
	return RunChained(
		dnn.Get(dnn.ImageClassification), dnn.Medium, tr,
		cluster.Spec{Nodes: 1, GPUConfigs: mig.UniformNode(mig.DefaultConfig, 4), CPUMemGB: 400},
		&scheduler.FluidFaaS{}, 11, 1.5,
	)
}

func TestChainedCompletesRequests(t *testing.T) {
	r := chainedRun(t, 2, 200)
	if r.Total == 0 {
		t.Fatal("no requests generated")
	}
	if float64(r.Completed) < 0.9*float64(r.Total) {
		t.Errorf("completed %d of %d, want nearly all at low rate", r.Completed, r.Total)
	}
	if r.Throughput <= 0 || r.MeanLatency <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

func TestChainedPaysHopOverhead(t *testing.T) {
	r := chainedRun(t, 2, 200)
	// Two hops minimum for the three-model chain.
	if r.HopOverhead < 2*HopBase {
		t.Errorf("hop overhead %.3f below two hop floors", r.HopOverhead)
	}
	// The chain's latency must exceed the whole-workflow reference
	// latency by at least the hop overhead.
	ref, _ := dnn.Get(dnn.ImageClassification).ReferenceLatency(dnn.Medium)
	if r.MeanLatency < ref {
		t.Errorf("chained mean latency %.3f below whole-workflow reference %.3f",
			r.MeanLatency, ref)
	}
}

func TestChainedDuplicatesRuntimeMemory(t *testing.T) {
	r := chainedRun(t, 1, 100)
	app := dnn.Get(dnn.ImageClassification)
	whole := app.TotalMemGB(dnn.Medium) + RuntimeDupGB
	if r.MemoryGB <= whole {
		t.Errorf("chained footprint %.1f GB should exceed whole-workflow %.1f GB",
			r.MemoryGB, whole)
	}
	wantExtra := RuntimeDupGB * float64(len(app.Models)-1)
	if got := r.MemoryGB - whole; got < wantExtra-1e-9 {
		t.Errorf("runtime duplication = %.1f GB, want >= %.1f", got, wantExtra)
	}
}

func TestChainedSLOWorseThanWholeWorkflow(t *testing.T) {
	// At a rate the whole-workflow platform handles comfortably, the
	// chain's hop overhead and per-function queueing cost SLO.
	r := chainedRun(t, 4, 200)
	if r.SLOHit > 0.95 {
		t.Logf("note: chained SLO hit %.2f — hops absorbed by slack", r.SLOHit)
	}
	if r.SLOHit < 0 || r.SLOHit > 1 {
		t.Errorf("SLO hit out of range: %v", r.SLOHit)
	}
}

func TestHopCost(t *testing.T) {
	if got := hopCost(0); got != HopBase {
		t.Errorf("hopCost(0) = %v, want base", got)
	}
	if got := hopCost(500); got != HopBase+1 {
		t.Errorf("hopCost(500) = %v, want base+1s", got)
	}
}
