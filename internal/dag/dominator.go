package dag

// Dominators returns, for each node, the set of nodes that appear on
// every path from any entry to it (including itself). Graphs with
// multiple entries are handled through a virtual super-entry. It uses
// the classic iterative data-flow algorithm; on a DAG a single pass over
// a topological order converges.
func (d *DAG) Dominators() (map[NodeID]map[NodeID]bool, error) {
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	dom := make(map[NodeID]map[NodeID]bool, len(d.nodes))
	for _, u := range order {
		if len(d.pred[u]) == 0 {
			// Entry nodes dominate only themselves.
			dom[u] = map[NodeID]bool{u: true}
			continue
		}
		// Intersect predecessors' dominator sets.
		var inter map[NodeID]bool
		for _, p := range d.pred[u] {
			pd := dom[p]
			if inter == nil {
				inter = make(map[NodeID]bool, len(pd))
				for k := range pd {
					inter[k] = true
				}
				continue
			}
			for k := range inter {
				if !pd[k] {
					delete(inter, k)
				}
			}
		}
		if inter == nil {
			inter = make(map[NodeID]bool)
		}
		inter[u] = true
		dom[u] = inter
	}
	return dom, nil
}

// Segment is a self-contained group of nodes: either a node that every
// execution passes through (a dominator of the function's exit) together
// with the branch region it opens, or the fork region before the first
// such node. Segments are the units the pipeline partitioner splits
// between, following the dominator-based method of ESG that FluidFaaS
// extends (§5.2.2): cutting anywhere else would split a branch across
// pipeline stages.
type Segment struct {
	Nodes []NodeID
}

// memGB returns the segment's total memory footprint.
func (s Segment) memGB(d *DAG) float64 {
	t := 0.0
	for _, id := range s.Nodes {
		t += d.Node(id).MemGB
	}
	return t
}

// Linearize splits the DAG into the ordered list of segments between
// consecutive cut points. A cut point is a node on every entry-to-exit
// path (computed with virtual super-entry/exit, so fork-at-entry and
// join-at-exit graphs like Fig. 7's example work). For a sequential
// chain every node is its own segment; branch regions collapse into the
// segment of the cut point that opens them.
func (d *DAG) Linearize() ([]Segment, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	// Dominators of a virtual exit = intersection of the exit-node
	// dominator sets; a virtual entry is modelled by entry nodes
	// dominating only themselves (see Dominators).
	dom, err := d.Dominators()
	if err != nil {
		return nil, err
	}
	var cutSet map[NodeID]bool
	for i := range d.nodes {
		if len(d.succ[i]) != 0 {
			continue
		}
		ed := dom[NodeID(i)]
		if cutSet == nil {
			cutSet = make(map[NodeID]bool, len(ed))
			for k := range ed {
				cutSet[k] = true
			}
			continue
		}
		for k := range cutSet {
			if !ed[k] {
				delete(cutSet, k)
			}
		}
	}

	pos := make(map[NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	var cuts []NodeID
	for _, id := range order {
		if cutSet[id] {
			cuts = append(cuts, id)
		}
	}

	var segs []Segment
	// Fork region before the first cut point (e.g. two models both
	// consuming the raw input).
	firstCut := len(order)
	if len(cuts) > 0 {
		firstCut = pos[cuts[0]]
	}
	if firstCut > 0 {
		seg := Segment{}
		for p := 0; p < firstCut; p++ {
			seg.Nodes = append(seg.Nodes, order[p])
		}
		segs = append(segs, seg)
	}
	for ci, c := range cuts {
		seg := Segment{Nodes: []NodeID{c}}
		hi := len(order)
		if ci+1 < len(cuts) {
			hi = pos[cuts[ci+1]]
		}
		for p := pos[c] + 1; p < hi; p++ {
			seg.Nodes = append(seg.Nodes, order[p])
		}
		segs = append(segs, seg)
	}
	return segs, nil
}
