package dag

import (
	"math"
	"sort"

	"fluidfaas/internal/mig"
)

// Stage is one pipeline stage: a consecutive run of segments that will
// execute together on a single MIG slice.
type Stage struct {
	Nodes []NodeID
}

// MemGB returns the stage's total memory footprint on its slice.
func (s Stage) MemGB(d *DAG) float64 {
	t := 0.0
	for _, id := range s.Nodes {
		t += d.Node(id).MemGB
	}
	return t
}

// ExecOn returns the stage's service time on a slice profile: the sum of
// its components' times (components of one stage run sequentially on the
// stage's slice; the worst-case path is charged for conditional
// branches). ok is false when any component cannot run on the profile.
func (s Stage) ExecOn(d *DAG, t mig.SliceType) (float64, bool) {
	sum := 0.0
	for _, id := range s.Nodes {
		dt, ok := d.Node(id).ExecOn(t)
		if !ok {
			return 0, false
		}
		sum += dt
	}
	return sum, true
}

// Partition is one way of splitting the function into pipeline stages.
type Partition struct {
	Stages []Stage
	// CV is the coefficient of variation of the stage execution times on
	// the reference profile (Eq. 1). Lower is better balanced.
	CV float64
}

// CV computes std(times)/mean(times) (population standard deviation,
// Eq. 1 of the paper). A single stage has CV 0; a zero mean returns 0.
func CV(times []float64) float64 {
	if len(times) == 0 {
		return 0
	}
	mean := 0.0
	for _, t := range times {
		mean += t
	}
	mean /= float64(len(times))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, t := range times {
		d := t - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(len(times)))
	return std / mean
}

// EnumeratePartitions returns every consecutive grouping of the DAG's
// segments into 1..len(segments) stages — the 2^(m-1) configurations of
// §5.2.2 — ranked by ascending CV of stage times on the reference
// profile ref (ties broken by fewer stages, then by first-cut position,
// for determinism). This is the offline step the invoker's ranked list
// comes from.
func (d *DAG) EnumeratePartitions(ref mig.SliceType) ([]Partition, error) {
	segs, err := d.Linearize()
	if err != nil {
		return nil, err
	}
	m := len(segs)
	var out []Partition
	// Each of the 2^(m-1) bitmasks chooses whether to cut after segment i.
	for mask := 0; mask < 1<<(m-1); mask++ {
		var stages []Stage
		cur := Stage{}
		for i, seg := range segs {
			cur.Nodes = append(cur.Nodes, seg.Nodes...)
			cutHere := i == m-1 || mask&(1<<i) != 0
			if cutHere {
				stages = append(stages, cur)
				cur = Stage{}
			}
		}
		times := make([]float64, len(stages))
		feasible := true
		for i, st := range stages {
			t, ok := st.ExecOn(d, ref)
			if !ok {
				feasible = false
				break
			}
			times[i] = t
		}
		if !feasible {
			continue
		}
		out = append(out, Partition{Stages: stages, CV: CV(times)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].CV != out[j].CV {
			return out[i].CV < out[j].CV
		}
		return len(out[i].Stages) < len(out[j].Stages)
	})
	return out, nil
}

// MonolithicPartition returns the single-stage partition containing
// every node in topological order.
func (d *DAG) MonolithicPartition() (Partition, error) {
	order, err := d.TopoSort()
	if err != nil {
		return Partition{}, err
	}
	return Partition{Stages: []Stage{{Nodes: order}}, CV: 0}, nil
}
