package dag

import (
	"testing"

	"fluidfaas/internal/mig"
)

// chain builds a linear DAG of n nodes with the given exec times on 7g
// (scaled by (7/g)^0.5 for smaller slices) and 5 GB memory each.
func chain(times ...float64) *DAG {
	d := New()
	var prev NodeID = -1
	for i, t := range times {
		exec := map[mig.SliceType]float64{}
		for _, st := range mig.SliceTypes {
			exec[st] = t * sqrtScale(st)
		}
		id := d.AddNode(Node{Name: nodeName(i), MemGB: 5, Exec: exec})
		if prev >= 0 {
			d.AddEdge(prev, id)
		}
		prev = id
	}
	return d
}

func sqrtScale(st mig.SliceType) float64 {
	switch st {
	case mig.Slice1g:
		return 2.6458 // sqrt(7)
	case mig.Slice2g:
		return 1.8708 // sqrt(3.5)
	case mig.Slice3g:
		return 1.5275
	case mig.Slice4g:
		return 1.3229
	default:
		return 1
	}
}

func nodeName(i int) string { return string(rune('A' + i)) }

// fig7DAG reproduces the example of paper Fig. 7:
// m1(x), m2(x) in parallel -> m3(m1,m2) -> m4 -> m5.
func fig7DAG() *DAG {
	d := New()
	exec := func(t float64) map[mig.SliceType]float64 {
		m := map[mig.SliceType]float64{}
		for _, st := range mig.SliceTypes {
			m[st] = t
		}
		return m
	}
	m1 := d.AddNode(Node{Name: "m1", MemGB: 4, Exec: exec(0.1)})
	m2 := d.AddNode(Node{Name: "m2", MemGB: 4, Exec: exec(0.2)})
	m3 := d.AddNode(Node{Name: "m3", MemGB: 4, Exec: exec(0.3)})
	m4 := d.AddNode(Node{Name: "m4", MemGB: 4, Exec: exec(0.3)})
	m5 := d.AddNode(Node{Name: "m5", MemGB: 4, Exec: exec(0.3)})
	d.AddEdge(m1, m3)
	d.AddEdge(m2, m3)
	d.AddEdge(m3, m4)
	d.AddEdge(m4, m5)
	return d
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty DAG validated")
	}
	d := chain(1, 2, 3)
	if err := d.Validate(); err != nil {
		t.Errorf("chain failed validation: %v", err)
	}
	// Introduce a cycle.
	d.AddEdge(NodeID(2), NodeID(0))
	if err := d.Validate(); err == nil {
		t.Error("cyclic graph validated")
	}
}

func TestAddEdgePanics(t *testing.T) {
	d := chain(1, 2)
	for _, f := range []func(){
		func() { d.AddEdge(0, 0) },
		func() { d.AddEdge(0, 99) },
		func() { d.AddEdge(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad AddEdge did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTopoSortChain(t *testing.T) {
	d := chain(1, 2, 3, 4)
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if int(id) != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEntriesExits(t *testing.T) {
	d := fig7DAG()
	if got := d.Entries(); len(got) != 2 {
		t.Errorf("entries = %v, want m1,m2", got)
	}
	if got := d.Exits(); len(got) != 1 || d.Node(got[0]).Name != "m5" {
		t.Errorf("exits = %v, want m5", got)
	}
}

func TestTotals(t *testing.T) {
	d := chain(0.1, 0.2, 0.3)
	if got := d.TotalMemGB(); got != 15 {
		t.Errorf("TotalMemGB = %v, want 15", got)
	}
	got, ok := d.TotalExecOn(mig.Slice7g)
	if !ok || got < 0.599 || got > 0.601 {
		t.Errorf("TotalExecOn(7g) = %v, %v; want 0.6", got, ok)
	}
}

func TestTotalExecOnMissingProfile(t *testing.T) {
	d := New()
	d.AddNode(Node{Name: "only7g", MemGB: 50,
		Exec: map[mig.SliceType]float64{mig.Slice7g: 1}})
	if _, ok := d.TotalExecOn(mig.Slice1g); ok {
		t.Error("TotalExecOn should report infeasible profile")
	}
}

func TestDominatorsChain(t *testing.T) {
	d := chain(1, 1, 1)
	dom, err := d.Dominators()
	if err != nil {
		t.Fatal(err)
	}
	// In a chain, node i is dominated by all of 0..i.
	for i := 0; i < 3; i++ {
		for j := 0; j <= i; j++ {
			if !dom[NodeID(i)][NodeID(j)] {
				t.Errorf("node %d should be dominated by %d", i, j)
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// A -> B -> D, A -> C -> D: neither B nor C dominates D.
	d := New()
	exec := map[mig.SliceType]float64{mig.Slice7g: 1}
	a := d.AddNode(Node{Name: "A", Exec: exec})
	b := d.AddNode(Node{Name: "B", Exec: exec})
	c := d.AddNode(Node{Name: "C", Exec: exec})
	dd := d.AddNode(Node{Name: "D", Exec: exec})
	d.AddEdge(a, b)
	d.AddEdge(a, c)
	d.AddEdge(b, dd)
	d.AddEdge(c, dd)
	dom, err := d.Dominators()
	if err != nil {
		t.Fatal(err)
	}
	if dom[dd][b] || dom[dd][c] {
		t.Error("branch nodes must not dominate the join")
	}
	if !dom[dd][a] || !dom[dd][dd] {
		t.Error("A and D must dominate D")
	}
}

func TestLinearizeChain(t *testing.T) {
	d := chain(1, 1, 1, 1, 1)
	segs, err := d.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("chain of 5 linearized to %d segments, want 5", len(segs))
	}
	for i, s := range segs {
		if len(s.Nodes) != 1 || int(s.Nodes[0]) != i {
			t.Errorf("segment %d = %v", i, s.Nodes)
		}
	}
}

func TestLinearizeFig7(t *testing.T) {
	d := fig7DAG()
	segs, err := d.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	// Expect [{m1,m2}, {m3}, {m4}, {m5}]: the entry fork collapses into
	// one segment.
	if len(segs) != 4 {
		t.Fatalf("fig7 linearized to %d segments, want 4: %v", len(segs), segs)
	}
	if len(segs[0].Nodes) != 2 {
		t.Errorf("first segment = %v, want the m1,m2 fork", segs[0].Nodes)
	}
	for i := 1; i < 4; i++ {
		if len(segs[i].Nodes) != 1 {
			t.Errorf("segment %d = %v, want single node", i, segs[i].Nodes)
		}
	}
}

func TestLinearizeBranchRegion(t *testing.T) {
	// App 3 shape: A -> (B or skip) -> C: edges A->B, B->C, A->C.
	d := New()
	exec := map[mig.SliceType]float64{mig.Slice7g: 1}
	a := d.AddNode(Node{Name: "A", Exec: exec})
	b := d.AddNode(Node{Name: "B", Exec: exec})
	c := d.AddNode(Node{Name: "C", Exec: exec})
	d.AddEdge(a, b)
	d.AddEdge(b, c)
	d.AddEdge(a, c)
	segs, err := d.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	// B is optional, so it belongs to A's segment: [{A,B}, {C}].
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2", segs)
	}
	if len(segs[0].Nodes) != 2 {
		t.Errorf("first segment = %v, want {A,B}", segs[0].Nodes)
	}
}

func TestCV(t *testing.T) {
	if got := CV(nil); got != 0 {
		t.Errorf("CV(nil) = %v", got)
	}
	if got := CV([]float64{5}); got != 0 {
		t.Errorf("CV of single = %v, want 0", got)
	}
	if got := CV([]float64{2, 2, 2}); got != 0 {
		t.Errorf("CV of equal = %v, want 0", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
	// mean 3, std sqrt(((1-3)^2+(5-3)^2)/2)=2 -> CV 2/3.
	got := CV([]float64{1, 5})
	if got < 0.666 || got > 0.667 {
		t.Errorf("CV([1,5]) = %v, want 2/3", got)
	}
}

func TestEnumeratePartitionsCount(t *testing.T) {
	d := chain(1, 1, 1, 1, 1)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 16 { // 2^(5-1), §5.2.2's example
		t.Fatalf("partitions = %d, want 16", len(parts))
	}
}

func TestEnumeratePartitionsRankedByCV(t *testing.T) {
	d := chain(1, 1, 2)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].CV < parts[i-1].CV {
			t.Fatalf("partitions not sorted by CV: %v then %v", parts[i-1].CV, parts[i].CV)
		}
	}
	// Best balanced 2-stage split of [1,1,2] is [[1,1],[2]]: CV 0.
	best := parts[0]
	if best.CV != 0 {
		t.Fatalf("best CV = %v, want 0", best.CV)
	}
	// Ties on CV=0 break by fewer stages: monolithic [1,1,2] first.
	if len(best.Stages) != 1 {
		t.Errorf("best partition has %d stages, want 1 (monolithic, CV 0)", len(best.Stages))
	}
	if len(parts[1].Stages) != 2 {
		t.Errorf("second partition has %d stages, want 2 ([[1,1],[2]])", len(parts[1].Stages))
	}
}

func TestStageExecAndMem(t *testing.T) {
	d := chain(0.1, 0.2)
	st := Stage{Nodes: []NodeID{0, 1}}
	if got := st.MemGB(d); got != 10 {
		t.Errorf("Stage.MemGB = %v, want 10", got)
	}
	got, ok := st.ExecOn(d, mig.Slice7g)
	if !ok || got < 0.299 || got > 0.301 {
		t.Errorf("Stage.ExecOn(7g) = %v, %v", got, ok)
	}
}

func TestMonolithicPartition(t *testing.T) {
	d := fig7DAG()
	p, err := d.MonolithicPartition()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 1 || len(p.Stages[0].Nodes) != 5 {
		t.Errorf("monolithic partition = %+v", p)
	}
}

func TestEnumeratePartitionsSkipsInfeasibleRef(t *testing.T) {
	// One node lacks a 1g profile; enumeration on 1g must drop all
	// partitions containing it (i.e. all), returning none.
	d := New()
	d.AddNode(Node{Name: "big", MemGB: 30,
		Exec: map[mig.SliceType]float64{mig.Slice7g: 1, mig.Slice4g: 1.5}})
	parts, err := d.EnumeratePartitions(mig.Slice1g)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 0 {
		t.Errorf("expected no feasible partitions on 1g, got %d", len(parts))
	}
}

// Property: every enumerated partition covers each node exactly once and
// preserves topological order across stages.
func TestPartitionCoverageProperty(t *testing.T) {
	for _, d := range []*DAG{chain(1, 2, 3, 4), fig7DAG()} {
		parts, err := d.EnumeratePartitions(mig.Slice7g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			seen := make(map[NodeID]int)
			lastStage := make(map[NodeID]int)
			for si, st := range p.Stages {
				for _, n := range st.Nodes {
					seen[n]++
					lastStage[n] = si
				}
			}
			if len(seen) != d.Len() {
				t.Fatalf("partition covers %d nodes, want %d", len(seen), d.Len())
			}
			for n, c := range seen {
				if c != 1 {
					t.Fatalf("node %d appears %d times", n, c)
				}
			}
			// Edges must never go backwards across stages.
			for u := 0; u < d.Len(); u++ {
				for _, v := range d.Succ(NodeID(u)) {
					if lastStage[v] < lastStage[NodeID(u)] {
						t.Fatalf("edge %d->%d goes backwards across stages", u, v)
					}
				}
			}
		}
	}
}
