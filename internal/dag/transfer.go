package dag

// Transfer cost model (§5.2.1, §7.3). Pipeline stages on separate MIG
// slices cannot share GPU memory — strong isolation — so tensors cross
// stages through host shared memory: the predecessor process writes its
// output tensor, the successor reads it. The paper measures 10–40 ms per
// hop; this model (fixed syscall/copy setup plus size-dependent copy at
// an effective write+read bandwidth) lands in that range for the
// evaluation's tensor sizes.
const (
	// TransferBase is the fixed per-hop cost in seconds.
	TransferBase = 0.008
	// TransferBandwidthMBps is the effective host shared-memory
	// bandwidth for the write-then-read round trip.
	TransferBandwidthMBps = 2000.0
	// IntraTransfer is the per-edge data movement cost inside a single
	// slice (same GPU memory; the paper reports 1–5 ms total for ESG).
	IntraTransfer = 0.002
)

// TransferTime returns the host shared-memory hop cost for a tensor of
// outMB megabytes.
func TransferTime(outMB float64) float64 {
	if outMB < 0 {
		outMB = 0
	}
	return TransferBase + outMB/TransferBandwidthMBps
}

// HopTime is TransferTime scaled by the DAG's per-run TransferScale.
// All hop-cost computations during planning go through it, so the
// transfer-sensitivity ablation configures the scale per DAG instead of
// mutating process-global state (which would race under concurrent
// simulations and leak between tests).
func (d *DAG) HopTime(outMB float64) float64 {
	t := TransferTime(outMB)
	if d.TransferScale > 0 {
		t *= d.TransferScale
	}
	return t
}
