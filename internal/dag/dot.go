package dag

import (
	"fmt"
	"strings"
)

// DOT renders the FFS DAG in Graphviz dot format, one node per
// component annotated with its memory footprint. When stages is
// non-nil, nodes are clustered by pipeline stage so a deployment can be
// visualised.
func (d *DAG) DOT(name string, stages []Stage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", name)
	inStage := map[NodeID]int{}
	for si, st := range stages {
		for _, n := range st.Nodes {
			inStage[n] = si
		}
	}
	if len(stages) > 0 {
		for si, st := range stages {
			fmt.Fprintf(&b, "  subgraph cluster_stage%d {\n    label=\"stage %d\";\n", si, si)
			for _, n := range st.Nodes {
				fmt.Fprintf(&b, "    n%d [label=\"%s\\n%.1f GB\"];\n",
					n, d.Node(n).Name, d.Node(n).MemGB)
			}
			b.WriteString("  }\n")
		}
	} else {
		for i := 0; i < d.Len(); i++ {
			fmt.Fprintf(&b, "  n%d [label=\"%s\\n%.1f GB\"];\n",
				i, d.Node(NodeID(i)).Name, d.Node(NodeID(i)).MemGB)
		}
	}
	for u := 0; u < d.Len(); u++ {
		for _, v := range d.Succ(NodeID(u)) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
