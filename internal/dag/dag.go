// Package dag implements the FFS DAG of the FluidFaaS programming model:
// the graph of DNN components *within* one serverless function, each node
// carrying a performance profile, plus the dominator-based linearisation
// and the coefficient-of-variation (CV) ranked pipeline partitioning of
// paper §5.2.
package dag

import (
	"fmt"

	"fluidfaas/internal/mig"
)

// NodeID indexes a node within its DAG.
type NodeID int

// Node is one component (DNN model plus its pre/post-processing) of a
// FluidFaaS function.
type Node struct {
	Name string
	// MemGB is the GPU memory footprint of the component (weights +
	// activations for the function variant's batch size).
	MemGB float64
	// OutMB is the size of the component's output tensor in megabytes;
	// it drives the host shared-memory transfer cost when the component
	// sits at a pipeline-stage boundary (§5.2.1, §7.3).
	OutMB float64
	// Exec maps slice profile to execution time in seconds. A missing
	// entry means the component cannot run on that profile (OOM).
	Exec map[mig.SliceType]float64
}

// ExecOn returns the component's execution time on the slice profile and
// whether it can run there at all.
func (n *Node) ExecOn(t mig.SliceType) (float64, bool) {
	d, ok := n.Exec[t]
	return d, ok
}

// DAG is a directed acyclic graph of components. Construction mirrors the
// paper's defDAG: nodes are registered and data flows declared as edges.
type DAG struct {
	nodes []Node
	succ  [][]NodeID
	pred  [][]NodeID

	// MonoMinGPCs is the minimum compute a slice needs to host the
	// *whole* function as one stage (0 = no floor). It encodes
	// profile-level constraints that only bind when every component is
	// co-located — e.g. the paper's expanded-image-classification at the
	// medium variant needs a 4g.40gb slice monolithically (Table 5) even
	// though a 3g.40gb has the same memory. Per-stage deployments are
	// unaffected.
	MonoMinGPCs int

	// TransferScale multiplies every stage-boundary hop cost of this DAG
	// (0 means 1, the paper's measured cost model). It exists for the
	// transfer-sensitivity ablation; being per-DAG run state rather than
	// a package global keeps concurrent runs independent.
	TransferScale float64
}

// New returns an empty DAG.
func New() *DAG { return &DAG{} }

// AddNode registers a component and returns its ID (the analog of
// FluidFaaS.Module.reg).
func (d *DAG) AddNode(n Node) NodeID {
	d.nodes = append(d.nodes, n)
	d.succ = append(d.succ, nil)
	d.pred = append(d.pred, nil)
	return NodeID(len(d.nodes) - 1)
}

// AddEdge declares a dataflow from u to v.
func (d *DAG) AddEdge(u, v NodeID) {
	if !d.valid(u) || !d.valid(v) {
		panic(fmt.Sprintf("dag: edge (%d,%d) out of range", u, v))
	}
	if u == v {
		panic("dag: self edge")
	}
	d.succ[u] = append(d.succ[u], v)
	d.pred[v] = append(d.pred[v], u)
}

func (d *DAG) valid(id NodeID) bool { return id >= 0 && int(id) < len(d.nodes) }

// Len returns the node count.
func (d *DAG) Len() int { return len(d.nodes) }

// Node returns the node with the given ID.
func (d *DAG) Node(id NodeID) *Node { return &d.nodes[id] }

// Succ returns the successors of id.
func (d *DAG) Succ(id NodeID) []NodeID { return d.succ[id] }

// Pred returns the predecessors of id.
func (d *DAG) Pred(id NodeID) []NodeID { return d.pred[id] }

// Validate checks that the graph is non-empty and acyclic. Multiple
// entries (components consuming the raw event) and multiple exits are
// allowed, matching the Fig. 7 programming example where two models both
// read the input.
func (d *DAG) Validate() error {
	if len(d.nodes) == 0 {
		return fmt.Errorf("dag: empty graph")
	}
	if _, err := d.TopoSort(); err != nil {
		return err
	}
	return nil
}

// Entries returns the nodes with no predecessors.
func (d *DAG) Entries() []NodeID {
	var out []NodeID
	for i := range d.nodes {
		if len(d.pred[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Exits returns the nodes with no successors.
func (d *DAG) Exits() []NodeID {
	var out []NodeID
	for i := range d.nodes {
		if len(d.succ[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TopoSort returns a topological order, or an error if the graph has a
// cycle. Ties break by node ID so the order is deterministic.
func (d *DAG) TopoSort() ([]NodeID, error) {
	indeg := make([]int, len(d.nodes))
	for i := range d.nodes {
		indeg[i] = len(d.pred[i])
	}
	var ready []NodeID
	for i := range d.nodes {
		if indeg[i] == 0 {
			ready = append(ready, NodeID(i))
		}
	}
	var order []NodeID
	for len(ready) > 0 {
		// Pop the smallest ID for determinism.
		minI := 0
		for i := range ready {
			if ready[i] < ready[minI] {
				minI = i
			}
		}
		u := ready[minI]
		ready = append(ready[:minI], ready[minI+1:]...)
		order = append(order, u)
		for _, v := range d.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != len(d.nodes) {
		return nil, fmt.Errorf("dag: cycle detected")
	}
	return order, nil
}

// TotalMemGB returns the summed footprint of all components — the memory
// a monolithic (non-pipeline) deployment needs.
func (d *DAG) TotalMemGB() float64 {
	t := 0.0
	for i := range d.nodes {
		t += d.nodes[i].MemGB
	}
	return t
}

// TotalExecOn returns the summed component time on the slice profile —
// the service time of a monolithic deployment — and whether every
// component fits the profile's compute. Memory feasibility is checked
// separately against TotalMemGB.
func (d *DAG) TotalExecOn(t mig.SliceType) (float64, bool) {
	sum := 0.0
	for i := range d.nodes {
		dt, ok := d.nodes[i].ExecOn(t)
		if !ok {
			return 0, false
		}
		sum += dt
	}
	return sum, true
}
