package dag_test

import (
	"fmt"
	"strings"
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/mig"
)

// Example demonstrates the offline step of §5.2.2: build an FFS DAG,
// enumerate its consecutive partitions and rank them by the coefficient
// of variation of stage times (Eq. 1).
func Example() {
	d := dag.New()
	exec := func(ms float64) map[mig.SliceType]float64 {
		m := map[mig.SliceType]float64{}
		for _, t := range mig.SliceTypes {
			m[t] = ms / 1000
		}
		return m
	}
	a := d.AddNode(dag.Node{Name: "preprocess", MemGB: 2, Exec: exec(100)})
	b := d.AddNode(dag.Node{Name: "model", MemGB: 8, Exec: exec(100)})
	c := d.AddNode(dag.Node{Name: "postprocess", MemGB: 2, Exec: exec(200)})
	d.AddEdge(a, b)
	d.AddEdge(b, c)

	parts, _ := d.EnumeratePartitions(mig.Slice7g)
	fmt.Printf("%d candidate partitions\n", len(parts))
	best := parts[0]
	fmt.Printf("best: %d stage(s), CV %.2f\n", len(best.Stages), best.CV)
	// Output:
	// 4 candidate partitions
	// best: 1 stage(s), CV 0.00
}

func TestDOT(t *testing.T) {
	d := dag.New()
	exec := map[mig.SliceType]float64{mig.Slice7g: 0.1}
	a := d.AddNode(dag.Node{Name: "a", MemGB: 1, Exec: exec})
	b := d.AddNode(dag.Node{Name: "b", MemGB: 2, Exec: exec})
	d.AddEdge(a, b)

	plain := d.DOT("fn", nil)
	for _, want := range []string{"digraph", `label="a`, `label="b`, "n0 -> n1"} {
		if !strings.Contains(plain, want) {
			t.Errorf("DOT missing %q:\n%s", want, plain)
		}
	}
	staged := d.DOT("fn", []dag.Stage{{Nodes: []dag.NodeID{a}}, {Nodes: []dag.NodeID{b}}})
	if !strings.Contains(staged, "cluster_stage0") || !strings.Contains(staged, "cluster_stage1") {
		t.Errorf("staged DOT missing clusters:\n%s", staged)
	}
}
