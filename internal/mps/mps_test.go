package mps

import (
	"math"
	"testing"
	"testing/quick"

	"fluidfaas/internal/sim"
)

func profiles() []FunctionProfile {
	return []FunctionProfile{
		{Name: "a", Exec: 0.5, WantGPCs: 4, MemGB: 20, SLO: 1.0},
		{Name: "b", Exec: 0.3, WantGPCs: 2, MemGB: 10, SLO: 0.8},
	}
}

func TestSlowdownModel(t *testing.T) {
	// Alone: no slowdown.
	if got := Slowdown(4, 0); got != 1 {
		t.Errorf("Slowdown(4,0) = %v, want 1", got)
	}
	// Under capacity: contention term only.
	got := Slowdown(4, 2)
	want := 1 * (1 + Beta*2/7)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Slowdown(4,2) = %v, want %v", got, want)
	}
	// Oversubscribed: proportional sharing times contention.
	got = Slowdown(4, 7)
	want = (11.0 / 7.0) * (1 + Beta)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Slowdown(4,7) = %v, want %v", got, want)
	}
}

// Property: slowdown is monotone in co-runner demand and >= 1.
func TestSlowdownMonotoneProperty(t *testing.T) {
	f := func(w8, o8, d8 uint8) bool {
		w := float64(w8%7) + 1
		o := float64(o8 % 14)
		d := float64(d8%7) + 0.5
		s1 := Slowdown(w, o)
		s2 := Slowdown(w, o+d)
		return s1 >= 1 && s2 >= s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSingleRequestNoInterference(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 2, profiles())
	c.Submit(0, 0)
	eng.Run()
	r := c.Finish(10)
	if r.Completed != 1 || r.Total != 1 {
		t.Fatalf("completed %d/%d", r.Completed, r.Total)
	}
	if r.MeanSlowdown != 1 {
		t.Errorf("mean slowdown = %v, want 1 (alone)", r.MeanSlowdown)
	}
	if r.SLOHit != 1 {
		t.Errorf("SLO hit = %v, want 1", r.SLOHit)
	}
	if r.ExposureSeconds != 0 {
		t.Errorf("exposure = %v, want 0 (single tenant)", r.ExposureSeconds)
	}
}

func TestInterferenceBetweenTenants(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 1, profiles()) // force co-location
	eng.At(0, func() {
		c.Submit(0, 0)
		c.Submit(1, 0)
	})
	eng.Run()
	r := c.Finish(10)
	if r.Completed != 2 {
		t.Fatalf("completed %d, want 2", r.Completed)
	}
	if r.MeanSlowdown <= 1 {
		t.Errorf("mean slowdown = %v, want > 1 (co-located)", r.MeanSlowdown)
	}
	if r.ExposureSeconds <= 0 {
		t.Errorf("exposure = %v, want > 0 (two tenants share a context)", r.ExposureSeconds)
	}
}

func TestNoFragmentationUnderMPS(t *testing.T) {
	// Three 20 GB tenants fit one 80 GB GPU — MPS has no slice shapes
	// to fragment. All spawn on the same GPU.
	eng := sim.NewEngine()
	profs := []FunctionProfile{
		{Name: "x", Exec: 0.1, WantGPCs: 3, MemGB: 20, SLO: 5},
		{Name: "y", Exec: 0.1, WantGPCs: 3, MemGB: 20, SLO: 5},
		{Name: "z", Exec: 0.1, WantGPCs: 3, MemGB: 20, SLO: 5},
	}
	c := NewCluster(eng, 1, profs)
	eng.At(0, func() {
		for fn := range profs {
			c.Submit(fn, 0)
		}
	})
	eng.Run()
	r := c.Finish(1)
	if r.Completed != 3 {
		t.Fatalf("completed %d, want 3", r.Completed)
	}
	if r.Processes != 3 {
		t.Errorf("processes = %d, want 3", r.Processes)
	}
}

func TestMemoryExhaustionDropsRequests(t *testing.T) {
	eng := sim.NewEngine()
	profs := []FunctionProfile{
		{Name: "big", Exec: 0.1, WantGPCs: 7, MemGB: 60, SLO: 5},
		{Name: "huge", Exec: 0.1, WantGPCs: 7, MemGB: 60, SLO: 5},
	}
	c := NewCluster(eng, 1, profs)
	eng.At(0, func() {
		c.Submit(0, 0)
		c.Submit(1, 0) // cannot spawn: 60+60 > 80
	})
	eng.Run()
	r := c.Finish(1)
	if r.Completed != 1 || r.Total != 2 {
		t.Errorf("completed %d/%d, want 1/2", r.Completed, r.Total)
	}
}

func TestQueueBacklogSpawnsProcesses(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 4, profiles())
	// A burst of one function's requests should fan out to multiple
	// processes across GPUs.
	eng.At(0, func() {
		for i := 0; i < 8; i++ {
			c.Submit(0, 0)
		}
	})
	eng.Run()
	r := c.Finish(5)
	if r.Completed != 8 {
		t.Fatalf("completed %d, want 8", r.Completed)
	}
	if r.Processes < 2 {
		t.Errorf("processes = %d, want fan-out", r.Processes)
	}
}

func TestNewClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero GPUs accepted")
		}
	}()
	NewCluster(sim.NewEngine(), 0, nil)
}

func TestDescribeAndSort(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 1, profiles())
	c.Submit(0, 0)
	if c.Describe() == "" {
		t.Error("Describe empty")
	}
	ps := []FunctionProfile{{Name: "z"}, {Name: "a"}}
	SortProfiles(ps)
	if ps[0].Name != "a" {
		t.Error("SortProfiles did not sort")
	}
}
