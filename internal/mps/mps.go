// Package mps models NVIDIA Multi-Process Service sharing — the weak-
// isolation alternative the paper contrasts MIG against (§1, §2.2,
// Table 1). Under MPS, processes share one GPU context: placement is
// fully flexible (no fragmentation), but co-located processes interfere
// (no performance isolation) and share fault/security domains (no strong
// isolation).
//
// The model captures the three properties that matter for the
// comparison:
//
//   - Flexibility: any process fits any GPU with free memory; compute
//     is oversubscribable.
//   - Interference: a process that wants w GPCs on a GPU whose
//     co-runners want W more runs at slowdown
//     max(1, (w+W)/7) · (1 + Beta·W/7) — proportional sharing when
//     oversubscribed plus a cache/bandwidth contention term even when
//     not (the effect INFless/Protean build slowdown models for).
//   - Exposure: seconds of pairwise co-residency between different
//     functions, the quantity strong isolation drives to zero.
package mps

import (
	"fmt"
	"sort"

	"fluidfaas/internal/sim"
)

// Beta is the contention coefficient: co-runners claiming the whole
// remaining GPU add Beta to the slowdown even without compute
// oversubscription.
const Beta = 0.25

// GPUGPCs is the compute capacity of one GPU in GPC equivalents.
const GPUGPCs = 7.0

// GPUMemGB is the memory capacity of one GPU.
const GPUMemGB = 80.0

// FunctionProfile describes one function to the MPS runtime.
type FunctionProfile struct {
	Name string
	// Exec is the service time when the process receives its wanted
	// compute uncontended.
	Exec float64
	// WantGPCs is the compute the function can usefully consume.
	WantGPCs float64
	// MemGB is the resident footprint of one process.
	MemGB float64
	// SLO is the latency budget.
	SLO float64
}

// process is one resident function process on a GPU.
type process struct {
	fn    int
	gpu   *gpu
	busy  bool
	queue []*request

	createdAt float64
}

type request struct {
	fn      int
	arrival float64
}

type gpu struct {
	id    int
	procs []*process
	memGB float64

	// exposure accounting: pairwise co-residency of distinct functions.
	lastT    float64
	exposure float64
}

// coResidentPairs counts distinct-function pairs currently resident.
func (g *gpu) coResidentPairs() int {
	funcs := map[int]int{}
	for _, p := range g.procs {
		funcs[p.fn]++
	}
	distinct := len(funcs)
	return distinct * (distinct - 1) / 2
}

func (g *gpu) accrueExposure(now float64) {
	g.exposure += float64(g.coResidentPairs()) * (now - g.lastT)
	g.lastT = now
}

// wantSum returns the aggregate GPC demand of busy co-runners other
// than p.
func (g *gpu) wantSum(exclude *process, profiles []FunctionProfile) float64 {
	w := 0.0
	for _, p := range g.procs {
		if p != exclude && p.busy {
			w += profiles[p.fn].WantGPCs
		}
	}
	return w
}

// Slowdown returns the interference multiplier for a process wanting w
// GPCs while busy co-runners want others.
func Slowdown(w, others float64) float64 {
	total := w + others
	s := 1.0
	if total > GPUGPCs {
		s = total / GPUGPCs
	}
	return s * (1 + Beta*minf(others, GPUGPCs)/GPUGPCs)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Result summarises an MPS run.
type Result struct {
	Completed  int
	Total      int
	Throughput float64
	SLOHit     float64
	// MeanSlowdown is the average interference multiplier experienced.
	MeanSlowdown float64
	// ExposureSeconds sums pairwise cross-function co-residency over
	// all GPUs — zero under MIG's strong isolation.
	ExposureSeconds float64
	// Processes spawned.
	Processes int
}

// Cluster is an MPS-shared GPU pool driven by a sim.Engine.
type Cluster struct {
	eng      *sim.Engine
	gpus     []*gpu
	profiles []FunctionProfile

	completed   int
	total       int
	sloHits     int
	slowdownSum float64
	procCount   int
}

// NewCluster builds an MPS pool of n GPUs.
func NewCluster(eng *sim.Engine, n int, profiles []FunctionProfile) *Cluster {
	if n <= 0 {
		panic("mps: need at least one GPU")
	}
	c := &Cluster{eng: eng, profiles: profiles}
	for i := 0; i < n; i++ {
		c.gpus = append(c.gpus, &gpu{id: i})
	}
	return c
}

// Submit routes one request: to an existing idle process of the
// function, else the least-queued process, spawning a new process on
// the least-loaded GPU with memory headroom when all are busy.
func (c *Cluster) Submit(fn int, arrival float64) {
	c.total++
	prof := c.profiles[fn]
	var target *process
	for _, g := range c.gpus {
		for _, p := range g.procs {
			if p.fn != fn {
				continue
			}
			if target == nil || len(p.queue) < len(target.queue) {
				target = p
			}
		}
	}
	// Spawn when no process exists or the best is already backed up and
	// some GPU has memory headroom.
	if target == nil || (len(target.queue) > 0 && c.spawnable(prof)) {
		if p := c.spawn(fn); p != nil {
			target = p
		}
	}
	if target == nil {
		// Memory exhausted everywhere: count as an unserved request.
		return
	}
	rq := &request{fn: fn, arrival: arrival}
	target.queue = append(target.queue, rq)
	c.kick(target)
}

func (c *Cluster) spawnable(prof FunctionProfile) bool {
	for _, g := range c.gpus {
		if g.memGB+prof.MemGB <= GPUMemGB {
			return true
		}
	}
	return false
}

func (c *Cluster) spawn(fn int) *process {
	prof := c.profiles[fn]
	var best *gpu
	for _, g := range c.gpus {
		if g.memGB+prof.MemGB > GPUMemGB {
			continue
		}
		if best == nil || g.load(c.profiles) < best.load(c.profiles) {
			best = g
		}
	}
	if best == nil {
		return nil
	}
	now := c.eng.Now()
	best.accrueExposure(now)
	p := &process{fn: fn, gpu: best, createdAt: now}
	best.procs = append(best.procs, p)
	best.memGB += prof.MemGB
	c.procCount++
	return p
}

func (g *gpu) load(profiles []FunctionProfile) float64 {
	w := 0.0
	for _, p := range g.procs {
		w += profiles[p.fn].WantGPCs
	}
	return w
}

func (c *Cluster) kick(p *process) {
	if p.busy || len(p.queue) == 0 {
		return
	}
	rq := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	prof := c.profiles[p.fn]
	// Interference snapshot at dispatch: the MPS hazard the paper
	// describes — service time depends on who else is running.
	others := p.gpu.wantSum(p, c.profiles)
	slow := Slowdown(prof.WantGPCs, others)
	service := prof.Exec * slow
	c.eng.After(service, func() {
		now := c.eng.Now()
		p.busy = false
		c.completed++
		c.slowdownSum += slow
		if lat := now - rq.arrival; prof.SLO > 0 && lat <= prof.SLO {
			c.sloHits++
		}
		c.kick(p)
	})
}

// Finish closes exposure accounting and returns the run summary.
func (c *Cluster) Finish(duration float64) Result {
	exposure := 0.0
	for _, g := range c.gpus {
		g.accrueExposure(c.eng.Now())
		exposure += g.exposure
	}
	r := Result{
		Completed:       c.completed,
		Total:           c.total,
		SLOHit:          0,
		ExposureSeconds: exposure,
		Processes:       c.procCount,
	}
	if duration > 0 {
		r.Throughput = float64(c.completed) / duration
	}
	if c.total > 0 {
		r.SLOHit = float64(c.sloHits) / float64(c.total)
	}
	if c.completed > 0 {
		r.MeanSlowdown = c.slowdownSum / float64(c.completed)
	}
	return r
}

// Describe renders the cluster state for diagnostics.
func (c *Cluster) Describe() string {
	var b []byte
	for _, g := range c.gpus {
		b = append(b, fmt.Sprintf("gpu%d mem=%.0f procs=%d\n", g.id, g.memGB, len(g.procs))...)
	}
	return string(b)
}

// SortProfiles orders profiles by name (determinism helper for callers
// building profile sets from maps).
func SortProfiles(ps []FunctionProfile) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
}
